// Experiment Table 1 — regenerate the paper's requirement-weight table
// and measure how much each published weight matters.
//
// Part 1 prints Table 1 from WeightTable::paper_defaults() for a
// cell-by-cell diff against the paper.
//
// Part 2 perturbs each weight by ±1 on a fixed mid-tier synthetic
// region and reports the IQB score shift — the quantitative answer to
// "does it matter that gaming/latency is a 5 and audio/upload a 1?".
#include <algorithm>
#include <cstdio>
#include <string>

#include "iqb/core/sensitivity.hpp"
#include "iqb/datasets/synthetic.hpp"

using namespace iqb;
using core::Requirement;
using core::UseCase;

int main() {
  const core::WeightTable table = core::WeightTable::paper_defaults();

  std::printf("=== Table 1: network requirement weights (paper defaults) ===\n");
  std::printf("%-20s | %-8s | %-6s | %-7s | %-6s\n", "Use case", "Download",
              "Upload", "Latency", "Loss");
  std::printf("---------------------+----------+--------+---------+-------\n");
  for (UseCase use_case : core::kAllUseCases) {
    std::printf("%-20s | %8d | %6d | %7d | %6d\n",
                std::string(core::use_case_display_name(use_case)).c_str(),
                table.requirement_weight(use_case, Requirement::kDownloadThroughput),
                table.requirement_weight(use_case, Requirement::kUploadThroughput),
                table.requirement_weight(use_case, Requirement::kLatency),
                table.requirement_weight(use_case, Requirement::kPacketLoss));
  }

  // Mid-tier region whose aggregates straddle several thresholds, so
  // weight changes actually move the score.
  util::Rng rng(314);
  datasets::RecordStore store;
  datasets::RegionProfile profile;
  profile.region = "mid_tier";
  profile.median_download_mbps = 90.0;
  profile.upload_ratio = 0.25;
  profile.base_latency_ms = 30.0;
  profile.latency_mu = 2.4;
  profile.lossy_test_fraction = 0.3;
  datasets::SyntheticConfig config;
  config.records_per_dataset = 600;
  store.add_all(datasets::generate_region_records(
      profile, datasets::default_dataset_panel(), config, rng));

  core::SensitivityAnalyzer analyzer(core::IqbConfig::paper_defaults(), store);
  auto report = analyzer.analyze("mid_tier");
  if (!report.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 report.error().to_string().c_str());
    return 1;
  }

  std::printf("\n=== Weight sensitivity on region 'mid_tier' (baseline %.4f) ===\n",
              report->baseline_score);
  auto perturbations = report->weight_perturbations;
  std::sort(perturbations.begin(), perturbations.end(),
            [](const auto& a, const auto& b) {
              return std::abs(a.shift) > std::abs(b.shift);
            });
  std::printf("%-20s %-22s %-6s %-10s %-10s\n", "use case", "requirement",
              "delta", "score", "shift");
  for (const auto& p : perturbations) {
    std::printf("%-20s %-22s %+d     %.4f    %+.4f\n",
                std::string(core::use_case_name(p.use_case)).c_str(),
                std::string(core::requirement_name(p.requirement)).c_str(),
                p.delta, p.score, p.shift);
  }
  std::printf(
      "\nExpected shape: every |shift| is small (single Table 1 entries are\n"
      "1 of ~24 weights), and shifts are largest where the requirement's\n"
      "agreement score differs most from the use case's other requirements.\n");
  return 0;
}
