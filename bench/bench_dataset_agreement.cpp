// Experiment §2 ("the benefit of using multiple datasets is to
// corroborate the insights of each other") — cross-dataset agreement.
//
// Runs the three simulated test tools against the SAME access links
// across a quality gradient (clean fiber -> lossy DSL), then reports:
//   1. each tool's download reading per link (the systematic
//      disagreement: multi-stream > ladder > single-stream),
//   2. the per-requirement agreement rate of the binary threshold
//      verdicts S_{u,r,d} across datasets, per link tier,
//   3. the IQB score with the full panel vs each leave-one-out panel.
//
// Expected shape: absolute readings disagree, threshold verdicts
// mostly agree far from thresholds and diverge near them, and
// leave-one-dataset-out shifts stay small — the corroboration claim.
#include <cstdio>
#include <map>
#include <memory>

#include "iqb/core/pipeline.hpp"
#include "iqb/measurement/adapters.hpp"
#include "iqb/measurement/campaign.hpp"
#include "iqb/measurement/cloudflare_style.hpp"
#include "iqb/measurement/ndt.hpp"
#include "iqb/measurement/ookla_style.hpp"

using namespace iqb;

namespace {

measurement::SubscriberSpec tier(const std::string& region, double down,
                                 double up, double delay_s, double loss) {
  measurement::SubscriberSpec spec;
  spec.subscriber_id = region + "-sub";
  spec.region = region;
  spec.isp = "bench_isp";
  spec.access_down.rate = util::Mbps(down);
  spec.access_down.propagation_delay = util::Seconds(delay_s);
  spec.access_up.rate = util::Mbps(up);
  spec.access_up.propagation_delay = util::Seconds(delay_s);
  if (loss > 0.0) {
    spec.access_down.loss = netsim::LossSpec::bernoulli(loss);
  }
  return spec;
}

}  // namespace

int main() {
  measurement::CampaignConfig config;
  config.seed = 4242;
  config.tests_per_tool = 3;
  config.base_time = util::Timestamp::parse("2025-03-01").value();
  measurement::Campaign campaign(config);
  campaign.add_client(std::make_shared<measurement::NdtClient>());
  campaign.add_client(std::make_shared<measurement::OoklaStyleClient>());
  campaign.add_client(std::make_shared<measurement::CloudflareStyleClient>());

  campaign.add_subscriber(tier("t1_fiber_clean", 500, 400, 0.005, 0.0));
  campaign.add_subscriber(tier("t2_cable_good", 150, 15, 0.012, 0.0005));
  campaign.add_subscriber(tier("t3_cable_lossy", 150, 15, 0.012, 0.004));
  campaign.add_subscriber(tier("t4_dsl_marginal", 25, 3, 0.02, 0.002));
  campaign.add_subscriber(tier("t5_dsl_bad", 8, 1, 0.03, 0.01));

  std::printf("Running 5 link tiers x 3 tools x 3 tests...\n");
  const auto sessions = campaign.run();
  std::printf("%zu sessions (%zu failed)\n\n", sessions.size(),
              campaign.failed_sessions());

  datasets::RecordStore store;
  store.add_all(measurement::convert_sessions_default(sessions));
  const auto aggregates = datasets::aggregate(store);

  // --- 1. absolute readings per tool -------------------------------
  std::printf("=== Download reading per dataset (p5-of-tests, Mb/s) ===\n");
  std::printf("%-18s %10s %12s %10s\n", "link tier", "ndt", "cloudflare",
              "ookla");
  for (const std::string& region : store.regions()) {
    std::printf("%-18s", region.c_str());
    for (const std::string dataset : {"ndt", "cloudflare", "ookla"}) {
      auto cell = aggregates.get(region, dataset, datasets::Metric::kDownload);
      std::printf(" %10.1f", cell.ok() ? cell->value : -1.0);
    }
    std::printf("\n");
  }

  // --- 2. binary verdict agreement ----------------------------------
  const core::IqbConfig iqb_config = core::IqbConfig::paper_defaults();
  core::Scorer scorer(iqb_config.thresholds, iqb_config.weights);
  std::printf("\n=== S_{u,r,d} verdict agreement across datasets (high quality) ===\n");
  std::printf("%-18s %10s %12s\n", "link tier", "unanimous", "split cells");
  for (const std::string& region : store.regions()) {
    auto tensor = scorer.binarize(aggregates, region, iqb_config.dataset_panel,
                                  core::QualityLevel::kHigh);
    int unanimous = 0, split = 0;
    for (core::UseCase use_case : core::kAllUseCases) {
      for (core::Requirement requirement : core::kAllRequirements) {
        int met = 0, present = 0;
        for (const std::string& dataset : iqb_config.dataset_panel) {
          auto verdict = tensor.get(use_case, requirement, dataset);
          if (!verdict) continue;
          ++present;
          if (*verdict) ++met;
        }
        if (present < 2) continue;
        if (met == 0 || met == present) {
          ++unanimous;
        } else {
          ++split;
        }
      }
    }
    std::printf("%-18s %10d %12d\n", region.c_str(), unanimous, split);
  }

  // --- 3. leave-one-dataset-out IQB ---------------------------------
  std::printf("\n=== IQB score (high) with full panel vs leave-one-out ===\n");
  std::printf("%-18s %8s %10s %14s %10s\n", "link tier", "full", "-ndt",
              "-cloudflare", "-ookla");
  for (const std::string& region : store.regions()) {
    auto full = core::Pipeline(iqb_config).score_region(aggregates, region);
    std::printf("%-18s %8.3f", region.c_str(),
                full.ok() ? full->high.iqb_score : -1.0);
    for (const std::string removed : {"ndt", "cloudflare", "ookla"}) {
      core::IqbConfig variant = iqb_config;
      variant.dataset_panel.clear();
      for (const auto& dataset : iqb_config.dataset_panel) {
        if (dataset != removed) variant.dataset_panel.push_back(dataset);
      }
      auto result = core::Pipeline(variant).score_region(aggregates, region);
      std::printf(" %10.3f", result.ok() ? result->high.iqb_score : -1.0);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: readings disagree per tool but tier ordering is\n"
      "identical in every column; split verdicts concentrate in the\n"
      "marginal tiers; leave-one-out shifts are small.\n");
  return 0;
}
