// Experiment §2 ("IQB uses the 95th percentile of a dataset") — the
// aggregation primitive. Benchmarks the exact batch percentile against
// the three streaming estimators (P², GK, t-digest) across sample
// sizes, and reports each estimator's p95 relative error as a counter
// so speed and accuracy are visible side by side.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "iqb/stats/bootstrap.hpp"
#include "iqb/stats/ddsketch.hpp"
#include "iqb/stats/gk.hpp"
#include "iqb/stats/p2.hpp"
#include "iqb/stats/percentile.hpp"
#include "iqb/stats/tdigest.hpp"
#include "iqb/util/rng.hpp"

using namespace iqb;

namespace {

std::vector<double> lognormal_sample(std::size_t n) {
  util::Rng rng(42);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(rng.lognormal(3.0, 1.0));
  return out;
}

void BM_ExactPercentile(benchmark::State& state) {
  const auto sample = lognormal_sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto p95 = stats::percentile(sample, 95.0);
    benchmark::DoNotOptimize(p95);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExactPercentile)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_ExactPercentileMethods(benchmark::State& state) {
  const auto sample = lognormal_sample(100000);
  const auto method = static_cast<stats::QuantileMethod>(state.range(0));
  for (auto _ : state) {
    auto p95 = stats::percentile(sample, 95.0, method);
    benchmark::DoNotOptimize(p95);
  }
  state.SetLabel(std::string(stats::quantile_method_name(method)));
}
BENCHMARK(BM_ExactPercentileMethods)->DenseRange(0, 4);

template <typename MakeSketch, typename Add, typename Query>
void run_streaming_bench(benchmark::State& state, MakeSketch make, Add add,
                         Query query) {
  const auto sample = lognormal_sample(static_cast<std::size_t>(state.range(0)));
  const double exact = stats::percentile(sample, 95.0).value();
  double estimate = 0.0;
  for (auto _ : state) {
    auto sketch = make();
    for (double x : sample) add(sketch, x);
    estimate = query(sketch);
    benchmark::DoNotOptimize(estimate);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["p95_rel_error"] =
      std::abs(estimate - exact) / std::max(exact, 1e-12);
}

void BM_P2Quantile(benchmark::State& state) {
  run_streaming_bench(
      state, [] { return stats::P2Quantile(0.95); },
      [](stats::P2Quantile& sketch, double x) { sketch.add(x); },
      [](stats::P2Quantile& sketch) { return sketch.value(); });
}
BENCHMARK(BM_P2Quantile)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_GkSketch(benchmark::State& state) {
  run_streaming_bench(
      state, [] { return stats::GkSketch(0.005); },
      [](stats::GkSketch& sketch, double x) { sketch.add(x); },
      [](stats::GkSketch& sketch) { return sketch.quantile(0.95); });
}
BENCHMARK(BM_GkSketch)->Arg(1000)->Arg(100000);

void BM_DdSketch(benchmark::State& state) {
  run_streaming_bench(
      state, [] { return stats::DdSketch(0.01); },
      [](stats::DdSketch& sketch, double x) { sketch.add(x); },
      [](stats::DdSketch& sketch) { return sketch.quantile(0.95); });
}
BENCHMARK(BM_DdSketch)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_TDigest(benchmark::State& state) {
  run_streaming_bench(
      state, [] { return stats::TDigest(100.0); },
      [](stats::TDigest& sketch, double x) { sketch.add(x); },
      [](stats::TDigest& sketch) { return sketch.quantile(0.95); });
}
BENCHMARK(BM_TDigest)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_Bootstrap95Ci(benchmark::State& state) {
  const auto sample = lognormal_sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    util::Rng rng(7);
    auto ci = stats::bootstrap_percentile_ci(sample, 95.0, rng, 200);
    benchmark::DoNotOptimize(ci);
  }
}
BENCHMARK(BM_Bootstrap95Ci)->Arg(500)->Arg(5000);

}  // namespace
