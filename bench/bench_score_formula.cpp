// Experiment eqs. (1)-(5) — the score computation itself.
//
// Verifies at runtime that the factored evaluation (eqs. 1, 2, 4) and
// the collapsed triple sum (eq. 5) agree, then benchmarks both
// evaluation orders plus the full binarize+score path, at the paper's
// dimensions (6 use cases x 4 requirements x 3 datasets) and scaled-up
// panels.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>

#include "iqb/core/score.hpp"
#include "iqb/util/rng.hpp"

using namespace iqb;
using core::BinaryScoreTensor;
using core::QualityLevel;
using core::Scorer;

namespace {

std::vector<std::string> make_panel(std::size_t datasets) {
  std::vector<std::string> panel;
  for (std::size_t i = 0; i < datasets; ++i) {
    panel.push_back("dataset_" + std::to_string(i));
  }
  return panel;
}

BinaryScoreTensor random_tensor(const std::vector<std::string>& panel,
                                util::Rng& rng) {
  BinaryScoreTensor tensor;
  for (core::UseCase use_case : core::kAllUseCases) {
    for (core::Requirement requirement : core::kAllRequirements) {
      for (const std::string& dataset : panel) {
        tensor.set(use_case, requirement, dataset, rng.bernoulli(0.6));
      }
    }
  }
  return tensor;
}

void BM_ScoreFactored(benchmark::State& state) {
  const auto panel = make_panel(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(1);
  Scorer scorer(core::ThresholdTable::paper_defaults(),
                core::WeightTable::paper_defaults(panel));
  const BinaryScoreTensor tensor = random_tensor(panel, rng);
  for (auto _ : state) {
    auto breakdown = scorer.score(tensor, QualityLevel::kHigh);
    benchmark::DoNotOptimize(breakdown);
  }
}
BENCHMARK(BM_ScoreFactored)->Arg(3)->Arg(10)->Arg(30);

void BM_ScoreCollapsed(benchmark::State& state) {
  const auto panel = make_panel(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(1);
  Scorer scorer(core::ThresholdTable::paper_defaults(),
                core::WeightTable::paper_defaults(panel));
  const BinaryScoreTensor tensor = random_tensor(panel, rng);
  // Equivalence check before timing: the two must agree to 1e-12.
  const double factored = scorer.score(tensor, QualityLevel::kHigh)->iqb_score;
  const double collapsed = scorer.score_collapsed(tensor).value();
  if (std::abs(factored - collapsed) > 1e-12) {
    state.SkipWithError("eq.(5) disagrees with eqs.(1,2,4)");
    return;
  }
  for (auto _ : state) {
    auto score = scorer.score_collapsed(tensor);
    benchmark::DoNotOptimize(score);
  }
}
BENCHMARK(BM_ScoreCollapsed)->Arg(3)->Arg(10)->Arg(30);

void BM_BinarizeAndScore(benchmark::State& state) {
  const auto panel = make_panel(3);
  util::Rng rng(2);
  Scorer scorer(core::ThresholdTable::paper_defaults(),
                core::WeightTable::paper_defaults(panel));
  datasets::AggregateTable aggregates;
  for (const std::string& dataset : panel) {
    for (datasets::Metric metric : datasets::kAllMetrics) {
      datasets::AggregateCell cell;
      cell.region = "r";
      cell.dataset = dataset;
      cell.metric = metric;
      cell.value = metric == datasets::Metric::kLoss ? rng.uniform(0.0, 0.02)
                                                     : rng.uniform(5.0, 200.0);
      cell.sample_count = 100;
      aggregates.put(cell);
    }
  }
  for (auto _ : state) {
    auto result =
        scorer.score_region(aggregates, "r", panel, QualityLevel::kHigh);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BinarizeAndScore);

void BM_ScoreManyRegions(benchmark::State& state) {
  // Scoring throughput for a country-scale run: state.range(0) regions.
  const auto panel = make_panel(3);
  util::Rng rng(3);
  Scorer scorer(core::ThresholdTable::paper_defaults(),
                core::WeightTable::paper_defaults(panel));
  std::vector<BinaryScoreTensor> tensors;
  for (int i = 0; i < state.range(0); ++i) {
    tensors.push_back(random_tensor(panel, rng));
  }
  for (auto _ : state) {
    double total = 0.0;
    for (const auto& tensor : tensors) {
      total += scorer.score(tensor, QualityLevel::kHigh)->iqb_score;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScoreManyRegions)->Arg(100)->Arg(1000);

}  // namespace
