// Ablation — the aggregation percentile (paper §2/§4: "IQB uses the
// 95th percentile ... designed to be easily adapted").
//
// Re-scores the six-region synthetic country while sweeping the
// aggregation percentile (50/75/90/95/99), in both orientation modes
// (orient-to-worst vs literal), and across quantile-method
// definitions at small sample sizes. Shows how much the "95" and the
// interpolation rule actually matter per region.
#include <cstdio>

#include "iqb/core/pipeline.hpp"
#include "iqb/datasets/synthetic.hpp"

using namespace iqb;

namespace {

datasets::RecordStore make_country(std::size_t records_per_dataset,
                                   std::uint64_t seed) {
  util::Rng rng(seed);
  datasets::RecordStore store;
  datasets::SyntheticConfig config;
  config.records_per_dataset = records_per_dataset;
  for (const auto& profile : datasets::example_region_profiles()) {
    store.add_all(datasets::generate_region_records(
        profile, datasets::default_dataset_panel(), config, rng));
  }
  return store;
}

void print_scores_row(const char* label, const core::IqbConfig& config,
                      const datasets::RecordStore& store) {
  core::Pipeline pipeline(config);
  auto output = pipeline.run(store);
  std::printf("%-24s", label);
  for (const auto& result : output.results) {
    std::printf(" %8.3f", result.high.iqb_score);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const auto store = make_country(500, 99);

  // Column header: region names in map order (alphabetical).
  core::Pipeline header_probe(core::IqbConfig::paper_defaults());
  auto probe = header_probe.run(store);
  std::printf("%-24s", "config");
  for (const auto& result : probe.results) {
    std::printf(" %8.8s", result.region.c_str());
  }
  std::printf("\n");

  std::printf("--- aggregation percentile sweep (orient-to-worst) ---\n");
  for (double percentile : {50.0, 75.0, 90.0, 95.0, 99.0}) {
    core::IqbConfig config = core::IqbConfig::paper_defaults();
    config.aggregation.percentile = percentile;
    char label[32];
    std::snprintf(label, sizeof(label), "p%.0f", percentile);
    print_scores_row(label, config, store);
  }

  std::printf("--- literal percentile (no orientation flip) ---\n");
  for (double percentile : {50.0, 95.0}) {
    core::IqbConfig config = core::IqbConfig::paper_defaults();
    config.aggregation.percentile = percentile;
    config.aggregation.orient_to_worst = false;
    char label[32];
    std::snprintf(label, sizeof(label), "p%.0f literal", percentile);
    print_scores_row(label, config, store);
  }

  std::printf("--- quantile method at small samples (n=20/dataset, p95) ---\n");
  const auto small_store = make_country(20, 7);
  core::Pipeline small_header(core::IqbConfig::paper_defaults());
  auto small_probe = small_header.run(small_store);
  std::printf("%-24s", "config");
  for (const auto& result : small_probe.results) {
    std::printf(" %8.8s", result.region.c_str());
  }
  std::printf("\n");
  for (auto method :
       {stats::QuantileMethod::kNearestRank, stats::QuantileMethod::kLinear,
        stats::QuantileMethod::kHazen, stats::QuantileMethod::kMedianUnbiased,
        stats::QuantileMethod::kNormalUnbiased}) {
    core::IqbConfig config = core::IqbConfig::paper_defaults();
    config.aggregation.method = method;
    print_scores_row(std::string(stats::quantile_method_name(method)).c_str(),
                     config, small_store);
  }

  std::printf(
      "\nExpected shape: scores fall monotonically as the percentile\n"
      "tightens (p50 -> p99); the literal (unoriented) p95 inflates\n"
      "throughput-limited regions; quantile-method choice only matters at\n"
      "small sample counts.\n");
  return 0;
}
