// Ablation — grading bands (paper §1: the credit-score / Nutri-Score
// analogy). A composite score is only as communicative as its bands:
// this bench scores a 60-region synthetic population and shows the
// grade distribution under three candidate band layouts, plus where
// each example region lands.
#include <cstdio>
#include <map>

#include "iqb/core/pipeline.hpp"
#include "iqb/datasets/synthetic.hpp"
#include "iqb/report/render.hpp"

using namespace iqb;

namespace {

/// 60 regions: 10 jittered variants of each example profile.
datasets::RecordStore make_population(std::uint64_t seed) {
  util::Rng rng(seed);
  datasets::RecordStore store;
  datasets::SyntheticConfig config;
  config.records_per_dataset = 120;
  const auto base_profiles = datasets::example_region_profiles();
  for (std::size_t variant = 0; variant < 10; ++variant) {
    for (datasets::RegionProfile profile : base_profiles) {
      profile.region += "_" + std::to_string(variant);
      profile.median_download_mbps *= rng.uniform(0.7, 1.4);
      profile.base_latency_ms *= rng.uniform(0.8, 1.3);
      profile.lossy_test_fraction =
          std::min(1.0, profile.lossy_test_fraction * rng.uniform(0.6, 1.6));
      store.add_all(datasets::generate_region_records(
          profile, datasets::default_dataset_panel(), config, rng));
    }
  }
  return store;
}

}  // namespace

int main() {
  const auto store = make_population(31337);
  core::Pipeline pipeline(core::IqbConfig::paper_defaults());
  auto output = pipeline.run(store);
  std::printf("Scored %zu regions\n\n", output.results.size());

  struct Band {
    const char* name;
    core::GradeScale scale;
  };
  const Band bands[] = {
      {"default (.90/.75/.55/.35)", core::GradeScale()},
      {"strict  (.95/.85/.70/.50)",
       core::GradeScale::with_cuts(0.95, 0.85, 0.70, 0.50).value()},
      {"lenient (.80/.60/.40/.20)",
       core::GradeScale::with_cuts(0.80, 0.60, 0.40, 0.20).value()},
  };

  std::printf("=== Grade distribution per band layout (high-quality score) ===\n");
  std::printf("%-28s %4s %4s %4s %4s %4s\n", "bands", "A", "B", "C", "D", "E");
  for (const Band& band : bands) {
    std::map<core::Grade, int> histogram;
    for (const auto& result : output.results) {
      ++histogram[band.scale.grade(result.high.iqb_score)];
    }
    std::printf("%-28s %4d %4d %4d %4d %4d\n", band.name,
                histogram[core::Grade::kA], histogram[core::Grade::kB],
                histogram[core::Grade::kC], histogram[core::Grade::kD],
                histogram[core::Grade::kE]);
  }

  std::printf("\n=== Example regions under the default bands ===\n");
  int printed = 0;
  for (const auto& result : output.results) {
    if (result.region.find("_0") == std::string::npos) continue;
    std::printf("  %-22s %s\n", result.region.c_str(),
                report::barometer(result.high.iqb_score, result.grade).c_str());
    ++printed;
  }
  std::printf(
      "\nExpected shape: the default bands spread the synthetic country\n"
      "across all five grades; strict bands compress everything toward\n"
      "D/E, lenient bands toward A/B — the communication-design tradeoff\n"
      "the Nutri-Score analogy raises.\n");
  return printed == 0 ? 1 : 0;
}
