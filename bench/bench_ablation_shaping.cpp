// Ablation — burst-shaped provisioning vs flat provisioning, per tool.
//
// Real ISPs often provision a "100 Mb/s" tier as a faster line plus a
// token bucket ("speed boost"). Short-transfer tools read the burst;
// sustained tools read the shaped rate. This bench runs the three
// simulated dataset tools against the SAME provisioned tier in both
// configurations and prints each tool's download estimate — the
// measurement artifact that makes cross-dataset corroboration (paper
// §2) non-trivial in practice.
#include <cstdio>
#include <memory>

#include "iqb/datasets/aggregate.hpp"
#include "iqb/measurement/adapters.hpp"
#include "iqb/measurement/campaign.hpp"
#include "iqb/measurement/cloudflare_style.hpp"
#include "iqb/measurement/ndt.hpp"
#include "iqb/measurement/ookla_style.hpp"

using namespace iqb;

namespace {

measurement::SubscriberSpec tier(bool shaped, const std::string& region) {
  measurement::SubscriberSpec spec;
  spec.subscriber_id = region + "-sub";
  spec.region = region;
  spec.isp = "bench_isp";
  const double provisioned_down = 100.0;
  const double provisioned_up = 20.0;
  auto direction = [shaped](double provisioned) {
    netsim::LinkSpec link;
    if (shaped) {
      link.rate = util::Mbps(provisioned * 5.0);  // fast line...
      link.shaper.enabled = true;                 // ...shaped to tier
      link.shaper.sustained_rate = util::Mbps(provisioned);
      link.shaper.burst_bytes = 10 * 1024 * 1024;
    } else {
      link.rate = util::Mbps(provisioned);
    }
    link.propagation_delay = util::Seconds(0.01);
    link.queue = netsim::QueueSpec::drop_tail(512 * 1024);
    return link;
  };
  spec.access_down = direction(provisioned_down);
  spec.access_up = direction(provisioned_up);
  return spec;
}

}  // namespace

int main() {
  measurement::CampaignConfig config;
  config.seed = 8080;
  config.tests_per_tool = 3;
  config.base_time = util::Timestamp::parse("2025-03-01").value();
  measurement::Campaign campaign(config);
  campaign.add_client(std::make_shared<measurement::NdtClient>());
  campaign.add_client(std::make_shared<measurement::OoklaStyleClient>());
  campaign.add_client(std::make_shared<measurement::CloudflareStyleClient>());
  campaign.add_subscriber(tier(false, "flat_100m"));
  campaign.add_subscriber(tier(true, "boosted_100m"));

  std::printf("Running flat vs burst-boosted 100 Mb/s tier x 3 tools...\n");
  const auto sessions = campaign.run();
  datasets::RecordStore store;
  store.add_all(measurement::convert_sessions_default(sessions));

  datasets::AggregationPolicy median;  // medians make the bias obvious
  median.percentile = 50.0;
  const auto aggregates = datasets::aggregate(store, median);

  std::printf("\n=== Median download estimate per tool (Mb/s) ===\n");
  std::printf("%-15s %10s %12s %10s\n", "tier", "ndt", "cloudflare", "ookla");
  for (const std::string region : {"flat_100m", "boosted_100m"}) {
    std::printf("%-15s", region.c_str());
    for (const std::string dataset : {"ndt", "cloudflare", "ookla"}) {
      auto cell = aggregates.get(region, dataset, datasets::Metric::kDownload);
      std::printf(" %10.1f", cell.ok() ? cell->value : -1.0);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: on the flat tier all tools sit near (below) 100;\n"
      "on the boosted tier the short-transfer ladder (cloudflare) reads\n"
      "far above the sustained tier while the long-duration tools stay\n"
      "near it — the same provisioned product, three different numbers.\n");
  return 0;
}
