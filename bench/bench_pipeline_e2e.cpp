// Experiment Fig. 1 — the full three-tier pipeline, end to end, with
// timing per stage.
//
// Stage A: packet-level campaign over three regional populations
//          (high-fidelity datasets tier).
// Stage B: adapters + record store + 95th percentile aggregation.
// Stage C: scoring every region at both quality levels.
//
// Prints the per-stage wall time, the record/session counts, and the
// final comparison table — the "one command reproduces the system"
// artifact for the poster's Fig. 1. Also snapshots the same numbers
// into BENCH_pipeline.json through the obs JSON exporter so runs can
// be diffed or tracked by machines.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>

#include "iqb/core/pipeline.hpp"
#include "iqb/measurement/adapters.hpp"
#include "iqb/measurement/campaign.hpp"
#include "iqb/measurement/cloudflare_style.hpp"
#include "iqb/measurement/ndt.hpp"
#include "iqb/measurement/ookla_style.hpp"
#include "iqb/measurement/population.hpp"
#include "iqb/obs/export.hpp"
#include "iqb/obs/history.hpp"
#include "iqb/obs/metrics.hpp"
#include "iqb/obs/slo.hpp"
#include "iqb/obs/telemetry.hpp"
#include "iqb/obs/trace.hpp"
#include "iqb/report/render.hpp"
#include "iqb/robust/degradation.hpp"

using namespace iqb;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t subscribers =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 4;
  const std::size_t tests_per_tool =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 2;
  // Aggregation/scoring execution width; 1 (the default) is the
  // serial path, results are byte-identical at any value.
  const std::size_t threads =
      argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 1;

  // --- Stage A: simulated measurement campaign ----------------------
  auto stage_a_start = Clock::now();
  measurement::CampaignConfig config;
  config.seed = 1701;
  config.tests_per_tool = tests_per_tool;
  config.base_time = util::Timestamp::parse("2025-03-01").value();
  measurement::Campaign campaign(config);
  campaign.add_client(std::make_shared<measurement::NdtClient>());
  campaign.add_client(std::make_shared<measurement::OoklaStyleClient>());
  campaign.add_client(std::make_shared<measurement::CloudflareStyleClient>());
  util::Rng rng(config.seed);
  std::size_t population = 0;
  for (const auto& plan : measurement::example_region_plans(subscribers)) {
    for (auto& subscriber : measurement::generate_population(plan, rng)) {
      campaign.add_subscriber(std::move(subscriber));
      ++population;
    }
  }
  const auto sessions = campaign.run();
  const double stage_a_s = seconds_since(stage_a_start);

  // --- Stage B: adapters + aggregation ------------------------------
  auto stage_b_start = Clock::now();
  datasets::RecordStore store;
  store.add_all(measurement::convert_sessions_default(sessions));
  core::IqbConfig iqb_config = core::IqbConfig::paper_defaults();
  iqb_config.aggregation.threads = threads;
  const auto aggregates = datasets::aggregate(store, iqb_config.aggregation);
  const double stage_b_s = seconds_since(stage_b_start);

  // --- Stage C: scoring ----------------------------------------------
  auto stage_c_start = Clock::now();
  core::Pipeline pipeline(iqb_config);
  core::Pipeline::RunOutput output;
  output.aggregates = aggregates;
  for (const std::string& region : store.regions()) {
    auto result = pipeline.score_region(aggregates, region);
    if (result.ok()) output.results.push_back(std::move(result).value());
  }
  const double stage_c_s = seconds_since(stage_c_start);

  // --- Stage D: tracing overhead -------------------------------------
  // The same full run three ways: plain, telemetry-off (a null
  // Telemetry*, the daemon's --no-telemetry path), and telemetry-on
  // with a live tracer + registry. Off must cost nothing and change
  // nothing: its rendered table is asserted bit-identical to the
  // plain run's. The on/off delta is the price of tracing a cycle.
  const robust::IngestHealth health;
  auto run_start = Clock::now();
  const auto plain = pipeline.run(store, health);
  const double plain_s = seconds_since(run_start);

  run_start = Clock::now();
  const auto dark = pipeline.run(store, health, nullptr);
  const double dark_s = seconds_since(run_start);

  obs::MetricsRegistry trace_registry;
  obs::Tracer tracer;
  tracer.set_trace_id("bench-1");
  obs::Telemetry telemetry{&trace_registry, &tracer, nullptr, "bench-1"};
  run_start = Clock::now();
  const auto lit = pipeline.run(store, health, &telemetry);
  const double lit_s = seconds_since(run_start);

  const std::string plain_table = report::comparison_table(plain.results);
  if (report::comparison_table(dark.results) != plain_table) {
    std::fprintf(stderr,
                 "FAIL: telemetry-off run output differs from the plain run\n");
    return 1;
  }
  if (report::comparison_table(lit.results) != plain_table) {
    std::fprintf(stderr,
                 "FAIL: telemetry-on run changed the scoring output\n");
    return 1;
  }

  // --- Stage E: history sampling + SLO evaluation --------------------
  // The per-cycle price of the daemon's alerting tier: sample every
  // live registry series into the ring TSDB, refresh the per-region
  // score gauges, and run the SLO engine (anomaly + threshold rules)
  // over the result — kHistoryCycles simulated daemon cycles at 1 Hz.
  // The specs are tuned quiet so the loop measures evaluation, not
  // transition logging.
  constexpr std::uint64_t kHistoryCycles = 1000;
  auto stage_e_start = Clock::now();
  obs::TimeSeriesStore history;
  std::vector<obs::SloSpec> slo_specs;
  {
    obs::SloSpec drift;
    drift.type = obs::SloSpec::Type::kAnomaly;
    drift.name = "bench_score_drift";
    drift.metric = "iqb_region_score";
    slo_specs.push_back(drift);
    obs::SloSpec floor;
    floor.type = obs::SloSpec::Type::kThreshold;
    floor.name = "bench_score_floor";
    floor.metric = "iqb_region_score";
    floor.op = obs::SloSpec::Op::kLt;
    floor.bound = 1.0;
    slo_specs.push_back(floor);
  }
  obs::SloEngine slo_engine({slo_specs, 128}, &history);
  const auto bench_regions = store.regions();
  for (std::uint64_t cycle = 1; cycle <= kHistoryCycles; ++cycle) {
    const std::uint64_t now_ms = cycle * 1000;
    double base = 70.0 + static_cast<double>(cycle % 2);  // mild jitter
    for (const std::string& region : bench_regions) {
      trace_registry
          .gauge("iqb_region_score", "Region score", {{"region", region}})
          .set(base);
      base += 1.0;
    }
    history.sample_registry(trace_registry, now_ms);
    slo_engine.evaluate(now_ms, cycle, "bench-1");
  }
  const double stage_e_s = seconds_since(stage_e_start);

  std::printf("=== Fig. 1 pipeline, end to end ===\n");
  std::printf("population:            %zu subscribers in 3 regions\n", population);
  std::printf("sessions simulated:    %zu (%zu failed)\n", sessions.size(),
              campaign.failed_sessions());
  std::printf("dataset records:       %zu\n", store.size());
  std::printf("aggregate cells:       %zu\n", aggregates.size());
  std::printf("regions scored:        %zu\n\n", output.results.size());
  // Per-stage throughput: sessions through A, records through B and C
  // (C re-reads every record's aggregate, so records/s is the shared
  // yardstick across stages).
  const auto records_n = static_cast<double>(store.size());
  std::printf("stage A (packet-level campaign): %8.2f s  (%10.0f sessions/s)\n",
              stage_a_s, static_cast<double>(sessions.size()) / stage_a_s);
  std::printf("stage B (adapters + aggregation):%8.4f s  (%10.0f records/s)\n",
              stage_b_s, records_n / stage_b_s);
  std::printf("stage C (IQB scoring):           %8.4f s  (%10.0f records/s)\n",
              stage_c_s, records_n / stage_c_s);
  std::printf("threads:                         %zu\n", threads);
  const double overhead_pct =
      dark_s > 0.0 ? (lit_s - dark_s) / dark_s * 100.0 : 0.0;
  std::printf(
      "tracing (full run):  off %.4f s, on %.4f s (%+.1f%%), %zu spans; "
      "off output bit-identical: yes\n\n",
      dark_s, lit_s, overhead_pct, tracer.span_count());
  std::printf(
      "history + SLO eval:  %8.4f s for %llu cycles over %zu series "
      "(%10.0f cycles/s, %.1f us/cycle)\n\n",
      stage_e_s, static_cast<unsigned long long>(kHistoryCycles),
      history.series_count(),
      static_cast<double>(kHistoryCycles) / stage_e_s,
      stage_e_s / static_cast<double>(kHistoryCycles) * 1e6);
  std::printf("%s\n", report::comparison_table(output.results).c_str());
  std::printf(
      "Expected shape: metro > suburban > rural at both quality levels;\n"
      "scoring cost is negligible next to measurement cost (the same\n"
      "asymmetry the real IQB deployment would see).\n");

  // Machine-readable snapshot of the run, via the obs JSON exporter.
  obs::MetricsRegistry registry;
  auto stage_gauge = [&registry](const char* stage, double seconds) {
    registry
        .gauge("iqb_bench_stage_duration_seconds",
               "Wall time per bench stage", {{"stage", stage}})
        .set(seconds);
  };
  stage_gauge("campaign", stage_a_s);
  stage_gauge("aggregate", stage_b_s);
  stage_gauge("score", stage_c_s);
  stage_gauge("run_plain", plain_s);
  stage_gauge("run_untraced", dark_s);
  stage_gauge("run_traced", lit_s);
  stage_gauge("history_slo", stage_e_s);
  auto count_gauge = [&registry](const char* what, double value) {
    registry
        .gauge("iqb_bench_items", "Item counts for the bench run",
               {{"what", what}})
        .set(value);
  };
  count_gauge("subscribers", static_cast<double>(population));
  count_gauge("sessions", static_cast<double>(sessions.size()));
  count_gauge("records", static_cast<double>(store.size()));
  count_gauge("aggregate_cells", static_cast<double>(aggregates.size()));
  count_gauge("regions_scored", static_cast<double>(output.results.size()));
  count_gauge("spans_traced", static_cast<double>(tracer.span_count()));
  count_gauge("history_series", static_cast<double>(history.series_count()));
  std::ofstream snapshot("BENCH_pipeline.json", std::ios::binary);
  snapshot << obs::metrics_to_json(registry).dump(2) << "\n";
  std::printf("wrote BENCH_pipeline.json\n");
  return 0;
}
