// Experiment — the columnar store index and the parallel scoring
// path, quantified.
//
// Workload: the 64-subscriber e2e scenario — every region of the
// six-region synthetic country carries 64 subscribers' measurement
// histories (default 30 tests per subscriber per dataset), drawn by
// the statistical generator (the documented fast path for benches
// that need many records in milliseconds; the packet-level campaign
// produces the same shape three orders of magnitude slower). The
// store is aggregated three ways:
//
//   scan     aggregate_scan(): per-cell full-store filtering plus a
//            sort-based percentile — the pre-index semantics, kept in
//            the library as the equivalence oracle.
//   indexed  aggregate() on a cold store at --threads 1: one O(N)
//            index build, then selection-based percentiles over the
//            prebuilt value columns.
//   indexed(T threads) the same with the cell fan-out on a pool.
//
// Prints records/sec for the index build and each path's wall time,
// asserts the three AggregateTables and the end-to-end pipeline
// reports are byte-identical, and snapshots everything into
// BENCH_aggregate.json via the obs JSON exporter. With --check the
// exit code enforces the regression gate: indexed must beat scan and
// every output must be byte-identical.
//
// usage: bench_store_index [subscribers] [tests_per_sub] [threads] [--check]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "iqb/core/pipeline.hpp"
#include "iqb/datasets/aggregate.hpp"
#include "iqb/datasets/io.hpp"
#include "iqb/datasets/synthetic.hpp"
#include "iqb/obs/export.hpp"
#include "iqb/obs/metrics.hpp"
#include "iqb/report/render.hpp"
#include "iqb/util/rng.hpp"

using namespace iqb;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Best-of-`reps` wall time of `body` (fresh state per rep is the
/// caller's job via the factory argument).
template <typename Body>
double best_of(int reps, Body&& body) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    auto start = Clock::now();
    body();
    best = std::min(best, seconds_since(start));
  }
  return best;
}

/// Best-of-`reps` wall time of body(store) where each rep gets its
/// own cold store (no cached index). The store construction — a deep
/// copy of every record — happens outside the timed region: the
/// comparison is about aggregation strategy, not allocator traffic.
template <typename Body>
double best_of_cold(int reps, const std::vector<datasets::MeasurementRecord>&
                                  records, Body&& body) {
  std::vector<datasets::RecordStore> stores;
  stores.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    stores.emplace_back(std::vector<datasets::MeasurementRecord>(records));
  }
  double best = 1e300;
  for (auto& store : stores) {
    auto start = Clock::now();
    body(store);
    best = std::min(best, seconds_since(start));
  }
  return best;
}

std::vector<datasets::MeasurementRecord> workload_records(
    std::size_t subscribers, std::size_t tests_per_sub) {
  util::Rng rng(1701);
  datasets::SyntheticConfig config;
  config.records_per_dataset = subscribers * tests_per_sub;
  config.base_time = util::Timestamp::parse("2025-03-01").value();
  std::vector<datasets::MeasurementRecord> records;
  for (const auto& profile : datasets::example_region_profiles()) {
    auto region_records = datasets::generate_region_records(
        profile, datasets::default_dataset_panel(), config, rng);
    records.insert(records.end(), region_records.begin(),
                   region_records.end());
  }
  return records;
}

std::string pipeline_report(const datasets::RecordStore& store,
                            core::IqbConfig config, std::size_t threads) {
  config.aggregation.threads = threads;
  core::Pipeline pipeline(std::move(config));
  auto output = pipeline.run(store);
  return report::to_json(output.results).dump(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t subscribers = 64;
  std::size_t tests_per_sub = 30;
  std::size_t threads = 4;
  bool check = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (positional.size() > 0) subscribers = std::stoull(positional[0]);
  if (positional.size() > 1) tests_per_sub = std::stoull(positional[1]);
  if (positional.size() > 2) threads = std::stoull(positional[2]);

  const auto records = workload_records(subscribers, tests_per_sub);
  const double n = static_cast<double>(records.size());
  const core::IqbConfig config = core::IqbConfig::paper_defaults();
  const datasets::AggregationPolicy policy = config.aggregation;

  // --- index build throughput ---------------------------------------
  const double build_s =
      best_of_cold(5, records, [](datasets::RecordStore& cold) {
        cold.index();
      });
  const double build_rps = n / build_s;

  // --- scan vs indexed aggregation ----------------------------------
  datasets::RecordStore store{std::vector<datasets::MeasurementRecord>(records)};
  const double scan_s = best_of(3, [&] { datasets::aggregate_scan(store, policy); });
  const auto scan_table = datasets::aggregate_scan(store, policy);

  // Cold store per rep: aggregate() pays the index build every time,
  // so the comparison is honest about the one-pass cost.
  const double indexed_s =
      best_of_cold(3, records, [&](datasets::RecordStore& cold) {
        datasets::aggregate(cold, policy);
      });
  datasets::AggregationPolicy mt_policy = policy;
  mt_policy.threads = threads;
  const double indexed_mt_s =
      best_of_cold(3, records, [&](datasets::RecordStore& cold) {
        datasets::aggregate(cold, mt_policy);
      });
  const auto indexed_table = datasets::aggregate(store, policy);
  const auto indexed_mt_table = datasets::aggregate(store, mt_policy);

  const std::string scan_csv = datasets::aggregates_to_csv(scan_table);
  const bool tables_identical =
      scan_csv == datasets::aggregates_to_csv(indexed_table) &&
      scan_csv == datasets::aggregates_to_csv(indexed_mt_table);

  // --- end-to-end pipeline at 1 / 2 / N threads ---------------------
  const std::string report_1 = pipeline_report(store, config, 1);
  const bool reports_identical =
      report_1 == pipeline_report(store, config, 2) &&
      report_1 == pipeline_report(store, config, threads);

  const double speedup = scan_s / indexed_s;
  const double speedup_mt = scan_s / indexed_mt_s;

  std::printf("=== store index + parallel aggregation ===\n");
  std::printf("records:               %zu\n", records.size());
  std::printf("aggregate cells:       %zu\n", scan_table.size());
  std::printf("index build:           %10.6f s  (%12.0f records/s)\n",
              build_s, build_rps);
  std::printf("aggregate, scan:       %10.6f s\n", scan_s);
  std::printf("aggregate, indexed:    %10.6f s  (%6.2fx vs scan)\n",
              indexed_s, speedup);
  std::printf("aggregate, indexed x%zu:%10.6f s  (%6.2fx vs scan)\n",
              threads, indexed_mt_s, speedup_mt);
  std::printf("tables byte-identical: %s\n", tables_identical ? "yes" : "NO");
  std::printf("reports byte-identical (1/2/%zu threads): %s\n", threads,
              reports_identical ? "yes" : "NO");

  // Machine-readable snapshot, via the obs JSON exporter.
  obs::MetricsRegistry registry;
  auto path_gauge = [&registry](const char* path, double seconds) {
    registry
        .gauge("iqb_bench_aggregate_seconds",
               "Wall time of one aggregation pass", {{"path", path}})
        .set(seconds);
  };
  path_gauge("scan", scan_s);
  path_gauge("indexed", indexed_s);
  path_gauge("indexed_mt", indexed_mt_s);
  registry
      .gauge("iqb_bench_aggregate_speedup",
             "Aggregation speedup over the scan baseline",
             {{"path", "indexed"}})
      .set(speedup);
  registry
      .gauge("iqb_bench_aggregate_speedup",
             "Aggregation speedup over the scan baseline",
             {{"path", "indexed_mt"}})
      .set(speedup_mt);
  registry
      .gauge("iqb_bench_index_build_records_per_second",
             "Store index build throughput", {})
      .set(build_rps);
  registry
      .gauge("iqb_bench_outputs_byte_identical",
             "1 when scan/indexed/parallel outputs matched exactly", {})
      .set(tables_identical && reports_identical ? 1.0 : 0.0);
  auto count_gauge = [&registry](const char* what, double value) {
    registry
        .gauge("iqb_bench_items", "Item counts for the bench run",
               {{"what", what}})
        .set(value);
  };
  count_gauge("records", n);
  count_gauge("aggregate_cells", static_cast<double>(scan_table.size()));
  count_gauge("threads", static_cast<double>(threads));
  std::ofstream snapshot("BENCH_aggregate.json", std::ios::binary);
  snapshot << obs::metrics_to_json(registry).dump(2) << "\n";
  std::printf("wrote BENCH_aggregate.json\n");

  if (check) {
    if (!tables_identical || !reports_identical) {
      std::printf("CHECK FAILED: outputs are not byte-identical\n");
      return 1;
    }
    if (speedup <= 1.0) {
      std::printf("CHECK FAILED: indexed aggregation (%.6f s) is not faster "
                  "than the scan baseline (%.6f s)\n",
                  indexed_s, scan_s);
      return 1;
    }
    std::printf("check ok: indexed %.2fx faster, outputs byte-identical\n",
                speedup);
  }
  return 0;
}
