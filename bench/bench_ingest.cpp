// Experiment — the zero-copy ingestion fast path, quantified.
//
// Workload: the 64-subscriber synthetic country (same generator and
// seed as bench_store_index), serialized once to record CSV and once
// to the IQBREC binary format. Four ingestion paths parse it back:
//
//   legacy     datasets::records_from_csv(): the table-based reader —
//              every field materialized as a std::string — kept in
//              the library as the parity oracle.
//   fast       records_from_csv_fast() serial: mmap-style
//              string_view slicing + from_chars binding.
//   fast xT    the same with chunked parsing on a thread pool.
//   iqbr       records_from_iqbr(): the compact binary format.
//
// Prints wall time, records/s and MB/s per path, asserts every path
// re-serializes to byte-identical CSV, compares the .iqbr decode rate
// against the StoreIndex build rate (the reload budget: a binary
// reload should cost no more than 2x the index build that follows
// it), and snapshots everything into BENCH_ingest.json. With --check
// the exit code enforces: byte-identity, fast > legacy (serial and
// MT), iqbr > legacy, and iqbr decode within 2x of the index build.
//
// usage: bench_ingest [subscribers] [tests_per_sub] [threads] [--check]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "iqb/datasets/fast_csv.hpp"
#include "iqb/datasets/io.hpp"
#include "iqb/datasets/record_io.hpp"
#include "iqb/datasets/store.hpp"
#include "iqb/datasets/synthetic.hpp"
#include "iqb/obs/export.hpp"
#include "iqb/obs/metrics.hpp"
#include "iqb/util/rng.hpp"
#include "iqb/util/thread_pool.hpp"

using namespace iqb;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Best wall time over `reps` runs of `body`. The body returns its
/// parsed records so the clock stops before they destruct: freeing
/// ~35k records costs close to a millisecond, and the index-build
/// measurement this bench compares against excludes teardown too.
template <typename Body>
double best_of(int reps, Body&& body) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto start = Clock::now();
    [[maybe_unused]] const auto result = body();
    best = std::min(best, seconds_since(start));
    // `result` destructs here, outside the timed window.
  }
  return best;
}

std::vector<datasets::MeasurementRecord> workload_records(
    std::size_t subscribers, std::size_t tests_per_sub) {
  util::Rng rng(1701);
  datasets::SyntheticConfig config;
  config.records_per_dataset = subscribers * tests_per_sub;
  config.base_time = util::Timestamp::parse("2025-03-01").value();
  std::vector<datasets::MeasurementRecord> records;
  for (const auto& profile : datasets::example_region_profiles()) {
    auto region_records = datasets::generate_region_records(
        profile, datasets::default_dataset_panel(), config, rng);
    records.insert(records.end(), region_records.begin(),
                   region_records.end());
  }
  return records;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t subscribers = 64;
  std::size_t tests_per_sub = 30;
  std::size_t threads = 0;  // auto: hardware concurrency
  bool check = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (positional.size() > 0) subscribers = std::stoull(positional[0]);
  if (positional.size() > 1) tests_per_sub = std::stoull(positional[1]);
  if (positional.size() > 2) threads = std::stoull(positional[2]);
  const std::size_t width = util::ThreadPool::resolve_threads(threads);

  const auto records = workload_records(subscribers, tests_per_sub);
  const double n = static_cast<double>(records.size());
  const std::string csv = datasets::records_to_csv(records);
  const std::string iqbr = datasets::records_to_iqbr(records);
  const double csv_mb = static_cast<double>(csv.size()) / 1e6;

  // --- the four ingestion paths -------------------------------------
  const double legacy_s = best_of(3, [&] {
    auto parsed = datasets::records_from_csv(csv);
    if (!parsed.ok()) std::abort();
    return std::move(parsed).value();
  });
  const double fast_s = best_of(5, [&] {
    auto parsed = datasets::records_from_csv_fast(csv);
    if (!parsed.ok()) std::abort();
    return std::move(parsed).value();
  });
  util::ThreadPool pool(width);
  datasets::FastParseOptions mt_options;
  mt_options.threads = width;
  mt_options.pool = &pool;
  const double fast_mt_s = best_of(5, [&] {
    auto parsed = datasets::records_from_csv_fast(csv, mt_options);
    if (!parsed.ok()) std::abort();
    return std::move(parsed).value();
  });
  // More reps than the CSV paths: the decode is short enough that a
  // couple of noisy scheduler ticks would otherwise dominate the best.
  const double iqbr_s = best_of(15, [&] {
    auto parsed = datasets::records_from_iqbr(iqbr);
    if (!parsed.ok()) std::abort();
    return std::move(parsed).value();
  });

  // --- the reload budget: StoreIndex build on the same records ------
  double index_s = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    datasets::RecordStore cold{
        std::vector<datasets::MeasurementRecord>(records)};
    auto start = Clock::now();
    cold.index();
    index_s = std::min(index_s, seconds_since(start));
  }

  // --- byte-identity across every path ------------------------------
  const auto legacy_records = datasets::records_from_csv(csv);
  const auto fast_records = datasets::records_from_csv_fast(csv);
  const auto fast_mt_records = datasets::records_from_csv_fast(csv, mt_options);
  const auto iqbr_records = datasets::records_from_iqbr(iqbr);
  bool identical = legacy_records.ok() && fast_records.ok() &&
                   fast_mt_records.ok() && iqbr_records.ok();
  if (identical) {
    const std::string oracle = datasets::records_to_csv(legacy_records.value());
    identical = oracle == csv &&
                oracle == datasets::records_to_csv(fast_records.value()) &&
                oracle == datasets::records_to_csv(fast_mt_records.value()) &&
                oracle == datasets::records_to_csv(iqbr_records.value());
  }

  const double fast_speedup = legacy_s / fast_s;
  const double fast_mt_speedup = legacy_s / fast_mt_s;
  const double iqbr_speedup = legacy_s / iqbr_s;

  std::printf("=== zero-copy ingestion fast path ===\n");
  std::printf("records:            %zu  (csv %.2f MB, iqbr %.2f MB)\n",
              records.size(), csv_mb,
              static_cast<double>(iqbr.size()) / 1e6);
  std::printf("csv, legacy:        %10.6f s  (%12.0f rec/s, %7.1f MB/s)\n",
              legacy_s, n / legacy_s, csv_mb / legacy_s);
  std::printf("csv, fast:          %10.6f s  (%12.0f rec/s, %7.1f MB/s, %5.2fx)\n",
              fast_s, n / fast_s, csv_mb / fast_s, fast_speedup);
  std::printf("csv, fast x%-2zu:      %10.6f s  (%12.0f rec/s, %7.1f MB/s, %5.2fx)\n",
              width, fast_mt_s, n / fast_mt_s, csv_mb / fast_mt_s,
              fast_mt_speedup);
  std::printf("iqbr decode:        %10.6f s  (%12.0f rec/s, %5.2fx vs legacy)\n",
              iqbr_s, n / iqbr_s, iqbr_speedup);
  std::printf("store index build:  %10.6f s  (%12.0f rec/s)\n", index_s,
              n / index_s);
  std::printf("iqbr reload / index build: %.2fx (budget 2x)\n",
              iqbr_s / index_s);
  std::printf("records byte-identical across paths: %s\n",
              identical ? "yes" : "NO");

  obs::MetricsRegistry registry;
  auto path_gauge = [&registry](const char* path, double seconds) {
    registry
        .gauge("iqb_bench_ingest_seconds", "Wall time of one ingestion pass",
               {{"path", path}})
        .set(seconds);
  };
  path_gauge("csv_legacy", legacy_s);
  path_gauge("csv_fast", fast_s);
  path_gauge("csv_fast_mt", fast_mt_s);
  path_gauge("iqbr", iqbr_s);
  path_gauge("store_index_build", index_s);
  auto speedup_gauge = [&registry](const char* path, double speedup) {
    registry
        .gauge("iqb_bench_ingest_speedup",
               "Ingestion speedup over the legacy CSV reader",
               {{"path", path}})
        .set(speedup);
  };
  speedup_gauge("csv_fast", fast_speedup);
  speedup_gauge("csv_fast_mt", fast_mt_speedup);
  speedup_gauge("iqbr", iqbr_speedup);
  registry
      .gauge("iqb_bench_outputs_byte_identical",
             "1 when every ingestion path reproduced the records exactly", {})
      .set(identical ? 1.0 : 0.0);
  auto count_gauge = [&registry](const char* what, double value) {
    registry
        .gauge("iqb_bench_items", "Item counts for the bench run",
               {{"what", what}})
        .set(value);
  };
  count_gauge("records", n);
  count_gauge("csv_bytes", static_cast<double>(csv.size()));
  count_gauge("iqbr_bytes", static_cast<double>(iqbr.size()));
  count_gauge("threads", static_cast<double>(width));
  std::ofstream snapshot("BENCH_ingest.json", std::ios::binary);
  snapshot << obs::metrics_to_json(registry).dump(2) << "\n";
  std::printf("wrote BENCH_ingest.json\n");

  if (check) {
    if (!identical) {
      std::printf("CHECK FAILED: ingestion paths are not byte-identical\n");
      return 1;
    }
    // The measured margin is ~5x; gating at 2x keeps the check
    // meaningful without flaking on noisy shared runners.
    if (2.0 * fast_s > legacy_s || 2.0 * fast_mt_s > legacy_s) {
      std::printf("CHECK FAILED: fast path (%.6f s serial, %.6f s x%zu) is "
                  "not at least 2x faster than legacy (%.6f s)\n",
                  fast_s, fast_mt_s, width, legacy_s);
      return 1;
    }
    if (iqbr_s >= legacy_s) {
      std::printf("CHECK FAILED: iqbr decode (%.6f s) is not faster than "
                  "legacy CSV (%.6f s)\n",
                  iqbr_s, legacy_s);
      return 1;
    }
    if (iqbr_s > 2.0 * index_s) {
      std::printf("CHECK FAILED: iqbr decode (%.6f s) blows the 2x budget "
                  "against the store index build (%.6f s)\n",
                  iqbr_s, index_s);
      return 1;
    }
    std::printf("check ok: fast %.2fx, fast x%zu %.2fx, iqbr %.2fx, "
                "outputs byte-identical\n",
                fast_speedup, width, fast_mt_speedup, iqbr_speedup);
  }
  return 0;
}
