// Experiment Fig. 2 — regenerate the paper's network-requirement
// threshold table and exercise every cell.
//
// Part 1 prints the threshold table in the paper's layout (min/high
// per use case x requirement) straight from ThresholdTable::
// paper_defaults(), so a reviewer can diff it against the published
// figure cell by cell.
//
// Part 2 sweeps a ladder of synthetic connection profiles (dial-up-
// like through symmetric fiber) against every cell and prints which
// quality level each profile reaches per use case — the check that
// the encoded thresholds produce the intended qualitative ordering.
#include <cstdio>
#include <string>
#include <vector>

#include "iqb/core/score.hpp"
#include "iqb/core/thresholds.hpp"

using namespace iqb;
using core::QualityLevel;
using core::Requirement;
using core::UseCase;

namespace {

struct ConnectionProfile {
  const char* name;
  double down_mbps, up_mbps, latency_ms, loss_fraction;
};

constexpr ConnectionProfile kLadder[] = {
    {"legacy_dsl_3m", 3, 0.5, 45, 0.004},
    {"dsl_15m", 15, 2, 35, 0.003},
    {"cable_60m", 60, 10, 25, 0.002},
    {"cable_150m", 150, 15, 22, 0.002},
    {"fttc_120m", 120, 30, 15, 0.001},
    {"fiber_300m", 300, 300, 8, 0.0005},
    {"fiber_1g", 1000, 1000, 4, 0.0001},
    {"geo_satellite_80m", 80, 10, 620, 0.006},
    {"leo_satellite_150m", 150, 20, 45, 0.004},
};

const char* quality_reached(const core::ThresholdTable& table, UseCase use_case,
                            const ConnectionProfile& profile) {
  auto meets = [&](QualityLevel level) {
    const double values[] = {profile.down_mbps, profile.up_mbps,
                             profile.latency_ms, profile.loss_fraction};
    for (std::size_t i = 0; i < core::kAllRequirements.size(); ++i) {
      const Requirement requirement = core::kAllRequirements[i];
      auto threshold = table.get(use_case, requirement, level);
      if (!threshold.ok() || !threshold->met_by(requirement, values[i])) {
        return false;
      }
    }
    return true;
  };
  if (meets(QualityLevel::kHigh)) return "HIGH";
  if (meets(QualityLevel::kMinimum)) return "min";
  return "-";
}

}  // namespace

int main() {
  const core::ThresholdTable table = core::ThresholdTable::paper_defaults();

  std::printf("=== Fig. 2: network requirement thresholds (paper defaults) ===\n");
  std::printf("%-20s | %-13s | %-13s | %-12s | %-12s\n", "Use case",
              "Down (Mb/s)", "Up (Mb/s)", "Latency (ms)", "Loss");
  std::printf("%-20s | %-13s | %-13s | %-12s | %-12s\n", "",
              "min / high", "min / high", "min / high", "min / high");
  std::printf("---------------------+---------------+---------------+--------------+-------------\n");
  for (UseCase use_case : core::kAllUseCases) {
    auto cell = [&](Requirement requirement, QualityLevel level) {
      return table.get(use_case, requirement, level)->value;
    };
    std::printf("%-20s | %5.0f / %-5.0f | %5.0f / %-5.0f | %4.0f / %-5.0f | %.1f%% / %.1f%%\n",
                std::string(core::use_case_display_name(use_case)).c_str(),
                cell(Requirement::kDownloadThroughput, QualityLevel::kMinimum),
                cell(Requirement::kDownloadThroughput, QualityLevel::kHigh),
                cell(Requirement::kUploadThroughput, QualityLevel::kMinimum),
                cell(Requirement::kUploadThroughput, QualityLevel::kHigh),
                cell(Requirement::kLatency, QualityLevel::kMinimum),
                cell(Requirement::kLatency, QualityLevel::kHigh),
                cell(Requirement::kPacketLoss, QualityLevel::kMinimum) * 100.0,
                cell(Requirement::kPacketLoss, QualityLevel::kHigh) * 100.0);
  }

  std::printf("\n=== Threshold exercise: quality level reached per profile ===\n");
  std::printf("%-20s", "profile");
  for (UseCase use_case : core::kAllUseCases) {
    std::printf(" | %-10.10s", std::string(core::use_case_name(use_case)).c_str());
  }
  std::printf("\n");
  for (const ConnectionProfile& profile : kLadder) {
    std::printf("%-20s", profile.name);
    for (UseCase use_case : core::kAllUseCases) {
      std::printf(" | %-10s", quality_reached(table, use_case, profile));
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: quality reached rises monotonically up the wired\n"
      "ladder; GEO satellite fails every latency-sensitive use case despite\n"
      "adequate throughput (the paper's \"beyond speed\" motivation).\n");
  return 0;
}
