// Socket-level fault-injection proxy for fleet chaos tests.
//
// ChaosProxy listens on an ephemeral (or fixed) local port and
// forwards each accepted connection to an upstream host:port, shaping
// the traffic according to its current mode:
//
//   kPass       forward both directions untouched
//   kLatency    forward, but delay the response by latency_ms
//   kDrip       forward the response one chunk per drip_interval_ms
//               (the slowloris/byte-drip shape)
//   kReset      forward the request, send roughly half the response,
//               then hard-reset the connection (SO_LINGER 0 => RST)
//   kRefuse     close every accepted connection immediately
//   kBlackhole  accept and never answer (the peer's deadlines decide)
//
// The mode is runtime-switchable (set_mode) so one test can walk a
// shard through fault and recovery. fault_first_n(n) arms the fault
// for only the next n connections — each subsequent connection is
// forwarded cleanly — which makes hedging deterministic to test: the
// first attempt blackholes, the hedge passes.
//
// The proxy handles one connection per worker thread, one request per
// connection (the Connection: close protocol both HttpServer and
// HttpClient speak). Deterministic: no randomness — faults fire
// exactly as configured.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace iqb::testsupport {

class ChaosProxy {
 public:
  enum class Mode { kPass, kLatency, kDrip, kReset, kRefuse, kBlackhole };

  struct Options {
    std::string upstream_host = "127.0.0.1";
    std::uint16_t upstream_port = 0;
    std::uint16_t listen_port = 0;  ///< 0: ephemeral.
    std::uint64_t latency_ms = 300;       ///< kLatency response delay.
    std::uint64_t drip_interval_ms = 50;  ///< kDrip inter-chunk gap.
    std::size_t drip_chunk = 16;          ///< kDrip bytes per chunk.
  };

  explicit ChaosProxy(Options options) : options_(options) {}
  ~ChaosProxy() { stop(); }
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  bool start() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return false;
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(options_.listen_port);
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
               sizeof(address)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    socklen_t len = sizeof(address);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address), &len);
    port_ = ntohs(address.sin_port);
    stopping_.store(false);
    accept_thread_ = std::thread([this] { accept_loop(); });
    return true;
  }

  void stop() {
    if (listen_fd_ < 0) return;
    stopping_.store(true);
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (accept_thread_.joinable()) accept_thread_.join();
    std::lock_guard<std::mutex> lock(workers_mutex_);
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    workers_.clear();
  }

  std::uint16_t port() const noexcept { return port_; }

  void set_mode(Mode mode) {
    mode_.store(mode);
    faults_remaining_.store(-1);  // unlimited
  }

  /// Apply the current fault mode to only the next `n` connections;
  /// later connections pass cleanly.
  void fault_first_n(Mode mode, int n) {
    mode_.store(mode);
    faults_remaining_.store(n);
  }

  std::uint64_t connections() const noexcept { return connections_.load(); }
  std::uint64_t faulted() const noexcept { return faulted_.load(); }

 private:
  void accept_loop() {
    while (!stopping_.load()) {
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client < 0) {
        if (stopping_.load()) return;
        continue;
      }
      connections_.fetch_add(1);
      Mode mode = mode_.load();
      if (mode != Mode::kPass) {
        int remaining = faults_remaining_.load();
        if (remaining == 0) {
          mode = Mode::kPass;
        } else if (remaining > 0) {
          // Claim one fault slot; lost races just fault one extra
          // connection, which the tests' budgets tolerate.
          faults_remaining_.store(remaining - 1);
        }
      }
      if (mode != Mode::kPass) faulted_.fetch_add(1);
      std::lock_guard<std::mutex> lock(workers_mutex_);
      workers_.emplace_back([this, client, mode] { serve(client, mode); });
    }
  }

  void serve(int client, Mode mode) {
    switch (mode) {
      case Mode::kRefuse:
        ::close(client);
        return;
      case Mode::kBlackhole: {
        // Hold the connection open, reading nothing, until the peer
        // gives up or the proxy stops.
        while (!stopping_.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        ::close(client);
        return;
      }
      default:
        break;
    }

    // Read the request head (Connection: close, no request bodies in
    // this protocol), forward it upstream, then shape the response.
    std::string request;
    if (!read_until_blank_line(client, request)) {
      ::close(client);
      return;
    }
    const int upstream = connect_upstream();
    if (upstream < 0) {
      ::close(client);
      return;
    }
    if (!send_all(upstream, request)) {
      ::close(upstream);
      ::close(client);
      return;
    }
    std::string response;
    char buffer[8192];
    for (;;) {
      const ssize_t n = ::recv(upstream, buffer, sizeof(buffer), 0);
      if (n <= 0) break;
      response.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(upstream);

    switch (mode) {
      case Mode::kLatency:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.latency_ms));
        send_all(client, response);
        break;
      case Mode::kDrip: {
        std::size_t at = 0;
        while (at < response.size() && !stopping_.load()) {
          const std::size_t len =
              std::min(options_.drip_chunk, response.size() - at);
          if (!send_all(client, response.substr(at, len))) break;
          at += len;
          std::this_thread::sleep_for(
              std::chrono::milliseconds(options_.drip_interval_ms));
        }
        break;
      }
      case Mode::kReset: {
        send_all(client, response.substr(0, response.size() / 2));
        // SO_LINGER 0 turns close() into an RST: the peer sees a hard
        // mid-response reset, not a tidy FIN.
        linger hard{1, 0};
        ::setsockopt(client, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
        break;
      }
      default:
        send_all(client, response);
        break;
    }
    ::close(client);
  }

  bool read_until_blank_line(int fd, std::string& out) {
    char buffer[4096];
    while (out.find("\r\n\r\n") == std::string::npos) {
      pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, 2000) <= 0) return false;
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n <= 0) return false;
      out.append(buffer, static_cast<std::size_t>(n));
      if (out.size() > 1 << 20) return false;
    }
    return true;
  }

  int connect_upstream() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(options_.upstream_port);
    ::inet_pton(AF_INET, options_.upstream_host.c_str(), &address.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }

  static bool send_all(int fd, const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  Options options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<Mode> mode_{Mode::kPass};
  std::atomic<int> faults_remaining_{-1};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> faulted_{0};
  std::thread accept_thread_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
};

}  // namespace iqb::testsupport
