// Minimal blocking HTTP/1.1 test client: one GET, Connection: close,
// read to EOF. Only what the telemetry-server tests need — keeping it
// here avoids dragging a client into the library proper.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

namespace iqb::testsupport {

struct HttpResult {
  bool ok = false;      ///< Connected and got a parsable status line.
  int status = 0;
  std::string body;
  std::string raw;
};

inline HttpResult http_get(std::uint16_t port, const std::string& path,
                           const std::string& method = "GET") {
  HttpResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    return result;
  }
  const std::string request = method + " " + path +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return result;
    }
    sent += static_cast<std::size_t>(n);
  }
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    result.raw.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (result.raw.rfind("HTTP/1.1 ", 0) != 0 || result.raw.size() < 12) {
    return result;
  }
  result.status = std::atoi(result.raw.c_str() + 9);
  const std::size_t header_end = result.raw.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    result.body = result.raw.substr(header_end + 4);
  }
  result.ok = result.status != 0;
  return result;
}

}  // namespace iqb::testsupport
