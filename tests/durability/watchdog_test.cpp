// robust::CycleWatchdog: deterministic deadline firing on an injected
// clock, once-per-cycle semantics, disarm, and the monitor thread.
#include "iqb/robust/watchdog.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace iqb::robust {
namespace {

/// Manually driven time source for deterministic expiry.
struct ManualClock {
  std::atomic<std::uint64_t> now_ms{0};
  std::function<std::uint64_t()> source() {
    return [this] { return now_ms.load(); };
  }
};

TEST(CycleWatchdogTest, FiresOncePerArmedCycleOnInjectedClock) {
  ManualClock clock;
  std::vector<std::uint64_t> timed_out;
  CycleWatchdog::Options options;
  options.deadline_ms = 1000;
  options.now_ms = clock.source();
  options.on_timeout = [&](std::uint64_t cycle) {
    timed_out.push_back(cycle);
  };
  CycleWatchdog watchdog(std::move(options));

  watchdog.arm(1);
  EXPECT_FALSE(watchdog.check_now());  // deadline not reached
  clock.now_ms = 999;
  EXPECT_FALSE(watchdog.check_now());
  clock.now_ms = 1000;
  EXPECT_TRUE(watchdog.check_now());   // fires exactly at the deadline
  EXPECT_TRUE(watchdog.expired());
  EXPECT_TRUE(watchdog.check_now());   // still expired, but...
  ASSERT_EQ(timed_out.size(), 1u);     // ...the callback ran only once
  EXPECT_EQ(timed_out[0], 1u);
  EXPECT_EQ(watchdog.timeouts_total(), 1u);

  // Re-arming grants the next cycle a fresh budget and resets expiry.
  watchdog.arm(2);
  EXPECT_FALSE(watchdog.expired());
  EXPECT_FALSE(watchdog.check_now());
  clock.now_ms = 2100;
  EXPECT_TRUE(watchdog.check_now());
  ASSERT_EQ(timed_out.size(), 2u);
  EXPECT_EQ(timed_out[1], 2u);
  EXPECT_EQ(watchdog.timeouts_total(), 2u);
}

TEST(CycleWatchdogTest, DisarmPreventsFiring) {
  ManualClock clock;
  std::atomic<int> fired{0};
  CycleWatchdog::Options options;
  options.deadline_ms = 100;
  options.now_ms = clock.source();
  options.on_timeout = [&](std::uint64_t) { fired.fetch_add(1); };
  CycleWatchdog watchdog(std::move(options));

  watchdog.arm(1);
  watchdog.disarm();  // cycle finished in time
  clock.now_ms = 10'000;
  EXPECT_FALSE(watchdog.check_now());
  EXPECT_EQ(fired.load(), 0);
  EXPECT_EQ(watchdog.timeouts_total(), 0u);
}

TEST(CycleWatchdogTest, UnarmedWatchdogNeverFires) {
  ManualClock clock;
  CycleWatchdog::Options options;
  options.deadline_ms = 1;
  options.now_ms = clock.source();
  CycleWatchdog watchdog(std::move(options));
  clock.now_ms = 1'000'000;
  EXPECT_FALSE(watchdog.check_now());
  EXPECT_EQ(watchdog.timeouts_total(), 0u);
}

TEST(CycleWatchdogTest, ZeroDeadlineDisablesTheWatchdog) {
  CycleWatchdog::Options options;
  options.deadline_ms = 0;
  options.on_timeout = [](std::uint64_t) { FAIL() << "must never fire"; };
  CycleWatchdog watchdog(std::move(options));
  watchdog.start();
  EXPECT_FALSE(watchdog.running());  // start() is a no-op at 0
  watchdog.arm(1);
  EXPECT_FALSE(watchdog.check_now());
  watchdog.stop();
}

TEST(CycleWatchdogTest, MonitorThreadFiresOnOverrunningCycle) {
  // Real monitor thread, manual clock: the thread polls every few ms
  // and must observe the advanced clock without any check_now() help.
  ManualClock clock;
  std::atomic<int> fired{0};
  CycleWatchdog::Options options;
  options.deadline_ms = 50;
  options.check_interval_ms = 2;
  options.now_ms = clock.source();
  options.on_timeout = [&](std::uint64_t) { fired.fetch_add(1); };
  CycleWatchdog watchdog(std::move(options));
  watchdog.start();
  ASSERT_TRUE(watchdog.running());

  watchdog.arm(1);
  clock.now_ms = 51;
  for (int i = 0; i < 500 && fired.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(fired.load(), 1);
  EXPECT_TRUE(watchdog.expired());
  watchdog.stop();
  EXPECT_FALSE(watchdog.running());
  watchdog.stop();  // idempotent
}

TEST(CycleWatchdogTest, StopJoinsWhileArmed) {
  ManualClock clock;
  CycleWatchdog::Options options;
  options.deadline_ms = 1'000'000;
  options.check_interval_ms = 1;
  options.now_ms = clock.source();
  CycleWatchdog watchdog(std::move(options));
  watchdog.start();
  watchdog.arm(1);
  watchdog.stop();  // must join promptly despite the armed deadline
  EXPECT_FALSE(watchdog.running());
}

}  // namespace
}  // namespace iqb::robust
