// robust::Checkpoint framing and CheckpointStore recovery semantics:
// round-trips, every rejection class (torn, bit rot, foreign
// version), generation pruning, and newest-valid-wins fallback.
#include "iqb/robust/checkpoint.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "iqb/util/fs.hpp"

namespace iqb::robust {
namespace {

Checkpoint example_checkpoint(std::uint64_t cycle = 7) {
  Checkpoint checkpoint;
  checkpoint.cycle = cycle;
  checkpoint.cycles_attempted = cycle + 2;
  checkpoint.cycles_failed = 2;
  checkpoint.trace_id = "iqbd-" + std::to_string(cycle);
  checkpoint.scores_json = "{\"regions\": [{\"iqb\": 71.5}]}\n";
  checkpoint.tier_c = true;
  checkpoint.tier_c_regions = {"rural-east", "islands"};
  return checkpoint;
}

std::filesystem::path fresh_dir(const std::string& tag) {
  const auto dir =
      std::filesystem::temp_directory_path() /
      ("iqb_ckpt_test_" + tag + "_" + std::to_string(getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

void write_raw(const std::filesystem::path& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
}

TEST(CheckpointTest, EncodeDecodeRoundTripsEveryField) {
  const Checkpoint original = example_checkpoint();
  auto decoded = Checkpoint::decode(original.encode());
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded->cycle, original.cycle);
  EXPECT_EQ(decoded->cycles_attempted, original.cycles_attempted);
  EXPECT_EQ(decoded->cycles_failed, original.cycles_failed);
  EXPECT_EQ(decoded->trace_id, original.trace_id);
  EXPECT_EQ(decoded->scores_json, original.scores_json);
  EXPECT_EQ(decoded->tier_c, original.tier_c);
  EXPECT_EQ(decoded->tier_c_regions, original.tier_c_regions);
}

TEST(CheckpointTest, EncodedFrameDeclaresPayloadSizeAndCrc) {
  const std::string frame = example_checkpoint().encode();
  ASSERT_EQ(frame.rfind("IQBCKPT 1 ", 0), 0u) << frame.substr(0, 40);
  const std::size_t newline = frame.find('\n');
  ASSERT_NE(newline, std::string::npos);
  const std::string payload = frame.substr(newline + 1);
  // Header byte count pins the payload exactly.
  EXPECT_NE(frame.find(" " + std::to_string(payload.size()) + "\n"),
            std::string::npos);
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x",
                iqb::util::fs::crc32(payload));
  EXPECT_NE(frame.find(crc_hex), std::string::npos);
}

TEST(CheckpointTest, TruncationIsRejectedAtEveryCut) {
  const std::string frame = example_checkpoint().encode();
  // Any prefix must fail to decode — the torn-write cases the framing
  // exists to catch, including cuts that land on valid JSON prefixes.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    auto decoded = Checkpoint::decode(frame.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut << " decoded";
  }
}

TEST(CheckpointTest, BitFlipAnywhereInPayloadIsRejected) {
  const std::string frame = example_checkpoint().encode();
  const std::size_t payload_start = frame.find('\n') + 1;
  for (std::size_t at = payload_start; at < frame.size(); at += 7) {
    std::string mutated = frame;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x40);
    auto decoded = Checkpoint::decode(mutated);
    EXPECT_FALSE(decoded.ok()) << "flip at " << at << " decoded";
  }
}

TEST(CheckpointTest, ForeignVersionAndMagicAreRejected) {
  std::string frame = example_checkpoint().encode();
  std::string wrong_version = frame;
  wrong_version.replace(frame.find(" 1 "), 3, " 2 ");
  auto decoded = Checkpoint::decode(wrong_version);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().message.find("version"), std::string::npos);

  std::string wrong_magic = frame;
  wrong_magic[0] = 'X';
  EXPECT_FALSE(Checkpoint::decode(wrong_magic).ok());

  EXPECT_FALSE(Checkpoint::decode("").ok());
  EXPECT_FALSE(Checkpoint::decode("not a checkpoint at all").ok());
}

TEST(CheckpointTest, TrailingBytesAreRejected) {
  // Appended garbage (e.g. a doubled write) must not decode either.
  EXPECT_FALSE(Checkpoint::decode(example_checkpoint().encode() + "x").ok());
}

TEST(CheckpointStoreTest, SaveThenLoadNewestWins) {
  const auto dir = fresh_dir("newest");
  CheckpointStore store(dir);
  ASSERT_TRUE(store.prepare().ok());
  ASSERT_TRUE(store.save(example_checkpoint(1)).ok());
  ASSERT_TRUE(store.save(example_checkpoint(2)).ok());
  auto outcome = store.load_newest();
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->checkpoint.has_value());
  EXPECT_EQ(outcome->checkpoint->cycle, 2u);
  EXPECT_TRUE(outcome->rejected.empty());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointStoreTest, PrunesGenerationsBeyondKeep) {
  const auto dir = fresh_dir("prune");
  CheckpointStore store(dir, /*keep=*/2);
  ASSERT_TRUE(store.prepare().ok());
  for (std::uint64_t cycle = 1; cycle <= 5; ++cycle) {
    ASSERT_TRUE(store.save(example_checkpoint(cycle)).ok());
  }
  EXPECT_FALSE(std::filesystem::exists(store.path_for_cycle(3)));
  EXPECT_TRUE(std::filesystem::exists(store.path_for_cycle(4)));
  EXPECT_TRUE(std::filesystem::exists(store.path_for_cycle(5)));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointStoreTest, CorruptNewestFallsBackToOlderGeneration) {
  const auto dir = fresh_dir("fallback");
  CheckpointStore store(dir);
  ASSERT_TRUE(store.prepare().ok());
  ASSERT_TRUE(store.save(example_checkpoint(1)).ok());
  ASSERT_TRUE(store.save(example_checkpoint(2)).ok());
  // Tear the newest file in half — recovery must skip it with a
  // reason and serve cycle 1 instead.
  const auto newest = store.path_for_cycle(2);
  const std::string full = iqb::util::fs::read_file(newest).value();
  write_raw(newest, full.substr(0, full.size() / 2));

  auto outcome = store.load_newest();
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->checkpoint.has_value());
  EXPECT_EQ(outcome->checkpoint->cycle, 1u);
  ASSERT_EQ(outcome->rejected.size(), 1u);
  EXPECT_EQ(outcome->rejected[0].file,
            newest.filename().string());
  EXPECT_FALSE(outcome->rejected[0].reason.empty());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointStoreTest, AllCorruptYieldsEmptyOutcomeWithReasons) {
  const auto dir = fresh_dir("allcorrupt");
  CheckpointStore store(dir);
  ASSERT_TRUE(store.prepare().ok());
  ASSERT_TRUE(store.save(example_checkpoint(1)).ok());
  ASSERT_TRUE(store.save(example_checkpoint(2)).ok());
  write_raw(store.path_for_cycle(1), "IQBCKPT garbage");
  std::string flipped = iqb::util::fs::read_file(store.path_for_cycle(2)).value();
  flipped[flipped.size() - 3] ^= 0x01;
  write_raw(store.path_for_cycle(2), flipped);

  auto outcome = store.load_newest();
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->checkpoint.has_value());
  EXPECT_EQ(outcome->rejected.size(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointStoreTest, MissingDirectoryIsEmptyNotError) {
  CheckpointStore store(fresh_dir("missing") / "never-created");
  auto outcome = store.load_newest();
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->checkpoint.has_value());
  EXPECT_TRUE(outcome->rejected.empty());
}

TEST(CheckpointStoreTest, TempLeftoversAreIgnored) {
  const auto dir = fresh_dir("tmpjunk");
  CheckpointStore store(dir);
  ASSERT_TRUE(store.prepare().ok());
  ASSERT_TRUE(store.save(example_checkpoint(3)).ok());
  // A crash mid-atomic_write can leave .tmp files; loading must not
  // even look at them (they are not named checkpoint-*.ckpt).
  write_raw(dir / "checkpoint-00000000000000000009.ckpt.tmp.1.2", "torn");
  write_raw(dir / "unrelated.txt", "noise");
  auto outcome = store.load_newest();
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->checkpoint.has_value());
  EXPECT_EQ(outcome->checkpoint->cycle, 3u);
  EXPECT_TRUE(outcome->rejected.empty());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointStoreTest, ExplicitPruneRemovesBeyondKeepAndReportsOk) {
  const auto dir = fresh_dir("explicitprune");
  CheckpointStore store(dir, /*keep=*/1);
  ASSERT_TRUE(store.prepare().ok());
  for (std::uint64_t cycle = 1; cycle <= 4; ++cycle) {
    ASSERT_TRUE(store.save(example_checkpoint(cycle)).ok());
  }
  // Regression: prune() must fsync the directory after unlinking and
  // surface failures instead of silently swallowing them — a crash
  // mid-prune could otherwise resurrect a deleted file as
  // newest-on-disk. Success here asserts the happy path end to end.
  auto pruned = store.prune();
  ASSERT_TRUE(pruned.ok()) << pruned.error().to_string();
  EXPECT_FALSE(std::filesystem::exists(store.path_for_cycle(3)));
  EXPECT_TRUE(std::filesystem::exists(store.path_for_cycle(4)));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointStoreTest, PruneOnMissingDirectoryIsNoop) {
  CheckpointStore store(fresh_dir("prunemissing") / "never-created");
  auto pruned = store.prune();
  EXPECT_TRUE(pruned.ok()) << pruned.error().to_string();
}

TEST(CheckpointStoreTest, ListReportsVerifiedGenerationsOldestFirst) {
  const auto dir = fresh_dir("list");
  CheckpointStore store(dir);
  ASSERT_TRUE(store.prepare().ok());
  ASSERT_TRUE(store.save(example_checkpoint(2)).ok());
  ASSERT_TRUE(store.save(example_checkpoint(5)).ok());
  ASSERT_TRUE(store.save(example_checkpoint(9)).ok());
  // Rot the middle generation: the catalog must skip it, not lie
  // about holding a frame it could never serve.
  std::string rotted = iqb::util::fs::read_file(store.path_for_cycle(5)).value();
  rotted[rotted.size() - 2] ^= 0x10;
  write_raw(store.path_for_cycle(5), rotted);

  auto entries = store.list();
  ASSERT_TRUE(entries.ok()) << entries.error().to_string();
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].cycle, 2u);
  EXPECT_EQ((*entries)[1].cycle, 9u);
  const std::string frame = example_checkpoint(9).encode();
  EXPECT_EQ((*entries)[1].bytes, frame.size());
  EXPECT_EQ((*entries)[1].crc32_hex.size(), 8u);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointStoreTest, ListOnMissingDirectoryIsEmpty) {
  CheckpointStore store(fresh_dir("listmissing") / "never-created");
  auto entries = store.list();
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
}

TEST(CheckpointStoreTest, ReadFrameServesOnlyVerifiedBytes) {
  const auto dir = fresh_dir("readframe");
  CheckpointStore store(dir);
  ASSERT_TRUE(store.prepare().ok());
  ASSERT_TRUE(store.save(example_checkpoint(4)).ok());

  auto frame = store.read_frame(4);
  ASSERT_TRUE(frame.ok()) << frame.error().to_string();
  EXPECT_EQ(*frame, example_checkpoint(4).encode());

  // A rotted frame must be refused with the decode reason, never
  // forwarded to a peer.
  std::string rotted = *frame;
  rotted[rotted.size() - 1] ^= 0x01;
  write_raw(store.path_for_cycle(4), rotted);
  auto refused = store.read_frame(4);
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.error().message.find("refusing to serve"),
            std::string::npos);

  EXPECT_FALSE(store.read_frame(99).ok());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointStoreTest, ImportFrameReverifiesAndPersists) {
  const auto dir = fresh_dir("import");
  CheckpointStore store(dir, /*keep=*/2);
  ASSERT_TRUE(store.prepare().ok());

  auto imported = store.import_frame(example_checkpoint(11).encode());
  ASSERT_TRUE(imported.ok()) << imported.error().to_string();
  EXPECT_EQ(imported->cycle, 11u);
  EXPECT_TRUE(std::filesystem::exists(store.path_for_cycle(11)));
  auto outcome = store.load_newest();
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->checkpoint.has_value());
  EXPECT_EQ(outcome->checkpoint->cycle, 11u);

  // CRC re-verification happens on this side of the wire: a frame
  // flipped in transit is rejected and nothing lands on disk.
  std::string flipped = example_checkpoint(12).encode();
  flipped[flipped.size() - 4] ^= 0x02;
  auto rejected = store.import_frame(flipped);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.error().message.find("rejecting imported frame"),
            std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(store.path_for_cycle(12)));

  // Imports respect the keep bound like saves do.
  ASSERT_TRUE(store.import_frame(example_checkpoint(13).encode()).ok());
  ASSERT_TRUE(store.import_frame(example_checkpoint(14).encode()).ok());
  EXPECT_FALSE(std::filesystem::exists(store.path_for_cycle(11)));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointStoreTest, FilenamesSortInCycleOrder) {
  CheckpointStore store("/tmp/iqb-unused");
  // Zero-padded names keep lexicographic order == numeric order, which
  // load_newest()'s reverse scan relies on.
  EXPECT_LT(store.path_for_cycle(9).filename().string(),
            store.path_for_cycle(10).filename().string());
  EXPECT_LT(store.path_for_cycle(99).filename().string(),
            store.path_for_cycle(100).filename().string());
}

}  // namespace
}  // namespace iqb::robust
