// util::fs durability primitives: CRC-32 vectors and the atomic
// write-fsync-rename path checkpointing depends on.
#include "iqb/util/fs.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

namespace iqb::util::fs {
namespace {

std::filesystem::path temp_dir() {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("iqb_fs_test_" + std::to_string(getpid()));
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(Crc32Test, MatchesKnownVectors) {
  // The canonical CRC-32/IEEE check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  std::uint32_t state = crc32_init();
  state = crc32_update(state, data.substr(0, 7));
  state = crc32_update(state, data.substr(7, 1));
  state = crc32_update(state, data.substr(8));
  EXPECT_EQ(crc32_final(state), crc32(data));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data = "IQBCKPT payload bytes";
  const std::uint32_t clean = crc32(data);
  data[5] ^= 0x01;
  EXPECT_NE(crc32(data), clean);
}

TEST(AtomicWriteTest, WritesAndOverwritesWithoutTempLeftovers) {
  const auto dir = temp_dir();
  const auto path = dir / "atomic.txt";
  ASSERT_TRUE(atomic_write(path, "first\n").ok());
  EXPECT_EQ(read_file(path).value(), "first\n");
  ASSERT_TRUE(atomic_write(path, "second\n").ok());
  EXPECT_EQ(read_file(path).value(), "second\n");
  // The rename consumed the temp file; the directory holds exactly
  // the target.
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(dir);
}

TEST(AtomicWriteTest, RoundTripsBinaryData) {
  const auto dir = temp_dir();
  const auto path = dir / "binary.bin";
  std::string data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<char>(i));
  ASSERT_TRUE(atomic_write(path, data).ok());
  EXPECT_EQ(read_file(path).value(), data);
  std::filesystem::remove_all(dir);
}

TEST(AtomicWriteTest, MissingDirectoryFailsAndTargetUntouched) {
  const auto path =
      temp_dir() / "no" / "such" / "dir" / "file.txt";
  EXPECT_FALSE(atomic_write(path, "data").ok());
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(ReadFileTest, MissingFileIsAnError) {
  EXPECT_FALSE(read_file("/nonexistent/iqb-fs-test").ok());
}

TEST(FsyncDirTest, SucceedsOnExistingDirectory) {
  const auto dir = temp_dir();
  auto synced = fsync_dir(dir);
  EXPECT_TRUE(synced.ok()) << synced.error().to_string();
  std::filesystem::remove_all(dir);
}

TEST(FsyncDirTest, EmptyPathMeansCurrentDirectory) {
  EXPECT_TRUE(fsync_dir("").ok());
}

TEST(FsyncDirTest, MissingDirectoryIsAnIoError) {
  auto synced = fsync_dir("/nonexistent/iqb-fsync-dir-test");
  ASSERT_FALSE(synced.ok());
  EXPECT_EQ(synced.error().code, ErrorCode::kIoError);
  EXPECT_NE(synced.error().message.find("cannot open directory"),
            std::string::npos);
}

}  // namespace
}  // namespace iqb::util::fs
