// iqbd durability end-to-end: per-cycle checkpoints, restart
// recovery (stale serving, corrupt-skip, monotone counters), the
// watchdog cancelling a slow cycle, graceful stop, and the
// checkpoint-off path staying bit-identical.
#include "iqb/cli/daemon.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "iqb/datasets/io.hpp"
#include "iqb/datasets/synthetic.hpp"
#include "iqb/robust/checkpoint.hpp"
#include "iqb/util/fs.hpp"
#include "iqb/util/json.hpp"
#include "../testsupport/http_get.hpp"

namespace iqb::cli {
namespace {

using testsupport::http_get;

/// Poll until `predicate` holds or ~5 s elapse.
template <typename Predicate>
bool eventually(Predicate predicate) {
  for (int i = 0; i < 500; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

class DaemonRecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    records_path_ =
        (std::filesystem::temp_directory_path() /
         ("iqb_recovery_test_records_" + std::to_string(getpid()) + ".csv"))
            .string();
    util::Rng rng(431);
    datasets::RecordStore store;
    datasets::SyntheticConfig config;
    config.records_per_dataset = 40;
    config.base_time = util::Timestamp::parse("2025-03-01").value();
    config.spacing_s = 3600;
    for (const auto& profile : datasets::example_region_profiles()) {
      store.add_all(datasets::generate_region_records(
          profile, datasets::default_dataset_panel(), config, rng));
    }
    ASSERT_TRUE(
        datasets::write_records_csv(records_path_, store.records()).ok());
  }

  static void TearDownTestSuite() { std::remove(records_path_.c_str()); }

  void SetUp() override {
    state_dir_ = (std::filesystem::temp_directory_path() /
                  ("iqb_recovery_state_" + std::to_string(getpid()) + "_" +
                   ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
                     .string();
    std::filesystem::remove_all(state_dir_);
  }

  void TearDown() override { std::filesystem::remove_all(state_dir_); }

  DaemonOptions base_options() const {
    DaemonOptions options;
    options.records_path = records_path_;
    options.port = 0;  // ephemeral
    options.state_dir = state_dir_;
    return options;
  }

  static std::string records_path_;
  std::string state_dir_;
};

std::string DaemonRecoveryTest::records_path_;

TEST_F(DaemonRecoveryTest, EveryCompletedCycleWritesAValidCheckpoint) {
  WatchDaemon daemon(base_options());
  std::ostringstream err;
  ASSERT_TRUE(daemon.run_cycle(err)) << err.str();
  ASSERT_TRUE(daemon.run_cycle(err)) << err.str();

  robust::CheckpointStore store(state_dir_);
  for (std::uint64_t cycle : {1u, 2u}) {
    auto data = util::fs::read_file(store.path_for_cycle(cycle));
    ASSERT_TRUE(data.ok()) << "missing checkpoint for cycle " << cycle;
    auto checkpoint = robust::Checkpoint::decode(*data);
    ASSERT_TRUE(checkpoint.ok()) << checkpoint.error().to_string();
    EXPECT_EQ(checkpoint->cycle, cycle);
    EXPECT_EQ(checkpoint->trace_id, "iqbd-" + std::to_string(cycle));
    EXPECT_EQ(checkpoint->scores_json,
              daemon.server().latest()->scores_json);
  }
}

TEST_F(DaemonRecoveryTest, RestartServesRecoveredSnapshotUntilFreshCycle) {
  std::string scores_before;
  {
    WatchDaemon first(base_options());
    std::ostringstream err;
    ASSERT_TRUE(first.run_cycle(err));
    ASSERT_TRUE(first.run_cycle(err));
    scores_before = first.server().latest()->scores_json;
  }  // "crash": the daemon goes away, the state dir survives

  WatchDaemon second(base_options());
  std::ostringstream err;
  ASSERT_TRUE(second.recover(err).ok()) << err.str();
  EXPECT_NE(err.str().find("recovered checkpoint: cycle 2"),
            std::string::npos)
      << err.str();
  EXPECT_TRUE(second.serving_stale());
  EXPECT_EQ(second.cycles_total(), 2u);  // counters resume, not reset

  // /readyz answers 200 but flags the snapshot recovered + stale.
  obs::HttpResponse ready = second.server().handle({"GET", "/readyz"});
  EXPECT_EQ(ready.status, 200);
  auto ready_json = util::parse_json(ready.body);
  ASSERT_TRUE(ready_json.ok());
  EXPECT_EQ(ready_json->get_string("status").value(), "recovered");
  EXPECT_TRUE(ready_json->get_bool("stale").value());
  EXPECT_EQ(ready_json->get_number("cycle").value(), 2.0);

  // /scores serves the recovered body verbatim, staleness in headers.
  obs::HttpResponse scores = second.server().handle({"GET", "/scores"});
  EXPECT_EQ(scores.status, 200);
  EXPECT_EQ(scores.body, scores_before);
  ASSERT_EQ(scores.headers.size(), 2u);
  EXPECT_EQ(scores.headers[0].first, "X-IQB-Stale");
  EXPECT_EQ(scores.headers[0].second, "true");
  EXPECT_EQ(scores.headers[1].first, "X-IQB-Recovered-Cycle");
  EXPECT_EQ(scores.headers[1].second, "2");

  // The first fresh cycle replaces the stale snapshot; ordinals stay
  // monotone across the restart.
  ASSERT_TRUE(second.run_cycle(err));
  EXPECT_FALSE(second.serving_stale());
  EXPECT_EQ(second.server().latest()->cycle, 3u);
  ready = second.server().handle({"GET", "/readyz"});
  auto fresh_json = util::parse_json(ready.body);
  ASSERT_TRUE(fresh_json.ok());
  EXPECT_EQ(fresh_json->get_string("status").value(), "ready");
  EXPECT_FALSE(fresh_json->get_bool("stale").value());
  EXPECT_EQ(second.server().handle({"GET", "/scores"}).headers.size(), 0u);
}

TEST_F(DaemonRecoveryTest, CorruptNewestCheckpointFallsBackAndIsCounted) {
  {
    WatchDaemon first(base_options());
    std::ostringstream err;
    ASSERT_TRUE(first.run_cycle(err));
    ASSERT_TRUE(first.run_cycle(err));
  }
  // Truncate the newest generation: a torn write survived a crash.
  robust::CheckpointStore store(state_dir_);
  const auto newest = store.path_for_cycle(2);
  const std::string full = util::fs::read_file(newest).value();
  {
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    out << full.substr(0, full.size() / 3);
  }

  WatchDaemon second(base_options());
  std::ostringstream err;
  ASSERT_TRUE(second.recover(err).ok());
  EXPECT_EQ(second.checkpoints_rejected(), 1u);
  EXPECT_NE(err.str().find("skipping corrupt checkpoint"),
            std::string::npos)
      << err.str();
  ASSERT_TRUE(second.serving_stale());
  EXPECT_EQ(second.server().latest()->cycle, 1u);  // older generation

  // The corruption counter is exported for alerting.
  const std::string metrics =
      second.server().handle({"GET", "/metrics"}).body;
  EXPECT_NE(metrics.find("iqbd_checkpoint_corrupt_total 1"),
            std::string::npos)
      << metrics.substr(0, 400);
}

TEST_F(DaemonRecoveryTest, AllCheckpointsCorruptStartsUnready) {
  {
    WatchDaemon first(base_options());
    std::ostringstream err;
    ASSERT_TRUE(first.run_cycle(err));
  }
  robust::CheckpointStore store(state_dir_);
  {
    std::ofstream out(store.path_for_cycle(1),
                      std::ios::binary | std::ios::trunc);
    out << "IQBCKPT not a real checkpoint";
  }
  WatchDaemon second(base_options());
  std::ostringstream err;
  ASSERT_TRUE(second.recover(err).ok());
  EXPECT_EQ(second.checkpoints_rejected(), 1u);
  EXPECT_FALSE(second.serving_stale());
  // No valid generation: same cold start as an empty state dir.
  EXPECT_EQ(second.server().handle({"GET", "/readyz"}).status, 503);
  EXPECT_EQ(second.server().handle({"GET", "/scores"}).status, 503);
  EXPECT_EQ(second.cycles_total(), 0u);
}

TEST_F(DaemonRecoveryTest, WatchdogCancelsSlowCycleAndLoopBacksOff) {
  // Injected clock: the mid-cycle hook pushes time past the deadline,
  // then waits (bounded) for the monitor thread to cancel the cycle.
  auto clock = std::make_shared<std::atomic<std::uint64_t>>(0);
  auto timeouts = std::make_shared<std::atomic<std::uint64_t>>(0);
  WatchDaemon* daemon_ptr = nullptr;

  DaemonOptions options = base_options();
  options.state_dir.reset();  // isolate the watchdog behavior
  options.max_cycles = 1;
  options.poll_ms = 5;
  options.cycle_deadline_ms = 1000;
  options.watchdog_now_ms = [clock] { return clock->load(); };
  options.mid_cycle_hook = [clock, &daemon_ptr] {
    clock->store(5'000);  // well past the 1000 ms budget
    for (int i = 0; i < 500 && daemon_ptr->cycle_timeouts() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  };

  WatchDaemon daemon(options);
  daemon_ptr = &daemon;
  std::ostringstream err;
  ASSERT_TRUE(daemon.start(err).ok());
  ASSERT_TRUE(eventually([&] { return daemon.finished(); })) << err.str();
  daemon.stop();

  EXPECT_EQ(daemon.cycle_timeouts(), 1u);
  EXPECT_EQ(daemon.cycles_failed(), 1u);
  EXPECT_NE(err.str().find("cycle deadline exceeded"), std::string::npos)
      << err.str();
  // A cancelled cycle never publishes: readiness is untouched.
  EXPECT_EQ(daemon.server().handle({"GET", "/readyz"}).status, 503);
  const std::string metrics =
      daemon.server().handle({"GET", "/metrics"}).body;
  EXPECT_NE(metrics.find("iqbd_cycle_timeouts_total 1"), std::string::npos)
      << metrics.substr(0, 400);
}

TEST_F(DaemonRecoveryTest, StopDrainsThreadsAndLeavesNewestCheckpoint) {
  DaemonOptions options = base_options();
  options.interval_ms = 1;
  options.poll_ms = 1;
  WatchDaemon daemon(options);
  std::ostringstream err;
  ASSERT_TRUE(daemon.start(err).ok());
  ASSERT_TRUE(eventually([&] { return daemon.cycles_total() >= 2; }));
  daemon.stop();  // graceful drain: loop, watchdog, HTTP all join
  EXPECT_FALSE(daemon.running());

  // The newest on-disk checkpoint matches the last published cycle —
  // nothing the daemon served was lost at shutdown.
  const auto snapshot = daemon.server().latest();
  ASSERT_NE(snapshot, nullptr);
  robust::CheckpointStore store(state_dir_);
  auto outcome = store.load_newest();
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->checkpoint.has_value());
  EXPECT_EQ(outcome->checkpoint->cycle, snapshot->cycle);
  EXPECT_TRUE(outcome->rejected.empty());
  // stop() is idempotent.
  daemon.stop();
  EXPECT_FALSE(daemon.running());
}

TEST_F(DaemonRecoveryTest, CheckpointOffPathScoresBitIdentically) {
  // Without --state-dir the daemon must behave exactly as before the
  // durability layer existed: same scores, no state files, no stale
  // flag anywhere.
  DaemonOptions with_state = base_options();
  DaemonOptions without_state = base_options();
  without_state.state_dir.reset();
  WatchDaemon durable(with_state);
  WatchDaemon plain(without_state);
  std::ostringstream err;
  ASSERT_TRUE(durable.run_cycle(err));
  ASSERT_TRUE(plain.run_cycle(err));
  const auto a = durable.server().latest();
  const auto b = plain.server().latest();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->scores_json, b->scores_json);
  EXPECT_FALSE(b->stale);
  EXPECT_EQ(plain.server().handle({"GET", "/scores"}).headers.size(), 0u);
}

TEST_F(DaemonRecoveryTest, WipedStateDirBootstrapsFromPeerReplica) {
  // A "peer" daemon whose /checkpointz will hold our replicas. Its own
  // scoring loop is irrelevant here — it serves HTTP and stores what
  // the main daemon pushes.
  const std::string peer_dir = state_dir_ + "_peer";
  std::filesystem::remove_all(peer_dir);
  DaemonOptions peer_options = base_options();
  peer_options.state_dir = peer_dir;
  peer_options.node_id = "peerB";
  peer_options.interval_ms = 60'000;  // one cycle, then idle
  WatchDaemon peer(peer_options);
  std::ostringstream peer_err;
  ASSERT_TRUE(peer.start(peer_err).ok()) << peer_err.str();
  ASSERT_TRUE(eventually([&] { return peer.cycles_total() >= 1; }));

  DaemonOptions main_options = base_options();
  main_options.node_id = "mainA";
  main_options.replicate_to = {{"peerB", "127.0.0.1", peer.port()}};
  main_options.replication_http.connect_timeout_ms = 500;
  main_options.replication_http.io_timeout_ms = 1000;
  main_options.replication_http.total_deadline_ms = 3000;
  main_options.replication_retry_sleep_scale = 0.0;

  std::string scores_before;
  std::uint64_t cycle_before = 0;
  {
    WatchDaemon main(main_options);
    std::ostringstream err;
    ASSERT_NE(main.replicator(), nullptr);
    ASSERT_TRUE(main.run_cycle(err)) << err.str();
    ASSERT_TRUE(main.run_cycle(err)) << err.str();
    scores_before = main.server().latest()->scores_json;
    cycle_before = main.server().latest()->cycle;
  }  // crash

  // The wipe: the node comes back with an empty state dir — disk
  // replaced — and must bootstrap from the peer's replica.
  std::filesystem::remove_all(state_dir_);
  WatchDaemon reborn(main_options);
  std::ostringstream err;
  ASSERT_TRUE(reborn.recover(err).ok()) << err.str();
  EXPECT_EQ(reborn.peer_recoveries(), 1u);
  EXPECT_TRUE(reborn.serving_stale());
  const auto snapshot = reborn.server().latest();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->scores_json, scores_before);
  EXPECT_EQ(snapshot->cycle, cycle_before);
  // Cycle ordinals stay monotone across the wipe: the next fresh
  // cycle continues from the recovered ordinal, never restarts at 1.
  ASSERT_TRUE(reborn.run_cycle(err)) << err.str();
  EXPECT_FALSE(reborn.serving_stale());
  EXPECT_EQ(reborn.server().latest()->cycle, cycle_before + 1);
  peer.stop();
  std::filesystem::remove_all(peer_dir);
}

TEST_F(DaemonRecoveryTest, RecoveryLagKeepsLocalWhenPeerIsNotFresher) {
  const std::string peer_dir = state_dir_ + "_lagpeer";
  std::filesystem::remove_all(peer_dir);
  DaemonOptions peer_options = base_options();
  peer_options.state_dir = peer_dir;
  peer_options.node_id = "peerB";
  peer_options.interval_ms = 60'000;
  WatchDaemon peer(peer_options);
  std::ostringstream peer_err;
  ASSERT_TRUE(peer.start(peer_err).ok()) << peer_err.str();
  ASSERT_TRUE(eventually([&] { return peer.cycles_total() >= 1; }));

  DaemonOptions main_options = base_options();
  main_options.node_id = "mainA";
  main_options.replicate_to = {{"peerB", "127.0.0.1", peer.port()}};
  main_options.replication_retry_sleep_scale = 0.0;
  main_options.recovery_lag = 5;
  {
    WatchDaemon main(main_options);
    std::ostringstream err;
    ASSERT_TRUE(main.run_cycle(err)) << err.str();
  }
  // Local state intact: the peer's copy (same cycle) is within the
  // tolerated lag, so recovery stays local and counts no peer use.
  WatchDaemon again(main_options);
  std::ostringstream err;
  ASSERT_TRUE(again.recover(err).ok()) << err.str();
  EXPECT_EQ(again.peer_recoveries(), 0u);
  ASSERT_NE(again.server().latest(), nullptr);
  EXPECT_EQ(again.server().latest()->cycle, 1u);
  peer.stop();
  std::filesystem::remove_all(peer_dir);
}

TEST_F(DaemonRecoveryTest, ParseArgsAcceptsDurabilityFlags) {
  auto options = parse_daemon_args({"--records", "r.csv", "--state-dir",
                                    "/tmp/iqb-state", "--cycle-deadline-ms",
                                    "2500"});
  ASSERT_TRUE(options.ok()) << options.error().to_string();
  ASSERT_TRUE(options->state_dir.has_value());
  EXPECT_EQ(*options->state_dir, "/tmp/iqb-state");
  EXPECT_EQ(options->cycle_deadline_ms, 2500u);
  EXPECT_FALSE(
      parse_daemon_args({"--records", "r.csv", "--cycle-deadline-ms", "x"})
          .ok());
}

}  // namespace
}  // namespace iqb::cli
