// Slow/abusive-client hardening tests for obs::HttpServer: slowloris
// partial headers, a head exactly at the request-size bound, client
// disconnect mid-response, header CRLF injection, extended reason
// phrases, and the accept-error survival counters.
#include "iqb/obs/http_server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "iqb/obs/metrics.hpp"
#include "../testsupport/http_get.hpp"

namespace iqb::obs {
namespace {

using testsupport::http_get;
using Clock = std::chrono::steady_clock;

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string read_all(int fd) {
  std::string out;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    out.append(buffer, static_cast<std::size_t>(n));
  }
  return out;
}

TEST(HttpAbuse, SlowlorisPartialHeaderIsCutOffByIoTimeout) {
  HttpServer::Options options;
  options.port = 0;
  options.io_timeout_ms = 300;
  HttpServer server(options, [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok"};
  });
  ASSERT_TRUE(server.start().ok());

  // Send a request head that never finishes: a fragment, then
  // silence. The worker must give up at io_timeout_ms and move on,
  // not hold the slot forever.
  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  const std::string fragment = "GET /metrics HTTP/1.1\r\nHost: lo";
  ASSERT_GT(::send(fd, fragment.data(), fragment.size(), MSG_NOSIGNAL), 0);

  const auto start = Clock::now();
  const std::string response = read_all(fd);  // server closes on timeout
  const auto took = std::chrono::duration_cast<std::chrono::milliseconds>(
                        Clock::now() - start)
                        .count();
  ::close(fd);
  // The read timeout turns the unfinished head into a 400 and the
  // connection is closed — the worker never waits past io_timeout_ms.
  EXPECT_EQ(response.rfind("HTTP/1.1 400 ", 0), 0u) << response;
  EXPECT_LT(took, 5000) << "slowloris must not hold a worker hostage";

  // The server remains fully serviceable afterwards.
  const auto after = http_get(server.port(), "/whatever");
  EXPECT_TRUE(after.ok);
  server.stop();
}

TEST(HttpAbuse, HeadExactlyAtRequestByteBoundIsServed) {
  HttpServer::Options options;
  options.port = 0;
  options.max_request_bytes = 512;
  HttpServer server(options, [](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", request.path};
  });
  ASSERT_TRUE(server.start().ok());

  // Build a head whose total size is exactly max_request_bytes,
  // including the terminating blank line: complete at the bound, so
  // it must be answered 200, not 431.
  const std::string prefix = "GET /edge HTTP/1.1\r\nHost: x\r\nX-Pad: ";
  const std::string suffix = "\r\n\r\n";
  const std::size_t pad = 512 - prefix.size() - suffix.size();
  const std::string request = prefix + std::string(pad, 'p') + suffix;
  ASSERT_EQ(request.size(), 512u);

  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_GT(::send(fd, request.data(), request.size(), MSG_NOSIGNAL), 0);
  const std::string response = read_all(fd);
  ::close(fd);
  EXPECT_EQ(response.rfind("HTTP/1.1 200 ", 0), 0u) << response;

  // Well past the bound before the blank line: refused with 431. (The
  // bound is checked as bytes accumulate without a terminator, so the
  // overflow has to out-size a single read.)
  const std::string over = prefix + std::string(8 * 1024, 'p') + suffix;
  const int fd2 = connect_to(server.port());
  ASSERT_GE(fd2, 0);
  ASSERT_GT(::send(fd2, over.data(), over.size(), MSG_NOSIGNAL), 0);
  const std::string refused = read_all(fd2);
  ::close(fd2);
  EXPECT_EQ(refused.rfind("HTTP/1.1 431 ", 0), 0u) << refused;
  server.stop();
}

TEST(HttpAbuse, ClientDisconnectMidResponseDoesNotHarmServer) {
  HttpServer::Options options;
  options.port = 0;
  HttpServer server(options, [](const HttpRequest&) {
    // Large enough that the send cannot complete into the socket
    // buffer before the client is gone.
    return HttpResponse{200, "text/plain", std::string(4 * 1024 * 1024, 'y')};
  });
  ASSERT_TRUE(server.start().ok());

  for (int i = 0; i < 3; ++i) {
    const int fd = connect_to(server.port());
    ASSERT_GE(fd, 0);
    const std::string request =
        "GET /big HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
    ASSERT_GT(::send(fd, request.data(), request.size(), MSG_NOSIGNAL), 0);
    // Read a little, then vanish mid-response.
    char buffer[1024];
    (void)::recv(fd, buffer, sizeof(buffer), 0);
    ::close(fd);
  }
  // The worker pool survives the broken pipes (MSG_NOSIGNAL: EPIPE,
  // not SIGPIPE) and keeps serving.
  const auto after = http_get(server.port(), "/again");
  EXPECT_TRUE(after.ok);
  EXPECT_EQ(after.status, 200);
  server.stop();
}

TEST(HttpAbuse, CrlfInjectionInHandlerHeadersIsStripped) {
  HttpServer::Options options;
  options.port = 0;
  HttpServer server(options, [](const HttpRequest&) {
    HttpResponse response{200, "text/plain", "body"};
    // A handler echoing attacker-controlled data into a header value
    // must not be able to smuggle a second response or extra headers.
    response.headers.emplace_back("X-Evil",
                                  "ok\r\nX-Injected: gotcha\r\n\r\nHTTP/1.1 "
                                  "200 OK");
    response.headers.emplace_back("X-Bad-Name\r\n", "v");
    response.headers.emplace_back("X-Fine", "legit");
    return response;
  });
  ASSERT_TRUE(server.start().ok());

  const auto response = http_get(server.port(), "/");
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.raw.find("X-Injected"), std::string::npos);
  EXPECT_EQ(response.raw.find("X-Evil"), std::string::npos);
  EXPECT_EQ(response.raw.find("X-Bad-Name"), std::string::npos);
  EXPECT_NE(response.raw.find("X-Fine: legit"), std::string::npos);
  server.stop();
}

TEST(HttpAbuse, ExtendedStatusReasons) {
  EXPECT_STREQ(http_status_reason(429), "Too Many Requests");
  EXPECT_STREQ(http_status_reason(502), "Bad Gateway");
  EXPECT_STREQ(http_status_reason(504), "Gateway Timeout");

  // And they render on the wire.
  HttpServer::Options options;
  options.port = 0;
  HttpServer server(options, [](const HttpRequest& request) {
    if (request.path == "/throttle") return HttpResponse{429, "text/plain", ""};
    if (request.path == "/upstream") return HttpResponse{502, "text/plain", ""};
    return HttpResponse{504, "text/plain", ""};
  });
  ASSERT_TRUE(server.start().ok());
  EXPECT_NE(http_get(server.port(), "/throttle")
                .raw.find("429 Too Many Requests"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/upstream").raw.find("502 Bad Gateway"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/x").raw.find("504 Gateway Timeout"),
            std::string::npos);
  server.stop();
}

TEST(HttpAbuse, AcceptErrorCountersStartAtZeroAndExport) {
  MetricsRegistry metrics;
  HttpServer::Options options;
  options.port = 0;
  options.metrics = &metrics;
  HttpServer server(options, [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok"};
  });
  ASSERT_TRUE(server.start().ok());
  EXPECT_EQ(server.accept_errors(), 0u);
  EXPECT_EQ(server.shed_total(), 0u);
  // A normal request does not touch the error counters.
  EXPECT_TRUE(http_get(server.port(), "/").ok);
  EXPECT_EQ(server.accept_errors(), 0u);
  server.stop();
}

}  // namespace
}  // namespace iqb::obs
