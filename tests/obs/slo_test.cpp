// SloEngine: declarative specs -> stateful alerts over the history
// TSDB. The headline test scripts a full Google-style multi-window
// burn-rate incident on a deterministic timeline and asserts the
// exact transition sequence (pending -> firing -> resolved, with
// exact since_ms / cycle / trace stamps) — the PR's acceptance
// criterion. The rest covers spec parsing (unknown fields are
// errors), the hold-down state machine, per-series instances,
// EWMA+MAD anomaly detection, and flap detection.
#include "iqb/obs/slo.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "iqb/obs/history.hpp"
#include "iqb/util/json.hpp"

namespace iqb::obs {
namespace {

// ---------------------------------------------------------------- parsing

TEST(SloParse, ParsesEveryFieldKind) {
  auto parsed = util::parse_json(R"({
    "slos": [
      {"name": "lat", "type": "burn_rate", "metric": "req_ms",
       "objective": 0.95, "threshold_ms": 250,
       "fast_short_ms": 60000, "fast_factor": 10.0,
       "for_ms": 1000, "resolve_ms": 2000,
       "labels": {"path": "/scores"}},
      {"name": "up", "type": "threshold", "metric": "fleet_shard_up",
       "op": "lt", "bound": 1.0},
      {"name": "drift", "type": "anomaly", "metric": "score",
       "ewma_alpha": 0.5, "mad_k": 4.0, "warmup_samples": 4},
      {"name": "flap", "type": "flap", "metric": "tier",
       "max_flips": 2, "flap_window_ms": 5000}
    ]})");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  auto specs = parse_slo_specs(*parsed);
  ASSERT_TRUE(specs.ok()) << specs.error().to_string();
  ASSERT_EQ(specs->size(), 4u);
  EXPECT_EQ((*specs)[0].type, SloSpec::Type::kBurnRate);
  EXPECT_EQ((*specs)[0].objective, 0.95);
  EXPECT_EQ((*specs)[0].fast_short_ms, 60'000u);
  EXPECT_EQ((*specs)[0].fast_factor, 10.0);
  EXPECT_EQ((*specs)[0].for_ms, 1000u);
  EXPECT_EQ((*specs)[0].labels, (LabelSet{{"path", "/scores"}}));
  EXPECT_EQ((*specs)[1].type, SloSpec::Type::kThreshold);
  EXPECT_EQ((*specs)[1].op, SloSpec::Op::kLt);
  EXPECT_EQ((*specs)[2].type, SloSpec::Type::kAnomaly);
  EXPECT_EQ((*specs)[2].warmup_samples, 4u);
  EXPECT_EQ((*specs)[3].type, SloSpec::Type::kFlap);
  EXPECT_EQ((*specs)[3].max_flips, 2u);
}

TEST(SloParse, RejectsBadSpecs) {
  const auto parse = [](const std::string& text) {
    auto document = util::parse_json(text);
    EXPECT_TRUE(document.ok()) << text;
    return parse_slo_specs(*document);
  };
  // A typo'd field silently matching nothing would be an alerting
  // hole, so unknown fields are hard errors.
  EXPECT_FALSE(parse(R"({"slos": [{"name": "x", "type": "threshold",
    "metric": "m", "bogus_field": 1}]})")
                   .ok());
  EXPECT_FALSE(parse(R"({"slos": [{"type": "threshold", "metric": "m"}]})")
                   .ok());  // name required
  EXPECT_FALSE(parse(R"({"slos": [{"name": "x", "metric": "m"}]})")
                   .ok());  // type required
  EXPECT_FALSE(parse(R"({"slos": [{"name": "x", "type": "threshold"}]})")
                   .ok());  // metric required
  EXPECT_FALSE(parse(R"({"slos": [{"name": "x", "type": "nonsense",
    "metric": "m"}]})")
                   .ok());
  EXPECT_FALSE(parse(R"({"slos": [{"name": "x", "type": "burn_rate",
    "metric": "m", "objective": 1.5}]})")
                   .ok());  // objective outside (0, 1)
  EXPECT_FALSE(parse(R"({"slos": [{"name": "x", "type": "threshold",
    "metric": "m", "op": "le"}]})")
                   .ok());
  EXPECT_FALSE(parse(R"({"slos": [{"name": "x", "type": "threshold",
    "metric": "m", "labels": {"k": 3}}]})")
                   .ok());  // label values must be strings
}

TEST(SloParse, LoadsFromFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("iqb_slo_test_" + std::to_string(getpid()) + ".json"))
          .string();
  {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(R"({"slos": [{"name": "up", "type": "threshold",
      "metric": "fleet_shard_up", "op": "lt", "bound": 1.0}]})",
               f);
    std::fclose(f);
  }
  auto specs = load_slo_file(path);
  ASSERT_TRUE(specs.ok()) << specs.error().to_string();
  EXPECT_EQ(specs->size(), 1u);
  EXPECT_EQ((*specs)[0].name, "up");
  std::remove(path.c_str());
  EXPECT_FALSE(load_slo_file(path).ok());  // gone: a load error, not empty
}

// ------------------------------------------- the burn-rate incident

/// The acceptance-criterion test: a scripted error-rate incident on a
/// deterministic timeline must reproduce the multi-window burn-rate
/// firing sequence *exactly* — same transitions, same since_ms, same
/// cycle and trace stamps, every run.
TEST(SloEngine, MultiWindowBurnRateFiringSequenceIsDeterministic) {
  // Request/error counters sampled every 30 s for 13 minutes:
  //   t <= 300 s          healthy (errors flat)
  //   300 s < t <= 600 s  outage (every request errors)
  //   t > 600 s           recovered (errors flat again)
  TimeSeriesStore store;
  for (std::uint64_t t = 0; t <= 780; t += 30) {
    const double total = 100.0 * static_cast<double>(t / 30);
    const double errors =
        t <= 300 ? 0.0
                 : (t <= 600 ? 100.0 * static_cast<double>((t - 300) / 30)
                             : 1000.0);
    store.append("req_total", {}, SeriesKind::kCounterSeries, t * 1000, total);
    store.append("req_errors", {}, SeriesKind::kCounterSeries, t * 1000,
                 errors);
  }

  SloSpec spec;
  spec.type = SloSpec::Type::kBurnRate;
  spec.name = "error_burn";
  spec.metric = "req_total";
  spec.bad_metric = "req_errors";
  spec.objective = 0.99;  // 1% error budget
  spec.fast_short_ms = 60'000;   // test-scale stand-ins for 5m/1h
  spec.fast_long_ms = 300'000;
  spec.fast_factor = 14.4;
  spec.slow_short_ms = 120'000;
  spec.slow_long_ms = 600'000;
  spec.slow_factor = 1e9;  // slow pair effectively off: isolate the fast pair
  spec.for_ms = 120'000;
  spec.resolve_ms = 60'000;

  SloEngine engine({{spec}, 128}, &store);

  // t=300s: the outage has not started; both fast windows are known
  // and quiet.
  EXPECT_TRUE(engine.evaluate(300'000, 1, "t1").empty());

  // t=330s: the short window burns at 50x but the long window is
  // still diluted to 10x — the multi-window guard holds the alert.
  EXPECT_TRUE(engine.evaluate(330'000, 2, "t2").empty());
  EXPECT_TRUE(engine.active().empty());

  // t=420s: both windows burn (short 100x, long 40x) -> pending.
  auto transitions = engine.evaluate(420'000, 3, "t3");
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].from, AlertState::kInactive);
  EXPECT_EQ(transitions[0].alert.state, AlertState::kPending);
  EXPECT_EQ(transitions[0].alert.name, "error_burn");
  EXPECT_EQ(transitions[0].alert.since_ms, 420'000u);
  EXPECT_EQ(transitions[0].alert.cycle, 3u);
  EXPECT_EQ(transitions[0].alert.trace_id, "t3");
  EXPECT_NEAR(transitions[0].alert.value, 100.0, 1e-6);

  // t=480s: still burning but only 60s into the 120s hold-down.
  EXPECT_TRUE(engine.evaluate(480'000, 4, "t4").empty());

  // t=540s: the condition has held for for_ms -> firing.
  transitions = engine.evaluate(540'000, 5, "t5");
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].from, AlertState::kPending);
  EXPECT_EQ(transitions[0].alert.state, AlertState::kFiring);
  EXPECT_EQ(transitions[0].alert.since_ms, 540'000u);
  EXPECT_EQ(transitions[0].alert.cycle, 5u);
  EXPECT_EQ(transitions[0].alert.trace_id, "t5");
  {
    const auto active = engine.active();
    ASSERT_EQ(active.size(), 1u);
    EXPECT_EQ(active[0].state, AlertState::kFiring);
  }

  // t=720s: errors stopped at 600s; the short window is clean so the
  // fast pair clears, starting the resolve_ms clock.
  EXPECT_TRUE(engine.evaluate(720'000, 6, "t6").empty());

  // t=780s: clear for resolve_ms -> resolved.
  transitions = engine.evaluate(780'000, 7, "t7");
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].from, AlertState::kFiring);
  EXPECT_EQ(transitions[0].alert.state, AlertState::kResolved);
  EXPECT_EQ(transitions[0].alert.since_ms, 780'000u);
  EXPECT_EQ(transitions[0].alert.cycle, 7u);
  EXPECT_EQ(transitions[0].alert.trace_id, "t7");
  EXPECT_TRUE(engine.active().empty());

  // The full incident is on the recent ring, oldest to newest.
  const auto recent = engine.recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].alert.state, AlertState::kPending);
  EXPECT_EQ(recent[1].alert.state, AlertState::kFiring);
  EXPECT_EQ(recent[2].alert.state, AlertState::kResolved);
  EXPECT_EQ(engine.evaluations(), 7u);
}

TEST(SloEngine, BurnRateOverEmptyStoreIsUnknownNotFiring) {
  TimeSeriesStore store;
  SloSpec spec;
  spec.type = SloSpec::Type::kBurnRate;
  spec.name = "error_burn";
  spec.metric = "req_total";
  spec.bad_metric = "req_errors";
  SloEngine engine({{spec}, 128}, &store);
  // No data at startup: unknown, never a false page.
  EXPECT_TRUE(engine.evaluate(1000, 1, "t").empty());
  EXPECT_TRUE(engine.active().empty());
}

TEST(SloEngine, BurnRateHistogramModePicksCoveringBucket) {
  // Histogram mode: good = events <= the tightest bucket covering
  // threshold_ms. 20 events per step, 10 fast (le=100) and 10 slow
  // (over 500): with threshold 250 the 250-bucket is the good bound,
  // bad fraction is 0.5 against a 1% budget -> burn 50x everywhere.
  TimeSeriesStore store;
  for (std::uint64_t t = 0; t <= 600; t += 30) {
    const double steps = static_cast<double>(t / 30);
    store.append("lat_ms_bucket", {{"le", "100"}}, SeriesKind::kCounterSeries,
                 t * 1000, 10.0 * steps);
    store.append("lat_ms_bucket", {{"le", "250"}}, SeriesKind::kCounterSeries,
                 t * 1000, 10.0 * steps);
    store.append("lat_ms_bucket", {{"le", "+Inf"}}, SeriesKind::kCounterSeries,
                 t * 1000, 20.0 * steps);
    store.append("lat_ms_count", {}, SeriesKind::kCounterSeries, t * 1000,
                 20.0 * steps);
  }
  SloSpec spec;
  spec.type = SloSpec::Type::kBurnRate;
  spec.name = "latency_burn";
  spec.metric = "lat_ms";
  spec.threshold_ms = 250;
  spec.objective = 0.99;
  spec.fast_short_ms = 60'000;
  spec.fast_long_ms = 300'000;
  spec.slow_short_ms = 60'000;
  spec.slow_long_ms = 300'000;
  SloEngine engine({{spec}, 128}, &store);
  const auto transitions = engine.evaluate(600'000, 1, "t");
  ASSERT_EQ(transitions.size(), 1u);  // for_ms=0: fires immediately
  EXPECT_EQ(transitions[0].alert.state, AlertState::kFiring);
  EXPECT_NEAR(transitions[0].alert.value, 50.0, 1e-6);
}

// ------------------------------------------------- threshold + hold-down

SloSpec shard_up_spec() {
  SloSpec spec;
  spec.type = SloSpec::Type::kThreshold;
  spec.name = "shard_unreachable";
  spec.metric = "fleet_shard_up";
  spec.op = SloSpec::Op::kLt;
  spec.bound = 1.0;
  spec.for_ms = 2000;
  spec.resolve_ms = 2000;
  return spec;
}

TEST(SloEngine, ThresholdTracksEachMatchingSeries) {
  TimeSeriesStore store;
  store.append("fleet_shard_up", {{"shard", "a"}}, SeriesKind::kGaugeSeries,
               1000, 1.0);
  store.append("fleet_shard_up", {{"shard", "b"}}, SeriesKind::kGaugeSeries,
               1000, 0.0);
  SloEngine engine({{shard_up_spec()}, 128}, &store);

  auto transitions = engine.evaluate(1000, 1, "t1");
  ASSERT_EQ(transitions.size(), 1u) << "only the down shard alerts";
  EXPECT_EQ(transitions[0].alert.labels, (LabelSet{{"shard", "b"}}));
  EXPECT_EQ(transitions[0].alert.state, AlertState::kPending);

  // Held down for for_ms -> firing, for shard b only.
  store.append("fleet_shard_up", {{"shard", "a"}}, SeriesKind::kGaugeSeries,
               4000, 1.0);
  store.append("fleet_shard_up", {{"shard", "b"}}, SeriesKind::kGaugeSeries,
               4000, 0.0);
  transitions = engine.evaluate(4000, 2, "t2");
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].alert.state, AlertState::kFiring);
  EXPECT_EQ(transitions[0].alert.labels, (LabelSet{{"shard", "b"}}));

  // Recovery: clear, then resolved after resolve_ms.
  store.append("fleet_shard_up", {{"shard", "b"}}, SeriesKind::kGaugeSeries,
               5000, 1.0);
  EXPECT_TRUE(engine.evaluate(5000, 3, "t3").empty());
  store.append("fleet_shard_up", {{"shard", "b"}}, SeriesKind::kGaugeSeries,
               8000, 1.0);
  transitions = engine.evaluate(8000, 4, "t4");
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].from, AlertState::kFiring);
  EXPECT_EQ(transitions[0].alert.state, AlertState::kResolved);
}

TEST(SloEngine, PendingThatClearsNeverFires) {
  TimeSeriesStore store;
  store.append("fleet_shard_up", {{"shard", "a"}}, SeriesKind::kGaugeSeries,
               1000, 0.0);
  SloEngine engine({{shard_up_spec()}, 128}, &store);
  auto transitions = engine.evaluate(1000, 1, "t1");
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].alert.state, AlertState::kPending);

  // A one-cycle blip clears inside the hold-down: back to inactive,
  // no page.
  store.append("fleet_shard_up", {{"shard", "a"}}, SeriesKind::kGaugeSeries,
               2000, 1.0);
  transitions = engine.evaluate(2000, 2, "t2");
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].from, AlertState::kPending);
  EXPECT_EQ(transitions[0].alert.state, AlertState::kInactive);
  EXPECT_TRUE(engine.active().empty());
}

// -------------------------------------------------------------- anomaly

TEST(SloEngine, AnomalyFiresOnDriftAfterWarmup) {
  TimeSeriesStore store;
  SloSpec spec;
  spec.type = SloSpec::Type::kAnomaly;
  spec.name = "score_drift";
  spec.metric = "score";
  spec.mad_k = 6.0;
  spec.warmup_samples = 8;
  SloEngine engine({{spec}, 128}, &store);

  // A stable-but-noisy score: alternating 50/52 so the MAD is
  // nonzero. Nothing may fire during or after warmup.
  std::uint64_t t = 0;
  for (int i = 0; i < 12; ++i) {
    t += 1000;
    store.append("score", {}, SeriesKind::kGaugeSeries, t,
                 i % 2 == 0 ? 50.0 : 52.0);
    EXPECT_TRUE(engine.evaluate(t, i + 1, "t").empty())
        << "sample " << i << " is in-family";
  }

  // A genuine drift: the score jumps far outside the residual band.
  t += 1000;
  store.append("score", {}, SeriesKind::kGaugeSeries, t, 90.0);
  const auto transitions = engine.evaluate(t, 13, "t13");
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].alert.state, AlertState::kFiring);
  EXPECT_GT(transitions[0].alert.value, 6.0) << "robust z beyond mad_k";
}

TEST(SloEngine, AnomalyConsumesEachSampleOnce) {
  TimeSeriesStore store;
  SloSpec spec;
  spec.type = SloSpec::Type::kAnomaly;
  spec.name = "score_drift";
  spec.metric = "score";
  spec.warmup_samples = 2;
  SloEngine engine({{spec}, 128}, &store);
  store.append("score", {}, SeriesKind::kGaugeSeries, 1000, 50.0);
  // Cycles outpacing the sampled series must not re-ingest the same
  // point into the EWMA (which would fake a flat, overconfident
  // history).
  for (int cycle = 1; cycle <= 5; ++cycle) {
    EXPECT_TRUE(engine.evaluate(1000 + cycle, cycle, "t").empty());
  }
  store.append("score", {}, SeriesKind::kGaugeSeries, 2000, 51.0);
  EXPECT_TRUE(engine.evaluate(2000, 6, "t").empty());
}

// ----------------------------------------------------------------- flap

TEST(SloEngine, FlapFiresOnTierThrash) {
  TimeSeriesStore store;
  SloSpec spec;
  spec.type = SloSpec::Type::kFlap;
  spec.name = "tier_flap";
  spec.metric = "tier";
  spec.max_flips = 3;
  spec.flap_window_ms = 10'000;
  SloEngine engine({{spec}, 128}, &store);

  // Steady tier: no flips, no alert.
  for (std::uint64_t t = 1; t <= 4; ++t) {
    store.append("tier", {}, SeriesKind::kGaugeSeries, t * 1000, 0.0);
  }
  EXPECT_TRUE(engine.evaluate(4000, 1, "t1").empty());

  // A->B->A->B->A thrash inside the window: 4 flips > max 3.
  for (std::uint64_t t = 5; t <= 9; ++t) {
    store.append("tier", {}, SeriesKind::kGaugeSeries, t * 1000,
                 t % 2 == 0 ? 1.0 : 0.0);
  }
  const auto transitions = engine.evaluate(9000, 2, "t2");
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].alert.state, AlertState::kFiring);
  EXPECT_EQ(transitions[0].alert.value, 4.0);
}

// ------------------------------------------------------------- /alertz

TEST(SloEngine, RecentRingIsBoundedAndJsonByteStable) {
  TimeSeriesStore store;
  SloSpec spec = shard_up_spec();
  spec.for_ms = 0;
  spec.resolve_ms = 0;
  SloEngine engine({{spec}, 2}, &store);
  // Three full flaps = six transitions; the ring keeps the newest 2.
  for (std::uint64_t flap = 0; flap < 3; ++flap) {
    const std::uint64_t t = 10'000 * (flap + 1);
    store.append("fleet_shard_up", {{"shard", "a"}}, SeriesKind::kGaugeSeries,
                 t, 0.0);
    engine.evaluate(t, 2 * flap + 1, "t");
    store.append("fleet_shard_up", {{"shard", "a"}}, SeriesKind::kGaugeSeries,
                 t + 1000, 1.0);
    engine.evaluate(t + 1000, 2 * flap + 2, "t");
  }
  EXPECT_EQ(engine.recent().size(), 2u);

  const auto document = engine.to_json();
  EXPECT_EQ(document.dump(), engine.to_json().dump()) << "byte-stable";
  EXPECT_EQ(document.get_number("specs").value(), 1.0);
  EXPECT_EQ(document.get_number("evaluations").value(), 6.0);
  EXPECT_EQ(document.get_array("active")->size(), 0u);
  const auto recent = document.get_array("recent");
  ASSERT_EQ(recent->size(), 2u);
  const auto& last = (*recent)[1];
  EXPECT_EQ(last.get_string("from").value(), "firing");
  auto alert = last.get("alert");
  ASSERT_TRUE(alert.ok());
  EXPECT_EQ(alert->get_string("state").value(), "resolved");
  EXPECT_EQ(alert->get_string("name").value(), "shard_unreachable");
}

}  // namespace
}  // namespace iqb::obs
