#include "iqb/obs/span_buffer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "iqb/obs/clock.hpp"
#include "iqb/obs/trace.hpp"
#include "iqb/util/json.hpp"

namespace iqb::obs {
namespace {

CompletedSpan span_named(const std::string& name) {
  CompletedSpan span;
  span.trace_id = "t";
  span.name = name;
  return span;
}

TEST(SpanRingBuffer, EvictsOldestWhenFull) {
  SpanRingBuffer buffer(3);
  for (int i = 0; i < 5; ++i) buffer.push(span_named(std::to_string(i)));
  EXPECT_EQ(buffer.size(), 3u);
  const auto recent = buffer.recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].name, "2");
  EXPECT_EQ(recent[2].name, "4");
}

TEST(SpanRingBuffer, IngestTagsRebasesAndComputesDepth) {
  ManualClock clock(5000);
  Tracer tracer(&clock);
  const std::size_t root = tracer.begin_span("pipeline.run");
  clock.advance_ns(100);
  const std::size_t child = tracer.begin_span("score");
  clock.advance_ns(50);
  tracer.end_span(child);
  tracer.end_span(root);
  const std::size_t dangling = tracer.begin_span("unended");
  (void)dangling;  // never ended: must not be ingested

  SpanRingBuffer buffer(8);
  EXPECT_EQ(buffer.ingest(tracer, "cycle-1"), 2u);
  const auto recent = buffer.recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].name, "pipeline.run");
  EXPECT_EQ(recent[0].trace_id, "cycle-1");
  EXPECT_EQ(recent[0].depth, 0u);
  EXPECT_EQ(recent[0].start_ns, 0u);  // rebased
  EXPECT_EQ(recent[1].name, "score");
  EXPECT_EQ(recent[1].depth, 1u);
  EXPECT_EQ(recent[1].start_ns, 100u);
  EXPECT_EQ(recent[1].duration_ns, 50u);
}

TEST(SpanRingBuffer, TracezJsonIsParsableAndOrdered) {
  SpanRingBuffer buffer(4);
  buffer.push(span_named("a"));
  CompletedSpan with_attributes = span_named("b");
  with_attributes.attributes.emplace_back("region", "metro");
  buffer.push(std::move(with_attributes));

  auto parsed = util::parse_json(tracez_to_json(buffer).dump(2));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->get_number("count").value(), 2.0);
  auto spans = parsed->get_array("spans");
  ASSERT_TRUE(spans.ok());
  EXPECT_EQ((*spans)[0].get_string("name").value(), "a");
  EXPECT_EQ((*spans)[1].get("attributes")->get_string("region").value(),
            "metro");
}

// The tracez JSON field set is a cross-process stability contract:
// /fleet/tracez and iqb_tracecat parse these dumps from *other*
// binaries, possibly other releases. This golden pins the exact bytes
// — field names (including "span"/"parent_span"/"trace"), key order,
// uid formatting, "" for parentless roots — so any schema change has
// to be made here, consciously.
TEST(SpanRingBuffer, TracezJsonBytesAreAStableContract) {
  ManualClock clock(1000);
  Tracer tracer(&clock);
  tracer.set_trace_id("golden-1");
  tracer.set_span_uid_base(0x10);
  const std::size_t root = tracer.begin_span("cycle");
  clock.advance_ns(250);
  const std::size_t child = tracer.begin_span("stage");
  tracer.set_attribute(child, "region", "metro");
  clock.advance_ns(100);
  tracer.end_span(child);
  tracer.end_span(root);

  SpanRingBuffer buffer(8);
  ASSERT_EQ(buffer.ingest(tracer), 2u);

  const std::string golden = R"({
  "count": 2,
  "spans": [
    {
      "depth": 0,
      "duration_ns": 350,
      "name": "cycle",
      "parent_span": "",
      "span": "0000000000000011",
      "start_ns": 0,
      "trace": "golden-1"
    },
    {
      "attributes": {
        "region": "metro"
      },
      "depth": 1,
      "duration_ns": 100,
      "name": "stage",
      "parent_span": "0000000000000011",
      "span": "0000000000000012",
      "start_ns": 250,
      "trace": "golden-1"
    }
  ]
})";
  EXPECT_EQ(tracez_to_json(buffer).dump(2), golden);
}

TEST(SpanRingBuffer, TracezTraceFilterKeepsOnlyThatTrace) {
  SpanRingBuffer buffer(8);
  CompletedSpan a = span_named("a");
  a.trace_id = "t1";
  CompletedSpan b = span_named("b");
  b.trace_id = "t2";
  buffer.push(a);
  buffer.push(b);

  const auto filtered = tracez_to_json(buffer, "t2");
  EXPECT_EQ(filtered.get_number("count").value(), 1.0);
  EXPECT_EQ((*filtered.get_array("spans"))[0].get_string("name").value(),
            "b");
  const auto none = tracez_to_json(buffer, "absent");
  EXPECT_EQ(none.get_number("count").value(), 0.0);
}

TEST(SpanRingBuffer, IngestCarriesRemoteParentUid) {
  Tracer tracer;
  tracer.set_trace_id("t");
  tracer.set_span_uid_base(0x100);
  tracer.set_remote_parent(0xabcdef);  // server span under a remote caller
  const std::size_t server = tracer.begin_span("http.server");
  tracer.end_span(server);

  SpanRingBuffer buffer(4);
  ASSERT_EQ(buffer.ingest(tracer), 1u);
  const auto recent = buffer.recent();
  EXPECT_EQ(recent[0].parent_uid, 0xabcdefu);
  EXPECT_EQ(recent[0].span_uid, 0x101u);
}

TEST(SpanRingBuffer, ConcurrentPushAndSnapshotAreSafe) {
  SpanRingBuffer buffer(16);
  std::vector<std::thread> pushers;
  for (int t = 0; t < 4; ++t) {
    pushers.emplace_back([&buffer] {
      for (int i = 0; i < 500; ++i) buffer.push(span_named("s"));
    });
  }
  std::thread reader([&buffer] {
    for (int i = 0; i < 200; ++i) {
      const auto spans = buffer.recent();
      EXPECT_LE(spans.size(), buffer.capacity());
    }
  });
  for (auto& pusher : pushers) pusher.join();
  reader.join();
  EXPECT_EQ(buffer.size(), 16u);
}

}  // namespace
}  // namespace iqb::obs
