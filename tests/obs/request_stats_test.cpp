// obs::RequestStats: per-endpoint counters, latency histograms,
// bounded access log, slow-request WARN promotion, label bounding.
#include "iqb/obs/request_stats.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "iqb/obs/export.hpp"
#include "iqb/obs/metrics.hpp"
#include "iqb/util/log.hpp"

namespace iqb::obs {
namespace {

RequestStats::Record request(const std::string& path, int status,
                             double duration_ms) {
  RequestStats::Record record;
  record.trace_id = "trace-1";
  record.peer = "127.0.0.1:50000";
  record.method = "GET";
  record.path = path;
  record.status = status;
  record.bytes = 42;
  record.duration_ms = duration_ms;
  return record;
}

TEST(RequestStats, CountsByPathAndStatusClassIntoTheRegistry) {
  MetricsRegistry registry;
  RequestStats::Options options;
  options.metrics = &registry;
  options.known_paths = {"/metrics", "/scores"};
  RequestStats stats(options);

  stats.record(request("/metrics", 200, 1.5));
  stats.record(request("/metrics", 200, 2.5));
  stats.record(request("/scores", 503, 0.3));
  stats.record(request("/never-seen", 404, 0.1));

  const std::string exported = to_prometheus(registry);
  EXPECT_NE(exported.find(
                "iqb_http_requests_total{path=\"/metrics\"} 2"),
            std::string::npos)
      << exported;
  EXPECT_NE(exported.find("iqb_http_responses_total{class=\"2xx\"} 2"),
            std::string::npos);
  EXPECT_NE(exported.find("iqb_http_responses_total{class=\"5xx\"} 1"),
            std::string::npos);
  EXPECT_NE(exported.find("iqb_http_responses_total{class=\"4xx\"} 1"),
            std::string::npos);
  // Unknown paths pool into "other": bounded label cardinality.
  EXPECT_NE(exported.find("iqb_http_requests_total{path=\"other\"} 1"),
            std::string::npos);
  EXPECT_EQ(exported.find("/never-seen"), std::string::npos);
  // The latency histogram exists with both labels.
  EXPECT_NE(exported.find("iqb_http_request_duration_ms_bucket{code=\"200\","
                          "path=\"/metrics\",le=\"2\"} 1"),
            std::string::npos)
      << exported;
  EXPECT_EQ(stats.total(), 4u);
}

TEST(RequestStats, QueryStringStripsToTheKnownEndpointLabel) {
  MetricsRegistry registry;
  RequestStats::Options options;
  options.metrics = &registry;
  options.known_paths = {"/historyz", "/scores"};
  RequestStats stats(options);

  // A caller-recorded path with its query intact must label as the
  // known endpoint, not leak a per-query series into "other".
  stats.record(request("/historyz?series=iqb_region_score&window=60000",
                       200, 1.0));
  stats.record(request("/historyz?window=1000", 200, 1.0));
  stats.record(request("/scores?pretty=1", 200, 1.0));
  stats.record(request("/unknown?x=1", 404, 1.0));

  const std::string exported = to_prometheus(registry);
  EXPECT_NE(exported.find("iqb_http_requests_total{path=\"/historyz\"} 2"),
            std::string::npos)
      << exported;
  EXPECT_NE(exported.find("iqb_http_requests_total{path=\"/scores\"} 1"),
            std::string::npos);
  EXPECT_NE(exported.find("iqb_http_requests_total{path=\"other\"} 1"),
            std::string::npos);
  EXPECT_EQ(exported.find("series="), std::string::npos)
      << "no query text may reach a label";
}

TEST(RequestStats, InformationalAndRedirectStatusClasses) {
  MetricsRegistry registry;
  RequestStats::Options options;
  options.metrics = &registry;
  RequestStats stats(options);

  stats.record(request("/scores", 101, 0.1));  // switching protocols
  stats.record(request("/scores", 301, 0.1));
  stats.record(request("/scores", 304, 0.1));
  stats.record(request("/scores", 999, 0.1));  // out of range

  const std::string exported = to_prometheus(registry);
  EXPECT_NE(exported.find("iqb_http_responses_total{class=\"1xx\"} 1"),
            std::string::npos)
      << exported;
  EXPECT_NE(exported.find("iqb_http_responses_total{class=\"3xx\"} 2"),
            std::string::npos);
  EXPECT_NE(exported.find("iqb_http_responses_total{class=\"invalid\"} 1"),
            std::string::npos);
}

TEST(RequestStats, ConcurrentMixedPathsKeepCardinalityBounded) {
  MetricsRegistry registry;
  RequestStats::Options options;
  options.metrics = &registry;
  options.known_paths = {"/metrics", "/scores"};
  RequestStats stats(options);

  // An attacker probing distinct random URLs from many connections
  // must pool into one "other" series per family, never mint series.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int worker = 0; worker < kThreads; ++worker) {
    workers.emplace_back([&stats, worker] {
      for (int i = 0; i < kPerThread; ++i) {
        RequestStats::Record record;
        record.method = "GET";
        record.path = "/probe-" + std::to_string(worker) + "-" +
                      std::to_string(i) + "?q=" + std::to_string(i);
        record.status = 404;
        record.duration_ms = 0.1;
        stats.record(record);
        RequestStats::Record known;
        known.method = "GET";
        known.path = "/scores";
        known.status = 200;
        known.duration_ms = 0.1;
        stats.record(known);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(stats.total(),
            static_cast<std::uint64_t>(2 * kThreads * kPerThread));
  const std::string exported = to_prometheus(registry);
  EXPECT_NE(exported.find("iqb_http_requests_total{path=\"other\"} 400"),
            std::string::npos)
      << exported;
  EXPECT_NE(exported.find("iqb_http_requests_total{path=\"/scores\"} 400"),
            std::string::npos);
  EXPECT_EQ(exported.find("/probe-"), std::string::npos);
  // requests(2) + responses(2 classes) + duration histogram series(2).
  EXPECT_EQ(registry.series_count(), 6u);
}

TEST(RequestStats, SlowRequestsArePromotedToWarnWithTraceId) {
  RequestStats::Options options;
  options.slow_request_ms = 100;
  RequestStats stats(options);

  std::vector<std::string> warnings;
  util::set_log_sink([&warnings](util::LogLevel level,
                                 std::string_view line) {
    if (level == util::LogLevel::kWarn) warnings.emplace_back(line);
  });
  stats.record(request("/scores", 200, 50.0));    // fast: no promotion
  stats.record(request("/scores", 200, 250.0));   // slow: promoted
  util::set_log_sink(nullptr);

  EXPECT_EQ(stats.slow_total(), 1u);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("slow request"), std::string::npos);
  EXPECT_NE(warnings[0].find("/scores"), std::string::npos);
  EXPECT_NE(warnings[0].find("trace=trace-1"), std::string::npos)
      << warnings[0];
}

TEST(RequestStats, ZeroThresholdDisablesPromotion) {
  RequestStats::Options options;
  options.slow_request_ms = 0;
  RequestStats stats(options);
  stats.record(request("/scores", 200, 60'000.0));
  EXPECT_EQ(stats.slow_total(), 0u);
}

TEST(RequestStats, AccessLogIsBoundedOldestOut) {
  RequestStats::Options options;
  options.access_log_capacity = 3;
  RequestStats stats(options);
  for (int i = 0; i < 5; ++i) {
    stats.record(request("/r" + std::to_string(i), 200, 1.0));
  }
  const auto recent = stats.recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent.front().path, "/r2");
  EXPECT_EQ(recent.back().path, "/r4");
  EXPECT_EQ(stats.total(), 5u);  // the counter outlives eviction
}

TEST(RequestStats, RequestzJsonCarriesTheAccessLog) {
  RequestStats stats(RequestStats::Options{});
  stats.record(request("/metrics", 200, 1.25));

  const auto document = stats.to_json();
  EXPECT_EQ(document.get_number("count").value(), 1.0);
  EXPECT_EQ(document.get_number("slow_count").value(), 0.0);
  const auto requests = document.get_array("requests");
  ASSERT_TRUE(requests.ok());
  const util::JsonValue& entry = (*requests)[0];
  EXPECT_EQ(entry.get_string("trace").value(), "trace-1");
  EXPECT_EQ(entry.get_string("peer").value(), "127.0.0.1:50000");
  EXPECT_EQ(entry.get_string("method").value(), "GET");
  EXPECT_EQ(entry.get_string("path").value(), "/metrics");
  EXPECT_EQ(entry.get_number("status").value(), 200.0);
  EXPECT_EQ(entry.get_number("bytes").value(), 42.0);
  EXPECT_EQ(entry.get_number("duration_ms").value(), 1.25);
}

}  // namespace
}  // namespace iqb::obs
