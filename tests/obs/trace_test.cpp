#include "iqb/obs/trace.hpp"

#include <gtest/gtest.h>

#include "iqb/obs/clock.hpp"
#include "iqb/util/log.hpp"

namespace iqb::obs {
namespace {

TEST(ManualClock, AdvancesOnlyWhenTold) {
  ManualClock clock(100);
  EXPECT_EQ(clock.now_ns(), 100u);
  EXPECT_EQ(clock.now_ns(), 100u);
  clock.advance_ns(5);
  EXPECT_EQ(clock.now_ns(), 105u);
  clock.advance_ms(1);
  EXPECT_EQ(clock.now_ns(), 1'000'105u);
}

TEST(ManualClock, AutoAdvanceTicksAfterEachRead) {
  ManualClock clock(0, 10);
  EXPECT_EQ(clock.now_ns(), 0u);
  EXPECT_EQ(clock.now_ns(), 10u);
  EXPECT_EQ(clock.now_ns(), 20u);
}

TEST(Tracer, SpansNestUnderInnermostOpenSpan) {
  ManualClock clock(0);
  Tracer tracer(&clock);
  const std::size_t root = tracer.begin_span("run");
  clock.advance_ns(10);
  const std::size_t child = tracer.begin_span("stage");
  clock.advance_ns(5);
  const std::size_t grandchild = tracer.begin_span("region");
  tracer.end_span(grandchild);
  tracer.end_span(child);
  const std::size_t sibling = tracer.begin_span("render");
  tracer.end_span(sibling);
  tracer.end_span(root);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[root].parent, Tracer::kNoSpan);
  EXPECT_EQ(spans[child].parent, root);
  EXPECT_EQ(spans[grandchild].parent, child);
  EXPECT_EQ(spans[sibling].parent, root);
}

TEST(Tracer, DurationsComeFromTheInjectedClock) {
  ManualClock clock(1000);
  Tracer tracer(&clock);
  const std::size_t id = tracer.begin_span("work");
  clock.advance_ns(250);
  tracer.end_span(id);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].start_ns, 1000u);
  EXPECT_EQ(spans[0].end_ns, 1250u);
  EXPECT_EQ(spans[0].duration_ns(), 250u);
  EXPECT_TRUE(spans[0].ended);
}

TEST(Tracer, EndSpanIsIdempotentAndUnendedSpansReportZeroDuration) {
  ManualClock clock(0);
  Tracer tracer(&clock);
  const std::size_t id = tracer.begin_span("a");
  clock.advance_ns(7);
  tracer.end_span(id);
  clock.advance_ns(100);
  tracer.end_span(id);  // no-op
  tracer.end_span(Tracer::kNoSpan);

  const std::size_t open = tracer.begin_span("open");
  const auto spans = tracer.spans();
  EXPECT_EQ(spans[id].end_ns, 7u);
  EXPECT_FALSE(spans[open].ended);
  EXPECT_EQ(spans[open].duration_ns(), 0u);
}

TEST(Tracer, AttributesRecordInInsertionOrder) {
  Tracer tracer;  // steady clock; timestamps unused here
  const std::size_t id = tracer.begin_span("a");
  tracer.set_attribute(id, "region", "metro");
  tracer.set_attribute(id, "skipped", "true");
  tracer.set_attribute(Tracer::kNoSpan, "ignored", "x");
  tracer.end_span(id);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans[0].attributes.size(), 2u);
  EXPECT_EQ(spans[0].attributes[0].first, "region");
  EXPECT_EQ(spans[0].attributes[0].second, "metro");
  EXPECT_EQ(spans[0].attributes[1].first, "skipped");
}

TEST(ScopedSpan, NullTracerIsANoOpAndRaiiEnds) {
  ScopedSpan null_span(nullptr, "nothing");
  null_span.set_attribute("k", "v");
  null_span.end();  // all no-ops, must not crash
  EXPECT_EQ(null_span.id(), Tracer::kNoSpan);

  ManualClock clock(0, 1);
  Tracer tracer(&clock);
  {
    ScopedSpan span(&tracer, "scoped");
    span.set_attribute("k", "v");
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].ended);
}

TEST(ScopedSpan, InstallsItsIdAsTheThreadLogSpan) {
  EXPECT_EQ(util::log_span(), util::kNoLogSpan);
  ManualClock clock(0, 1);
  Tracer tracer(&clock);
  {
    ScopedSpan root(&tracer, "run");
    EXPECT_EQ(util::log_span(), root.id());
    {
      ScopedSpan child(&tracer, "stage");
      EXPECT_EQ(util::log_span(), child.id());
    }
    EXPECT_EQ(util::log_span(), root.id());  // restored on end
  }
  EXPECT_EQ(util::log_span(), util::kNoLogSpan);
  // A null-tracer span leaves the thread's log span alone.
  {
    ScopedSpan null_span(nullptr, "noop");
    EXPECT_EQ(util::log_span(), util::kNoLogSpan);
  }
}

}  // namespace
}  // namespace iqb::obs
