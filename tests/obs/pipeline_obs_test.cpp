// Instrumentation integration: the pipeline under an injected clock
// produces deterministic telemetry, and telemetry never perturbs the
// scoring output.
#include <gtest/gtest.h>

#include "iqb/core/pipeline.hpp"
#include "iqb/datasets/synthetic.hpp"
#include "iqb/obs/export.hpp"
#include "iqb/obs/telemetry.hpp"
#include "iqb/report/render.hpp"

namespace iqb::obs {
namespace {

datasets::RecordStore small_store() {
  util::Rng rng(99);
  datasets::RecordStore store;
  datasets::SyntheticConfig config;
  config.records_per_dataset = 40;
  config.base_time = util::Timestamp::parse("2025-02-01").value();
  config.spacing_s = 3600;
  for (const auto& profile : datasets::example_region_profiles()) {
    store.add_all(datasets::generate_region_records(
        profile, datasets::default_dataset_panel(), config, rng));
  }
  return store;
}

TEST(PipelineObs, TelemetryDoesNotPerturbScores) {
  const datasets::RecordStore store = small_store();
  core::Pipeline pipeline(core::IqbConfig::paper_defaults());

  auto plain = pipeline.run(store, {});
  MetricsRegistry metrics;
  ManualClock clock(0, 1000);
  Tracer tracer(&clock);
  Telemetry telemetry{&metrics, &tracer, nullptr, {}};
  auto instrumented = pipeline.run(store, {}, &telemetry);

  ASSERT_FALSE(plain.results.empty());
  EXPECT_EQ(report::to_json(plain.results).dump(2),
            report::to_json(instrumented.results).dump(2));
  EXPECT_EQ(plain.skipped.size(), instrumented.skipped.size());
}

TEST(PipelineObs, RecordsStageSpansAndCountersUnderManualClock) {
  const datasets::RecordStore store = small_store();
  core::Pipeline pipeline(core::IqbConfig::paper_defaults());

  MetricsRegistry metrics;
  ManualClock clock(0, 500);
  Tracer tracer(&clock);
  Telemetry telemetry{&metrics, &tracer, nullptr, {}};
  auto output = pipeline.run(store, {}, &telemetry);
  ASSERT_FALSE(output.results.empty());

  // Span tree: pipeline.run -> aggregate, score -> one child/region.
  const auto spans = tracer.spans();
  ASSERT_GE(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "pipeline.run");
  EXPECT_EQ(spans[0].parent, Tracer::kNoSpan);
  std::size_t region_spans = 0;
  for (const auto& span : spans) {
    EXPECT_TRUE(span.ended) << span.name;
    if (span.name == "score.region") ++region_spans;
  }
  EXPECT_EQ(region_spans, output.results.size() + output.skipped.size());

  const std::string prom = to_prometheus(metrics);
  EXPECT_NE(prom.find("iqb_pipeline_stage_duration_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(prom.find("stage=\"aggregate\""), std::string::npos);
  EXPECT_NE(prom.find("stage=\"score\""), std::string::npos);
  EXPECT_NE(prom.find("iqb_pipeline_regions_scored_total"),
            std::string::npos);
  EXPECT_NE(prom.find("iqb_aggregate_cells_total"), std::string::npos);
}

TEST(PipelineObs, TraceIsByteIdenticalAcrossRunsWithTheSameClock) {
  const datasets::RecordStore store = small_store();
  // Pre-build the columnar index: the first aggregate() over a cold
  // store emits an index-build span that later runs (which reuse the
  // cached index) do not, and this test compares whole traces.
  store.index();
  core::Pipeline pipeline(core::IqbConfig::paper_defaults());
  auto run_once = [&]() {
    MetricsRegistry metrics;
    ManualClock clock(0, 250);
    Tracer tracer(&clock);
    Telemetry telemetry{&metrics, &tracer, nullptr, {}};
    pipeline.run(store, {}, &telemetry);
    return trace_to_json(tracer).dump(2) + to_prometheus(metrics);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(PipelineObs, SkippedRegionsAreCountedWithReasonLabels) {
  const datasets::RecordStore store = small_store();
  core::IqbConfig config = core::IqbConfig::paper_defaults();
  // Demand more samples than the store holds: every region skips.
  config.aggregation.min_samples = 1000000;
  core::Pipeline pipeline(std::move(config));

  MetricsRegistry metrics;
  ManualClock clock(0, 100);
  Tracer tracer(&clock);
  Telemetry telemetry{&metrics, &tracer, nullptr, {}};
  auto output = pipeline.run(store, {}, &telemetry);
  EXPECT_TRUE(output.results.empty());
  EXPECT_FALSE(output.skipped.empty());

  double skipped_total = 0.0;
  for (const auto& family : metrics.snapshot()) {
    if (family.name != "iqb_pipeline_regions_skipped_total") continue;
    for (const auto& sample : family.samples) {
      EXPECT_FALSE(sample.labels.at("reason").empty());
      EXPECT_FALSE(sample.labels.at("region").empty());
      skipped_total += sample.value;
    }
  }
  EXPECT_EQ(skipped_total, static_cast<double>(output.skipped.size()));
}

TEST(PipelineObs, SketchMergeCountersExport) {
  MetricsRegistry metrics;
  Telemetry telemetry{&metrics, nullptr, nullptr, {}};
  record_sketch_merges(&telemetry, "tdigest", 3);
  record_sketch_merges(&telemetry, "ddsketch", 2);
  const std::string prom = to_prometheus(metrics);
  EXPECT_NE(prom.find("iqb_stats_sketch_merges_total{sketch=\"tdigest\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("iqb_stats_sketch_merges_total{sketch=\"ddsketch\"} 2"),
            std::string::npos);
}

}  // namespace
}  // namespace iqb::obs
