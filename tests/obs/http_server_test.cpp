// obs::HttpServer request-size bounding and graceful drain.
#include "iqb/obs/http_server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "../testsupport/http_get.hpp"

namespace iqb::obs {
namespace {

using testsupport::http_get;

/// Send an arbitrary raw request and read the full raw response.
std::string raw_request(std::uint16_t port, const std::string& request) {
  std::string response;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return response;
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    return response;
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

HttpServer::Options small_server_options() {
  HttpServer::Options options;
  options.port = 0;  // ephemeral
  options.max_request_bytes = 512;
  return options;
}

TEST(HttpServerTest, OversizedRequestHeadGets431) {
  HttpServer server(small_server_options(),
                    [](const HttpRequest&) {
                      return HttpResponse{200, "text/plain", "ok"};
                    });
  ASSERT_TRUE(server.start().ok());

  // Well-formed request under the bound: served normally.
  EXPECT_EQ(http_get(server.port(), "/").status, 200);

  // A header block that exceeds max_request_bytes before the blank
  // line must be refused with 431, not buffered.
  const std::string oversized = "GET / HTTP/1.1\r\nHost: localhost\r\n"
                                "X-Padding: " + std::string(2048, 'a') +
                                "\r\nConnection: close\r\n\r\n";
  const std::string response = raw_request(server.port(), oversized);
  EXPECT_EQ(response.rfind("HTTP/1.1 431 ", 0), 0u)
      << response.substr(0, 60);

  // The bound applies per connection; the server keeps serving.
  EXPECT_EQ(http_get(server.port(), "/").status, 200);
  server.stop();
}

TEST(HttpServerTest, RequestJustUnderTheBoundIsServed) {
  HttpServer server(small_server_options(),
                    [](const HttpRequest&) {
                      return HttpResponse{200, "text/plain", "ok"};
                    });
  ASSERT_TRUE(server.start().ok());
  // ~300 bytes of headers: below the 512-byte bound.
  const std::string request = "GET / HTTP/1.1\r\nHost: localhost\r\n"
                              "X-Padding: " + std::string(220, 'b') +
                              "\r\nConnection: close\r\n\r\n";
  const std::string response = raw_request(server.port(), request);
  EXPECT_EQ(response.rfind("HTTP/1.1 200 ", 0), 0u)
      << response.substr(0, 60);
  server.stop();
}

TEST(HttpServerTest, ExtraResponseHeadersAreEmitted) {
  HttpServer server(small_server_options(),
                    [](const HttpRequest&) {
                      HttpResponse response{200, "text/plain", "ok"};
                      response.headers.emplace_back("X-IQB-Stale", "true");
                      return response;
                    });
  ASSERT_TRUE(server.start().ok());
  const auto result = http_get(server.port(), "/");
  EXPECT_EQ(result.status, 200);
  EXPECT_NE(result.raw.find("X-IQB-Stale: true\r\n"), std::string::npos)
      << result.raw.substr(0, 200);
  server.stop();
}

TEST(HttpServerTest, PostBodyIsDeliveredCompleteToTheHandler) {
  std::string seen_body;
  std::string seen_method;
  HttpServer::Options options;
  options.port = 0;
  HttpServer server(options, [&](const HttpRequest& request) {
    seen_method = request.method;
    seen_body = request.body;
    return HttpResponse{200, "text/plain", "stored"};
  });
  ASSERT_TRUE(server.start().ok());
  const std::string body = "IQBCKPT 1 00000000 2\n{}";
  const std::string request =
      "POST /checkpointz/1 HTTP/1.1\r\nHost: localhost\r\n"
      "Content-Length: " + std::to_string(body.size()) +
      "\r\nConnection: close\r\n\r\n" + body;
  const std::string response = raw_request(server.port(), request);
  EXPECT_EQ(response.rfind("HTTP/1.1 200 ", 0), 0u)
      << response.substr(0, 60);
  EXPECT_EQ(seen_method, "POST");
  EXPECT_EQ(seen_body, body);
  server.stop();
}

TEST(HttpServerTest, PostContentLengthMissingMeansEmptyBodyGarbledGets400) {
  std::string seen_body = "sentinel";
  HttpServer::Options options;
  options.port = 0;
  HttpServer server(options, [&](const HttpRequest& request) {
    seen_body = request.body;
    return HttpResponse{200, "text/plain", "ok"};
  });
  ASSERT_TRUE(server.start().ok());
  // No Content-Length header: a body-less POST (RFC 9110 §8.6) — it
  // reaches the router (which may still answer 405) with body "".
  const std::string missing =
      "POST /x HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  EXPECT_EQ(raw_request(server.port(), missing).rfind("HTTP/1.1 200 ", 0),
            0u);
  EXPECT_EQ(seen_body, "");
  // A header that is present but unparsable is refused outright.
  const std::string garbled =
      "POST /x HTTP/1.1\r\nHost: localhost\r\nContent-Length: banana\r\n"
      "Connection: close\r\n\r\n";
  EXPECT_EQ(raw_request(server.port(), garbled).rfind("HTTP/1.1 400 ", 0),
            0u);
  server.stop();
}

TEST(HttpServerTest, PostBeyondMaxBodyBytesGets413) {
  HttpServer::Options options;
  options.port = 0;
  options.max_body_bytes = 64;
  HttpServer server(options, [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok"};
  });
  ASSERT_TRUE(server.start().ok());
  // The declared length alone triggers the refusal — the server never
  // buffers an oversized body to find out.
  const std::string request =
      "POST /x HTTP/1.1\r\nHost: localhost\r\nContent-Length: 65\r\n"
      "Connection: close\r\n\r\n" + std::string(65, 'z');
  EXPECT_EQ(raw_request(server.port(), request).rfind("HTTP/1.1 413 ", 0),
            0u);
  server.stop();
}

TEST(HttpServerTest, TruncatedPostBodyGets400) {
  HttpServer::Options options;
  options.port = 0;
  HttpServer server(options, [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok"};
  });
  ASSERT_TRUE(server.start().ok());
  // Declares 100 bytes, sends 10, then FIN: the handler must never
  // see a short body presented as complete.
  const std::string request =
      "POST /x HTTP/1.1\r\nHost: localhost\r\nContent-Length: 100\r\n"
      "Connection: close\r\n\r\n" + std::string(10, 'q');
  EXPECT_EQ(raw_request(server.port(), request).rfind("HTTP/1.1 400 ", 0),
            0u);
  server.stop();
}

TEST(HttpServerTest, UnsupportedMethodGets405) {
  HttpServer::Options options;
  options.port = 0;
  HttpServer server(options, [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok"};
  });
  ASSERT_TRUE(server.start().ok());
  const std::string request =
      "DELETE /x HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  EXPECT_EQ(raw_request(server.port(), request).rfind("HTTP/1.1 405 ", 0),
            0u);
  server.stop();
}

TEST(HttpServerTest, DrainStopsAcceptingAndIsIdempotent) {
  HttpServer server(small_server_options(),
                    [](const HttpRequest&) {
                      return HttpResponse{200, "text/plain", "ok"};
                    });
  ASSERT_TRUE(server.start().ok());
  EXPECT_EQ(http_get(server.port(), "/").status, 200);
  const std::uint16_t port = server.port();
  server.drain();
  // All threads joined; new connections are refused.
  EXPECT_FALSE(http_get(port, "/").ok);
  server.drain();  // idempotent
  server.stop();   // no-op after drain
}

}  // namespace
}  // namespace iqb::obs
