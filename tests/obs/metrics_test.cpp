#include "iqb/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace iqb::obs {
namespace {

TEST(Counter, IncrementsAndIgnoresNegativeDeltas) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("iqb_test_total", "help");
  EXPECT_EQ(counter.value(), 0.0);
  counter.inc();
  counter.inc(2.5);
  counter.inc(-5.0);  // caller bug: dropped, not subtracted
  EXPECT_EQ(counter.value(), 3.5);
}

TEST(Gauge, SetAndAddMoveBothWays) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("iqb_test_gauge", "help");
  gauge.set(10.0);
  gauge.add(-3.0);
  EXPECT_EQ(gauge.value(), 7.0);
  gauge.set(1.0);
  EXPECT_EQ(gauge.value(), 1.0);
}

TEST(Histogram, BucketsObservationsWithInclusiveUpperBounds) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("iqb_test_seconds", "help", {1.0, 2.0, 5.0});
  histogram.observe(0.5);
  histogram.observe(1.0);  // == bound -> that bucket (Prometheus le)
  histogram.observe(1.5);
  histogram.observe(100.0);  // overflow
  const auto counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 103.0);
}

TEST(MetricsRegistry, HandlesAreStableAndSeriesKeyedByLabels) {
  MetricsRegistry registry;
  Counter& a = registry.counter("iqb_rows_total", "rows", {{"region", "r1"}});
  Counter& b = registry.counter("iqb_rows_total", "rows", {{"region", "r2"}});
  Counter& a_again =
      registry.counter("iqb_rows_total", "rows", {{"region", "r1"}});
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&a, &a_again);
  a.inc();
  a_again.inc();
  b.inc(5);
  EXPECT_EQ(a.value(), 2.0);
  EXPECT_EQ(registry.series_count(), 2u);
}

TEST(MetricsRegistry, SnapshotSortsFamiliesAndSeries) {
  MetricsRegistry registry;
  registry.counter("iqb_z_total", "z", {{"region", "b"}}).inc();
  registry.counter("iqb_z_total", "z", {{"region", "a"}}).inc(2);
  registry.gauge("iqb_a_gauge", "a", {}).set(1.0);
  const auto families = registry.snapshot();
  ASSERT_EQ(families.size(), 2u);
  EXPECT_EQ(families[0].name, "iqb_a_gauge");
  EXPECT_EQ(families[0].kind, MetricKind::kGauge);
  EXPECT_EQ(families[1].name, "iqb_z_total");
  ASSERT_EQ(families[1].samples.size(), 2u);
  EXPECT_EQ(families[1].samples[0].labels.at("region"), "a");
  EXPECT_EQ(families[1].samples[0].value, 2.0);
  EXPECT_EQ(families[1].samples[1].labels.at("region"), "b");
}

TEST(MetricsRegistry, ConcurrentUpdatesLoseNothing) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("iqb_hits_total", "hits");
  Histogram& histogram =
      registry.histogram("iqb_lat_seconds", "lat", {0.5, 1.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.inc();
        histogram.observe(0.25);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Histogram, CumulativeCountsEndAtInfAndMatchCount) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("iqb_h_seconds", "help", {1.0, 2.0});
  histogram.observe(0.5);
  histogram.observe(1.5);
  histogram.observe(99.0);  // lands in the implicit +Inf bucket
  const auto cumulative = histogram.cumulative_counts();
  ASSERT_EQ(cumulative.size(), 3u);  // two bounds + +Inf
  EXPECT_EQ(cumulative[0], 1u);
  EXPECT_EQ(cumulative[1], 2u);
  EXPECT_EQ(cumulative[2], 3u);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 101.0);
  EXPECT_TRUE(histogram.consistent());
}

TEST(Histogram, CumulativeCountsStayMonotoneUnderConcurrentObserves) {
  // Property check: however a reader's snapshot interleaves with
  // in-flight observe() calls, cumulative bucket counts must never
  // decrease left to right (what a Prometheus scrape relies on).
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("iqb_h_seconds", "help", {0.25, 0.5, 0.75});
  constexpr int kObservers = 4;
  constexpr int kPerObserver = 20000;
  std::atomic<bool> done{false};
  std::thread checker([&histogram, &done] {
    while (!done.load()) {
      const auto cumulative = histogram.cumulative_counts();
      for (std::size_t i = 1; i < cumulative.size(); ++i) {
        ASSERT_GE(cumulative[i], cumulative[i - 1]);
      }
    }
  });
  std::vector<std::thread> observers;
  for (int t = 0; t < kObservers; ++t) {
    observers.emplace_back([&histogram] {
      for (int i = 0; i < kPerObserver; ++i) {
        histogram.observe(static_cast<double>(i % 100) / 100.0);
      }
    });
  }
  for (auto& observer : observers) observer.join();
  done.store(true);
  checker.join();
  // Quiescent now: the +Inf cumulative count and count() must agree.
  EXPECT_TRUE(histogram.consistent());
  EXPECT_EQ(histogram.cumulative_counts().back(),
            static_cast<std::uint64_t>(kObservers) * kPerObserver);
}

TEST(DefaultBuckets, AreSortedAscending) {
  const auto& latency = latency_buckets_s();
  const auto& size = size_buckets();
  EXPECT_TRUE(std::is_sorted(latency.begin(), latency.end()));
  EXPECT_TRUE(std::is_sorted(size.begin(), size.end()));
  EXPECT_FALSE(latency.empty());
  EXPECT_FALSE(size.empty());
}

}  // namespace
}  // namespace iqb::obs
