#include "iqb/obs/telemetry_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "iqb/obs/clock.hpp"
#include "iqb/obs/export.hpp"
#include "iqb/obs/http_server.hpp"
#include "iqb/obs/metrics.hpp"
#include "iqb/obs/span_buffer.hpp"
#include "iqb/obs/trace.hpp"
#include "iqb/util/json.hpp"
#include "../testsupport/http_get.hpp"

namespace iqb::obs {
namespace {

using testsupport::http_get;

TelemetryServer::Options ephemeral_options() {
  TelemetryServer::Options options;
  options.http.port = 0;  // ephemeral: tests never race over a port
  return options;
}

std::shared_ptr<const ScoreSnapshot> make_snapshot(std::uint64_t cycle,
                                                   bool tier_c = false) {
  auto snapshot = std::make_shared<ScoreSnapshot>();
  snapshot->cycle = cycle;
  snapshot->trace_id = "test-" + std::to_string(cycle);
  snapshot->scores_json =
      "{\"cycle\":" + std::to_string(cycle) + ",\"regions\":[]}\n";
  snapshot->tier_c = tier_c;
  if (tier_c) snapshot->tier_c_regions = {"rural"};
  return snapshot;
}

// ---- routing via handle(), no sockets -------------------------------

TEST(TelemetryServerRouting, ReadyzIs503BeforeFirstPublish) {
  MetricsRegistry metrics;
  TelemetryServer server(ephemeral_options(), &metrics, nullptr);
  const HttpResponse response = server.handle({"GET", "/readyz"});
  EXPECT_EQ(response.status, 503);
  auto parsed = util::parse_json(response.body);
  ASSERT_TRUE(parsed.ok()) << response.body;
  EXPECT_EQ(parsed->get_string("status").value(), "unready");
  EXPECT_FALSE(parsed->get_string("reason").value().empty());
}

TEST(TelemetryServerRouting, ReadyzFlipsTo200AfterPublish) {
  MetricsRegistry metrics;
  TelemetryServer server(ephemeral_options(), &metrics, nullptr);
  server.publish(make_snapshot(1));
  const HttpResponse response = server.handle({"GET", "/readyz"});
  EXPECT_EQ(response.status, 200);
  auto parsed = util::parse_json(response.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->get_string("status").value(), "ready");
  EXPECT_EQ(parsed->get_number("cycle").value(), 1.0);
  EXPECT_EQ(parsed->get_string("trace").value(), "test-1");
}

TEST(TelemetryServerRouting, TierCDegradesReadyzTo503WithReason) {
  MetricsRegistry metrics;
  TelemetryServer server(ephemeral_options(), &metrics, nullptr);
  server.publish(make_snapshot(3, /*tier_c=*/true));
  const HttpResponse response = server.handle({"GET", "/readyz"});
  EXPECT_EQ(response.status, 503);
  auto parsed = util::parse_json(response.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->get_string("status").value(), "degraded");
  EXPECT_NE(parsed->get_string("reason").value().find("rural"),
            std::string::npos);
  // Tier C blocks readiness, not serving: /scores still answers.
  EXPECT_EQ(server.handle({"GET", "/scores"}).status, 200);
}

TEST(TelemetryServerRouting, HealthzAlways200EvenWhenUnready) {
  MetricsRegistry metrics;
  TelemetryServer server(ephemeral_options(), &metrics, nullptr);
  EXPECT_EQ(server.handle({"GET", "/healthz"}).status, 200);
}

TEST(TelemetryServerRouting, ScoresServeTheLatestSnapshotVerbatim) {
  MetricsRegistry metrics;
  TelemetryServer server(ephemeral_options(), &metrics, nullptr);
  EXPECT_EQ(server.handle({"GET", "/scores"}).status, 503);
  server.publish(make_snapshot(1));
  server.publish(make_snapshot(2));
  const HttpResponse response = server.handle({"GET", "/scores"});
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "{\"cycle\":2,\"regions\":[]}\n");
}

TEST(TelemetryServerRouting, UnknownPathIs404AndInstrumented) {
  MetricsRegistry metrics;
  TelemetryServer server(ephemeral_options(), &metrics, nullptr);
  EXPECT_EQ(server.handle({"GET", "/secret"}).status, 404);
  // Unknown paths pool into path="other" so scanners cannot grow the
  // registry unboundedly.
  const std::string text = to_prometheus(metrics);
  EXPECT_NE(text.find("iqb_server_requests_total{path=\"other\","
                      "status=\"404\"} 1"),
            std::string::npos)
      << text;
}

TEST(TelemetryServerRouting, MetricsEndpointMatchesExporterBytes) {
  MetricsRegistry metrics;
  metrics.counter("iqb_x_total", "X", {}).inc(5);
  TelemetryServer server(ephemeral_options(), &metrics, nullptr);
  const HttpResponse response = server.handle({"GET", "/metrics"});
  EXPECT_EQ(response.status, 200);
  // The endpoint body is exactly the byte-stable exporter's output
  // for the same snapshot (the request's own counter samples after
  // route() ran, so it is not yet visible in this body).
  EXPECT_EQ(response.body.find("iqb_x_total 5\n") != std::string::npos, true);
  EXPECT_NE(response.content_type.find("version=0.0.4"), std::string::npos);
}

TEST(TelemetryServerRouting, TracezServesRingBufferSpans) {
  MetricsRegistry metrics;
  SpanRingBuffer spans(8);
  ManualClock clock(0, 10);
  Tracer tracer(&clock);
  {
    ScopedSpan root(&tracer, "pipeline.run");
    ScopedSpan child(&tracer, "score");
  }
  spans.ingest(tracer, "cycle-9");
  TelemetryServer server(ephemeral_options(), &metrics, &spans);
  const HttpResponse response = server.handle({"GET", "/tracez"});
  EXPECT_EQ(response.status, 200);
  auto parsed = util::parse_json(response.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->get_number("count").value(), 2.0);
  auto entries = parsed->get_array("spans");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ((*entries)[0].get_string("trace").value(), "cycle-9");
}

// ---- over real sockets ----------------------------------------------

class TelemetryServerSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<TelemetryServer>(ephemeral_options(),
                                                &metrics_, &spans_);
    ASSERT_TRUE(server_->start().ok());
    ASSERT_NE(server_->port(), 0);
  }
  void TearDown() override { server_->stop(); }

  MetricsRegistry metrics_;
  SpanRingBuffer spans_;
  std::unique_ptr<TelemetryServer> server_;
};

TEST_F(TelemetryServerSocketTest, ServesAllEndpointsOverHttp) {
  metrics_.counter("iqb_x_total", "X", {}).inc();
  server_->publish(make_snapshot(4));
  for (const char* path :
       {"/", "/metrics", "/metrics.json", "/healthz", "/readyz", "/tracez",
        "/scores"}) {
    const auto result = http_get(server_->port(), path);
    ASSERT_TRUE(result.ok) << path;
    EXPECT_EQ(result.status, 200) << path;
    EXPECT_FALSE(result.body.empty()) << path;
  }
  EXPECT_EQ(http_get(server_->port(), "/nope").status, 404);
}

TEST_F(TelemetryServerSocketTest, RejectsNonGetMethodsWith405) {
  EXPECT_EQ(http_get(server_->port(), "/metrics", "POST").status, 405);
}

TEST_F(TelemetryServerSocketTest, QueryStringsAreStripped) {
  const auto result = http_get(server_->port(), "/healthz?probe=1");
  EXPECT_EQ(result.status, 200);
}

TEST_F(TelemetryServerSocketTest,
       ConcurrentScrapesDuringPublishesSeeOnlyCompleteSnapshots) {
  // The producer publishes snapshot n with a body naming cycle n; the
  // scrapers must only ever see a body that is internally consistent
  // (cycle in /scores json parses and is <= the latest published).
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> published{0};
  std::thread producer([&] {
    for (std::uint64_t cycle = 1; cycle <= 50; ++cycle) {
      server_->publish(make_snapshot(cycle));
      published.store(cycle);
    }
    done.store(true);
  });
  std::vector<std::thread> scrapers;
  std::atomic<int> failures{0};
  for (int i = 0; i < 4; ++i) {
    scrapers.emplace_back([&] {
      while (!done.load()) {
        const auto result = http_get(server_->port(), "/scores");
        if (result.status == 503) continue;  // before first publish
        auto parsed = util::parse_json(result.body);
        if (!parsed.ok() || !parsed->get_number("cycle").ok()) {
          failures.fetch_add(1);
          continue;
        }
        const auto cycle =
            static_cast<std::uint64_t>(parsed->get_number("cycle").value());
        if (cycle < 1 || cycle > published.load() + 1) failures.fetch_add(1);
      }
    });
  }
  producer.join();
  for (auto& scraper : scrapers) scraper.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(TelemetryServerSocketTest, RequestsAreCountedByPathAndStatus) {
  server_->publish(make_snapshot(1));
  ASSERT_EQ(http_get(server_->port(), "/scores").status, 200);
  ASSERT_EQ(http_get(server_->port(), "/scores").status, 200);
  const std::string text = to_prometheus(metrics_);
  EXPECT_NE(text.find("iqb_server_requests_total{path=\"/scores\","
                      "status=\"200\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("iqb_server_request_duration_seconds_count"
                      "{path=\"/scores\"} 2"),
            std::string::npos)
      << text;
}

TEST(TelemetryServerLifecycle, StartStopIsRepeatableAndJoinsCleanly) {
  MetricsRegistry metrics;
  SpanRingBuffer spans(8);
  TelemetryServer server(ephemeral_options(), &metrics, &spans);
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(server.start().ok()) << round;
    EXPECT_EQ(http_get(server.port(), "/healthz").status, 200);
    server.stop();
    EXPECT_FALSE(server.running());
  }
}

TEST(TelemetryServerLifecycle, StopWithInFlightScrapersIsClean) {
  MetricsRegistry metrics;
  TelemetryServer server(ephemeral_options(), &metrics, nullptr);
  ASSERT_TRUE(server.start().ok());
  server.publish(make_snapshot(1));
  std::atomic<bool> done{false};
  std::vector<std::thread> scrapers;
  for (int i = 0; i < 4; ++i) {
    scrapers.emplace_back([&] {
      while (!done.load()) {
        http_get(server.port(), "/metrics");  // may fail mid-shutdown
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();  // must not deadlock or race with the scrapers
  done.store(true);
  for (auto& scraper : scrapers) scraper.join();
  SUCCEED();
}

}  // namespace
}  // namespace iqb::obs
