// TimeSeriesStore: the fixed-memory ring-buffer TSDB behind
// /historyz and the SLO engine. The contracts under test:
//   * rings evict oldest-first at capacity_per_series, and memory is
//     bounded by max_series with drops counted, never allocated past;
//   * stale (time-regressed) appends are dropped, equal stamps kept;
//   * sample_registry expands histograms into the Prometheus data
//     model (cumulative _bucket{le=...} + +Inf + _count + _sum);
//   * windowed stats (delta/rate over counters, min/max/mean/p95 over
//     gauges) and the sum_window_delta burn-rate primitive;
//   * to_json is byte-stable for a fixed store and clock.
#include "iqb/obs/history.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "iqb/obs/history_routes.hpp"
#include "iqb/obs/metrics.hpp"
#include "iqb/util/json.hpp"

namespace iqb::obs {
namespace {

TEST(TimeSeriesStore, RingEvictsOldestAtCapacity) {
  TimeSeriesStore::Options options;
  options.capacity_per_series = 4;
  TimeSeriesStore store(options);
  for (std::uint64_t t = 1; t <= 10; ++t) {
    store.append("g", {}, SeriesKind::kGaugeSeries, t * 1000,
                 static_cast<double>(t));
  }
  const auto points = store.points_in_window("g", {}, 60'000, 10'000);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points.front().t_ms, 7000u);
  EXPECT_EQ(points.front().value, 7.0);
  EXPECT_EQ(points.back().t_ms, 10'000u);
  EXPECT_EQ(points.back().value, 10.0);
}

TEST(TimeSeriesStore, StalePointIsDroppedEqualTimestampKept) {
  TimeSeriesStore store;
  store.append("g", {}, SeriesKind::kGaugeSeries, 2000, 2.0);
  store.append("g", {}, SeriesKind::kGaugeSeries, 1000, 1.0);  // stale: drop
  store.append("g", {}, SeriesKind::kGaugeSeries, 2000, 3.0);  // equal: keep
  const auto points = store.points_in_window("g", {}, 60'000, 2000);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].value, 2.0);
  EXPECT_EQ(points[1].value, 3.0);
}

TEST(TimeSeriesStore, MaxSeriesBoundDropsAndCounts) {
  TimeSeriesStore::Options options;
  options.max_series = 2;
  TimeSeriesStore store(options);
  store.append("a", {{"i", "1"}}, SeriesKind::kGaugeSeries, 1000, 1.0);
  store.append("a", {{"i", "2"}}, SeriesKind::kGaugeSeries, 1000, 2.0);
  // A label explosion past the bound never allocates a third series.
  store.append("a", {{"i", "3"}}, SeriesKind::kGaugeSeries, 1000, 3.0);
  store.append("b", {}, SeriesKind::kGaugeSeries, 1000, 4.0);
  EXPECT_EQ(store.series_count(), 2u);
  EXPECT_EQ(store.dropped_series(), 2u);
  // Existing series still accept points.
  store.append("a", {{"i", "1"}}, SeriesKind::kGaugeSeries, 2000, 5.0);
  EXPECT_EQ(store.latest("a", {{"i", "1"}})->value, 5.0);
  EXPECT_FALSE(store.latest("a", {{"i", "3"}}).has_value());
}

TEST(TimeSeriesStore, SampleRegistryExpandsHistogramBuckets) {
  MetricsRegistry registry;
  auto& histogram = registry.histogram("lat_ms", "latency",
                                       {100.0, 250.0, 500.0});
  histogram.observe(50.0);    // bucket le=100
  histogram.observe(200.0);   // bucket le=250
  histogram.observe(9000.0);  // +Inf overflow
  registry.counter("reqs", "requests").inc(7.0);
  registry.gauge("score", "score", {{"region", "metro"}}).set(82.5);

  TimeSeriesStore store;
  store.sample_registry(registry, 1000);

  // Cumulative Prometheus buckets keyed by le.
  EXPECT_EQ(store.latest("lat_ms_bucket", {{"le", "100"}})->value, 1.0);
  EXPECT_EQ(store.latest("lat_ms_bucket", {{"le", "250"}})->value, 2.0);
  EXPECT_EQ(store.latest("lat_ms_bucket", {{"le", "500"}})->value, 2.0);
  EXPECT_EQ(store.latest("lat_ms_bucket", {{"le", "+Inf"}})->value, 3.0);
  EXPECT_EQ(store.latest("lat_ms_count", {})->value, 3.0);
  EXPECT_EQ(store.latest("lat_ms_sum", {})->value, 9250.0);
  EXPECT_EQ(store.latest("reqs", {})->value, 7.0);
  EXPECT_EQ(store.latest("score", {{"region", "metro"}})->value, 82.5);
  // 4 buckets + count + sum + counter + gauge.
  EXPECT_EQ(store.series_count(), 8u);
}

TEST(TimeSeriesStore, WindowStatsCounterDeltaAndRate) {
  TimeSeriesStore store;
  store.append("c", {}, SeriesKind::kCounterSeries, 0, 10.0);
  store.append("c", {}, SeriesKind::kCounterSeries, 5000, 20.0);
  store.append("c", {}, SeriesKind::kCounterSeries, 10'000, 40.0);
  const auto stats = store.query("c", {}, 10'000, 10'000);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->samples, 3u);
  EXPECT_EQ(stats->delta, 30.0);
  EXPECT_EQ(stats->rate_per_s, 3.0);
  // A narrower window only sees the last two points.
  const auto recent = store.query("c", {}, 5000, 10'000);
  ASSERT_TRUE(recent.has_value());
  EXPECT_EQ(recent->delta, 20.0);
  EXPECT_EQ(recent->rate_per_s, 4.0);
  // Out-of-window: no answer rather than a misleading zero.
  EXPECT_FALSE(store.query("c", {}, 1000, 60'000).has_value());
}

TEST(TimeSeriesStore, WindowStatsGaugeDistributionAndP95) {
  TimeSeriesStore store;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    store.append("g", {}, SeriesKind::kGaugeSeries, i * 100,
                 static_cast<double>(i));
  }
  const auto stats = store.query("g", {}, 60'000, 2000);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->min, 1.0);
  EXPECT_EQ(stats->max, 20.0);
  EXPECT_EQ(stats->mean, 10.5);
  // Nearest-rank p95 of 1..20 is the ceil(0.95*20)=19th value.
  EXPECT_EQ(stats->p95, 19.0);
}

TEST(TimeSeriesStore, SumWindowDeltaAggregatesMatchingSeries) {
  TimeSeriesStore store;
  store.append("http", {{"code", "200"}}, SeriesKind::kCounterSeries, 0, 0.0);
  store.append("http", {{"code", "200"}}, SeriesKind::kCounterSeries, 1000,
               30.0);
  store.append("http", {{"code", "500"}}, SeriesKind::kCounterSeries, 0, 0.0);
  store.append("http", {{"code", "500"}}, SeriesKind::kCounterSeries, 1000,
               12.0);
  store.append("other", {}, SeriesKind::kCounterSeries, 1000, 99.0);
  EXPECT_EQ(store.sum_window_delta("http", {}, 60'000, 1000), 42.0);
  EXPECT_EQ(store.sum_window_delta("http", {{"code", "500"}}, 60'000, 1000),
            12.0);
  EXPECT_EQ(store.distinct_label_values("http", "code"),
            (std::vector<std::string>{"200", "500"}));
  EXPECT_EQ(store.label_sets("http").size(), 2u);
  EXPECT_EQ(store.label_sets("http", {{"code", "200"}}).size(), 1u);
}

TEST(TimeSeriesStore, ToJsonIsByteStable) {
  TimeSeriesStore store;
  store.append("cycles", {}, SeriesKind::kCounterSeries, 1000, 1.0);
  store.append("cycles", {}, SeriesKind::kCounterSeries, 2000, 3.0);
  store.append("score", {{"region", "metro"}}, SeriesKind::kGaugeSeries, 2000,
               80.0);
  const std::string first = store.to_json("", 60'000, 2000, true).dump();
  const std::string second = store.to_json("", 60'000, 2000, true).dump();
  EXPECT_EQ(first, second) << "same store + clock: identical bytes";
  // JsonObject is a sorted map, so the document's keys serialize
  // alphabetically — the whole golden is reproducible byte-for-byte.
  EXPECT_EQ(
      first,
      "{\"dropped_series\":0,\"now_ms\":2000,\"series\":["
      "{\"delta\":2,\"first\":1,\"kind\":\"counter\",\"last\":3,"
      "\"name\":\"cycles\",\"points\":[[1000,1],[2000,3]],"
      "\"rate_per_s\":2,\"samples\":2},"
      "{\"first\":80,\"kind\":\"gauge\",\"labels\":{\"region\":\"metro\"},"
      "\"last\":80,\"max\":80,\"mean\":80,\"min\":80,\"name\":\"score\","
      "\"p95\":80,\"points\":[[2000,80]],\"samples\":1}],"
      "\"series_count\":2,\"window_ms\":60000}");
  // Family filter narrows without disturbing ordering.
  const auto filtered = store.to_json("score", 60'000, 2000, false);
  EXPECT_EQ(filtered.get_array("series")->size(), 1u);
}

TEST(ServeHistoryz, RejectsMalformedWindowAndPointsWith400Reasons) {
  TimeSeriesStore store;
  HttpRequest request("GET", "/historyz");

  const auto expect_bad = [&](const std::string& query,
                              const std::string& reason_fragment) {
    request.query = query;
    const HttpResponse response = serve_historyz(&store, request, 5000);
    EXPECT_EQ(response.status, 400) << query;
    EXPECT_NE(response.body.find(reason_fragment), std::string::npos)
        << query << " => " << response.body;
    EXPECT_NE(response.body.find("\"status\":\"error\""), std::string::npos);
  };

  // Negative and zero windows must never reach the unsigned window
  // arithmetic; non-integers and overflow are refused at the parse.
  expect_bad("window=-5", "must be positive");
  expect_bad("window=0", "must be positive");
  expect_bad("window=1e9", "not a whole number");
  expect_bad("window=10abc", "not a whole number");
  expect_bad("window=99999999999999999999999", "not a whole number");
  expect_bad("window=999999999999", "exceeds");
  expect_bad("points=yes", "expected true or false");
  expect_bad("points=1", "expected true or false");

  // Valid values still serve.
  request.query = "window=60000&points=true";
  EXPECT_EQ(serve_historyz(&store, request, 5000).status, 200);
  request.query = "";
  EXPECT_EQ(serve_historyz(&store, request, 5000).status, 200);
}

}  // namespace
}  // namespace iqb::obs
