#include "iqb/obs/export.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "iqb/obs/clock.hpp"
#include "iqb/obs/metrics.hpp"
#include "iqb/obs/trace.hpp"
#include "iqb/util/json.hpp"

namespace iqb::obs {
namespace {

TEST(FormatMetricValue, ShortestRoundTripAndSpecials) {
  EXPECT_EQ(format_metric_value(1.0), "1");
  EXPECT_EQ(format_metric_value(0.5), "0.5");
  EXPECT_EQ(format_metric_value(0.0), "0");
  EXPECT_EQ(format_metric_value(1e7), "1e+07");
  EXPECT_EQ(format_metric_value(std::numeric_limits<double>::infinity()),
            "+Inf");
  EXPECT_EQ(format_metric_value(-std::numeric_limits<double>::infinity()),
            "-Inf");
  EXPECT_EQ(format_metric_value(std::numeric_limits<double>::quiet_NaN()),
            "NaN");
}

TEST(PrometheusEscape, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(prometheus_escape("plain"), "plain");
  EXPECT_EQ(prometheus_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prometheus_escape("line1\nline2"), "line1\\nline2");
}

TEST(ToPrometheus, GoldenCounterAndGaugeOutput) {
  MetricsRegistry registry;
  registry.counter("iqb_rows_total", "Rows read", {{"source", "a.csv"}})
      .inc(3);
  registry.counter("iqb_rows_total", "Rows read", {{"source", "b\"x\".csv"}})
      .inc(1.5);
  registry.gauge("iqb_cells", "Cells", {}).set(42);
  const std::string expected =
      "# HELP iqb_cells Cells\n"
      "# TYPE iqb_cells gauge\n"
      "iqb_cells 42\n"
      "# HELP iqb_rows_total Rows read\n"
      "# TYPE iqb_rows_total counter\n"
      "iqb_rows_total{source=\"a.csv\"} 3\n"
      "iqb_rows_total{source=\"b\\\"x\\\".csv\"} 1.5\n";
  EXPECT_EQ(to_prometheus(registry), expected);
}

TEST(ToPrometheus, GoldenHistogramWithCumulativeBuckets) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram(
      "iqb_stage_seconds", "Stage time", {0.1, 1.0}, {{"stage", "score"}});
  histogram.observe(0.05);
  histogram.observe(0.05);
  histogram.observe(0.5);
  histogram.observe(10.0);
  const std::string expected =
      "# HELP iqb_stage_seconds Stage time\n"
      "# TYPE iqb_stage_seconds histogram\n"
      "iqb_stage_seconds_bucket{stage=\"score\",le=\"0.1\"} 2\n"
      "iqb_stage_seconds_bucket{stage=\"score\",le=\"1\"} 3\n"
      "iqb_stage_seconds_bucket{stage=\"score\",le=\"+Inf\"} 4\n"
      "iqb_stage_seconds_sum{stage=\"score\"} 10.6\n"
      "iqb_stage_seconds_count{stage=\"score\"} 4\n";
  EXPECT_EQ(to_prometheus(registry), expected);
}

TEST(MetricsToJson, RoundTripsThroughTheJsonParser) {
  MetricsRegistry registry;
  registry.counter("iqb_rows_total", "Rows", {{"source", "s"}}).inc(7);
  registry.histogram("iqb_lat_seconds", "Lat", {0.5}, {}).observe(0.25);
  const std::string dumped = metrics_to_json(registry).dump(2);

  auto parsed = util::parse_json(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  auto metrics = parsed->get_array("metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics->size(), 2u);

  const util::JsonValue& histogram = (*metrics)[0];
  EXPECT_EQ(histogram.get_string("name").value(), "iqb_lat_seconds");
  EXPECT_EQ(histogram.get_string("type").value(), "histogram");
  auto histogram_samples = histogram.get_array("samples");
  ASSERT_TRUE(histogram_samples.ok());
  auto buckets = (*histogram_samples)[0].get_array("buckets");
  ASSERT_TRUE(buckets.ok());
  ASSERT_EQ(buckets->size(), 2u);  // 0.5 and +Inf
  EXPECT_EQ((*buckets)[0].get_number("count").value(), 1.0);
  EXPECT_EQ((*histogram_samples)[0].get_number("count").value(), 1.0);

  const util::JsonValue& counter = (*metrics)[1];
  EXPECT_EQ(counter.get_string("name").value(), "iqb_rows_total");
  auto counter_samples = counter.get_array("samples");
  ASSERT_TRUE(counter_samples.ok());
  EXPECT_EQ((*counter_samples)[0].get_number("value").value(), 7.0);
}

TEST(TraceToJson, RebasedDeterministicTree) {
  ManualClock clock(5000);
  Tracer tracer(&clock);
  const std::size_t root = tracer.begin_span("pipeline.run");
  clock.advance_ns(100);
  const std::size_t child = tracer.begin_span("score");
  tracer.set_attribute(child, "region", "metro");
  clock.advance_ns(50);
  tracer.end_span(child);
  tracer.end_span(root);

  const std::string dumped = trace_to_json(tracer).dump(2);
  auto parsed = util::parse_json(dumped);
  ASSERT_TRUE(parsed.ok());
  auto trace = parsed->get_array("trace");
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->size(), 1u);
  const util::JsonValue& run = (*trace)[0];
  EXPECT_EQ(run.get_string("name").value(), "pipeline.run");
  EXPECT_EQ(run.get_number("start_ns").value(), 0.0);  // rebased
  EXPECT_EQ(run.get_number("duration_ns").value(), 150.0);
  auto children = run.get_array("children");
  ASSERT_TRUE(children.ok());
  ASSERT_EQ(children->size(), 1u);
  const util::JsonValue& score = (*children)[0];
  EXPECT_EQ(score.get_number("start_ns").value(), 100.0);
  EXPECT_EQ(score.get_number("duration_ns").value(), 50.0);
  EXPECT_EQ(score.get("attributes")->get_string("region").value(), "metro");
}

TEST(ToPrometheus, HostileLabelValuesAreEscapedGoldenStable) {
  // Label values carrying the three characters the exposition format
  // reserves — backslash, double quote, newline — must come out as
  // \\, \", and \n, byte for byte.
  MetricsRegistry registry;
  registry
      .counter("iqb_hostile_total", "Counter with hostile label values",
               {{"path", "C:\\temp"},
                {"quote", "say \"hi\""},
                {"text", "line1\nline2"}})
      .inc(3);
  EXPECT_EQ(
      to_prometheus(registry),
      "# HELP iqb_hostile_total Counter with hostile label values\n"
      "# TYPE iqb_hostile_total counter\n"
      "iqb_hostile_total{path=\"C:\\\\temp\",quote=\"say \\\"hi\\\"\","
      "text=\"line1\\nline2\"} 3\n");
  // The JSON exporter must survive the same values and round-trip.
  auto parsed = util::parse_json(metrics_to_json(registry).dump(2));
  ASSERT_TRUE(parsed.ok());
  auto metrics = parsed->get_array("metrics");
  ASSERT_TRUE(metrics.ok());
  auto samples = (*metrics)[0].get_array("samples");
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ((*samples)[0].get("labels")->get_string("text").value(),
            "line1\nline2");
}

TEST(TraceToJson, IdenticalRunsProduceIdenticalBytes) {
  auto run_once = []() {
    ManualClock clock(123, 7);
    Tracer tracer(&clock);
    ScopedSpan root(&tracer, "run");
    {
      ScopedSpan stage(&tracer, "aggregate");
    }
    {
      ScopedSpan stage(&tracer, "score");
      stage.set_attribute("region", "rural");
    }
    root.end();
    return trace_to_json(tracer).dump(2);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace iqb::obs
