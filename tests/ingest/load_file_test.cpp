// The mmap'd file loader: content sniffing (IQBREC vs CSV vs JSON,
// regardless of extension), clear rejection of damaged binary files,
// telemetry parity with the legacy instrumented loader, and identical
// scores whichever path loaded the records.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "iqb/cli/load.hpp"
#include "iqb/core/pipeline.hpp"
#include "iqb/datasets/fast_csv.hpp"
#include "iqb/datasets/io.hpp"
#include "iqb/datasets/record_io.hpp"
#include "iqb/obs/export.hpp"
#include "iqb/obs/telemetry.hpp"
#include "iqb/report/render.hpp"
#include "iqb/util/fs.hpp"

namespace iqb {
namespace {

const std::string kExampleCsv =
    std::string(IQB_EXAMPLES_DIR) + "/example_records.csv";

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("iqb_load_file_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

void write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  ASSERT_TRUE(out.good());
}

TEST(LoadRecordsFile, CsvLoadsIdenticallyToLegacyReader) {
  auto legacy = datasets::read_records_csv(kExampleCsv);
  ASSERT_TRUE(legacy.ok());
  datasets::LoadFileOptions options;
  options.ingest = robust::IngestPolicy::strict();
  auto fast = datasets::load_records_file(kExampleCsv, options);
  ASSERT_TRUE(fast.ok()) << fast.error().message;
  EXPECT_EQ(datasets::records_to_csv(legacy.value()),
            datasets::records_to_csv(fast->records));
}

TEST(LoadRecordsFile, IqbrIsDetectedByMagicNotExtension) {
  TempDir dir;
  auto records = datasets::read_records_csv(kExampleCsv);
  ASSERT_TRUE(records.ok());
  // Deliberately misnamed: the loader must sniff content, not trust
  // the suffix.
  const std::string path = dir.file("renamed_binary.csv");
  ASSERT_TRUE(datasets::write_records_iqbr(path, records.value()).ok());
  auto loaded = datasets::load_records_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(datasets::records_to_csv(records.value()),
            datasets::records_to_csv(loaded->records));
}

TEST(LoadRecordsFile, TruncatedBinaryGivesClearError) {
  TempDir dir;
  auto records = datasets::read_records_csv(kExampleCsv);
  ASSERT_TRUE(records.ok());
  const std::string blob = datasets::records_to_iqbr(records.value());
  const std::string path = dir.file("truncated.iqbr");
  write_file(path, std::string_view(blob).substr(0, blob.size() / 2));
  datasets::LoadFileOptions options;
  options.retry.max_attempts = 1;
  auto loaded = datasets::load_records_file(path, options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().message.find("truncated payload"),
            std::string::npos)
      << loaded.error().message;
  EXPECT_NE(loaded.error().message.find(path), std::string::npos);
}

TEST(LoadRecordsFile, ForeignVersionBinaryGivesClearError) {
  TempDir dir;
  auto records = datasets::read_records_csv(kExampleCsv);
  ASSERT_TRUE(records.ok());
  std::string blob = datasets::records_to_iqbr(records.value());
  blob.replace(0, 8, "IQBREC 3");
  const std::string path = dir.file("future.iqbr");
  write_file(path, blob);
  datasets::LoadFileOptions options;
  options.retry.max_attempts = 1;
  auto loaded = datasets::load_records_file(path, options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().message.find("unsupported version 3"),
            std::string::npos)
      << loaded.error().message;
}

TEST(LoadRecordsFile, JsonInputIsRejectedWithClearError) {
  TempDir dir;
  const std::string path = dir.file("aggregates.json");
  write_file(path, "{\"aggregates\": []}\n");
  datasets::LoadFileOptions options;
  options.retry.max_attempts = 1;
  auto loaded = datasets::load_records_file(path, options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().message.find("looks like JSON"), std::string::npos)
      << loaded.error().message;
}

TEST(LoadRecordsFile, MissingFileSurfacesIoError) {
  datasets::LoadFileOptions options;
  options.retry.max_attempts = 1;
  auto loaded = datasets::load_records_file("/nonexistent/records.csv", options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, util::ErrorCode::kIoError);
}

/// The fast loader must emit the same iqb_ingest_* series with the
/// same values as the legacy instrumented loader for the same file.
TEST(LoadRecordsFile, TelemetryMatchesLegacyLoader) {
  obs::MetricsRegistry legacy_metrics;
  obs::Telemetry legacy_telemetry{&legacy_metrics, nullptr, nullptr, {}};
  datasets::LoadOptions legacy_options;
  legacy_options.telemetry = &legacy_telemetry;
  auto legacy = datasets::load_records_csv(kExampleCsv, legacy_options);
  ASSERT_TRUE(legacy.ok());

  obs::MetricsRegistry fast_metrics;
  obs::Telemetry fast_telemetry{&fast_metrics, nullptr, nullptr, {}};
  datasets::LoadFileOptions fast_options;
  fast_options.telemetry = &fast_telemetry;
  auto fast = datasets::load_records_file(kExampleCsv, fast_options);
  ASSERT_TRUE(fast.ok());

  EXPECT_EQ(legacy->attempts, fast->attempts);
  EXPECT_EQ(legacy->rows_quarantined, fast->rows_quarantined);
  EXPECT_EQ(obs::to_prometheus(legacy_metrics),
            obs::to_prometheus(fast_metrics));
}

std::string scores_json(const datasets::RecordStore& store) {
  core::Pipeline pipeline(core::IqbConfig::paper_defaults());
  const auto output = pipeline.run(store);
  return report::to_json(output.results).dump(2);
}

/// The acceptance gate in miniature: legacy CSV, fast serial CSV, fast
/// chunked CSV and the .iqbr reload must all score byte-identically.
TEST(LoadRecordsFile, ScoresAreByteIdenticalAcrossAllIngestPaths) {
  auto legacy = datasets::read_records_csv(kExampleCsv);
  ASSERT_TRUE(legacy.ok());
  datasets::RecordStore legacy_store(std::move(legacy).value());
  const std::string expected = scores_json(legacy_store);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::ostringstream errors;
    cli::LoadStoreOptions options;
    options.threads = threads;
    auto loaded = cli::load_store(kExampleCsv, options, errors);
    ASSERT_TRUE(loaded.ok()) << errors.str();
    EXPECT_EQ(expected, scores_json(loaded->store))
        << "threads=" << threads;
  }

  TempDir dir;
  const std::string iqbr = dir.file("example.iqbr");
  auto records = datasets::read_records_csv(kExampleCsv);
  ASSERT_TRUE(records.ok());
  ASSERT_TRUE(datasets::write_records_iqbr(iqbr, records.value()).ok());
  std::ostringstream errors;
  auto reloaded = cli::load_store(iqbr, cli::LoadStoreOptions{}, errors);
  ASSERT_TRUE(reloaded.ok()) << errors.str();
  EXPECT_EQ(expected, scores_json(reloaded->store));
}

TEST(LoadStore, QuarantineWarningsAndCountsMatchLegacyBehavior) {
  TempDir dir;
  const std::string path = dir.file("dirty.csv");
  std::string text =
      "dataset,region,isp,subscriber_id,timestamp,download_mbps,upload_mbps,"
      "latency_ms,loaded_latency_ms,loss_fraction\n";
  text += "ndt,metro,isp_a,s1,2025-03-01,100,,20,,0.01\n";
  text += "ndt,metro,isp_a,s2,not-a-date,100,,20,,0.01\n";
  text += "ndt,metro,isp_a,s3,2025-03-01,50,,10,,0\n";
  text += "ndt,metro,isp_a,s4,2025-03-01,60,,11,,0\n";
  text += "ndt,metro,isp_a,s5,2025-03-01,70,,12,,0\n";
  write_file(path, text);

  std::ostringstream errors;
  cli::LoadStoreOptions options;
  options.lenient = true;
  auto loaded = cli::load_store(path, options, errors);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->store.size(), 4u);
  EXPECT_EQ(loaded->health.rows_quarantined, 1u);
  EXPECT_NE(errors.str().find("row 1 (line 3)"), std::string::npos)
      << errors.str();
}

}  // namespace
}  // namespace iqb
