// The fast-path contract, held against the legacy oracle: for any
// input — well-formed, malformed, quoted, CRLF, huge — the zero-copy
// reader produces the exact records, the exact error, and the exact
// quarantine contents as datasets::records_from_csv, at every thread
// width.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "iqb/datasets/fast_csv.hpp"
#include "iqb/datasets/io.hpp"
#include "iqb/robust/quarantine.hpp"

namespace iqb {
namespace {

constexpr const char* kHeader =
    "dataset,region,isp,subscriber_id,timestamp,download_mbps,upload_mbps,"
    "latency_ms,loaded_latency_ms,loss_fraction";

std::string good_row(int i) {
  return "ndt,metro,isp_a,sub_" + std::to_string(i) +
         ",2025-03-01T10:00:00Z,100.5,20.25,12.5,18.75,0.01";
}

/// Compare one legacy run against fast runs at widths 1 and 4:
/// identical success/failure, identical error message and code,
/// byte-identical re-serialized records, identical quarantine rows.
void expect_parity(const std::string& text, const robust::IngestPolicy& policy) {
  robust::Quarantine legacy_quarantine;
  const auto legacy =
      datasets::records_from_csv(text, policy, &legacy_quarantine);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    robust::Quarantine fast_quarantine;
    datasets::FastParseStats stats;
    datasets::FastParseOptions options;
    options.policy = policy;
    options.quarantine = &fast_quarantine;
    options.threads = threads;
    options.stats = &stats;
    const auto fast = datasets::records_from_csv_fast(text, options);

    ASSERT_EQ(legacy.ok(), fast.ok());
    if (!legacy.ok()) {
      EXPECT_EQ(legacy.error().code, fast.error().code);
      EXPECT_EQ(legacy.error().message, fast.error().message);
    } else {
      EXPECT_EQ(datasets::records_to_csv(legacy.value()),
                datasets::records_to_csv(fast.value()));
    }
    ASSERT_EQ(legacy_quarantine.count(), fast_quarantine.count());
    ASSERT_EQ(legacy_quarantine.rows().size(), fast_quarantine.rows().size());
    for (std::size_t i = 0; i < legacy_quarantine.rows().size(); ++i) {
      const auto& expected = legacy_quarantine.rows()[i];
      const auto& actual = fast_quarantine.rows()[i];
      EXPECT_EQ(expected.source, actual.source);
      EXPECT_EQ(expected.row, actual.row);
      EXPECT_EQ(expected.error.message, actual.error.message);
    }
  }
}

void expect_parity_both_modes(const std::string& text) {
  expect_parity(text, robust::IngestPolicy::strict());
  expect_parity(text, robust::IngestPolicy::lenient(/*max_error_rate=*/0.9));
}

TEST(FastCsvParity, WellFormedSmallDocument) {
  std::string text = kHeader;
  text += '\n';
  for (int i = 0; i < 20; ++i) text += good_row(i) + "\n";
  expect_parity_both_modes(text);
}

TEST(FastCsvParity, MissingOptionalMetricsAndWhitespaceFields) {
  std::string text = kHeader;
  text +=
      "\nndt,metro,isp_a,s1,2025-03-01,,,,,"
      "\nndt,metro,isp_a,s2,2025-03-01T01:02:03,250.0, ,5.0,,0"
      "\nndt,metro,isp_a,s3,2025-03-01,  ,10,,0.5,\n";
  expect_parity_both_modes(text);
}

TEST(FastCsvParity, UnterminatedLastLine) {
  std::string text = kHeader;
  text += '\n';
  text += good_row(0) + "\n";
  text += good_row(1);  // no trailing newline
  expect_parity_both_modes(text);
}

TEST(FastCsvParity, TrailingBlankLineIsSkippedButInnerBlankLineIsNot) {
  std::string with_trailing = std::string(kHeader) + "\n" + good_row(0) + "\n\n";
  expect_parity_both_modes(with_trailing);
  std::string with_inner =
      std::string(kHeader) + "\n\n" + good_row(0) + "\n";
  expect_parity_both_modes(with_inner);
}

TEST(FastCsvParity, CrlfAndLoneCarriageReturnEndings) {
  std::string crlf = kHeader;
  crlf += "\r\n";
  crlf += good_row(0) + "\r\n" + good_row(1) + "\r\n";
  expect_parity_both_modes(crlf);
  std::string lone_cr = kHeader;
  lone_cr += "\r" + good_row(0) + "\r" + good_row(1);
  expect_parity_both_modes(lone_cr);
}

TEST(FastCsvParity, QuotedFieldsFallBackToLegacyParser) {
  std::string text = kHeader;
  text += "\n\"ndt\",\"metro, east\",isp_a,s1,2025-03-01,10,,,,\n";
  datasets::FastParseStats stats;
  datasets::FastParseOptions options;
  options.stats = &stats;
  auto fast = datasets::records_from_csv_fast(text, options);
  ASSERT_TRUE(fast.ok());
  EXPECT_TRUE(stats.fell_back_to_legacy);
  EXPECT_EQ(fast->at(0).region, "metro, east");
  expect_parity_both_modes(text);
  // Structural quote errors surface through the same fallback.
  expect_parity_both_modes(std::string(kHeader) + "\nndt,me\"tro,i,s,2025-03-01,,,,,\n");
  expect_parity_both_modes(std::string(kHeader) + "\n\"unterminated,metro,i,s,2025-03-01,,,,,\n");
}

TEST(FastCsvParity, BadTimestampBadNumberNanInfAndRange) {
  std::string text = kHeader;
  text += '\n';
  text += good_row(0) + "\n";
  text += "ndt,metro,isp_a,s1,not-a-date,10,,,,\n";             // timestamp
  text += "ndt,metro,isp_a,s2,2025-03-01,ten,,,,\n";            // number
  text += "ndt,metro,isp_a,s3,2025-03-01,nan,,,,\n";            // NaN
  text += "ndt,metro,isp_a,s4,2025-03-01,inf,,,,\n";            // Inf
  text += "ndt,metro,isp_a,s5,2025-03-01,,,,,1.5\n";            // loss > 1
  text += "ndt,metro,isp_a,s6,2025-03-01,-3,,,,\n";             // negative
  text += good_row(7) + "\n";
  expect_parity_both_modes(text);
}

TEST(FastCsvParity, RaggedRowsAreFatalInBothModes) {
  std::string short_row = std::string(kHeader) + "\n" + good_row(0) +
                          "\nndt,metro,only_three\n" + good_row(2) + "\n";
  expect_parity_both_modes(short_row);
  std::string long_row = std::string(kHeader) + "\n" + good_row(0) +
                         ",extra_field\n";
  expect_parity_both_modes(long_row);
}

TEST(FastCsvParity, OverlongFieldsRoundTrip) {
  const std::string long_isp(64 * 1024, 'x');
  std::string text = kHeader;
  text += "\nndt,metro," + long_isp + ",s1,2025-03-01,10,,,,\n";
  expect_parity_both_modes(text);
}

TEST(FastCsvParity, HeaderMismatchEmptyAndWhitespaceDocuments) {
  expect_parity_both_modes("a,b,c\n1,2,3\n");
  expect_parity_both_modes("");
  expect_parity_both_modes("  \n\t\r\n");
  expect_parity_both_modes(std::string(kHeader) + "\n");  // header only
  expect_parity_both_modes(std::string(kHeader));         // no newline
}

TEST(FastCsvParity, ErrorRateRejectionMessageMatches) {
  std::string text = kHeader;
  text += '\n';
  text += good_row(0) + "\n";
  for (int i = 0; i < 5; ++i) {
    text += "ndt,metro,isp_a,bad" + std::to_string(i) + ",nope,10,,,,\n";
  }
  expect_parity(text, robust::IngestPolicy::lenient(/*max_error_rate=*/0.25));
}

/// Large enough to actually split into chunks (the parser keeps
/// sub-128KiB documents serial), with malformed rows scattered at
/// awkward positions so quarantine row/line rebasing across chunk
/// boundaries is exercised for real.
TEST(FastCsvParity, ChunkedParsingMatchesSerialOnLargeDocument) {
  std::string text = kHeader;
  text += '\n';
  const int rows = 20000;  // ~1.5 MiB, dozens of chunks at width 8
  for (int i = 0; i < rows; ++i) {
    if (i % 997 == 0) {
      text += "ndt,metro,isp_a,bad" + std::to_string(i) + ",nope,10,,,,\n";
    } else if (i % 1501 == 0) {
      text += "ndt,metro,isp_a,s" + std::to_string(i) + ",2025-03-01,inf,,,,\n";
    } else {
      text += good_row(i) + "\n";
    }
  }
  expect_parity(text, robust::IngestPolicy::lenient(/*max_error_rate=*/0.9));

  datasets::FastParseStats stats;
  datasets::FastParseOptions options;
  options.policy = robust::IngestPolicy::lenient(0.9);
  options.threads = 8;
  options.stats = &stats;
  auto parsed = datasets::records_from_csv_fast(text, options);
  ASSERT_TRUE(parsed.ok());
  EXPECT_GT(stats.chunks, 1u) << "document should have been chunked";
  EXPECT_EQ(stats.rows_total, static_cast<std::size_t>(rows));
}

TEST(FastCsvParity, ChunkedArityErrorReportsGlobalRowAndLine) {
  std::string text = kHeader;
  text += '\n';
  const int rows = 20000;
  for (int i = 0; i < rows; ++i) {
    if (i == 15000) {
      text += "short,row\n";
    } else {
      text += good_row(i) + "\n";
    }
  }
  expect_parity(text, robust::IngestPolicy::lenient(0.9));
  datasets::FastParseOptions options;
  options.threads = 8;
  auto parsed = datasets::records_from_csv_fast(text, options);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().message,
            "CSV row 15001 (line 15002) has 2 fields, expected 10");
}

TEST(FastCsvParity, RejectionReasonsCarryLineNumbers) {
  std::string text = kHeader;
  text += '\n';
  text += good_row(0) + "\n";
  text += "ndt,metro,isp_a,s1,nope,10,,,,\n";
  robust::Quarantine quarantine;
  datasets::FastParseOptions options;
  options.policy = robust::IngestPolicy::lenient(0.9);
  options.quarantine = &quarantine;
  ASSERT_TRUE(datasets::records_from_csv_fast(text, options).ok());
  ASSERT_EQ(quarantine.rows().size(), 1u);
  EXPECT_NE(quarantine.rows()[0].error.message.find("row 1 (line 3)"),
            std::string::npos)
      << quarantine.rows()[0].error.message;
}

}  // namespace
}  // namespace iqb
