// IQBREC framing and payload: bit-exact double round-trips, string
// table integrity, and rejection of every single-byte corruption the
// CRC frame is there to catch.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "iqb/datasets/io.hpp"
#include "iqb/datasets/record_io.hpp"
#include "iqb/util/rng.hpp"

namespace iqb {
namespace {

using datasets::MeasurementRecord;
using datasets::Metric;

std::vector<MeasurementRecord> seeded_records(std::size_t count,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  const char* datasets_pool[] = {"ndt", "ookla", "cloudflare"};
  const char* regions[] = {"metro", "rural_east", "rural_west"};
  const char* isps[] = {"isp_a", "isp_b"};
  std::vector<MeasurementRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    MeasurementRecord record;
    record.dataset = datasets_pool[rng.uniform_int(0, 2)];
    record.region = regions[rng.uniform_int(0, 2)];
    record.isp = isps[rng.uniform_int(0, 1)];
    record.subscriber_id = "sub_" + std::to_string(rng.uniform_int(0, 99));
    record.timestamp = util::Timestamp(rng.uniform_int(1700000000, 1800000000));
    // Irrational-ish values with no exact decimal representation: a
    // text round-trip would drift, the binary one must not.
    if (rng.bernoulli(0.9)) record.download = util::Mbps(rng.uniform(0.1, 900.0));
    if (rng.bernoulli(0.8)) record.upload = util::Mbps(rng.uniform(0.1, 100.0));
    if (rng.bernoulli(0.7)) record.latency = util::Millis(rng.uniform(1.0, 300.0));
    if (rng.bernoulli(0.5)) {
      record.loaded_latency = util::Millis(rng.uniform(1.0, 900.0));
    }
    if (rng.bernoulli(0.6)) record.loss = util::LossRate(rng.next_double());
    records.push_back(std::move(record));
  }
  return records;
}

void expect_bit_identical(const std::vector<MeasurementRecord>& expected,
                          const std::vector<MeasurementRecord>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const auto& e = expected[i];
    const auto& a = actual[i];
    EXPECT_EQ(e.dataset, a.dataset);
    EXPECT_EQ(e.region, a.region);
    EXPECT_EQ(e.isp, a.isp);
    EXPECT_EQ(e.subscriber_id, a.subscriber_id);
    EXPECT_EQ(e.timestamp.unix_seconds(), a.timestamp.unix_seconds());
    for (const Metric metric : datasets::kAllMetrics) {
      const auto ev = e.value(metric);
      const auto av = a.value(metric);
      ASSERT_EQ(ev.has_value(), av.has_value());
      if (ev) {
        // Bit patterns, not ==: catches -0.0 vs 0.0 and would catch
        // NaN payload changes.
        EXPECT_EQ(std::bit_cast<std::uint64_t>(*ev),
                  std::bit_cast<std::uint64_t>(*av));
      }
    }
  }
}

TEST(RecordIo, RoundTripIsBitExact) {
  const auto records = seeded_records(500, 42);
  const std::string blob = datasets::records_to_iqbr(records);
  auto decoded = datasets::records_from_iqbr(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  expect_bit_identical(records, decoded.value());
}

TEST(RecordIo, AwkwardDoublesSurviveExactly) {
  MeasurementRecord record;
  record.dataset = "ndt";
  record.region = "r";
  record.isp = "i";
  record.subscriber_id = "s";
  record.timestamp = util::Timestamp(0);
  record.download = util::Mbps(0.1);  // no exact binary representation
  record.upload = util::Mbps(std::bit_cast<double>(std::uint64_t{0x3FF0000000000001ULL}));
  record.latency = util::Millis(5e-324);  // smallest denormal
  record.loss = util::LossRate(-0.0);
  auto decoded =
      datasets::records_from_iqbr(datasets::records_to_iqbr({&record, 1}));
  ASSERT_TRUE(decoded.ok());
  expect_bit_identical({record}, decoded.value());
}

TEST(RecordIo, EmptyRecordSetRoundTrips) {
  auto decoded = datasets::records_from_iqbr(datasets::records_to_iqbr({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(RecordIo, StringTableDeduplicatesIdentityColumns) {
  // Realistic identity columns repeat a handful of values thousands of
  // times; interning stores each once and 4 bytes per reference.
  auto shared = seeded_records(2000, 7);
  auto unique = shared;
  for (std::size_t i = 0; i < unique.size(); ++i) {
    unique[i].subscriber_id = "globally_unique_subscriber_identifier_" +
                              std::to_string(i);
  }
  const std::string shared_blob = datasets::records_to_iqbr(shared);
  const std::string unique_blob = datasets::records_to_iqbr(unique);
  EXPECT_LT(shared_blob.size() + 50 * 1024, unique_blob.size());

  // And the dedup is lossless either way.
  auto decoded = datasets::records_from_iqbr(unique_blob);
  ASSERT_TRUE(decoded.ok());
  expect_bit_identical(unique, decoded.value());
}

TEST(RecordIo, Crc32cMatchesPublishedVectors) {
  // RFC 3720 appendix vectors for CRC-32C (Castagnoli). The frame
  // checksum has a hardware and a software implementation; whichever
  // this CPU selects must compute the standard function, or files
  // would not move between machines.
  EXPECT_EQ(datasets::iqbr_crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(datasets::iqbr_crc32c(""), 0x00000000u);
  EXPECT_EQ(datasets::iqbr_crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(RecordIo, EverySingleByteFlipIsDetected) {
  const auto records = seeded_records(50, 1701);
  const std::string blob = datasets::records_to_iqbr(records);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    std::string mutated = blob;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    auto decoded = datasets::records_from_iqbr(mutated);
    EXPECT_FALSE(decoded.ok()) << "flip at byte " << i << " went undetected";
  }
}

TEST(RecordIo, RejectsBadMagicForeignVersionTruncationAndTrailing) {
  const auto records = seeded_records(5, 3);
  const std::string blob = datasets::records_to_iqbr(records);

  auto magic = datasets::records_from_iqbr("IQBCKPT 1 00000000 4\nabcd");
  ASSERT_FALSE(magic.ok());
  EXPECT_EQ(magic.error().message, "bad header magic");

  std::string foreign = blob;
  foreign.replace(0, 8, "IQBREC 9");
  auto version = datasets::records_from_iqbr(foreign);
  ASSERT_FALSE(version.ok());
  EXPECT_EQ(version.error().message, "unsupported version 9");

  auto truncated = datasets::records_from_iqbr(blob.substr(0, blob.size() - 7));
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.error().message.find("truncated payload"),
            std::string::npos);

  auto trailing = datasets::records_from_iqbr(blob + "x");
  ASSERT_FALSE(trailing.ok());
  EXPECT_EQ(trailing.error().message, "trailing bytes after payload");

  auto headerless = datasets::records_from_iqbr("IQBREC 1 deadbeef 12");
  ASSERT_FALSE(headerless.ok());
  EXPECT_EQ(headerless.error().message, "missing header line");
}

TEST(RecordIo, LooksLikeIqbrSniffsMagicOnly) {
  EXPECT_TRUE(datasets::looks_like_iqbr("IQBREC 1 00000000 0\n"));
  EXPECT_TRUE(datasets::looks_like_iqbr("IQBREC "));
  EXPECT_FALSE(datasets::looks_like_iqbr("IQBREC"));   // no room for version
  EXPECT_FALSE(datasets::looks_like_iqbr("IQBCKPT 1"));
  EXPECT_FALSE(datasets::looks_like_iqbr("dataset,region"));
  EXPECT_FALSE(datasets::looks_like_iqbr(""));
}

TEST(RecordIo, FileRoundTripThroughAtomicWrite) {
  const auto records = seeded_records(100, 9);
  const std::string path =
      (std::filesystem::temp_directory_path() / "iqb_record_io_test.iqbr")
          .string();
  ASSERT_TRUE(datasets::write_records_iqbr(path, records).ok());
  auto loaded = datasets::read_records_iqbr(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  expect_bit_identical(records, loaded.value());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace iqb
