#include "iqb/util/strings.hpp"

#include <gtest/gtest.h>

namespace iqb::util {
namespace {

TEST(Split, BasicAndEdgeCases) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("single", ','), (std::vector<std::string>{"single"}));
  EXPECT_EQ(split("trail,", ','), (std::vector<std::string>{"trail", ""}));
}

TEST(Trim, StripsAsciiWhitespace) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\n y z \n"), "y z");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("nospace"), "nospace");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("MiXeD 123 Case!"), "mixed 123 case!");
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StartsEndsWith, Behaviour) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("foobar", "bar"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("foobar", "foo"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_FALSE(starts_with("", "x"));
}

TEST(ParseDouble, ValidInputs) {
  EXPECT_DOUBLE_EQ(parse_double("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(parse_double("  -1e3 ").value(), -1000.0);
  EXPECT_DOUBLE_EQ(parse_double("0").value(), 0.0);
}

TEST(ParseDouble, InvalidInputs) {
  EXPECT_FALSE(parse_double("").ok());
  EXPECT_FALSE(parse_double("abc").ok());
  EXPECT_FALSE(parse_double("1.5x").ok());
  EXPECT_FALSE(parse_double("1.5 2.5").ok());
}

TEST(ParseInt, ValidInputs) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int(" -7 ").value(), -7);
}

TEST(ParseInt, InvalidInputs) {
  EXPECT_FALSE(parse_int("").ok());
  EXPECT_FALSE(parse_int("3.5").ok());
  EXPECT_FALSE(parse_int("12a").ok());
}

TEST(FormatFixed, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace iqb::util
