#include "iqb/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace iqb::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, CopyForksIdenticalStream) {
  Rng a(77);
  a.next_u64();
  Rng b = a;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 7.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[static_cast<std::size_t>(v)];
  }
  // Each value should appear within 10% of the expected 10000.
  for (int c : counts) EXPECT_NEAR(c, 10000, 1000);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(8);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, LognormalMedian) {
  Rng rng(12);
  std::vector<double> samples;
  for (int i = 0; i < 50001; ++i) samples.push_back(rng.lognormal(2.0, 0.7));
  std::nth_element(samples.begin(), samples.begin() + 25000, samples.end());
  // Median of lognormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(samples[25000], std::exp(2.0), 0.2);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);  // mean = 1/lambda
}

TEST(Rng, ParetoBoundedBelowByScale) {
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(3.0, 2.0), 3.0);
  }
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(15);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_EQ(counts[1], 0);  // zero weight never chosen
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(42);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  // Same stream id from the same state is reproducible...
  Rng parent_again(42);
  Rng child1_again = parent_again.fork(1);
  EXPECT_EQ(child1.next_u64(), child1_again.next_u64());
  // ...and different ids diverge.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng rng(0);
  // Must not be stuck at zero.
  bool any_nonzero = false;
  for (int i = 0; i < 8; ++i) {
    if (rng.next_u64() != 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace iqb::util
