#include "iqb/util/json.hpp"

#include <gtest/gtest.h>

namespace iqb::util {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null")->is_null());
  EXPECT_EQ(parse_json("true")->as_bool(), true);
  EXPECT_EQ(parse_json("false")->as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("42")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-3.5")->as_number(), -3.5);
  EXPECT_DOUBLE_EQ(parse_json("1e3")->as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(parse_json("2.5E-2")->as_number(), 0.025);
  EXPECT_EQ(parse_json("\"hello\"")->as_string(), "hello");
}

TEST(JsonParse, WhitespaceTolerated) {
  auto v = parse_json("  \n\t {\"a\" : 1 , \"b\" : [ 1 , 2 ] }  ");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->get_number("a").value(), 1.0);
  EXPECT_EQ(v->get_array("b")->size(), 2u);
}

TEST(JsonParse, NestedStructures) {
  auto v = parse_json(R"({"outer": {"inner": [1, {"deep": true}]}})");
  ASSERT_TRUE(v.ok());
  auto outer = v->get_object("outer");
  ASSERT_TRUE(outer.ok());
  const JsonValue inner = outer->at("inner");
  ASSERT_TRUE(inner.is_array());
  EXPECT_TRUE(inner.as_array()[1].get_bool("deep").value());
}

TEST(JsonParse, StringEscapes) {
  auto v = parse_json(R"("a\"b\\c\/d\ne\tfA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "a\"b\\c/d\ne\tfA");
}

TEST(JsonParse, UnicodeEscapeMultibyte) {
  // é (e-acute) -> two UTF-8 bytes; € (euro sign) -> three.
  EXPECT_EQ(parse_json("\"\\u00e9\"")->as_string(), "\xC3\xA9");
  EXPECT_EQ(parse_json("\"\\u20AC\"")->as_string(), "\xE2\x82\xAC");
  // Raw multibyte UTF-8 passes through untouched.
  EXPECT_EQ(parse_json("\"\xC3\xA9\"")->as_string(), "\xC3\xA9");
}

TEST(JsonParse, Errors) {
  EXPECT_FALSE(parse_json("").ok());
  EXPECT_FALSE(parse_json("{").ok());
  EXPECT_FALSE(parse_json("[1,]").ok());
  EXPECT_FALSE(parse_json("{\"a\":}").ok());
  EXPECT_FALSE(parse_json("\"unterminated").ok());
  EXPECT_FALSE(parse_json("tru").ok());
  EXPECT_FALSE(parse_json("1 2").ok());       // trailing content
  EXPECT_FALSE(parse_json("{\"a\" 1}").ok()); // missing colon
  EXPECT_FALSE(parse_json("\"bad\\q\"").ok());
  EXPECT_FALSE(parse_json("\"\\u00g1\"").ok());
}

TEST(JsonParse, DepthLimit) {
  std::string deep;
  for (int i = 0; i < 50; ++i) deep += "[";
  for (int i = 0; i < 50; ++i) deep += "]";
  EXPECT_TRUE(parse_json(deep, 64).ok());
  EXPECT_FALSE(parse_json(deep, 10).ok());
}

TEST(JsonParse, ControlCharacterRejected) {
  std::string with_control = "\"a\x01b\"";
  EXPECT_FALSE(parse_json(with_control).ok());
}

TEST(JsonDump, CompactRoundTrip) {
  const std::string text =
      R"({"arr":[1,2.5,"s"],"nested":{"k":null},"t":true})";
  auto parsed = parse_json(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->dump(), text);
}

TEST(JsonDump, IntegersRenderWithoutDecimalPoint) {
  JsonObject object;
  object.emplace("w", 5);
  EXPECT_EQ(JsonValue(std::move(object)).dump(), R"({"w":5})");
}

TEST(JsonDump, PrettyPrint) {
  auto v = parse_json(R"({"a":1})");
  EXPECT_EQ(v->dump(2), "{\n  \"a\": 1\n}");
}

TEST(JsonDump, EscapesSpecials) {
  JsonValue v(std::string("line\nbreak\t\"q\" \\"));
  auto reparsed = parse_json(v.dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->as_string(), v.as_string());
}

TEST(JsonDump, DeterministicKeyOrder) {
  auto a = parse_json(R"({"zeta":1,"alpha":2})");
  auto b = parse_json(R"({"alpha":2,"zeta":1})");
  EXPECT_EQ(a->dump(), b->dump());
}

TEST(JsonAccessors, TypedGetters) {
  auto v = parse_json(R"({"n":1.5,"s":"x","b":false,"a":[],"o":{}})").value();
  EXPECT_DOUBLE_EQ(v.get_number("n").value(), 1.5);
  EXPECT_EQ(v.get_string("s").value(), "x");
  EXPECT_FALSE(v.get_bool("b").value());
  EXPECT_TRUE(v.get_array("a")->empty());
  EXPECT_TRUE(v.get_object("o")->empty());
}

TEST(JsonAccessors, TypeMismatchErrors) {
  auto v = parse_json(R"({"n":"not a number"})").value();
  EXPECT_FALSE(v.get_number("n").ok());
  EXPECT_FALSE(v.get_bool("n").ok());
  EXPECT_FALSE(v.get_array("n").ok());
}

TEST(JsonAccessors, MissingKeyIsNotFound) {
  auto v = parse_json("{}").value();
  auto missing = v.get("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kNotFound);
  EXPECT_FALSE(v.contains("nope"));
}

TEST(JsonAccessors, GetOnNonObjectErrors) {
  JsonValue v(3.0);
  EXPECT_FALSE(v.get("k").ok());
  EXPECT_FALSE(v.contains("k"));
}

TEST(JsonEquality, DeepCompare) {
  auto a = parse_json(R"({"x":[1,2,{"y":true}]})").value();
  auto b = parse_json(R"({"x":[1,2,{"y":true}]})").value();
  auto c = parse_json(R"({"x":[1,2,{"y":false}]})").value();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(JsonRoundTrip, LargeDocumentSurvives) {
  JsonArray items;
  for (int i = 0; i < 500; ++i) {
    JsonObject object;
    object.emplace("index", i);
    object.emplace("name", "item-" + std::to_string(i));
    object.emplace("flag", i % 2 == 0);
    items.push_back(std::move(object));
  }
  JsonObject root;
  root.emplace("items", std::move(items));
  const JsonValue original{std::move(root)};
  auto reparsed = parse_json(original.dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value(), original);
}

}  // namespace
}  // namespace iqb::util
