#include "iqb/util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace iqb::util {
namespace {

TEST(CsvParse, SimpleTable) {
  auto table = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (CsvRow{"a", "b", "c"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[0], (CsvRow{"1", "2", "3"}));
  EXPECT_EQ(table->rows[1], (CsvRow{"4", "5", "6"}));
}

TEST(CsvParse, CrLfLineEndings) {
  auto table = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0], (CsvRow{"1", "2"}));
}

TEST(CsvParse, NoTrailingNewline) {
  auto table = parse_csv("a,b\n1,2");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0], (CsvRow{"1", "2"}));
}

TEST(CsvParse, QuotedFieldWithComma) {
  auto table = parse_csv("name,notes\nx,\"a, b\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][1], "a, b");
}

TEST(CsvParse, EscapedQuotes) {
  auto table = parse_csv("a\n\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "he said \"hi\"");
}

TEST(CsvParse, QuotedFieldWithNewline) {
  auto table = parse_csv("a,b\n\"line1\nline2\",x\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "line1\nline2");
}

TEST(CsvParse, EmptyFields) {
  auto table = parse_csv("a,b,c\n,,\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0], (CsvRow{"", "", ""}));
}

TEST(CsvParse, RaggedRowIsError) {
  auto table = parse_csv("a,b\n1,2,3\n");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.error().code, ErrorCode::kParseError);
}

TEST(CsvParse, EmptyDocumentIsError) {
  EXPECT_FALSE(parse_csv("").ok());
  EXPECT_FALSE(parse_csv("   \n  ").ok());
  EXPECT_EQ(parse_csv("").error().code, ErrorCode::kEmptyInput);
}

TEST(CsvParse, UnterminatedQuoteIsError) {
  EXPECT_FALSE(parse_csv("a\n\"oops\n").ok());
}

TEST(CsvParse, BareQuoteInsideUnquotedFieldIsError) {
  EXPECT_FALSE(parse_csv("a\nfo\"o\n").ok());
}

TEST(CsvParseLine, SingleRow) {
  auto row = parse_csv_line("x,\"y,z\",w");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"x", "y,z", "w"}));
}

TEST(CsvQuote, OnlyWhenNeeded) {
  EXPECT_EQ(csv_quote("plain"), "plain");
  EXPECT_EQ(csv_quote("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_quote("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(csv_quote("with\nnewline"), "\"with\nnewline\"");
}

TEST(CsvWrite, RoundTrip) {
  CsvTable table;
  table.header = {"region", "notes"};
  table.rows = {{"metro", "all good"},
                {"rural", "flaky, maybe \"wet tree\" issue"},
                {"", ""}};
  auto reparsed = parse_csv(write_csv(table));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->header, table.header);
  EXPECT_EQ(reparsed->rows, table.rows);
}

TEST(CsvColumnIndex, FindsAndFails) {
  CsvTable table;
  table.header = {"x", "y"};
  EXPECT_EQ(table.column_index("y").value(), 1u);
  EXPECT_FALSE(table.column_index("z").ok());
}

TEST(CsvFiles, WriteThenRead) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "iqb_csv_test.csv").string();
  CsvTable table;
  table.header = {"a"};
  table.rows = {{"1"}, {"2"}};
  ASSERT_TRUE(write_csv_file(path, table).ok());
  auto loaded = read_csv_file(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows.size(), 2u);
  std::remove(path.c_str());
}

TEST(CsvFiles, MissingFileIsIoError) {
  auto loaded = read_csv_file("/nonexistent/dir/file.csv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kIoError);
}

}  // namespace
}  // namespace iqb::util
