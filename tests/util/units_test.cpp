#include "iqb/util/units.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace iqb::util {
namespace {

using namespace iqb::util::literals;

TEST(Mbps, ConversionsRoundTrip) {
  const Mbps rate(25.0);
  EXPECT_DOUBLE_EQ(rate.value(), 25.0);
  EXPECT_DOUBLE_EQ(rate.kbps(), 25000.0);
  EXPECT_DOUBLE_EQ(rate.bits_per_second(), 25e6);
  EXPECT_DOUBLE_EQ(rate.bytes_per_second(), 25e6 / 8.0);
  EXPECT_EQ(Mbps::from_kbps(25000.0), rate);
  EXPECT_EQ(Mbps::from_gbps(0.025), rate);
  EXPECT_EQ(Mbps::from_bits_per_second(25e6), rate);
}

TEST(Mbps, FromBytesOverSeconds) {
  // 1 MB over 1 s = 8 Mb/s.
  EXPECT_DOUBLE_EQ(Mbps::from_bytes_over_seconds(1e6, 1.0).value(), 8.0);
  // Degenerate duration yields zero, not infinity.
  EXPECT_DOUBLE_EQ(Mbps::from_bytes_over_seconds(1e6, 0.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(Mbps::from_bytes_over_seconds(1e6, -1.0).value(), 0.0);
}

TEST(Mbps, Arithmetic) {
  EXPECT_EQ(Mbps(10) + Mbps(5), Mbps(15));
  EXPECT_EQ(Mbps(10) - Mbps(5), Mbps(5));
  EXPECT_EQ(Mbps(10) * 2.0, Mbps(20));
  EXPECT_EQ(2.0 * Mbps(10), Mbps(20));
  EXPECT_EQ(Mbps(10) / 2.0, Mbps(5));
  EXPECT_DOUBLE_EQ(Mbps(10) / Mbps(5), 2.0);
  Mbps acc(1);
  acc += Mbps(2);
  EXPECT_EQ(acc, Mbps(3));
}

TEST(Mbps, Ordering) {
  EXPECT_LT(Mbps(1), Mbps(2));
  EXPECT_GT(Mbps(3), Mbps(2));
  EXPECT_LE(Mbps(2), Mbps(2));
}

TEST(Mbps, Validity) {
  EXPECT_TRUE(Mbps(0.0).is_valid());
  EXPECT_TRUE(Mbps(100.0).is_valid());
  EXPECT_FALSE(Mbps(-1.0).is_valid());
  EXPECT_FALSE(Mbps(std::numeric_limits<double>::quiet_NaN()).is_valid());
  EXPECT_FALSE(Mbps(std::numeric_limits<double>::infinity()).is_valid());
}

TEST(Mbps, ToString) { EXPECT_EQ(Mbps(25).to_string(), "25.00 Mb/s"); }

TEST(Millis, Conversions) {
  EXPECT_EQ(Millis::from_seconds(0.05), Millis(50.0));
  EXPECT_EQ(Millis::from_micros(5000.0), Millis(5.0));
  EXPECT_DOUBLE_EQ(Millis(50).seconds(), 0.05);
  EXPECT_DOUBLE_EQ(Millis(5).micros(), 5000.0);
}

TEST(Millis, Validity) {
  EXPECT_TRUE(Millis(0.0).is_valid());
  EXPECT_FALSE(Millis(-0.5).is_valid());
  EXPECT_FALSE(Millis(std::numeric_limits<double>::quiet_NaN()).is_valid());
}

TEST(LossRate, PercentRoundTrip) {
  const LossRate loss = LossRate::from_percent(1.5);
  EXPECT_DOUBLE_EQ(loss.fraction(), 0.015);
  EXPECT_DOUBLE_EQ(loss.percent(), 1.5);
}

TEST(LossRate, FromCounts) {
  EXPECT_DOUBLE_EQ(LossRate::from_counts(5, 100).fraction(), 0.05);
  EXPECT_DOUBLE_EQ(LossRate::from_counts(0, 100).fraction(), 0.0);
  // No packets sent: loss is zero, not NaN.
  EXPECT_DOUBLE_EQ(LossRate::from_counts(0, 0).fraction(), 0.0);
}

TEST(LossRate, Validity) {
  EXPECT_TRUE(LossRate(0.0).is_valid());
  EXPECT_TRUE(LossRate(1.0).is_valid());
  EXPECT_FALSE(LossRate(1.01).is_valid());
  EXPECT_FALSE(LossRate(-0.01).is_valid());
}

TEST(LossRate, ToStringIsPercent) {
  EXPECT_EQ(LossRate(0.005).to_string(), "0.50%");
}

TEST(Seconds, MillisConversion) {
  EXPECT_EQ(Seconds::from_millis(1500.0), Seconds(1.5));
  EXPECT_EQ(Seconds(1.5).to_millis(), Millis(1500.0));
  EXPECT_EQ(Seconds::from_micros(2'000'000.0), Seconds(2.0));
}

TEST(Literals, ProduceExpectedValues) {
  EXPECT_EQ(25.0_mbps, Mbps(25.0));
  EXPECT_EQ(25_mbps, Mbps(25.0));
  EXPECT_EQ(100.0_ms, Millis(100.0));
  EXPECT_EQ(1.0_pct, LossRate(0.01));
  EXPECT_EQ(10_s, Seconds(10.0));
}

}  // namespace
}  // namespace iqb::util
