#include "iqb/util/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "iqb/util/json.hpp"

namespace iqb::util {
namespace {

/// Restores level/format/sink no matter how the test exits.
class LogFixture : public ::testing::Test {
 protected:
  void SetUp() override { set_log_level(LogLevel::kDebug); }
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_format(LogFormat::kText);
    set_log_level(LogLevel::kWarn);
  }
};

using LogTest = LogFixture;

TEST_F(LogTest, TextFormatMatchesHistoricalStderrFormat) {
  EXPECT_EQ(format_log_line(LogFormat::kText, LogLevel::kInfo, "hello"),
            "[iqb INFO ] hello");
  EXPECT_EQ(format_log_line(LogFormat::kText, LogLevel::kError, "boom"),
            "[iqb ERROR] boom");
  EXPECT_EQ(format_log_line(LogFormat::kText, LogLevel::kDebug, ""),
            "[iqb DEBUG] ");
}

TEST_F(LogTest, JsonFormatIsOneParsableObjectPerLine) {
  const std::string line = format_log_line(LogFormat::kJson, LogLevel::kWarn,
                                           "quote \" and\nnewline");
  auto parsed = parse_json(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_EQ(parsed->get_string("level").value(), "warn");
  EXPECT_EQ(parsed->get_string("message").value(), "quote \" and\nnewline");
}

TEST_F(LogTest, LogLevelNamesAreLowercase) {
  EXPECT_EQ(log_level_name(LogLevel::kDebug), "debug");
  EXPECT_EQ(log_level_name(LogLevel::kInfo), "info");
  EXPECT_EQ(log_level_name(LogLevel::kWarn), "warn");
  EXPECT_EQ(log_level_name(LogLevel::kError), "error");
  EXPECT_EQ(log_level_name(LogLevel::kOff), "off");
}

TEST_F(LogTest, SinkReceivesFormattedLinesAndLevel) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&captured](LogLevel level, std::string_view line) {
    captured.emplace_back(level, std::string(line));
  });
  log_message(LogLevel::kInfo, "first");
  set_log_format(LogFormat::kJson);
  log_message(LogLevel::kError, "second");

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "[iqb INFO ] first");
  EXPECT_EQ(captured[1].first, LogLevel::kError);
  EXPECT_TRUE(parse_json(captured[1].second).ok()) << captured[1].second;
}

TEST_F(LogTest, MessagesBelowTheLevelNeverReachTheSink) {
  int calls = 0;
  set_log_sink([&calls](LogLevel, std::string_view) { ++calls; });
  set_log_level(LogLevel::kError);
  log_message(LogLevel::kDebug, "dropped");
  log_message(LogLevel::kWarn, "dropped");
  log_message(LogLevel::kOff, "never valid as a message level");
  EXPECT_EQ(calls, 0);
  log_message(LogLevel::kError, "kept");
  EXPECT_EQ(calls, 1);
}

TEST_F(LogTest, IqbLogMacroRoutesThroughTheSink) {
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, std::string_view line) {
    lines.emplace_back(line);
  });
  IQB_LOG(kInfo) << "value=" << 42;
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[iqb INFO ] value=42");
}

TEST_F(LogTest, ConcurrentLoggingDeliversEveryLineIntact) {
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, std::string_view line) {
    lines.emplace_back(line);  // serialized by the logging mutex
  });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        log_message(LogLevel::kInfo,
                    "thread " + std::to_string(t) + " line " +
                        std::to_string(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (const auto& line : lines) {
    EXPECT_EQ(line.rfind("[iqb INFO ] thread ", 0), 0u) << line;
  }
}

TEST_F(LogTest, ContextFormatsTraceAndSpanInBothFormats) {
  LogContext context;
  context.trace_id = "iqbd-7";
  context.span_id = 3;
  EXPECT_EQ(format_log_line(LogFormat::kText, LogLevel::kInfo, "hi", context),
            "[iqb INFO  trace=iqbd-7 span=3] hi");
  EXPECT_EQ(format_log_line(LogFormat::kJson, LogLevel::kInfo, "hi", context),
            "{\"level\":\"info\",\"trace\":\"iqbd-7\",\"span\":3,"
            "\"message\":\"hi\"}");
  // Trace without span, and span without trace.
  context.span_id = kNoLogSpan;
  EXPECT_EQ(format_log_line(LogFormat::kText, LogLevel::kWarn, "x", context),
            "[iqb WARN  trace=iqbd-7] x");
  context.trace_id.clear();
  context.span_id = 9;
  EXPECT_EQ(format_log_line(LogFormat::kText, LogLevel::kWarn, "x", context),
            "[iqb WARN  span=9] x");
  // Empty context reproduces the historical format byte for byte.
  EXPECT_EQ(format_log_line(LogFormat::kText, LogLevel::kInfo, "hello",
                            LogContext{}),
            format_log_line(LogFormat::kText, LogLevel::kInfo, "hello"));
}

TEST_F(LogTest, ScopedLogTraceInstallsAndRestoresThreadTraceId) {
  EXPECT_EQ(log_trace_id(), "");
  {
    ScopedLogTrace outer("outer-1");
    EXPECT_EQ(log_trace_id(), "outer-1");
    std::vector<std::string> lines;
    set_log_sink([&lines](LogLevel, std::string_view line) {
      lines.emplace_back(line);
    });
    log_message(LogLevel::kInfo, "tagged");
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], "[iqb INFO  trace=outer-1] tagged");
    {
      ScopedLogTrace inner("inner-2");
      EXPECT_EQ(log_trace_id(), "inner-2");
    }
    EXPECT_EQ(log_trace_id(), "outer-1");
  }
  EXPECT_EQ(log_trace_id(), "");
  // The trace id is thread-local: a fresh thread starts clean.
  ScopedLogTrace trace("main-only");
  std::string seen = "unset";
  std::thread other([&seen] { seen = log_trace_id(); });
  other.join();
  EXPECT_EQ(seen, "");
}

}  // namespace
}  // namespace iqb::util
