#include "iqb/util/timestamp.hpp"

#include <gtest/gtest.h>

namespace iqb::util {
namespace {

TEST(Timestamp, EpochIsZero) {
  auto ts = Timestamp::from_civil(1970, 1, 1);
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->unix_seconds(), 0);
}

TEST(Timestamp, KnownDate) {
  // 2025-03-01T00:00:00Z == 1740787200 (verified against `date -u`).
  auto ts = Timestamp::from_civil(2025, 3, 1);
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->unix_seconds(), 1740787200);
}

TEST(Timestamp, TimeOfDayComponents) {
  auto ts = Timestamp::from_civil(2025, 3, 1, 13, 45, 30);
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->unix_seconds(), 1740787200 + 13 * 3600 + 45 * 60 + 30);
}

TEST(Timestamp, LeapYearHandling) {
  EXPECT_TRUE(Timestamp::from_civil(2024, 2, 29).ok());   // leap
  EXPECT_FALSE(Timestamp::from_civil(2025, 2, 29).ok());  // not leap
  EXPECT_TRUE(Timestamp::from_civil(2000, 2, 29).ok());   // /400 rule
  EXPECT_FALSE(Timestamp::from_civil(1900, 2, 29).ok());  // /100 rule
}

TEST(Timestamp, RangeValidation) {
  EXPECT_FALSE(Timestamp::from_civil(2025, 0, 1).ok());
  EXPECT_FALSE(Timestamp::from_civil(2025, 13, 1).ok());
  EXPECT_FALSE(Timestamp::from_civil(2025, 4, 31).ok());
  EXPECT_FALSE(Timestamp::from_civil(2025, 1, 1, 24, 0, 0).ok());
  EXPECT_FALSE(Timestamp::from_civil(2025, 1, 1, 0, 60, 0).ok());
  EXPECT_FALSE(Timestamp::from_civil(2025, 1, 1, 0, 0, 60).ok());
}

TEST(Timestamp, Iso8601RoundTrip) {
  const std::string text = "2025-07-06T08:30:00Z";
  auto ts = Timestamp::parse(text);
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->to_iso8601(), text);
}

TEST(Timestamp, ParseDateOnly) {
  auto ts = Timestamp::parse("2025-01-15");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->to_iso8601(), "2025-01-15T00:00:00Z");
}

TEST(Timestamp, ParseWithSpaceSeparator) {
  auto ts = Timestamp::parse("2025-01-15 06:07:08");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->to_iso8601(), "2025-01-15T06:07:08Z");
}

TEST(Timestamp, ParseRejectsGarbage) {
  EXPECT_FALSE(Timestamp::parse("").ok());
  EXPECT_FALSE(Timestamp::parse("not a date").ok());
  EXPECT_FALSE(Timestamp::parse("2025/01/15").ok());
  EXPECT_FALSE(Timestamp::parse("2025-1-15").ok());
  EXPECT_FALSE(Timestamp::parse("2025-01-15T10:30").ok());  // truncated time
}

TEST(Timestamp, ArithmeticAndOrdering) {
  auto a = Timestamp::parse("2025-01-15").value();
  auto b = a + 86400;
  EXPECT_EQ(b.to_iso8601(), "2025-01-16T00:00:00Z");
  EXPECT_EQ(b - a, 86400);
  EXPECT_LT(a, b);
}

TEST(Timestamp, PreEpochDates) {
  auto ts = Timestamp::from_civil(1969, 12, 31, 23, 59, 59);
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->unix_seconds(), -1);
  EXPECT_EQ(ts->to_iso8601(), "1969-12-31T23:59:59Z");
}

TEST(Timestamp, FarFutureRoundTrip) {
  auto ts = Timestamp::from_civil(2100, 12, 31, 23, 59, 59);
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(Timestamp::parse(ts->to_iso8601()).value(), ts.value());
}

}  // namespace
}  // namespace iqb::util
