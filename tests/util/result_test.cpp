#include "iqb/util/result.hpp"

#include <gtest/gtest.h>

#include <string>

namespace iqb::util {
namespace {

Result<int> parse_even(int x) {
  if (x % 2 != 0) {
    return make_error(ErrorCode::kInvalidArgument, "odd input");
  }
  return x;
}

TEST(Result, SuccessHoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(Result, ErrorHoldsCodeAndMessage) {
  Result<int> r = make_error(ErrorCode::kNotFound, "missing thing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message, "missing thing");
  EXPECT_EQ(r.error().to_string(), "not_found: missing thing");
}

TEST(Result, ValueOr) {
  Result<int> ok = 7;
  Result<int> bad = make_error(ErrorCode::kInternal, "x");
  EXPECT_EQ(ok.value_or(0), 7);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Result, MapTransformsSuccess) {
  Result<int> r = 21;
  auto doubled = r.map([](int v) { return v * 2; });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 42);
}

TEST(Result, MapPropagatesError) {
  Result<int> r = make_error(ErrorCode::kParseError, "bad");
  auto mapped = r.map([](int v) { return v * 2; });
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.error().code, ErrorCode::kParseError);
}

TEST(Result, AndThenChains) {
  auto chained = parse_even(4).and_then([](int v) { return parse_even(v + 2); });
  ASSERT_TRUE(chained.ok());
  EXPECT_EQ(chained.value(), 6);

  auto failed = parse_even(4).and_then([](int v) { return parse_even(v + 1); });
  EXPECT_FALSE(failed.ok());
}

TEST(Result, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 5);
}

TEST(ResultVoid, DefaultIsSuccess) {
  Result<void> r;
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(Result<void>::success().ok());
}

TEST(ResultVoid, ErrorState) {
  Result<void> r = make_error(ErrorCode::kIoError, "disk on fire");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kIoError);
}

TEST(Result, WithContextPrefixesErrorMessage) {
  Result<int> r = make_error(ErrorCode::kIoError, "connection reset");
  auto wrapped = r.with_context("fetching 'ookla_feed'");
  ASSERT_FALSE(wrapped.ok());
  EXPECT_EQ(wrapped.error().code, ErrorCode::kIoError);
  EXPECT_EQ(wrapped.error().message,
            "fetching 'ookla_feed': connection reset");
}

TEST(Result, WithContextPassesSuccessThrough) {
  Result<int> r = 42;
  auto wrapped = r.with_context("irrelevant");
  ASSERT_TRUE(wrapped.ok());
  EXPECT_EQ(wrapped.value(), 42);
}

TEST(Result, WithContextChains) {
  Result<int> r = make_error(ErrorCode::kParseError, "bad row");
  auto wrapped = r.with_context("parsing feed").with_context("loading panel");
  EXPECT_EQ(wrapped.error().message, "loading panel: parsing feed: bad row");
}

TEST(Result, WithContextOnRvalue) {
  auto wrapped =
      Result<std::unique_ptr<int>>(
          make_error(ErrorCode::kNotFound, "missing"))
          .with_context("lookup");
  ASSERT_FALSE(wrapped.ok());
  EXPECT_EQ(wrapped.error().message, "lookup: missing");
}

TEST(ResultVoid, WithContext) {
  Result<void> err = make_error(ErrorCode::kIoError, "unwritable");
  EXPECT_EQ(err.with_context("saving config").error().message,
            "saving config: unwritable");
  EXPECT_TRUE(Result<void>::success().with_context("ignored").ok());
}

TEST(ErrorCodeNames, AllDistinct) {
  const ErrorCode codes[] = {
      ErrorCode::kInvalidArgument, ErrorCode::kParseError,
      ErrorCode::kNotFound,        ErrorCode::kOutOfRange,
      ErrorCode::kEmptyInput,      ErrorCode::kIoError,
      ErrorCode::kInternal};
  for (std::size_t i = 0; i < std::size(codes); ++i) {
    for (std::size_t j = i + 1; j < std::size(codes); ++j) {
      EXPECT_NE(error_code_name(codes[i]), error_code_name(codes[j]));
    }
  }
}

}  // namespace
}  // namespace iqb::util
