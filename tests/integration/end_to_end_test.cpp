// Full-stack integration: packet-level campaign -> dataset adapters ->
// aggregation -> IQB scores -> reports. This is Fig. 1 of the paper
// executed end to end on simulated infrastructure.
#include <gtest/gtest.h>

#include <memory>

#include "iqb/core/pipeline.hpp"
#include "iqb/core/sensitivity.hpp"
#include "iqb/datasets/io.hpp"
#include "iqb/measurement/adapters.hpp"
#include "iqb/measurement/campaign.hpp"
#include "iqb/measurement/cloudflare_style.hpp"
#include "iqb/measurement/ndt.hpp"
#include "iqb/measurement/ookla_style.hpp"
#include "iqb/report/render.hpp"

namespace iqb {
namespace {

measurement::SubscriberSpec subscriber(const std::string& id,
                                       const std::string& region, double down,
                                       double up, double delay_s,
                                       double loss = 0.0) {
  measurement::SubscriberSpec spec;
  spec.subscriber_id = id;
  spec.region = region;
  spec.isp = region + "_isp";
  spec.access_down.rate = util::Mbps(down);
  spec.access_down.propagation_delay = util::Seconds(delay_s);
  spec.access_up.rate = util::Mbps(up);
  spec.access_up.propagation_delay = util::Seconds(delay_s);
  if (loss > 0.0) {
    spec.access_down.loss = netsim::LossSpec::bernoulli(loss);
    spec.access_up.loss = netsim::LossSpec::bernoulli(loss);
  }
  return spec;
}

/// One shared campaign for the whole suite (packet simulation is the
/// expensive part; run it once).
class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    measurement::CampaignConfig config;
    config.seed = 99;
    config.tests_per_tool = 2;
    config.base_time = util::Timestamp::parse("2025-03-01").value();
    auto campaign = std::make_unique<measurement::Campaign>(config);
    campaign->add_client(std::make_shared<measurement::NdtClient>());
    campaign->add_client(std::make_shared<measurement::OoklaStyleClient>());
    campaign->add_client(std::make_shared<measurement::CloudflareStyleClient>());

    // Two subscribers per region keeps the suite fast but exercises
    // multi-subscriber aggregation.
    campaign->add_subscriber(subscriber("f1", "fiber_town", 500, 400, 0.004));
    campaign->add_subscriber(subscriber("f2", "fiber_town", 300, 250, 0.005));
    campaign->add_subscriber(
        subscriber("d1", "dsl_village", 12, 1.5, 0.02, 0.004));
    campaign->add_subscriber(
        subscriber("d2", "dsl_village", 20, 2.5, 0.025, 0.002));

    sessions_ = campaign->run();
    failed_ = campaign->failed_sessions();
    records_ = measurement::convert_sessions_default(sessions_);
    store_ = std::make_unique<datasets::RecordStore>();
    store_->add_all(records_);
  }

  static void TearDownTestSuite() { store_.reset(); }

  static std::vector<measurement::SessionRecord> sessions_;
  static std::vector<datasets::MeasurementRecord> records_;
  static std::unique_ptr<datasets::RecordStore> store_;
  static std::size_t failed_;
};

std::vector<measurement::SessionRecord> EndToEndTest::sessions_;
std::vector<datasets::MeasurementRecord> EndToEndTest::records_;
std::unique_ptr<datasets::RecordStore> EndToEndTest::store_;
std::size_t EndToEndTest::failed_ = 0;

TEST_F(EndToEndTest, AllSessionsSucceeded) {
  // 4 subscribers x 3 tools x 2 reps.
  EXPECT_EQ(sessions_.size(), 24u);
  EXPECT_EQ(failed_, 0u);
}

TEST_F(EndToEndTest, AdaptersProduceAllThreeDatasets) {
  EXPECT_EQ(records_.size(), sessions_.size());
  EXPECT_EQ(store_->dataset_names(),
            (std::vector<std::string>{"cloudflare", "ndt", "ookla"}));
  EXPECT_EQ(store_->regions(),
            (std::vector<std::string>{"dsl_village", "fiber_town"}));
}

TEST_F(EndToEndTest, MeasurementsReflectProvisioning) {
  datasets::RecordFilter fiber;
  fiber.region = "fiber_town";
  datasets::RecordFilter dsl;
  dsl.region = "dsl_village";
  const auto fiber_downloads =
      store_->metric_values(datasets::Metric::kDownload, fiber);
  const auto dsl_downloads =
      store_->metric_values(datasets::Metric::kDownload, dsl);
  ASSERT_FALSE(fiber_downloads.empty());
  ASSERT_FALSE(dsl_downloads.empty());
  for (double v : dsl_downloads) EXPECT_LT(v, 25.0);
  double fiber_max = 0.0;
  for (double v : fiber_downloads) fiber_max = std::max(fiber_max, v);
  EXPECT_GT(fiber_max, 100.0);
}

TEST_F(EndToEndTest, PipelineSeparatesRegions) {
  core::Pipeline pipeline(core::IqbConfig::paper_defaults());
  auto output = pipeline.run(*store_);
  ASSERT_EQ(output.results.size(), 2u);
  double fiber_score = 0.0, dsl_score = 0.0;
  for (const auto& result : output.results) {
    if (result.region == "fiber_town") fiber_score = result.high.iqb_score;
    if (result.region == "dsl_village") dsl_score = result.high.iqb_score;
  }
  EXPECT_GT(fiber_score, dsl_score + 0.25);
}

TEST_F(EndToEndTest, CsvRoundTripPreservesScores) {
  // Export the records, reload them, rescore: identical results.
  const std::string csv = datasets::records_to_csv(records_);
  auto reloaded = datasets::records_from_csv(csv);
  ASSERT_TRUE(reloaded.ok());
  datasets::RecordStore store2;
  store2.add_all(std::move(reloaded).value());

  core::Pipeline pipeline(core::IqbConfig::paper_defaults());
  auto original = pipeline.run(*store_);
  auto roundtripped = pipeline.run(store2);
  ASSERT_EQ(original.results.size(), roundtripped.results.size());
  for (std::size_t i = 0; i < original.results.size(); ++i) {
    EXPECT_NEAR(original.results[i].high.iqb_score,
                roundtripped.results[i].high.iqb_score, 1e-6);
  }
}

TEST_F(EndToEndTest, ReportsRenderForRealResults) {
  core::Pipeline pipeline(core::IqbConfig::paper_defaults());
  auto output = pipeline.run(*store_);
  const std::string table = report::comparison_table(output.results);
  EXPECT_NE(table.find("fiber_town"), std::string::npos);
  EXPECT_NE(table.find("dsl_village"), std::string::npos);
  for (const auto& result : output.results) {
    EXPECT_FALSE(report::scorecard(result).empty());
  }
  EXPECT_TRUE(util::parse_json(report::to_json(output.results).dump()).ok());
}

TEST_F(EndToEndTest, SensitivityRunsOnCampaignData) {
  core::SensitivityAnalyzer analyzer(core::IqbConfig::paper_defaults(),
                                     *store_);
  auto report = analyzer.analyze("fiber_town", core::QualityLevel::kHigh,
                                 {50, 95}, {0.5, 2.0});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->dataset_ablations.size(), 3u);
  EXPECT_EQ(report->percentile_sweep.size(), 2u);
}

TEST_F(EndToEndTest, ToolsDisagreeButCorroborate) {
  // The three datasets disagree on magnitude (different methods) but
  // agree on ordering: fiber > dsl for every dataset.
  auto aggregates = datasets::aggregate(*store_);
  for (const std::string dataset : {"ndt", "cloudflare", "ookla"}) {
    auto fiber = aggregates.get("fiber_town", dataset,
                                datasets::Metric::kDownload);
    auto dsl =
        aggregates.get("dsl_village", dataset, datasets::Metric::kDownload);
    ASSERT_TRUE(fiber.ok()) << dataset;
    ASSERT_TRUE(dsl.ok()) << dataset;
    EXPECT_GT(fiber->value, dsl->value) << dataset;
  }
}

}  // namespace
}  // namespace iqb
