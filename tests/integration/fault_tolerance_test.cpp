// Fault-tolerance integration: the full ingest -> score path driven
// through injected faults. Proves the PR's core claim end to end:
// with one dataset feed 100% failing, every region still gets a
// score, the score is flagged tier B/C, and eq. (1)'s renormalized
// weights over the surviving datasets sum to 1.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "iqb/core/pipeline.hpp"
#include "iqb/core/score.hpp"
#include "iqb/datasets/io.hpp"
#include "iqb/datasets/synthetic.hpp"
#include "iqb/robust/circuit_breaker.hpp"
#include "iqb/robust/degradation.hpp"
#include "iqb/robust/fault_injection.hpp"
#include "iqb/util/rng.hpp"

namespace iqb {
namespace {

using datasets::MeasurementRecord;

/// Synthetic full-panel records for a few regions, deterministic.
std::vector<MeasurementRecord> panel_records() {
  const auto panel = datasets::default_dataset_panel();
  datasets::SyntheticConfig config;
  config.records_per_dataset = 60;
  config.base_time = util::Timestamp::parse("2025-03-01").value();
  util::Rng rng(7);
  std::vector<MeasurementRecord> all;
  for (const auto& profile : datasets::example_region_profiles()) {
    auto records =
        datasets::generate_region_records(profile, panel, config, rng);
    all.insert(all.end(), std::make_move_iterator(records.begin()),
               std::make_move_iterator(records.end()));
  }
  return all;
}

/// The records of one dataset, serialized as a CSV "feed".
std::string feed_csv(const std::vector<MeasurementRecord>& records,
                     const std::string& dataset) {
  std::vector<MeasurementRecord> subset;
  for (const auto& record : records) {
    if (record.dataset == dataset) subset.push_back(record);
  }
  return datasets::records_to_csv(subset);
}

class FaultToleranceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { records_ = new std::vector(panel_records()); }
  static void TearDownTestSuite() {
    delete records_;
    records_ = nullptr;
  }

  static const std::vector<MeasurementRecord>& records() { return *records_; }

  static std::vector<MeasurementRecord>* records_;
};

std::vector<MeasurementRecord>* FaultToleranceTest::records_ = nullptr;

TEST_F(FaultToleranceTest, HealthyRunIsTierAAndHealthOverloadIsIdentical) {
  datasets::RecordStore store;
  auto copy = records();
  ASSERT_EQ(store.add_all(std::move(copy)), 0u);
  core::Pipeline pipeline(core::IqbConfig::paper_defaults());
  const auto plain = pipeline.run(store);
  const auto with_health = pipeline.run(store, robust::IngestHealth{});
  ASSERT_FALSE(plain.results.empty());
  EXPECT_FALSE(plain.degraded());
  ASSERT_EQ(plain.results.size(), with_health.results.size());
  for (std::size_t i = 0; i < plain.results.size(); ++i) {
    // A healthy run is bit-identical with and without health plumbing.
    EXPECT_EQ(plain.results[i].high.iqb_score,
              with_health.results[i].high.iqb_score);
    EXPECT_EQ(plain.results[i].minimum.iqb_score,
              with_health.results[i].minimum.iqb_score);
    EXPECT_EQ(plain.results[i].degradation().tier,
              robust::ConfidenceTier::kA);
  }
}

TEST_F(FaultToleranceTest, DeadFeedStillScoresEveryRegionDegraded) {
  // Three per-dataset feeds; the ndt one fails on every fetch.
  robust::FaultSpec dead;
  dead.io_error_rate = 1.0;
  robust::FaultInjector injector(dead, 3);

  datasets::LoadOptions options;
  options.retry.max_attempts = 3;
  robust::CircuitBreakerConfig breaker_config;
  breaker_config.window_size = 4;
  breaker_config.min_samples = 2;

  datasets::RecordStore store;
  robust::IngestHealth health;
  std::map<std::string, robust::CircuitBreaker> breakers;
  for (const std::string dataset : {"ndt", "cloudflare", "ookla"}) {
    const std::string csv = feed_csv(records(), dataset);
    robust::TextSource source = [&csv]() -> util::Result<std::string> {
      return csv;
    };
    if (dataset == "ndt") source = injector.wrap("ndt_feed", source);
    auto [it, inserted] = breakers.try_emplace(dataset, breaker_config);
    // Hammer the dead feed enough times to trip its breaker.
    for (int round = 0; round < 3; ++round) {
      auto outcome =
          datasets::load_records(source, dataset + "_feed", options,
                                 &it->second);
      if (!outcome.ok()) continue;
      store.add_all(std::move(outcome).value().records);
      break;
    }
    if (it->second.open()) health.open_breakers.push_back(dataset);
  }

  ASSERT_EQ(health.open_breakers, std::vector<std::string>{"ndt"});
  EXPECT_GT(injector.counters().io_errors, 0u);

  const core::IqbConfig config = core::IqbConfig::paper_defaults();
  core::Pipeline pipeline(config);
  const auto output = pipeline.run(store, health);

  // Every region is still scored — none skipped.
  EXPECT_TRUE(output.skipped.empty());
  ASSERT_EQ(output.results.size(),
            datasets::example_region_profiles().size());
  EXPECT_TRUE(output.degraded());

  core::Scorer scorer(config.thresholds, config.weights);
  for (const auto& result : output.results) {
    const auto& degradation = result.degradation();
    // Dataset missing + breaker open: tier B at best, C when the
    // region ended up single-source.
    EXPECT_NE(degradation.tier, robust::ConfidenceTier::kA);
    EXPECT_TRUE(std::find(degradation.missing_datasets.begin(),
                          degradation.missing_datasets.end(),
                          "ndt") != degradation.missing_datasets.end());
    EXPECT_EQ(degradation.open_breakers,
              std::vector<std::string>{"ndt"});
    EXPECT_GT(result.high.iqb_score, 0.0);

    // Eq. (1): the weights renormalized over the surviving datasets
    // sum to 1 for every (use case, requirement) that kept any
    // positively-weighted dataset.
    for (core::UseCase use_case : core::kAllUseCases) {
      for (core::Requirement requirement : core::kAllRequirements) {
        const auto weights = scorer.renormalized_dataset_weights(
            use_case, requirement, degradation.present_datasets);
        if (weights.empty()) continue;
        double total = 0.0;
        for (const auto& [dataset, weight] : weights) {
          EXPECT_NE(dataset, "ndt");
          total += weight;
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
      }
    }
  }
}

TEST_F(FaultToleranceTest, CorruptedFeedQuarantinesAndStillScores) {
  robust::FaultSpec dirty;
  dirty.row_corruption_rate = 0.15;
  robust::FaultInjector injector(dirty, 11);

  const std::string csv = datasets::records_to_csv(records());
  robust::TextSource source =
      injector.wrap("records", [&csv]() -> util::Result<std::string> {
        return csv;
      });

  robust::Quarantine quarantine;
  datasets::LoadOptions options;
  options.ingest = robust::IngestPolicy::lenient(/*max_error_rate=*/0.5);
  auto outcome =
      datasets::load_records(source, "records", options, nullptr, &quarantine);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(injector.counters().corrupted_rows, 0u);
  // Not every corruption is fatal (a garbage optional field may still
  // parse), but some rows must have been quarantined at 15%.
  EXPECT_GT(outcome->rows_quarantined, 0u);
  EXPECT_EQ(outcome->rows_quarantined, quarantine.count());
  EXPECT_FALSE(outcome->records.empty());

  datasets::RecordStore store;
  store.add_all(std::move(outcome).value().records);
  robust::IngestHealth health;
  health.rows_quarantined = quarantine.count();

  core::Pipeline pipeline(core::IqbConfig::paper_defaults());
  const auto output = pipeline.run(store, health);
  ASSERT_FALSE(output.results.empty());
  EXPECT_TRUE(output.degraded());
  for (const auto& result : output.results) {
    EXPECT_EQ(result.degradation().rows_quarantined, quarantine.count());
  }
}

TEST_F(FaultToleranceTest, TransientFailureRecoversViaRetry) {
  const std::string csv = feed_csv(records(), "ndt");
  int calls = 0;
  robust::TextSource flaky = [&csv, &calls]() -> util::Result<std::string> {
    if (++calls < 3) {
      return util::make_error(util::ErrorCode::kIoError, "flaky feed");
    }
    return csv;
  };
  datasets::LoadOptions options;
  options.retry.max_attempts = 4;
  auto outcome = datasets::load_records(flaky, "ndt_feed", options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->attempts, 3u);
  EXPECT_FALSE(outcome->records.empty());
}

TEST_F(FaultToleranceTest, OpenBreakerFailsFastWithoutFetching) {
  robust::CircuitBreakerConfig config;
  config.window_size = 4;
  config.min_samples = 2;
  config.cooldown_denials = 100;  // stay open for the whole test
  robust::CircuitBreaker breaker(config);
  breaker.record_failure();
  breaker.record_failure();
  ASSERT_TRUE(breaker.open());

  int calls = 0;
  robust::TextSource source = [&calls]() -> util::Result<std::string> {
    ++calls;
    return std::string("dataset,region,isp,subscriber_id,timestamp,"
                       "download_mbps,upload_mbps,latency_ms,"
                       "loaded_latency_ms,loss_fraction\n");
  };
  auto outcome = datasets::load_records(source, "feed", {}, &breaker);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, util::ErrorCode::kIoError);
  EXPECT_NE(outcome.error().message.find("circuit breaker open"),
            std::string::npos);
  EXPECT_EQ(calls, 0);  // fail-fast: the source was never touched
}

}  // namespace
}  // namespace iqb
