#include "iqb/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace iqb::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, HandlesMoreTasksThanThreadsAndViceVersa) {
  ThreadPool pool(3);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{100}}) {
    std::vector<std::atomic<int>> hits(n == 0 ? 1 : n);
    pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, IsReusableAcrossManyLoops) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(10, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500u);
}

TEST(ThreadPool, SerialWidthRunsInlineOnTheCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(8);
  pool.parallel_for(8, [&](std::size_t i) {
    ran[i] = std::this_thread::get_id();
  });
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, PropagatesTheFirstTaskException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          ran.fetch_add(1);
                          if (i == 13) throw std::runtime_error("task 13");
                        }),
      std::runtime_error);
  // The pool must still be usable after an exceptional loop.
  std::atomic<int> after{0};
  pool.parallel_for(10, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPool, ResolveThreadsMapsZeroToHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(7), 7u);
}

TEST(ThreadPool, ParallelSumMatchesSerialSum) {
  constexpr std::size_t kN = 4096;
  std::vector<double> values(kN);
  std::iota(values.begin(), values.end(), 1.0);
  std::vector<double> doubled(kN);
  ThreadPool pool(4);
  pool.parallel_for(kN, [&](std::size_t i) { doubled[i] = 2.0 * values[i]; });
  const double sum = std::accumulate(doubled.begin(), doubled.end(), 0.0);
  EXPECT_EQ(sum, kN * (kN + 1.0));
}

}  // namespace
}  // namespace iqb::util
