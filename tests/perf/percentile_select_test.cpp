#include "iqb/stats/percentile.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "iqb/util/rng.hpp"

namespace iqb::stats {
namespace {

constexpr QuantileMethod kAllMethods[] = {
    QuantileMethod::kNearestRank, QuantileMethod::kLinear,
    QuantileMethod::kHazen, QuantileMethod::kMedianUnbiased,
    QuantileMethod::kNormalUnbiased};

/// Selection must agree with the sort path bit for bit: EXPECT_EQ on
/// doubles, no tolerance.
void expect_bit_identical(const std::vector<double>& sample, double p,
                          QuantileMethod method) {
  auto sorted_result = percentile(sample, p, method);
  std::vector<double> scratch(sample);
  auto select_result = percentile_select(scratch, p, method);
  ASSERT_EQ(sorted_result.ok(), select_result.ok());
  if (sorted_result.ok()) {
    EXPECT_EQ(sorted_result.value(), select_result.value())
        << "p=" << p << " method=" << static_cast<int>(method)
        << " n=" << sample.size();
  }
}

TEST(PercentileSelect, MatchesSortPathOnSmallSamples) {
  const std::vector<std::vector<double>> samples = {
      {42.0},
      {1.0, 2.0},
      {3.0, 1.0, 2.0},
      {10.0, 10.0, 10.0, 10.0},
      {5.0, -3.0, 7.5, 0.0, 2.25, -1.125}};
  for (const auto& sample : samples) {
    for (QuantileMethod method : kAllMethods) {
      for (double p : {0.0, 5.0, 25.0, 50.0, 75.0, 95.0, 100.0}) {
        expect_bit_identical(sample, p, method);
      }
    }
  }
}

TEST(PercentileSelect, MatchesSortPathOnRandomSamples) {
  util::Rng rng(4242);
  for (std::size_t n : {std::size_t{2}, std::size_t{19}, std::size_t{100},
                        std::size_t{1001}}) {
    std::vector<double> sample;
    sample.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      sample.push_back(rng.uniform(-1e6, 1e6));
    }
    for (QuantileMethod method : kAllMethods) {
      for (double p = 0.0; p <= 100.0; p += 2.5) {
        expect_bit_identical(sample, p, method);
      }
    }
  }
}

TEST(PercentileSelect, MatchesSortPathWithDuplicateHeavySamples) {
  util::Rng rng(7);
  std::vector<double> sample;
  for (std::size_t i = 0; i < 500; ++i) {
    // Few distinct values: nth_element partitions full of ties.
    sample.push_back(static_cast<double>(rng.uniform_int(0, 4)));
  }
  for (QuantileMethod method : kAllMethods) {
    for (double p : {1.0, 33.0, 50.0, 66.0, 95.0, 99.0}) {
      expect_bit_identical(sample, p, method);
    }
  }
}

TEST(PercentileSelect, ErrorsMatchTheSortPath) {
  std::vector<double> empty;
  auto select_empty = percentile_select(empty, 50.0);
  ASSERT_FALSE(select_empty.ok());
  EXPECT_EQ(select_empty.error().message, "percentile: empty sample");

  std::vector<double> sample{1.0, 2.0};
  auto select_range = percentile_select(sample, 101.0);
  auto sort_range = percentile(sample, 101.0);
  ASSERT_FALSE(select_range.ok());
  ASSERT_FALSE(sort_range.ok());
  EXPECT_EQ(select_range.error().message, sort_range.error().message);
}

TEST(PercentileSelect, ReordersInPlaceButAnswersFromTheSameMultiset) {
  std::vector<double> sample{9.0, 1.0, 5.0, 3.0, 7.0};
  std::vector<double> scratch(sample);
  auto result = percentile_select(scratch, 50.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 5.0);
  // Contents may be permuted, never changed.
  std::sort(sample.begin(), sample.end());
  std::sort(scratch.begin(), scratch.end());
  EXPECT_EQ(sample, scratch);
}

}  // namespace
}  // namespace iqb::stats
