// The tentpole guarantee, tested end to end: the indexed and parallel
// execution paths produce byte-identical artifacts to the serial scan
// path — same AggregateTable, same RegionResults, same rendered
// reports — on synthetic stores, degraded (missing-dataset) stores,
// and the checked-in example CSV.
#include <gtest/gtest.h>

#include <sstream>

#include "iqb/cli/load.hpp"
#include "iqb/core/pipeline.hpp"
#include "iqb/datasets/aggregate.hpp"
#include "iqb/datasets/io.hpp"
#include "iqb/datasets/synthetic.hpp"
#include "iqb/report/render.hpp"

namespace iqb {
namespace {

datasets::RecordStore synthetic_store() {
  util::Rng rng(1234);
  datasets::SyntheticConfig config;
  config.records_per_dataset = 60;
  std::vector<datasets::MeasurementRecord> records;
  for (const auto& profile : datasets::example_region_profiles()) {
    auto region_records = datasets::generate_region_records(
        profile, datasets::default_dataset_panel(), config, rng);
    records.insert(records.end(), region_records.begin(),
                   region_records.end());
  }
  return datasets::RecordStore(std::move(records));
}

/// A store where one region is missing a panel dataset entirely and
/// another has only one dataset: the degraded-mode scoring inputs.
datasets::RecordStore degraded_store() {
  util::Rng rng(77);
  datasets::SyntheticConfig config;
  config.records_per_dataset = 30;
  const auto panel = datasets::default_dataset_panel();
  const auto profiles = datasets::example_region_profiles();
  std::vector<datasets::MeasurementRecord> records;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    auto region_panel = panel;
    if (i == 1) region_panel.erase(region_panel.begin());  // drop one dataset
    if (i == 2) region_panel.resize(1);                    // keep only one
    auto region_records = datasets::generate_region_records(
        profiles[i], region_panel, config, rng);
    records.insert(records.end(), region_records.begin(),
                   region_records.end());
  }
  return datasets::RecordStore(std::move(records));
}

void expect_tables_identical(const datasets::RecordStore& store,
                             const datasets::AggregationPolicy& policy) {
  const auto scan = datasets::aggregate_scan(store, policy);
  auto serial_policy = policy;
  serial_policy.threads = 1;
  const auto serial = datasets::aggregate(store, serial_policy);
  auto parallel_policy = policy;
  parallel_policy.threads = 4;
  const auto parallel = datasets::aggregate(store, parallel_policy);

  const std::string scan_csv = datasets::aggregates_to_csv(scan);
  EXPECT_EQ(scan_csv, datasets::aggregates_to_csv(serial));
  EXPECT_EQ(scan_csv, datasets::aggregates_to_csv(parallel));

  // Field-level check too: CSV rendering could mask bit differences.
  ASSERT_EQ(scan.size(), parallel.size());
  for (const auto& cell : scan.cells()) {
    auto other = parallel.get(cell.region, cell.dataset, cell.metric);
    ASSERT_TRUE(other.ok());
    EXPECT_EQ(cell.value, other->value);
    EXPECT_EQ(cell.sample_count, other->sample_count);
    ASSERT_EQ(cell.ci.has_value(), other->ci.has_value());
    if (cell.ci) {
      EXPECT_EQ(cell.ci->lower, other->ci->lower);
      EXPECT_EQ(cell.ci->upper, other->ci->upper);
    }
  }
}

std::string run_report(const datasets::RecordStore& store,
                       std::size_t threads) {
  core::IqbConfig config = core::IqbConfig::paper_defaults();
  config.aggregation.threads = threads;
  core::Pipeline pipeline(std::move(config));
  auto output = pipeline.run(store);
  std::string rendered = report::to_json(output.results).dump(2);
  rendered += "\n" + report::comparison_table(output.results);
  for (const auto& result : output.results) {
    rendered += "\n" + report::scorecard(result);
  }
  for (const auto& skipped : output.skipped) {
    rendered += "\nskipped " + skipped.to_string();
  }
  return rendered;
}

TEST(ParallelEquivalence, AggregateTablesMatchOnSyntheticStore) {
  expect_tables_identical(synthetic_store(), {});
}

TEST(ParallelEquivalence, AggregateTablesMatchAcrossQuantileMethods) {
  const auto store = synthetic_store();
  for (auto method :
       {stats::QuantileMethod::kNearestRank, stats::QuantileMethod::kLinear,
        stats::QuantileMethod::kHazen,
        stats::QuantileMethod::kMedianUnbiased,
        stats::QuantileMethod::kNormalUnbiased}) {
    datasets::AggregationPolicy policy;
    policy.method = method;
    expect_tables_identical(store, policy);
  }
}

TEST(ParallelEquivalence, AggregateTablesMatchWithBootstrapCi) {
  // The bootstrap resamples by index, so it is sensitive to value
  // order: the indexed path must hand it the pristine store-order
  // column, not the selection-scrambled scratch copy.
  datasets::AggregationPolicy policy;
  policy.bootstrap_resamples = 50;
  expect_tables_identical(synthetic_store(), policy);
}

TEST(ParallelEquivalence, PipelineReportsMatchOnSyntheticStore) {
  const auto store = synthetic_store();
  const std::string serial = run_report(store, 1);
  EXPECT_EQ(serial, run_report(store, 2));
  EXPECT_EQ(serial, run_report(store, 4));
}

TEST(ParallelEquivalence, PipelineReportsMatchOnDegradedStore) {
  const auto store = degraded_store();
  expect_tables_identical(store, {});
  const std::string serial = run_report(store, 1);
  EXPECT_EQ(serial, run_report(store, 2));
  EXPECT_EQ(serial, run_report(store, 4));
}

TEST(ParallelEquivalence, ScanOracleAgreesWithPipelineAggregates) {
  const auto store = synthetic_store();
  core::IqbConfig config = core::IqbConfig::paper_defaults();
  const auto oracle =
      datasets::aggregate_scan(store, config.aggregation);
  config.aggregation.threads = 4;
  core::Pipeline pipeline(std::move(config));
  const auto output = pipeline.run(store);
  EXPECT_EQ(datasets::aggregates_to_csv(oracle),
            datasets::aggregates_to_csv(output.aggregates));
}

TEST(ParallelEquivalence, ExampleCsvScoresMatchAcrossWidths) {
  std::ostringstream errors;
  auto loaded = cli::load_store(std::string(IQB_EXAMPLES_DIR) +
                                    "/example_records.csv",
                                /*lenient=*/false, errors);
  ASSERT_TRUE(loaded.ok()) << errors.str();
  const datasets::RecordStore& store = loaded->store;
  expect_tables_identical(store, {});
  const std::string serial = run_report(store, 1);
  EXPECT_EQ(serial, run_report(store, 2));
  EXPECT_EQ(serial, run_report(store, 4));
}

TEST(ParallelEquivalence, AggregateCellLookupMatchesScanSemantics) {
  const auto store = synthetic_store();
  const auto table = datasets::aggregate_scan(store, {});
  for (const auto& cell : table.cells()) {
    auto via_index = datasets::aggregate_cell(store, cell.region,
                                              cell.dataset, cell.metric, {});
    ASSERT_TRUE(via_index.ok());
    EXPECT_EQ(via_index->value, cell.value);
    EXPECT_EQ(via_index->sample_count, cell.sample_count);
  }
  auto missing = datasets::aggregate_cell(store, "no_such_region", "ndt",
                                          datasets::Metric::kDownload, {});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().message,
            "insufficient samples for region='no_such_region' dataset='ndt' "
            "metric='download'");
}

}  // namespace
}  // namespace iqb
