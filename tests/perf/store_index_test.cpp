#include "iqb/datasets/index.hpp"

#include <gtest/gtest.h>

#include "iqb/datasets/store.hpp"
#include "iqb/datasets/synthetic.hpp"

namespace iqb::datasets {
namespace {

MeasurementRecord make_record(const std::string& region,
                              const std::string& dataset,
                              const std::string& isp, double download) {
  MeasurementRecord record;
  record.region = region;
  record.dataset = dataset;
  record.isp = isp;
  record.download = util::Mbps{download};
  record.latency = util::Millis{20.0};
  return record;
}

RecordStore synthetic_store(std::size_t records_per_dataset = 40) {
  util::Rng rng(99);
  SyntheticConfig config;
  config.records_per_dataset = records_per_dataset;
  std::vector<MeasurementRecord> records;
  for (const auto& profile : example_region_profiles()) {
    auto region_records =
        generate_region_records(profile, default_dataset_panel(), config, rng);
    records.insert(records.end(), region_records.begin(),
                   region_records.end());
  }
  return RecordStore(std::move(records));
}

TEST(SymbolTable, InternsToDenseInsertionOrderedIds) {
  SymbolTable table;
  EXPECT_EQ(table.intern("metro"), 0u);
  EXPECT_EQ(table.intern("rural"), 1u);
  EXPECT_EQ(table.intern("metro"), 0u);  // idempotent
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.name(1), "rural");
  EXPECT_EQ(table.find("rural"), std::optional<std::uint32_t>{1});
  EXPECT_EQ(table.find("absent"), std::nullopt);
  EXPECT_EQ(table.sorted_names(),
            (std::vector<std::string>{"metro", "rural"}));
}

TEST(StoreIndex, GroupsAreSortedByRegionThenDataset) {
  std::vector<MeasurementRecord> records;
  records.push_back(make_record("b_region", "z_data", "isp", 10));
  records.push_back(make_record("a_region", "z_data", "isp", 20));
  records.push_back(make_record("b_region", "a_data", "isp", 30));
  records.push_back(make_record("a_region", "a_data", "isp", 40));
  const StoreIndex index = StoreIndex::build(records);
  ASSERT_EQ(index.groups().size(), 4u);
  std::vector<std::pair<std::string, std::string>> order;
  for (const auto& group : index.groups()) {
    order.emplace_back(index.region_symbols().name(group.region_id),
                       index.dataset_symbols().name(group.dataset_id));
  }
  const std::vector<std::pair<std::string, std::string>> expected{
      {"a_region", "a_data"},
      {"a_region", "z_data"},
      {"b_region", "a_data"},
      {"b_region", "z_data"}};
  EXPECT_EQ(order, expected);
}

TEST(StoreIndex, ColumnsMatchAScanInStoreOrder) {
  const RecordStore store = synthetic_store();
  const StoreIndex& index = store.index();
  EXPECT_EQ(index.record_count(), store.size());
  for (const auto& group : index.groups()) {
    RecordFilter filter;
    filter.region = index.region_symbols().name(group.region_id);
    filter.dataset = index.dataset_symbols().name(group.dataset_id);
    for (Metric metric : kAllMetrics) {
      EXPECT_EQ(group.column(metric), store.metric_values(metric, filter))
          << *filter.region << "/" << *filter.dataset;
    }
  }
}

TEST(StoreIndex, DistinctNameListsMatchTheScanAnswers) {
  const RecordStore store = synthetic_store();
  const StoreIndex& index = store.index();
  // regions()/dataset_names()/isps() now answer from the index; the
  // cross-check is against a hand-rolled scan.
  std::vector<std::string> regions;
  for (const auto& record : store.records()) regions.push_back(record.region);
  std::sort(regions.begin(), regions.end());
  regions.erase(std::unique(regions.begin(), regions.end()), regions.end());
  EXPECT_EQ(index.regions(), regions);
  EXPECT_EQ(store.regions(), regions);
}

TEST(StoreIndex, FindReturnsNullForAbsentCombos) {
  std::vector<MeasurementRecord> records;
  records.push_back(make_record("metro", "ndt", "isp", 10));
  const StoreIndex index = StoreIndex::build(records);
  EXPECT_NE(index.find("metro", "ndt"), nullptr);
  EXPECT_EQ(index.find("metro", "ookla"), nullptr);
  EXPECT_EQ(index.find("rural", "ndt"), nullptr);
}

TEST(RecordStore, IndexIsCachedUntilMutation) {
  RecordStore store;
  ASSERT_TRUE(store.add(make_record("metro", "ndt", "isp", 10)).ok());
  EXPECT_FALSE(store.index_ready());
  const StoreIndex* first = &store.index();
  EXPECT_TRUE(store.index_ready());
  EXPECT_EQ(first, &store.index());  // cached, same object

  ASSERT_TRUE(store.add(make_record("metro", "ndt", "isp", 20)).ok());
  EXPECT_FALSE(store.index_ready());  // invalidated by add()
  EXPECT_EQ(store.index().find("metro", "ndt")->rows.size(), 2u);

  store.add_all({make_record("rural", "ndt", "isp", 5)});
  EXPECT_FALSE(store.index_ready());

  RecordStore other;
  ASSERT_TRUE(other.add(make_record("exurb", "ookla", "isp", 50)).ok());
  store.index();
  store.merge(other);
  EXPECT_FALSE(store.index_ready());
  EXPECT_EQ(store.regions(),
            (std::vector<std::string>{"exurb", "metro", "rural"}));

  store.clear();
  EXPECT_FALSE(store.index_ready());
  EXPECT_TRUE(store.regions().empty());
}

TEST(RecordStore, CopiesShareTheBuiltIndexAndMovesKeepIt) {
  RecordStore store = synthetic_store();
  const StoreIndex* built = &store.index();

  RecordStore copy(store);
  EXPECT_TRUE(copy.index_ready());
  EXPECT_EQ(&copy.index(), built);  // shared immutable snapshot
  EXPECT_EQ(copy.size(), store.size());

  // Mutating the copy must not disturb the original's cache.
  ASSERT_TRUE(copy.add(make_record("new_region", "ndt", "isp", 1)).ok());
  EXPECT_FALSE(copy.index_ready());
  EXPECT_TRUE(store.index_ready());

  RecordStore moved(std::move(store));
  EXPECT_TRUE(moved.index_ready());
  EXPECT_EQ(&moved.index(), built);
}

TEST(RecordStore, ByRegionRefsPointsAtLiveRecords) {
  const RecordStore store = synthetic_store();
  std::size_t total = 0;
  for (const auto& [region, refs] : store.by_region_refs()) {
    for (const MeasurementRecord* record : refs) {
      EXPECT_EQ(record->region, region);
      ++total;
    }
  }
  EXPECT_EQ(total, store.size());
  // The deep-copy variant must agree with the ref variant.
  auto copies = store.by_region();
  auto refs = store.by_region_refs();
  ASSERT_EQ(copies.size(), refs.size());
  for (const auto& [region, group] : copies) {
    ASSERT_EQ(group.size(), refs.at(region).size());
    for (std::size_t i = 0; i < group.size(); ++i) {
      EXPECT_EQ(group[i].subscriber_id, refs.at(region)[i]->subscriber_id);
    }
  }
}

}  // namespace
}  // namespace iqb::datasets
