// iqbd history + alerting integration: every cycle samples the
// metrics registry (and per-region score gauges) into the ring-buffer
// TSDB at the injected clock's time, /historyz and /alertz serve the
// documents over HTTP, --slo-file adds declarative specs on top of
// the built-in rules, and the telemetry-off daemon exposes none of it
// (503s, null engines, untouched /scores bytes — asserted elsewhere).
#include "iqb/cli/daemon.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "iqb/datasets/io.hpp"
#include "iqb/datasets/synthetic.hpp"
#include "iqb/obs/clock.hpp"
#include "iqb/util/json.hpp"
#include "iqb/util/log.hpp"
#include "../testsupport/http_get.hpp"

namespace iqb::cli {
namespace {

using testsupport::http_get;

class DaemonHistoryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    records_path_ =
        (std::filesystem::temp_directory_path() /
         ("iqb_history_test_records_" + std::to_string(getpid()) + ".csv"))
            .string();
    util::Rng rng(7);
    datasets::RecordStore store;
    datasets::SyntheticConfig config;
    config.records_per_dataset = 30;
    config.base_time = util::Timestamp::parse("2025-04-01").value();
    config.spacing_s = 3600;
    for (const auto& profile : datasets::example_region_profiles()) {
      store.add_all(datasets::generate_region_records(
          profile, datasets::default_dataset_panel(), config, rng));
    }
    ASSERT_TRUE(
        datasets::write_records_csv(records_path_, store.records()).ok());
  }

  static void TearDownTestSuite() { std::remove(records_path_.c_str()); }

  static DaemonOptions base_options() {
    DaemonOptions options;
    options.records_path = records_path_;
    options.port = 0;
    options.watch_files = false;
    return options;
  }

  static std::string records_path_;
};

std::string DaemonHistoryTest::records_path_;

TEST_F(DaemonHistoryTest, CyclesSampleRegistryIntoHistoryAtClockTime) {
  obs::ManualClock clock(1'000'000'000ull);  // t = 1000 ms
  DaemonOptions options = base_options();
  options.clock = &clock;
  WatchDaemon daemon(options);
  std::ostringstream err;
  ASSERT_TRUE(daemon.run_cycle(err)) << err.str();
  clock.advance_ms(5000);
  ASSERT_TRUE(daemon.run_cycle(err)) << err.str();

  ASSERT_NE(daemon.history(), nullptr);
  // Per-region score gauges landed in the ring, stamped by the
  // injected clock — fully deterministic timestamps.
  const auto score_series = daemon.history()->label_sets("iqb_region_score");
  ASSERT_FALSE(score_series.empty());
  const auto latest =
      daemon.history()->latest("iqb_region_score", score_series.front());
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->t_ms, 6000u);
  const auto points = daemon.history()->points_in_window(
      "iqb_region_score", score_series.front(), 60'000, 6000);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].t_ms, 1000u);
  EXPECT_EQ(points[1].t_ms, 6000u);

  // The cycle counter is in there as a counter series with delta 1
  // across the two samples.
  const auto cycles = daemon.history()->query(
      "iqb_daemon_cycles_total", {{"result", "ok"}}, 60'000, 6000);
  ASSERT_TRUE(cycles.has_value());
  EXPECT_EQ(cycles->delta, 1.0);

  // Uptime tracks the injected clock.
  const auto uptime = daemon.history()->latest("iqbd_uptime_seconds", {});
  ASSERT_TRUE(uptime.has_value());
  EXPECT_EQ(uptime->value, 5.0);

  // The built-in rules evaluated each cycle without false-firing on a
  // healthy daemon.
  ASSERT_NE(daemon.slo(), nullptr);
  EXPECT_EQ(daemon.slo()->spec_count(), 3u);  // drift, flap, error burn
  EXPECT_EQ(daemon.slo()->evaluations(), 2u);
  EXPECT_TRUE(daemon.slo()->active().empty());
}

TEST_F(DaemonHistoryTest, HistoryzAndAlertzServeOverHttp) {
  WatchDaemon daemon(base_options());
  std::ostringstream err;
  ASSERT_TRUE(daemon.run_cycle(err)) << err.str();
  ASSERT_TRUE(daemon.server().start().ok());

  const auto history = http_get(daemon.port(), "/historyz?window=60000");
  ASSERT_TRUE(history.ok);
  EXPECT_EQ(history.status, 200);
  auto document = util::parse_json(history.body);
  ASSERT_TRUE(document.ok()) << history.body;
  EXPECT_EQ(document->get_number("window_ms").value(), 60'000.0);
  EXPECT_GT(document->get_number("series_count").value(), 0.0);

  // Family filter + raw points for the dashboard sparkline feed.
  const auto filtered = http_get(
      daemon.port(), "/historyz?series=iqb_region_score&points=true");
  ASSERT_EQ(filtered.status, 200);
  auto filtered_document = util::parse_json(filtered.body);
  ASSERT_TRUE(filtered_document.ok());
  const auto series = filtered_document->get_array("series");
  ASSERT_TRUE(series.ok());
  ASSERT_FALSE(series->empty());
  for (const util::JsonValue& entry : *series) {
    EXPECT_EQ(entry.get_string("name").value(), "iqb_region_score");
    EXPECT_TRUE(entry.contains("points"));
  }

  // A bad window is a client error, not a silent default.
  EXPECT_EQ(http_get(daemon.port(), "/historyz?window=soon").status, 400);

  const auto alertz = http_get(daemon.port(), "/alertz");
  ASSERT_EQ(alertz.status, 200) << alertz.body;
  auto alert_document = util::parse_json(alertz.body);
  ASSERT_TRUE(alert_document.ok());
  EXPECT_EQ(alert_document->get_number("specs").value(), 3.0);
  EXPECT_EQ(alert_document->get_number("evaluations").value(), 1.0);
  EXPECT_TRUE(alert_document->get_array("active")->empty());

  // The endpoints are first-class: the index page names them.
  const auto index = http_get(daemon.port(), "/");
  EXPECT_NE(index.body.find("/historyz"), std::string::npos);
  EXPECT_NE(index.body.find("/alertz"), std::string::npos);
}

TEST_F(DaemonHistoryTest, TelemetryOffDisablesHistoryAndAlerting) {
  DaemonOptions options = base_options();
  options.telemetry = false;
  WatchDaemon daemon(options);
  std::ostringstream err;
  ASSERT_TRUE(daemon.run_cycle(err)) << err.str();
  EXPECT_EQ(daemon.history(), nullptr);
  EXPECT_EQ(daemon.slo(), nullptr);

  ASSERT_TRUE(daemon.server().start().ok());
  EXPECT_EQ(http_get(daemon.port(), "/historyz").status, 503);
  EXPECT_EQ(http_get(daemon.port(), "/alertz").status, 503);
  // The scoring surface is untouched.
  EXPECT_EQ(http_get(daemon.port(), "/scores").status, 200);
}

TEST_F(DaemonHistoryTest, AlertzBeforeFirstCycleServesAnEmptyDocument) {
  // Pollers need no startup special-case: before the engine exists
  // (no cycle yet, telemetry on) /alertz serves an empty document.
  WatchDaemon daemon(base_options());
  ASSERT_TRUE(daemon.server().start().ok());
  const auto alertz = http_get(daemon.port(), "/alertz");
  ASSERT_EQ(alertz.status, 200);
  auto document = util::parse_json(alertz.body);
  ASSERT_TRUE(document.ok()) << alertz.body;
  EXPECT_EQ(document->get_number("specs").value(), 0.0);
  EXPECT_TRUE(document->get_array("active")->empty());
}

TEST_F(DaemonHistoryTest, SloFileAddsSpecsAndBadFileFailsTheCycle) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("iqb_daemon_slo_" + std::to_string(getpid()) + ".json"))
          .string();
  {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(R"({"slos": [{"name": "latency_burn", "type": "burn_rate",
      "metric": "iqb_http_request_duration_ms", "threshold_ms": 250,
      "objective": 0.99}]})",
               f);
    std::fclose(f);
  }

  DaemonOptions options = base_options();
  options.slo_file = path;
  WatchDaemon daemon(options);
  std::ostringstream err;
  ASSERT_TRUE(daemon.run_cycle(err)) << err.str();
  ASSERT_NE(daemon.slo(), nullptr);
  EXPECT_EQ(daemon.slo()->spec_count(), 4u) << "3 built-ins + the file's";

  // A malformed file fails the cycle loudly instead of silently
  // alerting on nothing.
  {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(R"({"slos": [{"name": "x", "type": "burn_rate",
      "metric": "m", "bogus": 1}]})",
               f);
    std::fclose(f);
  }
  WatchDaemon broken(options);
  std::ostringstream broken_err;
  EXPECT_FALSE(broken.run_cycle(broken_err));
  EXPECT_NE(broken_err.str().find("slo config error"), std::string::npos)
      << broken_err.str();
  EXPECT_EQ(broken.cycles_failed(), 1u);
  std::remove(path.c_str());
}

TEST_F(DaemonHistoryTest, ParseArgsAcceptsSloFile) {
  auto options = parse_daemon_args(
      {"--records", "r.csv", "--slo-file", "/tmp/slo.json"});
  ASSERT_TRUE(options.ok()) << options.error().to_string();
  ASSERT_TRUE(options->slo_file.has_value());
  EXPECT_EQ(*options->slo_file, "/tmp/slo.json");
}

TEST_F(DaemonHistoryTest, HealthzAndBuildInfoCarryTheVersion) {
  WatchDaemon daemon(base_options());
  std::ostringstream err;
  ASSERT_TRUE(daemon.run_cycle(err)) << err.str();
  ASSERT_TRUE(daemon.server().start().ok());

  const auto healthz = http_get(daemon.port(), "/healthz");
  ASSERT_EQ(healthz.status, 200);
  auto document = util::parse_json(healthz.body);
  ASSERT_TRUE(document.ok()) << healthz.body;
  EXPECT_EQ(document->get_string("status").value(), "ok");
  EXPECT_FALSE(document->get_string("version").value().empty());
  EXPECT_FALSE(document->get_string("git_sha").value().empty());

  const auto metrics = http_get(daemon.port(), "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("iqb_build_info{git_sha=\""),
            std::string::npos)
      << "build identity gauge with version labels";
  EXPECT_NE(metrics.body.find("iqbd_uptime_seconds"), std::string::npos);
}

TEST_F(DaemonHistoryTest, AlertTransitionWarnCarriesTheCycleTraceId) {
  // A spec that fires on the very first cycle: iqb_daemon_ready > 0.
  // The transition WARN must ride the cycle's ambient log trace.
  obs::SloSpec spec;
  spec.type = obs::SloSpec::Type::kThreshold;
  spec.name = "always_on";
  spec.metric = "iqb_daemon_ready";
  spec.op = obs::SloSpec::Op::kGt;
  spec.bound = 0.5;
  DaemonOptions options = base_options();
  options.slo_specs = {spec};

  WatchDaemon daemon(options);
  std::vector<std::string> warnings;
  util::set_log_sink([&warnings](util::LogLevel level,
                                 std::string_view line) {
    if (level == util::LogLevel::kWarn) warnings.emplace_back(line);
  });
  std::ostringstream err;
  const bool published = daemon.run_cycle(err);
  util::set_log_sink(nullptr);
  ASSERT_TRUE(published) << err.str();

  bool found = false;
  for (const std::string& line : warnings) {
    if (line.find("alert always_on") == std::string::npos) continue;
    found = true;
    EXPECT_NE(line.find("inactive->firing"), std::string::npos) << line;
    EXPECT_NE(line.find("iqbd-1"), std::string::npos)
        << "the cycle trace id must ride the transition log: " << line;
    EXPECT_NE(line.find("cycle=1"), std::string::npos) << line;
  }
  EXPECT_TRUE(found) << warnings.size() << " warning(s), none for always_on";
  const auto active = daemon.slo()->active();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0].name, "always_on");
  EXPECT_EQ(active[0].trace_id, "iqbd-1");
}

}  // namespace
}  // namespace iqb::cli
