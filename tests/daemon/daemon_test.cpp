// iqbd watch-daemon tests: cycle semantics, readiness, trace-id log
// correlation, mtime-triggered re-runs, and the telemetry-off path.
#include "iqb/cli/daemon.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "iqb/cli/load.hpp"
#include "iqb/core/pipeline.hpp"
#include "iqb/datasets/io.hpp"
#include "iqb/datasets/synthetic.hpp"
#include "iqb/report/render.hpp"
#include "iqb/util/json.hpp"
#include "iqb/util/log.hpp"
#include "../testsupport/http_get.hpp"

namespace iqb::cli {
namespace {

using testsupport::http_get;

/// Poll until `predicate` holds or ~5 s elapse.
template <typename Predicate>
bool eventually(Predicate predicate) {
  for (int i = 0; i < 500; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

class DaemonTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    records_path_ =
        (std::filesystem::temp_directory_path() /
         ("iqb_daemon_test_records_" + std::to_string(getpid()) + ".csv"))
            .string();
    util::Rng rng(99);
    datasets::RecordStore store;
    datasets::SyntheticConfig config;
    config.records_per_dataset = 40;
    config.base_time = util::Timestamp::parse("2025-02-01").value();
    config.spacing_s = 3600;
    for (const auto& profile : datasets::example_region_profiles()) {
      store.add_all(datasets::generate_region_records(
          profile, datasets::default_dataset_panel(), config, rng));
    }
    ASSERT_TRUE(
        datasets::write_records_csv(records_path_, store.records()).ok());
  }

  static void TearDownTestSuite() { std::remove(records_path_.c_str()); }

  static DaemonOptions base_options() {
    DaemonOptions options;
    options.records_path = records_path_;
    options.port = 0;  // ephemeral
    return options;
  }

  static std::string records_path_;
};

std::string DaemonTest::records_path_;

TEST_F(DaemonTest, ParseArgsRoundTrip) {
  auto options = parse_daemon_args(
      {"--records", "r.csv", "--port", "1234", "--interval-ms", "250",
       "--watch", "false", "--lenient", "true", "--max-cycles", "7",
       "--telemetry", "false", "--trace-prefix", "x"});
  ASSERT_TRUE(options.ok()) << options.error().to_string();
  EXPECT_EQ(options->records_path, "r.csv");
  EXPECT_EQ(options->port, 1234);
  EXPECT_EQ(options->interval_ms, 250u);
  EXPECT_FALSE(options->watch_files);
  EXPECT_TRUE(options->lenient);
  EXPECT_EQ(options->max_cycles, 7u);
  EXPECT_FALSE(options->telemetry);
  EXPECT_EQ(options->trace_prefix, "x");

  EXPECT_FALSE(parse_daemon_args({}).ok());                    // no --records
  EXPECT_FALSE(parse_daemon_args({"--port", "99999"}).ok());   // range
  EXPECT_FALSE(parse_daemon_args({"--records"}).ok());         // no value
  EXPECT_FALSE(parse_daemon_args({"--bogus", "1"}).ok());      // unknown
}

TEST_F(DaemonTest, RunCyclePublishesSnapshotWithTraceId) {
  WatchDaemon daemon(base_options());
  std::ostringstream err;
  ASSERT_TRUE(daemon.run_cycle(err));
  auto snapshot = daemon.server().latest();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->cycle, 1u);
  EXPECT_EQ(snapshot->trace_id, "iqbd-1");
  auto parsed = util::parse_json(snapshot->scores_json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(snapshot->tier_c);
}

TEST_F(DaemonTest, TelemetryDisabledCycleProducesIdenticalScores) {
  // The satellite requirement: the watch loop with telemetry off must
  // run and score bit-identically to the instrumented loop — and to a
  // direct, daemon-free pipeline run.
  DaemonOptions with_telemetry = base_options();
  DaemonOptions without_telemetry = base_options();
  without_telemetry.telemetry = false;
  WatchDaemon instrumented(with_telemetry);
  WatchDaemon plain(without_telemetry);
  std::ostringstream err;
  ASSERT_TRUE(instrumented.run_cycle(err));
  ASSERT_TRUE(plain.run_cycle(err));
  const auto a = instrumented.server().latest();
  const auto b = plain.server().latest();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->scores_json, b->scores_json);

  // Telemetry off also means the cycle buffered no spans.
  auto plain_tracez = util::parse_json(
      plain.server().handle({"GET", "/tracez"}).body);
  ASSERT_TRUE(plain_tracez.ok());
  EXPECT_EQ(plain_tracez->get_number("count").value(), 0.0);

  std::ostringstream direct_err;
  auto loaded = load_store(records_path_, false, direct_err);
  ASSERT_TRUE(loaded.ok());
  core::Pipeline pipeline(core::IqbConfig::paper_defaults());
  auto output = pipeline.run(loaded->store, loaded->health, nullptr);
  EXPECT_EQ(report::to_json(output.results).dump(2) + "\n", b->scores_json);
}

TEST_F(DaemonTest, EveryLogRecordInACycleCarriesTheTraceIdTextAndJson) {
  std::mutex lines_mutex;
  std::vector<std::string> lines;
  util::set_log_level(util::LogLevel::kDebug);
  util::set_log_sink([&](util::LogLevel, std::string_view line) {
    std::lock_guard<std::mutex> lock(lines_mutex);
    lines.emplace_back(line);
  });

  WatchDaemon daemon(base_options());
  std::ostringstream err;

  util::set_log_format(util::LogFormat::kText);
  ASSERT_TRUE(daemon.run_cycle(err));  // cycle 1, text format
  {
    std::lock_guard<std::mutex> lock(lines_mutex);
    ASSERT_FALSE(lines.empty());
    for (const std::string& line : lines) {
      EXPECT_NE(line.find("trace=iqbd-1"), std::string::npos) << line;
    }
    lines.clear();
  }

  util::set_log_format(util::LogFormat::kJson);
  ASSERT_TRUE(daemon.run_cycle(err));  // cycle 2, JSON lines
  {
    std::lock_guard<std::mutex> lock(lines_mutex);
    ASSERT_FALSE(lines.empty());
    for (const std::string& line : lines) {
      auto parsed = util::parse_json(line);
      ASSERT_TRUE(parsed.ok()) << line;
      EXPECT_EQ(parsed->get_string("trace").value(), "iqbd-2") << line;
    }
    lines.clear();
  }

  util::set_log_sink(nullptr);
  util::set_log_format(util::LogFormat::kText);
  util::set_log_level(util::LogLevel::kWarn);
}

TEST_F(DaemonTest, ServesScoresOverHttpAndFinishesAfterMaxCycles) {
  DaemonOptions options = base_options();
  options.max_cycles = 2;
  options.interval_ms = 10;
  options.poll_ms = 5;
  WatchDaemon daemon(options);
  std::ostringstream err;
  ASSERT_TRUE(daemon.start(err).ok()) << err.str();
  ASSERT_TRUE(eventually([&] { return daemon.finished(); })) << err.str();

  const auto ready = http_get(daemon.port(), "/readyz");
  EXPECT_EQ(ready.status, 200) << ready.body;
  const auto scores = http_get(daemon.port(), "/scores");
  EXPECT_EQ(scores.status, 200);
  auto parsed = util::parse_json(scores.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->get_array("regions").value().empty());
  const auto metrics = http_get(daemon.port(), "/metrics");
  EXPECT_NE(metrics.body.find("iqb_daemon_cycles_total{result=\"ok\"} 2"),
            std::string::npos)
      << metrics.body.substr(0, 400);
  EXPECT_NE(
      metrics.body.find("iqb_pipeline_stage_duration_seconds_count"
                        "{stage=\"score\"} 2"),
      std::string::npos);
  const auto tracez = http_get(daemon.port(), "/tracez");
  EXPECT_NE(tracez.body.find("iqbd-2"), std::string::npos);
  EXPECT_EQ(daemon.cycles_total(), 2u);
  EXPECT_EQ(daemon.cycles_failed(), 0u);
  daemon.stop();
}

TEST_F(DaemonTest, FailedCyclesNeverFlipReadiness) {
  DaemonOptions options = base_options();
  options.records_path = "/nonexistent/iqb-daemon-test.csv";
  options.max_cycles = 2;
  options.interval_ms = 5;
  options.poll_ms = 5;
  options.watch_files = false;
  WatchDaemon daemon(options);
  std::ostringstream err;
  ASSERT_TRUE(daemon.start(err).ok());
  ASSERT_TRUE(eventually([&] { return daemon.finished(); }));
  const auto ready = http_get(daemon.port(), "/readyz");
  EXPECT_EQ(ready.status, 503);
  EXPECT_NE(ready.body.find("unready"), std::string::npos);
  EXPECT_EQ(http_get(daemon.port(), "/scores").status, 503);
  EXPECT_EQ(daemon.cycles_failed(), 2u);
  daemon.stop();
  EXPECT_NE(err.str().find("failed"), std::string::npos);
}

TEST_F(DaemonTest, SingleDatasetFeedDegradesReadyzToTierC503) {
  // A feed with one surviving dataset scores (renormalized weights)
  // but carries confidence tier C — /readyz must say 503 "degraded".
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("iqb_daemon_tier_c_" + std::to_string(getpid()) + ".csv"))
          .string();
  std::ostringstream err;
  {
    auto loaded = load_store(records_path_, false, err);
    ASSERT_TRUE(loaded.ok());
    std::vector<datasets::MeasurementRecord> ndt_only;
    for (const auto& record : loaded->store.records()) {
      if (record.dataset == "ndt") ndt_only.push_back(record);
    }
    ASSERT_FALSE(ndt_only.empty());
    ASSERT_TRUE(datasets::write_records_csv(path, ndt_only).ok());
  }
  DaemonOptions options = base_options();
  options.records_path = path;
  WatchDaemon daemon(options);
  ASSERT_TRUE(daemon.run_cycle(err));
  auto snapshot = daemon.server().latest();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_TRUE(snapshot->tier_c);
  obs::HttpResponse ready = daemon.server().handle({"GET", "/readyz"});
  EXPECT_EQ(ready.status, 503);
  EXPECT_NE(ready.body.find("degraded"), std::string::npos);
  EXPECT_EQ(daemon.server().handle({"GET", "/scores"}).status, 200);
  std::remove(path.c_str());
}

TEST_F(DaemonTest, RecordsFileMtimeChangeTriggersEarlyCycle) {
  // Copy the fixture records so touching them cannot race other tests.
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("iqb_daemon_watch_" + std::to_string(getpid()) + ".csv"))
          .string();
  std::filesystem::copy_file(
      records_path_, path, std::filesystem::copy_options::overwrite_existing);

  DaemonOptions options = base_options();
  options.records_path = path;
  options.interval_ms = 60'000;  // the interval alone would never re-run
  options.poll_ms = 10;
  WatchDaemon daemon(options);
  std::ostringstream err;
  ASSERT_TRUE(daemon.start(err).ok());
  ASSERT_TRUE(eventually([&] { return daemon.cycles_total() >= 1; }));

  // Bump the mtime explicitly — more deterministic than rewriting and
  // hoping the filesystem clock granularity notices.
  std::filesystem::last_write_time(
      path, std::filesystem::last_write_time(path) + std::chrono::seconds(2));
  EXPECT_TRUE(eventually([&] { return daemon.cycles_total() >= 2; }));
  daemon.stop();
  std::remove(path.c_str());
}

TEST_F(DaemonTest, RecordsFileDeletedThenRecreatedTriggersCycleNotFailure) {
  // A writer replacing the records file atomically may briefly unlink
  // the name; the mtime poll must treat the transient ENOENT as "no
  // change yet" and pick up the recreated file's new mtime.
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("iqb_daemon_recreate_" + std::to_string(getpid()) + ".csv"))
          .string();
  std::filesystem::copy_file(
      records_path_, path, std::filesystem::copy_options::overwrite_existing);

  DaemonOptions options = base_options();
  options.records_path = path;
  options.interval_ms = 60'000;  // only the watcher can re-run
  options.poll_ms = 5;
  WatchDaemon daemon(options);
  std::ostringstream err;
  ASSERT_TRUE(daemon.start(err).ok());
  ASSERT_TRUE(eventually([&] { return daemon.cycles_total() >= 1; }));

  // Delete the file and let several polls observe the gap: no early
  // cycle, no failed cycle, just patience.
  std::filesystem::remove(path);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(daemon.cycles_total(), 1u);
  EXPECT_EQ(daemon.cycles_failed(), 0u);

  // Recreate it (new mtime): the watcher schedules the next cycle.
  std::filesystem::copy_file(
      records_path_, path, std::filesystem::copy_options::overwrite_existing);
  std::filesystem::last_write_time(
      path, std::filesystem::last_write_time(path) + std::chrono::seconds(2));
  EXPECT_TRUE(eventually([&] { return daemon.cycles_total() >= 2; }));
  EXPECT_EQ(daemon.cycles_failed(), 0u);
  daemon.stop();
  std::remove(path.c_str());
}

TEST_F(DaemonTest, StopDuringActiveCyclesJoinsCleanly) {
  DaemonOptions options = base_options();
  options.interval_ms = 1;  // cycle as fast as possible
  options.poll_ms = 1;
  WatchDaemon daemon(options);
  std::ostringstream err;
  ASSERT_TRUE(daemon.start(err).ok());
  ASSERT_TRUE(eventually([&] { return daemon.cycles_total() >= 2; }));
  daemon.stop();  // must join mid-flight work without racing
  EXPECT_FALSE(daemon.running());
  const std::uint64_t cycles = daemon.cycles_total();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(daemon.cycles_total(), cycles);  // loop really stopped
}

}  // namespace
}  // namespace iqb::cli
