// Token-bucket shaper: burst credit at line rate, sustained rate after.
#include <gtest/gtest.h>

#include "iqb/netsim/network.hpp"
#include "iqb/netsim/tcp.hpp"

namespace iqb::netsim {
namespace {

Link::Config shaped_config(double line_mbps, double sustained_mbps,
                           std::uint64_t burst_bytes) {
  Link::Config config;
  config.rate = util::Mbps(line_mbps);
  config.propagation_delay = util::Seconds(0.0);
  config.queue = std::make_unique<DropTailQueue>(64ull * 1024 * 1024);
  config.shaper.enabled = true;
  config.shaper.sustained_rate = util::Mbps(sustained_mbps);
  config.shaper.burst_bytes = burst_bytes;
  return config;
}

Packet packet_of(std::uint32_t bytes) {
  Packet p;
  p.size_bytes = bytes;
  return p;
}

TEST(Shaper, BurstPassesAtLineRate) {
  Simulator sim;
  // 1 Gb/s line shaped to 10 Mb/s with 100 kB of burst credit.
  Link link(sim, shaped_config(1000, 10, 100 * 1024), util::Rng(1));
  double last_delivery = 0.0;
  // 64 kB fits entirely in the burst: delivery at ~line rate.
  for (int i = 0; i < 64; ++i) {
    link.send(packet_of(1024), [&](const Packet&) { last_delivery = sim.now(); });
  }
  sim.run();
  // 64 kB at 1 Gb/s = 0.52 ms; at 10 Mb/s it would be 52 ms.
  EXPECT_LT(last_delivery, 0.002);
}

TEST(Shaper, SustainedRateAfterBurstExhausted) {
  Simulator sim;
  Link link(sim, shaped_config(1000, 10, 50 * 1024), util::Rng(1));
  double last_delivery = 0.0;
  // 1.25 MB total: 50 kB of credit, the remaining 1.2 MB drains at
  // 10 Mb/s -> ~0.96 s.
  const int packets = 1250;
  for (int i = 0; i < packets; ++i) {
    link.send(packet_of(1000), [&](const Packet&) { last_delivery = sim.now(); });
  }
  sim.run();
  EXPECT_GT(last_delivery, 0.8);
  EXPECT_LT(last_delivery, 1.2);
}

TEST(Shaper, CreditRefillsDuringIdle) {
  Simulator sim;
  Link link(sim, shaped_config(1000, 80, 100 * 1024), util::Rng(1));
  // Exhaust the bucket.
  for (int i = 0; i < 100; ++i) {
    link.send(packet_of(1024), [](const Packet&) {});
  }
  sim.run();
  const double drained_at = sim.now();
  // Idle for 5 s: 80 Mb/s * 5 s = 50 MB >> bucket; credit refills to
  // the 100 kB cap. The next 64 kB burst then flies at line rate.
  double last_delivery = 0.0;
  sim.schedule_at(drained_at + 5.0, [&] {
    for (int i = 0; i < 64; ++i) {
      link.send(packet_of(1024),
                [&](const Packet&) { last_delivery = sim.now(); });
    }
  });
  sim.run();
  EXPECT_LT(last_delivery - (drained_at + 5.0), 0.002);
}

TEST(Shaper, DisabledShaperIsPureLineRate) {
  Simulator sim;
  Link::Config config;
  config.rate = util::Mbps(8);
  config.propagation_delay = util::Seconds(0.0);
  config.queue = std::make_unique<DropTailQueue>(1 << 20);
  // shaper.enabled defaults to false.
  Link link(sim, std::move(config), util::Rng(1));
  double delivered_at = 0.0;
  link.send(packet_of(1000), [&](const Packet&) { delivered_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(delivered_at, 0.001, 1e-9);
}

TEST(Shaper, ShortTransferOverreadsVersusSustained) {
  // The measurement artifact the shaper exists to reproduce: on a
  // "100 Mb/s" tier provisioned as 1 Gb/s + token bucket, a 1 MB
  // byte-limited transfer (Cloudflare-ladder style) reads far above
  // the sustained rate, while a 10 s duration test reads ~sustained.
  auto run_transfer = [](bool shaped, std::uint64_t max_bytes,
                         double duration) {
    Simulator sim;
    Network net(sim, 5);
    const NodeId server = net.add_node("server");
    const NodeId client = net.add_node("client");
    LinkSpec down;
    down.propagation_delay = util::Seconds(0.01);
    down.queue = QueueSpec::drop_tail(4 * 1024 * 1024);
    if (shaped) {
      down.rate = util::Mbps(1000);
      down.shaper.enabled = true;
      down.shaper.sustained_rate = util::Mbps(100);
      down.shaper.burst_bytes = 8 * 1024 * 1024;
    } else {
      down.rate = util::Mbps(100);  // flat tier, no burst
    }
    LinkSpec up;
    up.rate = util::Mbps(100);
    up.propagation_delay = util::Seconds(0.01);
    net.add_duplex_link(server, client, down, up);
    TcpConfig tcp;
    tcp.max_bytes = max_bytes;
    tcp.max_duration_s = duration;
    TcpFlow flow(sim, net.path(server, client).value(),
                 net.path(client, server).value(), tcp, 1);
    flow.start();
    sim.run(60.0);
    return flow.stats().goodput().value();
  };
  // 4 MB byte-limited transfer (Cloudflare-ladder style):
  const double short_shaped = run_transfer(true, 4'000'000, 0.0);
  const double short_flat = run_transfer(false, 4'000'000, 0.0);
  // 10 s sustained test (NDT/Ookla style):
  const double sustained_shaped = run_transfer(true, 0, 10.0);
  // In-burst, the shaped tier serves the short transfer at up to the
  // 1 Gb/s line rate: it must read clearly above the flat tier.
  EXPECT_GT(short_shaped, short_flat * 1.5);
  // The sustained test sees roughly the provisioned 100 Mb/s.
  EXPECT_LT(sustained_shaped, 140.0);
  EXPECT_GT(sustained_shaped, 70.0);
}

}  // namespace
}  // namespace iqb::netsim
