#include "iqb/netsim/link.hpp"

#include <gtest/gtest.h>

#include "iqb/netsim/loss.hpp"
#include "iqb/netsim/queue.hpp"

namespace iqb::netsim {
namespace {

Packet make_packet(std::uint32_t bytes, std::uint64_t seq = 0) {
  Packet p;
  p.seq = seq;
  p.size_bytes = bytes;
  return p;
}

Link::Config basic_config(double mbps, double delay_s,
                          std::uint64_t queue_bytes = 256 * 1024) {
  Link::Config config;
  config.rate = util::Mbps(mbps);
  config.propagation_delay = util::Seconds(delay_s);
  config.queue = std::make_unique<DropTailQueue>(queue_bytes);
  return config;
}

TEST(Link, DeliveryTimeIsSerializationPlusPropagation) {
  Simulator sim;
  Link link(sim, basic_config(8.0, 0.01), util::Rng(1));
  double delivered_at = -1.0;
  // 1000 bytes at 8 Mb/s -> 1 ms serialization; +10 ms propagation.
  link.send(make_packet(1000), [&](const Packet&) { delivered_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(delivered_at, 0.011, 1e-9);
}

TEST(Link, BackToBackPacketsQueueBehindEachOther) {
  Simulator sim;
  Link link(sim, basic_config(8.0, 0.0), util::Rng(1));
  std::vector<double> deliveries;
  for (int i = 0; i < 3; ++i) {
    link.send(make_packet(1000, static_cast<std::uint64_t>(i)),
              [&](const Packet&) { deliveries.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_NEAR(deliveries[0], 0.001, 1e-9);
  EXPECT_NEAR(deliveries[1], 0.002, 1e-9);
  EXPECT_NEAR(deliveries[2], 0.003, 1e-9);
}

TEST(Link, InOrderDelivery) {
  Simulator sim;
  Link link(sim, basic_config(100.0, 0.002), util::Rng(1));
  std::vector<std::uint64_t> order;
  for (std::uint64_t i = 0; i < 50; ++i) {
    link.send(make_packet(500, i),
              [&](const Packet& p) { order.push_back(p.seq); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(Link, QueueOverflowDrops) {
  Simulator sim;
  // Queue of 2500 bytes: holds two 1000-byte packets plus part of a
  // third -> the third is dropped.
  Link link(sim, basic_config(1.0, 0.0, 2500), util::Rng(1));
  int delivered = 0, dropped = 0;
  for (int i = 0; i < 3; ++i) {
    link.send(make_packet(1000), [&](const Packet&) { ++delivered; },
              [&](const Packet&) { ++dropped; });
  }
  sim.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(link.counters().dropped_queue_packets, 1u);
}

TEST(Link, ConservationInvariant) {
  Simulator sim;
  Link link(sim, basic_config(10.0, 0.001, 8 * 1024), util::Rng(7));
  link.set_loss_model(std::make_unique<BernoulliLoss>(0.1));
  std::uint64_t delivered = 0, dropped = 0;
  for (int i = 0; i < 2000; ++i) {
    link.send(make_packet(1000), [&](const Packet&) { ++delivered; },
              [&](const Packet&) { ++dropped; });
  }
  sim.run();
  const LinkCounters& counters = link.counters();
  EXPECT_EQ(counters.offered_packets, 2000u);
  EXPECT_EQ(counters.offered_packets,
            counters.delivered_packets + counters.dropped_loss_packets +
                counters.dropped_queue_packets);
  EXPECT_EQ(delivered, counters.delivered_packets);
  EXPECT_EQ(dropped,
            counters.dropped_loss_packets + counters.dropped_queue_packets);
  EXPECT_GT(counters.dropped_loss_packets, 100u);  // ~10% of 2000
}

TEST(Link, QueueDrainsToZero) {
  Simulator sim;
  Link link(sim, basic_config(10.0, 0.001), util::Rng(1));
  for (int i = 0; i < 10; ++i) {
    link.send(make_packet(1000), [](const Packet&) {});
  }
  EXPECT_GT(link.queued_bytes(), 0u);
  sim.run();
  EXPECT_EQ(link.queued_bytes(), 0u);
}

TEST(Link, ThroughputMatchesRate) {
  Simulator sim;
  Link link(sim, basic_config(10.0, 0.0), util::Rng(1));
  // Offer 10 Mb of data (1250 kB) on a 10 Mb/s link with an infinite
  // queue: the last packet exits at ~1 s.
  Link::Config config = basic_config(10.0, 0.0, 1ull << 40);
  Link big_queue_link(sim, std::move(config), util::Rng(1));
  double last_delivery = 0.0;
  const int packets = 1250;
  for (int i = 0; i < packets; ++i) {
    big_queue_link.send(make_packet(1000),
                        [&](const Packet&) { last_delivery = sim.now(); });
  }
  sim.run();
  EXPECT_NEAR(last_delivery, 1.0, 0.01);
}

TEST(LossModels, BernoulliRate) {
  util::Rng rng(8);
  BernoulliLoss loss(0.3);
  int drops = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (loss.should_drop(rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.3, 0.01);
}

TEST(LossModels, NoLossNeverDrops) {
  util::Rng rng(9);
  NoLoss loss;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(loss.should_drop(rng));
}

TEST(LossModels, GilbertElliottMeanRate) {
  util::Rng rng(10);
  GilbertElliottLoss loss(0.01, 0.2, 0.001, 0.5);
  int drops = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    if (loss.should_drop(rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, loss.mean_loss_rate(), 0.01);
}

TEST(LossModels, GilbertElliottBurstiness) {
  // Bursty loss produces longer loss runs than Bernoulli at the same
  // mean rate.
  auto mean_run_length = [](LossModel& model, util::Rng& rng) {
    int runs = 0, losses = 0;
    bool in_run = false;
    for (int i = 0; i < 300000; ++i) {
      if (model.should_drop(rng)) {
        ++losses;
        if (!in_run) {
          ++runs;
          in_run = true;
        }
      } else {
        in_run = false;
      }
    }
    return runs == 0 ? 0.0 : static_cast<double>(losses) / runs;
  };
  util::Rng rng_a(11), rng_b(12);
  GilbertElliottLoss bursty(0.005, 0.25, 0.0, 0.6);
  BernoulliLoss uniform(bursty.mean_loss_rate());
  EXPECT_GT(mean_run_length(bursty, rng_a), mean_run_length(uniform, rng_b));
}

QueueContext ctx(std::uint64_t queued, std::uint32_t packet,
                 SimTime now = 0.0, double rate_bps = 10e6) {
  QueueContext context;
  context.queued_bytes = queued;
  context.packet_bytes = packet;
  context.now = now;
  context.drain_rate_bps = rate_bps;
  return context;
}

TEST(Queues, DropTailRespectsCapacity) {
  DropTailQueue queue(1500);
  util::Rng rng(13);
  EXPECT_TRUE(queue.admit(ctx(0, 1000), rng));
  EXPECT_TRUE(queue.admit(ctx(500, 1000), rng));
  EXPECT_FALSE(queue.admit(ctx(501, 1000), rng));
  EXPECT_EQ(queue.capacity_bytes(), 1500u);
}

TEST(Queues, RedAdmitsBelowMinThreshold) {
  RedQueue::Config config;
  config.capacity_bytes = 100000;
  config.min_threshold_bytes = 50000;
  config.max_threshold_bytes = 80000;
  RedQueue queue(config);
  util::Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(queue.admit(ctx(1000, 1000), rng));
  }
}

TEST(Queues, RedHardCapacityEnforced) {
  RedQueue::Config config;
  config.capacity_bytes = 10000;
  RedQueue queue(config);
  util::Rng rng(15);
  EXPECT_FALSE(queue.admit(ctx(9500, 1000), rng));
}

TEST(Queues, RedDropsProbabilisticallyInBand) {
  RedQueue::Config config;
  config.capacity_bytes = 1000000;
  config.min_threshold_bytes = 1000;
  config.max_threshold_bytes = 100000;
  config.max_drop_probability = 0.5;
  config.ewma_weight = 1.0;  // track instantaneous queue exactly
  RedQueue queue(config);
  util::Rng rng(16);
  int admitted = 0, dropped = 0;
  for (int i = 0; i < 10000; ++i) {
    if (queue.admit(ctx(60000, 1000), rng)) {
      ++admitted;
    } else {
      ++dropped;
    }
  }
  EXPECT_GT(dropped, 1000);
  EXPECT_GT(admitted, 1000);
}

TEST(Queues, PieHardCapacityEnforced) {
  PieQueue::Config config;
  config.capacity_bytes = 10000;
  PieQueue queue(config);
  util::Rng rng(17);
  EXPECT_FALSE(queue.admit(ctx(9500, 1000), rng));
}

TEST(Queues, PieNeverDropsNearEmptyQueue) {
  PieQueue queue(PieQueue::Config{});
  util::Rng rng(18);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(queue.admit(ctx(0, 1000, i * 0.016), rng));
  }
}

TEST(Queues, PieDropProbabilityRisesWithStandingDelay) {
  // Standing queue of 60 kB at 10 Mb/s = 48 ms >> 15 ms target: the PI
  // controller must push the drop probability up.
  PieQueue queue(PieQueue::Config{});
  util::Rng rng(19);
  for (int i = 0; i < 500; ++i) {
    (void)queue.admit(ctx(60000, 1000, i * 0.016), rng);
  }
  EXPECT_GT(queue.drop_probability(), 0.01);
}

TEST(Queues, PieProbabilityFallsWhenDelayClears) {
  PieQueue queue(PieQueue::Config{});
  util::Rng rng(20);
  for (int i = 0; i < 500; ++i) {
    (void)queue.admit(ctx(60000, 1000, i * 0.016), rng);
  }
  const double loaded = queue.drop_probability();
  for (int i = 500; i < 1500; ++i) {
    (void)queue.admit(ctx(0, 1000, i * 0.016), rng);
  }
  EXPECT_LT(queue.drop_probability(), loaded / 2.0);
}

TEST(Queues, PieKeepsLoadedLatencyNearTarget) {
  // End-to-end: a TCP-style standing queue against PIE vs DropTail on
  // the same 20 Mb/s link. PIE should keep the queue (and thus the
  // queueing delay) bounded near its target.
  Simulator sim;
  PieQueue::Config pie;
  pie.capacity_bytes = 1024 * 1024;
  Link::Config config;
  config.rate = util::Mbps(20);
  config.propagation_delay = util::Seconds(0.0);
  config.queue = std::make_unique<PieQueue>(pie);
  Link link(sim, std::move(config), util::Rng(21));
  // Offer 2x the line rate for 8 seconds; judge the controller on its
  // steady state (after 4 s), not the cold-start transient the RFC's
  // gain auto-scaling deliberately ramps through.
  const double interval = 1000.0 * 8.0 / 40e6;
  std::uint64_t steady_peak = 0;
  for (int i = 0; i < static_cast<int>(8.0 / interval); ++i) {
    const double at = i * interval;
    sim.schedule_at(at, [&, at] {
      link.send(make_packet(1000), [](const Packet&) {});
      if (at > 4.0) steady_peak = std::max(steady_peak, link.queued_bytes());
    });
  }
  sim.run();
  // 15 ms at 20 Mb/s = 37.5 kB; allow controller oscillation headroom.
  EXPECT_LT(steady_peak, 150000u);
  EXPECT_GT(link.counters().dropped_queue_packets, 0u);
}

}  // namespace
}  // namespace iqb::netsim
