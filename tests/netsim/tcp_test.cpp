#include "iqb/netsim/tcp.hpp"

#include <gtest/gtest.h>

#include "iqb/netsim/network.hpp"

namespace iqb::netsim {
namespace {

struct World {
  Simulator sim;
  Network net{sim, 42};
  Path data;
  Path acks;

  World(LinkSpec down, LinkSpec up, std::uint64_t seed = 42)
      : net(sim, seed) {
    const NodeId server = net.add_node("server");
    const NodeId client = net.add_node("client");
    net.add_duplex_link(server, client, down, up);
    data = net.path(server, client).value();
    acks = net.path(client, server).value();
  }
};

LinkSpec spec(double mbps, double delay_s,
              std::uint64_t queue = 256 * 1024) {
  LinkSpec s;
  s.rate = util::Mbps(mbps);
  s.propagation_delay = util::Seconds(delay_s);
  s.queue = QueueSpec::drop_tail(queue);
  return s;
}

TEST(TcpFlow, TransfersExactByteCount) {
  World world(spec(100, 0.005), spec(100, 0.005));
  TcpConfig config;
  config.max_bytes = 500'000;
  TcpFlow flow(world.sim, world.data, world.acks, config, 1);
  bool completed = false;
  flow.start([&](const TcpStats& stats) {
    completed = true;
    EXPECT_GE(stats.bytes_acked, 500'000u);
  });
  world.sim.run(60.0);
  EXPECT_TRUE(completed);
  EXPECT_TRUE(flow.finished());
}

TEST(TcpFlow, DurationModeStopsOnDeadline) {
  World world(spec(50, 0.01), spec(50, 0.01));
  TcpConfig config;
  config.max_duration_s = 2.0;
  TcpFlow flow(world.sim, world.data, world.acks, config, 1);
  double finished_at = -1.0;
  flow.start([&](const TcpStats& stats) { finished_at = stats.finished_at; });
  world.sim.run(30.0);
  EXPECT_NEAR(finished_at, 2.0, 1e-9);
}

TEST(TcpFlow, GoodputApproachesCleanLinkRate) {
  World world(spec(100, 0.01), spec(100, 0.01));
  TcpConfig config;
  config.max_duration_s = 10.0;
  TcpFlow flow(world.sim, world.data, world.acks, config, 1);
  flow.start();
  world.sim.run(30.0);
  // Payload efficiency is mss/(mss+40) ~ 97%; ramp-up costs a bit more.
  EXPECT_GT(flow.stats().goodput().value(), 80.0);
  EXPECT_LT(flow.stats().goodput().value(), 100.0);
}

TEST(TcpFlow, ThroughputCappedByBottleneck) {
  World world(spec(10, 0.01), spec(10, 0.01));
  TcpConfig config;
  config.max_duration_s = 10.0;
  TcpFlow flow(world.sim, world.data, world.acks, config, 1);
  flow.start();
  world.sim.run(30.0);
  EXPECT_LE(flow.stats().goodput().value(), 10.0);
  EXPECT_GT(flow.stats().goodput().value(), 7.0);
}

TEST(TcpFlow, MinRttReflectsPathDelay) {
  World world(spec(100, 0.02), spec(100, 0.02));
  TcpConfig config;
  config.max_duration_s = 5.0;
  TcpFlow flow(world.sim, world.data, world.acks, config, 1);
  flow.start();
  world.sim.run(30.0);
  // Two-way propagation 40 ms plus serialization.
  EXPECT_GE(flow.stats().min_rtt_ms, 40.0);
  EXPECT_LT(flow.stats().min_rtt_ms, 45.0);
}

TEST(TcpFlow, RandomLossReducesGoodputAndCausesRetransmits) {
  LinkSpec lossy = spec(100, 0.02);
  lossy.loss = LossSpec::bernoulli(0.01);
  World clean_world(spec(100, 0.02), spec(100, 0.02));
  World lossy_world(lossy, spec(100, 0.02));

  TcpConfig config;
  config.max_duration_s = 8.0;
  TcpFlow clean(clean_world.sim, clean_world.data, clean_world.acks, config, 1);
  TcpFlow dirty(lossy_world.sim, lossy_world.data, lossy_world.acks, config, 1);
  clean.start();
  dirty.start();
  clean_world.sim.run(30.0);
  lossy_world.sim.run(30.0);

  EXPECT_LT(dirty.stats().goodput().value(),
            clean.stats().goodput().value() / 2.0);
  EXPECT_GT(dirty.stats().segments_retransmitted, 0u);
  EXPECT_GT(dirty.stats().retransmit_rate(), 0.003);
  EXPECT_EQ(clean.stats().segments_retransmitted, 0u);
}

TEST(TcpFlow, CubicOutperformsRenoOnLongFatPipe) {
  LinkSpec lossy = spec(200, 0.04);
  lossy.loss = LossSpec::bernoulli(0.0003);
  auto run = [&](CongestionAlgo algo) {
    World world(lossy, spec(200, 0.04), 99);
    TcpConfig config;
    config.algo = algo;
    config.max_duration_s = 15.0;
    TcpFlow flow(world.sim, world.data, world.acks, config, 1);
    flow.start();
    world.sim.run(60.0);
    return flow.stats().goodput().value();
  };
  const double reno = run(CongestionAlgo::kReno);
  const double cubic = run(CongestionAlgo::kCubic);
  EXPECT_GT(cubic, reno);
}

TEST(TcpFlow, BufferbloatInflatesSmoothedRtt) {
  // Deep buffer at the bottleneck: loss-based probing steadily fills
  // it, so RTT under load far exceeds minRTT.
  LinkSpec bloated = spec(20, 0.01, 1024 * 1024);
  World world(bloated, spec(20, 0.01));
  TcpConfig config;
  config.max_duration_s = 15.0;
  TcpFlow flow(world.sim, world.data, world.acks, config, 1);
  flow.start();
  world.sim.run(60.0);
  EXPECT_GT(flow.stats().smoothed_rtt_ms, flow.stats().min_rtt_ms * 3.0);
}

TEST(TcpFlow, HystartAvoidsSlowStartLossBurst) {
  // HyStart's job: exit slow start on delay increase, before the
  // exponential overshoot blows the buffer. Without it the flow takes
  // a large synchronized loss burst (a batch of retransmissions).
  LinkSpec bloated = spec(20, 0.01, 1024 * 1024);
  auto retransmits = [&](bool hystart) {
    World world(bloated, spec(20, 0.01), 7);
    TcpConfig config;
    config.max_duration_s = 8.0;
    config.hystart = hystart;
    TcpFlow flow(world.sim, world.data, world.acks, config, 1);
    flow.start();
    world.sim.run(30.0);
    return flow.stats().segments_retransmitted;
  };
  const auto with_hystart = retransmits(true);
  const auto without_hystart = retransmits(false);
  EXPECT_LT(with_hystart, without_hystart / 2 + 1);
  EXPECT_GT(without_hystart, 50u);
}

TEST(TcpFlow, SevereLossTriggersTimeouts) {
  LinkSpec terrible = spec(10, 0.05);
  terrible.loss = LossSpec::bernoulli(0.15);
  World world(terrible, spec(10, 0.05));
  TcpConfig config;
  config.max_duration_s = 10.0;
  TcpFlow flow(world.sim, world.data, world.acks, config, 1);
  flow.start();
  world.sim.run(60.0);
  EXPECT_GT(flow.stats().timeouts, 0u);
  EXPECT_GT(flow.stats().bytes_acked, 0u);  // still makes progress
}

TEST(TcpFlow, ThroughputSamplesMonotone) {
  World world(spec(50, 0.01), spec(50, 0.01));
  TcpConfig config;
  config.max_duration_s = 3.0;
  config.sample_interval_s = 0.1;
  TcpFlow flow(world.sim, world.data, world.acks, config, 1);
  flow.start();
  world.sim.run(30.0);
  const auto& samples = flow.stats().throughput_samples;
  ASSERT_GT(samples.size(), 10u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].time, samples[i - 1].time);
    EXPECT_GE(samples[i].bytes_acked, samples[i - 1].bytes_acked);
  }
}

TEST(TcpFlow, GoodputBetweenWindowExcludesRampUp) {
  World world(spec(100, 0.03), spec(100, 0.03));
  TcpConfig config;
  config.max_duration_s = 10.0;
  TcpFlow flow(world.sim, world.data, world.acks, config, 1);
  flow.start();
  world.sim.run(30.0);
  const double steady = flow.stats().goodput_between(5.0, 10.0).value();
  const double overall = flow.stats().goodput().value();
  EXPECT_GE(steady, overall);
}

TEST(TcpFlow, GoodputBetweenDegenerateWindows) {
  World world(spec(10, 0.01), spec(10, 0.01));
  TcpConfig config;
  config.max_duration_s = 1.0;
  TcpFlow flow(world.sim, world.data, world.acks, config, 1);
  flow.start();
  world.sim.run(30.0);
  EXPECT_DOUBLE_EQ(flow.stats().goodput_between(2.0, 1.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(flow.stats().goodput_between(5.0, 6.0).value(), 0.0);
}

TEST(TcpFlow, LossyAckPathStillCompletes) {
  LinkSpec lossy_acks = spec(100, 0.01);
  lossy_acks.loss = LossSpec::bernoulli(0.05);
  World world(spec(100, 0.01), lossy_acks);
  TcpConfig config;
  config.max_bytes = 200'000;
  TcpFlow flow(world.sim, world.data, world.acks, config, 1);
  bool completed = false;
  flow.start([&](const TcpStats&) { completed = true; });
  world.sim.run(60.0);
  EXPECT_TRUE(completed);
}

TEST(TcpFlow, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    LinkSpec lossy = spec(50, 0.02);
    lossy.loss = LossSpec::bernoulli(0.005);
    World world(lossy, spec(50, 0.02), 1234);
    TcpConfig config;
    config.max_duration_s = 5.0;
    TcpFlow flow(world.sim, world.data, world.acks, config, 1);
    flow.start();
    world.sim.run(30.0);
    return flow.stats().bytes_acked;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(TcpFlow, TwoFlowsShareBottleneckRoughlyFairly) {
  World world(spec(50, 0.01), spec(50, 0.01));
  TcpConfig config;
  config.max_duration_s = 20.0;
  TcpFlow flow_a(world.sim, world.data, world.acks, config, 1);
  TcpFlow flow_b(world.sim, world.data, world.acks, config, 2);
  flow_a.start();
  flow_b.start();
  world.sim.run(60.0);
  const double a = flow_a.stats().goodput().value();
  const double b = flow_b.stats().goodput().value();
  EXPECT_GT(a + b, 35.0);          // the pair saturates the link
  EXPECT_LT(std::abs(a - b) / (a + b), 0.4);  // neither starves
}

}  // namespace
}  // namespace iqb::netsim
