#include "iqb/netsim/network.hpp"

#include <gtest/gtest.h>

namespace iqb::netsim {
namespace {

LinkSpec spec(double mbps, double delay_s) {
  LinkSpec s;
  s.rate = util::Mbps(mbps);
  s.propagation_delay = util::Seconds(delay_s);
  return s;
}

TEST(LossSpec, MeanRates) {
  EXPECT_DOUBLE_EQ(LossSpec::none().mean_loss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(LossSpec::bernoulli(0.02).mean_loss_rate(), 0.02);
  // pi_bad = 0.01/(0.01+0.09) = 0.1; mean = 0.1*0.5 + 0.9*0.0 = 0.05.
  const LossSpec ge = LossSpec::gilbert_elliott(0.01, 0.09, 0.0, 0.5);
  EXPECT_NEAR(ge.mean_loss_rate(), 0.05, 1e-12);
}

TEST(LossSpec, InstantiateKinds) {
  util::Rng rng(1);
  auto none = LossSpec::none().instantiate();
  EXPECT_FALSE(none->should_drop(rng));
  auto certain = LossSpec::bernoulli(1.0).instantiate();
  EXPECT_TRUE(certain->should_drop(rng));
}

TEST(Network, FindNodeByName) {
  Simulator sim;
  Network net(sim, 1);
  net.add_node("alpha");
  const NodeId beta = net.add_node("beta");
  EXPECT_EQ(net.find_node("beta").value(), beta);
  EXPECT_FALSE(net.find_node("gamma").ok());
  EXPECT_EQ(net.node_count(), 2u);
  EXPECT_EQ(net.node_name(beta), "beta");
}

TEST(Network, PathOverSingleLink) {
  Simulator sim;
  Network net(sim, 2);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  auto [forward, reverse] = net.add_duplex_link(a, b, spec(10, 0.01), spec(5, 0.02));
  auto path_ab = net.path(a, b);
  ASSERT_TRUE(path_ab.ok());
  ASSERT_EQ(path_ab->size(), 1u);
  EXPECT_EQ((*path_ab)[0], forward);
  auto path_ba = net.path(b, a);
  ASSERT_TRUE(path_ba.ok());
  EXPECT_EQ((*path_ba)[0], reverse);
}

TEST(Network, MultiHopShortestPath) {
  Simulator sim;
  Network net(sim, 3);
  // a - b - c with a direct a - c shortcut: path a->c must take the
  // one-hop shortcut.
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const NodeId c = net.add_node("c");
  net.add_duplex_link(a, b, spec(10, 0.01), spec(10, 0.01));
  net.add_duplex_link(b, c, spec(10, 0.01), spec(10, 0.01));
  auto [shortcut, _] = net.add_duplex_link(a, c, spec(10, 0.01), spec(10, 0.01));
  auto path = net.path(a, c);
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 1u);
  EXPECT_EQ((*path)[0], shortcut);
}

TEST(Network, ThreeHopChain) {
  Simulator sim;
  Network net(sim, 4);
  const NodeId n0 = net.add_node("n0");
  const NodeId n1 = net.add_node("n1");
  const NodeId n2 = net.add_node("n2");
  const NodeId n3 = net.add_node("n3");
  net.add_duplex_link(n0, n1, spec(10, 0.01), spec(10, 0.01));
  net.add_duplex_link(n1, n2, spec(10, 0.01), spec(10, 0.01));
  net.add_duplex_link(n2, n3, spec(10, 0.01), spec(10, 0.01));
  auto path = net.path(n0, n3);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->size(), 3u);
}

TEST(Network, NoRouteIsError) {
  Simulator sim;
  Network net(sim, 5);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  auto path = net.path(a, b);
  ASSERT_FALSE(path.ok());
  EXPECT_EQ(path.error().code, util::ErrorCode::kNotFound);
}

TEST(Network, SelfPathIsError) {
  Simulator sim;
  Network net(sim, 6);
  const NodeId a = net.add_node("a");
  EXPECT_FALSE(net.path(a, a).ok());
}

TEST(Network, InvalidNodeIdIsError) {
  Simulator sim;
  Network net(sim, 7);
  net.add_node("a");
  EXPECT_FALSE(net.path(0, 99).ok());
}

TEST(Network, SendAlongMultiHopAccumulatesDelay) {
  Simulator sim;
  Network net(sim, 8);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const NodeId c = net.add_node("c");
  net.add_duplex_link(a, b, spec(8, 0.01), spec(8, 0.01));
  net.add_duplex_link(b, c, spec(8, 0.02), spec(8, 0.02));
  auto path = net.path(a, c).value();

  Packet packet;
  packet.size_bytes = 1000;  // 1 ms serialization per hop at 8 Mb/s
  double delivered_at = -1.0;
  send_along(path, packet, [&](const Packet&) { delivered_at = sim.now(); });
  sim.run();
  // 2 hops: (1ms + 10ms) + (1ms + 20ms) = 32 ms.
  EXPECT_NEAR(delivered_at, 0.032, 1e-9);
}

TEST(Network, SendAlongDropReportsOnce) {
  Simulator sim;
  Network net(sim, 9);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const NodeId c = net.add_node("c");
  LinkSpec lossy = spec(10, 0.001);
  lossy.loss = LossSpec::bernoulli(1.0);  // always drops
  net.add_duplex_link(a, b, spec(10, 0.001), spec(10, 0.001));
  net.add_duplex_link(b, c, lossy, lossy);
  auto path = net.path(a, c).value();

  int delivered = 0, dropped = 0;
  Packet packet;
  packet.size_bytes = 100;
  send_along(path, packet, [&](const Packet&) { ++delivered; },
             [&](const Packet&) { ++dropped; });
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(dropped, 1);
}

TEST(Network, PathHelpers) {
  Simulator sim;
  Network net(sim, 10);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const NodeId c = net.add_node("c");
  net.add_duplex_link(a, b, spec(100, 0.005), spec(100, 0.005));
  net.add_duplex_link(b, c, spec(20, 0.010), spec(20, 0.010));
  auto path = net.path(a, c).value();
  EXPECT_DOUBLE_EQ(bottleneck_rate(path).value(), 20.0);
  // 1500B: 0.12ms at 100Mb/s + 0.6ms at 20Mb/s + 15ms propagation.
  EXPECT_NEAR(base_one_way_delay(path, 1500).value(),
              0.005 + 0.010 + 1500 * 8.0 / 100e6 + 1500 * 8.0 / 20e6, 1e-9);
}

TEST(Network, DefaultLinkNamesFromNodes) {
  Simulator sim;
  Network net(sim, 11);
  const NodeId a = net.add_node("client");
  const NodeId b = net.add_node("server");
  auto [forward, reverse] = net.add_duplex_link(a, b, spec(10, 0.01), spec(10, 0.01));
  EXPECT_EQ(forward->name(), "client->server");
  EXPECT_EQ(reverse->name(), "server->client");
}

TEST(Network, LinksEnumeration) {
  Simulator sim;
  Network net(sim, 12);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_duplex_link(a, b, spec(10, 0.01), spec(10, 0.01));
  EXPECT_EQ(net.links().size(), 2u);
}

TEST(Network, DeterministicLossAcrossRuns) {
  auto run_once = [] {
    Simulator sim;
    Network net(sim, 777);
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    LinkSpec lossy = spec(10, 0.001);
    lossy.loss = LossSpec::bernoulli(0.3);
    net.add_duplex_link(a, b, lossy, lossy);
    auto path = net.path(a, b).value();
    int delivered = 0;
    for (int i = 0; i < 500; ++i) {
      Packet packet;
      packet.size_bytes = 100;
      send_along(path, packet, [&](const Packet&) { ++delivered; });
    }
    sim.run();
    return delivered;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace iqb::netsim
