#include "iqb/netsim/sim.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace iqb::netsim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, FifoTieBreakAtEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_at(3.0, [&] { fired_at = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  const std::size_t executed = sim.run(2.0);
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const TimerId id = sim.schedule_at(1.0, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelUnknownIdIsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(12345));
}

TEST(Simulator, CancelFromInsideCallback) {
  Simulator sim;
  int fired = 0;
  const TimerId later = sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(1.0, [&] { sim.cancel(later); });
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsScheduledDuringRunAreExecuted) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_in(0.001, recurse);
  };
  sim.schedule_in(0.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.executed(), 100u);
}

TEST(Simulator, ZeroDelayEventsPreserveOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(0.0, [&] {
    order.push_back(1);
    sim.schedule_in(0.0, [&] { order.push_back(3); });
    order.push_back(2);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, PendingCountsNonCancelled) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  const TimerId id = sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending(), 1u);
}

}  // namespace
}  // namespace iqb::netsim
