#include <gtest/gtest.h>

#include "iqb/netsim/crosstraffic.hpp"
#include "iqb/netsim/network.hpp"
#include "iqb/netsim/udp.hpp"

namespace iqb::netsim {
namespace {

LinkSpec spec(double mbps, double delay_s) {
  LinkSpec s;
  s.rate = util::Mbps(mbps);
  s.propagation_delay = util::Seconds(delay_s);
  return s;
}

struct ProbeWorld {
  Simulator sim;
  Network net;
  Path forward;
  Path reverse;

  explicit ProbeWorld(LinkSpec down, LinkSpec up, std::uint64_t seed = 1)
      : net(sim, seed) {
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    net.add_duplex_link(a, b, down, up);
    forward = net.path(a, b).value();
    reverse = net.path(b, a).value();
  }
};

TEST(UdpProbeFlow, AllEchoedOnCleanLink) {
  ProbeWorld world(spec(100, 0.015), spec(100, 0.015));
  UdpProbeConfig config;
  config.probe_count = 50;
  config.interval_s = 0.02;
  UdpProbeFlow probe(world.sim, world.forward, world.reverse, config, 1);
  bool completed = false;
  probe.start([&](const UdpProbeStats& stats) {
    completed = true;
    EXPECT_EQ(stats.sent, 50u);
    EXPECT_EQ(stats.echoed, 50u);
    EXPECT_DOUBLE_EQ(stats.loss_rate(), 0.0);
  });
  world.sim.run();
  EXPECT_TRUE(completed);
}

TEST(UdpProbeFlow, RttMatchesPathDelay) {
  ProbeWorld world(spec(100, 0.025), spec(100, 0.025));
  UdpProbeConfig config;
  config.probe_count = 10;
  UdpProbeFlow probe(world.sim, world.forward, world.reverse, config, 1);
  probe.start();
  world.sim.run();
  EXPECT_NEAR(probe.stats().min_rtt_ms(), 50.0, 1.0);
  EXPECT_NEAR(probe.stats().mean_rtt_ms(), 50.0, 1.0);
}

TEST(UdpProbeFlow, LossCountedFromMissingEchoes) {
  LinkSpec lossy = spec(100, 0.01);
  lossy.loss = LossSpec::bernoulli(0.2);
  ProbeWorld world(lossy, spec(100, 0.01), 7);
  UdpProbeConfig config;
  config.probe_count = 2000;
  config.interval_s = 0.001;
  UdpProbeFlow probe(world.sim, world.forward, world.reverse, config, 1);
  probe.start();
  world.sim.run();
  EXPECT_EQ(probe.stats().sent, 2000u);
  EXPECT_NEAR(probe.stats().loss_rate(), 0.2, 0.03);
}

TEST(UdpProbeFlow, BidirectionalLossCompounds) {
  LinkSpec lossy = spec(100, 0.01);
  lossy.loss = LossSpec::bernoulli(0.1);
  ProbeWorld world(lossy, lossy, 8);
  UdpProbeConfig config;
  config.probe_count = 3000;
  config.interval_s = 0.001;
  UdpProbeFlow probe(world.sim, world.forward, world.reverse, config, 1);
  probe.start();
  world.sim.run();
  // 1 - 0.9^2 = 0.19.
  EXPECT_NEAR(probe.stats().loss_rate(), 0.19, 0.025);
}

TEST(UdpProbeFlow, EmptyStatsSafe) {
  UdpProbeStats stats;
  EXPECT_DOUBLE_EQ(stats.loss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min_rtt_ms(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_rtt_ms(), 0.0);
}

TEST(UdpProbeFlow, FinishesEvenIfEverythingLost) {
  LinkSpec dead = spec(100, 0.01);
  dead.loss = LossSpec::bernoulli(1.0);
  ProbeWorld world(dead, spec(100, 0.01), 9);
  UdpProbeConfig config;
  config.probe_count = 10;
  config.interval_s = 0.01;
  config.timeout_s = 0.5;
  UdpProbeFlow probe(world.sim, world.forward, world.reverse, config, 1);
  bool completed = false;
  probe.start([&](const UdpProbeStats& stats) {
    completed = true;
    EXPECT_DOUBLE_EQ(stats.loss_rate(), 1.0);
  });
  world.sim.run();
  EXPECT_TRUE(completed);
}

TEST(CrossTraffic, GeneratesApproximateDutyCycleLoad) {
  ProbeWorld world(spec(100, 0.005), spec(100, 0.005));
  CrossTrafficConfig config;
  config.rate = util::Mbps(50);
  config.mean_on_s = 1.0;
  config.mean_off_s = 1.0;
  config.stop_at = 20.0;
  CrossTrafficFlow traffic(world.sim, world.forward, config, util::Rng(3), 9);
  traffic.start();
  world.sim.run(25.0);
  // 50% duty cycle at 50 Mb/s over 20 s -> ~500 Mb -> ~51k packets of
  // 1228 B. Accept a broad band (stochastic on/off).
  EXPECT_GT(traffic.packets_sent(), 20000u);
  EXPECT_LT(traffic.packets_sent(), 90000u);
}

TEST(CrossTraffic, StopsWhenAsked) {
  ProbeWorld world(spec(100, 0.005), spec(100, 0.005));
  CrossTrafficConfig config;
  config.rate = util::Mbps(10);
  CrossTrafficFlow traffic(world.sim, world.forward, config, util::Rng(4), 9);
  traffic.start();
  world.sim.run(2.0);
  traffic.stop();
  const std::uint64_t at_stop = traffic.packets_sent();
  world.sim.run(10.0);
  EXPECT_EQ(traffic.packets_sent(), at_stop);
}

TEST(CrossTraffic, InflatesProbeLatency) {
  // Probes across a 10 Mb/s link with heavy cross traffic should see
  // queueing delay; without it, none.
  auto mean_rtt = [](bool with_traffic) {
    ProbeWorld world(spec(10, 0.01), spec(10, 0.01), 11);
    CrossTrafficConfig traffic_config;
    // Bursts above the 10 Mb/s line rate: each ~0.2 s burst queues
    // ~250 kB (~200 ms at line rate), which probes must wait behind.
    traffic_config.rate = util::Mbps(20.0);
    traffic_config.mean_on_s = 0.2;
    traffic_config.mean_off_s = 0.2;
    // Bound the generator: without stop_at an unbounded sim.run()
    // would never drain the event queue.
    traffic_config.stop_at = 10.0;
    CrossTrafficFlow traffic(world.sim, world.forward, traffic_config,
                             util::Rng(5), 9);
    if (with_traffic) traffic.start();
    UdpProbeConfig probe_config;
    probe_config.probe_count = 100;
    probe_config.interval_s = 0.05;
    UdpProbeFlow probe(world.sim, world.forward, world.reverse, probe_config, 1);
    probe.start();
    world.sim.run(12.0);
    return probe.stats().mean_rtt_ms();
  };
  EXPECT_GT(mean_rtt(true), mean_rtt(false) + 5.0);
}

}  // namespace
}  // namespace iqb::netsim
