#include "iqb/datasets/importers.hpp"

#include <gtest/gtest.h>

#include <string>

#include "iqb/robust/quarantine.hpp"

namespace iqb::datasets {
namespace {

using robust::IngestPolicy;
using robust::Quarantine;

constexpr const char* kOoklaCsv =
    "quadkey,avg_d_kbps,avg_u_kbps,avg_lat_ms,tests,devices\n"
    "0231,100000,20000,15,80,12\n"
    "0232,50000,10000,25,20,5\n"
    "0233,0,0,0,0,0\n";  // empty tile, skipped

TEST(OoklaImport, PerTileRegions) {
  auto table = import_ookla_tiles_csv(kOoklaCsv);
  ASSERT_TRUE(table.ok());
  // Two non-empty tiles x three metrics.
  EXPECT_EQ(table->size(), 6u);
  auto down = table->get("0231", "ookla", Metric::kDownload);
  ASSERT_TRUE(down.ok());
  EXPECT_DOUBLE_EQ(down->value, 100.0);  // kbps -> Mb/s
  EXPECT_EQ(down->sample_count, 80u);
  EXPECT_DOUBLE_EQ(table->get("0232", "ookla", Metric::kLatency)->value, 25.0);
}

TEST(OoklaImport, RegionOverrideMergesWeighted) {
  auto table = import_ookla_tiles_csv(kOoklaCsv, "my_city");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->size(), 3u);
  auto down = table->get("my_city", "ookla", Metric::kDownload);
  ASSERT_TRUE(down.ok());
  // Test-weighted mean: (100000*80 + 50000*20) / 100 / 1000 = 90 Mb/s.
  EXPECT_DOUBLE_EQ(down->value, 90.0);
  EXPECT_EQ(down->sample_count, 100u);
  // Latency: (15*80 + 25*20)/100 = 17 ms.
  EXPECT_DOUBLE_EQ(table->get("my_city", "ookla", Metric::kLatency)->value,
                   17.0);
}

TEST(OoklaImport, NoLossCellsEver) {
  auto table = import_ookla_tiles_csv(kOoklaCsv, "r");
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(table->contains("r", "ookla", Metric::kLoss));
}

TEST(OoklaImport, Errors) {
  EXPECT_FALSE(import_ookla_tiles_csv("").ok());
  EXPECT_FALSE(import_ookla_tiles_csv("a,b\n1,2\n").ok());  // wrong columns
  EXPECT_FALSE(import_ookla_tiles_csv(
                   "quadkey,avg_d_kbps,avg_u_kbps,avg_lat_ms,tests\n"
                   "0,abc,1,1,1\n")
                   .ok());  // malformed number
  EXPECT_FALSE(import_ookla_tiles_csv(
                   "quadkey,avg_d_kbps,avg_u_kbps,avg_lat_ms,tests\n"
                   "0,-5,1,1,1\n")
                   .ok());  // negative value
  // All-empty tiles.
  EXPECT_FALSE(import_ookla_tiles_csv(
                   "quadkey,avg_d_kbps,avg_u_kbps,avg_lat_ms,tests\n"
                   "0,1,1,1,0\n")
                   .ok());
}

constexpr const char* kNdtCsv =
    "date,client_region,client_asn_name,direction,throughput_mbps,"
    "min_rtt_ms,loss_rate,extra\n"
    "2025-03-01,metro,AS1 FiberCo,download,250.5,12.5,0.001,x\n"
    "2025-03-01,metro,AS1 FiberCo,upload,180.0,,,x\n"
    "2025-03-02,rural,AS2 WispNet,download,8.2,45.0,0.02,x\n";

TEST(NdtImport, PerTestRecords) {
  auto records = import_ndt_unified_csv(kNdtCsv);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  const MeasurementRecord& download = (*records)[0];
  EXPECT_EQ(download.dataset, "ndt");
  EXPECT_EQ(download.region, "metro");
  EXPECT_EQ(download.isp, "AS1 FiberCo");
  EXPECT_DOUBLE_EQ(download.download->value(), 250.5);
  EXPECT_DOUBLE_EQ(download.latency->value(), 12.5);
  EXPECT_DOUBLE_EQ(download.loss->fraction(), 0.001);
  EXPECT_FALSE(download.upload.has_value());

  const MeasurementRecord& upload = (*records)[1];
  EXPECT_DOUBLE_EQ(upload.upload->value(), 180.0);
  EXPECT_FALSE(upload.download.has_value());
  EXPECT_FALSE(upload.latency.has_value());
  EXPECT_FALSE(upload.loss.has_value());
}

TEST(NdtImport, FeedsThePipeline) {
  auto records = import_ndt_unified_csv(kNdtCsv);
  ASSERT_TRUE(records.ok());
  RecordStore store;
  EXPECT_EQ(store.add_all(std::move(records).value()), 0u);
  auto table = aggregate(store);
  EXPECT_TRUE(table.contains("metro", "ndt", Metric::kDownload));
  EXPECT_TRUE(table.contains("metro", "ndt", Metric::kUpload));
  EXPECT_TRUE(table.contains("rural", "ndt", Metric::kLoss));
}

TEST(NdtImport, Errors) {
  EXPECT_FALSE(import_ndt_unified_csv("").ok());
  EXPECT_FALSE(import_ndt_unified_csv("a,b\n1,2\n").ok());
  EXPECT_FALSE(import_ndt_unified_csv(
                   "date,client_region,client_asn_name,direction,"
                   "throughput_mbps,min_rtt_ms,loss_rate\n"
                   "2025-03-01,r,a,sideways,1,,\n")
                   .ok());  // bad direction
  EXPECT_FALSE(import_ndt_unified_csv(
                   "date,client_region,client_asn_name,direction,"
                   "throughput_mbps,min_rtt_ms,loss_rate\n"
                   "not-a-date,r,a,download,1,,\n")
                   .ok());
  EXPECT_FALSE(import_ndt_unified_csv(
                   "date,client_region,client_asn_name,direction,"
                   "throughput_mbps,min_rtt_ms,loss_rate\n"
                   "2025-03-01,r,a,download,1,,1.7\n")
                   .ok());  // loss out of range
}

// Table-driven corruption matrix: every corruption shape against both
// importers in both modes. Strict must reject the file; lenient must
// either import what is salvageable (quarantining the noise) or, when
// nothing is salvageable, still fail.
struct CorruptionCase {
  const char* name;
  const char* csv;
  /// Rows the lenient import should quarantine (0 means the failure is
  /// structural — header/empty — and lenient fails like strict).
  std::size_t want_quarantined;
  /// Usable rows surviving a lenient import (0 -> import still fails).
  std::size_t want_survivors;
};

class OoklaCorruptionTest : public ::testing::TestWithParam<CorruptionCase> {};

TEST_P(OoklaCorruptionTest, StrictRejects) {
  EXPECT_FALSE(import_ookla_tiles_csv(GetParam().csv).ok());
}

TEST_P(OoklaCorruptionTest, LenientQuarantinesAndSalvages) {
  const CorruptionCase& c = GetParam();
  Quarantine quarantine;
  auto table = import_ookla_tiles_csv(c.csv, "r",
                                      IngestPolicy::lenient(/*max=*/0.9),
                                      &quarantine);
  EXPECT_EQ(quarantine.count(), c.want_quarantined) << c.name;
  if (c.want_survivors > 0) {
    ASSERT_TRUE(table.ok()) << c.name << ": " << table.error().to_string();
    EXPECT_TRUE(table->contains("r", "ookla", Metric::kDownload));
  } else {
    EXPECT_FALSE(table.ok()) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corruption, OoklaCorruptionTest,
    ::testing::Values(
        CorruptionCase{"empty_file", "", 0, 0},
        CorruptionCase{"truncated_header", "quadkey,avg_d_kbps,avg_u\n",
                       0, 0},
        CorruptionCase{
            "non_numeric",
            "quadkey,avg_d_kbps,avg_u_kbps,avg_lat_ms,tests\n"
            "0,???,1,1,1\n"
            "0,1000,200,10,5\n",
            1, 1},
        CorruptionCase{
            "nan_value",
            "quadkey,avg_d_kbps,avg_u_kbps,avg_lat_ms,tests\n"
            "0,NaN,1,1,1\n"
            "0,1000,200,10,5\n",
            1, 1},
        CorruptionCase{
            "inf_value",
            "quadkey,avg_d_kbps,avg_u_kbps,avg_lat_ms,tests\n"
            "0,1000,Inf,10,5\n"
            "0,1000,200,10,5\n",
            1, 1},
        CorruptionCase{
            "negative_value",
            "quadkey,avg_d_kbps,avg_u_kbps,avg_lat_ms,tests\n"
            "0,-5,1,1,1\n"
            "0,1000,200,10,5\n",
            1, 1},
        CorruptionCase{
            "all_rows_bad",
            "quadkey,avg_d_kbps,avg_u_kbps,avg_lat_ms,tests\n"
            "0,???,1,1,1\n"
            "1,also bad,1,1,1\n",
            2, 0}),
    [](const ::testing::TestParamInfo<CorruptionCase>& info) {
      return info.param.name;
    });

class NdtCorruptionTest : public ::testing::TestWithParam<CorruptionCase> {};

TEST_P(NdtCorruptionTest, StrictRejects) {
  EXPECT_FALSE(import_ndt_unified_csv(GetParam().csv).ok());
}

TEST_P(NdtCorruptionTest, LenientQuarantinesAndSalvages) {
  const CorruptionCase& c = GetParam();
  Quarantine quarantine;
  auto records = import_ndt_unified_csv(c.csv, IngestPolicy::lenient(0.9),
                                        &quarantine);
  EXPECT_EQ(quarantine.count(), c.want_quarantined) << c.name;
  if (c.want_survivors > 0) {
    ASSERT_TRUE(records.ok()) << c.name << ": " << records.error().to_string();
    EXPECT_EQ(records->size(), c.want_survivors) << c.name;
  } else {
    EXPECT_FALSE(records.ok()) << c.name;
  }
}

constexpr const char* kNdtHeader =
    "date,client_region,client_asn_name,direction,throughput_mbps,"
    "min_rtt_ms,loss_rate\n";

INSTANTIATE_TEST_SUITE_P(
    Corruption, NdtCorruptionTest,
    ::testing::Values(
        CorruptionCase{"empty_file", "", 0, 0},
        CorruptionCase{"truncated_header", "date,client_region,client_a\n",
                       0, 0},
        CorruptionCase{
            "non_numeric_throughput",
            "date,client_region,client_asn_name,direction,throughput_mbps,"
            "min_rtt_ms,loss_rate\n"
            "2025-03-01,r,a,download,???,,\n"
            "2025-03-01,r,a,download,100,10,0.01\n",
            1, 1},
        CorruptionCase{
            "nan_rtt",
            "date,client_region,client_asn_name,direction,throughput_mbps,"
            "min_rtt_ms,loss_rate\n"
            "2025-03-01,r,a,download,100,nan,\n"
            "2025-03-01,r,a,download,100,10,0.01\n",
            1, 1},
        CorruptionCase{
            "inf_throughput",
            "date,client_region,client_asn_name,direction,throughput_mbps,"
            "min_rtt_ms,loss_rate\n"
            "2025-03-01,r,a,upload,inf,,\n"
            "2025-03-01,r,a,upload,50,,\n",
            1, 1},
        CorruptionCase{
            "bad_date_and_direction",
            "date,client_region,client_asn_name,direction,throughput_mbps,"
            "min_rtt_ms,loss_rate\n"
            "not-a-date,r,a,download,100,,\n"
            "2025-03-01,r,a,sideways,100,,\n"
            "2025-03-01,r,a,download,100,10,0.01\n",
            2, 1},
        CorruptionCase{
            "loss_out_of_range",
            "date,client_region,client_asn_name,direction,throughput_mbps,"
            "min_rtt_ms,loss_rate\n"
            "2025-03-01,r,a,download,100,10,1.7\n"
            "2025-03-01,r,a,download,100,10,0.01\n",
            1, 1},
        CorruptionCase{
            "all_rows_bad",
            "date,client_region,client_asn_name,direction,throughput_mbps,"
            "min_rtt_ms,loss_rate\n"
            "x,r,a,download,1,,\n",
            1, 0}),
    [](const ::testing::TestParamInfo<CorruptionCase>& info) {
      return info.param.name;
    });

TEST(LenientImport, RejectsWhenErrorRateExceedsPolicy) {
  // 2 of 3 rows bad = 66% error rate; a 25% ceiling must refuse.
  const char* csv =
      "quadkey,avg_d_kbps,avg_u_kbps,avg_lat_ms,tests\n"
      "0,???,1,1,1\n"
      "1,???,1,1,1\n"
      "2,1000,200,10,5\n";
  Quarantine quarantine;
  auto strict_rate = import_ookla_tiles_csv(csv, "r",
                                            IngestPolicy::lenient(0.25),
                                            &quarantine);
  EXPECT_FALSE(strict_rate.ok());
  EXPECT_EQ(quarantine.count(), 2u);
  // The same file passes under a permissive ceiling.
  EXPECT_TRUE(
      import_ookla_tiles_csv(csv, "r", IngestPolicy::lenient(0.9)).ok());
}

TEST(LenientImport, UnusedKnobKeepsStrictSemantics) {
  // A lenient-constructed policy flipped back to strict behaves
  // exactly like the plain overloads.
  IngestPolicy policy = IngestPolicy::lenient();
  policy.mode = robust::IngestMode::kStrict;
  EXPECT_FALSE(import_ndt_unified_csv(
                   "date,client_region,client_asn_name,direction,"
                   "throughput_mbps,min_rtt_ms,loss_rate\n"
                   "2025-03-01,r,a,download,bad,,\n",
                   policy)
                   .ok());
}

}  // namespace
}  // namespace iqb::datasets
