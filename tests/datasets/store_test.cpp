#include "iqb/datasets/store.hpp"

#include <gtest/gtest.h>

namespace iqb::datasets {
namespace {

MeasurementRecord record(const std::string& dataset, const std::string& region,
                         double download_mbps, const std::string& iso_time =
                             "2025-03-01T00:00:00Z") {
  MeasurementRecord r;
  r.dataset = dataset;
  r.region = region;
  r.isp = "isp";
  r.subscriber_id = "sub";
  r.timestamp = util::Timestamp::parse(iso_time).value();
  r.download = util::Mbps(download_mbps);
  return r;
}

TEST(MetricEnum, NameRoundTrip) {
  for (Metric metric : kAllMetrics) {
    auto parsed = metric_from_name(metric_name(metric));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), metric);
  }
  EXPECT_FALSE(metric_from_name("nope").ok());
}

TEST(MetricEnum, Directions) {
  EXPECT_TRUE(metric_higher_is_better(Metric::kDownload));
  EXPECT_TRUE(metric_higher_is_better(Metric::kUpload));
  EXPECT_FALSE(metric_higher_is_better(Metric::kLatency));
  EXPECT_FALSE(metric_higher_is_better(Metric::kLoadedLatency));
  EXPECT_FALSE(metric_higher_is_better(Metric::kLoss));
}

TEST(MeasurementRecord, ValueAndSetValueRoundTrip) {
  MeasurementRecord r;
  for (Metric metric : kAllMetrics) {
    EXPECT_FALSE(r.value(metric).has_value());
    r.set_value(metric, metric == Metric::kLoss ? 0.02 : 12.5);
  }
  EXPECT_DOUBLE_EQ(*r.value(Metric::kDownload), 12.5);
  EXPECT_DOUBLE_EQ(*r.value(Metric::kLoss), 0.02);
  EXPECT_TRUE(r.is_valid());
}

TEST(MeasurementRecord, InvalidValuesDetected) {
  MeasurementRecord r = record("d", "r", 10.0);
  r.loss = util::LossRate(1.5);
  EXPECT_FALSE(r.is_valid());
  r.loss.reset();
  r.download = util::Mbps(-3.0);
  EXPECT_FALSE(r.is_valid());
}

TEST(RecordStore, AddRejectsInvalid) {
  RecordStore store;
  MeasurementRecord bad = record("d", "r", -1.0);
  EXPECT_FALSE(store.add(bad).ok());
  EXPECT_TRUE(store.empty());
  EXPECT_TRUE(store.add(record("d", "r", 1.0)).ok());
  EXPECT_EQ(store.size(), 1u);
}

TEST(RecordStore, AddAllSkipsInvalidAndCounts) {
  RecordStore store;
  std::vector<MeasurementRecord> batch{record("d", "r", 1.0),
                                       record("d", "r", -5.0),
                                       record("d", "r", 2.0)};
  EXPECT_EQ(store.add_all(std::move(batch)), 1u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(RecordFilter, MatchesAllDimensions) {
  MeasurementRecord r = record("ndt", "metro", 10.0, "2025-03-15T12:00:00Z");
  RecordFilter filter;
  EXPECT_TRUE(filter.matches(r));  // empty filter matches everything
  filter.dataset = "ndt";
  filter.region = "metro";
  filter.isp = "isp";
  EXPECT_TRUE(filter.matches(r));
  filter.isp = "other";
  EXPECT_FALSE(filter.matches(r));
}

TEST(RecordFilter, TimeWindowInclusiveExclusive) {
  MeasurementRecord r = record("d", "r", 1.0, "2025-03-15T00:00:00Z");
  RecordFilter filter;
  filter.from = util::Timestamp::parse("2025-03-15").value();
  filter.to = util::Timestamp::parse("2025-03-16").value();
  EXPECT_TRUE(filter.matches(r));  // from is inclusive
  filter.to = util::Timestamp::parse("2025-03-15").value();
  EXPECT_FALSE(filter.matches(r));  // to is exclusive
}

TEST(RecordStore, QueryFilters) {
  RecordStore store;
  (void)store.add(record("ndt", "metro", 10.0));
  (void)store.add(record("ndt", "rural", 2.0));
  (void)store.add(record("ookla", "metro", 12.0));
  RecordFilter filter;
  filter.region = "metro";
  EXPECT_EQ(store.query(filter).size(), 2u);
  filter.dataset = "ndt";
  EXPECT_EQ(store.query(filter).size(), 1u);
}

TEST(RecordStore, MetricValuesSkipsMissing) {
  RecordStore store;
  (void)store.add(record("d", "r", 10.0));
  MeasurementRecord no_download;
  no_download.dataset = "d";
  no_download.region = "r";
  no_download.latency = util::Millis(20);
  (void)store.add(no_download);
  EXPECT_EQ(store.metric_values(Metric::kDownload).size(), 1u);
  EXPECT_EQ(store.metric_values(Metric::kLatency).size(), 1u);
  EXPECT_TRUE(store.metric_values(Metric::kLoss).empty());
}

TEST(RecordStore, DistinctsSortedAndDeduplicated) {
  RecordStore store;
  (void)store.add(record("zeta", "b_region", 1.0));
  (void)store.add(record("alpha", "a_region", 1.0));
  (void)store.add(record("alpha", "b_region", 1.0));
  EXPECT_EQ(store.dataset_names(), (std::vector<std::string>{"alpha", "zeta"}));
  EXPECT_EQ(store.regions(),
            (std::vector<std::string>{"a_region", "b_region"}));
  EXPECT_EQ(store.isps(), (std::vector<std::string>{"isp"}));
}

TEST(RecordStore, ByRegionGroups) {
  RecordStore store;
  (void)store.add(record("d", "x", 1.0));
  (void)store.add(record("d", "x", 2.0));
  (void)store.add(record("d", "y", 3.0));
  auto groups = store.by_region();
  EXPECT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups["x"].size(), 2u);
  EXPECT_EQ(groups["y"].size(), 1u);
}

TEST(RecordStore, MergeCombines) {
  RecordStore a, b;
  (void)a.add(record("d", "x", 1.0));
  (void)b.add(record("d", "y", 2.0));
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 1u);  // source untouched
}

TEST(RecordStore, ClearEmpties) {
  RecordStore store;
  (void)store.add(record("d", "x", 1.0));
  store.clear();
  EXPECT_TRUE(store.empty());
}

TEST(RekeyByRegionIsp, SplitsRegionsPerProvider) {
  RecordStore store;
  MeasurementRecord a = record("ndt", "metro", 100.0);
  a.isp = "alpha_net";
  MeasurementRecord b = record("ndt", "metro", 5.0);
  b.isp = "beta_net";
  (void)store.add(a);
  (void)store.add(b);
  RecordStore rekeyed = rekey_by_region_isp(store);
  EXPECT_EQ(rekeyed.size(), 2u);
  EXPECT_EQ(rekeyed.regions(),
            (std::vector<std::string>{"metro/alpha_net", "metro/beta_net"}));
  // Original store untouched.
  EXPECT_EQ(store.regions(), (std::vector<std::string>{"metro"}));
  // Other fields preserved.
  RecordFilter filter;
  filter.region = "metro/alpha_net";
  auto alpha = rekeyed.query(filter);
  ASSERT_EQ(alpha.size(), 1u);
  EXPECT_DOUBLE_EQ(alpha[0].download->value(), 100.0);
  EXPECT_EQ(alpha[0].isp, "alpha_net");
}

TEST(RekeyByRegionIsp, CustomSeparator) {
  RecordStore store;
  (void)store.add(record("ndt", "metro", 10.0));
  RecordStore rekeyed = rekey_by_region_isp(store, '|');
  EXPECT_EQ(rekeyed.regions(), (std::vector<std::string>{"metro|isp"}));
}

}  // namespace
}  // namespace iqb::datasets
