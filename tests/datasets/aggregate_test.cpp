#include "iqb/datasets/aggregate.hpp"

#include <gtest/gtest.h>

#include "iqb/datasets/synthetic.hpp"

namespace iqb::datasets {
namespace {

MeasurementRecord record(const std::string& dataset, const std::string& region,
                         Metric metric, double value) {
  MeasurementRecord r;
  r.dataset = dataset;
  r.region = region;
  r.set_value(metric, value);
  return r;
}

RecordStore latency_store(const std::vector<double>& values) {
  RecordStore store;
  for (double v : values) {
    (void)store.add(record("ndt", "r", Metric::kLatency, v));
  }
  return store;
}

TEST(EffectivePercentile, OrientToWorstFlipsThroughputOnly) {
  AggregationPolicy policy;  // p95, orient_to_worst = true
  EXPECT_DOUBLE_EQ(effective_percentile(policy, Metric::kDownload), 5.0);
  EXPECT_DOUBLE_EQ(effective_percentile(policy, Metric::kUpload), 5.0);
  EXPECT_DOUBLE_EQ(effective_percentile(policy, Metric::kLatency), 95.0);
  EXPECT_DOUBLE_EQ(effective_percentile(policy, Metric::kLoss), 95.0);
  policy.orient_to_worst = false;
  EXPECT_DOUBLE_EQ(effective_percentile(policy, Metric::kDownload), 95.0);
}

TEST(AggregateCellFn, ComputesP95OfLatency) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));
  RecordStore store = latency_store(values);
  auto cell = aggregate_cell(store, "r", "ndt", Metric::kLatency);
  ASSERT_TRUE(cell.ok());
  // numpy-style linear p95 of 1..100 = 95.05.
  EXPECT_NEAR(cell->value, 95.05, 1e-9);
  EXPECT_EQ(cell->sample_count, 100u);
}

TEST(AggregateCellFn, ThroughputUsesLowTailWhenOriented) {
  RecordStore store;
  for (int i = 1; i <= 100; ++i) {
    (void)store.add(
        record("ndt", "r", Metric::kDownload, static_cast<double>(i)));
  }
  auto cell = aggregate_cell(store, "r", "ndt", Metric::kDownload);
  ASSERT_TRUE(cell.ok());
  // 5th percentile of 1..100 (linear) = 5.95: "all but the worst 5%
  // of tests see at least this much".
  EXPECT_NEAR(cell->value, 5.95, 1e-9);
}

TEST(AggregateCellFn, MissingCellIsError) {
  RecordStore store = latency_store({1, 2, 3});
  EXPECT_FALSE(aggregate_cell(store, "nope", "ndt", Metric::kLatency).ok());
  EXPECT_FALSE(aggregate_cell(store, "r", "nope", Metric::kLatency).ok());
  EXPECT_FALSE(aggregate_cell(store, "r", "ndt", Metric::kLoss).ok());
}

TEST(AggregateCellFn, MinSamplesEnforced) {
  RecordStore store = latency_store({1, 2, 3});
  AggregationPolicy policy;
  policy.min_samples = 5;
  EXPECT_FALSE(aggregate_cell(store, "r", "ndt", Metric::kLatency, policy).ok());
  policy.min_samples = 3;
  EXPECT_TRUE(aggregate_cell(store, "r", "ndt", Metric::kLatency, policy).ok());
}

TEST(AggregateCellFn, BootstrapCiAttached) {
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(10.0 + (i % 37));
  RecordStore store = latency_store(values);
  AggregationPolicy policy;
  policy.bootstrap_resamples = 200;
  auto cell = aggregate_cell(store, "r", "ndt", Metric::kLatency, policy);
  ASSERT_TRUE(cell.ok());
  ASSERT_TRUE(cell->ci.has_value());
  EXPECT_LE(cell->ci->lower, cell->value);
  EXPECT_GE(cell->ci->upper, cell->value);
}

TEST(Aggregate, FullTableCoversPresentCellsOnly) {
  RecordStore store;
  (void)store.add(record("ndt", "metro", Metric::kDownload, 50));
  (void)store.add(record("ndt", "metro", Metric::kLatency, 20));
  (void)store.add(record("ookla", "rural", Metric::kDownload, 5));
  auto table = aggregate(store);
  EXPECT_TRUE(table.contains("metro", "ndt", Metric::kDownload));
  EXPECT_TRUE(table.contains("metro", "ndt", Metric::kLatency));
  EXPECT_TRUE(table.contains("rural", "ookla", Metric::kDownload));
  EXPECT_FALSE(table.contains("metro", "ookla", Metric::kDownload));
  EXPECT_FALSE(table.contains("metro", "ndt", Metric::kLoss));
  EXPECT_EQ(table.size(), 3u);
}

TEST(Aggregate, EmptyStoreYieldsEmptyTable) {
  RecordStore store;
  auto table = aggregate(store);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.cells().empty());
}

TEST(AggregateTable, GetAndMerge) {
  AggregateTable a, b;
  AggregateCell cell;
  cell.region = "r";
  cell.dataset = "d";
  cell.metric = Metric::kDownload;
  cell.value = 42.0;
  a.put(cell);
  cell.value = 99.0;
  b.put(cell);
  EXPECT_DOUBLE_EQ(a.get("r", "d", Metric::kDownload)->value, 42.0);
  a.merge(b);  // collision: b wins
  EXPECT_DOUBLE_EQ(a.get("r", "d", Metric::kDownload)->value, 99.0);
  EXPECT_FALSE(a.get("r", "d", Metric::kLoss).ok());
}

TEST(AggregateTable, RegionsAndDatasets) {
  AggregateTable table;
  for (const char* region : {"b", "a"}) {
    for (const char* dataset : {"y", "x"}) {
      AggregateCell cell;
      cell.region = region;
      cell.dataset = dataset;
      cell.metric = Metric::kLatency;
      table.put(cell);
    }
  }
  EXPECT_EQ(table.regions(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(table.datasets(), (std::vector<std::string>{"x", "y"}));
}

// ---------------- synthetic generator --------------------------------

TEST(Synthetic, GeneratesRequestedVolume) {
  util::Rng rng(1);
  RegionProfile profile;
  profile.region = "r";
  SyntheticConfig config;
  config.records_per_dataset = 50;
  auto records =
      generate_region_records(profile, default_dataset_panel(), config, rng);
  EXPECT_EQ(records.size(), 150u);  // 3 datasets x 50
  for (const auto& r : records) {
    EXPECT_TRUE(r.is_valid());
    EXPECT_EQ(r.region, "r");
  }
}

TEST(Synthetic, OoklaRecordsLackLoss) {
  util::Rng rng(2);
  RegionProfile profile;
  profile.region = "r";
  SyntheticConfig config;
  auto records =
      generate_region_records(profile, default_dataset_panel(), config, rng);
  for (const auto& r : records) {
    if (r.dataset == "ookla") {
      EXPECT_FALSE(r.loss.has_value());
    } else {
      EXPECT_TRUE(r.loss.has_value());
    }
  }
}

TEST(Synthetic, DatasetBiasOrdering) {
  // With the default panel, ookla reads higher than ndt on the same
  // underlying population (in aggregate).
  util::Rng rng(3);
  RegionProfile profile;
  profile.region = "r";
  profile.median_download_mbps = 100.0;
  SyntheticConfig config;
  config.records_per_dataset = 2000;
  RecordStore store;
  store.add_all(
      generate_region_records(profile, default_dataset_panel(), config, rng));
  AggregationPolicy median_policy;
  median_policy.percentile = 50.0;
  auto ndt = aggregate_cell(store, "r", "ndt", Metric::kDownload, median_policy);
  auto ookla =
      aggregate_cell(store, "r", "ookla", Metric::kDownload, median_policy);
  ASSERT_TRUE(ndt.ok());
  ASSERT_TRUE(ookla.ok());
  EXPECT_GT(ookla->value, ndt->value);
}

TEST(Synthetic, ExampleProfilesSpanQualitySpectrum) {
  auto profiles = example_region_profiles();
  ASSERT_EQ(profiles.size(), 6u);
  // Fiber metro should have the highest median rate; satellite the
  // highest base latency.
  double max_rate = 0.0, max_latency = 0.0;
  std::string fastest, slowest_latency;
  for (const auto& profile : profiles) {
    if (profile.median_download_mbps > max_rate) {
      max_rate = profile.median_download_mbps;
      fastest = profile.region;
    }
    if (profile.base_latency_ms > max_latency) {
      max_latency = profile.base_latency_ms;
      slowest_latency = profile.region;
    }
  }
  EXPECT_EQ(fastest, "metro_fiber");
  EXPECT_EQ(slowest_latency, "remote_satellite");
}

TEST(Synthetic, DeterministicGivenRng) {
  RegionProfile profile;
  profile.region = "r";
  SyntheticConfig config;
  config.records_per_dataset = 10;
  util::Rng rng_a(9), rng_b(9);
  auto a = generate_region_records(profile, default_dataset_panel(), config, rng_a);
  auto b = generate_region_records(profile, default_dataset_panel(), config, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].download->value(), b[i].download->value());
  }
}

}  // namespace
}  // namespace iqb::datasets
