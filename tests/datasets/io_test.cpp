#include "iqb/datasets/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace iqb::datasets {
namespace {

MeasurementRecord full_record() {
  MeasurementRecord r;
  r.dataset = "ndt";
  r.region = "metro, east";  // forces CSV quoting
  r.isp = "isp";
  r.subscriber_id = "sub-1";
  r.timestamp = util::Timestamp::parse("2025-03-01T10:30:00Z").value();
  r.download = util::Mbps(123.456789);
  r.upload = util::Mbps(20.5);
  r.latency = util::Millis(18.25);
  r.loaded_latency = util::Millis(55.0);
  r.loss = util::LossRate(0.0125);
  return r;
}

TEST(RecordsCsv, RoundTripFullRecord) {
  std::vector<MeasurementRecord> records{full_record()};
  auto parsed = records_from_csv(records_to_csv(records));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  const MeasurementRecord& r = (*parsed)[0];
  EXPECT_EQ(r.dataset, "ndt");
  EXPECT_EQ(r.region, "metro, east");
  EXPECT_EQ(r.timestamp.to_iso8601(), "2025-03-01T10:30:00Z");
  EXPECT_NEAR(r.download->value(), 123.456789, 1e-6);
  EXPECT_NEAR(r.loss->fraction(), 0.0125, 1e-9);
}

TEST(RecordsCsv, MissingMetricsStayMissing) {
  MeasurementRecord sparse;
  sparse.dataset = "ookla";
  sparse.region = "r";
  sparse.download = util::Mbps(10);
  auto parsed =
      records_from_csv(records_to_csv(std::vector<MeasurementRecord>{sparse}));
  ASSERT_TRUE(parsed.ok());
  const MeasurementRecord& r = (*parsed)[0];
  EXPECT_TRUE(r.download.has_value());
  EXPECT_FALSE(r.upload.has_value());
  EXPECT_FALSE(r.latency.has_value());
  EXPECT_FALSE(r.loss.has_value());
}

TEST(RecordsCsv, WrongHeaderRejected) {
  EXPECT_FALSE(records_from_csv("a,b,c\n1,2,3\n").ok());
}

TEST(RecordsCsv, MalformedTimestampRejected) {
  std::string csv = records_to_csv({});
  csv += "ndt,r,isp,sub,NOT-A-DATE,1,,,,\n";
  EXPECT_FALSE(records_from_csv(csv).ok());
}

TEST(RecordsCsv, MalformedNumberRejected) {
  std::string csv = records_to_csv({});
  csv += "ndt,r,isp,sub,2025-03-01T00:00:00Z,abc,,,,\n";
  EXPECT_FALSE(records_from_csv(csv).ok());
}

TEST(RecordsCsv, OutOfRangeLossRejected) {
  std::string csv = records_to_csv({});
  csv += "ndt,r,isp,sub,2025-03-01T00:00:00Z,,,,,1.5\n";
  EXPECT_FALSE(records_from_csv(csv).ok());
}

TEST(RecordsCsv, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "iqb_records_test.csv").string();
  std::vector<MeasurementRecord> records{full_record(), full_record()};
  ASSERT_TRUE(write_records_csv(path, records).ok());
  auto loaded = read_records_csv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  std::remove(path.c_str());
}

TEST(AggregatesCsv, ContainsAllCells) {
  AggregateTable table;
  AggregateCell cell;
  cell.region = "r";
  cell.dataset = "ndt";
  cell.metric = Metric::kLatency;
  cell.value = 33.5;
  cell.sample_count = 7;
  table.put(cell);
  const std::string csv = aggregates_to_csv(table);
  EXPECT_NE(csv.find("latency"), std::string::npos);
  EXPECT_NE(csv.find("33.5"), std::string::npos);
  EXPECT_NE(csv.find(",7,"), std::string::npos);
}

TEST(AggregatesJson, RoundTrip) {
  AggregateTable table;
  AggregateCell cell;
  cell.region = "r";
  cell.dataset = "cloudflare";
  cell.metric = Metric::kDownload;
  cell.value = 88.25;
  cell.sample_count = 31;
  stats::ConfidenceInterval ci;
  ci.point = 88.25;
  ci.lower = 80.0;
  ci.upper = 95.0;
  ci.level = 0.95;
  cell.ci = ci;
  table.put(cell);

  auto restored = aggregates_from_json(aggregates_to_json(table));
  ASSERT_TRUE(restored.ok());
  auto got = restored->get("r", "cloudflare", Metric::kDownload);
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got->value, 88.25);
  EXPECT_EQ(got->sample_count, 31u);
  ASSERT_TRUE(got->ci.has_value());
  EXPECT_DOUBLE_EQ(got->ci->lower, 80.0);
  EXPECT_DOUBLE_EQ(got->ci->upper, 95.0);
}

TEST(AggregatesJson, PreAggregatedIngestion) {
  // The Ookla open-data path: third parties publish aggregates, not
  // raw tests. Build the JSON by hand and ingest it.
  auto json = util::parse_json(R"({
    "aggregates": [
      {"region": "metro", "dataset": "ookla", "metric": "download",
       "value": 150.5, "samples": 1200},
      {"region": "metro", "dataset": "ookla", "metric": "latency",
       "value": 12.0, "samples": 1200}
    ]
  })");
  ASSERT_TRUE(json.ok());
  auto table = aggregates_from_json(json.value());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->size(), 2u);
  EXPECT_DOUBLE_EQ(table->get("metro", "ookla", Metric::kDownload)->value,
                   150.5);
}

TEST(AggregatesJson, RejectsBadShape) {
  auto no_key = util::parse_json(R"({"foo": []})").value();
  EXPECT_FALSE(aggregates_from_json(no_key).ok());
  auto bad_metric = util::parse_json(R"({
    "aggregates": [{"region":"r","dataset":"d","metric":"bogus",
                    "value":1,"samples":1}]})").value();
  EXPECT_FALSE(aggregates_from_json(bad_metric).ok());
  auto missing_value = util::parse_json(R"({
    "aggregates": [{"region":"r","dataset":"d","metric":"download",
                    "samples":1}]})").value();
  EXPECT_FALSE(aggregates_from_json(missing_value).ok());
}

}  // namespace
}  // namespace iqb::datasets
