#include "iqb/cli/cli.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "iqb/datasets/io.hpp"
#include "iqb/datasets/synthetic.hpp"
#include "iqb/util/json.hpp"

namespace iqb::cli {
namespace {

/// Temp records CSV built from the synthetic generator.
class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // ctest runs each case in its own process with this fixture's
    // SetUp/TearDownTestSuite; the path must be per-process or one
    // process's teardown would delete the file under another.
    records_path_ =
        (std::filesystem::temp_directory_path() /
         ("iqb_cli_test_records_" + std::to_string(getpid()) + ".csv"))
            .string();
    util::Rng rng(77);
    datasets::RecordStore store;
    datasets::SyntheticConfig config;
    config.records_per_dataset = 60;
    config.base_time = util::Timestamp::parse("2025-02-01").value();
    config.spacing_s = 3600;
    for (const auto& profile : datasets::example_region_profiles()) {
      store.add_all(datasets::generate_region_records(
          profile, datasets::default_dataset_panel(), config, rng));
    }
    ASSERT_TRUE(datasets::write_records_csv(records_path_, store.records()).ok());
  }

  static void TearDownTestSuite() { std::remove(records_path_.c_str()); }

  static int run(const std::vector<std::string>& tokens, std::string* out_text,
                 std::string* err_text = nullptr) {
    std::ostringstream out, err;
    const int code = run_command(tokens, out, err);
    if (out_text) *out_text = out.str();
    if (err_text) *err_text = err.str();
    return code;
  }

  static std::string records_path_;
};

std::string CliTest::records_path_;

TEST_F(CliTest, ParseArgsBasics) {
  auto parsed = parse_args({"score", "--records", "x.csv", "--format", "json"});
  ASSERT_TRUE(parsed.args.has_value());
  EXPECT_EQ(parsed.args->command, "score");
  EXPECT_EQ(parsed.args->get("records").value(), "x.csv");
  EXPECT_EQ(parsed.args->get("format").value(), "json");
  EXPECT_FALSE(parsed.args->get("missing").has_value());
}

TEST_F(CliTest, ParseArgsErrors) {
  EXPECT_FALSE(parse_args({}).args.has_value());
  EXPECT_FALSE(parse_args({"score", "oops"}).args.has_value());
  EXPECT_FALSE(parse_args({"score", "--records"}).args.has_value());
}

TEST_F(CliTest, UnknownCommandFails) {
  std::string out, err;
  EXPECT_EQ(run({"frobnicate"}, &out, &err), 1);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
  EXPECT_NE(err.find("usage:"), std::string::npos);
}

TEST_F(CliTest, ConfigPrintsPaperDefaults) {
  std::string out;
  EXPECT_EQ(run({"config"}, &out), 0);
  EXPECT_NE(out.find("\"percentile\": 95"), std::string::npos);
  EXPECT_NE(out.find("gaming.latency"), std::string::npos);
  EXPECT_TRUE(util::parse_json(out).ok());
}

TEST_F(CliTest, ConfigWritesFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "iqb_cli_config.json").string();
  std::string out;
  EXPECT_EQ(run({"config", "--out", path}, &out), 0);
  EXPECT_NE(out.find("wrote"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(path));
  std::remove(path.c_str());
}

TEST_F(CliTest, ScoreMarkdown) {
  std::string out;
  EXPECT_EQ(run({"score", "--records", records_path_, "--format", "markdown"},
                &out),
            0);
  EXPECT_NE(out.find("| Region |"), std::string::npos);
  EXPECT_NE(out.find("metro_fiber"), std::string::npos);
}

TEST_F(CliTest, ScoreJsonParses) {
  std::string out;
  EXPECT_EQ(run({"score", "--records", records_path_, "--format", "json"},
                &out),
            0);
  auto json = util::parse_json(out);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->get_array("regions")->size(), 6u);
}

TEST_F(CliTest, ScoreHtml) {
  std::string out;
  EXPECT_EQ(run({"score", "--records", records_path_, "--format", "html"},
                &out),
            0);
  EXPECT_NE(out.find("<!DOCTYPE html>"), std::string::npos);
}

TEST_F(CliTest, ScoreByIspSplitsRegions) {
  std::string out;
  EXPECT_EQ(run({"score", "--records", records_path_, "--format", "markdown",
                 "--by-isp", "true"},
                &out),
            0);
  EXPECT_NE(out.find("metro_fiber/cityfiber"), std::string::npos);
}

TEST_F(CliTest, ScoreUnknownFormatFails) {
  std::string out, err;
  EXPECT_EQ(run({"score", "--records", records_path_, "--format", "yaml"},
                &out, &err),
            1);
}

TEST_F(CliTest, ScoreMissingRecordsFails) {
  std::string out, err;
  EXPECT_EQ(run({"score"}, &out, &err), 2);
  EXPECT_NE(err.find("--records is required"), std::string::npos);
}

TEST_F(CliTest, ScoreNonexistentFileFails) {
  std::string out, err;
  EXPECT_EQ(run({"score", "--records", "/no/such/file.csv"}, &out, &err), 2);
}

TEST_F(CliTest, ScoreOutFileWritten) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "iqb_cli_report.html").string();
  std::string out;
  EXPECT_EQ(run({"score", "--records", records_path_, "--format", "html",
                 "--out", path},
                &out),
            0);
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("</html>"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(CliTest, ScoreOutIsAtomicNoTempLeftoverAndOldFileSurvivesFailure) {
  // --out goes through util::fs::atomic_write: on success the
  // directory holds only the target (the temp file was renamed over
  // it); an unwritable destination reports an error without having
  // touched anything.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("iqb_cli_atomic_" + std::to_string(getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "scores.json").string();
  std::string out;
  EXPECT_EQ(run({"score", "--records", records_path_, "--format", "json",
                 "--out", path},
                &out),
            0);
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);

  std::string err;
  EXPECT_NE(run({"score", "--records", records_path_, "--format", "json",
                 "--out", (dir / "no" / "such" / "dir.json").string()},
                &out, &err),
            0);
  EXPECT_NE(err.find("cannot write"), std::string::npos) << err;
  std::filesystem::remove_all(dir);
}

TEST_F(CliTest, AggregateCsvShape) {
  std::string out;
  EXPECT_EQ(run({"aggregate", "--records", records_path_}, &out), 0);
  EXPECT_NE(out.find("region,dataset,metric,value,samples"), std::string::npos);
  EXPECT_NE(out.find("metro_fiber,ndt,download"), std::string::npos);
}

TEST_F(CliTest, AggregateBadPercentileFails) {
  std::string out, err;
  EXPECT_EQ(run({"aggregate", "--records", records_path_, "--percentile",
                 "150"},
                &out, &err),
            1);
}

TEST_F(CliTest, SensitivityRequiresRegion) {
  std::string out, err;
  EXPECT_EQ(run({"sensitivity", "--records", records_path_}, &out, &err), 1);
  EXPECT_NE(err.find("--region is required"), std::string::npos);
}

TEST_F(CliTest, SensitivityRuns) {
  std::string out;
  EXPECT_EQ(run({"sensitivity", "--records", records_path_, "--region",
                 "suburban_cable"},
                &out),
            0);
  EXPECT_NE(out.find("baseline"), std::string::npos);
  EXPECT_NE(out.find("leave-one-dataset-out"), std::string::npos);
  EXPECT_NE(out.find("-ookla"), std::string::npos);
}

TEST_F(CliTest, TrendRuns) {
  std::string out;
  EXPECT_EQ(run({"trend", "--records", records_path_, "--window-days", "3"},
                &out),
            0);
  EXPECT_NE(out.find("region,windows,first,last,slope_per_day,direction"),
            std::string::npos);
  EXPECT_NE(out.find("metro_fiber"), std::string::npos);
}

TEST_F(CliTest, TrendBadWindowFails) {
  std::string out, err;
  EXPECT_EQ(run({"trend", "--records", records_path_, "--window-days", "0"},
                &out, &err),
            1);
}

TEST_F(CliTest, SimulateBadArgsFail) {
  std::string out, err;
  EXPECT_EQ(run({"simulate", "--subscribers", "zero"}, &out, &err), 1);
  EXPECT_EQ(run({"simulate", "--tests", "0"}, &out, &err), 1);
}

/// records_path_'s content plus a handful of corrupt rows, on disk.
class CliLenientTest : public CliTest {
 protected:
  void SetUp() override {
    dirty_path_ =
        (std::filesystem::temp_directory_path() /
         ("iqb_cli_test_dirty_" + std::to_string(getpid()) + ".csv"))
            .string();
    std::ifstream in(records_path_, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::ofstream out(dirty_path_, std::ios::binary);
    out << buffer.str();
    out << "ndt,metro_fiber,isp,s1,not-a-timestamp,100,,,,\n";
    out << "ndt,metro_fiber,isp,s2,2025-02-01T00:00:00Z,???,,,,\n";
  }

  void TearDown() override { std::remove(dirty_path_.c_str()); }

  std::string dirty_path_;
};

TEST_F(CliLenientTest, StrictModeRejectsDirtyFile) {
  std::string out, err;
  EXPECT_EQ(run({"score", "--records", dirty_path_}, &out, &err), 2);
  EXPECT_NE(err.find("records error"), std::string::npos);
}

TEST_F(CliLenientTest, LenientModeScoresDegradedWithExitCode3) {
  std::string out, err;
  EXPECT_EQ(run({"score", "--records", dirty_path_, "--lenient", "true"},
                &out, &err),
            3);
  EXPECT_NE(err.find("rows quarantined"), std::string::npos);
  EXPECT_NE(err.find("degraded mode"), std::string::npos);
  // Regions are still scored, and the scorecard says why to distrust.
  EXPECT_NE(out.find("IQB Scorecard"), std::string::npos);
  EXPECT_NE(out.find("DEGRADED MODE"), std::string::npos);
  EXPECT_NE(out.find("confidence tier B"), std::string::npos);
}

TEST_F(CliLenientTest, CleanFileWithLenientStaysExitZero) {
  std::string strict_out, lenient_out, err;
  EXPECT_EQ(run({"score", "--records", records_path_}, &strict_out, &err), 0);
  EXPECT_EQ(run({"score", "--records", records_path_, "--lenient", "true"},
                &lenient_out, &err),
            0);
  // Healthy data: lenient mode is bit-identical to strict.
  EXPECT_EQ(strict_out, lenient_out);
  EXPECT_EQ(lenient_out.find("DEGRADED MODE"), std::string::npos);
}

// ---------------- telemetry flags ------------------------------------

std::string temp_path(const std::string& stem, const std::string& ext) {
  return (std::filesystem::temp_directory_path() /
          ("iqb_cli_test_" + stem + "_" + std::to_string(getpid()) + ext))
      .string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST_F(CliTest, MetricsOutPromCoversTheRunPath) {
  const std::string metrics_path = temp_path("metrics", ".prom");
  std::string plain_out, plain_err, out, err;
  ASSERT_EQ(run({"score", "--records", records_path_}, &plain_out,
                &plain_err),
            0);
  ASSERT_EQ(run({"score", "--records", records_path_, "--metrics-out",
                 metrics_path},
                &out, &err),
            0);
  // Telemetry is strictly additive: same report bytes, same stderr.
  EXPECT_EQ(out, plain_out);
  EXPECT_EQ(err, plain_err);

  const std::string prom = slurp(metrics_path);
  std::remove(metrics_path.c_str());
  for (const char* needle :
       {"# TYPE iqb_pipeline_stage_duration_seconds histogram",
        "stage=\"aggregate\"", "stage=\"score\"",
        "iqb_pipeline_stage_duration_seconds_bucket",
        "iqb_pipeline_regions_scored_total", "iqb_ingest_rows_read_total",
        "iqb_ingest_fetch_attempts_total", "iqb_aggregate_cells_total",
        "iqb_robust_breaker_state", "iqb_robust_breaker_transitions_total",
        "iqb_robust_breaker_denied_total", "iqb_robust_quarantine_rows"}) {
    EXPECT_NE(prom.find(needle), std::string::npos) << needle;
  }
}

TEST_F(CliTest, MetricsOutJsonParsesAndTraceOutHasTheRunTree) {
  const std::string metrics_path = temp_path("metrics", ".json");
  const std::string trace_path = temp_path("trace", ".json");
  std::string out, err;
  ASSERT_EQ(run({"score", "--records", records_path_, "--metrics-out",
                 metrics_path, "--trace-out", trace_path},
                &out, &err),
            0);

  auto metrics = util::parse_json(slurp(metrics_path));
  std::remove(metrics_path.c_str());
  ASSERT_TRUE(metrics.ok()) << metrics.error().to_string();
  auto families = metrics->get_array("metrics");
  ASSERT_TRUE(families.ok());
  EXPECT_FALSE(families->empty());

  const std::string trace_text = slurp(trace_path);
  std::remove(trace_path.c_str());
  auto trace = util::parse_json(trace_text);
  ASSERT_TRUE(trace.ok()) << trace.error().to_string();
  ASSERT_TRUE(trace->get_array("trace").ok());
  // Roots: the ingest load and the pipeline run, with stage children.
  EXPECT_NE(trace_text.find("\"ingest.load\""), std::string::npos);
  EXPECT_NE(trace_text.find("\"pipeline.run\""), std::string::npos);
  EXPECT_NE(trace_text.find("\"score.region\""), std::string::npos);
}

TEST_F(CliTest, MetricsOutBadExtensionIsAUsageError) {
  std::string out, err;
  EXPECT_EQ(run({"score", "--records", records_path_, "--metrics-out",
                 "metrics.txt"},
                &out, &err),
            1);
  EXPECT_NE(err.find("--metrics-out"), std::string::npos);
  EXPECT_TRUE(out.empty());
}

TEST_F(CliTest, AggregateMetricsOutWorks) {
  const std::string metrics_path = temp_path("agg", ".prom");
  std::string out, err;
  ASSERT_EQ(run({"aggregate", "--records", records_path_, "--metrics-out",
                 metrics_path},
                &out, &err),
            0);
  const std::string prom = slurp(metrics_path);
  std::remove(metrics_path.c_str());
  EXPECT_NE(prom.find("iqb_aggregate_cells_total"), std::string::npos);
  EXPECT_NE(prom.find("iqb_aggregate_cell_samples_bucket"),
            std::string::npos);
}

TEST_F(CliLenientTest, LenientTelemetryCountsQuarantinedRows) {
  const std::string metrics_path = temp_path("lenient", ".prom");
  std::string out, err;
  EXPECT_EQ(run({"score", "--records", dirty_path_, "--lenient", "true",
                 "--metrics-out", metrics_path},
                &out, &err),
            3);  // telemetry must not mask the degraded exit code
  const std::string prom = slurp(metrics_path);
  std::remove(metrics_path.c_str());
  // The fixture appends exactly two corrupt rows.
  EXPECT_NE(prom.find("iqb_ingest_rows_quarantined_total{source=\"" +
                      dirty_path_ + "\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("iqb_robust_quarantine_rows{source=\"" + dirty_path_ +
                      "\"} 2\n"),
            std::string::npos);
}

}  // namespace
}  // namespace iqb::cli
