#include "iqb/report/render.hpp"

#include <gtest/gtest.h>

namespace iqb::report {
namespace {

core::RegionResult sample_result(const std::string& region, double high_score,
                                 double min_score) {
  core::RegionResult result;
  result.region = region;
  result.high.level = core::QualityLevel::kHigh;
  result.high.iqb_score = high_score;
  result.minimum.level = core::QualityLevel::kMinimum;
  result.minimum.iqb_score = min_score;
  for (core::UseCase use_case : core::kAllUseCases) {
    result.high.use_case_scores[use_case] = high_score;
    result.minimum.use_case_scores[use_case] = min_score;
  }
  result.high.requirement_scores[{core::UseCase::kGaming,
                                  core::Requirement::kLatency}] = high_score;
  result.grade = core::GradeScale().grade(high_score);
  return result;
}

TEST(Barometer, FillProportionalToScore) {
  const std::string full = barometer(1.0, core::Grade::kA, 10);
  const std::string empty = barometer(0.0, core::Grade::kE, 10);
  const std::string half = barometer(0.5, core::Grade::kC, 10);
  EXPECT_NE(full.find("##########"), std::string::npos);
  EXPECT_NE(empty.find(".........."), std::string::npos);
  EXPECT_NE(half.find("#####....."), std::string::npos);
  EXPECT_NE(full.find("(A)"), std::string::npos);
}

TEST(Barometer, ClampsOutOfRangeScores) {
  EXPECT_NE(barometer(1.7, core::Grade::kA, 10).find("##########"),
            std::string::npos);
  EXPECT_NE(barometer(-0.3, core::Grade::kE, 10).find(".........."),
            std::string::npos);
}

TEST(Scorecard, ContainsKeySections) {
  const std::string card = scorecard(sample_result("metro", 0.92, 1.0));
  EXPECT_NE(card.find("metro"), std::string::npos);
  EXPECT_NE(card.find("IQB score (high quality)"), std::string::npos);
  EXPECT_NE(card.find("IQB score (minimum quality)"), std::string::npos);
  EXPECT_NE(card.find("Web Browsing"), std::string::npos);
  EXPECT_NE(card.find("Gaming"), std::string::npos);
  EXPECT_NE(card.find("(A)"), std::string::npos);
  EXPECT_NE(card.find("gaming / latency"), std::string::npos);
}

TEST(Scorecard, WarningsRendered) {
  core::RegionResult result = sample_result("rural", 0.2, 0.4);
  result.high.coverage_warnings.push_back("no dataset covers gaming/latency");
  const std::string card = scorecard(result);
  EXPECT_NE(card.find("Coverage warnings"), std::string::npos);
  EXPECT_NE(card.find("no dataset covers gaming/latency"), std::string::npos);
}

TEST(ComparisonTable, OneRowPerRegion) {
  std::vector<core::RegionResult> results{sample_result("alpha", 0.9, 1.0),
                                          sample_result("beta", 0.3, 0.6)};
  const std::string table = comparison_table(results);
  EXPECT_NE(table.find("| alpha |"), std::string::npos);
  EXPECT_NE(table.find("| beta |"), std::string::npos);
  EXPECT_NE(table.find("0.900"), std::string::npos);
  EXPECT_NE(table.find("| Region |"), std::string::npos);
  // Header + separator + 2 data rows.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 4);
}

TEST(ToJson, StructureAndValues) {
  std::vector<core::RegionResult> results{sample_result("gamma", 0.5, 0.8)};
  const util::JsonValue json = to_json(results);
  auto regions = json.get_array("regions");
  ASSERT_TRUE(regions.ok());
  ASSERT_EQ(regions->size(), 1u);
  const util::JsonValue& entry = (*regions)[0];
  EXPECT_EQ(entry.get_string("region").value(), "gamma");
  auto high = entry.get("high");
  ASSERT_TRUE(high.ok());
  EXPECT_DOUBLE_EQ(high->get_number("iqb_score").value(), 0.5);
  EXPECT_EQ(high->get_string("level").value(), "high");
  // Output must be parseable JSON.
  EXPECT_TRUE(util::parse_json(json.dump(2)).ok());
}

TEST(ToCsv, OneRowPerRegionUseCase) {
  std::vector<core::RegionResult> results{sample_result("delta", 0.5, 0.8)};
  const std::string csv = to_csv(results);
  EXPECT_NE(csv.find("region,use_case,score_high,score_minimum,grade"),
            std::string::npos);
  EXPECT_NE(csv.find("delta,gaming,0.5000,0.8000,"), std::string::npos);
  // Header + 6 use cases.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);
}

TEST(ToCsv, SkipsUseCasesWithoutScores) {
  core::RegionResult sparse;
  sparse.region = "sparse";
  sparse.high.iqb_score = 0.5;
  sparse.high.use_case_scores[core::UseCase::kGaming] = 0.5;
  const std::string csv = to_csv(std::vector<core::RegionResult>{sparse});
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);  // header + gaming
}

}  // namespace
}  // namespace iqb::report
