#include "iqb/report/html.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace iqb::report {
namespace {

core::RegionResult sample(const std::string& region, double score) {
  core::RegionResult result;
  result.region = region;
  result.high.iqb_score = score;
  result.minimum.iqb_score = std::min(1.0, score + 0.2);
  for (core::UseCase use_case : core::kAllUseCases) {
    result.high.use_case_scores[use_case] = score;
  }
  result.grade = core::GradeScale().grade(score);
  datasets::AggregateCell cell;
  cell.region = region;
  cell.dataset = "ndt";
  cell.metric = datasets::Metric::kDownload;
  cell.value = 42.5;
  cell.sample_count = 12;
  result.aggregates.push_back(cell);
  return result;
}

TEST(HtmlReport, ContainsRegionsAndScores) {
  std::vector<core::RegionResult> results{sample("metro & co", 0.92),
                                          sample("rural", 0.18)};
  const std::string html = to_html(results);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("metro &amp; co"), std::string::npos);  // escaped
  EXPECT_NE(html.find("rural"), std::string::npos);
  EXPECT_NE(html.find("0.920"), std::string::npos);
  EXPECT_NE(html.find(">A<"), std::string::npos);
  EXPECT_NE(html.find(">E<"), std::string::npos);
}

TEST(HtmlReport, UseCaseBarsRendered) {
  std::vector<core::RegionResult> results{sample("r", 0.5)};
  const std::string html = to_html(results);
  EXPECT_NE(html.find("Web Browsing"), std::string::npos);
  EXPECT_NE(html.find("Gaming"), std::string::npos);
  EXPECT_NE(html.find("width:50.0%"), std::string::npos);
}

TEST(HtmlReport, AggregateTableToggle) {
  std::vector<core::RegionResult> results{sample("r", 0.5)};
  HtmlOptions with;
  HtmlOptions without;
  without.include_aggregates = false;
  EXPECT_NE(to_html(results, with).find("<table>"), std::string::npos);
  EXPECT_EQ(to_html(results, without).find("<table>"), std::string::npos);
}

TEST(HtmlReport, WarningsRendered) {
  core::RegionResult result = sample("r", 0.5);
  result.high.coverage_warnings.push_back("no dataset covers <loss>");
  const std::string html =
      to_html(std::vector<core::RegionResult>{result});
  EXPECT_NE(html.find("no dataset covers &lt;loss&gt;"), std::string::npos);
}

TEST(HtmlReport, CustomTitleEscaped) {
  HtmlOptions options;
  options.title = "Q1 <report>";
  const std::string html = to_html({}, options);
  EXPECT_NE(html.find("<title>Q1 &lt;report&gt;</title>"), std::string::npos);
}

TEST(HtmlReport, WriteToFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "iqb_report_test.html").string();
  std::vector<core::RegionResult> results{sample("r", 0.7)};
  ASSERT_TRUE(write_html(path, results).ok());
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("</html>"), std::string::npos);
  std::remove(path.c_str());
}

TEST(HtmlReport, WriteToBadPathFails) {
  EXPECT_FALSE(write_html("/nonexistent/dir/report.html", {}).ok());
}

}  // namespace
}  // namespace iqb::report
