// Measurement client behaviour on controlled topologies: each tool
// must report sane metrics, and the tools must disagree in the
// documented directions (the paper's motivation for a multi-dataset
// panel).
#include <gtest/gtest.h>

#include <memory>

#include "iqb/measurement/cloudflare_style.hpp"
#include "iqb/measurement/ndt.hpp"
#include "iqb/measurement/ookla_style.hpp"
#include "iqb/measurement/rpm_style.hpp"

namespace iqb::measurement {
namespace {

using netsim::LinkSpec;
using netsim::LossSpec;
using netsim::Network;
using netsim::NodeId;
using netsim::QueueSpec;
using netsim::Simulator;

LinkSpec spec(double mbps, double delay_s,
              std::uint64_t queue = 512 * 1024) {
  LinkSpec s;
  s.rate = util::Mbps(mbps);
  s.propagation_delay = util::Seconds(delay_s);
  s.queue = QueueSpec::drop_tail(queue);
  return s;
}

/// Runs one client against a single-link topology and returns its
/// observation.
util::Result<TestObservation> run_client(MeasurementClient& client,
                                         LinkSpec down, LinkSpec up,
                                         std::uint64_t seed = 1) {
  Simulator sim;
  Network net(sim, seed);
  const NodeId server = net.add_node("server");
  const NodeId client_node = net.add_node("client");
  net.add_duplex_link(server, client_node, down, up);

  std::uint64_t next_flow_id = 1;
  std::vector<std::shared_ptr<void>> graveyard;
  TestEnvironment env;
  env.sim = &sim;
  env.network = &net;
  env.client_node = client_node;
  env.server_node = server;
  env.next_flow_id = &next_flow_id;
  env.retain = [&graveyard](std::shared_ptr<void> state) {
    graveyard.push_back(std::move(state));
  };

  util::Result<TestObservation> outcome =
      util::make_error(util::ErrorCode::kInternal, "never completed");
  client.run(env, [&outcome](util::Result<TestObservation> result) {
    outcome = std::move(result);
  });
  sim.run(300.0);
  return outcome;
}

TEST(NdtClient, ReportsAllMetricsOnCleanLink) {
  NdtClient client;
  auto obs = run_client(client, spec(100, 0.01), spec(20, 0.01));
  ASSERT_TRUE(obs.ok());
  EXPECT_EQ(obs->tool, "ndt");
  ASSERT_TRUE(obs->download.has_value());
  ASSERT_TRUE(obs->upload.has_value());
  ASSERT_TRUE(obs->idle_latency.has_value());
  ASSERT_TRUE(obs->loss.has_value());
  EXPECT_GT(obs->download->value(), 60.0);
  EXPECT_LE(obs->download->value(), 100.0);
  EXPECT_GT(obs->upload->value(), 12.0);
  EXPECT_LE(obs->upload->value(), 20.0);
  EXPECT_GE(obs->idle_latency->value(), 20.0);
  EXPECT_LT(obs->idle_latency->value(), 30.0);
  // A handful of congestion retransmits can occur even with no
  // stochastic loss (CA probing eventually fills the buffer); the
  // TCP-level loss signal must stay tiny, not exactly zero.
  EXPECT_LT(obs->loss->fraction(), 0.001);
}

TEST(NdtClient, SeesLossAsRetransmits) {
  LinkSpec lossy = spec(100, 0.02);
  lossy.loss = LossSpec::bernoulli(0.01);
  NdtClient client;
  auto obs = run_client(client, lossy, spec(100, 0.02));
  ASSERT_TRUE(obs.ok());
  EXPECT_GT(obs->loss->fraction(), 0.002);
  // Loss also caps single-stream throughput well below the line rate.
  EXPECT_LT(obs->download->value(), 60.0);
}

TEST(NdtClient, FailsGracefullyWithoutRoute) {
  Simulator sim;
  Network net(sim, 1);
  net.add_node("server");
  net.add_node("client");  // no link
  std::uint64_t next_flow_id = 1;
  std::vector<std::shared_ptr<void>> graveyard;
  TestEnvironment env;
  env.sim = &sim;
  env.network = &net;
  env.client_node = 1;
  env.server_node = 0;
  env.next_flow_id = &next_flow_id;
  env.retain = [&graveyard](std::shared_ptr<void> s) {
    graveyard.push_back(std::move(s));
  };
  NdtClient client;
  bool called = false;
  client.run(env, [&](util::Result<TestObservation> result) {
    called = true;
    EXPECT_FALSE(result.ok());
  });
  sim.run(10.0);
  EXPECT_TRUE(called);
}

TEST(OoklaStyleClient, ReportsThroughputLatencyButNoLoss) {
  OoklaStyleClient client;
  auto obs = run_client(client, spec(100, 0.01), spec(20, 0.01));
  ASSERT_TRUE(obs.ok());
  EXPECT_EQ(obs->tool, "ookla_style");
  EXPECT_TRUE(obs->download.has_value());
  EXPECT_TRUE(obs->upload.has_value());
  EXPECT_TRUE(obs->idle_latency.has_value());
  EXPECT_TRUE(obs->loaded_latency.has_value());
  EXPECT_FALSE(obs->loss.has_value()) << "Ookla open data carries no loss";
}

TEST(OoklaStyleClient, MultiStreamBeatsSingleStreamUnderLoss) {
  LinkSpec lossy = spec(100, 0.02);
  lossy.loss = LossSpec::bernoulli(0.005);
  NdtClient ndt;
  OoklaStyleClient ookla;
  auto ndt_obs = run_client(ndt, lossy, spec(100, 0.02), 5);
  auto ookla_obs = run_client(ookla, lossy, spec(100, 0.02), 5);
  ASSERT_TRUE(ndt_obs.ok());
  ASSERT_TRUE(ookla_obs.ok());
  // 4 parallel streams recover independently: materially higher read.
  EXPECT_GT(ookla_obs->download->value(), ndt_obs->download->value() * 1.3);
}

TEST(OoklaStyleClient, LoadedLatencyExceedsIdleOnBloatedLink) {
  LinkSpec bloated = spec(20, 0.01, 1024 * 1024);
  OoklaStyleClient client;
  auto obs = run_client(client, bloated, spec(20, 0.01, 1024 * 1024));
  ASSERT_TRUE(obs.ok());
  ASSERT_TRUE(obs->loaded_latency.has_value());
  EXPECT_GT(obs->loaded_latency->value(), obs->idle_latency->value() * 1.5);
}

TEST(CloudflareStyleClient, ReportsFullPanel) {
  CloudflareStyleClient client;
  auto obs = run_client(client, spec(100, 0.01), spec(20, 0.01));
  ASSERT_TRUE(obs.ok());
  EXPECT_EQ(obs->tool, "cloudflare_style");
  EXPECT_TRUE(obs->download.has_value());
  EXPECT_TRUE(obs->upload.has_value());
  EXPECT_TRUE(obs->idle_latency.has_value());
  EXPECT_TRUE(obs->loss.has_value());
  EXPECT_GT(obs->download->value(), 30.0);
  EXPECT_LE(obs->download->value(), 100.0);
}

TEST(CloudflareStyleClient, SmallTransfersUnderreadOnHighBdpPath) {
  // 500 Mb/s with 60 ms RTT: the ladder's small transfers end inside
  // slow start, so the p90-of-transfers estimate sits well below the
  // provisioned rate, and below a steady-state parallel test.
  LinkSpec fat = spec(500, 0.03, 4 * 1024 * 1024);
  CloudflareStyleClient cloudflare;
  OoklaStyleClient ookla;
  auto cf_obs = run_client(cloudflare, fat, spec(100, 0.03), 6);
  auto ookla_obs = run_client(ookla, fat, spec(100, 0.03), 6);
  ASSERT_TRUE(cf_obs.ok());
  ASSERT_TRUE(ookla_obs.ok());
  EXPECT_LT(cf_obs->download->value(), ookla_obs->download->value());
  EXPECT_LT(cf_obs->download->value(), 450.0);
}

TEST(CloudflareStyleClient, CustomLadder) {
  CloudflareStyleConfig config;
  config.download_ladder_bytes = {50'000, 200'000};
  config.upload_ladder_bytes = {50'000};
  config.loss_probe_count = 20;
  CloudflareStyleClient client(config);
  auto obs = run_client(client, spec(50, 0.01), spec(10, 0.01));
  ASSERT_TRUE(obs.ok());
  EXPECT_TRUE(obs->download.has_value());
  EXPECT_TRUE(obs->upload.has_value());
}

TEST(RpmStyleClient, ReportsLoadedLatencyAndBidirectionalThroughput) {
  RpmStyleClient client;
  auto obs = run_client(client, spec(100, 0.01, 1024 * 1024),
                        spec(20, 0.01, 512 * 1024));
  ASSERT_TRUE(obs.ok());
  EXPECT_EQ(obs->tool, "rpm_style");
  ASSERT_TRUE(obs->idle_latency.has_value());
  ASSERT_TRUE(obs->loaded_latency.has_value());
  ASSERT_TRUE(obs->download.has_value());
  ASSERT_TRUE(obs->upload.has_value());
  EXPECT_FALSE(obs->loss.has_value());
  // Under bidirectional saturation into deep buffers, working latency
  // must exceed idle latency substantially.
  EXPECT_GT(obs->loaded_latency->value(), obs->idle_latency->value() * 1.5);
  // Bidirectional saturation throttles the download hard: its ACKs
  // queue behind the saturating uploads (asymmetric-path ACK
  // congestion, a real effect on DOCSIS-like tiers). Both directions
  // must still show sustained progress.
  EXPECT_GT(obs->download->value(), 3.0);
  EXPECT_GT(obs->upload->value(), 8.0);
}

TEST(RpmStyleClient, DebloatedLinkScoresBetterRpm) {
  // PIE at the bottleneck keeps working latency near target; a deep
  // DropTail buffer does not. The RPM tool must see the difference.
  auto loaded_ms = [](netsim::QueueSpec queue) {
    RpmStyleClient client;
    LinkSpec down;
    down.rate = util::Mbps(50);
    down.propagation_delay = util::Seconds(0.01);
    down.queue = queue;  // AQM (or not) on both directions
    LinkSpec up;
    up.rate = util::Mbps(20);
    up.propagation_delay = util::Seconds(0.01);
    up.queue = queue;
    auto obs = run_client(client, down, up, 9);
    return obs.ok() && obs->loaded_latency ? obs->loaded_latency->value()
                                           : -1.0;
  };
  netsim::PieQueue::Config pie;
  pie.capacity_bytes = 1024 * 1024;
  const double with_pie = loaded_ms(netsim::QueueSpec::pie(pie));
  const double with_droptail =
      loaded_ms(netsim::QueueSpec::drop_tail(1024 * 1024));
  ASSERT_GT(with_pie, 0.0);
  ASSERT_GT(with_droptail, 0.0);
  EXPECT_LT(with_pie, with_droptail / 2.0);
}

TEST(AllClients, ObservationTimesAreOrdered) {
  NdtClient ndt;
  OoklaStyleClient ookla;
  CloudflareStyleClient cloudflare;
  RpmStyleClient rpm;
  MeasurementClient* clients[] = {&ndt, &ookla, &cloudflare, &rpm};
  for (MeasurementClient* client : clients) {
    auto obs = run_client(*client, spec(50, 0.01), spec(10, 0.01));
    ASSERT_TRUE(obs.ok()) << client->name();
    EXPECT_GT(obs->finished_at, obs->started_at) << client->name();
  }
}

}  // namespace
}  // namespace iqb::measurement
