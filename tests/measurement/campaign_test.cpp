#include "iqb/measurement/campaign.hpp"

#include <gtest/gtest.h>

#include "iqb/measurement/adapters.hpp"
#include "iqb/measurement/cloudflare_style.hpp"
#include "iqb/measurement/ndt.hpp"
#include "iqb/measurement/ookla_style.hpp"
#include "iqb/measurement/population.hpp"

namespace iqb::measurement {
namespace {

SubscriberSpec fast_subscriber(const std::string& id = "s1") {
  SubscriberSpec subscriber;
  subscriber.subscriber_id = id;
  subscriber.region = "testville";
  subscriber.isp = "test_isp";
  subscriber.access_down.rate = util::Mbps(100);
  subscriber.access_down.propagation_delay = util::Seconds(0.008);
  subscriber.access_up.rate = util::Mbps(20);
  subscriber.access_up.propagation_delay = util::Seconds(0.008);
  return subscriber;
}

CampaignConfig quick_config() {
  CampaignConfig config;
  config.seed = 7;
  config.tests_per_tool = 1;
  config.base_time = util::Timestamp::parse("2025-03-01").value();
  return config;
}

TEST(Campaign, RunsEveryToolPerSubscriber) {
  Campaign campaign(quick_config());
  campaign.add_client(std::make_shared<NdtClient>());
  campaign.add_client(std::make_shared<OoklaStyleClient>());
  campaign.add_subscriber(fast_subscriber());
  auto records = campaign.run();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(campaign.failed_sessions(), 0u);
  EXPECT_EQ(records[0].observation.tool, "ndt");
  EXPECT_EQ(records[1].observation.tool, "ookla_style");
  EXPECT_EQ(records[0].region, "testville");
}

TEST(Campaign, RepetitionsProduceDistinctTimestamps) {
  CampaignConfig config = quick_config();
  config.tests_per_tool = 3;
  config.session_spacing_s = 3600;
  Campaign campaign(config);
  campaign.add_client(std::make_shared<NdtClient>());
  campaign.add_subscriber(fast_subscriber());
  auto records = campaign.run();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[1].timestamp - records[0].timestamp, 3600);
  EXPECT_EQ(records[2].timestamp - records[1].timestamp, 3600);
}

TEST(Campaign, DeterministicForSameSeed) {
  auto run_once = [] {
    Campaign campaign(quick_config());
    campaign.add_client(std::make_shared<NdtClient>());
    SubscriberSpec subscriber = fast_subscriber();
    subscriber.access_down.loss = netsim::LossSpec::bernoulli(0.003);
    subscriber.background_utilization = 0.3;
    campaign.add_subscriber(subscriber);
    return campaign.run();
  };
  auto a = run_once();
  auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  EXPECT_DOUBLE_EQ(a[0].observation.download->value(),
                   b[0].observation.download->value());
}

TEST(Campaign, SessionsVaryAcrossRepetitions) {
  CampaignConfig config = quick_config();
  config.tests_per_tool = 3;
  Campaign campaign(config);
  campaign.add_client(std::make_shared<NdtClient>());
  SubscriberSpec subscriber = fast_subscriber();
  subscriber.access_down.loss = netsim::LossSpec::bernoulli(0.004);
  subscriber.background_utilization = 0.4;
  campaign.add_subscriber(subscriber);
  auto records = campaign.run();
  ASSERT_EQ(records.size(), 3u);
  // Stochastic loss + cross traffic: downloads should not all match.
  const double d0 = records[0].observation.download->value();
  const double d1 = records[1].observation.download->value();
  const double d2 = records[2].observation.download->value();
  EXPECT_TRUE(d0 != d1 || d1 != d2);
}

// ---------------- adapters -------------------------------------------

TEST(Adapters, RouteSessionsByTool) {
  SessionRecord ndt_session;
  ndt_session.region = "r";
  ndt_session.observation.tool = "ndt";
  ndt_session.observation.download = util::Mbps(50);
  ndt_session.observation.loss = util::LossRate(0.01);
  SessionRecord ookla_session = ndt_session;
  ookla_session.observation.tool = "ookla_style";

  const std::vector<SessionRecord> sessions{ndt_session, ookla_session};
  NdtDatasetAdapter ndt_adapter;
  auto ndt_records = ndt_adapter.convert(sessions);
  ASSERT_EQ(ndt_records.size(), 1u);
  EXPECT_EQ(ndt_records[0].dataset, "ndt");
  EXPECT_TRUE(ndt_records[0].loss.has_value());
}

TEST(Adapters, OoklaWithholdsLoss) {
  SessionRecord session;
  session.observation.tool = "ookla_style";
  session.observation.download = util::Mbps(50);
  session.observation.loss = util::LossRate(0.01);  // even if present
  OoklaDatasetAdapter adapter;
  auto records = adapter.convert(std::vector<SessionRecord>{session});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].loss.has_value());
}

TEST(Adapters, DefaultPanelCoversAllTools) {
  std::vector<SessionRecord> sessions;
  for (const char* tool : {"ndt", "ookla_style", "cloudflare_style"}) {
    SessionRecord session;
    session.region = "r";
    session.observation.tool = tool;
    session.observation.download = util::Mbps(10);
    sessions.push_back(session);
  }
  auto records = convert_sessions_default(sessions);
  ASSERT_EQ(records.size(), 3u);
  std::set<std::string> datasets;
  for (const auto& record : records) datasets.insert(record.dataset);
  EXPECT_EQ(datasets, (std::set<std::string>{"ndt", "cloudflare", "ookla"}));
}

TEST(Adapters, IdleLatencyMapsToLatencyMetric) {
  SessionRecord session;
  session.observation.tool = "ndt";
  session.observation.idle_latency = util::Millis(42);
  session.observation.loaded_latency = util::Millis(99);
  NdtDatasetAdapter adapter;
  auto records = adapter.convert(std::vector<SessionRecord>{session});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].latency->value(), 42.0);
  EXPECT_DOUBLE_EQ(records[0].loaded_latency->value(), 99.0);
}

// ---------------- population -----------------------------------------

TEST(Population, GeneratesRequestedCount) {
  RegionPlan plan;
  plan.region = "r";
  plan.subscribers = 25;
  plan.mix = {{AccessTechnology::kFiber, 1.0, 100.0, 500.0}};
  util::Rng rng(1);
  auto population = generate_population(plan, rng);
  EXPECT_EQ(population.size(), 25u);
  for (const auto& subscriber : population) {
    EXPECT_EQ(subscriber.region, "r");
    EXPECT_GE(subscriber.access_down.rate.value(), 100.0);
    EXPECT_LE(subscriber.access_down.rate.value(), 500.0);
    EXPECT_GE(subscriber.background_utilization, 0.0);
    EXPECT_LE(subscriber.background_utilization, 0.8);
  }
}

TEST(Population, TechnologyMixRespected) {
  RegionPlan plan;
  plan.region = "r";
  plan.subscribers = 400;
  plan.mix = {{AccessTechnology::kFiber, 0.75, 100.0, 200.0},
              {AccessTechnology::kSatellite, 0.25, 20.0, 50.0}};
  util::Rng rng(2);
  auto population = generate_population(plan, rng);
  int fiber = 0;
  for (const auto& subscriber : population) {
    if (subscriber.subscriber_id.find("fiber") != std::string::npos) ++fiber;
  }
  EXPECT_NEAR(static_cast<double>(fiber) / 400.0, 0.75, 0.08);
}

TEST(Population, SatelliteHasGeoLatency) {
  const TechnologyTraits traits =
      technology_traits(AccessTechnology::kSatellite);
  EXPECT_GE(traits.one_way_delay_s, 0.2);
  const TechnologyTraits fiber = technology_traits(AccessTechnology::kFiber);
  EXPECT_LT(fiber.one_way_delay_s, 0.01);
}

TEST(Population, UploadRatioFollowsTechnology) {
  RegionPlan plan;
  plan.region = "r";
  plan.subscribers = 10;
  plan.mix = {{AccessTechnology::kCable, 1.0, 100.0, 100.0}};
  util::Rng rng(3);
  auto population = generate_population(plan, rng);
  for (const auto& subscriber : population) {
    EXPECT_LT(subscriber.access_up.rate.value(),
              subscriber.access_down.rate.value() * 0.2);
  }
}

TEST(Population, ExamplePlansAreWellFormed) {
  auto plans = example_region_plans(5);
  ASSERT_EQ(plans.size(), 3u);
  for (const auto& plan : plans) {
    EXPECT_FALSE(plan.region.empty());
    EXPECT_FALSE(plan.mix.empty());
    EXPECT_EQ(plan.subscribers, 5u);
    double total_share = 0.0;
    for (const auto& share : plan.mix) total_share += share.share;
    EXPECT_NEAR(total_share, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace iqb::measurement
