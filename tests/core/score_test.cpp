// Scorer tests, including the property tests for the paper's algebra:
// eq. (3) is the collapse of (1)+(2), eq. (5) of (3)+(4); the factored
// and collapsed evaluations must agree exactly for arbitrary weights
// and tensors, including with missing cells.
#include "iqb/core/score.hpp"

#include <gtest/gtest.h>

#include "iqb/util/rng.hpp"

namespace iqb::core {
namespace {

const std::vector<std::string> kPanel{"ndt", "cloudflare", "ookla"};

Scorer paper_scorer() {
  return Scorer(ThresholdTable::paper_defaults(),
                WeightTable::paper_defaults(kPanel));
}

BinaryScoreTensor full_tensor(bool met) {
  BinaryScoreTensor tensor;
  for (UseCase use_case : kAllUseCases) {
    for (Requirement requirement : kAllRequirements) {
      for (const std::string& dataset : kPanel) {
        tensor.set(use_case, requirement, dataset, met);
      }
    }
  }
  return tensor;
}

/// Random tensor where each cell is present with p_present and, when
/// present, true with p_met.
BinaryScoreTensor random_tensor(util::Rng& rng, double p_present,
                                double p_met) {
  BinaryScoreTensor tensor;
  for (UseCase use_case : kAllUseCases) {
    for (Requirement requirement : kAllRequirements) {
      for (const std::string& dataset : kPanel) {
        if (rng.bernoulli(p_present)) {
          tensor.set(use_case, requirement, dataset, rng.bernoulli(p_met));
        }
      }
    }
  }
  return tensor;
}

WeightTable random_weights(util::Rng& rng) {
  WeightTable weights;
  for (UseCase use_case : kAllUseCases) {
    (void)weights.set_use_case_weight(
        use_case, static_cast<int>(rng.uniform_int(1, 5)));
    for (Requirement requirement : kAllRequirements) {
      (void)weights.set_requirement_weight(
          use_case, requirement, static_cast<int>(rng.uniform_int(1, 5)));
      for (const std::string& dataset : kPanel) {
        (void)weights.set_dataset_weight(
            use_case, requirement, dataset,
            static_cast<int>(rng.uniform_int(1, 5)));
      }
    }
  }
  return weights;
}

TEST(Scorer, AllMetGivesOne) {
  auto breakdown = paper_scorer().score(full_tensor(true), QualityLevel::kHigh);
  ASSERT_TRUE(breakdown.ok());
  EXPECT_DOUBLE_EQ(breakdown->iqb_score, 1.0);
  for (const auto& [use_case, score] : breakdown->use_case_scores) {
    EXPECT_DOUBLE_EQ(score, 1.0);
  }
  EXPECT_TRUE(breakdown->coverage_warnings.empty());
}

TEST(Scorer, NoneMetGivesZero) {
  auto breakdown = paper_scorer().score(full_tensor(false), QualityLevel::kHigh);
  ASSERT_TRUE(breakdown.ok());
  EXPECT_DOUBLE_EQ(breakdown->iqb_score, 0.0);
}

TEST(Scorer, EmptyTensorIsError) {
  BinaryScoreTensor empty;
  auto breakdown = paper_scorer().score(empty, QualityLevel::kHigh);
  ASSERT_FALSE(breakdown.ok());
  EXPECT_EQ(breakdown.error().code, util::ErrorCode::kEmptyInput);
  EXPECT_FALSE(paper_scorer().score_collapsed(empty).ok());
}

TEST(Scorer, HandWorkedExample) {
  // Single use case contributes: gaming with Table 1 weights
  // down=4, up=4, latency=5, loss=4 (sum 17). Equal dataset weights.
  // down met by all 3 datasets (S=1), latency met by 2 of 3 (S=2/3),
  // up met by none (S=0), loss by all (S=1).
  // S_gaming = (4*1 + 4*0 + 5*(2/3) + 4*1) / 17 = (4 + 10/3 + 4)/17.
  BinaryScoreTensor tensor;
  for (const std::string& dataset : kPanel) {
    tensor.set(UseCase::kGaming, Requirement::kDownloadThroughput, dataset, true);
    tensor.set(UseCase::kGaming, Requirement::kUploadThroughput, dataset, false);
    tensor.set(UseCase::kGaming, Requirement::kPacketLoss, dataset, true);
  }
  tensor.set(UseCase::kGaming, Requirement::kLatency, "ndt", true);
  tensor.set(UseCase::kGaming, Requirement::kLatency, "cloudflare", true);
  tensor.set(UseCase::kGaming, Requirement::kLatency, "ookla", false);

  auto breakdown = paper_scorer().score(tensor, QualityLevel::kHigh);
  ASSERT_TRUE(breakdown.ok());
  const double expected_gaming = (4.0 + 10.0 / 3.0 + 4.0) / 17.0;
  EXPECT_NEAR(breakdown->use_case_scores.at(UseCase::kGaming), expected_gaming,
              1e-12);
  // Only gaming has data, so S_IQB == S_gaming.
  EXPECT_NEAR(breakdown->iqb_score, expected_gaming, 1e-12);
  // Five other use cases were dropped.
  EXPECT_EQ(breakdown->coverage_warnings.size(), 5u * 4u + 5u);
}

TEST(Scorer, RequirementAgreementIsWeightedAverage) {
  // Unequal dataset weights: ndt=4, cloudflare=1, ookla=1. Only ndt
  // meets -> S_{u,r} = 4/6.
  WeightTable weights = WeightTable::paper_defaults(kPanel);
  (void)weights.set_dataset_weight(UseCase::kGaming, Requirement::kLatency,
                                   "ndt", 4);
  Scorer scorer(ThresholdTable::paper_defaults(), weights);
  BinaryScoreTensor tensor;
  tensor.set(UseCase::kGaming, Requirement::kLatency, "ndt", true);
  tensor.set(UseCase::kGaming, Requirement::kLatency, "cloudflare", false);
  tensor.set(UseCase::kGaming, Requirement::kLatency, "ookla", false);
  auto breakdown = scorer.score(tensor, QualityLevel::kHigh);
  ASSERT_TRUE(breakdown.ok());
  EXPECT_NEAR(
      breakdown->requirement_scores.at({UseCase::kGaming, Requirement::kLatency}),
      4.0 / 6.0, 1e-12);
}

TEST(Scorer, MissingDatasetDropsFromNormalization) {
  // Loss covered only by ndt and cloudflare (the Ookla gap): agreement
  // averages over the two present datasets.
  BinaryScoreTensor tensor;
  tensor.set(UseCase::kGaming, Requirement::kPacketLoss, "ndt", true);
  tensor.set(UseCase::kGaming, Requirement::kPacketLoss, "cloudflare", false);
  auto breakdown = paper_scorer().score(tensor, QualityLevel::kHigh);
  ASSERT_TRUE(breakdown.ok());
  EXPECT_NEAR(breakdown->requirement_scores.at(
                  {UseCase::kGaming, Requirement::kPacketLoss}),
              0.5, 1e-12);
}

TEST(Scorer, ZeroWeightRequirementContributesNothing) {
  WeightTable weights = WeightTable::paper_defaults(kPanel);
  (void)weights.set_requirement_weight(UseCase::kGaming,
                                       Requirement::kUploadThroughput, 0);
  Scorer scorer(ThresholdTable::paper_defaults(), weights);
  // Upload fails everywhere, everything else passes: with weight 0 on
  // upload, gaming still scores 1.
  BinaryScoreTensor tensor;
  for (Requirement requirement : kAllRequirements) {
    for (const std::string& dataset : kPanel) {
      tensor.set(UseCase::kGaming, requirement, dataset,
                 requirement != Requirement::kUploadThroughput);
    }
  }
  auto breakdown = scorer.score(tensor, QualityLevel::kHigh);
  ASSERT_TRUE(breakdown.ok());
  EXPECT_DOUBLE_EQ(breakdown->use_case_scores.at(UseCase::kGaming), 1.0);
}

TEST(Scorer, MonotonicityFlippingCellUpNeverLowersScore) {
  util::Rng rng(71);
  for (int trial = 0; trial < 30; ++trial) {
    WeightTable weights = random_weights(rng);
    Scorer scorer(ThresholdTable::paper_defaults(), weights);
    BinaryScoreTensor tensor = random_tensor(rng, 0.8, 0.5);
    auto base = scorer.score(tensor, QualityLevel::kHigh);
    if (!base.ok()) continue;
    // Flip one random present-false cell to true.
    for (UseCase use_case : kAllUseCases) {
      for (Requirement requirement : kAllRequirements) {
        for (const std::string& dataset : kPanel) {
          auto met = tensor.get(use_case, requirement, dataset);
          if (met && !*met) {
            BinaryScoreTensor flipped = tensor;
            flipped.set(use_case, requirement, dataset, true);
            auto improved = scorer.score(flipped, QualityLevel::kHigh);
            ASSERT_TRUE(improved.ok());
            EXPECT_GE(improved->iqb_score, base->iqb_score - 1e-12);
          }
        }
      }
    }
  }
}

TEST(Scorer, ScoreAlwaysInUnitInterval) {
  util::Rng rng(72);
  for (int trial = 0; trial < 200; ++trial) {
    Scorer scorer(ThresholdTable::paper_defaults(), random_weights(rng));
    auto tensor = random_tensor(rng, 0.7, 0.5);
    auto breakdown = scorer.score(tensor, QualityLevel::kHigh);
    if (!breakdown.ok()) continue;
    EXPECT_GE(breakdown->iqb_score, 0.0);
    EXPECT_LE(breakdown->iqb_score, 1.0);
    for (const auto& [key, score] : breakdown->requirement_scores) {
      EXPECT_GE(score, 0.0);
      EXPECT_LE(score, 1.0);
    }
  }
}

/// The paper's central algebraic identity, eq. (5) == eqs. (1,2,4),
/// over random weights and tensors with and without missing cells.
class CollapsedEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(CollapsedEquivalenceTest, FactoredEqualsCollapsed) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const double p_present = GetParam() % 2 == 0 ? 1.0 : 0.7;
  Scorer scorer(ThresholdTable::paper_defaults(), random_weights(rng));
  auto tensor = random_tensor(rng, p_present, 0.5);
  auto factored = scorer.score(tensor, QualityLevel::kHigh);
  auto collapsed = scorer.score_collapsed(tensor);
  ASSERT_EQ(factored.ok(), collapsed.ok());
  if (factored.ok()) {
    EXPECT_NEAR(factored->iqb_score, collapsed.value(), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrials, CollapsedEquivalenceTest,
                         ::testing::Range(1, 41));

TEST(Scorer, BinarizeAgainstAggregates) {
  datasets::AggregateTable aggregates;
  auto put = [&aggregates](const std::string& dataset, datasets::Metric metric,
                           double value) {
    datasets::AggregateCell cell;
    cell.region = "r";
    cell.dataset = dataset;
    cell.metric = metric;
    cell.value = value;
    cell.sample_count = 10;
    aggregates.put(cell);
  };
  // 120 Mb/s down, 30 up, 30 ms latency, 0.2% loss on ndt only.
  put("ndt", datasets::Metric::kDownload, 120.0);
  put("ndt", datasets::Metric::kUpload, 30.0);
  put("ndt", datasets::Metric::kLatency, 30.0);
  put("ndt", datasets::Metric::kLoss, 0.002);

  Scorer scorer = paper_scorer();
  auto tensor = scorer.binarize(aggregates, "r", kPanel, QualityLevel::kHigh);
  // Gaming high: down>=100 yes, up>=10 yes, latency<=50 yes, loss<=0.5% yes.
  EXPECT_TRUE(*tensor.get(UseCase::kGaming, Requirement::kDownloadThroughput, "ndt"));
  EXPECT_TRUE(*tensor.get(UseCase::kGaming, Requirement::kLatency, "ndt"));
  EXPECT_TRUE(*tensor.get(UseCase::kGaming, Requirement::kPacketLoss, "ndt"));
  // Video conferencing high: up >= 100 -> no.
  EXPECT_FALSE(*tensor.get(UseCase::kVideoConferencing,
                           Requirement::kUploadThroughput, "ndt"));
  // Online backup high: up >= 200 -> no; latency <= 100 -> yes.
  EXPECT_FALSE(
      *tensor.get(UseCase::kOnlineBackup, Requirement::kUploadThroughput, "ndt"));
  // Datasets without aggregates have no cells.
  EXPECT_FALSE(tensor
                   .get(UseCase::kGaming, Requirement::kDownloadThroughput,
                        "ookla")
                   .has_value());
}

TEST(Scorer, MinimumLevelIsEasierThanHigh) {
  datasets::AggregateTable aggregates;
  datasets::AggregateCell cell;
  cell.region = "r";
  cell.dataset = "ndt";
  cell.sample_count = 5;
  cell.metric = datasets::Metric::kDownload;
  cell.value = 30.0;  // meets min (10/25) but not high (50/100) mostly
  aggregates.put(cell);
  cell.metric = datasets::Metric::kUpload;
  cell.value = 12.0;
  aggregates.put(cell);
  cell.metric = datasets::Metric::kLatency;
  cell.value = 80.0;
  aggregates.put(cell);
  cell.metric = datasets::Metric::kLoss;
  cell.value = 0.008;
  aggregates.put(cell);

  Scorer scorer = paper_scorer();
  auto high = scorer.score_region(aggregates, "r", kPanel, QualityLevel::kHigh);
  auto minimum =
      scorer.score_region(aggregates, "r", kPanel, QualityLevel::kMinimum);
  ASSERT_TRUE(high.ok());
  ASSERT_TRUE(minimum.ok());
  EXPECT_GT(minimum->iqb_score, high->iqb_score);
}

}  // namespace
}  // namespace iqb::core
