#include "iqb/core/responsiveness.hpp"

#include <gtest/gtest.h>

namespace iqb::core {
namespace {

datasets::MeasurementRecord latency_record(const std::string& region,
                                           const std::string& dataset,
                                           double idle_ms, double loaded_ms) {
  datasets::MeasurementRecord record;
  record.region = region;
  record.dataset = dataset;
  record.latency = util::Millis(idle_ms);
  record.loaded_latency = util::Millis(loaded_ms);
  return record;
}

TEST(ClassifyRpm, Bands) {
  EXPECT_EQ(classify_rpm(100.0), RpmRating::kPoor);
  EXPECT_EQ(classify_rpm(999.0), RpmRating::kPoor);
  EXPECT_EQ(classify_rpm(1000.0), RpmRating::kFair);
  EXPECT_EQ(classify_rpm(2500.0), RpmRating::kGood);
  EXPECT_EQ(classify_rpm(6000.0), RpmRating::kExcellent);
  EXPECT_EQ(classify_rpm(50000.0), RpmRating::kExcellent);
}

TEST(RpmRatingNames, Distinct) {
  EXPECT_EQ(rpm_rating_name(RpmRating::kPoor), "poor");
  EXPECT_EQ(rpm_rating_name(RpmRating::kExcellent), "excellent");
}

TEST(Responsiveness, EmptyStoreIsError) {
  datasets::RecordStore empty;
  EXPECT_FALSE(analyze_responsiveness(empty).ok());
}

TEST(Responsiveness, ComputesRpmAndBloat) {
  datasets::RecordStore store;
  // Uniform 20 ms idle / 60 ms working (RPM = 1000) on ndt.
  for (int i = 0; i < 20; ++i) {
    (void)store.add(latency_record("r", "ndt", 20.0, 60.0));
  }
  auto reports = analyze_responsiveness(store);
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), 1u);
  const ResponsivenessReport& report = (*reports)[0];
  ASSERT_EQ(report.cells.size(), 1u);
  const ResponsivenessCell& cell = report.cells[0];
  EXPECT_DOUBLE_EQ(cell.working_ms, 60.0);
  EXPECT_DOUBLE_EQ(cell.idle_ms, 20.0);
  EXPECT_DOUBLE_EQ(cell.bufferbloat_ms, 40.0);
  EXPECT_NEAR(cell.rpm, 1000.0, 1e-9);
  EXPECT_EQ(cell.rating, RpmRating::kFair);
  EXPECT_EQ(report.overall, RpmRating::kFair);
}

TEST(Responsiveness, SkipsDatasetsWithoutLoadedLatency) {
  datasets::RecordStore store;
  (void)store.add(latency_record("r", "ndt", 10.0, 30.0));
  datasets::MeasurementRecord idle_only;
  idle_only.region = "r";
  idle_only.dataset = "ookla";
  idle_only.latency = util::Millis(12.0);
  (void)store.add(idle_only);
  auto reports = analyze_responsiveness(store);
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ((*reports)[0].cells.size(), 1u);
  EXPECT_EQ((*reports)[0].cells[0].dataset, "ndt");
}

TEST(Responsiveness, NoCoverageYieldsEmptyReport) {
  datasets::RecordStore store;
  datasets::MeasurementRecord throughput_only;
  throughput_only.region = "r";
  throughput_only.dataset = "ookla";
  throughput_only.download = util::Mbps(50);
  (void)store.add(throughput_only);
  auto reports = analyze_responsiveness(store);
  ASSERT_TRUE(reports.ok());
  EXPECT_TRUE((*reports)[0].cells.empty());
  EXPECT_DOUBLE_EQ((*reports)[0].mean_rpm, 0.0);
}

TEST(Responsiveness, BloatedRegionRatedWorse) {
  datasets::RecordStore store;
  for (int i = 0; i < 10; ++i) {
    (void)store.add(latency_record("debloated", "ndt", 10.0, 14.0));
    (void)store.add(latency_record("bloated", "ndt", 10.0, 400.0));
  }
  auto reports = analyze_responsiveness(store);
  ASSERT_TRUE(reports.ok());
  double bloated_rpm = 0.0, clean_rpm = 0.0;
  for (const auto& report : *reports) {
    if (report.region == "bloated") bloated_rpm = report.mean_rpm;
    if (report.region == "debloated") clean_rpm = report.mean_rpm;
  }
  EXPECT_GT(clean_rpm, 4000.0);
  EXPECT_LT(bloated_rpm, 200.0);
}

TEST(Responsiveness, MeanRpmWeightedBySamples) {
  datasets::RecordStore store;
  // 30 samples at RPM 1000 (60 ms), 10 at RPM 3000 (20 ms).
  for (int i = 0; i < 30; ++i) {
    (void)store.add(latency_record("r", "ndt", 5.0, 60.0));
  }
  for (int i = 0; i < 10; ++i) {
    (void)store.add(latency_record("r", "cloudflare", 5.0, 20.0));
  }
  auto reports = analyze_responsiveness(store);
  ASSERT_TRUE(reports.ok());
  // Weighted mean = (30*1000 + 10*3000) / 40 = 1500.
  EXPECT_NEAR((*reports)[0].mean_rpm, 1500.0, 1e-9);
}

TEST(Responsiveness, P95OrientationPicksWorstTail) {
  datasets::RecordStore store;
  // 18 fast tests and 2 terrible ones: the p95 working latency (rank
  // 19.05 of 20 under linear interpolation) lands inside the bad
  // tail, so the report must be pessimistic rather than mean-like.
  for (int i = 0; i < 18; ++i) {
    (void)store.add(latency_record("r", "ndt", 10.0, 20.0));
  }
  (void)store.add(latency_record("r", "ndt", 10.0, 500.0));
  (void)store.add(latency_record("r", "ndt", 10.0, 520.0));
  auto reports = analyze_responsiveness(store);
  ASSERT_TRUE(reports.ok());
  EXPECT_GT((*reports)[0].cells[0].working_ms, 400.0);
}

}  // namespace
}  // namespace iqb::core
