#include <gtest/gtest.h>

#include "iqb/core/taxonomy.hpp"
#include "iqb/core/thresholds.hpp"

namespace iqb::core {
namespace {

TEST(Taxonomy, SixUseCasesFourRequirements) {
  EXPECT_EQ(kAllUseCases.size(), 6u);
  EXPECT_EQ(kAllRequirements.size(), 4u);
  EXPECT_EQ(kAllQualityLevels.size(), 2u);
}

TEST(Taxonomy, NameRoundTrips) {
  for (UseCase use_case : kAllUseCases) {
    EXPECT_EQ(use_case_from_name(use_case_name(use_case)).value(), use_case);
  }
  for (Requirement requirement : kAllRequirements) {
    EXPECT_EQ(requirement_from_name(requirement_name(requirement)).value(),
              requirement);
  }
  for (QualityLevel level : kAllQualityLevels) {
    EXPECT_EQ(quality_level_from_name(quality_level_name(level)).value(), level);
  }
  EXPECT_FALSE(use_case_from_name("bogus").ok());
  EXPECT_FALSE(requirement_from_name("bogus").ok());
  EXPECT_FALSE(quality_level_from_name("bogus").ok());
}

TEST(Taxonomy, RequirementMetricMapping) {
  EXPECT_EQ(requirement_metric(Requirement::kDownloadThroughput),
            datasets::Metric::kDownload);
  EXPECT_EQ(requirement_metric(Requirement::kUploadThroughput),
            datasets::Metric::kUpload);
  EXPECT_EQ(requirement_metric(Requirement::kLatency),
            datasets::Metric::kLatency);
  EXPECT_EQ(requirement_metric(Requirement::kPacketLoss),
            datasets::Metric::kLoss);
}

TEST(Taxonomy, RequirementDirections) {
  EXPECT_TRUE(requirement_higher_is_better(Requirement::kDownloadThroughput));
  EXPECT_TRUE(requirement_higher_is_better(Requirement::kUploadThroughput));
  EXPECT_FALSE(requirement_higher_is_better(Requirement::kLatency));
  EXPECT_FALSE(requirement_higher_is_better(Requirement::kPacketLoss));
}

TEST(Threshold, MetByHonoursDirection) {
  Threshold throughput{25.0};
  EXPECT_TRUE(throughput.met_by(Requirement::kDownloadThroughput, 30.0));
  EXPECT_TRUE(throughput.met_by(Requirement::kDownloadThroughput, 25.0));
  EXPECT_FALSE(throughput.met_by(Requirement::kDownloadThroughput, 24.9));

  Threshold latency{50.0};
  EXPECT_TRUE(latency.met_by(Requirement::kLatency, 40.0));
  EXPECT_TRUE(latency.met_by(Requirement::kLatency, 50.0));
  EXPECT_FALSE(latency.met_by(Requirement::kLatency, 50.1));
}

// ---- Fig. 2 exact values --------------------------------------------

struct Fig2Row {
  UseCase use_case;
  double down_min, down_high, up_min, up_high;
  double lat_min, lat_high;
  double loss_min_pct, loss_high_pct;
};

class Fig2Test : public ::testing::TestWithParam<Fig2Row> {};

TEST_P(Fig2Test, PublishedCellValues) {
  const Fig2Row row = GetParam();
  const ThresholdTable table = ThresholdTable::paper_defaults();
  using R = Requirement;
  using L = QualityLevel;
  EXPECT_DOUBLE_EQ(table.get(row.use_case, R::kDownloadThroughput, L::kMinimum)->value,
                   row.down_min);
  EXPECT_DOUBLE_EQ(table.get(row.use_case, R::kDownloadThroughput, L::kHigh)->value,
                   row.down_high);
  EXPECT_DOUBLE_EQ(table.get(row.use_case, R::kUploadThroughput, L::kMinimum)->value,
                   row.up_min);
  EXPECT_DOUBLE_EQ(table.get(row.use_case, R::kUploadThroughput, L::kHigh)->value,
                   row.up_high);
  EXPECT_DOUBLE_EQ(table.get(row.use_case, R::kLatency, L::kMinimum)->value,
                   row.lat_min);
  EXPECT_DOUBLE_EQ(table.get(row.use_case, R::kLatency, L::kHigh)->value,
                   row.lat_high);
  EXPECT_DOUBLE_EQ(table.get(row.use_case, R::kPacketLoss, L::kMinimum)->value,
                   row.loss_min_pct / 100.0);
  EXPECT_DOUBLE_EQ(table.get(row.use_case, R::kPacketLoss, L::kHigh)->value,
                   row.loss_high_pct / 100.0);
}

INSTANTIATE_TEST_SUITE_P(
    PaperFig2, Fig2Test,
    ::testing::Values(
        // Upload-high "Other" encoded as the minimum value (10); video
        // streaming download-high "50-100" encoded as 100. See DESIGN.md.
        Fig2Row{UseCase::kWebBrowsing, 10, 100, 10, 10, 100, 50, 1.0, 0.5},
        Fig2Row{UseCase::kVideoStreaming, 25, 100, 10, 10, 100, 50, 1.0, 0.1},
        Fig2Row{UseCase::kVideoConferencing, 10, 100, 25, 100, 50, 20, 0.5, 0.1},
        Fig2Row{UseCase::kAudioStreaming, 10, 50, 10, 50, 100, 50, 1.0, 0.1},
        Fig2Row{UseCase::kOnlineBackup, 10, 10, 25, 200, 100, 100, 1.0, 0.1},
        Fig2Row{UseCase::kGaming, 10, 100, 10, 10, 100, 50, 1.0, 0.5}),
    [](const ::testing::TestParamInfo<Fig2Row>& info) {
      return std::string(use_case_name(info.param.use_case));
    });

TEST(ThresholdTable, PaperDefaultsCompleteAndConsistent) {
  const ThresholdTable table = ThresholdTable::paper_defaults();
  EXPECT_TRUE(table.is_complete());
  EXPECT_EQ(table.size(), 6u * 4u * 2u);
  EXPECT_TRUE(table.validate().ok());
}

TEST(ThresholdTable, EmptyTableLookupsFail) {
  const ThresholdTable table;
  EXPECT_FALSE(table.is_complete());
  EXPECT_FALSE(table
                   .get(UseCase::kGaming, Requirement::kLatency,
                        QualityLevel::kHigh)
                   .ok());
}

TEST(ThresholdTable, SetValidation) {
  ThresholdTable table;
  EXPECT_FALSE(table
                   .set(UseCase::kGaming, Requirement::kLatency,
                        QualityLevel::kHigh, -5.0)
                   .ok());
  EXPECT_FALSE(table
                   .set(UseCase::kGaming, Requirement::kPacketLoss,
                        QualityLevel::kHigh, 1.5)
                   .ok());
  EXPECT_TRUE(table
                  .set(UseCase::kGaming, Requirement::kPacketLoss,
                       QualityLevel::kHigh, 0.005)
                  .ok());
}

TEST(ThresholdTable, ValidateCatchesInvertedLevels) {
  ThresholdTable table;
  // High-quality latency *looser* than minimum: inconsistent.
  (void)table.set(UseCase::kGaming, Requirement::kLatency,
                  QualityLevel::kMinimum, 50.0);
  (void)table.set(UseCase::kGaming, Requirement::kLatency, QualityLevel::kHigh,
                  100.0);
  EXPECT_FALSE(table.validate().ok());
}

TEST(ThresholdTable, ValidateCatchesInvertedThroughput) {
  ThresholdTable table;
  (void)table.set(UseCase::kGaming, Requirement::kDownloadThroughput,
                  QualityLevel::kMinimum, 100.0);
  (void)table.set(UseCase::kGaming, Requirement::kDownloadThroughput,
                  QualityLevel::kHigh, 10.0);
  EXPECT_FALSE(table.validate().ok());
}

TEST(ThresholdTable, JsonRoundTrip) {
  const ThresholdTable original = ThresholdTable::paper_defaults();
  auto restored = ThresholdTable::from_json(original.to_json());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), original);
}

TEST(ThresholdTable, JsonRejectsUnknownNames) {
  auto bad_use_case =
      util::parse_json(R"({"flying": {"latency": {"high": 10}}})").value();
  EXPECT_FALSE(ThresholdTable::from_json(bad_use_case).ok());
  auto bad_requirement =
      util::parse_json(R"({"gaming": {"smell": {"high": 10}}})").value();
  EXPECT_FALSE(ThresholdTable::from_json(bad_requirement).ok());
  auto bad_level =
      util::parse_json(R"({"gaming": {"latency": {"superb": 10}}})").value();
  EXPECT_FALSE(ThresholdTable::from_json(bad_level).ok());
  auto bad_value =
      util::parse_json(R"({"gaming": {"latency": {"high": "fast"}}})").value();
  EXPECT_FALSE(ThresholdTable::from_json(bad_value).ok());
}

TEST(ThresholdTable, PartialTableAllowed) {
  auto json = util::parse_json(
      R"({"gaming": {"latency": {"minimum": 100, "high": 50}}})").value();
  auto table = ThresholdTable::from_json(json);
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(table->is_complete());
  EXPECT_TRUE(table->validate().ok());
  EXPECT_DOUBLE_EQ(
      table->get(UseCase::kGaming, Requirement::kLatency, QualityLevel::kHigh)
          ->value,
      50.0);
}

}  // namespace
}  // namespace iqb::core
