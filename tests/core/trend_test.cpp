#include "iqb/core/trend.hpp"

#include <gtest/gtest.h>

#include "iqb/datasets/synthetic.hpp"

namespace iqb::core {
namespace {

/// Records for one region whose median download rises (or falls)
/// linearly across `weeks` weekly batches.
datasets::RecordStore evolving_store(double start_mbps, double weekly_delta,
                                     int weeks, std::uint64_t seed) {
  util::Rng rng(seed);
  datasets::RecordStore store;
  const auto base = util::Timestamp::parse("2025-01-06").value();
  for (int week = 0; week < weeks; ++week) {
    datasets::RegionProfile profile;
    profile.region = "evolving";
    profile.median_download_mbps =
        std::max(1.0, start_mbps + weekly_delta * week);
    profile.download_sigma = 0.15;  // tight: p5 tracks the median
    profile.upload_sigma = 0.15;
    profile.upload_ratio = 0.5;
    profile.base_latency_ms = 15.0;
    profile.lossy_test_fraction = 0.05;
    datasets::SyntheticConfig config;
    config.records_per_dataset = 40;
    config.base_time = base + static_cast<std::int64_t>(week) * 7 * 86400;
    config.spacing_s = 600;  // all records inside the week
    store.add_all(datasets::generate_region_records(
        profile, datasets::default_dataset_panel(), config, rng));
  }
  return store;
}

TEST(OlsSlope, ExactLine) {
  const std::vector<double> x{0, 1, 2, 3};
  const std::vector<double> y{1, 3, 5, 7};
  EXPECT_NEAR(ols_slope(x, y).value(), 2.0, 1e-12);
}

TEST(OlsSlope, FlatLine) {
  const std::vector<double> x{0, 1, 2};
  const std::vector<double> y{4, 4, 4};
  EXPECT_NEAR(ols_slope(x, y).value(), 0.0, 1e-12);
}

TEST(OlsSlope, Errors) {
  const std::vector<double> one{1};
  const std::vector<double> two{1, 2};
  const std::vector<double> same_x{3, 3};
  EXPECT_FALSE(ols_slope(one, one).ok());
  EXPECT_FALSE(ols_slope(two, one).ok());
  EXPECT_FALSE(ols_slope(same_x, two).ok());
}

TEST(TrendAnalysis, EmptyStoreIsError) {
  datasets::RecordStore empty;
  EXPECT_FALSE(analyze_trends(empty, IqbConfig::paper_defaults()).ok());
}

TEST(TrendAnalysis, BadWindowIsError) {
  auto store = evolving_store(50, 0, 2, 1);
  TrendConfig trend_config;
  trend_config.window_seconds = 0;
  EXPECT_FALSE(
      analyze_trends(store, IqbConfig::paper_defaults(), trend_config).ok());
}

TEST(TrendAnalysis, DetectsImprovingRegion) {
  // 10 -> 10+20*11 = 230 Mb/s over 12 weeks: scores must rise.
  auto store = evolving_store(10.0, 20.0, 12, 2);
  auto trends = analyze_trends(store, IqbConfig::paper_defaults());
  ASSERT_TRUE(trends.ok());
  ASSERT_EQ(trends->size(), 1u);
  const RegionTrend& trend = (*trends)[0];
  EXPECT_GE(trend.windows.size(), 10u);
  EXPECT_EQ(trend.direction, TrendDirection::kImproving);
  EXPECT_GT(trend.slope_per_day, 0.0);
  EXPECT_GT(trend.last_score, trend.first_score);
}

TEST(TrendAnalysis, DetectsRegressingRegion) {
  auto store = evolving_store(230.0, -20.0, 12, 3);
  auto trends = analyze_trends(store, IqbConfig::paper_defaults());
  ASSERT_TRUE(trends.ok());
  EXPECT_EQ((*trends)[0].direction, TrendDirection::kRegressing);
  EXPECT_LT((*trends)[0].slope_per_day, 0.0);
}

TEST(TrendAnalysis, StableRegionStaysStable) {
  auto store = evolving_store(80.0, 0.0, 8, 4);
  TrendConfig trend_config;
  trend_config.stable_slope_per_day = 0.01;  // generous noise band
  auto trends =
      analyze_trends(store, IqbConfig::paper_defaults(), trend_config);
  ASSERT_TRUE(trends.ok());
  EXPECT_EQ((*trends)[0].direction, TrendDirection::kStable);
}

TEST(TrendAnalysis, SparseWindowsSkipped) {
  auto store = evolving_store(50.0, 5.0, 6, 5);
  TrendConfig trend_config;
  trend_config.min_records_per_window = 1000000;  // nothing qualifies
  auto trends =
      analyze_trends(store, IqbConfig::paper_defaults(), trend_config);
  ASSERT_TRUE(trends.ok());
  EXPECT_TRUE((*trends)[0].windows.empty());
  EXPECT_EQ((*trends)[0].direction, TrendDirection::kStable);
}

TEST(TrendAnalysis, WindowBoundariesNonOverlapping) {
  auto store = evolving_store(40.0, 4.0, 6, 6);
  auto trends = analyze_trends(store, IqbConfig::paper_defaults());
  ASSERT_TRUE(trends.ok());
  const auto& windows = (*trends)[0].windows;
  ASSERT_GE(windows.size(), 2u);
  for (std::size_t i = 1; i < windows.size(); ++i) {
    EXPECT_GE(windows[i].window_start.unix_seconds(),
              windows[i - 1].window_end.unix_seconds() - 1);
    EXPECT_EQ(windows[i].window_end - windows[i].window_start, 7 * 86400);
  }
}

TEST(TrendDirectionNames, Distinct) {
  EXPECT_EQ(trend_direction_name(TrendDirection::kImproving), "improving");
  EXPECT_EQ(trend_direction_name(TrendDirection::kStable), "stable");
  EXPECT_EQ(trend_direction_name(TrendDirection::kRegressing), "regressing");
}

}  // namespace
}  // namespace iqb::core
