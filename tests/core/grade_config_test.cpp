#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "iqb/core/config.hpp"
#include "iqb/core/grade.hpp"

namespace iqb::core {
namespace {

TEST(GradeScale, DefaultBands) {
  const GradeScale scale;
  EXPECT_EQ(scale.grade(1.0), Grade::kA);
  EXPECT_EQ(scale.grade(0.9), Grade::kA);
  EXPECT_EQ(scale.grade(0.89), Grade::kB);
  EXPECT_EQ(scale.grade(0.75), Grade::kB);
  EXPECT_EQ(scale.grade(0.6), Grade::kC);
  EXPECT_EQ(scale.grade(0.4), Grade::kD);
  EXPECT_EQ(scale.grade(0.1), Grade::kE);
  EXPECT_EQ(scale.grade(0.0), Grade::kE);
}

TEST(GradeScale, CutAccessors) {
  const GradeScale scale;
  EXPECT_DOUBLE_EQ(scale.cut(Grade::kA), 0.9);
  EXPECT_DOUBLE_EQ(scale.cut(Grade::kE), 0.0);
}

TEST(GradeScale, CustomCuts) {
  auto scale = GradeScale::with_cuts(0.8, 0.6, 0.4, 0.2);
  ASSERT_TRUE(scale.ok());
  EXPECT_EQ(scale->grade(0.7), Grade::kB);
  EXPECT_EQ(scale->grade(0.19), Grade::kE);
}

TEST(GradeScale, RejectsBadCuts) {
  EXPECT_FALSE(GradeScale::with_cuts(0.5, 0.6, 0.4, 0.2).ok());  // not decreasing
  EXPECT_FALSE(GradeScale::with_cuts(0.8, 0.8, 0.4, 0.2).ok());  // not strict
  EXPECT_FALSE(GradeScale::with_cuts(1.2, 0.6, 0.4, 0.2).ok());  // > 1
  EXPECT_FALSE(GradeScale::with_cuts(0.8, 0.6, 0.4, 0.0).ok());  // <= 0
}

TEST(GradeScale, JsonRoundTrip) {
  auto original = GradeScale::with_cuts(0.85, 0.7, 0.5, 0.3).value();
  auto restored = GradeScale::from_json(original.to_json());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), original);
}

TEST(GradeNames, AllDistinct) {
  for (std::size_t i = 0; i < kAllGrades.size(); ++i) {
    for (std::size_t j = i + 1; j < kAllGrades.size(); ++j) {
      EXPECT_NE(grade_name(kAllGrades[i]), grade_name(kAllGrades[j]));
    }
  }
}

TEST(IqbConfig, PaperDefaultsValidate) {
  const IqbConfig config = IqbConfig::paper_defaults();
  EXPECT_TRUE(config.validate().ok());
  EXPECT_EQ(config.dataset_panel,
            (std::vector<std::string>{"ndt", "cloudflare", "ookla"}));
  EXPECT_DOUBLE_EQ(config.aggregation.percentile, 95.0);
  EXPECT_TRUE(config.thresholds.is_complete());
}

TEST(IqbConfig, JsonRoundTripPreservesEverything) {
  IqbConfig original = IqbConfig::paper_defaults();
  original.aggregation.percentile = 90.0;
  original.aggregation.method = stats::QuantileMethod::kNearestRank;
  original.aggregation.orient_to_worst = false;
  original.aggregation.min_samples = 3;
  original.dataset_panel = {"ndt", "cloudflare"};
  (void)original.weights.set_use_case_weight(UseCase::kGaming, 4);
  (void)original.thresholds.set(UseCase::kGaming, Requirement::kLatency,
                                QualityLevel::kHigh, 30.0);

  auto restored = IqbConfig::from_json(original.to_json());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->thresholds, original.thresholds);
  EXPECT_EQ(restored->weights, original.weights);
  EXPECT_EQ(restored->grading, original.grading);
  EXPECT_EQ(restored->dataset_panel, original.dataset_panel);
  EXPECT_DOUBLE_EQ(restored->aggregation.percentile, 90.0);
  EXPECT_EQ(restored->aggregation.method, stats::QuantileMethod::kNearestRank);
  EXPECT_FALSE(restored->aggregation.orient_to_worst);
  EXPECT_EQ(restored->aggregation.min_samples, 3u);
}

TEST(IqbConfig, ValidateRejectsEmptyPanel) {
  IqbConfig config = IqbConfig::paper_defaults();
  config.dataset_panel.clear();
  EXPECT_FALSE(config.validate().ok());
}

TEST(IqbConfig, ValidateRejectsBadPercentile) {
  IqbConfig config = IqbConfig::paper_defaults();
  config.aggregation.percentile = 105.0;
  EXPECT_FALSE(config.validate().ok());
}

TEST(IqbConfig, FromJsonRejectsMissingSections) {
  EXPECT_FALSE(IqbConfig::from_json(util::parse_json("{}").value()).ok());
  auto thresholds_only = util::parse_json(
      R"({"thresholds": {"gaming": {"latency": {"high": 50}}}})").value();
  EXPECT_FALSE(IqbConfig::from_json(thresholds_only).ok());
}

TEST(IqbConfig, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "iqb_config_test.json").string();
  IqbConfig original = IqbConfig::paper_defaults();
  ASSERT_TRUE(original.save(path).ok());
  auto loaded = IqbConfig::load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->thresholds, original.thresholds);
  EXPECT_EQ(loaded->weights, original.weights);
  std::remove(path.c_str());
}

TEST(IqbConfig, LoadMissingFileIsIoError) {
  auto loaded = IqbConfig::load("/nonexistent/iqb.json");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, util::ErrorCode::kIoError);
}

TEST(IqbConfig, LoadMalformedJsonIsParseError) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "iqb_bad_config.json").string();
  {
    std::ofstream out(path);
    out << "{ not json";
  }
  auto loaded = IqbConfig::load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, util::ErrorCode::kParseError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace iqb::core
