#include "iqb/core/weights.hpp"

#include <gtest/gtest.h>

namespace iqb::core {
namespace {

// ---- Table 1 exact values -------------------------------------------

struct Table1Row {
  UseCase use_case;
  int down, up, latency, loss;
};

class Table1Test : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1Test, PublishedWeights) {
  const Table1Row row = GetParam();
  const WeightTable table = WeightTable::paper_defaults();
  EXPECT_EQ(table.requirement_weight(row.use_case,
                                     Requirement::kDownloadThroughput),
            row.down);
  EXPECT_EQ(
      table.requirement_weight(row.use_case, Requirement::kUploadThroughput),
      row.up);
  EXPECT_EQ(table.requirement_weight(row.use_case, Requirement::kLatency),
            row.latency);
  EXPECT_EQ(table.requirement_weight(row.use_case, Requirement::kPacketLoss),
            row.loss);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable1, Table1Test,
    ::testing::Values(Table1Row{UseCase::kWebBrowsing, 3, 2, 4, 4},
                      Table1Row{UseCase::kVideoStreaming, 4, 2, 4, 4},
                      Table1Row{UseCase::kAudioStreaming, 4, 1, 3, 4},
                      Table1Row{UseCase::kVideoConferencing, 4, 4, 4, 4},
                      Table1Row{UseCase::kOnlineBackup, 4, 4, 2, 4},
                      Table1Row{UseCase::kGaming, 4, 4, 5, 4}),
    [](const ::testing::TestParamInfo<Table1Row>& info) {
      return std::string(use_case_name(info.param.use_case));
    });

TEST(WeightTable, GamingLatencyIsTheOnlyFive) {
  // Table 1's sole 5 is gaming/latency — the paper's headline example
  // of requirement importance differing per use case.
  const WeightTable table = WeightTable::paper_defaults();
  int fives = 0;
  for (UseCase use_case : kAllUseCases) {
    for (Requirement requirement : kAllRequirements) {
      if (table.requirement_weight(use_case, requirement) == 5) ++fives;
    }
  }
  EXPECT_EQ(fives, 1);
  EXPECT_EQ(table.requirement_weight(UseCase::kGaming, Requirement::kLatency), 5);
}

TEST(WeightTable, DefaultsUseCaseWeightsEqual) {
  const WeightTable table = WeightTable::paper_defaults();
  for (UseCase use_case : kAllUseCases) {
    EXPECT_EQ(table.use_case_weight(use_case), 1);
  }
}

TEST(WeightTable, DefaultDatasetWeightsEqual) {
  const WeightTable table = WeightTable::paper_defaults();
  for (const char* dataset : {"ndt", "cloudflare", "ookla"}) {
    EXPECT_EQ(table.dataset_weight(UseCase::kGaming, Requirement::kLatency,
                                   dataset),
              1);
  }
  EXPECT_EQ(table.known_datasets(),
            (std::vector<std::string>{"cloudflare", "ndt", "ookla"}));
}

TEST(WeightTable, UnsetLookupsFallBackToOne) {
  const WeightTable table;
  EXPECT_EQ(table.use_case_weight(UseCase::kGaming), 1);
  EXPECT_EQ(table.requirement_weight(UseCase::kGaming, Requirement::kLatency), 1);
  EXPECT_EQ(table.dataset_weight(UseCase::kGaming, Requirement::kLatency, "x"), 1);
}

TEST(WeightTable, RangeValidation) {
  WeightTable table;
  EXPECT_FALSE(table.set_use_case_weight(UseCase::kGaming, -1).ok());
  EXPECT_FALSE(table.set_use_case_weight(UseCase::kGaming, 6).ok());
  EXPECT_TRUE(table.set_use_case_weight(UseCase::kGaming, 0).ok());
  EXPECT_TRUE(table.set_use_case_weight(UseCase::kGaming, 5).ok());
  EXPECT_FALSE(
      table.set_requirement_weight(UseCase::kGaming, Requirement::kLatency, 7)
          .ok());
  EXPECT_FALSE(table
                   .set_dataset_weight(UseCase::kGaming, Requirement::kLatency,
                                       "ndt", -2)
                   .ok());
}

TEST(WeightTable, JsonRoundTrip) {
  WeightTable original = WeightTable::paper_defaults();
  (void)original.set_use_case_weight(UseCase::kGaming, 5);
  (void)original.set_dataset_weight(UseCase::kWebBrowsing,
                                    Requirement::kPacketLoss, "cloudflare", 3);
  auto restored = WeightTable::from_json(original.to_json());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), original);
}

TEST(WeightTable, JsonRejectsMalformedKeys) {
  auto bad_requirement_key = util::parse_json(
      R"({"requirement_weights": {"gaming": 3}})").value();
  EXPECT_FALSE(WeightTable::from_json(bad_requirement_key).ok());
  auto bad_dataset_key = util::parse_json(
      R"({"dataset_weights": {"gaming.latency": 3}})").value();
  EXPECT_FALSE(WeightTable::from_json(bad_dataset_key).ok());
  auto bad_use_case = util::parse_json(
      R"({"use_case_weights": {"flying": 3}})").value();
  EXPECT_FALSE(WeightTable::from_json(bad_use_case).ok());
  auto out_of_range = util::parse_json(
      R"({"use_case_weights": {"gaming": 9}})").value();
  EXPECT_FALSE(WeightTable::from_json(out_of_range).ok());
}

TEST(WeightTable, EmptyJsonGivesFallbackTable) {
  auto table = WeightTable::from_json(util::parse_json("{}").value());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->requirement_weight(UseCase::kGaming, Requirement::kLatency), 1);
}

}  // namespace
}  // namespace iqb::core
