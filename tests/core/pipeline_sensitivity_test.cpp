#include <gtest/gtest.h>

#include "iqb/core/pipeline.hpp"
#include "iqb/core/sensitivity.hpp"
#include "iqb/datasets/synthetic.hpp"

namespace iqb::core {
namespace {

/// Shared fixture: a two-region synthetic store (one excellent, one
/// poor) plus the paper-default pipeline.
class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(2025);
    datasets::SyntheticConfig config;
    config.records_per_dataset = 150;

    datasets::RegionProfile good;
    good.region = "good_fiber";
    good.median_download_mbps = 500.0;
    good.upload_ratio = 0.9;
    good.base_latency_ms = 5.0;
    good.lossy_test_fraction = 0.02;

    datasets::RegionProfile bad;
    bad.region = "bad_dsl";
    bad.median_download_mbps = 8.0;
    bad.upload_ratio = 0.1;
    bad.base_latency_ms = 60.0;
    bad.latency_mu = 3.0;
    bad.lossy_test_fraction = 0.7;
    bad.loss_mu = -4.0;

    auto panel = datasets::default_dataset_panel();
    store_.add_all(
        datasets::generate_region_records(good, panel, config, rng));
    store_.add_all(datasets::generate_region_records(bad, panel, config, rng));
  }

  datasets::RecordStore store_;
};

TEST_F(PipelineTest, ScoresEveryRegion) {
  Pipeline pipeline(IqbConfig::paper_defaults());
  auto output = pipeline.run(store_);
  ASSERT_EQ(output.results.size(), 2u);
  EXPECT_TRUE(output.skipped.empty());
  EXPECT_GT(output.aggregates.size(), 0u);
}

TEST_F(PipelineTest, GoodRegionOutscoresBadRegion) {
  Pipeline pipeline(IqbConfig::paper_defaults());
  auto output = pipeline.run(store_);
  ASSERT_EQ(output.results.size(), 2u);
  const RegionResult* good = nullptr;
  const RegionResult* bad = nullptr;
  for (const auto& result : output.results) {
    (result.region == "good_fiber" ? good : bad) = &result;
  }
  ASSERT_NE(good, nullptr);
  ASSERT_NE(bad, nullptr);
  EXPECT_GT(good->high.iqb_score, bad->high.iqb_score + 0.3);
  EXPECT_GT(good->minimum.iqb_score, bad->minimum.iqb_score);
  EXPECT_LT(static_cast<int>(good->grade), static_cast<int>(bad->grade));
}

TEST_F(PipelineTest, MinimumAtLeastHighEverywhere) {
  Pipeline pipeline(IqbConfig::paper_defaults());
  auto output = pipeline.run(store_);
  for (const auto& result : output.results) {
    EXPECT_GE(result.minimum.iqb_score, result.high.iqb_score - 1e-12)
        << result.region;
  }
}

TEST_F(PipelineTest, OoklaLossGapProducesCoverageHandling) {
  Pipeline pipeline(IqbConfig::paper_defaults());
  auto output = pipeline.run(store_);
  for (const auto& result : output.results) {
    // Ookla publishes no loss, so loss cells exist only for ndt and
    // cloudflare — but loss requirements must still be scored.
    for (Requirement requirement : kAllRequirements) {
      EXPECT_TRUE(result.high.requirement_scores.count(
          {UseCase::kGaming, requirement}))
          << requirement_name(requirement);
    }
    EXPECT_FALSE(
        output.aggregates.contains(result.region, "ookla",
                                   datasets::Metric::kLoss));
  }
}

TEST_F(PipelineTest, RegionAggregatesAttached) {
  Pipeline pipeline(IqbConfig::paper_defaults());
  auto output = pipeline.run(store_);
  for (const auto& result : output.results) {
    EXPECT_FALSE(result.aggregates.empty());
    for (const auto& cell : result.aggregates) {
      EXPECT_EQ(cell.region, result.region);
    }
  }
}

TEST_F(PipelineTest, EmptyStoreProducesNothing) {
  Pipeline pipeline(IqbConfig::paper_defaults());
  datasets::RecordStore empty;
  auto output = pipeline.run(empty);
  EXPECT_TRUE(output.results.empty());
  EXPECT_TRUE(output.skipped.empty());
}

TEST_F(PipelineTest, UnknownRegionScoreIsError) {
  Pipeline pipeline(IqbConfig::paper_defaults());
  auto output = pipeline.run(store_);
  EXPECT_FALSE(pipeline.score_region(output.aggregates, "atlantis").ok());
}

TEST_F(PipelineTest, StricterPercentileNeverRaisesScore) {
  // Aggregating at a stricter (worse-tail) percentile can only keep or
  // lower the score of every region.
  IqbConfig lax = IqbConfig::paper_defaults();
  lax.aggregation.percentile = 50.0;
  IqbConfig strict = IqbConfig::paper_defaults();
  strict.aggregation.percentile = 99.0;
  auto lax_output = Pipeline(lax).run(store_);
  auto strict_output = Pipeline(strict).run(store_);
  ASSERT_EQ(lax_output.results.size(), strict_output.results.size());
  for (std::size_t i = 0; i < lax_output.results.size(); ++i) {
    EXPECT_GE(lax_output.results[i].high.iqb_score,
              strict_output.results[i].high.iqb_score - 1e-12);
  }
}

// ---------------- sensitivity ----------------------------------------

TEST_F(PipelineTest, SensitivityBaselineMatchesPipeline) {
  const IqbConfig config = IqbConfig::paper_defaults();
  SensitivityAnalyzer analyzer(config, store_);
  auto report = analyzer.analyze("good_fiber");
  ASSERT_TRUE(report.ok());
  auto output = Pipeline(config).run(store_);
  for (const auto& result : output.results) {
    if (result.region == "good_fiber") {
      EXPECT_NEAR(report->baseline_score, result.high.iqb_score, 1e-12);
    }
  }
}

TEST_F(PipelineTest, SensitivityUnknownRegionFails) {
  SensitivityAnalyzer analyzer(IqbConfig::paper_defaults(), store_);
  EXPECT_FALSE(analyzer.analyze("atlantis").ok());
}

TEST_F(PipelineTest, WeightPerturbationsAreBounded) {
  SensitivityAnalyzer analyzer(IqbConfig::paper_defaults(), store_);
  auto report = analyzer.analyze("bad_dsl");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->weight_perturbations.empty());
  for (const auto& perturbation : report->weight_perturbations) {
    EXPECT_NEAR(perturbation.score, report->baseline_score,
                0.25)  // ±1 on one weight cannot move a 24-weight sum far
        << use_case_name(perturbation.use_case) << "/"
        << requirement_name(perturbation.requirement);
    EXPECT_NEAR(perturbation.shift,
                perturbation.score - report->baseline_score, 1e-12);
  }
}

TEST_F(PipelineTest, LeaveOneDatasetOutProducesThreeAblations) {
  SensitivityAnalyzer analyzer(IqbConfig::paper_defaults(), store_);
  auto report = analyzer.analyze("good_fiber");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->dataset_ablations.size(), 3u);
  for (const auto& ablation : report->dataset_ablations) {
    EXPECT_GE(ablation.score, 0.0);
    EXPECT_LE(ablation.score, 1.0);
  }
}

TEST_F(PipelineTest, PercentileSweepIsMonotoneNonIncreasing) {
  SensitivityAnalyzer analyzer(IqbConfig::paper_defaults(), store_);
  auto report = analyzer.analyze("bad_dsl");
  ASSERT_TRUE(report.ok());
  ASSERT_GE(report->percentile_sweep.size(), 3u);
  for (std::size_t i = 1; i < report->percentile_sweep.size(); ++i) {
    EXPECT_LE(report->percentile_sweep[i].score,
              report->percentile_sweep[i - 1].score + 1e-12);
  }
}

TEST_F(PipelineTest, ThresholdScalingMovesScoresInExpectedDirection) {
  SensitivityAnalyzer analyzer(IqbConfig::paper_defaults(), store_);
  auto report = analyzer.analyze("bad_dsl");
  ASSERT_TRUE(report.ok());
  // Scaling latency thresholds UP (more lenient) must not lower the
  // score; scaling throughput thresholds UP (more demanding) must not
  // raise it.
  for (const auto& point : report->threshold_scaling) {
    if (point.factor <= 1.0) continue;
    if (point.requirement == Requirement::kLatency ||
        point.requirement == Requirement::kPacketLoss) {
      EXPECT_GE(point.shift, -1e-12)
          << requirement_name(point.requirement) << " x" << point.factor;
    } else {
      EXPECT_LE(point.shift, 1e-12)
          << requirement_name(point.requirement) << " x" << point.factor;
    }
  }
}

}  // namespace
}  // namespace iqb::core
