// Fleet end-to-end chaos tests: two region-partitioned shard daemons
// behind the coordinator, with a fault-injection proxy on one shard.
//
// The acceptance contract under test:
//   * zero faults  -> the coordinator's /scores is byte-identical to
//     a single daemon over the union of the shards' records;
//   * one of two shards blackholed -> /scores still serves a
//     well-formed document within the cycle deadline, the lost
//     shard's regions are demoted to confidence tier C, /readyz says
//     "degraded";
//   * fault cleared -> tier A and a 200 /readyz within two cycles.
#include "iqb/cli/coordinator.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "iqb/cli/daemon.hpp"
#include "iqb/datasets/io.hpp"
#include "iqb/datasets/synthetic.hpp"
#include "iqb/util/json.hpp"
#include "../testsupport/chaos_proxy.hpp"
#include "../testsupport/http_get.hpp"

namespace iqb::cli {
namespace {

using testsupport::ChaosProxy;

const std::vector<std::string> kShardARegions = {"metro_fiber",
                                                 "suburban_cable",
                                                 "urban_lte"};
const std::vector<std::string> kShardBRegions = {"small_town_dsl",
                                                 "rural_wisp",
                                                 "remote_satellite"};

class FleetChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    records_path_ =
        (std::filesystem::temp_directory_path() /
         ("iqb_fleet_test_records_" + std::to_string(getpid()) + ".csv"))
            .string();
    util::Rng rng(1234);
    datasets::RecordStore store;
    datasets::SyntheticConfig config;
    config.records_per_dataset = 30;
    config.base_time = util::Timestamp::parse("2025-03-01").value();
    config.spacing_s = 3600;
    for (const auto& profile : datasets::example_region_profiles()) {
      store.add_all(datasets::generate_region_records(
          profile, datasets::default_dataset_panel(), config, rng));
    }
    ASSERT_TRUE(
        datasets::write_records_csv(records_path_, store.records()).ok());
  }

  static void TearDownTestSuite() { std::remove(records_path_.c_str()); }

  static DaemonOptions shard_options(std::vector<std::string> regions) {
    DaemonOptions options;
    options.records_path = records_path_;
    options.regions = std::move(regions);
    options.port = 0;
    options.interval_ms = 200;
    options.poll_ms = 20;
    options.watch_files = false;
    return options;
  }

  /// The reference document: one daemon over all records.
  static std::string single_daemon_scores() {
    WatchDaemon daemon(shard_options({}));
    std::ostringstream err;
    EXPECT_TRUE(daemon.run_cycle(err)) << err.str();
    const auto snapshot = daemon.server().latest();
    EXPECT_NE(snapshot, nullptr);
    return snapshot ? snapshot->scores_json : std::string();
  }

  static CoordinatorOptions coordinator_options(std::uint16_t port_a,
                                                std::uint16_t port_b) {
    CoordinatorOptions options;
    options.shards = {{"a", "127.0.0.1", port_a}, {"b", "127.0.0.1", port_b}};
    options.port = 0;
    options.connect_timeout_ms = 200;
    options.io_timeout_ms = 200;
    options.total_deadline_ms = 500;
    options.hedge_delay_ms = 0;  // determinism: no racing second fetches
    options.retry_sleep_scale = 0.02;
    return options;
  }

  static std::string records_path_;
};

std::string FleetChaosTest::records_path_;

/// All regions named in a rendered scores document.
std::set<std::string> score_regions(const std::string& scores_json) {
  std::set<std::string> regions;
  auto parsed = util::parse_json(scores_json);
  if (!parsed.ok()) return regions;
  auto list = parsed->get_array("regions");
  if (!list.ok()) return regions;
  for (const util::JsonValue& entry : list.value()) {
    auto region = entry.get_string("region");
    if (region.ok()) regions.insert(region.value());
  }
  return regions;
}

TEST_F(FleetChaosTest, ZeroFaultFleetIsByteIdenticalToSingleDaemon) {
  WatchDaemon shard_a(shard_options(kShardARegions));
  WatchDaemon shard_b(shard_options(kShardBRegions));
  std::ostringstream err;
  ASSERT_TRUE(shard_a.run_cycle(err)) << err.str();
  ASSERT_TRUE(shard_b.run_cycle(err)) << err.str();
  ASSERT_TRUE(shard_a.server().start().ok());
  ASSERT_TRUE(shard_b.server().start().ok());

  CoordinatorDaemon coordinator(
      coordinator_options(shard_a.server().port(), shard_b.server().port()));
  ASSERT_TRUE(coordinator.run_cycle(err)) << err.str();

  const auto snapshot = coordinator.server().latest();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_FALSE(snapshot->tier_c);
  EXPECT_EQ(snapshot->scores_json, single_daemon_scores())
      << "fused fleet output must be byte-identical to one daemon over "
         "the union of the shards' records";
  EXPECT_EQ(coordinator.partial_cycles(), 0u);
}

TEST_F(FleetChaosTest, BlackholedShardDegradesToTierCAndRecovers) {
  WatchDaemon shard_a(shard_options(kShardARegions));
  WatchDaemon shard_b(shard_options(kShardBRegions));
  std::ostringstream err;
  ASSERT_TRUE(shard_a.run_cycle(err)) << err.str();
  ASSERT_TRUE(shard_b.run_cycle(err)) << err.str();
  ASSERT_TRUE(shard_a.server().start().ok());
  ASSERT_TRUE(shard_b.server().start().ok());

  ChaosProxy::Options proxy_options;
  proxy_options.upstream_port = shard_b.server().port();
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.start());

  CoordinatorDaemon coordinator(
      coordinator_options(shard_a.server().port(), proxy.port()));

  // Healthy first cycle (through the proxy in pass mode) so shard b
  // has a cached last-good payload to degrade to.
  ASSERT_TRUE(coordinator.run_cycle(err)) << err.str();
  {
    const auto ready = coordinator.server().handle({"GET", "/readyz"});
    EXPECT_EQ(ready.status, 200);
    EXPECT_NE(ready.body.find("\"ready\""), std::string::npos);
  }
  const std::string healthy_scores =
      coordinator.server().latest()->scores_json;

  // Fault: shard b blackholed. The cycle must complete (bounded by
  // the fetch deadlines), keep serving all six regions, and demote
  // shard b's regions to tier C.
  proxy.set_mode(ChaosProxy::Mode::kBlackhole);
  ASSERT_TRUE(coordinator.run_cycle(err)) << err.str();

  const auto degraded = coordinator.server().latest();
  ASSERT_NE(degraded, nullptr);
  EXPECT_TRUE(degraded->tier_c);
  const auto regions = score_regions(degraded->scores_json);
  EXPECT_EQ(regions, score_regions(healthy_scores))
      << "a well-formed, complete-looking document: no region vanishes";
  for (const std::string& region : kShardBRegions) {
    EXPECT_NE(std::find(degraded->tier_c_regions.begin(),
                        degraded->tier_c_regions.end(), region),
              degraded->tier_c_regions.end())
        << region << " should be demoted to tier C";
  }
  for (const std::string& region : kShardARegions) {
    EXPECT_EQ(std::find(degraded->tier_c_regions.begin(),
                        degraded->tier_c_regions.end(), region),
              degraded->tier_c_regions.end())
        << region << " is served fresh and must keep its tier";
  }
  EXPECT_NE(degraded->scores_json.find("shard:b"), std::string::npos)
      << "the silent shard is named in the degradation report";
  {
    const auto ready = coordinator.server().handle({"GET", "/readyz"});
    EXPECT_EQ(ready.status, 503);
    EXPECT_NE(ready.body.find("\"degraded\""), std::string::npos);
    EXPECT_NE(ready.body.find("\"shards\""), std::string::npos);
  }
  EXPECT_GE(coordinator.partial_cycles(), 1u);

  // Recovery: within two cycles of the fault clearing the fleet is
  // back at tier A and /readyz is 200 again.
  proxy.set_mode(ChaosProxy::Mode::kPass);
  bool recovered = false;
  for (int cycle = 0; cycle < 2 && !recovered; ++cycle) {
    ASSERT_TRUE(coordinator.run_cycle(err)) << err.str();
    recovered = !coordinator.server().latest()->tier_c;
  }
  EXPECT_TRUE(recovered) << "fleet must return to tier A within two "
                            "cycles of the fault clearing";
  {
    const auto ready = coordinator.server().handle({"GET", "/readyz"});
    EXPECT_EQ(ready.status, 200);
  }
  EXPECT_EQ(coordinator.server().latest()->scores_json, healthy_scores)
      << "recovered output matches the healthy fleet's bytes";

  proxy.stop();
}

TEST_F(FleetChaosTest, CoordinatorServesWhileOnlyOneShardEverAnswered) {
  WatchDaemon shard_a(shard_options(kShardARegions));
  std::ostringstream err;
  ASSERT_TRUE(shard_a.run_cycle(err)) << err.str();
  ASSERT_TRUE(shard_a.server().start().ok());

  // Shard b's endpoint refuses every connection and never had a
  // payload: its regions are simply absent, the rest serve.
  ChaosProxy::Options proxy_options;
  proxy_options.upstream_port = 1;
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.start());
  proxy.set_mode(ChaosProxy::Mode::kRefuse);

  CoordinatorDaemon coordinator(
      coordinator_options(shard_a.server().port(), proxy.port()));
  ASSERT_TRUE(coordinator.run_cycle(err)) << err.str();

  const auto snapshot = coordinator.server().latest();
  ASSERT_NE(snapshot, nullptr);
  const auto regions = score_regions(snapshot->scores_json);
  for (const std::string& region : kShardARegions) {
    EXPECT_EQ(regions.count(region), 1u);
  }
  for (const std::string& region : kShardBRegions) {
    EXPECT_EQ(regions.count(region), 0u);
  }

  // /fleetz exposes the per-shard fetch state.
  const auto fleetz = coordinator.server().handle({"GET", "/fleetz"});
  EXPECT_EQ(fleetz.status, 200);
  EXPECT_NE(fleetz.body.find("\"shards_missing\""), std::string::npos);

  proxy.stop();
}

/// The PR's tracing acceptance criterion: one coordinator cycle under
/// chaos yields a single trace id whose merged /fleet/tracez tree
/// chains coordinator cycle span -> per-shard fetch spans (with retry
/// children for the faulted shard) -> shard-side server spans -> the
/// shard's own grafted cycle spans.
TEST_F(FleetChaosTest, FleetTracezStitchesOneTraceAcrossTheFleet) {
  WatchDaemon shard_a(shard_options(kShardARegions));
  WatchDaemon shard_b(shard_options(kShardBRegions));
  std::ostringstream err;
  ASSERT_TRUE(shard_a.run_cycle(err)) << err.str();
  ASSERT_TRUE(shard_b.run_cycle(err)) << err.str();
  ASSERT_TRUE(shard_a.server().start().ok());
  ASSERT_TRUE(shard_b.server().start().ok());

  // Shard b refuses exactly the first connection: the traced fetch
  // must show a failed retry=0 attempt and a successful retry=1.
  ChaosProxy::Options proxy_options;
  proxy_options.upstream_port = shard_b.server().port();
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.start());
  proxy.fault_first_n(ChaosProxy::Mode::kRefuse, 1);

  CoordinatorDaemon coordinator(
      coordinator_options(shard_a.server().port(), proxy.port()));
  ASSERT_TRUE(coordinator.run_cycle(err)) << err.str();

  const auto response = coordinator.server().handle({"GET", "/fleet/tracez"});
  ASSERT_EQ(response.status, 200) << response.body;
  auto document = util::parse_json(response.body);
  ASSERT_TRUE(document.ok()) << document.error().to_string();

  const std::string trace = document->get_string("trace").value();
  EXPECT_EQ(trace, coordinator.server().latest()->trace_id);

  std::set<std::string> sources;
  const auto source_list = document->get_array("sources");
  ASSERT_TRUE(source_list.ok());
  for (const util::JsonValue& source : source_list.value()) {
    sources.insert(source.as_string());
  }
  EXPECT_EQ(sources, (std::set<std::string>{"coordinator", "a", "b"}))
      << response.body;

  // Walk the flat stitched spans and index them by uid.
  struct Span {
    std::string name, source, trace, parent;
    double depth = 0;
    std::map<std::string, std::string> attributes;
  };
  std::map<std::string, Span> by_uid;
  auto spans = document->get_array("spans");
  ASSERT_TRUE(spans.ok());
  for (const util::JsonValue& entry : spans.value()) {
    Span span;
    span.name = entry.get_string("name").value();
    span.source = entry.get_string("source").value();
    span.trace = entry.get_string("trace").value();
    span.parent = entry.get_string("parent_span").value();
    span.depth = entry.get_number("depth").value();
    if (entry.contains("attributes")) {
      const auto attributes = entry.get_object("attributes");
      ASSERT_TRUE(attributes.ok());
      for (const auto& [key, value] : attributes.value()) {
        span.attributes.emplace(key, value.as_string());
      }
    }
    by_uid.emplace(entry.get_string("span").value(), std::move(span));
  }

  // One coordinator cycle root carrying the single trace id.
  auto tree = document->get_array("tree");
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->size(), 1u) << "one stitched root:\n" << response.body;
  EXPECT_EQ((*tree)[0].get_string("name").value(), "fleet.cycle");
  EXPECT_EQ((*tree)[0].get_string("source").value(), "coordinator");
  EXPECT_EQ((*tree)[0].get_string("trace").value(), trace);

  std::size_t fetch_spans = 0;
  std::size_t retried_rpcs = 0;
  std::set<std::string> server_sources;
  std::set<std::string> grafted_cycle_sources;
  for (const auto& [uid, span] : by_uid) {
    if (span.name == "fleet.fetch") {
      ++fetch_spans;
      ASSERT_NE(by_uid.find(span.parent), by_uid.end());
      EXPECT_EQ(by_uid.at(span.parent).name, "fleet.cycle");
    }
    if (span.name == "fleet.rpc") {
      ASSERT_NE(by_uid.find(span.parent), by_uid.end());
      EXPECT_EQ(by_uid.at(span.parent).name, "fleet.fetch");
      if (span.attributes.count("retry") &&
          span.attributes.at("retry") != "0") {
        ++retried_rpcs;
      }
    }
    if (span.name == "http.server") {
      // Each shard-side server span hangs under the exact rpc attempt
      // that reached it, across the process boundary.
      server_sources.insert(span.source);
      EXPECT_EQ(span.trace, trace);
      ASSERT_NE(by_uid.find(span.parent), by_uid.end()) << uid;
      EXPECT_EQ(by_uid.at(span.parent).name, "fleet.rpc");
      EXPECT_EQ(by_uid.at(span.parent).source, "coordinator");
    }
    if (span.name == "pipeline.run") {
      // The shard's own cycle trace, grafted under the server span
      // that served its payload (the shard_trace link).
      grafted_cycle_sources.insert(span.source);
      EXPECT_NE(span.trace, trace) << "a linked local trace, not " << trace;
      ASSERT_NE(by_uid.find(span.parent), by_uid.end()) << uid;
      EXPECT_EQ(by_uid.at(span.parent).name, "http.server");
      EXPECT_EQ(by_uid.at(span.parent).source, span.source);
    }
  }
  EXPECT_EQ(fetch_spans, 2u) << "one fetch span per shard";
  EXPECT_GE(retried_rpcs, 1u)
      << "the refused first attempt must be followed by a traced retry:\n"
      << response.body;
  EXPECT_EQ(server_sources, (std::set<std::string>{"a", "b"}));
  EXPECT_EQ(grafted_cycle_sources, (std::set<std::string>{"a", "b"}))
      << "both shards' cycle traces graft into the fleet tree:\n"
      << response.body;

  proxy.stop();
}

/// Telemetry off must leave the serving path byte-identical: same
/// /scores bytes as a telemetry-on daemon (whose scoring is already
/// bit-identical by contract) and no trace artifacts on the wire.
TEST_F(FleetChaosTest, TelemetryOffServesIdenticalBytesWithoutTraceHeader) {
  DaemonOptions dark_options = shard_options({});
  dark_options.telemetry = false;
  WatchDaemon dark(dark_options);
  WatchDaemon lit(shard_options({}));
  std::ostringstream err;
  ASSERT_TRUE(dark.run_cycle(err)) << err.str();
  ASSERT_TRUE(lit.run_cycle(err)) << err.str();
  ASSERT_TRUE(dark.server().start().ok());
  ASSERT_TRUE(lit.server().start().ok());

  const auto dark_scores = testsupport::http_get(dark.server().port(),
                                                 "/scores");
  const auto lit_scores = testsupport::http_get(lit.server().port(),
                                                "/scores");
  ASSERT_TRUE(dark_scores.ok);
  ASSERT_TRUE(lit_scores.ok);
  EXPECT_EQ(dark_scores.body, lit_scores.body)
      << "telemetry must not change a single scores byte";
  EXPECT_EQ(dark_scores.raw.find("X-IQB-Trace"), std::string::npos)
      << "telemetry off: no trace header, byte-identical responses";
  EXPECT_NE(lit_scores.raw.find("X-IQB-Trace: "), std::string::npos)
      << "telemetry on: the response names its trace";
}

TEST_F(FleetChaosTest, CoordinatorArgsParse) {
  auto options = parse_coordinator_args(
      {"--shards", "a=127.0.0.1:9001,b=127.0.0.1:9002", "--port", "9100",
       "--interval-ms", "500", "--hedge-ms", "80", "--max-cycles", "3",
       "--total-deadline-ms", "900"});
  ASSERT_TRUE(options.ok()) << options.error().to_string();
  ASSERT_EQ(options->shards.size(), 2u);
  EXPECT_EQ(options->shards[0].name, "a");
  EXPECT_EQ(options->shards[1].address(), "127.0.0.1:9002");
  EXPECT_EQ(options->port, 9100);
  EXPECT_EQ(options->interval_ms, 500u);
  EXPECT_EQ(options->hedge_delay_ms, 80u);
  EXPECT_EQ(options->max_cycles, 3u);
  EXPECT_EQ(options->total_deadline_ms, 900u);

  EXPECT_FALSE(parse_coordinator_args({}).ok());  // --shards required
  EXPECT_FALSE(parse_coordinator_args({"--shards", "nonsense"}).ok());
  EXPECT_FALSE(parse_coordinator_args(
                   {"--shards", "127.0.0.1:1", "--bogus", "x"})
                   .ok());

  auto durable = parse_coordinator_args(
      {"--shards", "a=127.0.0.1:9001", "--state-dir", "/tmp/iqbc",
       "--checkpoint-keep", "5", "--node-id", "coord-1"});
  ASSERT_TRUE(durable.ok()) << durable.error().to_string();
  EXPECT_EQ(durable->state_dir.value_or(""), "/tmp/iqbc");
  EXPECT_EQ(durable->checkpoint_keep, 5u);
  EXPECT_EQ(durable->node_id, "coord-1");
  EXPECT_FALSE(parse_coordinator_args({"--shards", "a=127.0.0.1:9001",
                                       "--node-id", "bad/../id"})
                   .ok());
}

TEST_F(FleetChaosTest, RestartedCoordinatorServesRecoveredFusedSnapshot) {
  const std::string state_dir =
      (std::filesystem::temp_directory_path() /
       ("iqb_coord_state_" + std::to_string(getpid())))
          .string();
  std::filesystem::remove_all(state_dir);

  WatchDaemon shard_a(shard_options(kShardARegions));
  WatchDaemon shard_b(shard_options(kShardBRegions));
  std::ostringstream err;
  ASSERT_TRUE(shard_a.run_cycle(err)) << err.str();
  ASSERT_TRUE(shard_b.run_cycle(err)) << err.str();
  ASSERT_TRUE(shard_a.server().start().ok());
  ASSERT_TRUE(shard_b.server().start().ok());

  CoordinatorOptions options =
      coordinator_options(shard_a.server().port(), shard_b.server().port());
  options.state_dir = state_dir;
  std::string fused;
  {
    CoordinatorDaemon coordinator(options);
    ASSERT_TRUE(coordinator.run_cycle(err)) << err.str();
    fused = coordinator.server().latest()->scores_json;
    EXPECT_FALSE(coordinator.serving_stale());
  }  // crash: the state dir survives

  CoordinatorDaemon second(options);
  ASSERT_TRUE(second.recover(err).ok()) << err.str();
  EXPECT_TRUE(second.serving_stale());
  const auto snapshot = second.server().latest();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_TRUE(snapshot->stale);
  EXPECT_EQ(snapshot->cycle, 1u);
  EXPECT_EQ(snapshot->scores_json, fused)
      << "the recovered fused document must serve byte-identically";

  // /readyz flags the recovered state; the checkpoint catalog is
  // served under the coordinator's node id.
  obs::HttpResponse ready = second.server().handle({"GET", "/readyz"});
  EXPECT_EQ(ready.status, 200);
  auto ready_json = util::parse_json(ready.body);
  ASSERT_TRUE(ready_json.ok());
  EXPECT_EQ(ready_json->get_string("status").value(), "recovered");
  EXPECT_TRUE(ready_json->get_bool("stale").value());
  obs::HttpResponse catalog = second.server().handle({"GET", "/checkpointz"});
  EXPECT_EQ(catalog.status, 200);
  EXPECT_NE(catalog.body.find("\"iqbc\""), std::string::npos) << catalog.body;

  // The first fresh gather replaces the stale snapshot and continues
  // the cycle sequence.
  ASSERT_TRUE(second.run_cycle(err)) << err.str();
  EXPECT_FALSE(second.serving_stale());
  EXPECT_EQ(second.server().latest()->cycle, 2u);

  std::filesystem::remove_all(state_dir);
}

TEST_F(FleetChaosTest, ShardRegionsFilterRestrictsScoring) {
  auto parsed = parse_daemon_args({"--records", records_path_, "--regions",
                                   "metro_fiber,rural_wisp"});
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  ASSERT_EQ(parsed->regions.size(), 2u);

  DaemonOptions options = shard_options({"metro_fiber"});
  WatchDaemon daemon(options);
  std::ostringstream err;
  ASSERT_TRUE(daemon.run_cycle(err)) << err.str();
  const auto snapshot = daemon.server().latest();
  ASSERT_NE(snapshot, nullptr);
  const auto regions = score_regions(snapshot->scores_json);
  EXPECT_EQ(regions, std::set<std::string>{"metro_fiber"});

  // And the shard payload carries only that region's cells.
  auto payload = fleet::parse_shard_payload(snapshot->aggregate_json);
  ASSERT_TRUE(payload.ok()) << payload.error().to_string();
  EXPECT_EQ(payload->table.regions(),
            std::vector<std::string>{"metro_fiber"});
}

}  // namespace
}  // namespace iqb::cli
