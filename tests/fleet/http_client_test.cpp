// obs::HttpClient tests: the happy path against a real HttpServer,
// and every deadline against a misbehaving peer (refused, blackholed,
// dripping, resetting) via the chaos proxy.
#include "iqb/obs/http_client.hpp"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>

#include "iqb/obs/http_server.hpp"
#include "iqb/obs/trace.hpp"
#include "../testsupport/chaos_proxy.hpp"

namespace iqb::obs {
namespace {

using testsupport::ChaosProxy;
using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_ms(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            start)
          .count());
}

HttpClient::Options fast_options() {
  HttpClient::Options options;
  options.connect_timeout_ms = 300;
  options.io_timeout_ms = 300;
  options.total_deadline_ms = 800;
  return options;
}

class HttpClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HttpServer::Options options;
    options.port = 0;
    server_ = std::make_unique<HttpServer>(
        options, [](const HttpRequest& request) -> HttpResponse {
          if (request.path == "/hello") {
            return {200, "text/plain", "hi there"};
          }
          if (request.path == "/big") {
            return {200, "text/plain", std::string(256 * 1024, 'x')};
          }
          return {404, "application/json", "{\"status\":\"error\"}\n"};
        });
    ASSERT_TRUE(server_->start().ok());
  }

  void TearDown() override { server_->stop(); }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpClientTest, GetReturnsStatusHeadersAndBody) {
  const HttpClient client(fast_options());
  auto response = client.get("127.0.0.1", server_->port(), "/hello");
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "hi there");
  EXPECT_EQ(response->header("Content-Type"), "text/plain");
  EXPECT_EQ(response->header("content-length"), "8");
}

TEST_F(HttpClientTest, HttpErrorStatusIsASuccessfulFetch) {
  const HttpClient client(fast_options());
  auto response = client.get("127.0.0.1", server_->port(), "/nope");
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response->status, 404);
}

TEST_F(HttpClientTest, LargeBodyArrivesIntact) {
  const HttpClient client(fast_options());
  auto response = client.get("127.0.0.1", server_->port(), "/big");
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response->body.size(), 256u * 1024u);
}

TEST_F(HttpClientTest, OversizedResponseIsBounded) {
  HttpClient::Options options = fast_options();
  options.max_response_bytes = 1024;
  const HttpClient client(options);
  auto response = client.get("127.0.0.1", server_->port(), "/big");
  ASSERT_FALSE(response.ok());
  EXPECT_NE(response.error().message.find("max_response_bytes"),
            std::string::npos);
}

TEST_F(HttpClientTest, RefusedConnectionFailsFast) {
  // Bind a listener, note the port, close it: connecting to that port
  // now gets RST, not a timeout.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&address),
                   sizeof(address)),
            0);
  socklen_t len = sizeof(address);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &len);
  const std::uint16_t dead_port = ntohs(address.sin_port);
  ::close(fd);

  const HttpClient client(fast_options());
  const auto start = Clock::now();
  auto response = client.get("127.0.0.1", dead_port, "/hello");
  EXPECT_FALSE(response.ok());
  EXPECT_LT(elapsed_ms(start), 500u);
}

TEST_F(HttpClientTest, BlackholedPeerObeysDeadline) {
  ChaosProxy::Options proxy_options;
  proxy_options.upstream_port = server_->port();
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.start());
  proxy.set_mode(ChaosProxy::Mode::kBlackhole);

  const HttpClient client(fast_options());
  const auto start = Clock::now();
  auto response = client.get("127.0.0.1", proxy.port(), "/hello");
  const auto took = elapsed_ms(start);
  EXPECT_FALSE(response.ok());
  EXPECT_NE(response.error().message.find("timed out"), std::string::npos)
      << response.error().message;
  // Bounded by the idle timeout (connection opens instantly, then
  // silence), well inside the total deadline + slack.
  EXPECT_LT(took, 1500u);
  proxy.stop();
}

TEST_F(HttpClientTest, DrippingPeerCannotStretchPastTotalDeadline) {
  ChaosProxy::Options proxy_options;
  proxy_options.upstream_port = server_->port();
  proxy_options.drip_interval_ms = 100;  // resets the idle clock...
  proxy_options.drip_chunk = 4;
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.start());
  proxy.set_mode(ChaosProxy::Mode::kDrip);

  // ...but /big at 4 bytes per 100 ms would take hours; the total
  // deadline is the bound the drip cannot reset.
  const HttpClient client(fast_options());
  const auto start = Clock::now();
  auto response = client.get("127.0.0.1", proxy.port(), "/big");
  const auto took = elapsed_ms(start);
  EXPECT_FALSE(response.ok());
  EXPECT_GE(took, 500u);   // it did keep reading past one idle window
  EXPECT_LT(took, 2500u);  // total deadline (800 ms) + generous slack
  proxy.stop();
}

TEST_F(HttpClientTest, MidResponseResetIsAnError) {
  ChaosProxy::Options proxy_options;
  proxy_options.upstream_port = server_->port();
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.start());
  proxy.set_mode(ChaosProxy::Mode::kReset);

  const HttpClient client(fast_options());
  auto response = client.get("127.0.0.1", proxy.port(), "/big");
  EXPECT_FALSE(response.ok());
  proxy.stop();
}

TEST_F(HttpClientTest, CustomHeadersRoundTripThroughTheServer) {
  // SetUp's server echoes nothing; use a dedicated echo server so the
  // assertion sees exactly what crossed the wire.
  HttpServer::Options options;
  options.port = 0;
  HttpServer echo(options, [](const HttpRequest& request) -> HttpResponse {
    return {200, "text/plain",
            request.header("x-iqb-test") + "|" + request.header("accept")};
  });
  ASSERT_TRUE(echo.start().ok());

  const HttpClient client(fast_options());
  auto response = client.get("127.0.0.1", echo.port(), "/echo",
                             {{"X-IQB-Test", "round trip"},
                              {"Accept", "application/json"}});
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  // Names arrive lowercased, values verbatim.
  EXPECT_EQ(response->body, "round trip|application/json");
  echo.stop();
}

TEST_F(HttpClientTest, CrlfInjectionInHeadersIsRejectedClientSide) {
  const HttpClient client(fast_options());
  // A value smuggling a request line must never reach the socket.
  auto injected = client.get(
      "127.0.0.1", server_->port(), "/hello",
      {{"X-Evil", "x\r\nGET /admin HTTP/1.1"}});
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(injected.error().code, util::ErrorCode::kInvalidArgument);

  auto bad_name = client.get("127.0.0.1", server_->port(), "/hello",
                             {{"X Evil: nope", "v"}});
  ASSERT_FALSE(bad_name.ok());
  EXPECT_EQ(bad_name.error().code, util::ErrorCode::kInvalidArgument);

  auto empty_name = client.get("127.0.0.1", server_->port(), "/hello",
                               {{"", "v"}});
  EXPECT_FALSE(empty_name.ok());
}

TEST_F(HttpClientTest, OversizedHeaderIsRejectedClientSide) {
  HttpClient::Options options = fast_options();
  options.max_header_bytes = 64;
  const HttpClient client(options);
  auto response = client.get("127.0.0.1", server_->port(), "/hello",
                             {{"X-Big", std::string(128, 'x')}});
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error().code, util::ErrorCode::kInvalidArgument);
  EXPECT_NE(response.error().message.find("max_header_bytes"),
            std::string::npos);
}

TEST_F(HttpClientTest, AmbientSpanContextIsInjectedAsTraceparent) {
  HttpServer::Options options;
  options.port = 0;
  HttpServer echo(options, [](const HttpRequest& request) -> HttpResponse {
    return {200, "text/plain", request.header(kTraceparentHeader)};
  });
  ASSERT_TRUE(echo.start().ok());
  const HttpClient client(fast_options());

  // No open span: no header is invented.
  auto bare = client.get("127.0.0.1", echo.port(), "/");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->body, "");

  // Under a ScopedSpan the context rides along automatically...
  Tracer tracer;
  tracer.set_trace_id("iqbc-7");
  tracer.set_span_uid_base(0xab00);
  std::string traced_body;
  {
    ScopedSpan span(&tracer, "caller");
    auto traced = client.get("127.0.0.1", echo.port(), "/");
    ASSERT_TRUE(traced.ok());
    traced_body = traced->body;
  }
  EXPECT_EQ(traced_body, "00-iqbc-7-000000000000ab01-01");
  const auto context = parse_traceparent(traced_body);
  ASSERT_TRUE(context.has_value());
  EXPECT_EQ(context->trace_id, "iqbc-7");
  EXPECT_EQ(context->span_uid, 0xab01u);

  // ...unless the caller supplied its own traceparent explicitly.
  {
    ScopedSpan span(&tracer, "caller2");
    auto expl = client.get("127.0.0.1", echo.port(), "/",
                           {{kTraceparentHeader, "00-own-00000000000000ff-01"}});
    ASSERT_TRUE(expl.ok());
    EXPECT_EQ(expl->body, "00-own-00000000000000ff-01");
  }
  echo.stop();
}

TEST(HttpClientPostTest, PostDeliversBodyWithContentLengthFraming) {
  HttpServer::Options options;
  options.port = 0;
  std::string seen_body;
  std::string seen_type;
  HttpServer echo(options, [&](const HttpRequest& request) -> HttpResponse {
    seen_body = request.body;
    for (const auto& [name, value] : request.headers) {
      if (name == "content-type") seen_type = value;
    }
    return {200, "text/plain", "accepted " +
                                   std::to_string(request.body.size())};
  });
  ASSERT_TRUE(echo.start().ok());

  const HttpClient client(fast_options());
  // Binary-safe: a checkpoint frame contains whatever bytes the JSON
  // payload happens to hold, plus the header's newline.
  std::string frame = "IQBCKPT 1 00000000 4\n{}";
  frame.push_back('\0');
  frame.push_back('x');
  auto response = client.post("127.0.0.1", echo.port(), "/checkpointz/3",
                              frame, "application/octet-stream");
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "accepted " + std::to_string(frame.size()));
  EXPECT_EQ(seen_body, frame);
  EXPECT_EQ(seen_type, "application/octet-stream");

  // CR/LF smuggling via the content type is refused client-side.
  auto refused = client.post("127.0.0.1", echo.port(), "/x", "b",
                             "evil\r\nX-Injected: 1");
  EXPECT_FALSE(refused.ok());
  echo.stop();
}

TEST_F(HttpClientTest, ProxyPassModeIsTransparent) {
  ChaosProxy::Options proxy_options;
  proxy_options.upstream_port = server_->port();
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.start());

  const HttpClient client(fast_options());
  auto direct = client.get("127.0.0.1", server_->port(), "/hello");
  auto proxied = client.get("127.0.0.1", proxy.port(), "/hello");
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(proxied.ok()) << proxied.error().to_string();
  EXPECT_EQ(direct->status, proxied->status);
  EXPECT_EQ(direct->body, proxied->body);
  EXPECT_EQ(proxy.connections(), 1u);
  proxy.stop();
}

}  // namespace
}  // namespace iqb::obs
