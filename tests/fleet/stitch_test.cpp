// fleet trace stitching: dump parsing, link grafting, cross-source
// clock alignment, and Chrome trace-event export.
#include "iqb/fleet/stitch.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "iqb/util/json.hpp"

namespace iqb::fleet {
namespace {

SourcedSpan make_span(const std::string& source, const std::string& trace,
                      const std::string& name, std::uint64_t uid,
                      std::uint64_t parent_uid, std::uint64_t start_ns,
                      std::uint64_t duration_ns) {
  SourcedSpan span;
  span.source = source;
  span.trace_id = trace;
  span.name = name;
  span.span_uid = uid;
  span.parent_uid = parent_uid;
  span.start_ns = start_ns;
  span.duration_ns = duration_ns;
  return span;
}

/// The canonical two-process shape: a coordinator cycle whose rpc
/// attempt caused a shard server span, which links the shard's own
/// cycle trace via shard_trace.
std::vector<SourcedSpan> fleet_spans() {
  std::vector<SourcedSpan> spans;
  // Coordinator group (clock rebased to its cycle start).
  spans.push_back(make_span("coordinator", "iqbc-1", "fleet.cycle", 0x10, 0,
                            0, 5000));
  spans.push_back(
      make_span("coordinator", "iqbc-1", "fleet.fetch", 0x11, 0x10, 100,
                3000));
  spans.push_back(
      make_span("coordinator", "iqbc-1", "fleet.rpc", 0x12, 0x11, 200, 2500));
  // Shard group for the same trace (its own rebased clock: server span
  // at t=0 locally, but caused by rpc 0x12 which started at t=200 on
  // the coordinator clock).
  SourcedSpan server =
      make_span("a", "iqbc-1", "http.server", 0x20, 0x12, 0, 2000);
  server.attributes.emplace_back("shard_trace", "iqbd-1");
  spans.push_back(server);
  // The shard's local cycle trace (a third clock group; roots have no
  // parent until grafting).
  spans.push_back(make_span("a", "iqbd-1", "cycle", 0x30, 0, 0, 1500));
  spans.push_back(make_span("a", "iqbd-1", "score", 0x31, 0x30, 400, 700));
  return spans;
}

TEST(Stitch, ParseTracezDumpRoundTripsAllFields) {
  auto document = util::parse_json(R"({
    "count": 1,
    "spans": [
      {
        "trace": "iqbd-1",
        "name": "cycle",
        "depth": 0,
        "span": "0000000000000011",
        "parent_span": "",
        "start_ns": 250,
        "duration_ns": 100,
        "attributes": {"region": "metro"}
      }
    ]
  })");
  ASSERT_TRUE(document.ok());
  auto spans = parse_tracez_dump(*document, "shard-a");
  ASSERT_TRUE(spans.ok()) << spans.error().to_string();
  ASSERT_EQ(spans->size(), 1u);
  const SourcedSpan& span = (*spans)[0];
  EXPECT_EQ(span.source, "shard-a");
  EXPECT_EQ(span.trace_id, "iqbd-1");
  EXPECT_EQ(span.name, "cycle");
  EXPECT_EQ(span.span_uid, 0x11u);
  EXPECT_EQ(span.parent_uid, 0u);
  EXPECT_EQ(span.start_ns, 250u);
  EXPECT_EQ(span.duration_ns, 100u);
  EXPECT_EQ(span.attribute("region"), "metro");
}

TEST(Stitch, ParseTracezDumpRejectsMissingOrMalformedFields) {
  auto no_spans = util::parse_json(R"({"count": 0})");
  ASSERT_TRUE(no_spans.ok());
  EXPECT_FALSE(parse_tracez_dump(*no_spans, "s").ok());

  auto bad_uid = util::parse_json(
      R"({"spans": [{"trace": "t", "name": "n", "span": "not-hex",
           "start_ns": 0, "duration_ns": 0}]})");
  ASSERT_TRUE(bad_uid.ok());
  EXPECT_FALSE(parse_tracez_dump(*bad_uid, "s").ok());

  auto missing_name = util::parse_json(
      R"({"spans": [{"trace": "t", "span": "01",
           "start_ns": 0, "duration_ns": 0}]})");
  ASSERT_TRUE(missing_name.ok());
  EXPECT_FALSE(parse_tracez_dump(*missing_name, "s").ok());
}

TEST(Stitch, GraftReparentsLinkedTraceRootsInTheDeclaringSource) {
  auto spans = fleet_spans();
  EXPECT_EQ(linked_traces(spans),
            std::vector<std::string>{"iqbd-1"});

  graft_linked_traces(spans);
  // The shard cycle root now hangs off the server span that declared
  // the link; the child keeps its parent.
  EXPECT_EQ(spans[4].parent_uid, 0x20u);
  EXPECT_EQ(spans[5].parent_uid, 0x30u);
}

TEST(Stitch, StitchResolvesCrossSourceParentsAndAlignsClocks) {
  auto spans = fleet_spans();
  graft_linked_traces(spans);
  const StitchedTrace tree = stitch(spans);

  ASSERT_EQ(tree.nodes.size(), spans.size());
  // One root: the coordinator cycle; everything chains beneath it.
  ASSERT_EQ(tree.roots.size(), 1u);
  EXPECT_EQ(spans[tree.roots[0]].name, "fleet.cycle");
  EXPECT_EQ(tree.nodes[0].depth, 0u);  // fleet.cycle
  EXPECT_EQ(tree.nodes[1].depth, 1u);  // fleet.fetch
  EXPECT_EQ(tree.nodes[2].depth, 2u);  // fleet.rpc
  EXPECT_EQ(tree.nodes[3].depth, 3u);  // http.server
  EXPECT_EQ(tree.nodes[4].depth, 4u);  // shard cycle (grafted)
  EXPECT_EQ(tree.nodes[5].depth, 5u);  // score

  // Clock alignment: the server span (local t=0) is pinned to its
  // remote parent's start (t=200 on the coordinator clock), and the
  // grafted shard cycle to the server span's start in turn.
  EXPECT_EQ(tree.nodes[3].aligned_start_ns, 200u);
  EXPECT_EQ(tree.nodes[4].aligned_start_ns, 200u);
  EXPECT_EQ(tree.nodes[5].aligned_start_ns, 600u);
}

TEST(Stitch, UnresolvableParentsBecomeRoots) {
  std::vector<SourcedSpan> spans;
  spans.push_back(make_span("s", "t", "orphan", 0x2, 0xdead, 50, 10));
  const StitchedTrace tree = stitch(spans);
  ASSERT_EQ(tree.roots.size(), 1u);
  EXPECT_EQ(tree.nodes[0].depth, 0u);
  EXPECT_EQ(tree.nodes[0].aligned_start_ns, 50u);
}

TEST(Stitch, StitchedJsonServesFlatAndTreeViews) {
  auto spans = fleet_spans();
  graft_linked_traces(spans);
  const auto document = stitched_to_json("iqbc-1", spans);

  EXPECT_EQ(document.get_string("trace").value(), "iqbc-1");
  EXPECT_EQ(document.get_number("count").value(), 6.0);
  const auto sources = document.get_array("sources");
  ASSERT_TRUE(sources.ok());
  EXPECT_EQ(sources->size(), 2u);

  // Flat spans are tracez-schema compatible: iqb_tracecat can re-parse
  // the /fleet/tracez document like any /tracez dump, sources intact.
  auto reparsed = parse_tracez_dump(document, "ignored-default");
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();
  ASSERT_EQ(reparsed->size(), 6u);
  EXPECT_EQ((*reparsed)[0].source, "coordinator");
  EXPECT_EQ((*reparsed)[0].name, "fleet.cycle");

  // The nested tree reaches the shard's scoring span.
  const auto tree = document.get_array("tree");
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->size(), 1u);
  const std::string rendered = document.dump();
  EXPECT_NE(rendered.find("\"children\""), std::string::npos);
  EXPECT_NE(rendered.find("\"score\""), std::string::npos);
}

TEST(Stitch, ChromeTraceExportIsPerfettoShaped) {
  auto spans = fleet_spans();
  graft_linked_traces(spans);
  const auto document = to_chrome_trace(spans);

  // Valid JSON that re-parses.
  auto reparsed = util::parse_json(document.dump(2));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();
  EXPECT_EQ(reparsed->get_string("displayTimeUnit").value(), "ms");
  const auto events = reparsed->get_array("traceEvents");
  ASSERT_TRUE(events.ok());
  // 2 process_name metadata events + 6 spans.
  ASSERT_EQ(events->size(), 8u);

  std::size_t metadata = 0;
  std::size_t complete = 0;
  for (const util::JsonValue& event : events.value()) {
    const std::string ph = event.get_string("ph").value();
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(event.get_string("name").value(), "process_name");
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++complete;
    EXPECT_TRUE(event.get_number("ts").ok());
    EXPECT_TRUE(event.get_number("dur").ok());
    EXPECT_TRUE(event.get_number("pid").ok());
    EXPECT_TRUE(event.get_number("tid").ok());
    EXPECT_TRUE(event.get("args")->get_string("trace").ok());
  }
  EXPECT_EQ(metadata, 2u);
  EXPECT_EQ(complete, 6u);

  // The server span lands on the shard's pid with the coordinator-
  // aligned timestamp (µs) and its stitched depth as tid.
  for (const util::JsonValue& event : events.value()) {
    if (event.get_string("ph").value() != "X") continue;
    if (event.get_string("name").value() != "http.server") continue;
    EXPECT_EQ(event.get_number("pid").value(), 1.0);
    EXPECT_EQ(event.get_number("tid").value(), 3.0);
    EXPECT_DOUBLE_EQ(event.get_number("ts").value(), 0.2);  // 200 ns
  }
}

}  // namespace
}  // namespace iqb::fleet
