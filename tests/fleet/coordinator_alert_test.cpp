// Fleet alerting end-to-end: the coordinator's built-in
// shard_unreachable rule must walk the full pending -> firing ->
// resolved lifecycle across a blackholed-then-recovered shard, with
// deterministic timing from an injected ManualClock, and the
// /fleet/alertz roll-up must name the alert while it fires.
#include "iqb/cli/coordinator.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "iqb/cli/daemon.hpp"
#include "iqb/datasets/io.hpp"
#include "iqb/datasets/synthetic.hpp"
#include "iqb/obs/clock.hpp"
#include "iqb/util/json.hpp"
#include "../testsupport/chaos_proxy.hpp"

namespace iqb::cli {
namespace {

using testsupport::ChaosProxy;

class FleetAlertTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    records_path_ =
        (std::filesystem::temp_directory_path() /
         ("iqb_fleet_alert_records_" + std::to_string(getpid()) + ".csv"))
            .string();
    util::Rng rng(4321);
    datasets::RecordStore store;
    datasets::SyntheticConfig config;
    config.records_per_dataset = 30;
    config.base_time = util::Timestamp::parse("2025-03-01").value();
    config.spacing_s = 3600;
    for (const auto& profile : datasets::example_region_profiles()) {
      store.add_all(datasets::generate_region_records(
          profile, datasets::default_dataset_panel(), config, rng));
    }
    ASSERT_TRUE(
        datasets::write_records_csv(records_path_, store.records()).ok());
  }

  static void TearDownTestSuite() { std::remove(records_path_.c_str()); }

  static DaemonOptions shard_options(std::vector<std::string> regions) {
    DaemonOptions options;
    options.records_path = records_path_;
    options.regions = std::move(regions);
    options.port = 0;
    options.interval_ms = 200;
    options.poll_ms = 20;
    options.watch_files = false;
    return options;
  }

  static std::string records_path_;
};

std::string FleetAlertTest::records_path_;

TEST_F(FleetAlertTest, ShardUnreachableWalksPendingFiringResolved) {
  WatchDaemon shard_a(shard_options({"metro_fiber", "suburban_cable"}));
  WatchDaemon shard_b(shard_options({"rural_wisp", "remote_satellite"}));
  std::ostringstream err;
  ASSERT_TRUE(shard_a.run_cycle(err)) << err.str();
  ASSERT_TRUE(shard_b.run_cycle(err)) << err.str();
  ASSERT_TRUE(shard_a.server().start().ok());
  ASSERT_TRUE(shard_b.server().start().ok());

  ChaosProxy::Options proxy_options;
  proxy_options.upstream_port = shard_b.server().port();
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.start());

  // for_ms = resolve_ms = 2 * interval_ms = 400 ms; the ManualClock
  // steps 500 ms per cycle, so every hold-down elapses in exactly one
  // extra evaluation — byte-deterministic alert timing regardless of
  // how long the fetches really take.
  obs::ManualClock clock(1'000'000'000ull);
  CoordinatorOptions options;
  options.shards = {{"a", "127.0.0.1", shard_a.server().port()},
                    {"b", "127.0.0.1", proxy.port()}};
  options.port = 0;
  options.interval_ms = 200;
  options.connect_timeout_ms = 200;
  options.io_timeout_ms = 200;
  options.total_deadline_ms = 500;
  options.hedge_delay_ms = 0;
  options.retry_sleep_scale = 0.02;
  options.clock = &clock;
  CoordinatorDaemon coordinator(options);

  // Healthy cycle: both shards fresh, nothing alerts.
  ASSERT_TRUE(coordinator.run_cycle(err)) << err.str();
  ASSERT_NE(coordinator.slo(), nullptr);
  EXPECT_TRUE(coordinator.slo()->active().empty());
  ASSERT_NE(coordinator.history(), nullptr);
  EXPECT_EQ(
      coordinator.history()->latest("fleet_shard_up", {{"shard", "b"}})->value,
      1.0);

  // Blackhole shard b: the first dark cycle opens a pending alert
  // (hold-down running), the second — past for_ms — fires it.
  proxy.set_mode(ChaosProxy::Mode::kBlackhole);
  clock.advance_ms(500);
  ASSERT_TRUE(coordinator.run_cycle(err)) << err.str();
  {
    const auto active = coordinator.slo()->active();
    ASSERT_EQ(active.size(), 1u);
    EXPECT_EQ(active[0].name, "shard_unreachable");
    EXPECT_EQ(active[0].labels, (obs::LabelSet{{"shard", "b"}}));
    EXPECT_EQ(active[0].state, obs::AlertState::kPending);
    EXPECT_EQ(active[0].since_ms, 1500u);
  }
  clock.advance_ms(500);
  ASSERT_TRUE(coordinator.run_cycle(err)) << err.str();
  {
    const auto active = coordinator.slo()->active();
    ASSERT_EQ(active.size(), 1u);
    EXPECT_EQ(active[0].state, obs::AlertState::kFiring);
    EXPECT_EQ(active[0].since_ms, 2000u);
  }

  // While firing, /fleet/alertz rolls the alert up under "fleet"
  // (sourced from the coordinator) and reports the dark shard's
  // /alertz as unreachable.
  {
    const auto response =
        coordinator.server().handle({"GET", "/fleet/alertz"});
    ASSERT_EQ(response.status, 200);
    auto document = util::parse_json(response.body);
    ASSERT_TRUE(document.ok()) << response.body;
    EXPECT_GE(document->get_number("active_total").value(), 1.0);
    auto regions = document->get("regions");
    ASSERT_TRUE(regions.ok()) << response.body;
    auto fleet_alerts = regions->get_array("fleet");
    ASSERT_TRUE(fleet_alerts.ok()) << response.body;
    bool named = false;
    for (const util::JsonValue& alert : *fleet_alerts) {
      if (alert.get_string("name").value_or("") == "shard_unreachable" &&
          alert.get_string("source").value_or("") == "coordinator" &&
          alert.get_string("state").value_or("") == "firing") {
        named = true;
      }
    }
    EXPECT_TRUE(named) << response.body;
    auto shards = document->get_array("shards");
    ASSERT_TRUE(shards.ok());
    ASSERT_EQ(shards->size(), 2u);
    EXPECT_EQ((*shards)[0].get_string("status").value(), "ok");
    EXPECT_EQ((*shards)[1].get_string("status").value(), "unreachable");
  }

  // Recovery: the breaker may spend a cycle re-probing, so allow a
  // few clock-stepped cycles for up=1 to return and the resolve
  // hold-down to elapse.
  proxy.set_mode(ChaosProxy::Mode::kPass);
  bool resolved = false;
  for (int cycle = 0; cycle < 6 && !resolved; ++cycle) {
    clock.advance_ms(500);
    ASSERT_TRUE(coordinator.run_cycle(err)) << err.str();
    resolved = coordinator.slo()->active().empty();
  }
  EXPECT_TRUE(resolved) << "shard_unreachable must resolve after recovery";

  // The recent ring holds the exact lifecycle for shard b.
  std::vector<obs::AlertState> lifecycle;
  for (const auto& transition : coordinator.slo()->recent()) {
    if (transition.alert.name == "shard_unreachable") {
      lifecycle.push_back(transition.alert.state);
    }
  }
  ASSERT_EQ(lifecycle.size(), 3u);
  EXPECT_EQ(lifecycle[0], obs::AlertState::kPending);
  EXPECT_EQ(lifecycle[1], obs::AlertState::kFiring);
  EXPECT_EQ(lifecycle[2], obs::AlertState::kResolved);

  proxy.stop();
}

TEST_F(FleetAlertTest, CoordinatorParsesSloFileFlag) {
  auto options = parse_coordinator_args(
      {"--shards", "a=127.0.0.1:9001", "--slo-file", "/tmp/fleet_slo.json"});
  ASSERT_TRUE(options.ok()) << options.error().to_string();
  ASSERT_TRUE(options->slo_file.has_value());
  EXPECT_EQ(*options->slo_file, "/tmp/fleet_slo.json");
}

TEST_F(FleetAlertTest, FleetAlertzDisabledWithoutTelemetry) {
  WatchDaemon shard_a(shard_options({"metro_fiber"}));
  std::ostringstream err;
  ASSERT_TRUE(shard_a.run_cycle(err)) << err.str();
  ASSERT_TRUE(shard_a.server().start().ok());

  CoordinatorOptions options;
  options.shards = {{"a", "127.0.0.1", shard_a.server().port()}};
  options.port = 0;
  options.telemetry = false;
  options.hedge_delay_ms = 0;
  options.retry_sleep_scale = 0.02;
  CoordinatorDaemon coordinator(options);
  ASSERT_TRUE(coordinator.run_cycle(err)) << err.str();
  EXPECT_EQ(coordinator.history(), nullptr);
  EXPECT_EQ(coordinator.slo(), nullptr);
  EXPECT_EQ(coordinator.server().handle({"GET", "/fleet/alertz"}).status,
            503);
  EXPECT_EQ(coordinator.server().handle({"GET", "/historyz"}).status, 503);
  EXPECT_EQ(coordinator.server().handle({"GET", "/alertz"}).status, 503);
}

}  // namespace
}  // namespace iqb::cli
