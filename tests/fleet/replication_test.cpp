// fleet replication: /checkpointz exchange semantics (serve, accept,
// refuse), the diff-driven Replicator push (fast path == anti-entropy
// catch-up), and newest-valid-wins peer bootstrap including a remote
// candidate rejected by CRC re-verification.
#include "iqb/fleet/replication.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "iqb/obs/http_client.hpp"
#include "iqb/obs/http_server.hpp"
#include "iqb/obs/metrics.hpp"
#include "iqb/robust/checkpoint.hpp"

namespace iqb::fleet {
namespace {

robust::Checkpoint example_checkpoint(std::uint64_t cycle) {
  robust::Checkpoint checkpoint;
  checkpoint.cycle = cycle;
  checkpoint.cycles_attempted = cycle;
  checkpoint.trace_id = "iqbd-" + std::to_string(cycle);
  checkpoint.scores_json = "{\"cycle\": " + std::to_string(cycle) + "}\n";
  return checkpoint;
}

std::filesystem::path fresh_dir(const std::string& tag) {
  const auto dir =
      std::filesystem::temp_directory_path() /
      ("iqb_repl_test_" + tag + "_" + std::to_string(getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

obs::HttpClient::Options fast_http() {
  obs::HttpClient::Options options;
  options.connect_timeout_ms = 300;
  options.io_timeout_ms = 500;
  options.total_deadline_ms = 1500;
  return options;
}

/// One daemon-shaped peer: a CheckpointStore plus a real HttpServer
/// that routes /checkpointz through a CheckpointExchange, exactly as
/// the daemons wire it.
struct ExchangePeer {
  ExchangePeer(const std::string& tag, const std::string& node_id)
      : dir(fresh_dir(tag)), store(dir, /*keep=*/5) {
    EXPECT_TRUE(store.prepare().ok());
    CheckpointExchange::Options options;
    options.node_id = node_id;
    options.state_dir = dir;
    options.keep = 5;
    exchange = std::make_unique<CheckpointExchange>(options, &store);
    obs::HttpServer::Options http;
    http.port = 0;
    server = std::make_unique<obs::HttpServer>(
        http, [this](const obs::HttpRequest& request) -> obs::HttpResponse {
          if (auto handled = exchange->handle(request)) return *handled;
          return {404, "application/json", "{\"status\":\"error\"}\n"};
        });
    EXPECT_TRUE(server->start().ok());
  }
  ~ExchangePeer() {
    server->stop();
    std::filesystem::remove_all(dir);
  }
  ShardEndpoint endpoint(const std::string& name) const {
    return {name, "127.0.0.1", server->port()};
  }

  std::filesystem::path dir;
  robust::CheckpointStore store;
  std::unique_ptr<CheckpointExchange> exchange;
  std::unique_ptr<obs::HttpServer> server;
};

TEST(ValidNodeIdTest, AcceptsSafeNamesRejectsTraversal) {
  EXPECT_TRUE(valid_node_id("iqbd"));
  EXPECT_TRUE(valid_node_id("shard-3_eu"));
  EXPECT_TRUE(valid_node_id(std::string(64, 'a')));
  EXPECT_FALSE(valid_node_id(""));
  EXPECT_FALSE(valid_node_id(std::string(65, 'a')));
  EXPECT_FALSE(valid_node_id(".."));
  EXPECT_FALSE(valid_node_id("a/b"));
  EXPECT_FALSE(valid_node_id("a.b"));
  EXPECT_FALSE(valid_node_id("sh ard"));
}

TEST(CatalogTest, RenderParseRoundTrips) {
  CheckpointCatalog catalog;
  catalog.node = "shard0";
  catalog.own = {{3, 120, "deadbeef"}, {4, 121, "cafef00d"}};
  catalog.replicas["peer1"] = {{9, 200, "0badc0de"}};
  auto parsed = parse_checkpoint_catalog(render_checkpoint_catalog(catalog));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed->node, "shard0");
  ASSERT_EQ(parsed->own.size(), 2u);
  EXPECT_EQ(parsed->own[1].cycle, 4u);
  EXPECT_EQ(parsed->own[1].bytes, 121u);
  EXPECT_EQ(parsed->own[1].crc32_hex, "cafef00d");
  ASSERT_EQ(parsed->replicas.count("peer1"), 1u);
  EXPECT_EQ(CheckpointCatalog::newest(parsed->replicas["peer1"]), 9u);
  EXPECT_EQ(CheckpointCatalog::newest({}), 0u);
}

TEST(CatalogTest, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_checkpoint_catalog("not json").ok());
  EXPECT_FALSE(parse_checkpoint_catalog("{}").ok());
  EXPECT_FALSE(
      parse_checkpoint_catalog("{\"node\":\"x\",\"own\":[{\"cycle\":0}]}")
          .ok());
}

TEST(CheckpointExchangeTest, ServesOwnCatalogAndVerifiedFrames) {
  ExchangePeer peer("serve", "alpha");
  ASSERT_TRUE(peer.store.save(example_checkpoint(7)).ok());

  const obs::HttpClient client(fast_http());
  auto catalog_response =
      client.get("127.0.0.1", peer.server->port(), "/checkpointz");
  ASSERT_TRUE(catalog_response.ok()) << catalog_response.error().to_string();
  ASSERT_EQ(catalog_response->status, 200);
  auto catalog = parse_checkpoint_catalog(catalog_response->body);
  ASSERT_TRUE(catalog.ok()) << catalog.error().to_string();
  EXPECT_EQ(catalog->node, "alpha");
  EXPECT_EQ(CheckpointCatalog::newest(catalog->own), 7u);

  auto frame = client.get("127.0.0.1", peer.server->port(), "/checkpointz/7");
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->status, 200);
  EXPECT_EQ(frame->body, example_checkpoint(7).encode());
  EXPECT_EQ(frame->header("X-IQB-Checkpoint-Cycle"), "7");

  // Missing generation and malformed path both refuse with a reason.
  EXPECT_EQ(client.get("127.0.0.1", peer.server->port(), "/checkpointz/99")
                ->status,
            404);
  EXPECT_EQ(client.get("127.0.0.1", peer.server->port(), "/checkpointz/zero")
                ->status,
            400);
}

TEST(CheckpointExchangeTest, PostStoresReplicaAndRefusesBadFrames) {
  ExchangePeer peer("post", "alpha");
  const obs::HttpClient client(fast_http());
  const std::string frame = example_checkpoint(4).encode();

  auto stored = client.post("127.0.0.1", peer.server->port(),
                            "/checkpointz/4?source=beta", frame,
                            "application/octet-stream");
  ASSERT_TRUE(stored.ok()) << stored.error().to_string();
  EXPECT_EQ(stored->status, 200);
  auto replica = peer.exchange->replica_store("beta").load_newest();
  ASSERT_TRUE(replica.ok());
  ASSERT_TRUE(replica->checkpoint.has_value());
  EXPECT_EQ(replica->checkpoint->cycle, 4u);
  // The stored replica now shows up in the catalog.
  const auto catalog = peer.exchange->catalog();
  ASSERT_EQ(catalog.replicas.count("beta"), 1u);
  EXPECT_EQ(CheckpointCatalog::newest(catalog.replicas.at("beta")), 4u);

  // A frame flipped in transit is re-verified server-side: 400, and
  // nothing lands on disk.
  std::string flipped = example_checkpoint(5).encode();
  flipped[flipped.size() - 3] ^= 0x04;
  auto refused = client.post("127.0.0.1", peer.server->port(),
                             "/checkpointz/5?source=beta", flipped,
                             "application/octet-stream");
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused->status, 400);
  EXPECT_NE(refused->body.find("rejecting imported frame"),
            std::string::npos);

  // Frame cycle must match the posted path.
  EXPECT_EQ(client
                .post("127.0.0.1", peer.server->port(),
                      "/checkpointz/6?source=beta", frame,
                      "application/octet-stream")
                ->status,
            409);
  // A peer claiming this node's own identity is refused.
  EXPECT_EQ(client
                .post("127.0.0.1", peer.server->port(),
                      "/checkpointz/4?source=alpha", frame,
                      "application/octet-stream")
                ->status,
            409);
  // Path-traversal-shaped source ids never reach the filesystem.
  EXPECT_EQ(client
                .post("127.0.0.1", peer.server->port(),
                      "/checkpointz/4?source=..", frame,
                      "application/octet-stream")
                ->status,
            400);
  EXPECT_EQ(client
                .post("127.0.0.1", peer.server->port(),
                      "/checkpointz/4?source=beta", "",
                      "application/octet-stream")
                ->status,
            400);
}

TEST(ReplicatorTest, PushesMissingFramesAndCatchesUpAfterPartition) {
  ExchangePeer source("src", "alpha");
  ExchangePeer target("dst", "bravo");
  for (std::uint64_t cycle = 1; cycle <= 3; ++cycle) {
    ASSERT_TRUE(source.store.save(example_checkpoint(cycle)).ok());
  }

  obs::MetricsRegistry metrics;
  Replicator::Options options;
  options.node_id = "alpha";
  options.peers = {target.endpoint("bravo")};
  options.http = fast_http();
  options.retry_sleep_scale = 0.0;
  Replicator replicator(options, &source.store, &metrics);

  // First sweep: the peer holds nothing, so every retained generation
  // crosses — this *is* the anti-entropy path; the fast path is just a
  // one-element diff.
  auto outcomes = replicator.replicate();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].error.empty()) << outcomes[0].error;
  EXPECT_EQ(outcomes[0].pushed, 3u);
  EXPECT_EQ(outcomes[0].lag_cycles, 0u);
  EXPECT_EQ(replicator.pushes_total(), 3u);
  auto replica = target.exchange->replica_store("alpha").load_newest();
  ASSERT_TRUE(replica.ok());
  ASSERT_TRUE(replica->checkpoint.has_value());
  EXPECT_EQ(replica->checkpoint->cycle, 3u);

  // Steady state: nothing missing, nothing pushed.
  outcomes = replicator.replicate();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].pushed, 0u);
  EXPECT_EQ(replicator.pushes_total(), 3u);

  // "Partition": two cycles land while the peer was dark; the next
  // sweep reconciles the diff without any special-casing.
  ASSERT_TRUE(source.store.save(example_checkpoint(4)).ok());
  ASSERT_TRUE(source.store.save(example_checkpoint(5)).ok());
  outcomes = replicator.replicate();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].pushed, 2u);
  EXPECT_EQ(outcomes[0].lag_cycles, 0u);
  replica = target.exchange->replica_store("alpha").load_newest();
  ASSERT_TRUE(replica.ok());
  EXPECT_EQ(replica->checkpoint->cycle, 5u);
  EXPECT_EQ(replicator.pushes_total(), 5u);
  EXPECT_EQ(replicator.push_failures_total(), 0u);
}

TEST(ReplicatorTest, DeadPeerReportsErrorAndEventuallyTripsBreaker) {
  ExchangePeer source("deadsrc", "alpha");
  ASSERT_TRUE(source.store.save(example_checkpoint(1)).ok());

  Replicator::Options options;
  options.node_id = "alpha";
  // Port 1 on localhost refuses immediately.
  options.peers = {{"ghost", "127.0.0.1", 1}};
  options.http = fast_http();
  options.retry.max_attempts = 1;
  options.retry_sleep_scale = 0.0;
  options.breaker.window_size = 4;
  options.breaker.min_samples = 2;
  options.breaker.failure_threshold = 0.5;
  Replicator replicator(options, &source.store, nullptr);

  auto first = replicator.replicate();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_FALSE(first[0].error.empty());
  EXPECT_EQ(first[0].pushed, 0u);
  // The lag is pessimistic while the peer is unreachable.
  EXPECT_EQ(first[0].lag_cycles, 1u);

  // Keep sweeping: once the failure fraction trips the breaker, sweeps
  // are denied locally instead of burning the cycle's time budget.
  for (int i = 0; i < 4; ++i) replicator.replicate();
  EXPECT_GT(replicator.breaker_denials_total(), 0u);
}

TEST(BootstrapTest, AdoptsFreshestValidPeerCopyAndImportsLocally) {
  // peer1 holds an old replica of "me", peer2 the freshest.
  ExchangePeer peer1("boot1", "peer1");
  ExchangePeer peer2("boot2", "peer2");
  ASSERT_TRUE(peer1.exchange->replica_store("me")
                  .import_frame(example_checkpoint(5).encode())
                  .ok());
  ASSERT_TRUE(peer2.exchange->replica_store("me")
                  .import_frame(example_checkpoint(9).encode())
                  .ok());

  const auto local_dir = fresh_dir("bootlocal");
  robust::CheckpointStore local(local_dir);
  ASSERT_TRUE(local.prepare().ok());

  auto recovery = bootstrap_from_peers(
      local, /*local_cycle=*/0, /*recovery_lag=*/0, "me",
      {peer1.endpoint("peer1"), peer2.endpoint("peer2")}, fast_http());
  ASSERT_TRUE(recovery.checkpoint.has_value());
  EXPECT_EQ(recovery.checkpoint->cycle, 9u);
  EXPECT_EQ(recovery.source, "peer2");
  // The adopted frame was imported: the next restart recovers locally.
  auto outcome = local.load_newest();
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->checkpoint.has_value());
  EXPECT_EQ(outcome->checkpoint->cycle, 9u);
  std::filesystem::remove_all(local_dir);
}

TEST(BootstrapTest, LocalNewerThanEveryPeerWinsAndLagGates) {
  ExchangePeer peer("bootstale", "peer1");
  ASSERT_TRUE(peer.exchange->replica_store("me")
                  .import_frame(example_checkpoint(5).encode())
                  .ok());
  const auto local_dir = fresh_dir("bootlag");
  robust::CheckpointStore local(local_dir);
  ASSERT_TRUE(local.prepare().ok());

  // Local cycle 7 beats the peer's 5: keep local, record why.
  auto recovery = bootstrap_from_peers(local, 7, 0, "me",
                                       {peer.endpoint("peer1")}, fast_http());
  EXPECT_FALSE(recovery.checkpoint.has_value());
  ASSERT_EQ(recovery.rejected.size(), 1u);
  EXPECT_EQ(recovery.rejected[0].candidate, "peer1 cycle 5");
  EXPECT_NE(recovery.rejected[0].reason.find("not newer than local cycle 7"),
            std::string::npos);

  // Local 4 with recovery_lag 2: peer's 5 is within tolerated lag.
  recovery = bootstrap_from_peers(local, 4, 2, "me",
                                  {peer.endpoint("peer1")}, fast_http());
  EXPECT_FALSE(recovery.checkpoint.has_value());

  // Local 2 with the same lag: 5 now beats 2 + 2, adopt it.
  recovery = bootstrap_from_peers(local, 2, 2, "me",
                                  {peer.endpoint("peer1")}, fast_http());
  ASSERT_TRUE(recovery.checkpoint.has_value());
  EXPECT_EQ(recovery.checkpoint->cycle, 5u);
  std::filesystem::remove_all(local_dir);
}

TEST(BootstrapTest, CrcRejectedRemoteCandidateFallsThroughWithReason) {
  // A hostile/rotted peer: its catalog advertises the freshest replica
  // of "me" (cycle 9) but the frame it serves fails CRC
  // re-verification. The honest peer's older copy must win.
  std::string corrupt_frame = example_checkpoint(9).encode();
  corrupt_frame[corrupt_frame.size() - 2] ^= 0x08;
  CheckpointCatalog lying_catalog;
  lying_catalog.node = "liar";
  lying_catalog.replicas["me"] = {{9, corrupt_frame.size(), "00000000"}};
  const std::string catalog_body = render_checkpoint_catalog(lying_catalog);

  obs::HttpServer::Options http;
  http.port = 0;
  obs::HttpServer liar(
      http, [&](const obs::HttpRequest& request) -> obs::HttpResponse {
        if (request.path == "/checkpointz") {
          return {200, "application/json", catalog_body};
        }
        return {200, "application/octet-stream", corrupt_frame};
      });
  ASSERT_TRUE(liar.start().ok());

  ExchangePeer honest("boothonest", "peer2");
  ASSERT_TRUE(honest.exchange->replica_store("me")
                  .import_frame(example_checkpoint(6).encode())
                  .ok());

  const auto local_dir = fresh_dir("bootcrc");
  robust::CheckpointStore local(local_dir);
  ASSERT_TRUE(local.prepare().ok());
  auto recovery = bootstrap_from_peers(
      local, 0, 0, "me",
      {{"liar", "127.0.0.1", liar.port()}, honest.endpoint("peer2")},
      fast_http());
  liar.stop();

  ASSERT_TRUE(recovery.checkpoint.has_value());
  EXPECT_EQ(recovery.checkpoint->cycle, 6u);
  EXPECT_EQ(recovery.source, "peer2");
  bool saw_crc_rejection = false;
  for (const RejectedCandidate& rejected : recovery.rejected) {
    if (rejected.candidate == "liar cycle 9" &&
        rejected.reason.find("rejecting imported frame") !=
            std::string::npos) {
      saw_crc_rejection = true;
    }
  }
  EXPECT_TRUE(saw_crc_rejection);
  // The refused frame never landed in the local store.
  EXPECT_FALSE(std::filesystem::exists(local.path_for_cycle(9)));
  std::filesystem::remove_all(local_dir);
}

}  // namespace
}  // namespace iqb::fleet
