// FleetFetcher tests: fresh fetches, last-good caching on failure,
// hedged requests racing a blackholed first attempt, retry accounting
// and the per-shard circuit breaker.
#include "iqb/fleet/fetcher.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "iqb/obs/export.hpp"
#include "iqb/obs/http_server.hpp"
#include "iqb/obs/metrics.hpp"
#include "iqb/obs/trace.hpp"
#include "../testsupport/chaos_proxy.hpp"

namespace iqb::fleet {
namespace {

using testsupport::ChaosProxy;

ShardPayload make_payload(std::uint64_t cycle, const std::string& region) {
  ShardPayload payload;
  payload.cycle = cycle;
  payload.trace_id = "t-" + std::to_string(cycle);
  datasets::AggregateCell cell;
  cell.region = region;
  cell.dataset = "fcc_mba";
  cell.metric = datasets::Metric::kDownload;
  cell.value = 100.0 + static_cast<double>(cycle);
  cell.sample_count = 10;
  payload.table.put(cell);
  return payload;
}

/// A stand-in shard: serves a fixed payload on /shard/aggregate.
class FakeShard {
 public:
  explicit FakeShard(ShardPayload payload)
      : body_(serialize_shard_payload(payload)) {
    obs::HttpServer::Options options;
    options.port = 0;
    server_ = std::make_unique<obs::HttpServer>(
        options, [this](const obs::HttpRequest& request) -> obs::HttpResponse {
          if (request.path == "/shard/aggregate") {
            return {200, "application/json", body_};
          }
          return {404, "application/json", "{}"};
        });
  }
  bool start() { return server_->start().ok(); }
  void stop() { server_->stop(); }
  std::uint16_t port() const { return server_->port(); }

 private:
  std::string body_;
  std::unique_ptr<obs::HttpServer> server_;
};

FleetFetcher::Options fast_options(std::vector<ShardEndpoint> shards) {
  FleetFetcher::Options options;
  options.shards = std::move(shards);
  options.http.connect_timeout_ms = 200;
  options.http.io_timeout_ms = 200;
  options.http.total_deadline_ms = 500;
  options.hedge_delay_ms = 0;          // hedging off unless a test opts in
  options.retry_sleep_scale = 0.02;    // jittered delays, tiny wall time
  return options;
}

TEST(FleetFetcher, FetchesFreshPayloadsFromEveryShard) {
  FakeShard a(make_payload(7, "metro_fiber"));
  FakeShard b(make_payload(9, "rural_wisp"));
  ASSERT_TRUE(a.start());
  ASSERT_TRUE(b.start());

  obs::MetricsRegistry metrics;
  FleetFetcher fetcher(
      fast_options({{"a", "127.0.0.1", a.port()},
                    {"b", "127.0.0.1", b.port()}}),
      &metrics);
  auto views = fetcher.fetch_all();
  ASSERT_EQ(views.size(), 2u);
  ASSERT_TRUE(views[0].payload.has_value());
  ASSERT_TRUE(views[1].payload.has_value());
  EXPECT_FALSE(views[0].stale);
  EXPECT_FALSE(views[1].stale);
  EXPECT_EQ(views[0].payload->cycle, 7u);
  EXPECT_EQ(views[1].payload->cycle, 9u);

  auto status = fetcher.status();
  ASSERT_EQ(status.size(), 2u);
  EXPECT_TRUE(status[0].up);
  EXPECT_TRUE(status[1].up);
  EXPECT_EQ(status[0].last_cycle, 7u);

  a.stop();
  b.stop();
}

TEST(FleetFetcher, FailedShardServedFromLastGoodAndMarkedStale) {
  FakeShard shard(make_payload(3, "metro_fiber"));
  ASSERT_TRUE(shard.start());

  ChaosProxy::Options proxy_options;
  proxy_options.upstream_port = shard.port();
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.start());

  FleetFetcher fetcher(fast_options({{"s", "127.0.0.1", proxy.port()}}));
  auto fresh = fetcher.fetch_all();
  ASSERT_TRUE(fresh[0].payload.has_value());
  EXPECT_FALSE(fresh[0].stale);

  proxy.set_mode(ChaosProxy::Mode::kBlackhole);
  auto degraded = fetcher.fetch_all();
  ASSERT_TRUE(degraded[0].payload.has_value())
      << "last-good payload should survive the fault";
  EXPECT_TRUE(degraded[0].stale);
  EXPECT_EQ(degraded[0].payload->cycle, 3u);
  EXPECT_FALSE(degraded[0].error.empty());
  EXPECT_GE(fetcher.retries_total(), 1u);

  auto status = fetcher.status();
  EXPECT_FALSE(status[0].up);
  EXPECT_GE(status[0].consecutive_failures, 1u);

  proxy.set_mode(ChaosProxy::Mode::kPass);
  auto recovered = fetcher.fetch_all();
  ASSERT_TRUE(recovered[0].payload.has_value());
  EXPECT_FALSE(recovered[0].stale);
  EXPECT_TRUE(fetcher.status()[0].up);

  proxy.stop();
  shard.stop();
}

TEST(FleetFetcher, ShardThatNeverAnsweredHasNoPayload) {
  ChaosProxy::Options proxy_options;
  proxy_options.upstream_port = 1;  // never used: refuse mode
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.start());
  proxy.set_mode(ChaosProxy::Mode::kRefuse);

  FleetFetcher fetcher(fast_options({{"s", "127.0.0.1", proxy.port()}}));
  auto views = fetcher.fetch_all();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_FALSE(views[0].payload.has_value());
  EXPECT_FALSE(views[0].stale);
  EXPECT_FALSE(views[0].error.empty());
  proxy.stop();
}

TEST(FleetFetcher, HedgedRequestWinsWhenFirstAttemptIsBlackholed) {
  FakeShard shard(make_payload(5, "metro_fiber"));
  ASSERT_TRUE(shard.start());

  ChaosProxy::Options proxy_options;
  proxy_options.upstream_port = shard.port();
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.start());
  // Exactly the first connection blackholes; the hedge passes.
  proxy.fault_first_n(ChaosProxy::Mode::kBlackhole, 1);

  auto options = fast_options({{"s", "127.0.0.1", proxy.port()}});
  options.hedge_delay_ms = 100;
  options.http.io_timeout_ms = 2000;      // first attempt would sit ...
  options.http.total_deadline_ms = 4000;  // ... well past the hedge
  obs::MetricsRegistry metrics;
  FleetFetcher fetcher(std::move(options), &metrics);

  auto views = fetcher.fetch_all();
  ASSERT_EQ(views.size(), 1u);
  ASSERT_TRUE(views[0].payload.has_value())
      << "hedge should have rescued the fetch: " << views[0].error;
  EXPECT_FALSE(views[0].stale);
  EXPECT_EQ(views[0].payload->cycle, 5u);
  EXPECT_GE(fetcher.hedges_total(), 1u);
  EXPECT_GE(proxy.connections(), 2u);

  proxy.stop();
  shard.stop();
}

TEST(FleetFetcher, TraceparentPropagationSurvivesRetries) {
  // A shard that records every traceparent it receives, behind a
  // proxy that refuses exactly the first connection: attempt retry=0
  // dies client-side, retry=1 reaches the shard.
  std::mutex seen_mutex;
  std::vector<std::string> seen;
  obs::HttpServer::Options server_options;
  server_options.port = 0;
  const std::string body = serialize_shard_payload(make_payload(4, "urban_lte"));
  obs::HttpServer shard(
      server_options,
      [&](const obs::HttpRequest& request) -> obs::HttpResponse {
        std::lock_guard<std::mutex> lock(seen_mutex);
        seen.push_back(request.header(obs::kTraceparentHeader));
        return {200, "application/json", body};
      });
  ASSERT_TRUE(shard.start().ok());

  ChaosProxy::Options proxy_options;
  proxy_options.upstream_port = shard.port();
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.start());
  proxy.fault_first_n(ChaosProxy::Mode::kRefuse, 1);

  FleetFetcher fetcher(fast_options({{"s", "127.0.0.1", proxy.port()}}));
  auto tracer = std::make_shared<obs::Tracer>();
  tracer->set_trace_id("iqbc-9");
  tracer->set_span_uid_base(0x5000);

  auto views = fetcher.fetch_all(tracer);
  ASSERT_TRUE(views[0].payload.has_value()) << views[0].error;
  EXPECT_GE(fetcher.retries_total(), 1u);

  // The scatter is traced: one fetch span, one rpc span per attempt
  // with its retry index, failures tagged.
  const auto spans = tracer->spans();
  std::uint64_t retried_uid = 0;
  std::size_t rpc_spans = 0;
  for (const auto& span : spans) {
    if (span.name != "fleet.rpc") continue;
    ++rpc_spans;
    for (const auto& [key, value] : span.attributes) {
      if (key == "retry" && value == "1") retried_uid = span.uid;
    }
  }
  EXPECT_GE(rpc_spans, 2u) << "one span per attempt, retries included";
  ASSERT_NE(retried_uid, 0u);

  // The shard saw exactly one request — the retry — and its
  // traceparent names that attempt's span, not the failed sibling's.
  std::lock_guard<std::mutex> lock(seen_mutex);
  ASSERT_EQ(seen.size(), 1u);
  const auto context = obs::parse_traceparent(seen[0]);
  ASSERT_TRUE(context.has_value()) << seen[0];
  EXPECT_EQ(context->trace_id, "iqbc-9");
  EXPECT_EQ(context->span_uid, retried_uid);

  proxy.stop();
  shard.stop();
}

TEST(FleetFetcher, HedgeLoserIsCountedAndItsLatencyObserved) {
  FakeShard shard(make_payload(6, "metro_fiber"));
  ASSERT_TRUE(shard.start());

  ChaosProxy::Options proxy_options;
  proxy_options.upstream_port = shard.port();
  proxy_options.latency_ms = 400;
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.start());
  // First attempt is delayed past the hedge; both eventually answer,
  // so the slow one *loses* instead of failing.
  proxy.fault_first_n(ChaosProxy::Mode::kLatency, 1);

  auto options = fast_options({{"s", "127.0.0.1", proxy.port()}});
  options.hedge_delay_ms = 50;
  options.http.io_timeout_ms = 2000;
  options.http.total_deadline_ms = 4000;
  obs::MetricsRegistry metrics;
  FleetFetcher fetcher(std::move(options), &metrics);

  auto views = fetcher.fetch_all();
  ASSERT_TRUE(views[0].payload.has_value()) << views[0].error;
  EXPECT_GE(fetcher.hedges_total(), 1u);

  // The loser finishes on its parked thread after the winning cycle
  // returned; poll briefly instead of racing it.
  for (int i = 0; i < 200 && fetcher.hedge_losses_total() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fetcher.hedge_losses_total(), 1u)
      << "the delayed first attempt's answer arrived after the hedge won";

  const std::string exported = obs::to_prometheus(metrics);
  EXPECT_NE(exported.find("fleet_hedge_losses_total 1"), std::string::npos)
      << exported;
  EXPECT_NE(exported.find(
                "iqb_http_request_duration_ms_count{code=\"hedge_loss\","
                "path=\"/shard/aggregate\"} 1"),
            std::string::npos)
      << "the loser's latency must land in the request histogram:\n"
      << exported;

  proxy.stop();
  shard.stop();
}

TEST(FleetFetcher, BreakerOpensAfterPersistentFailureAndRecovers) {
  FakeShard shard(make_payload(1, "metro_fiber"));
  ASSERT_TRUE(shard.start());
  ChaosProxy::Options proxy_options;
  proxy_options.upstream_port = shard.port();
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.start());
  proxy.set_mode(ChaosProxy::Mode::kRefuse);

  auto options = fast_options({{"s", "127.0.0.1", proxy.port()}});
  options.breaker.window_size = 4;
  options.breaker.min_samples = 2;
  options.breaker.failure_threshold = 0.5;
  options.breaker.cooldown_denials = 1;
  options.breaker.half_open_successes = 1;
  FleetFetcher fetcher(std::move(options));

  // One failing cycle records two failures (the retry episode), which
  // meets min_samples at 100% failure rate: the breaker opens.
  fetcher.fetch_all();
  EXPECT_EQ(fetcher.status()[0].breaker, robust::BreakerState::kOpen);

  // While open, fetches are denied without touching the network; the
  // denial spends the cooldown, moving the breaker to half-open.
  const auto before = proxy.connections();
  fetcher.fetch_all();  // denied (cooldown)
  EXPECT_EQ(proxy.connections(), before);
  EXPECT_GE(fetcher.breaker_denials_total(), 1u);
  EXPECT_EQ(fetcher.status()[0].breaker, robust::BreakerState::kHalfOpen);

  // Fault cleared: the half-open probe succeeds and the breaker
  // closes again.
  proxy.set_mode(ChaosProxy::Mode::kPass);
  auto views = fetcher.fetch_all();  // half-open probe
  ASSERT_TRUE(views[0].payload.has_value());
  EXPECT_FALSE(views[0].stale);
  EXPECT_EQ(fetcher.status()[0].breaker, robust::BreakerState::kClosed);

  proxy.stop();
  shard.stop();
}

TEST(FleetFetcher, FailedHalfOpenProbeReopensBeforeRecoveryCloses) {
  FakeShard shard(make_payload(2, "metro_fiber"));
  ASSERT_TRUE(shard.start());
  ChaosProxy::Options proxy_options;
  proxy_options.upstream_port = shard.port();
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.start());
  proxy.set_mode(ChaosProxy::Mode::kRefuse);

  auto options = fast_options({{"s", "127.0.0.1", proxy.port()}});
  options.breaker.window_size = 4;
  options.breaker.min_samples = 2;
  options.breaker.failure_threshold = 0.5;
  options.breaker.cooldown_denials = 1;
  options.breaker.half_open_successes = 1;
  FleetFetcher fetcher(std::move(options));

  fetcher.fetch_all();  // failures open the breaker
  EXPECT_EQ(fetcher.status()[0].breaker, robust::BreakerState::kOpen);
  fetcher.fetch_all();  // denied; cooldown spent => half-open
  EXPECT_EQ(fetcher.status()[0].breaker, robust::BreakerState::kHalfOpen);

  // The half-open probe goes to the network — and the shard is still
  // refusing, so the probe fails and the breaker snaps back to open
  // instead of readmitting a dead peer.
  const auto before = proxy.connections();
  fetcher.fetch_all();
  EXPECT_GT(proxy.connections(), before);
  EXPECT_EQ(fetcher.status()[0].breaker, robust::BreakerState::kOpen);

  // Second walk of the same ladder, with the fault cleared this time:
  // cooldown => half-open, successful probe => closed, fresh payload.
  fetcher.fetch_all();  // denied; cooldown spent => half-open
  EXPECT_EQ(fetcher.status()[0].breaker, robust::BreakerState::kHalfOpen);
  proxy.set_mode(ChaosProxy::Mode::kPass);
  auto views = fetcher.fetch_all();
  ASSERT_TRUE(views[0].payload.has_value());
  EXPECT_FALSE(views[0].stale);
  EXPECT_EQ(views[0].payload->cycle, 2u);
  EXPECT_EQ(fetcher.status()[0].breaker, robust::BreakerState::kClosed);

  proxy.stop();
  shard.stop();
}

}  // namespace
}  // namespace iqb::fleet
