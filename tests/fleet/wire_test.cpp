// Shard payload wire-format tests: exact double round-trips, version
// gating, and rejection of malformed payloads.
#include "iqb/fleet/wire.hpp"

#include <gtest/gtest.h>

#include "iqb/fleet/fetcher.hpp"

#include <cmath>
#include <cstring>
#include <string>

namespace iqb::fleet {
namespace {

datasets::AggregateCell make_cell(const std::string& region,
                                  const std::string& dataset,
                                  datasets::Metric metric, double value,
                                  std::size_t samples) {
  datasets::AggregateCell cell;
  cell.region = region;
  cell.dataset = dataset;
  cell.metric = metric;
  cell.value = value;
  cell.sample_count = samples;
  return cell;
}

TEST(FleetWire, RoundTripIsExactForAwkwardDoubles) {
  ShardPayload payload;
  payload.cycle = 42;
  payload.trace_id = "shard0-42";
  // Values chosen to stress the formatter: non-terminating binary
  // fractions, tiny magnitudes, and a near-max double.
  payload.table.put(make_cell("metro_fiber", "fcc_mba",
                              datasets::Metric::kDownload, 0.1, 40));
  payload.table.put(make_cell("metro_fiber", "fcc_mba",
                              datasets::Metric::kLatency, 1.0 / 3.0, 40));
  payload.table.put(make_cell("rural_wisp", "ookla",
                              datasets::Metric::kLoss, 5e-324, 12));
  payload.table.put(make_cell("rural_wisp", "ookla",
                              datasets::Metric::kUpload,
                              1.7976931348623157e308, 12));
  payload.health.rows_quarantined = 3;
  payload.health.open_breakers = {"feed:ookla"};

  const std::string wire = serialize_shard_payload(payload);
  auto parsed = parse_shard_payload(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();

  // Bit-exact values: the fused coordinator scores must match a
  // single daemon's byte-for-byte, so the wire cannot lose a single
  // ulp.
  const auto original = payload.table.cells();
  const auto decoded = parsed->table.cells();
  ASSERT_EQ(original.size(), decoded.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i].region, decoded[i].region);
    EXPECT_EQ(original[i].dataset, decoded[i].dataset);
    EXPECT_EQ(original[i].metric, decoded[i].metric);
    EXPECT_EQ(original[i].sample_count, decoded[i].sample_count);
    EXPECT_EQ(std::memcmp(&original[i].value, &decoded[i].value,
                          sizeof(double)),
              0)
        << original[i].region << " value drifted: " << original[i].value
        << " vs " << decoded[i].value;
  }
  EXPECT_EQ(parsed->cycle, 42u);
  EXPECT_EQ(parsed->trace_id, "shard0-42");
  EXPECT_EQ(parsed->health.rows_quarantined, 3u);
  ASSERT_EQ(parsed->health.open_breakers.size(), 1u);
  EXPECT_EQ(parsed->health.open_breakers[0], "feed:ookla");

  // Serialization is deterministic: re-serializing the parse yields
  // the same bytes.
  EXPECT_EQ(serialize_shard_payload(*parsed), wire);
}

TEST(FleetWire, RoundTripPreservesConfidenceIntervals) {
  ShardPayload payload;
  auto cell = make_cell("metro_fiber", "fcc_mba",
                        datasets::Metric::kDownload, 812.5, 40);
  stats::ConfidenceInterval ci;
  ci.point = 812.5;
  ci.lower = 790.0 + 1.0 / 7.0;
  ci.upper = 831.25;
  ci.level = 0.95;
  cell.ci = ci;
  payload.table.put(cell);

  auto parsed = parse_shard_payload(serialize_shard_payload(payload));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const auto cells = parsed->table.cells();
  ASSERT_EQ(cells.size(), 1u);
  ASSERT_TRUE(cells[0].ci.has_value());
  EXPECT_EQ(cells[0].ci->lower, ci.lower);
  EXPECT_EQ(cells[0].ci->upper, ci.upper);
  EXPECT_EQ(cells[0].ci->level, ci.level);
}

TEST(FleetWire, RejectsForeignVersion) {
  const std::string wire =
      "{\"cells\":[],\"cycle\":1,"
      "\"health\":{\"open_breakers\":[],\"rows_quarantined\":0,"
      "\"sources_retried\":0},\"trace\":\"x\",\"version\":99}";
  auto parsed = parse_shard_payload(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("version"), std::string::npos);
}

TEST(FleetWire, RejectsMalformedPayloads) {
  EXPECT_FALSE(parse_shard_payload("").ok());
  EXPECT_FALSE(parse_shard_payload("not json at all").ok());
  EXPECT_FALSE(parse_shard_payload("{\"version\":1}").ok());  // no cycle
  // Unknown metric name.
  EXPECT_FALSE(
      parse_shard_payload(
          "{\"cells\":[{\"dataset\":\"d\",\"metric\":\"warp_factor\","
          "\"region\":\"r\",\"samples\":1,\"value\":1.0}],\"cycle\":1,"
          "\"health\":{\"open_breakers\":[],\"rows_quarantined\":0,"
          "\"sources_retried\":0},\"trace\":\"x\",\"version\":1}")
          .ok());
  // Negative sample count.
  EXPECT_FALSE(
      parse_shard_payload(
          "{\"cells\":[{\"dataset\":\"d\",\"metric\":\"download_mbps\","
          "\"region\":\"r\",\"samples\":-4,\"value\":1.0}],\"cycle\":1,"
          "\"health\":{\"open_breakers\":[],\"rows_quarantined\":0,"
          "\"sources_retried\":0},\"trace\":\"x\",\"version\":1}")
          .ok());
}

TEST(FleetWire, ParseShardEndpointForms) {
  auto named = parse_shard_endpoint("eu-west=10.1.2.3:9090", 0);
  ASSERT_TRUE(named.ok());
  EXPECT_EQ(named->name, "eu-west");
  EXPECT_EQ(named->host, "10.1.2.3");
  EXPECT_EQ(named->port, 9090);

  auto anonymous = parse_shard_endpoint("127.0.0.1:8080", 3);
  ASSERT_TRUE(anonymous.ok());
  EXPECT_EQ(anonymous->name, "shard3");
  EXPECT_EQ(anonymous->address(), "127.0.0.1:8080");

  EXPECT_FALSE(parse_shard_endpoint("nohost", 0).ok());
  EXPECT_FALSE(parse_shard_endpoint("host:notaport", 0).ok());
  EXPECT_FALSE(parse_shard_endpoint("host:99999", 0).ok());
  EXPECT_FALSE(parse_shard_endpoint("=host:80", 0).ok());
}

}  // namespace
}  // namespace iqb::fleet
