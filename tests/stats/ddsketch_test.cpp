#include "iqb/stats/ddsketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "iqb/stats/percentile.hpp"
#include "iqb/util/rng.hpp"

namespace iqb::stats {
namespace {

TEST(DdSketch, EmptyReturnsZero) {
  DdSketch sketch;
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  EXPECT_EQ(sketch.count(), 0u);
}

TEST(DdSketch, SingleValueWithinRelativeError) {
  DdSketch sketch(0.01);
  sketch.add(123.0);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_NEAR(sketch.quantile(q), 123.0, 123.0 * 0.011);
  }
}

TEST(DdSketch, RejectsInvalidValues) {
  DdSketch sketch;
  sketch.add(-5.0);
  sketch.add(std::nan(""));
  sketch.add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(sketch.count(), 0u);
}

TEST(DdSketch, ZerosHandled) {
  DdSketch sketch;
  for (int i = 0; i < 90; ++i) sketch.add(0.0);
  for (int i = 0; i < 10; ++i) sketch.add(100.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  EXPECT_NEAR(sketch.quantile(0.99), 100.0, 2.0);
}

TEST(DdSketch, RelativeErrorGuaranteeOnWideRange) {
  // Latency-like data spanning 4 decades: every quantile must come
  // back within the relative accuracy bound.
  const double alpha = 0.02;
  DdSketch sketch(alpha);
  util::Rng rng(1);
  std::vector<double> sample;
  for (int i = 0; i < 100000; ++i) {
    const double x = std::pow(10.0, rng.uniform(0.0, 4.0));  // 1 .. 10^4
    sample.push_back(x);
    sketch.add(x);
  }
  std::sort(sample.begin(), sample.end());
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    const double exact =
        sample[static_cast<std::size_t>(q * (sample.size() - 1))];
    const double estimate = sketch.quantile(q);
    EXPECT_NEAR(estimate / exact, 1.0, 2.5 * alpha) << "q=" << q;
  }
}

TEST(DdSketch, TailValueErrorBeatsFixedRankError) {
  // On a heavy-tailed distribution, DDSketch's p99 relative error is
  // bounded even where the density is thin.
  DdSketch sketch(0.01);
  util::Rng rng(2);
  std::vector<double> sample;
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.pareto(1.0, 1.1);
    sample.push_back(x);
    sketch.add(x);
  }
  const double exact = percentile(sample, 99.0).value();
  EXPECT_NEAR(sketch.quantile(0.99) / exact, 1.0, 0.05);
}

TEST(DdSketch, QuantileMonotoneInQ) {
  DdSketch sketch;
  util::Rng rng(3);
  for (int i = 0; i < 20000; ++i) sketch.add(rng.lognormal(2.0, 1.0));
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = sketch.quantile(q);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST(DdSketch, MergeMatchesCombinedStream) {
  util::Rng rng(4);
  DdSketch left(0.01), right(0.01), combined(0.01);
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.lognormal(3.0, 0.8);
    combined.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_NEAR(left.quantile(q) / combined.quantile(q), 1.0, 0.001)
        << "q=" << q;
  }
}

TEST(DdSketch, BucketBudgetEnforcedByCollapse) {
  DdSketch sketch(0.01, 64);
  util::Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    sketch.add(std::pow(10.0, rng.uniform(-3.0, 6.0)));  // 9 decades
  }
  EXPECT_LE(sketch.bucket_count(), 64u);
  // Collapse biases only the LOW quantiles; the p95 must stay sound.
  // p95 of a log-uniform over [1e-3, 1e6]: 10^( -3 + 0.95*9 ) = 10^5.55.
  EXPECT_NEAR(std::log10(sketch.quantile(0.95)), 5.55, 0.1);
}

TEST(DdSketch, CountTracksAdds) {
  DdSketch sketch;
  for (int i = 1; i <= 42; ++i) sketch.add(static_cast<double>(i));
  EXPECT_EQ(sketch.count(), 42u);
}

TEST(DdSketch, MergeCountTracksMerges) {
  DdSketch sketch, other;
  other.add(1.0);
  EXPECT_EQ(sketch.merge_count(), 0u);
  sketch.merge(other);
  sketch.merge(other);
  EXPECT_EQ(sketch.merge_count(), 2u);
  EXPECT_EQ(other.merge_count(), 0u);  // only the absorber counts
}

}  // namespace
}  // namespace iqb::stats
