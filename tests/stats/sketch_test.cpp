// Streaming quantile estimators (P², GK, t-digest) validated against
// exact percentiles on common distributions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "iqb/stats/gk.hpp"
#include "iqb/stats/p2.hpp"
#include "iqb/stats/percentile.hpp"
#include "iqb/stats/tdigest.hpp"
#include "iqb/util/rng.hpp"

namespace iqb::stats {
namespace {

std::vector<double> lognormal_sample(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(rng.lognormal(3.0, 1.0));
  return out;
}

double exact_rank_error(const std::vector<double>& sorted, double estimate,
                        double q) {
  const auto rank = static_cast<double>(
      std::lower_bound(sorted.begin(), sorted.end(), estimate) -
      sorted.begin());
  return std::abs(rank / static_cast<double>(sorted.size()) - q);
}

// ---------------- P² -----------------------------------------------

TEST(P2Quantile, SmallSampleFallsBackToExact) {
  P2Quantile p2(0.5);
  p2.add(3.0);
  p2.add(1.0);
  p2.add(2.0);
  // Nearest-rank median of {1,2,3} is 2.
  EXPECT_DOUBLE_EQ(p2.value(), 2.0);
}

TEST(P2Quantile, EmptyReturnsZero) {
  P2Quantile p2(0.95);
  EXPECT_DOUBLE_EQ(p2.value(), 0.0);
  EXPECT_EQ(p2.count(), 0u);
}

TEST(P2Quantile, TracksMedianOfUniform) {
  P2Quantile p2(0.5);
  util::Rng rng(1);
  for (int i = 0; i < 100000; ++i) p2.add(rng.uniform(0.0, 10.0));
  EXPECT_NEAR(p2.value(), 5.0, 0.15);
}

TEST(P2Quantile, TracksP95OfLognormal) {
  auto sample = lognormal_sample(100000, 2);
  P2Quantile p2(0.95);
  for (double x : sample) p2.add(x);
  std::sort(sample.begin(), sample.end());
  // P² on heavy-tailed data: accept 1.5% rank error.
  EXPECT_LT(exact_rank_error(sample, p2.value(), 0.95), 0.015);
}

TEST(P2Quantile, MonotoneStreamStaysOrdered) {
  P2Quantile p2(0.9);
  for (int i = 1; i <= 1000; ++i) p2.add(static_cast<double>(i));
  EXPECT_NEAR(p2.value(), 900.0, 20.0);
}

// ---------------- GK ------------------------------------------------

TEST(GkSketch, EmptyReturnsZero) {
  GkSketch sketch(0.01);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
}

TEST(GkSketch, ExactOnTinyStreams) {
  GkSketch sketch(0.01);
  for (double x : {5.0, 1.0, 3.0}) sketch.add(x);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 5.0);
}

TEST(GkSketch, RankErrorWithinEpsilon) {
  const double epsilon = 0.01;
  auto sample = lognormal_sample(50000, 3);
  GkSketch sketch(epsilon);
  for (double x : sample) sketch.add(x);
  std::sort(sample.begin(), sample.end());
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    // Allow 2x epsilon: one epsilon from the sketch guarantee plus
    // discretization slack on ties.
    EXPECT_LT(exact_rank_error(sample, sketch.quantile(q), q), 2.0 * epsilon)
        << "q=" << q;
  }
}

TEST(GkSketch, SpaceStaysSublinear) {
  GkSketch sketch(0.01);
  util::Rng rng(4);
  for (int i = 0; i < 100000; ++i) sketch.add(rng.next_double());
  EXPECT_EQ(sketch.count(), 100000u);
  // 1/(2*0.01) * log2(0.01*1e5) ~ 500; give generous headroom but far
  // below n.
  EXPECT_LT(sketch.tuple_count(), 5000u);
}

TEST(GkSketch, MinMaxPreserved) {
  GkSketch sketch(0.05);
  util::Rng rng(5);
  double lo = 1e300, hi = -1e300;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.normal(0, 100);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    sketch.add(x);
  }
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), lo);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), hi);
}

// ---------------- t-digest ------------------------------------------

TEST(TDigest, EmptyReturnsZero) {
  TDigest digest;
  EXPECT_DOUBLE_EQ(digest.quantile(0.5), 0.0);
  EXPECT_EQ(digest.count(), 0u);
}

TEST(TDigest, SingleValue) {
  TDigest digest;
  digest.add(42.0);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(digest.quantile(q), 42.0);
  }
}

TEST(TDigest, TailAccuracyOnLognormal) {
  auto sample = lognormal_sample(100000, 6);
  TDigest digest(100.0);
  for (double x : sample) digest.add(x);
  std::sort(sample.begin(), sample.end());
  for (double q : {0.9, 0.95, 0.99, 0.999}) {
    EXPECT_LT(exact_rank_error(sample, digest.quantile(q), q), 0.005)
        << "q=" << q;
  }
}

TEST(TDigest, CompressionBoundsCentroids) {
  TDigest digest(100.0);
  util::Rng rng(7);
  for (int i = 0; i < 100000; ++i) digest.add(rng.normal(0, 1));
  EXPECT_EQ(digest.count(), 100000u);
  EXPECT_LT(digest.centroid_count(), 200u);
}

TEST(TDigest, MergePreservesQuantiles) {
  util::Rng rng(8);
  TDigest left(100.0), right(100.0), combined(100.0);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.lognormal(2.0, 0.8);
    all.push_back(x);
    combined.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), 20000u);
  EXPECT_EQ(left.merge_count(), 1u);
  EXPECT_EQ(right.merge_count(), 0u);  // only the absorber counts
  std::sort(all.begin(), all.end());
  for (double q : {0.5, 0.95}) {
    EXPECT_LT(exact_rank_error(all, left.quantile(q), q), 0.01) << "q=" << q;
  }
}

TEST(TDigest, CdfIsMonotoneAndBounded) {
  TDigest digest;
  util::Rng rng(9);
  for (int i = 0; i < 10000; ++i) digest.add(rng.normal(50, 10));
  double prev = 0.0;
  for (double x = 0.0; x <= 100.0; x += 5.0) {
    const double c = digest.cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(digest.cdf(-1000.0), 0.0);
  EXPECT_DOUBLE_EQ(digest.cdf(1000.0), 1.0);
}

TEST(TDigest, QuantileMonotoneInQ) {
  TDigest digest;
  util::Rng rng(10);
  for (int i = 0; i < 50000; ++i) digest.add(rng.pareto(1.0, 1.2));
  double prev = digest.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double v = digest.quantile(q);
    EXPECT_GE(v, prev - 1e-9);
    prev = v;
  }
}

TEST(TDigest, WeightedAdd) {
  TDigest digest;
  digest.add(1.0, 99.0);
  digest.add(100.0, 1.0);
  // 99% of the mass sits at 1.0: quantiles below the first centroid's
  // cumulative midpoint (q < 0.495) are exactly 1.0, and the median
  // interpolates only slightly above it.
  EXPECT_NEAR(digest.quantile(0.3), 1.0, 1e-9);
  EXPECT_LT(digest.quantile(0.5), 3.0);
  EXPECT_NEAR(digest.quantile(0.999), 100.0, 5.0);
  EXPECT_EQ(digest.count(), 100u);
}

/// Cross-estimator agreement: all three streaming estimators land
/// near the exact p95 on the same stream.
TEST(StreamingEstimators, AgreeOnP95) {
  auto sample = lognormal_sample(50000, 11);
  P2Quantile p2(0.95);
  GkSketch gk(0.005);
  TDigest digest;
  for (double x : sample) {
    p2.add(x);
    gk.add(x);
    digest.add(x);
  }
  const double exact = percentile(sample, 95.0).value();
  EXPECT_NEAR(p2.value() / exact, 1.0, 0.1);
  EXPECT_NEAR(gk.quantile(0.95) / exact, 1.0, 0.05);
  EXPECT_NEAR(digest.quantile(0.95) / exact, 1.0, 0.05);
}

}  // namespace
}  // namespace iqb::stats
