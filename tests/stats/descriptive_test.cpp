#include "iqb/stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "iqb/util/rng.hpp"

namespace iqb::stats {
namespace {

TEST(Summarize, BasicMoments) {
  std::vector<double> sample{2, 4, 4, 4, 5, 5, 7, 9};
  auto s = summarize(sample);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->count, 8u);
  EXPECT_DOUBLE_EQ(s->mean, 5.0);
  EXPECT_DOUBLE_EQ(s->min, 2.0);
  EXPECT_DOUBLE_EQ(s->max, 9.0);
  EXPECT_DOUBLE_EQ(s->sum, 40.0);
  // Sample variance (n-1): sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s->variance, 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s->stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summarize, EmptyIsError) {
  std::vector<double> empty;
  EXPECT_FALSE(summarize(empty).ok());
  EXPECT_FALSE(mean(empty).ok());
}

TEST(Variance, RequiresTwoSamples) {
  std::vector<double> one{1.0};
  EXPECT_FALSE(variance(one).ok());
  std::vector<double> two{1.0, 3.0};
  EXPECT_DOUBLE_EQ(variance(two).value(), 2.0);
}

TEST(Mad, RobustToOutliers) {
  std::vector<double> sample{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(median_absolute_deviation(sample).value(), 1.0);
  std::vector<double> with_outlier{1, 2, 3, 4, 1000};
  // MAD barely moves while the stddev explodes.
  EXPECT_LE(median_absolute_deviation(with_outlier).value(), 2.0);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson_correlation(x, y).value(), 1.0, 1e-12);
  std::vector<double> inverted{8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(x, inverted).value(), -1.0, 1e-12);
}

TEST(Pearson, ErrorCases) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> short_y{1, 2};
  EXPECT_FALSE(pearson_correlation(x, short_y).ok());
  std::vector<double> constant{5, 5, 5};
  EXPECT_FALSE(pearson_correlation(x, constant).ok());
  std::vector<double> one_x{1};
  std::vector<double> one_y{2};
  EXPECT_FALSE(pearson_correlation(one_x, one_y).ok());
}

TEST(OnlineStats, MatchesBatch) {
  util::Rng rng(20);
  std::vector<double> sample;
  OnlineStats online;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.lognormal(1.0, 0.5);
    sample.push_back(x);
    online.add(x);
  }
  auto batch = summarize(sample).value();
  EXPECT_EQ(online.count(), batch.count);
  EXPECT_NEAR(online.mean(), batch.mean, 1e-9);
  EXPECT_NEAR(online.variance(), batch.variance, 1e-6);
  EXPECT_DOUBLE_EQ(online.min(), batch.min);
  EXPECT_DOUBLE_EQ(online.max(), batch.max);
}

TEST(OnlineStats, MergeEqualsSingleStream) {
  util::Rng rng(21);
  OnlineStats combined, left, right;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    combined.add(x);
    (i % 3 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_NEAR(left.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), combined.variance(), 1e-6);
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(OnlineStats, VarianceZeroBelowTwoSamples) {
  OnlineStats s;
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Ewma, FirstValueInitializes) {
  Ewma ewma(0.5);
  EXPECT_FALSE(ewma.initialized());
  ewma.add(10.0);
  EXPECT_TRUE(ewma.initialized());
  EXPECT_DOUBLE_EQ(ewma.value(), 10.0);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma ewma(0.25);
  ewma.add(0.0);
  for (int i = 0; i < 100; ++i) ewma.add(8.0);
  EXPECT_NEAR(ewma.value(), 8.0, 1e-9);
}

TEST(Ewma, SmoothsSteps) {
  Ewma ewma(0.5);
  ewma.add(0.0);
  ewma.add(10.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 5.0);
  ewma.add(10.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 7.5);
}

}  // namespace
}  // namespace iqb::stats
