#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "iqb/stats/bootstrap.hpp"
#include "iqb/stats/histogram.hpp"
#include "iqb/stats/percentile.hpp"
#include "iqb/stats/reservoir.hpp"
#include "iqb/util/rng.hpp"

namespace iqb::stats {
namespace {

// ---------------- Histogram -----------------------------------------

TEST(Histogram, LinearConstruction) {
  auto h = Histogram::linear(0.0, 100.0, 10);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->bin_count(), 10u);
  EXPECT_DOUBLE_EQ(h->bin_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h->bin_upper(9), 100.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_FALSE(Histogram::linear(10.0, 10.0, 5).ok());
  EXPECT_FALSE(Histogram::linear(10.0, 5.0, 5).ok());
  EXPECT_FALSE(Histogram::linear(0.0, 1.0, 0).ok());
  EXPECT_FALSE(Histogram::logarithmic(0.0, 10.0, 5).ok());  // lo must be > 0
  EXPECT_FALSE(Histogram::logarithmic(-1.0, 10.0, 5).ok());
}

TEST(Histogram, CountsLandInCorrectBins) {
  auto h = Histogram::linear(0.0, 10.0, 10).value();
  h.add(0.5);
  h.add(5.5);
  h.add(5.7);
  h.add(9.99);
  EXPECT_EQ(h.bin_value(0), 1u);
  EXPECT_EQ(h.bin_value(5), 2u);
  EXPECT_EQ(h.bin_value(9), 1u);
  EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, UnderOverflow) {
  auto h = Histogram::linear(0.0, 10.0, 10).value();
  h.add(-1.0);
  h.add(10.0);  // upper edge is exclusive
  h.add(1e9);
  h.add(std::nan(""));
  EXPECT_EQ(h.underflow(), 2u);  // -1 and NaN
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, LogBinsGeometric) {
  auto h = Histogram::logarithmic(1.0, 1000.0, 3).value();
  EXPECT_NEAR(h.bin_upper(0), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_upper(1), 100.0, 1e-9);
  h.add(5.0);
  h.add(50.0);
  h.add(500.0);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(h.bin_value(i), 1u);
}

TEST(Histogram, QuantileApproximatesExact) {
  auto h = Histogram::linear(0.0, 100.0, 1000).value();
  util::Rng rng(30);
  std::vector<double> sample;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    sample.push_back(x);
    h.add(x);
  }
  const double exact = percentile(sample, 95.0).value();
  EXPECT_NEAR(h.quantile(0.95).value(), exact, 0.5);
}

TEST(Histogram, QuantileOnEmptyIsError) {
  auto h = Histogram::linear(0.0, 1.0, 4).value();
  EXPECT_FALSE(h.quantile(0.5).ok());
}

TEST(Histogram, MergeCompatible) {
  auto a = Histogram::linear(0.0, 10.0, 10).value();
  auto b = Histogram::linear(0.0, 10.0, 10).value();
  a.add(1.0);
  b.add(1.5);
  b.add(9.5);
  ASSERT_TRUE(a.merge(b).ok());
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bin_value(1), 2u);
}

TEST(Histogram, MergeIncompatibleFails) {
  auto a = Histogram::linear(0.0, 10.0, 10).value();
  auto b = Histogram::linear(0.0, 10.0, 20).value();
  EXPECT_FALSE(a.merge(b).ok());
  auto c = Histogram::logarithmic(1.0, 10.0, 10).value();
  EXPECT_FALSE(a.merge(c).ok());
}

TEST(Histogram, AsciiRenderingContainsBars) {
  auto h = Histogram::linear(0.0, 2.0, 2).value();
  h.add_n(0.5, 10);
  h.add(1.5);
  const std::string art = h.to_ascii(20);
  EXPECT_NE(art.find("####################"), std::string::npos);
  EXPECT_NE(art.find(" 10"), std::string::npos);
}

// ---------------- Bootstrap ------------------------------------------

TEST(Bootstrap, ErrorsOnBadInput) {
  util::Rng rng(40);
  std::vector<double> empty;
  std::vector<double> sample{1, 2, 3};
  Statistic stat = [](std::span<const double> s) { return s[0]; };
  EXPECT_FALSE(bootstrap_ci(empty, stat, rng).ok());
  EXPECT_FALSE(bootstrap_ci(sample, stat, rng, 0).ok());
  EXPECT_FALSE(bootstrap_ci(sample, stat, rng, 100, 0.0).ok());
  EXPECT_FALSE(bootstrap_ci(sample, stat, rng, 100, 1.0).ok());
  EXPECT_FALSE(bootstrap_percentile_ci(sample, 101.0, rng).ok());
}

TEST(Bootstrap, CiBracketsPointEstimate) {
  util::Rng rng(41);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(rng.lognormal(2.0, 0.6));
  auto ci = bootstrap_percentile_ci(sample, 95.0, rng, 500);
  ASSERT_TRUE(ci.ok());
  EXPECT_LE(ci->lower, ci->point);
  EXPECT_GE(ci->upper, ci->point);
  EXPECT_LT(ci->lower, ci->upper);
}

TEST(Bootstrap, TighterWithMoreData) {
  util::Rng rng(42);
  auto draw = [&rng](std::size_t n) {
    std::vector<double> s;
    for (std::size_t i = 0; i < n; ++i) s.push_back(rng.normal(10, 2));
    return s;
  };
  auto small = draw(50);
  auto large = draw(5000);
  util::Rng rng_a(43), rng_b(43);
  const double small_width =
      bootstrap_percentile_ci(small, 50.0, rng_a, 400)->upper -
      bootstrap_percentile_ci(small, 50.0, rng_b, 400)->lower;
  util::Rng rng_c(44), rng_d(44);
  const double large_width =
      bootstrap_percentile_ci(large, 50.0, rng_c, 400)->upper -
      bootstrap_percentile_ci(large, 50.0, rng_d, 400)->lower;
  EXPECT_LT(large_width, small_width);
}

TEST(Bootstrap, DeterministicGivenSeed) {
  std::vector<double> sample{1, 5, 2, 8, 3, 9, 4, 7, 6, 10};
  util::Rng rng_a(99), rng_b(99);
  auto a = bootstrap_percentile_ci(sample, 75.0, rng_a, 200);
  auto b = bootstrap_percentile_ci(sample, 75.0, rng_b, 200);
  EXPECT_DOUBLE_EQ(a->lower, b->lower);
  EXPECT_DOUBLE_EQ(a->upper, b->upper);
}

// ---------------- Reservoir ------------------------------------------

TEST(Reservoir, KeepsEverythingBelowCapacity) {
  Reservoir<int> reservoir(10);
  util::Rng rng(50);
  for (int i = 0; i < 5; ++i) reservoir.add(i, rng);
  EXPECT_EQ(reservoir.size(), 5u);
  EXPECT_EQ(reservoir.seen(), 5u);
}

TEST(Reservoir, CapsAtCapacity) {
  Reservoir<int> reservoir(10);
  util::Rng rng(51);
  for (int i = 0; i < 1000; ++i) reservoir.add(i, rng);
  EXPECT_EQ(reservoir.size(), 10u);
  EXPECT_EQ(reservoir.seen(), 1000u);
}

TEST(Reservoir, ApproximatelyUniform) {
  // Each element of a 1000-long stream should land in a 100-slot
  // reservoir with probability ~0.1; check the first-decile rate over
  // many trials.
  util::Rng rng(52);
  int early_hits = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    Reservoir<int> reservoir(100);
    for (int i = 0; i < 1000; ++i) reservoir.add(i, rng);
    for (int kept : reservoir.sample()) {
      if (kept < 100) ++early_hits;
    }
  }
  const double rate =
      static_cast<double>(early_hits) / (trials * 100.0);
  EXPECT_NEAR(rate, 0.1, 0.02);
}

TEST(Reservoir, ZeroCapacityClampedToOne) {
  Reservoir<int> reservoir(0);
  util::Rng rng(53);
  reservoir.add(7, rng);
  EXPECT_EQ(reservoir.capacity(), 1u);
  EXPECT_EQ(reservoir.size(), 1u);
}

}  // namespace
}  // namespace iqb::stats
