#include "iqb/stats/percentile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "iqb/util/rng.hpp"

namespace iqb::stats {
namespace {

TEST(Percentile, EmptyIsError) {
  std::vector<double> empty;
  auto r = percentile(empty, 95.0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, util::ErrorCode::kEmptyInput);
}

TEST(Percentile, OutOfRangePIsError) {
  std::vector<double> sample{1.0, 2.0};
  EXPECT_FALSE(percentile(sample, -1.0).ok());
  EXPECT_FALSE(percentile(sample, 100.5).ok());
}

TEST(Percentile, SingleElement) {
  std::vector<double> sample{7.0};
  for (double p : {0.0, 50.0, 95.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile(sample, p).value(), 7.0);
  }
}

TEST(Percentile, ExtremesHitMinAndMax) {
  std::vector<double> sample{5.0, 1.0, 3.0, 2.0, 4.0};
  for (QuantileMethod method :
       {QuantileMethod::kNearestRank, QuantileMethod::kLinear,
        QuantileMethod::kHazen, QuantileMethod::kMedianUnbiased,
        QuantileMethod::kNormalUnbiased}) {
    EXPECT_DOUBLE_EQ(percentile(sample, 0.0, method).value(), 1.0);
    EXPECT_DOUBLE_EQ(percentile(sample, 100.0, method).value(), 5.0);
  }
}

TEST(Percentile, LinearMatchesNumpyDefault) {
  // numpy.percentile([1..5], 95) == 4.8 (linear / R-7).
  std::vector<double> sample{1, 2, 3, 4, 5};
  EXPECT_NEAR(percentile(sample, 95.0, QuantileMethod::kLinear).value(), 4.8,
              1e-12);
  // numpy.percentile([1..4], 75) == 3.25.
  std::vector<double> four{1, 2, 3, 4};
  EXPECT_NEAR(percentile(four, 75.0, QuantileMethod::kLinear).value(), 3.25,
              1e-12);
}

TEST(Percentile, NearestRankDefinition) {
  std::vector<double> sample{10, 20, 30, 40, 50};
  // ceil(0.95*5)=5 -> 50; ceil(0.5*5)=3 -> 30; ceil(0.01*5)=1 -> 10.
  EXPECT_DOUBLE_EQ(
      percentile(sample, 95.0, QuantileMethod::kNearestRank).value(), 50.0);
  EXPECT_DOUBLE_EQ(
      percentile(sample, 50.0, QuantileMethod::kNearestRank).value(), 30.0);
  EXPECT_DOUBLE_EQ(
      percentile(sample, 1.0, QuantileMethod::kNearestRank).value(), 10.0);
}

TEST(Percentile, MethodsAgreeOnMediansOfOddSamples) {
  std::vector<double> sample{1, 2, 3, 4, 5, 6, 7};
  for (QuantileMethod method :
       {QuantileMethod::kLinear, QuantileMethod::kHazen,
        QuantileMethod::kMedianUnbiased, QuantileMethod::kNormalUnbiased}) {
    EXPECT_DOUBLE_EQ(percentile(sample, 50.0, method).value(), 4.0);
  }
}

TEST(Percentile, MethodsDisagreeOnSmallSampleTail) {
  // This is exactly why the method is configurable: small samples give
  // different p95 under different definitions.
  std::vector<double> sample{1, 2, 3, 4};
  const double linear =
      percentile(sample, 95.0, QuantileMethod::kLinear).value();
  const double nearest =
      percentile(sample, 95.0, QuantileMethod::kNearestRank).value();
  EXPECT_NE(linear, nearest);
}

TEST(Percentile, UnsortedInputHandled) {
  std::vector<double> sample{9, 1, 8, 2, 7, 3, 6, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(sample, 50.0).value(), 5.0);
}

TEST(Percentile, SortedVariantSkipsCopy) {
  std::vector<double> sorted{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 50.0).value(), 3.0);
}

TEST(Percentiles, BatchMatchesIndividual) {
  util::Rng rng(3);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(rng.lognormal(3.0, 1.0));
  const std::vector<double> ps{5, 25, 50, 75, 95};
  auto batch = percentiles(sample, ps);
  ASSERT_TRUE(batch.ok());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_DOUBLE_EQ((*batch)[i], percentile(sample, ps[i]).value());
  }
}

TEST(Percentile, MonotoneInP) {
  util::Rng rng(4);
  std::vector<double> sample;
  for (int i = 0; i < 300; ++i) sample.push_back(rng.normal(0.0, 1.0));
  double prev = percentile(sample, 0.0).value();
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double current = percentile(sample, p).value();
    EXPECT_GE(current, prev);
    prev = current;
  }
}

TEST(Percentile, DuplicatedValues) {
  std::vector<double> sample(100, 3.0);
  EXPECT_DOUBLE_EQ(percentile(sample, 95.0).value(), 3.0);
  EXPECT_DOUBLE_EQ(percentile(sample, 5.0).value(), 3.0);
}

TEST(Median, Wrapper) {
  std::vector<double> sample{3, 1, 2};
  EXPECT_DOUBLE_EQ(median(sample).value(), 2.0);
}

TEST(QuantileMethodNames, RoundTrip) {
  for (QuantileMethod method :
       {QuantileMethod::kNearestRank, QuantileMethod::kLinear,
        QuantileMethod::kHazen, QuantileMethod::kMedianUnbiased,
        QuantileMethod::kNormalUnbiased}) {
    auto parsed = quantile_method_from_name(quantile_method_name(method));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), method);
  }
  EXPECT_FALSE(quantile_method_from_name("bogus").ok());
}

/// Property sweep: every method returns a value inside [min, max] and
/// respects monotonicity for p in {1..99}, across sample sizes.
class PercentilePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PercentilePropertyTest, WithinBoundsAndMonotone) {
  const auto [size, method_index] = GetParam();
  const auto method = static_cast<QuantileMethod>(method_index);
  util::Rng rng(static_cast<std::uint64_t>(size * 10 + method_index));
  std::vector<double> sample;
  for (int i = 0; i < size; ++i) sample.push_back(rng.pareto(1.0, 1.5));
  const double lo = *std::min_element(sample.begin(), sample.end());
  const double hi = *std::max_element(sample.begin(), sample.end());
  double prev = lo;
  for (int p = 1; p < 100; p += 7) {
    const double v = percentile(sample, static_cast<double>(p), method).value();
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndMethods, PercentilePropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 17, 100, 1000),
                       ::testing::Values(0, 1, 2, 3, 4)));

}  // namespace
}  // namespace iqb::stats
