#include "iqb/robust/quarantine.hpp"

#include <gtest/gtest.h>

#include <string>

namespace iqb::robust {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

util::Error bad_row(const std::string& what) {
  return util::make_error(util::ErrorCode::kParseError, what);
}

TEST(Quarantine, CountsAndStoresRows) {
  Quarantine quarantine;
  EXPECT_TRUE(quarantine.empty());
  quarantine.add("ndt_csv", 3, bad_row("bad number"));
  quarantine.add("ndt_csv", 7, bad_row("bad date"));
  EXPECT_FALSE(quarantine.empty());
  EXPECT_EQ(quarantine.count(), 2u);
  ASSERT_EQ(quarantine.rows().size(), 2u);
  EXPECT_EQ(quarantine.rows()[0].source, "ndt_csv");
  EXPECT_EQ(quarantine.rows()[0].row, 3u);
  EXPECT_EQ(quarantine.rows()[1].row, 7u);
}

TEST(Quarantine, StorageCapStillCountsEverything) {
  Quarantine quarantine(/*max_stored=*/2);
  for (std::size_t i = 0; i < 5; ++i) {
    quarantine.add("feed", i, bad_row("x"));
  }
  EXPECT_EQ(quarantine.count(), 5u);
  EXPECT_EQ(quarantine.rows().size(), 2u);  // only the first two stored
}

TEST(Quarantine, ErrorRate) {
  Quarantine quarantine;
  EXPECT_DOUBLE_EQ(quarantine.error_rate(0), 0.0);
  quarantine.add("feed", 0, bad_row("x"));
  EXPECT_DOUBLE_EQ(quarantine.error_rate(4), 0.25);
  EXPECT_DOUBLE_EQ(quarantine.error_rate(0), 0.0);  // degenerate total
}

TEST(Quarantine, ExceedsIsStrictlyAboveThreshold) {
  IngestPolicy policy = IngestPolicy::lenient(0.25);
  Quarantine quarantine;
  quarantine.add("feed", 0, bad_row("x"));
  EXPECT_FALSE(quarantine.exceeds(policy, 4));  // exactly 0.25 is allowed
  EXPECT_TRUE(quarantine.exceeds(policy, 3));   // 0.33 is not
}

TEST(Quarantine, SummaryNamesFirstOffender) {
  Quarantine quarantine;
  EXPECT_EQ(quarantine.summary(), "no rows quarantined");
  quarantine.add("ookla_csv", 12, bad_row("negative value"));
  quarantine.add("ookla_csv", 19, bad_row("NaN"));
  EXPECT_TRUE(contains(quarantine.summary(), "2 rows quarantined"));
  EXPECT_TRUE(contains(quarantine.summary(), "ookla_csv row 12"));
  EXPECT_TRUE(contains(quarantine.summary(), "negative value"));
}

TEST(Quarantine, ClearResets) {
  Quarantine quarantine;
  quarantine.add("feed", 0, bad_row("x"));
  quarantine.clear();
  EXPECT_TRUE(quarantine.empty());
  EXPECT_EQ(quarantine.count(), 0u);
  EXPECT_TRUE(quarantine.rows().empty());
}

TEST(IngestPolicy, Factories) {
  EXPECT_EQ(IngestPolicy::strict().mode, IngestMode::kStrict);
  EXPECT_EQ(IngestPolicy::lenient().mode, IngestMode::kLenient);
  EXPECT_DOUBLE_EQ(IngestPolicy::lenient(0.1).max_error_rate, 0.1);
}

}  // namespace
}  // namespace iqb::robust
