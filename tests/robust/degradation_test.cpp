#include "iqb/robust/degradation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

namespace iqb::robust {
namespace {

TEST(AssessTier, Table) {
  struct Case {
    std::size_t present;
    std::size_t expected;
    bool faults;
    ConfidenceTier want;
  };
  const Case cases[] = {
      {3, 3, false, ConfidenceTier::kA},  // full healthy panel
      {3, 3, true, ConfidenceTier::kB},   // panel fine, ingest dirty
      {2, 3, false, ConfidenceTier::kB},  // one dataset missing
      {2, 3, true, ConfidenceTier::kB},
      {1, 3, false, ConfidenceTier::kC},  // single source
      {1, 1, false, ConfidenceTier::kC},  // even a full 1-panel is C
      {0, 3, false, ConfidenceTier::kC},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(assess_tier(c.present, c.expected, c.faults), c.want)
        << "present=" << c.present << " expected=" << c.expected
        << " faults=" << c.faults;
  }
}

TEST(AssessRegion, ComputesMissingSorted) {
  const std::vector<std::string> expected = {"ookla", "ndt", "cloudflare"};
  const std::vector<std::string> present = {"ndt"};
  const DegradationReport report = assess_region("metro", expected, present);
  EXPECT_EQ(report.region, "metro");
  EXPECT_EQ(report.missing_datasets,
            (std::vector<std::string>{"cloudflare", "ookla"}));
  EXPECT_EQ(report.tier, ConfidenceTier::kC);
  EXPECT_TRUE(report.degraded());
}

TEST(AssessRegion, HealthyIsTierA) {
  const std::vector<std::string> panel = {"cloudflare", "ndt", "ookla"};
  const DegradationReport report = assess_region("metro", panel, panel);
  EXPECT_EQ(report.tier, ConfidenceTier::kA);
  EXPECT_FALSE(report.degraded());
  EXPECT_TRUE(report.missing_datasets.empty());
}

TEST(AssessRegion, IngestHealthPropagates) {
  const std::vector<std::string> panel = {"cloudflare", "ndt", "ookla"};
  IngestHealth health;
  health.rows_quarantined = 4;
  health.open_breakers = {"ookla_feed"};
  const DegradationReport report =
      assess_region("metro", panel, panel, health);
  EXPECT_EQ(report.rows_quarantined, 4u);
  EXPECT_EQ(report.open_breakers, std::vector<std::string>{"ookla_feed"});
  EXPECT_EQ(report.tier, ConfidenceTier::kB);  // full panel, dirty ingest
  EXPECT_TRUE(report.degraded());
}

TEST(IngestHealth, Healthy) {
  EXPECT_TRUE(IngestHealth{}.healthy());
  IngestHealth dirty;
  dirty.rows_quarantined = 1;
  EXPECT_FALSE(dirty.healthy());
  IngestHealth broken;
  broken.open_breakers = {"feed"};
  EXPECT_FALSE(broken.healthy());
}

TEST(RenormalizeWeights, SumsToOne) {
  const std::map<std::string, double> raw = {
      {"ookla", 0.5}, {"ndt", 0.3}, {"cloudflare", 0.2}};
  auto weight_of = [&raw](const std::string& d) { return raw.at(d); };

  // Full panel: weights unchanged.
  auto full = renormalize_weights({"ookla", "ndt", "cloudflare"}, weight_of);
  EXPECT_DOUBLE_EQ(full.at("ookla"), 0.5);

  // Drop ookla: remaining weights rescale and still sum to 1.
  auto partial = renormalize_weights({"ndt", "cloudflare"}, weight_of);
  ASSERT_EQ(partial.size(), 2u);
  EXPECT_DOUBLE_EQ(partial.at("ndt"), 0.6);
  EXPECT_DOUBLE_EQ(partial.at("cloudflare"), 0.4);
  double total = 0.0;
  for (const auto& [name, weight] : partial) total += weight;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(RenormalizeWeights, DropsNonPositiveWeights) {
  auto weights = renormalize_weights(
      {"a", "b", "c"},
      [](const std::string& d) { return d == "b" ? 0.0 : 1.0; });
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights.at("a"), 0.5);
  EXPECT_DOUBLE_EQ(weights.at("c"), 0.5);
}

TEST(RenormalizeWeights, AllZeroPanelIsEmpty) {
  auto weights =
      renormalize_weights({"a", "b"}, [](const std::string&) { return 0.0; });
  EXPECT_TRUE(weights.empty());
  EXPECT_TRUE(renormalize_weights({}, [](const std::string&) { return 1.0; })
                  .empty());
}

TEST(ConfidenceTierName, Stable) {
  EXPECT_STREQ(confidence_tier_name(ConfidenceTier::kA), "A");
  EXPECT_STREQ(confidence_tier_name(ConfidenceTier::kB), "B");
  EXPECT_STREQ(confidence_tier_name(ConfidenceTier::kC), "C");
}

}  // namespace
}  // namespace iqb::robust
