#include "iqb/robust/fault_injection.hpp"

#include <gtest/gtest.h>

#include <string>

namespace iqb::robust {
namespace {

constexpr const char* kCsv =
    "a,b,c\n"
    "1,2,3\n"
    "4,5,6\n"
    "7,8,9\n";

TextSource fixed(std::string text) {
  return [text = std::move(text)]() -> util::Result<std::string> {
    return text;
  };
}

TEST(FaultInjector, NoneSpecPassesThrough) {
  FaultInjector injector(FaultSpec::none(), 1);
  auto out = injector.fetch("feed", fixed(kCsv));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), kCsv);
  EXPECT_EQ(injector.counters().io_errors, 0u);
  EXPECT_EQ(injector.counters().truncations, 0u);
  EXPECT_EQ(injector.counters().corrupted_rows, 0u);
  EXPECT_DOUBLE_EQ(injector.last_latency_s(), 0.0);
}

TEST(FaultInjector, CertainIoErrorAlwaysFails) {
  FaultSpec spec;
  spec.io_error_rate = 1.0;
  FaultInjector injector(spec, 7);
  for (int i = 0; i < 3; ++i) {
    auto out = injector.fetch("feed", fixed(kCsv));
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.error().code, util::ErrorCode::kIoError);
  }
  EXPECT_EQ(injector.counters().io_errors, 3u);
}

TEST(FaultInjector, CertainTruncationShortens) {
  FaultSpec spec;
  spec.truncation_rate = 1.0;
  FaultInjector injector(spec, 7);
  auto out = injector.fetch("feed", fixed(kCsv));
  ASSERT_TRUE(out.ok());
  EXPECT_LT(out.value().size(), std::string(kCsv).size());
  EXPECT_EQ(injector.counters().truncations, 1u);
}

TEST(FaultInjector, CorruptCsvHitsEveryDataRowButNeverHeader) {
  FaultSpec spec;
  spec.row_corruption_rate = 1.0;
  FaultInjector injector(spec, 7);
  const std::string out = injector.corrupt_csv(kCsv);
  EXPECT_EQ(out.substr(0, 6), "a,b,c\n");  // header untouched
  EXPECT_EQ(injector.counters().corrupted_rows, 3u);
  EXPECT_NE(out, kCsv);
}

TEST(FaultInjector, SameSeedSameOutput) {
  FaultSpec spec;
  spec.row_corruption_rate = 0.5;
  spec.truncation_rate = 0.3;
  FaultInjector first(spec, 99);
  FaultInjector second(spec, 99);
  for (int i = 0; i < 5; ++i) {
    auto a = first.fetch("feed", fixed(kCsv));
    auto b = second.fetch("feed", fixed(kCsv));
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) EXPECT_EQ(a.value(), b.value());
  }
}

TEST(FaultInjector, LatencySpikeReported) {
  FaultSpec spec;
  spec.latency_spike_rate = 1.0;
  spec.latency_spike_s = 2.5;
  FaultInjector injector(spec, 7);
  auto out = injector.fetch("feed", fixed(kCsv));
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(injector.last_latency_s(), 2.5);
  EXPECT_EQ(injector.counters().latency_spikes, 1u);
}

TEST(FaultInjector, WrapRoutesThroughFetch) {
  FaultSpec spec;
  spec.io_error_rate = 1.0;
  FaultInjector injector(spec, 7);
  TextSource wrapped = injector.wrap("feed", fixed(kCsv));
  EXPECT_FALSE(wrapped().ok());
  EXPECT_EQ(injector.counters().io_errors, 1u);
}

TEST(FaultInjector, SourceErrorPropagates) {
  FaultInjector injector(FaultSpec::none(), 1);
  auto out = injector.fetch("feed", []() -> util::Result<std::string> {
    return util::make_error(util::ErrorCode::kIoError, "real failure");
  });
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().message, "real failure");
}

}  // namespace
}  // namespace iqb::robust
