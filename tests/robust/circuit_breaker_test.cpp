#include "iqb/robust/circuit_breaker.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace iqb::robust {
namespace {

CircuitBreakerConfig small_config() {
  CircuitBreakerConfig config;
  config.window_size = 4;
  config.min_samples = 2;
  config.failure_threshold = 0.5;
  config.cooldown_denials = 2;
  config.half_open_successes = 2;
  return config;
}

TEST(CircuitBreaker, StaysClosedBelowMinSamples) {
  CircuitBreaker breaker(small_config());
  EXPECT_TRUE(breaker.allow_request());
  breaker.record_failure();
  // One failure: 100% failure rate but below min_samples.
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow_request());
}

TEST(CircuitBreaker, OpensAtFailureThreshold) {
  CircuitBreaker breaker(small_config());
  breaker.record_success();
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_TRUE(breaker.open());
  EXPECT_FALSE(breaker.allow_request());
  EXPECT_EQ(breaker.total_failures(), 2u);
}

TEST(CircuitBreaker, CooldownLeadsToHalfOpenProbe) {
  CircuitBreaker breaker(small_config());
  breaker.record_failure();
  breaker.record_failure();
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  // Two denials of cooldown...
  EXPECT_FALSE(breaker.allow_request());
  EXPECT_FALSE(breaker.allow_request());
  EXPECT_EQ(breaker.denied_requests(), 2u);
  // ...then a probe is admitted.
  EXPECT_TRUE(breaker.allow_request());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreaker, HalfOpenSuccessStreakCloses) {
  CircuitBreaker breaker(small_config());
  breaker.record_failure();
  breaker.record_failure();
  while (!breaker.allow_request()) {
  }
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow_request());
}

TEST(CircuitBreaker, HalfOpenFailureReopens) {
  CircuitBreaker breaker(small_config());
  breaker.record_failure();
  breaker.record_failure();
  while (!breaker.allow_request()) {
  }
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow_request());
}

TEST(CircuitBreaker, WindowForgetsOldOutcomes) {
  CircuitBreakerConfig config = small_config();
  config.window_size = 2;
  CircuitBreaker breaker(config);
  breaker.record_failure();
  breaker.record_success();
  // Window now {failure, success} -> rate 0.5 trips (>= threshold)?
  // Threshold is strict in spirit: refill with successes instead.
  breaker.reset();
  breaker.record_failure();
  breaker.record_success();
  breaker.record_success();
  // Failure fell out of the 2-slot window.
  EXPECT_DOUBLE_EQ(breaker.failure_rate(), 0.0);
}

TEST(CircuitBreaker, ResetClosesAndClears) {
  CircuitBreaker breaker(small_config());
  breaker.record_failure();
  breaker.record_failure();
  ASSERT_TRUE(breaker.open());
  breaker.reset();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_DOUBLE_EQ(breaker.failure_rate(), 0.0);
  EXPECT_TRUE(breaker.allow_request());
}

TEST(CircuitBreaker, StateNames) {
  EXPECT_STREQ(breaker_state_name(BreakerState::kClosed), "closed");
  EXPECT_STREQ(breaker_state_name(BreakerState::kOpen), "open");
  EXPECT_STREQ(breaker_state_name(BreakerState::kHalfOpen), "half_open");
}

TEST(CircuitBreaker, CallbackFiresExactlyOncePerEdge) {
  CircuitBreaker breaker(small_config());
  std::vector<std::pair<BreakerState, BreakerState>> edges;
  breaker.on_state_change([&edges, &breaker](BreakerState from,
                                             BreakerState to) {
    // The new state is already in place inside the callback.
    EXPECT_EQ(breaker.state(), to);
    edges.emplace_back(from, to);
  });

  breaker.record_failure();
  breaker.record_failure();  // trips: closed -> open, once
  EXPECT_FALSE(breaker.allow_request());  // cooldown, no edge
  EXPECT_FALSE(breaker.allow_request());  // cooldown ends: open -> half_open
  breaker.record_success();
  breaker.record_success();  // streak closes: half_open -> closed
  breaker.reset();           // already closed: NO edge
  breaker.record_failure();
  breaker.record_failure();  // closed -> open again
  EXPECT_FALSE(breaker.allow_request());
  EXPECT_FALSE(breaker.allow_request());  // open -> half_open
  breaker.record_failure();               // probe fails: half_open -> open

  using S = BreakerState;
  const std::vector<std::pair<BreakerState, BreakerState>> expected = {
      {S::kClosed, S::kOpen},   {S::kOpen, S::kHalfOpen},
      {S::kHalfOpen, S::kClosed}, {S::kClosed, S::kOpen},
      {S::kOpen, S::kHalfOpen}, {S::kHalfOpen, S::kOpen},
  };
  EXPECT_EQ(edges, expected);
}

TEST(CircuitBreaker, CallbackCanBeCleared) {
  CircuitBreaker breaker(small_config());
  int fired = 0;
  breaker.on_state_change([&fired](BreakerState, BreakerState) { ++fired; });
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(fired, 1);
  breaker.on_state_change(nullptr);
  breaker.reset();  // open -> closed, but the observer is gone
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace iqb::robust
