#include "iqb/robust/retry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace iqb::robust {
namespace {

TEST(RetryPolicy, Validate) {
  EXPECT_TRUE(RetryPolicy{}.validate().ok());
  RetryPolicy no_attempts;
  no_attempts.max_attempts = 0;
  EXPECT_FALSE(no_attempts.validate().ok());
  RetryPolicy inverted;
  inverted.base_delay_s = 2.0;
  inverted.max_delay_s = 1.0;
  EXPECT_FALSE(inverted.validate().ok());
  RetryPolicy negative_deadline;
  negative_deadline.deadline_s = -1.0;
  EXPECT_FALSE(negative_deadline.validate().ok());
}

TEST(RetrySchedule, DelaysBoundedAndExhaustByAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_delay_s = 0.1;
  policy.max_delay_s = 5.0;
  policy.deadline_s = 1e9;
  RetrySchedule schedule(policy);
  for (int i = 0; i < 3; ++i) {
    const double delay = schedule.next_delay_s();
    EXPECT_GE(delay, policy.base_delay_s);
    EXPECT_LE(delay, policy.max_delay_s);
  }
  // Attempt budget (4 total = 1 initial + 3 retries) is now spent.
  EXPECT_LT(schedule.next_delay_s(), 0.0);
  EXPECT_EQ(schedule.attempts_started(), 4u);
}

TEST(RetrySchedule, SameSeedSameDelays) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.seed = 42;
  std::vector<double> first;
  std::vector<double> second;
  for (RetrySchedule schedule(policy);;) {
    const double delay = schedule.next_delay_s();
    if (delay < 0.0) break;
    first.push_back(delay);
  }
  for (RetrySchedule schedule(policy);;) {
    const double delay = schedule.next_delay_s();
    if (delay < 0.0) break;
    second.push_back(delay);
  }
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(RetrySchedule, DeadlineStopsRetriesEarly) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.base_delay_s = 1.0;
  policy.max_delay_s = 1.0;  // every delay exactly 1s
  policy.deadline_s = 2.5;   // only 2 retries fit
  RetrySchedule schedule(policy);
  EXPECT_DOUBLE_EQ(schedule.next_delay_s(), 1.0);
  EXPECT_DOUBLE_EQ(schedule.next_delay_s(), 1.0);
  EXPECT_LT(schedule.next_delay_s(), 0.0);
  EXPECT_DOUBLE_EQ(schedule.elapsed_s(), 2.0);
}

TEST(RunWithRetry, SucceedsAfterTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  RetryStats stats;
  auto outcome = run_with_retry(
      policy,
      [&calls]() -> util::Result<int> {
        if (++calls < 3) {
          return util::make_error(util::ErrorCode::kIoError, "flaky");
        }
        return 7;
      },
      &stats);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), 7);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_FALSE(stats.exhausted);
  EXPECT_GT(stats.total_backoff_s, 0.0);
}

TEST(RunWithRetry, ExhaustionAnnotatesError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryStats stats;
  auto outcome = run_with_retry(
      policy,
      []() -> util::Result<int> {
        return util::make_error(util::ErrorCode::kIoError, "feed down");
      },
      &stats);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, util::ErrorCode::kIoError);
  EXPECT_EQ(outcome.error().message, "feed down (after 3 attempts)");
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(stats.attempts, 3u);
}

TEST(RetrySchedule, DecorrelatedJitterStaysWithinPolicyBounds) {
  // Decorrelated jitter draws uniform(base, prev*3) capped at
  // max_delay_s: whatever the seed, no emitted delay may undershoot
  // the base or overshoot the cap.
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    RetryPolicy policy;
    policy.max_attempts = 16;
    policy.base_delay_s = 0.05;
    policy.max_delay_s = 0.8;
    policy.deadline_s = 1000.0;
    policy.seed = seed;
    RetrySchedule schedule(policy);
    for (;;) {
      const double delay = schedule.next_delay_s();
      if (delay < 0.0) break;
      EXPECT_GE(delay, policy.base_delay_s) << "seed " << seed;
      EXPECT_LE(delay, policy.max_delay_s) << "seed " << seed;
    }
  }
}

TEST(RetrySchedule, SameSeedReplaysTheSameDelaySequence) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.seed = 99;
  RetrySchedule a(policy);
  RetrySchedule b(policy);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(a.next_delay_s(), b.next_delay_s()) << "step " << i;
  }
  // A different seed must (for this policy) diverge somewhere.
  policy.seed = 100;
  RetrySchedule c(policy);
  RetrySchedule d(RetryPolicy{policy.max_attempts, policy.base_delay_s,
                              policy.max_delay_s, policy.deadline_s, 99});
  bool diverged = false;
  for (int i = 0; i < 7; ++i) {
    if (c.next_delay_s() != d.next_delay_s()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(RunWithRetry, SingleAttemptPolicyNeverRetries) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  int calls = 0;
  auto outcome = run_with_retry(policy, [&calls]() -> util::Result<int> {
    ++calls;
    return util::make_error(util::ErrorCode::kIoError, "down");
  });
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace iqb::robust
