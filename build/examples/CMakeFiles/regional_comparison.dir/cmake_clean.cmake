file(REMOVE_RECURSE
  "CMakeFiles/regional_comparison.dir/regional_comparison.cpp.o"
  "CMakeFiles/regional_comparison.dir/regional_comparison.cpp.o.d"
  "regional_comparison"
  "regional_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regional_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
