# Empty compiler generated dependencies file for regional_comparison.
# This may be replaced when dependencies are built.
