file(REMOVE_RECURSE
  "CMakeFiles/custom_use_case.dir/custom_use_case.cpp.o"
  "CMakeFiles/custom_use_case.dir/custom_use_case.cpp.o.d"
  "custom_use_case"
  "custom_use_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_use_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
