
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_use_case.cpp" "examples/CMakeFiles/custom_use_case.dir/custom_use_case.cpp.o" "gcc" "examples/CMakeFiles/custom_use_case.dir/custom_use_case.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iqb_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iqb_measurement.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iqb_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iqb_report.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iqb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iqb_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iqb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iqb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
