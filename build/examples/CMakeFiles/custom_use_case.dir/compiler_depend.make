# Empty compiler generated dependencies file for custom_use_case.
# This may be replaced when dependencies are built.
