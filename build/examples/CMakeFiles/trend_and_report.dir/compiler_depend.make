# Empty compiler generated dependencies file for trend_and_report.
# This may be replaced when dependencies are built.
