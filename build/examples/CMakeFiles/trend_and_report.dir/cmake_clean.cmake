file(REMOVE_RECURSE
  "CMakeFiles/trend_and_report.dir/trend_and_report.cpp.o"
  "CMakeFiles/trend_and_report.dir/trend_and_report.cpp.o.d"
  "trend_and_report"
  "trend_and_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trend_and_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
