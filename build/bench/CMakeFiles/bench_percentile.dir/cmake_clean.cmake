file(REMOVE_RECURSE
  "CMakeFiles/bench_percentile.dir/bench_percentile.cpp.o"
  "CMakeFiles/bench_percentile.dir/bench_percentile.cpp.o.d"
  "bench_percentile"
  "bench_percentile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_percentile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
