file(REMOVE_RECURSE
  "CMakeFiles/bench_score_formula.dir/bench_score_formula.cpp.o"
  "CMakeFiles/bench_score_formula.dir/bench_score_formula.cpp.o.d"
  "bench_score_formula"
  "bench_score_formula.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_score_formula.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
