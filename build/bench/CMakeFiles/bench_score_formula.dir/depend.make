# Empty dependencies file for bench_score_formula.
# This may be replaced when dependencies are built.
