# Empty dependencies file for bench_dataset_agreement.
# This may be replaced when dependencies are built.
