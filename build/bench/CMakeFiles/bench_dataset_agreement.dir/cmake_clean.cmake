file(REMOVE_RECURSE
  "CMakeFiles/bench_dataset_agreement.dir/bench_dataset_agreement.cpp.o"
  "CMakeFiles/bench_dataset_agreement.dir/bench_dataset_agreement.cpp.o.d"
  "bench_dataset_agreement"
  "bench_dataset_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataset_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
