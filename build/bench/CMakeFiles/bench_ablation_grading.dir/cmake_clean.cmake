file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_grading.dir/bench_ablation_grading.cpp.o"
  "CMakeFiles/bench_ablation_grading.dir/bench_ablation_grading.cpp.o.d"
  "bench_ablation_grading"
  "bench_ablation_grading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_grading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
