# Empty dependencies file for bench_ablation_grading.
# This may be replaced when dependencies are built.
