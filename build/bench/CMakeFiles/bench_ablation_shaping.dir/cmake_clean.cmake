file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shaping.dir/bench_ablation_shaping.cpp.o"
  "CMakeFiles/bench_ablation_shaping.dir/bench_ablation_shaping.cpp.o.d"
  "bench_ablation_shaping"
  "bench_ablation_shaping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shaping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
