# Empty dependencies file for bench_fig2_thresholds.
# This may be replaced when dependencies are built.
