file(REMOVE_RECURSE
  "CMakeFiles/iqbctl.dir/iqbctl.cpp.o"
  "CMakeFiles/iqbctl.dir/iqbctl.cpp.o.d"
  "iqbctl"
  "iqbctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iqbctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
