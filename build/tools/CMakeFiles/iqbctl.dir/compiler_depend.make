# Empty compiler generated dependencies file for iqbctl.
# This may be replaced when dependencies are built.
