# Empty dependencies file for iqbctl.
# This may be replaced when dependencies are built.
