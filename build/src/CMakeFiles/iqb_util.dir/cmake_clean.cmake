file(REMOVE_RECURSE
  "CMakeFiles/iqb_util.dir/iqb/util/csv.cpp.o"
  "CMakeFiles/iqb_util.dir/iqb/util/csv.cpp.o.d"
  "CMakeFiles/iqb_util.dir/iqb/util/json.cpp.o"
  "CMakeFiles/iqb_util.dir/iqb/util/json.cpp.o.d"
  "CMakeFiles/iqb_util.dir/iqb/util/log.cpp.o"
  "CMakeFiles/iqb_util.dir/iqb/util/log.cpp.o.d"
  "CMakeFiles/iqb_util.dir/iqb/util/result.cpp.o"
  "CMakeFiles/iqb_util.dir/iqb/util/result.cpp.o.d"
  "CMakeFiles/iqb_util.dir/iqb/util/rng.cpp.o"
  "CMakeFiles/iqb_util.dir/iqb/util/rng.cpp.o.d"
  "CMakeFiles/iqb_util.dir/iqb/util/strings.cpp.o"
  "CMakeFiles/iqb_util.dir/iqb/util/strings.cpp.o.d"
  "CMakeFiles/iqb_util.dir/iqb/util/timestamp.cpp.o"
  "CMakeFiles/iqb_util.dir/iqb/util/timestamp.cpp.o.d"
  "CMakeFiles/iqb_util.dir/iqb/util/units.cpp.o"
  "CMakeFiles/iqb_util.dir/iqb/util/units.cpp.o.d"
  "libiqb_util.a"
  "libiqb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iqb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
