# Empty dependencies file for iqb_util.
# This may be replaced when dependencies are built.
