
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iqb/util/csv.cpp" "src/CMakeFiles/iqb_util.dir/iqb/util/csv.cpp.o" "gcc" "src/CMakeFiles/iqb_util.dir/iqb/util/csv.cpp.o.d"
  "/root/repo/src/iqb/util/json.cpp" "src/CMakeFiles/iqb_util.dir/iqb/util/json.cpp.o" "gcc" "src/CMakeFiles/iqb_util.dir/iqb/util/json.cpp.o.d"
  "/root/repo/src/iqb/util/log.cpp" "src/CMakeFiles/iqb_util.dir/iqb/util/log.cpp.o" "gcc" "src/CMakeFiles/iqb_util.dir/iqb/util/log.cpp.o.d"
  "/root/repo/src/iqb/util/result.cpp" "src/CMakeFiles/iqb_util.dir/iqb/util/result.cpp.o" "gcc" "src/CMakeFiles/iqb_util.dir/iqb/util/result.cpp.o.d"
  "/root/repo/src/iqb/util/rng.cpp" "src/CMakeFiles/iqb_util.dir/iqb/util/rng.cpp.o" "gcc" "src/CMakeFiles/iqb_util.dir/iqb/util/rng.cpp.o.d"
  "/root/repo/src/iqb/util/strings.cpp" "src/CMakeFiles/iqb_util.dir/iqb/util/strings.cpp.o" "gcc" "src/CMakeFiles/iqb_util.dir/iqb/util/strings.cpp.o.d"
  "/root/repo/src/iqb/util/timestamp.cpp" "src/CMakeFiles/iqb_util.dir/iqb/util/timestamp.cpp.o" "gcc" "src/CMakeFiles/iqb_util.dir/iqb/util/timestamp.cpp.o.d"
  "/root/repo/src/iqb/util/units.cpp" "src/CMakeFiles/iqb_util.dir/iqb/util/units.cpp.o" "gcc" "src/CMakeFiles/iqb_util.dir/iqb/util/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
