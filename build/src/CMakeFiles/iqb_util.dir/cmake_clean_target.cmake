file(REMOVE_RECURSE
  "libiqb_util.a"
)
