# Empty dependencies file for iqb_stats.
# This may be replaced when dependencies are built.
