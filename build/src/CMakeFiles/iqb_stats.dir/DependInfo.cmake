
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iqb/stats/bootstrap.cpp" "src/CMakeFiles/iqb_stats.dir/iqb/stats/bootstrap.cpp.o" "gcc" "src/CMakeFiles/iqb_stats.dir/iqb/stats/bootstrap.cpp.o.d"
  "/root/repo/src/iqb/stats/ddsketch.cpp" "src/CMakeFiles/iqb_stats.dir/iqb/stats/ddsketch.cpp.o" "gcc" "src/CMakeFiles/iqb_stats.dir/iqb/stats/ddsketch.cpp.o.d"
  "/root/repo/src/iqb/stats/descriptive.cpp" "src/CMakeFiles/iqb_stats.dir/iqb/stats/descriptive.cpp.o" "gcc" "src/CMakeFiles/iqb_stats.dir/iqb/stats/descriptive.cpp.o.d"
  "/root/repo/src/iqb/stats/gk.cpp" "src/CMakeFiles/iqb_stats.dir/iqb/stats/gk.cpp.o" "gcc" "src/CMakeFiles/iqb_stats.dir/iqb/stats/gk.cpp.o.d"
  "/root/repo/src/iqb/stats/histogram.cpp" "src/CMakeFiles/iqb_stats.dir/iqb/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/iqb_stats.dir/iqb/stats/histogram.cpp.o.d"
  "/root/repo/src/iqb/stats/p2.cpp" "src/CMakeFiles/iqb_stats.dir/iqb/stats/p2.cpp.o" "gcc" "src/CMakeFiles/iqb_stats.dir/iqb/stats/p2.cpp.o.d"
  "/root/repo/src/iqb/stats/percentile.cpp" "src/CMakeFiles/iqb_stats.dir/iqb/stats/percentile.cpp.o" "gcc" "src/CMakeFiles/iqb_stats.dir/iqb/stats/percentile.cpp.o.d"
  "/root/repo/src/iqb/stats/tdigest.cpp" "src/CMakeFiles/iqb_stats.dir/iqb/stats/tdigest.cpp.o" "gcc" "src/CMakeFiles/iqb_stats.dir/iqb/stats/tdigest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iqb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
