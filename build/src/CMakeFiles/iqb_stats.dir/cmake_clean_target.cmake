file(REMOVE_RECURSE
  "libiqb_stats.a"
)
