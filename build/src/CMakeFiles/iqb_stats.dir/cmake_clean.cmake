file(REMOVE_RECURSE
  "CMakeFiles/iqb_stats.dir/iqb/stats/bootstrap.cpp.o"
  "CMakeFiles/iqb_stats.dir/iqb/stats/bootstrap.cpp.o.d"
  "CMakeFiles/iqb_stats.dir/iqb/stats/ddsketch.cpp.o"
  "CMakeFiles/iqb_stats.dir/iqb/stats/ddsketch.cpp.o.d"
  "CMakeFiles/iqb_stats.dir/iqb/stats/descriptive.cpp.o"
  "CMakeFiles/iqb_stats.dir/iqb/stats/descriptive.cpp.o.d"
  "CMakeFiles/iqb_stats.dir/iqb/stats/gk.cpp.o"
  "CMakeFiles/iqb_stats.dir/iqb/stats/gk.cpp.o.d"
  "CMakeFiles/iqb_stats.dir/iqb/stats/histogram.cpp.o"
  "CMakeFiles/iqb_stats.dir/iqb/stats/histogram.cpp.o.d"
  "CMakeFiles/iqb_stats.dir/iqb/stats/p2.cpp.o"
  "CMakeFiles/iqb_stats.dir/iqb/stats/p2.cpp.o.d"
  "CMakeFiles/iqb_stats.dir/iqb/stats/percentile.cpp.o"
  "CMakeFiles/iqb_stats.dir/iqb/stats/percentile.cpp.o.d"
  "CMakeFiles/iqb_stats.dir/iqb/stats/tdigest.cpp.o"
  "CMakeFiles/iqb_stats.dir/iqb/stats/tdigest.cpp.o.d"
  "libiqb_stats.a"
  "libiqb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iqb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
