# Empty dependencies file for iqb_netsim.
# This may be replaced when dependencies are built.
