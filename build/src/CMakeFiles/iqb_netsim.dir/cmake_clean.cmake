file(REMOVE_RECURSE
  "CMakeFiles/iqb_netsim.dir/iqb/netsim/crosstraffic.cpp.o"
  "CMakeFiles/iqb_netsim.dir/iqb/netsim/crosstraffic.cpp.o.d"
  "CMakeFiles/iqb_netsim.dir/iqb/netsim/link.cpp.o"
  "CMakeFiles/iqb_netsim.dir/iqb/netsim/link.cpp.o.d"
  "CMakeFiles/iqb_netsim.dir/iqb/netsim/network.cpp.o"
  "CMakeFiles/iqb_netsim.dir/iqb/netsim/network.cpp.o.d"
  "CMakeFiles/iqb_netsim.dir/iqb/netsim/queue.cpp.o"
  "CMakeFiles/iqb_netsim.dir/iqb/netsim/queue.cpp.o.d"
  "CMakeFiles/iqb_netsim.dir/iqb/netsim/sim.cpp.o"
  "CMakeFiles/iqb_netsim.dir/iqb/netsim/sim.cpp.o.d"
  "CMakeFiles/iqb_netsim.dir/iqb/netsim/tcp.cpp.o"
  "CMakeFiles/iqb_netsim.dir/iqb/netsim/tcp.cpp.o.d"
  "CMakeFiles/iqb_netsim.dir/iqb/netsim/udp.cpp.o"
  "CMakeFiles/iqb_netsim.dir/iqb/netsim/udp.cpp.o.d"
  "libiqb_netsim.a"
  "libiqb_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iqb_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
