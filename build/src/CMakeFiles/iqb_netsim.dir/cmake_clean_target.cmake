file(REMOVE_RECURSE
  "libiqb_netsim.a"
)
