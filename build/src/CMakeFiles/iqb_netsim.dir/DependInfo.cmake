
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iqb/netsim/crosstraffic.cpp" "src/CMakeFiles/iqb_netsim.dir/iqb/netsim/crosstraffic.cpp.o" "gcc" "src/CMakeFiles/iqb_netsim.dir/iqb/netsim/crosstraffic.cpp.o.d"
  "/root/repo/src/iqb/netsim/link.cpp" "src/CMakeFiles/iqb_netsim.dir/iqb/netsim/link.cpp.o" "gcc" "src/CMakeFiles/iqb_netsim.dir/iqb/netsim/link.cpp.o.d"
  "/root/repo/src/iqb/netsim/network.cpp" "src/CMakeFiles/iqb_netsim.dir/iqb/netsim/network.cpp.o" "gcc" "src/CMakeFiles/iqb_netsim.dir/iqb/netsim/network.cpp.o.d"
  "/root/repo/src/iqb/netsim/queue.cpp" "src/CMakeFiles/iqb_netsim.dir/iqb/netsim/queue.cpp.o" "gcc" "src/CMakeFiles/iqb_netsim.dir/iqb/netsim/queue.cpp.o.d"
  "/root/repo/src/iqb/netsim/sim.cpp" "src/CMakeFiles/iqb_netsim.dir/iqb/netsim/sim.cpp.o" "gcc" "src/CMakeFiles/iqb_netsim.dir/iqb/netsim/sim.cpp.o.d"
  "/root/repo/src/iqb/netsim/tcp.cpp" "src/CMakeFiles/iqb_netsim.dir/iqb/netsim/tcp.cpp.o" "gcc" "src/CMakeFiles/iqb_netsim.dir/iqb/netsim/tcp.cpp.o.d"
  "/root/repo/src/iqb/netsim/udp.cpp" "src/CMakeFiles/iqb_netsim.dir/iqb/netsim/udp.cpp.o" "gcc" "src/CMakeFiles/iqb_netsim.dir/iqb/netsim/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iqb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
