file(REMOVE_RECURSE
  "CMakeFiles/iqb_measurement.dir/iqb/measurement/adapters.cpp.o"
  "CMakeFiles/iqb_measurement.dir/iqb/measurement/adapters.cpp.o.d"
  "CMakeFiles/iqb_measurement.dir/iqb/measurement/campaign.cpp.o"
  "CMakeFiles/iqb_measurement.dir/iqb/measurement/campaign.cpp.o.d"
  "CMakeFiles/iqb_measurement.dir/iqb/measurement/cloudflare_style.cpp.o"
  "CMakeFiles/iqb_measurement.dir/iqb/measurement/cloudflare_style.cpp.o.d"
  "CMakeFiles/iqb_measurement.dir/iqb/measurement/ndt.cpp.o"
  "CMakeFiles/iqb_measurement.dir/iqb/measurement/ndt.cpp.o.d"
  "CMakeFiles/iqb_measurement.dir/iqb/measurement/ookla_style.cpp.o"
  "CMakeFiles/iqb_measurement.dir/iqb/measurement/ookla_style.cpp.o.d"
  "CMakeFiles/iqb_measurement.dir/iqb/measurement/population.cpp.o"
  "CMakeFiles/iqb_measurement.dir/iqb/measurement/population.cpp.o.d"
  "CMakeFiles/iqb_measurement.dir/iqb/measurement/rpm_style.cpp.o"
  "CMakeFiles/iqb_measurement.dir/iqb/measurement/rpm_style.cpp.o.d"
  "libiqb_measurement.a"
  "libiqb_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iqb_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
