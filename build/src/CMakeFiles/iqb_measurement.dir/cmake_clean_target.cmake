file(REMOVE_RECURSE
  "libiqb_measurement.a"
)
