
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iqb/measurement/adapters.cpp" "src/CMakeFiles/iqb_measurement.dir/iqb/measurement/adapters.cpp.o" "gcc" "src/CMakeFiles/iqb_measurement.dir/iqb/measurement/adapters.cpp.o.d"
  "/root/repo/src/iqb/measurement/campaign.cpp" "src/CMakeFiles/iqb_measurement.dir/iqb/measurement/campaign.cpp.o" "gcc" "src/CMakeFiles/iqb_measurement.dir/iqb/measurement/campaign.cpp.o.d"
  "/root/repo/src/iqb/measurement/cloudflare_style.cpp" "src/CMakeFiles/iqb_measurement.dir/iqb/measurement/cloudflare_style.cpp.o" "gcc" "src/CMakeFiles/iqb_measurement.dir/iqb/measurement/cloudflare_style.cpp.o.d"
  "/root/repo/src/iqb/measurement/ndt.cpp" "src/CMakeFiles/iqb_measurement.dir/iqb/measurement/ndt.cpp.o" "gcc" "src/CMakeFiles/iqb_measurement.dir/iqb/measurement/ndt.cpp.o.d"
  "/root/repo/src/iqb/measurement/ookla_style.cpp" "src/CMakeFiles/iqb_measurement.dir/iqb/measurement/ookla_style.cpp.o" "gcc" "src/CMakeFiles/iqb_measurement.dir/iqb/measurement/ookla_style.cpp.o.d"
  "/root/repo/src/iqb/measurement/population.cpp" "src/CMakeFiles/iqb_measurement.dir/iqb/measurement/population.cpp.o" "gcc" "src/CMakeFiles/iqb_measurement.dir/iqb/measurement/population.cpp.o.d"
  "/root/repo/src/iqb/measurement/rpm_style.cpp" "src/CMakeFiles/iqb_measurement.dir/iqb/measurement/rpm_style.cpp.o" "gcc" "src/CMakeFiles/iqb_measurement.dir/iqb/measurement/rpm_style.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iqb_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iqb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iqb_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iqb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
