# Empty dependencies file for iqb_measurement.
# This may be replaced when dependencies are built.
