# Empty dependencies file for iqb_datasets.
# This may be replaced when dependencies are built.
