
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iqb/datasets/aggregate.cpp" "src/CMakeFiles/iqb_datasets.dir/iqb/datasets/aggregate.cpp.o" "gcc" "src/CMakeFiles/iqb_datasets.dir/iqb/datasets/aggregate.cpp.o.d"
  "/root/repo/src/iqb/datasets/importers.cpp" "src/CMakeFiles/iqb_datasets.dir/iqb/datasets/importers.cpp.o" "gcc" "src/CMakeFiles/iqb_datasets.dir/iqb/datasets/importers.cpp.o.d"
  "/root/repo/src/iqb/datasets/io.cpp" "src/CMakeFiles/iqb_datasets.dir/iqb/datasets/io.cpp.o" "gcc" "src/CMakeFiles/iqb_datasets.dir/iqb/datasets/io.cpp.o.d"
  "/root/repo/src/iqb/datasets/record.cpp" "src/CMakeFiles/iqb_datasets.dir/iqb/datasets/record.cpp.o" "gcc" "src/CMakeFiles/iqb_datasets.dir/iqb/datasets/record.cpp.o.d"
  "/root/repo/src/iqb/datasets/store.cpp" "src/CMakeFiles/iqb_datasets.dir/iqb/datasets/store.cpp.o" "gcc" "src/CMakeFiles/iqb_datasets.dir/iqb/datasets/store.cpp.o.d"
  "/root/repo/src/iqb/datasets/synthetic.cpp" "src/CMakeFiles/iqb_datasets.dir/iqb/datasets/synthetic.cpp.o" "gcc" "src/CMakeFiles/iqb_datasets.dir/iqb/datasets/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iqb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iqb_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
