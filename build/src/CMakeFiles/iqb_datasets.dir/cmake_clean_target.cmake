file(REMOVE_RECURSE
  "libiqb_datasets.a"
)
