file(REMOVE_RECURSE
  "CMakeFiles/iqb_datasets.dir/iqb/datasets/aggregate.cpp.o"
  "CMakeFiles/iqb_datasets.dir/iqb/datasets/aggregate.cpp.o.d"
  "CMakeFiles/iqb_datasets.dir/iqb/datasets/importers.cpp.o"
  "CMakeFiles/iqb_datasets.dir/iqb/datasets/importers.cpp.o.d"
  "CMakeFiles/iqb_datasets.dir/iqb/datasets/io.cpp.o"
  "CMakeFiles/iqb_datasets.dir/iqb/datasets/io.cpp.o.d"
  "CMakeFiles/iqb_datasets.dir/iqb/datasets/record.cpp.o"
  "CMakeFiles/iqb_datasets.dir/iqb/datasets/record.cpp.o.d"
  "CMakeFiles/iqb_datasets.dir/iqb/datasets/store.cpp.o"
  "CMakeFiles/iqb_datasets.dir/iqb/datasets/store.cpp.o.d"
  "CMakeFiles/iqb_datasets.dir/iqb/datasets/synthetic.cpp.o"
  "CMakeFiles/iqb_datasets.dir/iqb/datasets/synthetic.cpp.o.d"
  "libiqb_datasets.a"
  "libiqb_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iqb_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
