# Empty compiler generated dependencies file for iqb_cli.
# This may be replaced when dependencies are built.
