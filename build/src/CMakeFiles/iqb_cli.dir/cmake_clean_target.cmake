file(REMOVE_RECURSE
  "libiqb_cli.a"
)
