file(REMOVE_RECURSE
  "CMakeFiles/iqb_cli.dir/iqb/cli/cli.cpp.o"
  "CMakeFiles/iqb_cli.dir/iqb/cli/cli.cpp.o.d"
  "libiqb_cli.a"
  "libiqb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iqb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
