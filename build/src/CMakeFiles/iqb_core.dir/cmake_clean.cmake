file(REMOVE_RECURSE
  "CMakeFiles/iqb_core.dir/iqb/core/config.cpp.o"
  "CMakeFiles/iqb_core.dir/iqb/core/config.cpp.o.d"
  "CMakeFiles/iqb_core.dir/iqb/core/grade.cpp.o"
  "CMakeFiles/iqb_core.dir/iqb/core/grade.cpp.o.d"
  "CMakeFiles/iqb_core.dir/iqb/core/pipeline.cpp.o"
  "CMakeFiles/iqb_core.dir/iqb/core/pipeline.cpp.o.d"
  "CMakeFiles/iqb_core.dir/iqb/core/responsiveness.cpp.o"
  "CMakeFiles/iqb_core.dir/iqb/core/responsiveness.cpp.o.d"
  "CMakeFiles/iqb_core.dir/iqb/core/score.cpp.o"
  "CMakeFiles/iqb_core.dir/iqb/core/score.cpp.o.d"
  "CMakeFiles/iqb_core.dir/iqb/core/sensitivity.cpp.o"
  "CMakeFiles/iqb_core.dir/iqb/core/sensitivity.cpp.o.d"
  "CMakeFiles/iqb_core.dir/iqb/core/taxonomy.cpp.o"
  "CMakeFiles/iqb_core.dir/iqb/core/taxonomy.cpp.o.d"
  "CMakeFiles/iqb_core.dir/iqb/core/thresholds.cpp.o"
  "CMakeFiles/iqb_core.dir/iqb/core/thresholds.cpp.o.d"
  "CMakeFiles/iqb_core.dir/iqb/core/trend.cpp.o"
  "CMakeFiles/iqb_core.dir/iqb/core/trend.cpp.o.d"
  "CMakeFiles/iqb_core.dir/iqb/core/weights.cpp.o"
  "CMakeFiles/iqb_core.dir/iqb/core/weights.cpp.o.d"
  "libiqb_core.a"
  "libiqb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iqb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
