
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iqb/core/config.cpp" "src/CMakeFiles/iqb_core.dir/iqb/core/config.cpp.o" "gcc" "src/CMakeFiles/iqb_core.dir/iqb/core/config.cpp.o.d"
  "/root/repo/src/iqb/core/grade.cpp" "src/CMakeFiles/iqb_core.dir/iqb/core/grade.cpp.o" "gcc" "src/CMakeFiles/iqb_core.dir/iqb/core/grade.cpp.o.d"
  "/root/repo/src/iqb/core/pipeline.cpp" "src/CMakeFiles/iqb_core.dir/iqb/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/iqb_core.dir/iqb/core/pipeline.cpp.o.d"
  "/root/repo/src/iqb/core/responsiveness.cpp" "src/CMakeFiles/iqb_core.dir/iqb/core/responsiveness.cpp.o" "gcc" "src/CMakeFiles/iqb_core.dir/iqb/core/responsiveness.cpp.o.d"
  "/root/repo/src/iqb/core/score.cpp" "src/CMakeFiles/iqb_core.dir/iqb/core/score.cpp.o" "gcc" "src/CMakeFiles/iqb_core.dir/iqb/core/score.cpp.o.d"
  "/root/repo/src/iqb/core/sensitivity.cpp" "src/CMakeFiles/iqb_core.dir/iqb/core/sensitivity.cpp.o" "gcc" "src/CMakeFiles/iqb_core.dir/iqb/core/sensitivity.cpp.o.d"
  "/root/repo/src/iqb/core/taxonomy.cpp" "src/CMakeFiles/iqb_core.dir/iqb/core/taxonomy.cpp.o" "gcc" "src/CMakeFiles/iqb_core.dir/iqb/core/taxonomy.cpp.o.d"
  "/root/repo/src/iqb/core/thresholds.cpp" "src/CMakeFiles/iqb_core.dir/iqb/core/thresholds.cpp.o" "gcc" "src/CMakeFiles/iqb_core.dir/iqb/core/thresholds.cpp.o.d"
  "/root/repo/src/iqb/core/trend.cpp" "src/CMakeFiles/iqb_core.dir/iqb/core/trend.cpp.o" "gcc" "src/CMakeFiles/iqb_core.dir/iqb/core/trend.cpp.o.d"
  "/root/repo/src/iqb/core/weights.cpp" "src/CMakeFiles/iqb_core.dir/iqb/core/weights.cpp.o" "gcc" "src/CMakeFiles/iqb_core.dir/iqb/core/weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iqb_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iqb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iqb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
