# Empty compiler generated dependencies file for iqb_core.
# This may be replaced when dependencies are built.
