file(REMOVE_RECURSE
  "libiqb_core.a"
)
