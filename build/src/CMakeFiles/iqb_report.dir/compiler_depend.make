# Empty compiler generated dependencies file for iqb_report.
# This may be replaced when dependencies are built.
