file(REMOVE_RECURSE
  "libiqb_report.a"
)
