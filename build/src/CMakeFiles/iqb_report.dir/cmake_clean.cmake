file(REMOVE_RECURSE
  "CMakeFiles/iqb_report.dir/iqb/report/html.cpp.o"
  "CMakeFiles/iqb_report.dir/iqb/report/html.cpp.o.d"
  "CMakeFiles/iqb_report.dir/iqb/report/render.cpp.o"
  "CMakeFiles/iqb_report.dir/iqb/report/render.cpp.o.d"
  "libiqb_report.a"
  "libiqb_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iqb_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
