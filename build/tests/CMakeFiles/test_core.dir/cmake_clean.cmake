file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/grade_config_test.cpp.o"
  "CMakeFiles/test_core.dir/core/grade_config_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/pipeline_sensitivity_test.cpp.o"
  "CMakeFiles/test_core.dir/core/pipeline_sensitivity_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/responsiveness_test.cpp.o"
  "CMakeFiles/test_core.dir/core/responsiveness_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/score_test.cpp.o"
  "CMakeFiles/test_core.dir/core/score_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/taxonomy_thresholds_test.cpp.o"
  "CMakeFiles/test_core.dir/core/taxonomy_thresholds_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/trend_test.cpp.o"
  "CMakeFiles/test_core.dir/core/trend_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/weights_test.cpp.o"
  "CMakeFiles/test_core.dir/core/weights_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
