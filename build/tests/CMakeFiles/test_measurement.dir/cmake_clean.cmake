file(REMOVE_RECURSE
  "CMakeFiles/test_measurement.dir/measurement/campaign_test.cpp.o"
  "CMakeFiles/test_measurement.dir/measurement/campaign_test.cpp.o.d"
  "CMakeFiles/test_measurement.dir/measurement/clients_test.cpp.o"
  "CMakeFiles/test_measurement.dir/measurement/clients_test.cpp.o.d"
  "test_measurement"
  "test_measurement.pdb"
  "test_measurement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
