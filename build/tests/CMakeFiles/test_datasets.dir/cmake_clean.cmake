file(REMOVE_RECURSE
  "CMakeFiles/test_datasets.dir/datasets/aggregate_test.cpp.o"
  "CMakeFiles/test_datasets.dir/datasets/aggregate_test.cpp.o.d"
  "CMakeFiles/test_datasets.dir/datasets/importers_test.cpp.o"
  "CMakeFiles/test_datasets.dir/datasets/importers_test.cpp.o.d"
  "CMakeFiles/test_datasets.dir/datasets/io_test.cpp.o"
  "CMakeFiles/test_datasets.dir/datasets/io_test.cpp.o.d"
  "CMakeFiles/test_datasets.dir/datasets/store_test.cpp.o"
  "CMakeFiles/test_datasets.dir/datasets/store_test.cpp.o.d"
  "test_datasets"
  "test_datasets.pdb"
  "test_datasets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
