file(REMOVE_RECURSE
  "CMakeFiles/test_netsim.dir/netsim/link_test.cpp.o"
  "CMakeFiles/test_netsim.dir/netsim/link_test.cpp.o.d"
  "CMakeFiles/test_netsim.dir/netsim/network_test.cpp.o"
  "CMakeFiles/test_netsim.dir/netsim/network_test.cpp.o.d"
  "CMakeFiles/test_netsim.dir/netsim/shaper_test.cpp.o"
  "CMakeFiles/test_netsim.dir/netsim/shaper_test.cpp.o.d"
  "CMakeFiles/test_netsim.dir/netsim/sim_test.cpp.o"
  "CMakeFiles/test_netsim.dir/netsim/sim_test.cpp.o.d"
  "CMakeFiles/test_netsim.dir/netsim/tcp_test.cpp.o"
  "CMakeFiles/test_netsim.dir/netsim/tcp_test.cpp.o.d"
  "CMakeFiles/test_netsim.dir/netsim/udp_crosstraffic_test.cpp.o"
  "CMakeFiles/test_netsim.dir/netsim/udp_crosstraffic_test.cpp.o.d"
  "test_netsim"
  "test_netsim.pdb"
  "test_netsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
