# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_netsim[1]_include.cmake")
include("/root/repo/build/tests/test_measurement[1]_include.cmake")
include("/root/repo/build/tests/test_datasets[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
add_test(integration.end_to_end "/root/repo/build/tests/test_integration")
set_tests_properties(integration.end_to_end PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;29;add_test;/root/repo/tests/CMakeLists.txt;0;")
