// Responsiveness-test client (networkQuality / RPM style).
//
// Models the IETF IPPM "Responsiveness under Working Conditions"
// methodology: saturate the connection in both directions with
// parallel TCP flows, then measure RTT with probes *while loaded*.
// Reports working (loaded) latency as its primary latency signal —
// the metric the responsiveness extension (core/responsiveness)
// consumes — plus saturating throughput in both directions. No loss
// metric (the methodology does not define one).
#pragma once

#include "iqb/measurement/types.hpp"
#include "iqb/netsim/tcp.hpp"
#include "iqb/netsim/udp.hpp"

namespace iqb::measurement {

struct RpmStyleConfig {
  std::size_t parallel_connections = 4;   ///< Per direction.
  netsim::SimTime duration_s = 12.0;
  netsim::SimTime probe_interval_s = 0.1;
  std::size_t idle_ping_count = 10;
  netsim::CongestionAlgo algo = netsim::CongestionAlgo::kCubic;
};

class RpmStyleClient final : public MeasurementClient {
 public:
  explicit RpmStyleClient(RpmStyleConfig config = {}) noexcept
      : config_(config) {}

  std::string_view name() const noexcept override { return "rpm_style"; }
  void run(const TestEnvironment& env, ObservationFn done) override;

 private:
  RpmStyleConfig config_;
};

}  // namespace iqb::measurement
