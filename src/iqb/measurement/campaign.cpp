#include "iqb/measurement/campaign.hpp"

#include <utility>

#include "iqb/util/log.hpp"

namespace iqb::measurement {

using netsim::CrossTrafficConfig;
using netsim::CrossTrafficFlow;
using netsim::Network;
using netsim::Simulator;

namespace {

/// One isolated session in a fresh world. Errors cover both tool
/// failures (no route, ...) and the session time limit.
util::Result<TestObservation> run_one_session(
    const CampaignConfig& config, const SubscriberSpec& subscriber,
    MeasurementClient& client, util::Rng session_rng) {
  Simulator sim;
  Network net(sim, session_rng.next_u64());
  const auto server = net.add_node("server");
  const auto router = net.add_node("isp_router");
  const auto client_node = net.add_node("client");
  net.add_duplex_link(server, router, config.core, config.core);
  net.add_duplex_link(router, client_node, subscriber.access_down,
                      subscriber.access_up);

  // Optional background load on both access directions.
  std::unique_ptr<CrossTrafficFlow> bg_down;
  std::unique_ptr<CrossTrafficFlow> bg_up;
  if (subscriber.background_utilization > 0.0) {
    auto down_path = net.path(router, client_node);
    auto up_path = net.path(client_node, router);
    CrossTrafficConfig bg;
    bg.mean_on_s = 2.0;
    bg.mean_off_s = 2.0;
    if (down_path.ok()) {
      bg.rate = subscriber.access_down.rate *
                subscriber.background_utilization;
      bg_down = std::make_unique<CrossTrafficFlow>(
          sim, down_path.value(), bg, session_rng.fork(101), 1000001);
      bg_down->start();
    }
    if (up_path.ok()) {
      // Upload background load is typically lighter.
      bg.rate = subscriber.access_up.rate *
                subscriber.background_utilization * 0.5;
      bg_up = std::make_unique<CrossTrafficFlow>(
          sim, up_path.value(), bg, session_rng.fork(102), 1000002);
      bg_up->start();
    }
  }

  std::uint64_t next_flow_id = 1;
  std::vector<std::shared_ptr<void>> graveyard;
  TestEnvironment env;
  env.sim = &sim;
  env.network = &net;
  env.client_node = client_node;
  env.server_node = server;
  env.next_flow_id = &next_flow_id;
  env.retain = [&graveyard](std::shared_ptr<void> state) {
    graveyard.push_back(std::move(state));
  };
  env.rng = session_rng.fork(103);

  bool completed = false;
  util::Result<TestObservation> outcome =
      util::make_error(util::ErrorCode::kInternal, "session never ran");
  client.run(env, [&completed, &outcome](
                      util::Result<TestObservation> result) {
    completed = true;
    outcome = std::move(result);
  });
  sim.run(config.session_time_limit_s);

  // Stop background sources before the graveyard (and with it the
  // flows' completion closures) is torn down.
  if (bg_down) bg_down->stop();
  if (bg_up) bg_up->stop();

  if (!completed) {
    return util::make_error(util::ErrorCode::kInternal,
                            "time limit exceeded");
  }
  return outcome;
}

}  // namespace

void Campaign::add_client(std::shared_ptr<MeasurementClient> client) {
  clients_.push_back(std::move(client));
}

void Campaign::add_subscriber(SubscriberSpec subscriber) {
  subscribers_.push_back(std::move(subscriber));
}

std::vector<SessionRecord> Campaign::run() {
  std::vector<SessionRecord> records;
  failed_sessions_ = 0;
  retried_sessions_ = 0;
  breaker_skipped_ = 0;
  breaker_states_.clear();
  std::map<std::string, robust::CircuitBreaker> breakers;
  util::Rng campaign_rng(config_.seed);
  std::int64_t session_index = 0;

  for (const SubscriberSpec& subscriber : subscribers_) {
    for (const auto& client : clients_) {
      robust::CircuitBreaker* breaker = nullptr;
      if (config_.breaker_enabled) {
        auto [it, inserted] = breakers.try_emplace(
            std::string(client->name()), config_.breaker);
        breaker = &it->second;
      }
      for (std::size_t rep = 0; rep < config_.tests_per_tool; ++rep) {
        const auto this_session = static_cast<std::uint64_t>(session_index);
        ++session_index;
        if (breaker && !breaker->allow_request()) {
          ++breaker_skipped_;
          continue;
        }

        // Fresh, isolated world per session; retries get their own
        // stream forked off the session's so attempt 0 is identical
        // to a retry-free campaign.
        util::Rng session_rng = campaign_rng.fork(this_session + 1);
        auto outcome =
            run_one_session(config_, subscriber, *client, session_rng);
        for (std::size_t attempt = 1;
             !outcome.ok() && attempt <= config_.session_retries; ++attempt) {
          ++retried_sessions_;
          outcome = run_one_session(config_, subscriber, *client,
                                    session_rng.fork(900 + attempt));
        }

        if (outcome.ok()) {
          if (breaker) breaker->record_success();
          SessionRecord record;
          record.subscriber_id = subscriber.subscriber_id;
          record.region = subscriber.region;
          record.isp = subscriber.isp;
          record.timestamp =
              config_.base_time +
              static_cast<std::int64_t>(this_session) * config_.session_spacing_s;
          record.observation = std::move(outcome).value();
          records.push_back(std::move(record));
        } else {
          if (breaker) breaker->record_failure();
          ++failed_sessions_;
          IQB_LOG(kWarn) << "session failed: subscriber="
                         << subscriber.subscriber_id << " tool="
                         << client->name() << " rep=" << rep << " reason="
                         << outcome.error().to_string();
        }
      }
    }
  }
  for (const auto& [tool, breaker] : breakers) {
    breaker_states_[tool] = breaker.state();
  }
  IQB_LOG(kInfo) << "campaign complete: " << records.size()
                 << " sessions ok, " << failed_sessions_ << " failed, "
                 << retried_sessions_ << " retried, " << breaker_skipped_
                 << " breaker-skipped";
  return records;
}

}  // namespace iqb::measurement
