#include "iqb/measurement/population.hpp"

#include <cmath>

namespace iqb::measurement {

std::string_view access_technology_name(AccessTechnology tech) noexcept {
  switch (tech) {
    case AccessTechnology::kFiber: return "fiber";
    case AccessTechnology::kCable: return "cable";
    case AccessTechnology::kDsl: return "dsl";
    case AccessTechnology::kFixedWireless: return "fixed_wireless";
    case AccessTechnology::kSatellite: return "satellite";
  }
  return "unknown";
}

TechnologyTraits technology_traits(AccessTechnology tech) noexcept {
  switch (tech) {
    case AccessTechnology::kFiber:
      return {0.8, 0.003, 20.0, netsim::LossSpec::bernoulli(0.00005)};
    case AccessTechnology::kCable:
      // DOCSIS: deep buffers (bufferbloat), mild loss, and burst
      // provisioning (the modem tier bursts ~2x for the first MBs).
      return {0.08, 0.008, 120.0, netsim::LossSpec::bernoulli(0.0003),
              2.0, 8 * 1024 * 1024};
    case AccessTechnology::kDsl:
      return {0.12, 0.012, 80.0, netsim::LossSpec::bernoulli(0.0008)};
    case AccessTechnology::kFixedWireless:
      // Radio: bursty Gilbert-Elliott loss.
      return {0.3, 0.010, 60.0,
              netsim::LossSpec::gilbert_elliott(0.002, 0.2, 0.0005, 0.08)};
    case AccessTechnology::kSatellite:
      // GEO: ~250 ms one way, bursty loss, big buffers.
      return {0.1, 0.250, 300.0,
              netsim::LossSpec::gilbert_elliott(0.001, 0.1, 0.001, 0.05)};
  }
  return {0.5, 0.01, 50.0, netsim::LossSpec::none()};
}

std::vector<SubscriberSpec> generate_population(const RegionPlan& plan,
                                                util::Rng& rng) {
  std::vector<SubscriberSpec> population;
  population.reserve(plan.subscribers);

  std::vector<double> weights;
  weights.reserve(plan.mix.size());
  for (const auto& share : plan.mix) weights.push_back(share.share);

  for (std::size_t i = 0; i < plan.subscribers; ++i) {
    const TechnologyShare& share = plan.mix[rng.weighted_index(weights)];
    const TechnologyTraits traits = technology_traits(share.technology);

    // Provisioned rate: log-uniform inside the tier's band.
    const double log_lo = std::log(share.min_download_mbps);
    const double log_hi = std::log(share.max_download_mbps);
    const double down_mbps = std::exp(rng.uniform(log_lo, log_hi));
    const double up_mbps = std::max(1.0, down_mbps * traits.upload_ratio);

    SubscriberSpec subscriber;
    subscriber.subscriber_id =
        plan.region + "-" + std::string(access_technology_name(share.technology)) +
        "-" + std::to_string(i);
    subscriber.region = plan.region;
    subscriber.isp = plan.isp;

    auto make_direction = [&traits, &rng](double rate_mbps) {
      netsim::LinkSpec spec;
      if (traits.line_rate_factor > 1.0) {
        // Burst-provisioned tier: fast line shaped to the provisioned
        // rate once the burst credit is spent.
        spec.rate = util::Mbps(rate_mbps * traits.line_rate_factor);
        spec.shaper.enabled = true;
        spec.shaper.sustained_rate = util::Mbps(rate_mbps);
        spec.shaper.burst_bytes = traits.burst_bytes;
      } else {
        spec.rate = util::Mbps(rate_mbps);
      }
      // Jitter the delay a little per subscriber (different loop
      // lengths / towers).
      spec.propagation_delay =
          util::Seconds(traits.one_way_delay_s * rng.uniform(0.8, 1.3));
      // Buffer sized in time at this direction's sustained rate.
      const double buffer_bytes =
          rate_mbps * 1e6 / 8.0 * (traits.buffer_ms / 1e3);
      spec.queue = netsim::QueueSpec::drop_tail(
          std::max<std::uint64_t>(static_cast<std::uint64_t>(buffer_bytes),
                                  16 * 1024));
      spec.loss = traits.loss;
      return spec;
    };
    subscriber.access_down = make_direction(down_mbps);
    subscriber.access_up = make_direction(up_mbps);
    subscriber.background_utilization =
        std::clamp(rng.normal(plan.mean_background_utilization,
                              plan.mean_background_utilization / 2.0),
                   0.0, 0.8);
    population.push_back(std::move(subscriber));
  }
  return population;
}

std::vector<RegionPlan> example_region_plans(std::size_t subscribers_per_region) {
  std::vector<RegionPlan> plans(3);

  plans[0].region = "metro";
  plans[0].isp = "cityfiber";
  plans[0].subscribers = subscribers_per_region;
  plans[0].mean_background_utilization = 0.10;
  plans[0].mix = {
      {AccessTechnology::kFiber, 0.7, 300.0, 1000.0},
      {AccessTechnology::kCable, 0.3, 100.0, 500.0},
  };

  plans[1].region = "suburban";
  plans[1].isp = "cablecorp";
  plans[1].subscribers = subscribers_per_region;
  plans[1].mean_background_utilization = 0.15;
  plans[1].mix = {
      {AccessTechnology::kCable, 0.6, 50.0, 300.0},
      {AccessTechnology::kDsl, 0.3, 10.0, 50.0},
      {AccessTechnology::kFiber, 0.1, 300.0, 900.0},
  };

  plans[2].region = "rural";
  plans[2].isp = "hilltop_wireless";
  plans[2].subscribers = subscribers_per_region;
  plans[2].mean_background_utilization = 0.2;
  plans[2].mix = {
      {AccessTechnology::kFixedWireless, 0.5, 10.0, 100.0},
      {AccessTechnology::kDsl, 0.3, 5.0, 25.0},
      {AccessTechnology::kSatellite, 0.2, 20.0, 100.0},
  };

  return plans;
}

}  // namespace iqb::measurement
