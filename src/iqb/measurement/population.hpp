// Subscriber population synthesis for packet-level campaigns.
//
// Translates a regional access-technology mix (fiber / cable / DSL /
// fixed-wireless / satellite) into concrete SubscriberSpecs with
// realistic per-technology rates, buffering, base latency and loss.
// This is the high-fidelity counterpart of datasets::RegionProfile:
// here the distributions parameterize *links*, and the measurements
// emerge from packet dynamics rather than being drawn directly.
#pragma once

#include <string>
#include <vector>

#include "iqb/measurement/campaign.hpp"
#include "iqb/util/rng.hpp"

namespace iqb::measurement {

enum class AccessTechnology { kFiber, kCable, kDsl, kFixedWireless, kSatellite };

std::string_view access_technology_name(AccessTechnology tech) noexcept;

/// Mix entry: share of subscribers on a technology, with a provisioned
/// rate range (uniform in log space between min and max).
struct TechnologyShare {
  AccessTechnology technology = AccessTechnology::kFiber;
  double share = 1.0;  ///< Relative weight within the region.
  double min_download_mbps = 100.0;
  double max_download_mbps = 1000.0;
};

struct RegionPlan {
  std::string region;
  std::string isp = "sim_isp";
  std::vector<TechnologyShare> mix;
  std::size_t subscribers = 10;
  /// Mean background utilization across subscribers (each subscriber
  /// draws its own level around this).
  double mean_background_utilization = 0.15;
};

/// Technology defaults: upload ratio, base one-way delay, buffer
/// sizing, loss behaviour and burst provisioning. Exposed so tests
/// can assert on them.
struct TechnologyTraits {
  double upload_ratio;
  double one_way_delay_s;
  double buffer_ms;  ///< Buffer depth in milliseconds at the line rate.
  netsim::LossSpec loss;
  /// Burst provisioning ("speed boost"): when > 1, the physical line
  /// runs at provisioned_rate * line_rate_factor with a token bucket
  /// shaping to the provisioned rate after burst_bytes of credit.
  double line_rate_factor = 1.0;
  std::uint64_t burst_bytes = 0;
};
TechnologyTraits technology_traits(AccessTechnology tech) noexcept;

/// Draw a concrete subscriber population for a region plan.
std::vector<SubscriberSpec> generate_population(const RegionPlan& plan,
                                                util::Rng& rng);

/// A compact three-region demo country used by examples/benches where
/// full six-region packet simulation would be too slow.
std::vector<RegionPlan> example_region_plans(std::size_t subscribers_per_region);

}  // namespace iqb::measurement
