// Shared types for measurement clients.
//
// A *measurement client* is the simulated analogue of one real-world
// test tool (M-Lab NDT, Ookla Speedtest, speed.cloudflare.com). Each
// produces a TestObservation: the tool's own estimate of the four IQB
// network-requirement metrics, with std::nullopt for metrics the tool
// genuinely does not report (e.g. Ookla's open aggregate data carries
// no packet loss), so the aggregation tier must cope with coverage
// gaps exactly as it must with the real datasets.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "iqb/netsim/network.hpp"
#include "iqb/netsim/sim.hpp"
#include "iqb/util/result.hpp"
#include "iqb/util/units.hpp"

namespace iqb::measurement {

/// Everything a client needs to run one test against a server.
/// Non-owning; the caller keeps the simulator and network alive.
struct TestEnvironment {
  netsim::Simulator* sim = nullptr;
  netsim::Network* network = nullptr;
  netsim::NodeId client_node = 0;
  netsim::NodeId server_node = 0;
  /// Monotonic flow-id allocator shared across concurrent tests.
  std::uint64_t* next_flow_id = nullptr;
  /// Keep-alive sink: clients park their per-test state (flows etc.)
  /// here so in-flight packet callbacks never dangle. The owner must
  /// hold these until it stops running the simulator. Required.
  std::function<void(std::shared_ptr<void>)> retain;
  /// Per-test random stream (probe jitter etc.).
  util::Rng rng{1};
};

/// One tool's view of one connection at one point in (simulated) time.
struct TestObservation {
  std::string tool;  ///< "ndt" | "ookla_style" | "cloudflare_style" | ...
  netsim::SimTime started_at = 0.0;
  netsim::SimTime finished_at = 0.0;

  std::optional<util::Mbps> download;
  std::optional<util::Mbps> upload;
  std::optional<util::Millis> idle_latency;
  std::optional<util::Millis> loaded_latency;
  std::optional<util::LossRate> loss;
};

using ObservationFn = std::function<void(util::Result<TestObservation>)>;

/// Interface implemented by each simulated test tool. run() schedules
/// simulator events and returns immediately; `done` fires in simulated
/// time when the test completes. A client instance may run many tests
/// concurrently (each run owns its per-test state).
class MeasurementClient {
 public:
  virtual ~MeasurementClient() = default;
  virtual std::string_view name() const noexcept = 0;
  virtual void run(const TestEnvironment& env, ObservationFn done) = 0;
};

}  // namespace iqb::measurement
