#include "iqb/measurement/cloudflare_style.hpp"

#include <memory>
#include <vector>

#include "iqb/stats/percentile.hpp"

namespace iqb::measurement {

using netsim::Path;
using netsim::TcpConfig;
using netsim::TcpFlow;
using netsim::TcpStats;
using netsim::UdpProbeConfig;
using netsim::UdpProbeFlow;
using netsim::UdpProbeStats;

namespace {

struct CloudflareRun {
  /// Ladder continuation; stored here so transfer completions can
  /// recurse. Nulled at test completion to break the shared_ptr cycle
  /// (state -> function -> state).
  std::function<void(bool)> run_ladder;
  std::unique_ptr<UdpProbeFlow> ping;
  std::unique_ptr<UdpProbeFlow> loss_train;
  std::unique_ptr<UdpProbeFlow> loaded_ping;
  std::vector<std::unique_ptr<TcpFlow>> transfers;  // all, both directions
  std::vector<double> download_rates_mbps;
  std::vector<double> upload_rates_mbps;
  std::size_t ladder_index = 0;
  TestObservation observation;
};

}  // namespace

void CloudflareStyleClient::run(const TestEnvironment& env, ObservationFn done) {
  auto to_client_r = env.network->path(env.server_node, env.client_node);
  auto to_server_r = env.network->path(env.client_node, env.server_node);
  if (!to_client_r.ok()) {
    done(to_client_r.error());
    return;
  }
  if (!to_server_r.ok()) {
    done(to_server_r.error());
    return;
  }
  const Path to_client = to_client_r.value();
  const Path to_server = to_server_r.value();

  auto state = std::make_shared<CloudflareRun>();
  state->observation.tool = std::string(name());
  state->observation.started_at = env.sim->now();
  env.retain(state);

  netsim::Simulator* sim = env.sim;
  std::uint64_t* flow_ids = env.next_flow_id;
  const CloudflareStyleConfig config = config_;

  auto percentile_of = [config](const std::vector<double>& rates) {
    auto p = stats::percentile(rates, config.throughput_percentile);
    return util::Mbps(p.ok() ? p.value() : 0.0);
  };

  // ---- phase 4: loss probe train, then finish -----------------------
  auto start_loss_train = [state, sim, flow_ids, to_client, to_server, config,
                           done, percentile_of]() mutable {
    UdpProbeConfig loss;
    loss.probe_count = config.loss_probe_count;
    loss.interval_s = config.loss_probe_interval_s;
    state->loss_train = std::make_unique<UdpProbeFlow>(
        *sim, to_server, to_client, loss, (*flow_ids)++);
    state->loss_train->start([state, sim, done,
                              percentile_of](const UdpProbeStats& stats) mutable {
      state->run_ladder = nullptr;  // break the state<->closure cycle
      state->observation.loss = util::LossRate(stats.loss_rate());
      state->observation.download = percentile_of(state->download_rates_mbps);
      state->observation.upload = percentile_of(state->upload_rates_mbps);
      state->observation.finished_at = sim->now();
      done(state->observation);
    });
  };

  // ---- phases 2-3: transfer ladders (download then upload) ----------
  // Each ladder step is a byte-limited flow measured individually.
  // Stored in the state so completions can recurse via state->run_ladder.
  state->run_ladder = [state, sim, flow_ids, to_client, to_server, config,
                       start_loss_train](bool uploading) mutable {
    const auto& ladder =
        uploading ? config.upload_ladder_bytes : config.download_ladder_bytes;
    if (state->ladder_index >= ladder.size()) {
      state->ladder_index = 0;
      if (!uploading) {
        state->run_ladder(true);  // switch to the upload ladder
      } else {
        start_loss_train();
      }
      return;
    }
    const std::uint64_t bytes = ladder[state->ladder_index];
    ++state->ladder_index;

    TcpConfig tcp;
    tcp.algo = config.algo;
    tcp.max_bytes = bytes;
    tcp.max_duration_s = config.per_transfer_timeout_s;
    const Path& data = uploading ? to_server : to_client;
    const Path& acks = uploading ? to_client : to_server;
    state->transfers.push_back(std::make_unique<TcpFlow>(
        *sim, data, acks, tcp, (*flow_ids)++));
    TcpFlow* flow = state->transfers.back().get();
    flow->start([state, uploading](const TcpStats& stats) mutable {
      const double rate = stats.goodput().value();
      (uploading ? state->upload_rates_mbps : state->download_rates_mbps)
          .push_back(rate);
      state->run_ladder(uploading);
    });

    // Loaded latency: probe during the largest download transfer.
    if (!uploading && bytes == config.download_ladder_bytes.back()) {
      UdpProbeConfig loaded;
      loaded.probe_count = 20;
      loaded.interval_s = 0.05;
      state->loaded_ping = std::make_unique<UdpProbeFlow>(
          *sim, to_server, to_client, loaded, (*flow_ids)++);
      state->loaded_ping->start([state](const UdpProbeStats& stats) {
        if (!stats.rtt_samples_ms.empty()) {
          state->observation.loaded_latency =
              util::Millis(stats.mean_rtt_ms());
        }
      });
    }
  };

  // ---- phase 1: idle latency -----------------------------------------
  UdpProbeConfig ping;
  ping.probe_count = config.ping_count;
  ping.interval_s = config.ping_interval_s;
  state->ping = std::make_unique<UdpProbeFlow>(*sim, to_server, to_client,
                                               ping, (*flow_ids)++);
  state->ping->start([state](const UdpProbeStats& stats) mutable {
    if (!stats.rtt_samples_ms.empty()) {
      state->observation.idle_latency = util::Millis(stats.min_rtt_ms());
    }
    state->run_ladder(false);
  });
}

}  // namespace iqb::measurement
