// Dataset adapters: campaign session records -> dataset-tier records.
//
// Each adapter models how one real data source exposes measurements:
//  * NdtDatasetAdapter    — per-test rows, all four metrics (M-Lab
//    publishes raw NDT tests in BigQuery).
//  * CloudflareDatasetAdapter — per-test rows; all four metrics
//    (speed.cloudflare.com measurements + Radar loss estimates).
//  * OoklaDatasetAdapter  — per-test rows but with loss withheld,
//    mirroring Ookla's open aggregate data which publishes throughput
//    and latency only.
// Adapters also attach the dataset name the IQB weight tables key on.
#pragma once

#include <span>
#include <vector>

#include "iqb/datasets/record.hpp"
#include "iqb/measurement/campaign.hpp"

namespace iqb::measurement {

/// Convert the sessions produced by a given tool into dataset records.
/// Sessions from other tools are ignored, so one campaign's output can
/// be fanned out across all adapters.
class DatasetAdapter {
 public:
  virtual ~DatasetAdapter() = default;
  /// Dataset name emitted on the records ("ndt", "cloudflare", "ookla").
  virtual std::string_view dataset_name() const noexcept = 0;
  /// Tool name this adapter consumes ("ndt", "cloudflare_style", ...).
  virtual std::string_view tool_name() const noexcept = 0;

  std::vector<datasets::MeasurementRecord> convert(
      std::span<const SessionRecord> sessions) const;

 protected:
  /// Hook for per-dataset field policy (e.g. withholding loss).
  virtual void apply_policy(datasets::MeasurementRecord& record) const;
};

class NdtDatasetAdapter final : public DatasetAdapter {
 public:
  std::string_view dataset_name() const noexcept override { return "ndt"; }
  std::string_view tool_name() const noexcept override { return "ndt"; }
};

class CloudflareDatasetAdapter final : public DatasetAdapter {
 public:
  std::string_view dataset_name() const noexcept override { return "cloudflare"; }
  std::string_view tool_name() const noexcept override {
    return "cloudflare_style";
  }
};

class OoklaDatasetAdapter final : public DatasetAdapter {
 public:
  std::string_view dataset_name() const noexcept override { return "ookla"; }
  std::string_view tool_name() const noexcept override { return "ookla_style"; }

 protected:
  void apply_policy(datasets::MeasurementRecord& record) const override;
};

/// Extension: the responsiveness tool (rpm_style). Not part of the
/// paper's three-dataset panel; feeds core/responsiveness analyses.
class RpmDatasetAdapter final : public DatasetAdapter {
 public:
  std::string_view dataset_name() const noexcept override { return "rpm"; }
  std::string_view tool_name() const noexcept override { return "rpm_style"; }
};

/// Run every adapter over the sessions and collect all records.
std::vector<datasets::MeasurementRecord> convert_sessions(
    std::span<const SessionRecord> sessions,
    std::span<const DatasetAdapter* const> adapters);

/// The standard three-adapter panel.
std::vector<datasets::MeasurementRecord> convert_sessions_default(
    std::span<const SessionRecord> sessions);

}  // namespace iqb::measurement
