#include "iqb/measurement/ookla_style.hpp"

#include <memory>
#include <vector>

namespace iqb::measurement {

using netsim::Path;
using netsim::TcpConfig;
using netsim::TcpFlow;
using netsim::TcpStats;
using netsim::UdpProbeConfig;
using netsim::UdpProbeFlow;
using netsim::UdpProbeStats;

namespace {

struct OoklaRun {
  std::unique_ptr<UdpProbeFlow> ping;
  std::unique_ptr<UdpProbeFlow> loaded_ping;
  std::vector<std::unique_ptr<TcpFlow>> download_flows;
  std::vector<std::unique_ptr<TcpFlow>> upload_flows;
  std::size_t download_done = 0;
  std::size_t upload_done = 0;
  netsim::SimTime download_window_start = 0.0;
  netsim::SimTime upload_window_start = 0.0;
  TestObservation observation;
};

}  // namespace

void OoklaStyleClient::run(const TestEnvironment& env, ObservationFn done) {
  auto to_client_r = env.network->path(env.server_node, env.client_node);
  auto to_server_r = env.network->path(env.client_node, env.server_node);
  if (!to_client_r.ok()) {
    done(to_client_r.error());
    return;
  }
  if (!to_server_r.ok()) {
    done(to_server_r.error());
    return;
  }
  const Path to_client = to_client_r.value();
  const Path to_server = to_server_r.value();

  auto state = std::make_shared<OoklaRun>();
  state->observation.tool = std::string(name());
  state->observation.started_at = env.sim->now();
  env.retain(state);

  netsim::Simulator* sim = env.sim;
  std::uint64_t* flow_ids = env.next_flow_id;
  const OoklaStyleConfig config = config_;

  TcpConfig tcp;
  tcp.algo = config.algo;
  tcp.max_duration_s = config.duration_s;

  // Phases chain bottom-up: ping -> download (+ loaded pings) -> upload.
  auto on_upload_flow_done = [state, sim, done](const TcpStats&) mutable {
    ++state->upload_done;
    if (state->upload_done < state->upload_flows.size()) return;
    util::Mbps total(0.0);
    for (const auto& flow : state->upload_flows) {
      total += flow->stats().goodput_between(state->upload_window_start,
                                             sim->now());
    }
    state->observation.upload = total;
    state->observation.finished_at = sim->now();
    done(state->observation);
  };

  auto start_upload = [state, sim, flow_ids, to_client, to_server, tcp, config,
                       on_upload_flow_done]() mutable {
    state->upload_window_start = sim->now() + config.ramp_discard_s;
    for (std::size_t i = 0; i < config.parallel_connections; ++i) {
      state->upload_flows.push_back(std::make_unique<TcpFlow>(
          *sim, to_server, to_client, tcp, (*flow_ids)++));
    }
    for (auto& flow : state->upload_flows) flow->start(on_upload_flow_done);
  };

  auto on_download_flow_done = [state, sim, start_upload](const TcpStats&) mutable {
    ++state->download_done;
    if (state->download_done < state->download_flows.size()) return;
    util::Mbps total(0.0);
    for (const auto& flow : state->download_flows) {
      total += flow->stats().goodput_between(state->download_window_start,
                                             sim->now());
    }
    state->observation.download = total;
    start_upload();
  };

  auto start_download = [state, sim, flow_ids, to_client, to_server, tcp,
                         config, on_download_flow_done]() mutable {
    state->download_window_start = sim->now() + config.ramp_discard_s;
    for (std::size_t i = 0; i < config.parallel_connections; ++i) {
      state->download_flows.push_back(std::make_unique<TcpFlow>(
          *sim, to_client, to_server, tcp, (*flow_ids)++));
    }
    for (auto& flow : state->download_flows) flow->start(on_download_flow_done);

    // Loaded-latency probes ride alongside the download phase.
    UdpProbeConfig loaded;
    loaded.interval_s = 0.25;
    loaded.probe_count =
        static_cast<std::size_t>(config.duration_s / loaded.interval_s);
    if (loaded.probe_count > 0) {
      state->loaded_ping = std::make_unique<UdpProbeFlow>(
          *sim, to_server, to_client, loaded, (*flow_ids)++);
      state->loaded_ping->start([state](const UdpProbeStats& stats) {
        if (!stats.rtt_samples_ms.empty()) {
          state->observation.loaded_latency = util::Millis(stats.mean_rtt_ms());
        }
      });
    }
  };

  // Phase 1: idle ping train.
  UdpProbeConfig ping;
  ping.probe_count = config.ping_count;
  ping.interval_s = config.ping_interval_s;
  state->ping = std::make_unique<UdpProbeFlow>(*sim, to_server, to_client,
                                               ping, (*flow_ids)++);
  state->ping->start(
      [state, start_download](const UdpProbeStats& stats) mutable {
        if (!stats.rtt_samples_ms.empty()) {
          state->observation.idle_latency = util::Millis(stats.min_rtt_ms());
        }
        start_download();
      });
}

}  // namespace iqb::measurement
