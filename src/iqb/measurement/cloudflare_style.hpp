// speed.cloudflare.com-style measurement client.
//
// Models Cloudflare's browser speed test shape: a ladder of fixed-size
// HTTP-like transfers (100 kB, 1 MB, 10 MB, 25 MB down; 100 kB, 1 MB,
// 10 MB up), each measured individually; the reported throughput is
// the 90th percentile of the per-transfer rates — Cloudflare's own
// published methodology. Small transfers never leave slow start, so on
// high-BDP links this client reads *lower* than Ookla-style parallel
// steady-state tests: a third, genuinely different way of measuring
// the same wire, which is exactly the disagreement the IQB dataset
// tier exists to reconcile. Loss comes from a dedicated UDP probe
// train (Cloudflare Radar publishes packet-loss estimates).
#pragma once

#include <vector>

#include "iqb/measurement/types.hpp"
#include "iqb/netsim/tcp.hpp"
#include "iqb/netsim/udp.hpp"

namespace iqb::measurement {

struct CloudflareStyleConfig {
  std::vector<std::uint64_t> download_ladder_bytes{100'000, 1'000'000,
                                                   10'000'000, 25'000'000};
  std::vector<std::uint64_t> upload_ladder_bytes{100'000, 1'000'000,
                                                 10'000'000};
  double throughput_percentile = 90.0;  ///< Over per-transfer rates.
  std::size_t ping_count = 20;
  netsim::SimTime ping_interval_s = 0.02;
  std::size_t loss_probe_count = 100;
  netsim::SimTime loss_probe_interval_s = 0.02;
  /// Safety cap per transfer so a dead link cannot hang the test.
  netsim::SimTime per_transfer_timeout_s = 30.0;
  netsim::CongestionAlgo algo = netsim::CongestionAlgo::kCubic;
};

class CloudflareStyleClient final : public MeasurementClient {
 public:
  explicit CloudflareStyleClient(CloudflareStyleConfig config = {})
      : config_(std::move(config)) {}

  std::string_view name() const noexcept override { return "cloudflare_style"; }
  void run(const TestEnvironment& env, ObservationFn done) override;

 private:
  CloudflareStyleConfig config_;
};

}  // namespace iqb::measurement
