#include "iqb/measurement/adapters.hpp"

namespace iqb::measurement {

using datasets::MeasurementRecord;

std::vector<MeasurementRecord> DatasetAdapter::convert(
    std::span<const SessionRecord> sessions) const {
  std::vector<MeasurementRecord> records;
  for (const SessionRecord& session : sessions) {
    if (session.observation.tool != tool_name()) continue;
    MeasurementRecord record;
    record.dataset = std::string(dataset_name());
    record.region = session.region;
    record.isp = session.isp;
    record.subscriber_id = session.subscriber_id;
    record.timestamp = session.timestamp;
    record.download = session.observation.download;
    record.upload = session.observation.upload;
    record.latency = session.observation.idle_latency;
    record.loaded_latency = session.observation.loaded_latency;
    record.loss = session.observation.loss;
    apply_policy(record);
    if (record.is_valid()) records.push_back(std::move(record));
  }
  return records;
}

void DatasetAdapter::apply_policy(MeasurementRecord&) const {}

void OoklaDatasetAdapter::apply_policy(MeasurementRecord& record) const {
  // Ookla's open aggregate dataset does not include packet loss.
  record.loss.reset();
}

std::vector<MeasurementRecord> convert_sessions(
    std::span<const SessionRecord> sessions,
    std::span<const DatasetAdapter* const> adapters) {
  std::vector<MeasurementRecord> records;
  for (const DatasetAdapter* adapter : adapters) {
    auto converted = adapter->convert(sessions);
    records.insert(records.end(), std::make_move_iterator(converted.begin()),
                   std::make_move_iterator(converted.end()));
  }
  return records;
}

std::vector<MeasurementRecord> convert_sessions_default(
    std::span<const SessionRecord> sessions) {
  const NdtDatasetAdapter ndt;
  const CloudflareDatasetAdapter cloudflare;
  const OoklaDatasetAdapter ookla;
  const DatasetAdapter* panel[] = {&ndt, &cloudflare, &ookla};
  return convert_sessions(sessions, panel);
}

}  // namespace iqb::measurement
