#include "iqb/measurement/rpm_style.hpp"

#include <memory>
#include <vector>

namespace iqb::measurement {

using netsim::Path;
using netsim::TcpConfig;
using netsim::TcpFlow;
using netsim::TcpStats;
using netsim::UdpProbeConfig;
using netsim::UdpProbeFlow;
using netsim::UdpProbeStats;

namespace {

struct RpmRun {
  std::unique_ptr<UdpProbeFlow> idle_ping;
  std::unique_ptr<UdpProbeFlow> loaded_ping;
  std::vector<std::unique_ptr<TcpFlow>> down_flows;
  std::vector<std::unique_ptr<TcpFlow>> up_flows;
  std::size_t flows_done = 0;
  bool probes_done = false;
  netsim::SimTime load_started_at = 0.0;
  TestObservation observation;
};

}  // namespace

void RpmStyleClient::run(const TestEnvironment& env, ObservationFn done) {
  auto to_client_r = env.network->path(env.server_node, env.client_node);
  auto to_server_r = env.network->path(env.client_node, env.server_node);
  if (!to_client_r.ok()) {
    done(to_client_r.error());
    return;
  }
  if (!to_server_r.ok()) {
    done(to_server_r.error());
    return;
  }
  const Path to_client = to_client_r.value();
  const Path to_server = to_server_r.value();

  auto state = std::make_shared<RpmRun>();
  state->observation.tool = std::string(name());
  state->observation.started_at = env.sim->now();
  env.retain(state);

  netsim::Simulator* sim = env.sim;
  std::uint64_t* flow_ids = env.next_flow_id;
  const RpmStyleConfig config = config_;

  // Completion requires both: all flows done AND the loaded probe
  // train finished (they end at roughly the same time).
  auto maybe_finish = [state, sim, config, done]() mutable {
    const std::size_t total_flows =
        state->down_flows.size() + state->up_flows.size();
    if (state->flows_done < total_flows || !state->probes_done) return;
    // Saturating throughput: steady-state window after 1/3 ramp.
    const netsim::SimTime window_start =
        state->load_started_at + config.duration_s / 3.0;
    util::Mbps down_total(0.0), up_total(0.0);
    for (const auto& flow : state->down_flows) {
      down_total += flow->stats().goodput_between(window_start, sim->now());
    }
    for (const auto& flow : state->up_flows) {
      up_total += flow->stats().goodput_between(window_start, sim->now());
    }
    state->observation.download = down_total;
    state->observation.upload = up_total;
    state->observation.finished_at = sim->now();
    done(state->observation);
  };

  auto start_load = [state, sim, flow_ids, to_client, to_server, config,
                     maybe_finish]() mutable {
    state->load_started_at = sim->now();
    TcpConfig tcp;
    tcp.algo = config.algo;
    tcp.max_duration_s = config.duration_s;
    auto on_flow_done = [state, maybe_finish](const TcpStats&) mutable {
      ++state->flows_done;
      maybe_finish();
    };
    for (std::size_t i = 0; i < config.parallel_connections; ++i) {
      state->down_flows.push_back(std::make_unique<TcpFlow>(
          *sim, to_client, to_server, tcp, (*flow_ids)++));
      state->up_flows.push_back(std::make_unique<TcpFlow>(
          *sim, to_server, to_client, tcp, (*flow_ids)++));
    }
    for (auto& flow : state->down_flows) flow->start(on_flow_done);
    for (auto& flow : state->up_flows) flow->start(on_flow_done);

    // The responsiveness probes ride on the fully loaded connection.
    UdpProbeConfig loaded;
    loaded.interval_s = config.probe_interval_s;
    loaded.probe_count = static_cast<std::size_t>(
        config.duration_s / config.probe_interval_s);
    state->loaded_ping = std::make_unique<UdpProbeFlow>(
        *sim, to_server, to_client, loaded, (*flow_ids)++);
    state->loaded_ping->start(
        [state, maybe_finish](const UdpProbeStats& stats) mutable {
          if (!stats.rtt_samples_ms.empty()) {
            state->observation.loaded_latency =
                util::Millis(stats.mean_rtt_ms());
          }
          state->probes_done = true;
          maybe_finish();
        });
  };

  UdpProbeConfig idle;
  idle.probe_count = config.idle_ping_count;
  idle.interval_s = 0.05;
  state->idle_ping = std::make_unique<UdpProbeFlow>(*sim, to_server, to_client,
                                                    idle, (*flow_ids)++);
  state->idle_ping->start(
      [state, start_load](const UdpProbeStats& stats) mutable {
        if (!stats.rtt_samples_ms.empty()) {
          state->observation.idle_latency = util::Millis(stats.min_rtt_ms());
        }
        start_load();
      });
}

}  // namespace iqb::measurement
