// Measurement campaign orchestration.
//
// A campaign is the simulated counterpart of "the tests users in a
// region ran over a month": for every subscriber and every registered
// tool it executes `tests_per_tool` independent test sessions, each in
// a fresh, isolated simulation (own Simulator + topology + random
// streams) so sessions are statistically independent and the whole
// campaign is reproducible from one seed. Variability across a
// subscriber's sessions comes from stochastic link loss and background
// cross-traffic, not from shared mutable state.
//
// Topology per session:
//   server --core link-- isp_router --access link-- client
// with the access link carrying the subscriber's provisioned rates,
// base latency, buffering and loss, and optional on/off cross traffic
// competing on both access directions.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "iqb/measurement/types.hpp"
#include "iqb/netsim/crosstraffic.hpp"
#include "iqb/robust/circuit_breaker.hpp"
#include "iqb/util/timestamp.hpp"

namespace iqb::measurement {

/// One simulated subscriber line.
struct SubscriberSpec {
  std::string subscriber_id;
  std::string region;
  std::string isp;
  netsim::LinkSpec access_down;  ///< isp_router -> client.
  netsim::LinkSpec access_up;    ///< client -> isp_router.
  /// Mean fraction of the access-down rate consumed by background
  /// traffic while a burst is on (0 disables cross traffic).
  double background_utilization = 0.0;
};

/// One tool's result for one subscriber session, stamped and tagged —
/// the raw material the dataset adapters ingest.
struct SessionRecord {
  std::string subscriber_id;
  std::string region;
  std::string isp;
  util::Timestamp timestamp;  ///< base_time + simulated session offset.
  TestObservation observation;
};

struct CampaignConfig {
  std::uint64_t seed = 1;
  util::Timestamp base_time{};        ///< Timestamp of the first session.
  std::int64_t session_spacing_s = 3600;  ///< Wall-clock gap between sessions.
  std::size_t tests_per_tool = 4;
  netsim::LinkSpec core;              ///< server <-> isp_router (both dirs).
  /// Hard per-session simulation budget; a session that exceeds it is
  /// recorded as failed rather than hanging the campaign.
  netsim::SimTime session_time_limit_s = 300.0;

  /// Failed-session retries (0 disables). Each retry re-runs the
  /// session in a fresh isolated world on a distinct RNG stream, so a
  /// transient stochastic failure (loss burst, cross-traffic pileup)
  /// gets another chance while the campaign stays reproducible.
  std::size_t session_retries = 0;

  /// Per-tool circuit breaker: when enabled and a tool keeps failing,
  /// its remaining sessions are skipped instead of simulated (a
  /// persistently broken tool must not burn the whole campaign
  /// budget). Off by default so existing campaigns are unchanged.
  bool breaker_enabled = false;
  robust::CircuitBreakerConfig breaker;

  CampaignConfig() {
    core.rate = util::Mbps(10000.0);
    core.propagation_delay = util::Seconds(0.004);
    core.queue = netsim::QueueSpec::drop_tail(4 * 1024 * 1024);
  }
};

class Campaign {
 public:
  explicit Campaign(CampaignConfig config) : config_(std::move(config)) {}

  /// Register a tool. The campaign shares one client instance across
  /// sessions (clients are stateless between run() calls).
  void add_client(std::shared_ptr<MeasurementClient> client);

  void add_subscriber(SubscriberSpec subscriber);

  /// Run every (subscriber, tool, repetition) session. Returns all
  /// successful session records; failures are logged and skipped.
  std::vector<SessionRecord> run();

  /// Sessions that failed (no route, time limit, ...), for tests.
  std::size_t failed_sessions() const noexcept { return failed_sessions_; }

  /// Retry attempts consumed across the whole run.
  std::size_t retried_sessions() const noexcept { return retried_sessions_; }

  /// Sessions skipped because a tool's breaker was open.
  std::size_t breaker_skipped_sessions() const noexcept {
    return breaker_skipped_;
  }

  /// Tool name -> breaker state at the end of the last run (empty when
  /// the breaker is disabled). Tools left open should be reported as
  /// degraded sources (robust::IngestHealth::open_breakers).
  const std::map<std::string, robust::BreakerState>& breaker_states() const noexcept {
    return breaker_states_;
  }

 private:
  CampaignConfig config_;
  std::vector<std::shared_ptr<MeasurementClient>> clients_;
  std::vector<SubscriberSpec> subscribers_;
  std::size_t failed_sessions_ = 0;
  std::size_t retried_sessions_ = 0;
  std::size_t breaker_skipped_ = 0;
  std::map<std::string, robust::BreakerState> breaker_states_;
};

}  // namespace iqb::measurement
