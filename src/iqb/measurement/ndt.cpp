#include "iqb/measurement/ndt.hpp"

#include <memory>

namespace iqb::measurement {

using netsim::Path;
using netsim::TcpConfig;
using netsim::TcpFlow;
using netsim::TcpStats;
using util::Result;

namespace {

/// Per-test state kept alive by the callback chain.
struct NdtRun {
  std::unique_ptr<TcpFlow> download_flow;
  std::unique_ptr<TcpFlow> upload_flow;
  TestObservation observation;
};

}  // namespace

void NdtClient::run(const TestEnvironment& env, ObservationFn done) {
  auto down_fwd = env.network->path(env.server_node, env.client_node);
  auto down_rev = env.network->path(env.client_node, env.server_node);
  if (!down_fwd.ok()) {
    done(down_fwd.error());
    return;
  }
  if (!down_rev.ok()) {
    done(down_rev.error());
    return;
  }
  const Path to_client = down_fwd.value();
  const Path to_server = down_rev.value();

  TcpConfig tcp;
  tcp.algo = config_.algo;
  tcp.max_duration_s = config_.duration_s;

  auto state = std::make_shared<NdtRun>();
  state->observation.tool = std::string(name());
  state->observation.started_at = env.sim->now();
  env.retain(state);  // keep flows alive for any late in-flight packets

  // Phase 1: download (server -> client).
  state->download_flow = std::make_unique<TcpFlow>(
      *env.sim, to_client, to_server, tcp, (*env.next_flow_id)++);

  netsim::Simulator* sim = env.sim;
  std::uint64_t* flow_ids = env.next_flow_id;

  state->download_flow->start([state, sim, flow_ids, to_client, to_server, tcp,
                               done](const TcpStats& down) mutable {
    state->observation.download = down.goodput();
    state->observation.idle_latency = util::Millis(down.min_rtt_ms);
    state->observation.loaded_latency = util::Millis(down.smoothed_rtt_ms);
    state->observation.loss =
        util::LossRate(std::min(1.0, down.retransmit_rate()));

    // Phase 2: upload (client -> server) — reversed paths.
    state->upload_flow = std::make_unique<TcpFlow>(*sim, to_server, to_client,
                                                   tcp, (*flow_ids)++);
    state->upload_flow->start([state, sim, done](const TcpStats& up) mutable {
      state->observation.upload = up.goodput();
      state->observation.finished_at = sim->now();
      done(state->observation);
    });
  });
}

}  // namespace iqb::measurement
