// Ookla-Speedtest-style measurement client.
//
// Models the protocol shape of Ookla's Speedtest: a short idle ping
// train first (latency), then several parallel TCP connections in
// each direction. Throughput is computed over the *steady-state
// window* (the first ramp_discard_s seconds are discarded), which is
// why Ookla tends to report higher numbers than single-stream,
// whole-transfer tools like NDT on the same connection — a
// disagreement the IQB dataset tier is explicitly designed to absorb.
// Packet loss is NOT reported: Ookla's open aggregate dataset does
// not publish it.
#pragma once

#include "iqb/measurement/types.hpp"
#include "iqb/netsim/tcp.hpp"
#include "iqb/netsim/udp.hpp"

namespace iqb::measurement {

struct OoklaStyleConfig {
  std::size_t parallel_connections = 4;
  netsim::SimTime duration_s = 15.0;      ///< Per direction.
  netsim::SimTime ramp_discard_s = 5.0;   ///< Discarded warm-up window.
  std::size_t ping_count = 10;
  netsim::SimTime ping_interval_s = 0.05;
  netsim::CongestionAlgo algo = netsim::CongestionAlgo::kCubic;
};

class OoklaStyleClient final : public MeasurementClient {
 public:
  explicit OoklaStyleClient(OoklaStyleConfig config = {}) noexcept
      : config_(config) {}

  std::string_view name() const noexcept override { return "ookla_style"; }
  void run(const TestEnvironment& env, ObservationFn done) override;

 private:
  OoklaStyleConfig config_;
};

}  // namespace iqb::measurement
