// NDT-style measurement client.
//
// Models M-Lab's NDT7 protocol shape: a single TCP stream (CUBIC, like
// the production ndt-server) downloaded for ~10 s, then a single
// stream uploaded for ~10 s. Metrics mirror what NDT derives from
// TCP_INFO on the server: throughput is the mean goodput over the
// whole transfer (no ramp-up discard — a deliberate, documented
// difference from Ookla), latency is MinRTT, and "loss" is the
// retransmitted-segment fraction of the download.
#pragma once

#include "iqb/measurement/types.hpp"
#include "iqb/netsim/tcp.hpp"

namespace iqb::measurement {

struct NdtConfig {
  netsim::SimTime duration_s = 10.0;  ///< Per direction.
  netsim::CongestionAlgo algo = netsim::CongestionAlgo::kCubic;
};

class NdtClient final : public MeasurementClient {
 public:
  explicit NdtClient(NdtConfig config = {}) noexcept : config_(config) {}

  std::string_view name() const noexcept override { return "ndt"; }
  void run(const TestEnvironment& env, ObservationFn done) override;

 private:
  NdtConfig config_;
};

}  // namespace iqb::measurement
