#include "iqb/cli/load.hpp"

#include <ostream>
#include <utility>
#include <vector>

#include "iqb/datasets/io.hpp"
#include "iqb/obs/telemetry.hpp"
#include "iqb/robust/circuit_breaker.hpp"
#include "iqb/robust/quarantine.hpp"

namespace iqb::cli {

util::Result<LoadedStore> load_store(const std::string& path, bool lenient,
                                     std::ostream& err,
                                     obs::Telemetry* telemetry) {
  LoadedStore loaded;
  std::vector<datasets::MeasurementRecord> records;
  if (lenient || telemetry) {
    // Fault-tolerant path: malformed rows are quarantined and reported
    // instead of failing the run; the score carries the consequence.
    // With telemetry a strict load also goes through here (same parser
    // and policy as read_records_csv, just the instrumented loader).
    datasets::LoadOptions options;
    options.telemetry = telemetry;
    if (!lenient) {
      options.ingest = robust::IngestPolicy::strict();
      options.retry.max_attempts = 1;
    }
    robust::CircuitBreaker breaker;
    obs::wire_breaker(telemetry, path, breaker);
    robust::Quarantine quarantine;
    auto outcome = datasets::load_records_csv(path, options, &breaker,
                                              &quarantine);
    obs::record_breaker(telemetry, path, breaker);
    if (!outcome.ok()) return outcome.error();
    if (!quarantine.empty()) {
      err << "warning: " << quarantine.summary() << "\n";
      loaded.health.rows_quarantined = quarantine.count();
    }
    records = std::move(outcome).value().records;
  } else {
    auto strict = datasets::read_records_csv(path);
    if (!strict.ok()) return strict.error();
    records = std::move(strict).value();
  }
  const std::size_t skipped = loaded.store.add_all(std::move(records));
  if (skipped > 0) {
    err << "warning: skipped " << skipped << " invalid records\n";
  }
  if (loaded.store.empty()) {
    return util::make_error(util::ErrorCode::kEmptyInput,
                            "no usable records in '" + path + "'");
  }
  return loaded;
}

}  // namespace iqb::cli
