#include "iqb/cli/load.hpp"

#include <ostream>
#include <utility>
#include <vector>

#include "iqb/datasets/fast_csv.hpp"
#include "iqb/obs/telemetry.hpp"
#include "iqb/robust/circuit_breaker.hpp"
#include "iqb/robust/quarantine.hpp"

namespace iqb::cli {

util::Result<LoadedStore> load_store(const std::string& path,
                                     const LoadStoreOptions& options,
                                     std::ostream& err) {
  LoadedStore loaded;
  datasets::LoadFileOptions load;
  load.telemetry = options.telemetry;
  load.threads = options.threads;
  if (!options.lenient) {
    // Historical strict semantics: first malformed row fails the run,
    // and a missing file is not worth retrying.
    load.ingest = robust::IngestPolicy::strict();
    load.retry.max_attempts = 1;
  }
  robust::CircuitBreaker breaker;
  obs::wire_breaker(options.telemetry, path, breaker);
  robust::Quarantine quarantine;
  auto outcome = datasets::load_records_file(path, load, &breaker, &quarantine);
  obs::record_breaker(options.telemetry, path, breaker);
  if (!outcome.ok()) return outcome.error();
  if (!quarantine.empty()) {
    err << "warning: " << quarantine.summary() << "\n";
    loaded.health.rows_quarantined = quarantine.count();
  }
  std::vector<datasets::MeasurementRecord> records =
      std::move(outcome).value().records;
  const std::size_t skipped = loaded.store.add_all(std::move(records));
  if (skipped > 0) {
    err << "warning: skipped " << skipped << " invalid records\n";
  }
  if (loaded.store.empty()) {
    return util::make_error(util::ErrorCode::kEmptyInput,
                            "no usable records in '" + path + "'");
  }
  return loaded;
}

util::Result<LoadedStore> load_store(const std::string& path, bool lenient,
                                     std::ostream& err,
                                     obs::Telemetry* telemetry) {
  LoadStoreOptions options;
  options.lenient = lenient;
  options.telemetry = telemetry;
  return load_store(path, options, err);
}

}  // namespace iqb::cli
