// The iqbd watch daemon: a long-lived, observable scoring loop.
//
// iqbctl score is one-shot; iqbd turns the same pipeline into a
// service. A daemon thread re-runs ingest -> aggregate -> score on a
// fixed interval — or immediately when the records file's mtime
// changes — and publishes each completed cycle's ScoreSnapshot to an
// embedded TelemetryServer with a single pointer swap, so HTTP
// scrapes (/metrics, /scores, /readyz, /tracez) never block scoring
// and never observe a half-built result.
//
// Every cycle gets a trace id ("<prefix>-<n>"): it is installed as
// the thread's log trace id for the whole cycle (every log record the
// cycle emits carries it, in text and JSON-lines formats), stamped on
// the cycle's root span, and tagged onto the spans folded into the
// /tracez ring buffer.
//
// Telemetry is optional (DaemonOptions::telemetry = false): the loop
// then runs the pipeline with a null Telemetry and produces
// bit-identical scores, which tests assert.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "iqb/core/config.hpp"
#include "iqb/obs/metrics.hpp"
#include "iqb/obs/span_buffer.hpp"
#include "iqb/obs/telemetry_server.hpp"
#include "iqb/util/result.hpp"

namespace iqb::cli {

struct DaemonOptions {
  std::string records_path;
  std::optional<std::string> config_path;
  bool lenient = false;
  bool by_isp = false;

  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 9090;  ///< 0: ephemeral (see WatchDaemon::port()).

  std::uint64_t interval_ms = 5000;  ///< Fixed re-run cadence.
  std::uint64_t poll_ms = 200;       ///< mtime poll / stop-check step.
  bool watch_files = true;           ///< Re-run early on mtime change.
  std::uint64_t max_cycles = 0;      ///< 0: run until stop().

  bool telemetry = true;  ///< false: null-Telemetry pipeline runs.
  std::string trace_prefix = "iqbd";
  std::size_t span_buffer_capacity = 512;
};

/// Parse iqbd's argv[1..] tokens (--records F [--config F] [--port N]
/// [--bind A] [--interval-ms N] [--poll-ms N] [--watch true|false]
/// [--lenient true] [--by-isp true] [--max-cycles N]
/// [--telemetry true|false] [--trace-prefix S]).
util::Result<DaemonOptions> parse_daemon_args(
    const std::vector<std::string>& tokens);

/// One-line usage text for the iqbd binary.
const char* daemon_usage() noexcept;

class WatchDaemon {
 public:
  explicit WatchDaemon(DaemonOptions options);
  ~WatchDaemon();  ///< Calls stop().
  WatchDaemon(const WatchDaemon&) = delete;
  WatchDaemon& operator=(const WatchDaemon&) = delete;

  /// Load the config, start the telemetry server, launch the watch
  /// loop. Warnings and per-cycle diagnostics go to `err`, which must
  /// outlive the daemon (cycles run on a background thread).
  util::Result<void> start(std::ostream& err);

  /// Stop the loop and the server; joins both. Idempotent.
  void stop();

  bool running() const noexcept { return running_; }
  /// True once the loop exited on its own (max_cycles reached).
  bool finished() const noexcept { return finished_.load(); }

  std::uint16_t port() const noexcept { return server_.port(); }
  obs::TelemetryServer& server() noexcept { return server_; }
  const obs::TelemetryServer& server() const noexcept { return server_; }

  std::uint64_t cycles_total() const noexcept { return cycles_total_.load(); }
  std::uint64_t cycles_failed() const noexcept {
    return cycles_failed_.load();
  }

  /// Run one scoring cycle synchronously (the loop calls this; tests
  /// may too, before start()). Returns true if the cycle published a
  /// snapshot.
  bool run_cycle(std::ostream& err);

 private:
  util::Result<void> ensure_config();
  void loop(std::ostream& err);
  bool records_changed();

  DaemonOptions options_;
  std::optional<core::IqbConfig> config_;

  obs::MetricsRegistry metrics_;
  obs::SpanRingBuffer spans_;
  obs::TelemetryServer server_;

  std::atomic<std::uint64_t> cycles_total_{0};
  std::atomic<std::uint64_t> cycles_failed_{0};
  std::optional<std::filesystem::file_time_type> last_mtime_;

  bool running_ = false;
  std::atomic<bool> finished_{false};
  std::mutex loop_mutex_;
  std::condition_variable loop_cv_;
  bool stop_requested_ = false;  ///< Guarded by loop_mutex_.
  std::thread loop_thread_;
};

}  // namespace iqb::cli
