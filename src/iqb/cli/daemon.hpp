// The iqbd watch daemon: a long-lived, observable scoring loop.
//
// iqbctl score is one-shot; iqbd turns the same pipeline into a
// service. A daemon thread re-runs ingest -> aggregate -> score on a
// fixed interval — or immediately when the records file's mtime
// changes — and publishes each completed cycle's ScoreSnapshot to an
// embedded TelemetryServer with a single pointer swap, so HTTP
// scrapes (/metrics, /scores, /readyz, /tracez) never block scoring
// and never observe a half-built result.
//
// Durability (--state-dir DIR): after every completed cycle the
// published snapshot and loop counters are persisted as a CRC-checked
// checkpoint (iqb::robust::Checkpoint, written atomically). On
// restart the newest valid checkpoint is recovered — torn or corrupt
// files are skipped with a logged reason and counted in
// iqbd_checkpoint_corrupt_total — and served immediately on /scores
// and /readyz flagged stale until the first fresh cycle completes.
// Without --state-dir the daemon behaves exactly as before.
//
// Replication (--replicate-to host:port,...): each completed cycle's
// checkpoint is pushed to the configured peers by a fleet::Replicator
// (diff-driven anti-entropy, retry schedule, per-peer breaker), the
// state dir is served over /checkpointz by a fleet::CheckpointExchange,
// and on restart a daemon whose local recovery comes up empty — or
// trails its peers by more than --recovery-lag cycles — bootstraps
// from the freshest peer copy, newest-valid-wins, counted in
// iqbd_peer_recovery_total.
//
// Self-healing: a robust::CycleWatchdog monitor thread puts a
// deadline on every cycle; a cycle that overruns is cancelled at its
// next stage boundary, counted in iqbd_cycle_timeouts_total, and the
// loop backs off (RetryPolicy, decorrelated jitter) before re-running
// so one pathological input cannot wedge the service. stop() drains
// gracefully: the loop finishes (or cancels) the in-flight cycle, a
// final checkpoint is flushed, and the HTTP server answers everything
// it already accepted before the threads join.
//
// Every cycle gets a trace id ("<prefix>-<n>"): it is installed as
// the thread's log trace id for the whole cycle (every log record the
// cycle emits carries it, in text and JSON-lines formats), stamped on
// the cycle's root span, and tagged onto the spans folded into the
// /tracez ring buffer.
//
// Telemetry is optional (DaemonOptions::telemetry = false): the loop
// then runs the pipeline with a null Telemetry and produces
// bit-identical scores, which tests assert.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "iqb/core/config.hpp"
#include "iqb/fleet/replication.hpp"
#include "iqb/obs/clock.hpp"
#include "iqb/obs/history.hpp"
#include "iqb/obs/metrics.hpp"
#include "iqb/obs/request_stats.hpp"
#include "iqb/obs/slo.hpp"
#include "iqb/obs/span_buffer.hpp"
#include "iqb/obs/telemetry_server.hpp"
#include "iqb/robust/checkpoint.hpp"
#include "iqb/robust/retry.hpp"
#include "iqb/robust/watchdog.hpp"
#include "iqb/util/result.hpp"

namespace iqb::cli {

struct DaemonOptions {
  std::string records_path;
  std::optional<std::string> config_path;
  bool lenient = false;
  bool by_isp = false;

  /// Shard mode: when non-empty, only records whose region is listed
  /// are scored (and served on /shard/aggregate), making this daemon
  /// one shard of a fleet. Region-partitioning keeps per-region
  /// aggregates exact: a fleet coordinator merging shard tables gets
  /// byte-identical scores to one daemon over the union of records.
  std::vector<std::string> regions;

  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 9090;  ///< 0: ephemeral (see WatchDaemon::port()).

  std::uint64_t interval_ms = 5000;  ///< Fixed re-run cadence.
  std::uint64_t poll_ms = 200;       ///< mtime poll / stop-check step.
  bool watch_files = true;           ///< Re-run early on mtime change.
  std::uint64_t max_cycles = 0;      ///< 0: run until stop().

  /// Checkpoint directory; unset disables durability entirely (the
  /// scoring path is then bit-identical to the checkpoint-free
  /// daemon).
  std::optional<std::string> state_dir;
  std::size_t checkpoint_keep = 3;  ///< Retained checkpoint generations.

  /// Checkpoint replication (--replicate-to host:port,...): peers this
  /// daemon pushes each completed cycle's checkpoint to, and bootstraps
  /// from when local recovery comes up short. Requires --state-dir.
  std::vector<fleet::ShardEndpoint> replicate_to;
  /// Stable replication identity (--node-id): the directory name this
  /// node's frames land under on peers. Must satisfy
  /// fleet::valid_node_id.
  std::string node_id = "iqbd";
  /// Peer-bootstrap threshold (--recovery-lag): a peer's replica is
  /// adopted at startup only when it leads the local newest checkpoint
  /// by more than this many cycles (0 = any strictly newer copy wins).
  std::uint64_t recovery_lag = 0;
  /// Deadlines for replication pushes and peer bootstrap fetches.
  obs::HttpClient::Options replication_http;
  /// Test seam: scale applied to replication retry sleeps.
  double replication_retry_sleep_scale = 1.0;

  /// Per-cycle watchdog deadline; 0 disables the watchdog.
  std::uint64_t cycle_deadline_ms = 60'000;
  /// Backoff between failed/timed-out cycles (reset on success).
  robust::RetryPolicy cycle_backoff{/*max_attempts=*/1'000'000,
                                    /*base_delay_s=*/0.5,
                                    /*max_delay_s=*/30.0,
                                    /*deadline_s=*/1e12,
                                    /*seed=*/42};

  bool telemetry = true;  ///< false: null-Telemetry pipeline runs.
  std::string trace_prefix = "iqbd";
  std::size_t span_buffer_capacity = 512;

  /// SLO alerting (telemetry only): declarative specs loaded from a
  /// JSON file (--slo-file) and/or provided programmatically (tests).
  /// Built-in score-drift / tier-flap / cycle-error rules are always
  /// added when telemetry is on; /alertz serves the engine.
  std::optional<std::string> slo_file;
  std::vector<obs::SloSpec> slo_specs;
  /// Ring sizing for the in-process history TSDB (/historyz).
  obs::TimeSeriesStore::Options history;
  /// Test seam: time source for history timestamps and SLO evaluation
  /// (null: the process steady clock). With a ManualClock, sampled
  /// series and burn-rate windows are fully deterministic.
  obs::Clock* clock = nullptr;

  /// Ingest-parse and scoring execution width
  /// (AggregationPolicy::threads and chunked CSV parsing): 0 = auto
  /// (hardware concurrency), 1 = serial, N = that many threads.
  /// Scores are byte-identical at every width.
  std::size_t threads = 0;

  /// Test seams (never parsed from argv): a hook run mid-cycle between
  /// ingest and scoring, and an injected watchdog time source.
  std::function<void()> mid_cycle_hook;
  std::function<std::uint64_t()> watchdog_now_ms;
};

/// Parse iqbd's argv[1..] tokens (--records F [--config F] [--port N]
/// [--bind A] [--interval-ms N] [--poll-ms N] [--watch true|false]
/// [--lenient true] [--by-isp true] [--max-cycles N]
/// [--state-dir DIR] [--cycle-deadline-ms N]
/// [--telemetry true|false] [--trace-prefix S] [--threads N]
/// [--regions A,B,...]).
util::Result<DaemonOptions> parse_daemon_args(
    const std::vector<std::string>& tokens);

/// One-line usage text for the iqbd binary.
const char* daemon_usage() noexcept;

class WatchDaemon {
 public:
  explicit WatchDaemon(DaemonOptions options);
  ~WatchDaemon();  ///< Calls stop().
  WatchDaemon(const WatchDaemon&) = delete;
  WatchDaemon& operator=(const WatchDaemon&) = delete;

  /// Load the config, recover the newest valid checkpoint (when a
  /// state dir is configured), start the telemetry server, launch the
  /// watch loop. Warnings and per-cycle diagnostics go to `err`, which
  /// must outlive the daemon (cycles run on a background thread).
  util::Result<void> start(std::ostream& err);

  /// Graceful drain: stop the loop (the in-flight cycle completes, or
  /// is cancelled by the watchdog), flush a final checkpoint, finish
  /// in-flight HTTP requests, join every thread. Idempotent.
  void stop();

  bool running() const noexcept { return running_; }
  /// True once the loop exited on its own (max_cycles reached).
  bool finished() const noexcept { return finished_.load(); }

  std::uint16_t port() const noexcept { return server_.port(); }
  obs::TelemetryServer& server() noexcept { return server_; }
  const obs::TelemetryServer& server() const noexcept { return server_; }

  /// History TSDB / SLO engine; null while telemetry is off (and, for
  /// the engine, before the first start()/run_cycle()).
  obs::TimeSeriesStore* history() noexcept { return history_.get(); }
  obs::SloEngine* slo() noexcept { return slo_.get(); }

  std::uint64_t cycles_total() const noexcept { return cycles_total_.load(); }
  std::uint64_t cycles_failed() const noexcept {
    return cycles_failed_.load();
  }
  /// Checkpoint files rejected (torn/corrupt/foreign) during recovery.
  std::uint64_t checkpoints_rejected() const noexcept {
    return checkpoints_rejected_.load();
  }
  /// Checkpoints adopted from a peer at startup (newest-valid-wins
  /// chose a remote copy over the local store).
  std::uint64_t peer_recoveries() const noexcept {
    return peer_recoveries_.load();
  }
  /// The replication pusher; null unless --replicate-to is configured.
  fleet::Replicator* replicator() noexcept { return replicator_.get(); }
  /// Cycles cancelled by the watchdog deadline.
  std::uint64_t cycle_timeouts() const noexcept {
    return cycle_timeouts_.load();
  }
  /// True while the served snapshot is a recovered checkpoint that no
  /// fresh cycle has replaced yet.
  bool serving_stale() const;

  /// Recover state from the newest valid checkpoint, if any. Called by
  /// start(); exposed for tests that drive cycles synchronously.
  util::Result<void> recover(std::ostream& err);

  /// Run one scoring cycle synchronously (the loop calls this; tests
  /// may too, before start()). Returns true if the cycle published a
  /// snapshot.
  bool run_cycle(std::ostream& err);

 private:
  util::Result<void> ensure_config();
  /// Build the SLO engine (built-in + configured specs) on first use.
  util::Result<void> ensure_alerting(std::ostream& err);
  std::uint64_t now_ms() const;
  /// Serves /historyz and /alertz; nullopt for every other path.
  std::optional<obs::HttpResponse> telemetry_route(
      const obs::HttpRequest& request) const;
  void loop(std::ostream& err);
  bool poll_mtime();
  void save_checkpoint(const obs::ScoreSnapshot& snapshot, std::ostream& err);
  bool cycle_cancelled(const char* stage, std::ostream& err);

  DaemonOptions options_;
  std::optional<core::IqbConfig> config_;

  obs::MetricsRegistry metrics_;
  obs::SpanRingBuffer spans_;
  // Declared before server_: the server's options lambda wires these
  // sinks into the HTTP layer when telemetry is on.
  std::unique_ptr<obs::RequestStats> request_stats_;
  // History + alerting (telemetry only). Both are internally locked:
  // the loop thread appends/evaluates while HTTP workers serve
  // /historyz and /alertz.
  std::unique_ptr<obs::TimeSeriesStore> history_;
  std::unique_ptr<obs::SloEngine> slo_;
  bool alerting_ready_ = false;
  std::uint64_t start_ms_ = 0;  ///< Daemon construction time (uptime).
  obs::TelemetryServer server_;

  std::optional<robust::CheckpointStore> checkpoints_;
  /// Serves /checkpointz (catalog, frames, replica uploads); present
  /// only with a state dir.
  std::unique_ptr<fleet::CheckpointExchange> exchange_;
  /// Pushes checkpoints to peers after each cycle; present only with
  /// --replicate-to.
  std::unique_ptr<fleet::Replicator> replicator_;
  std::unique_ptr<robust::CycleWatchdog> watchdog_;
  std::atomic<bool> cancel_cycle_{false};

  std::atomic<std::uint64_t> cycles_total_{0};
  std::atomic<std::uint64_t> cycles_failed_{0};
  std::atomic<std::uint64_t> checkpoints_rejected_{0};
  std::atomic<std::uint64_t> peer_recoveries_{0};
  std::atomic<std::uint64_t> cycle_timeouts_{0};
  std::uint64_t last_checkpoint_cycle_ = 0;  ///< Loop/stop thread only.
  std::optional<std::filesystem::file_time_type> last_mtime_;
  bool recovered_ = false;  ///< recover() ran (start() skips re-run).

  bool running_ = false;
  std::atomic<bool> finished_{false};
  std::mutex loop_mutex_;
  std::condition_variable loop_cv_;
  bool stop_requested_ = false;  ///< Guarded by loop_mutex_.
  std::thread loop_thread_;
};

}  // namespace iqb::cli
