#include "iqb/cli/cli.hpp"

#include <cmath>

#include "iqb/cli/load.hpp"
#include <memory>
#include <ostream>

#include "iqb/core/pipeline.hpp"
#include "iqb/core/sensitivity.hpp"
#include "iqb/core/trend.hpp"
#include "iqb/datasets/fast_csv.hpp"
#include "iqb/datasets/io.hpp"
#include "iqb/datasets/record_io.hpp"
#include "iqb/measurement/adapters.hpp"
#include "iqb/measurement/campaign.hpp"
#include "iqb/measurement/cloudflare_style.hpp"
#include "iqb/measurement/ndt.hpp"
#include "iqb/measurement/ookla_style.hpp"
#include "iqb/measurement/population.hpp"
#include "iqb/obs/export.hpp"
#include "iqb/obs/telemetry.hpp"
#include "iqb/report/html.hpp"
#include "iqb/report/render.hpp"
#include "iqb/robust/degradation.hpp"
#include "iqb/robust/quarantine.hpp"
#include "iqb/util/fs.hpp"
#include "iqb/util/strings.hpp"

namespace iqb::cli {

namespace {

constexpr const char* kUsage =
    "usage:\n"
    "  iqbctl score       --records FILE.csv [--config FILE.json]"
    " [--by-isp true] [--lenient true] [--threads N]"
    " [--format text|json|csv|markdown|html] [--out FILE]"
    " [--metrics-out FILE.prom|.json] [--trace-out FILE.json]\n"
    "  iqbctl aggregate   --records FILE.csv [--config FILE.json]"
    " [--percentile P] [--lenient true] [--threads N]"
    " [--metrics-out FILE.prom|.json] [--trace-out FILE.json]\n"
    "  iqbctl convert     --records FILE --out FILE.iqbr|FILE.csv"
    " [--lenient true] [--threads N]\n"
    "  iqbctl config      [--out FILE.json]\n"
    "  iqbctl sensitivity --records FILE.csv --region NAME"
    " [--config FILE.json]\n"
    "  iqbctl trend       --records FILE.csv [--config FILE.json]"
    " [--window-days N]\n"
    "  iqbctl simulate    [--subscribers N] [--tests N] [--seed S]"
    " [--out FILE.csv]\n"
    "exit codes: 0 ok, 1 usage error, 2 data/config error,"
    " 3 scored in degraded mode\n";

util::Result<core::IqbConfig> load_config(const Args& args) {
  if (auto path = args.get("config")) {
    return core::IqbConfig::load(*path);
  }
  return core::IqbConfig::paper_defaults();
}

/// --threads N: execution width for ingestion, aggregation and
/// scoring. The CLI defaults to 0 (auto-size to the machine); 1
/// forces the serial path. Results are byte-identical at every width.
/// Returns a usage exit code on a bad value, 0 otherwise.
int parse_threads_flag(const Args& args, std::size_t& threads,
                       std::ostream& err) {
  threads = 0;
  if (auto value_text = args.get("threads")) {
    auto value = util::parse_int(*value_text);
    if (!value.ok() || value.value() < 0) {
      err << "bad --threads '" << *value_text << "'\n";
      return 1;
    }
    threads = static_cast<std::size_t>(value.value());
  }
  return 0;
}

int apply_threads(const Args& args, datasets::AggregationPolicy& policy,
                  std::ostream& err) {
  return parse_threads_flag(args, policy.threads, err);
}

/// Telemetry for one command invocation: live only when the user gave
/// --metrics-out/--trace-out, so plain runs build no registry, record
/// no spans, and stay bit-identical to an uninstrumented run.
struct TelemetrySession {
  std::optional<std::string> metrics_path;
  std::optional<std::string> trace_path;
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;  // process steady clock
  obs::Telemetry handle{&metrics, &tracer, nullptr, {}};

  bool enabled() const { return metrics_path || trace_path; }
  obs::Telemetry* get() { return enabled() ? &handle : nullptr; }
};

/// Validate telemetry flags up front: a bad extension is a usage error
/// and should fail before the pipeline runs. Returns 0 when ok.
int init_telemetry(const Args& args, TelemetrySession& session,
                   std::ostream& err) {
  session.metrics_path = args.get("metrics-out");
  session.trace_path = args.get("trace-out");
  if (session.metrics_path &&
      !util::ends_with(*session.metrics_path, ".prom") &&
      !util::ends_with(*session.metrics_path, ".json")) {
    err << "--metrics-out must end in .prom or .json, got '"
        << *session.metrics_path << "'\n";
    return 1;
  }
  return 0;
}

/// Write collected telemetry (format chosen by file extension). Runs
/// after the report was emitted so a telemetry write failure never
/// truncates the report stream.
int write_telemetry(const TelemetrySession& session, std::ostream& err) {
  // Atomic: a crash (or concurrent scrape) never observes a
  // half-written metrics/trace file.
  auto write_file = [&err](const std::string& path, const std::string& text) {
    if (auto written = util::fs::atomic_write(path, text); !written.ok()) {
      err << "cannot write '" << path << "': " << written.error().message
          << "\n";
      return 2;
    }
    return 0;
  };
  if (session.metrics_path) {
    const std::string text =
        util::ends_with(*session.metrics_path, ".prom")
            ? obs::to_prometheus(session.metrics)
            : obs::metrics_to_json(session.metrics).dump(2) + "\n";
    if (int code = write_file(*session.metrics_path, text)) return code;
  }
  if (session.trace_path) {
    if (int code = write_file(*session.trace_path,
                              obs::trace_to_json(session.tracer).dump(2) +
                                  "\n")) {
      return code;
    }
  }
  return 0;
}

util::Result<LoadedStore> load_records(const Args& args, std::ostream& err,
                                       obs::Telemetry* telemetry = nullptr) {
  auto path = args.get("records");
  if (!path) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "--records is required");
  }
  LoadStoreOptions options;
  options.lenient = args.get("lenient").value_or("") == "true";
  options.telemetry = telemetry;
  // Same flag as aggregation/scoring width; a bad value is reported
  // (and rejected) by the command's apply_threads, so fall back to
  // serial parsing here instead of erroring twice.
  std::ostream null_sink(nullptr);
  if (parse_threads_flag(args, options.threads, null_sink) != 0) {
    options.threads = 1;
  }
  return load_store(*path, options, err);
}

/// Send `text` to --out FILE if given, else to `out`. File output is
/// atomic (write-temp + rename): a watcher tailing the report — or a
/// crash mid-write — never observes a half-written file.
int emit(const Args& args, const std::string& text, std::ostream& out,
         std::ostream& err) {
  if (auto path = args.get("out")) {
    if (auto written = util::fs::atomic_write(*path, text); !written.ok()) {
      err << "cannot write '" << *path << "': " << written.error().message
          << "\n";
      return 2;
    }
    out << "wrote " << *path << "\n";
    return 0;
  }
  out << text;
  return 0;
}

int cmd_score(const Args& args, std::ostream& out, std::ostream& err) {
  TelemetrySession telemetry;
  if (int code = init_telemetry(args, telemetry, err)) return code;
  auto config = load_config(args);
  if (!config.ok()) {
    err << "config error: " << config.error().to_string() << "\n";
    return 2;
  }
  if (int code = apply_threads(args, config.value().aggregation, err)) {
    return code;
  }
  auto loaded = load_records(args, err, telemetry.get());
  if (!loaded.ok()) {
    err << "records error: " << loaded.error().to_string() << "\n";
    return 2;
  }
  const robust::IngestHealth health = loaded->health;
  datasets::RecordStore scored_store =
      args.get("by-isp").value_or("") == "true"
          ? datasets::rekey_by_region_isp(loaded->store)
          : std::move(loaded).value().store;

  core::Pipeline pipeline(std::move(config).value());
  auto output = pipeline.run(scored_store, health, telemetry.get());
  for (const auto& skipped : output.skipped) {
    err << "skipped region " << skipped.to_string() << "\n";
  }
  if (output.results.empty()) {
    err << "no region could be scored\n";
    return 2;
  }

  const std::string format = args.get("format").value_or("text");
  std::string rendered;
  if (format == "json") {
    rendered = report::to_json(output.results).dump(2) + "\n";
  } else if (format == "csv") {
    rendered = report::to_csv(output.results);
  } else if (format == "markdown") {
    rendered = report::comparison_table(output.results);
  } else if (format == "html") {
    rendered = report::to_html(output.results);
  } else if (format == "text") {
    for (const auto& result : output.results) {
      rendered += report::scorecard(result) + "\n";
    }
  } else {
    err << "unknown format '" << format << "'\n";
    return 1;
  }
  const int code = emit(args, rendered, out, err);
  const int telemetry_code = write_telemetry(telemetry, err);
  if (code != 0) return code;
  if (telemetry_code != 0) return telemetry_code;
  if (output.degraded()) {
    err << "note: scored in degraded mode (see per-region confidence tiers)\n";
    return 3;
  }
  return 0;
}

int cmd_aggregate(const Args& args, std::ostream& out, std::ostream& err) {
  TelemetrySession telemetry;
  if (int code = init_telemetry(args, telemetry, err)) return code;
  auto config = load_config(args);
  if (!config.ok()) {
    err << "config error: " << config.error().to_string() << "\n";
    return 2;
  }
  auto loaded = load_records(args, err, telemetry.get());
  if (!loaded.ok()) {
    err << "records error: " << loaded.error().to_string() << "\n";
    return 2;
  }
  datasets::AggregationPolicy policy = config->aggregation;
  if (int code = apply_threads(args, policy, err)) return code;
  if (auto percentile = args.get("percentile")) {
    auto value = util::parse_double(*percentile);
    if (!value.ok() || value.value() < 0.0 || value.value() > 100.0) {
      err << "bad --percentile '" << *percentile << "'\n";
      return 1;
    }
    policy.percentile = value.value();
  }
  auto table = datasets::aggregate(loaded->store, policy, telemetry.get());
  if (table.size() == 0) {
    err << "no aggregable cells\n";
    return 2;
  }
  const int code = emit(args, datasets::aggregates_to_csv(table), out, err);
  const int telemetry_code = write_telemetry(telemetry, err);
  return code != 0 ? code : telemetry_code;
}

/// convert: re-encode a records file between CSV and the IQBREC
/// binary format. The input format is sniffed from its leading bytes
/// (a .iqbr renamed to .csv still converts correctly); the output
/// format follows the --out extension.
int cmd_convert(const Args& args, std::ostream& out, std::ostream& err) {
  auto records_path = args.get("records");
  auto out_path = args.get("out");
  if (!records_path || !out_path) {
    err << "--records and --out are required\n";
    return 1;
  }
  const bool to_iqbr =
      util::ends_with(*out_path, datasets::kRecordBinaryExtension);
  if (!to_iqbr && !util::ends_with(*out_path, ".csv")) {
    err << "--out must end in .iqbr or .csv, got '" << *out_path << "'\n";
    return 1;
  }
  datasets::LoadFileOptions load;
  if (args.get("lenient").value_or("") != "true") {
    load.ingest = robust::IngestPolicy::strict();
    load.retry.max_attempts = 1;
  }
  std::size_t threads = 0;
  if (int code = parse_threads_flag(args, threads, err)) return code;
  load.threads = threads;
  robust::Quarantine quarantine;
  auto outcome =
      datasets::load_records_file(*records_path, load, nullptr, &quarantine);
  if (!outcome.ok()) {
    err << "records error: " << outcome.error().to_string() << "\n";
    return 2;
  }
  if (!quarantine.empty()) {
    err << "warning: " << quarantine.summary() << "\n";
  }
  const auto& records = outcome->records;
  auto written =
      to_iqbr ? datasets::write_records_iqbr(*out_path, records)
              : util::fs::atomic_write(*out_path,
                                       datasets::records_to_csv(records));
  if (!written.ok()) {
    err << "cannot write '" << *out_path
        << "': " << written.error().message << "\n";
    return 2;
  }
  out << "wrote " << *out_path << " (" << records.size() << " records)\n";
  return 0;
}

int cmd_config(const Args& args, std::ostream& out, std::ostream& err) {
  const core::IqbConfig config = core::IqbConfig::paper_defaults();
  if (auto path = args.get("out")) {
    auto saved = config.save(*path);
    if (!saved.ok()) {
      err << "save error: " << saved.error().to_string() << "\n";
      return 2;
    }
    out << "wrote " << *path << "\n";
    return 0;
  }
  out << config.to_json().dump(2) << "\n";
  return 0;
}

int cmd_sensitivity(const Args& args, std::ostream& out, std::ostream& err) {
  auto region = args.get("region");
  if (!region) {
    err << "--region is required\n";
    return 1;
  }
  auto config = load_config(args);
  if (!config.ok()) {
    err << "config error: " << config.error().to_string() << "\n";
    return 2;
  }
  auto loaded = load_records(args, err);
  if (!loaded.ok()) {
    err << "records error: " << loaded.error().to_string() << "\n";
    return 2;
  }
  core::SensitivityAnalyzer analyzer(std::move(config).value(),
                                     std::move(loaded).value().store);
  auto report = analyzer.analyze(*region);
  if (!report.ok()) {
    err << "analysis error: " << report.error().to_string() << "\n";
    return 2;
  }
  out << "region " << report->region << " baseline "
      << util::format_fixed(report->baseline_score, 4) << "\n";
  out << "\nleave-one-dataset-out:\n";
  for (const auto& ablation : report->dataset_ablations) {
    out << "  -" << ablation.removed_dataset << "  "
        << util::format_fixed(ablation.score, 4) << " ("
        << (ablation.shift >= 0 ? "+" : "")
        << util::format_fixed(ablation.shift, 4) << ")\n";
  }
  out << "\npercentile sweep:\n";
  for (const auto& point : report->percentile_sweep) {
    out << "  p" << util::format_fixed(point.percentile, 0) << "  "
        << util::format_fixed(point.score, 4) << "\n";
  }
  out << "\nweight perturbations (|shift| > 0.001):\n";
  for (const auto& perturbation : report->weight_perturbations) {
    if (std::abs(perturbation.shift) <= 0.001) continue;
    out << "  " << core::use_case_name(perturbation.use_case) << "/"
        << core::requirement_name(perturbation.requirement) << " "
        << (perturbation.delta >= 0 ? "+" : "") << perturbation.delta << "  "
        << util::format_fixed(perturbation.score, 4) << " ("
        << (perturbation.shift >= 0 ? "+" : "")
        << util::format_fixed(perturbation.shift, 4) << ")\n";
  }
  return 0;
}

int cmd_trend(const Args& args, std::ostream& out, std::ostream& err) {
  auto config = load_config(args);
  if (!config.ok()) {
    err << "config error: " << config.error().to_string() << "\n";
    return 2;
  }
  auto loaded = load_records(args, err);
  if (!loaded.ok()) {
    err << "records error: " << loaded.error().to_string() << "\n";
    return 2;
  }
  core::TrendConfig trend_config;
  if (auto days = args.get("window-days")) {
    auto value = util::parse_int(*days);
    if (!value.ok() || value.value() < 1) {
      err << "bad --window-days '" << *days << "'\n";
      return 1;
    }
    trend_config.window_seconds = value.value() * 86400;
  }
  auto trends =
      core::analyze_trends(loaded->store, config.value(), trend_config);
  if (!trends.ok()) {
    err << "trend error: " << trends.error().to_string() << "\n";
    return 2;
  }
  out << "region,windows,first,last,slope_per_day,direction\n";
  for (const auto& trend : *trends) {
    out << trend.region << ',' << trend.windows.size() << ','
        << util::format_fixed(trend.first_score, 4) << ','
        << util::format_fixed(trend.last_score, 4) << ','
        << util::format_fixed(trend.slope_per_day, 6) << ','
        << core::trend_direction_name(trend.direction) << "\n";
  }
  return 0;
}

int cmd_simulate(const Args& args, std::ostream& out, std::ostream& err) {
  const auto subscribers = args.get("subscribers").value_or("4");
  const auto tests = args.get("tests").value_or("2");
  const auto seed = args.get("seed").value_or("1");
  auto n_subs = util::parse_int(subscribers);
  auto n_tests = util::parse_int(tests);
  auto n_seed = util::parse_int(seed);
  if (!n_subs.ok() || !n_tests.ok() || !n_seed.ok() || n_subs.value() < 1 ||
      n_tests.value() < 1) {
    err << "bad --subscribers/--tests/--seed\n";
    return 1;
  }

  measurement::CampaignConfig config;
  config.seed = static_cast<std::uint64_t>(n_seed.value());
  config.tests_per_tool = static_cast<std::size_t>(n_tests.value());
  config.base_time = util::Timestamp::parse("2025-03-01").value();
  measurement::Campaign campaign(config);
  campaign.add_client(std::make_shared<measurement::NdtClient>());
  campaign.add_client(std::make_shared<measurement::OoklaStyleClient>());
  campaign.add_client(std::make_shared<measurement::CloudflareStyleClient>());
  util::Rng rng(config.seed);
  for (const auto& plan : measurement::example_region_plans(
           static_cast<std::size_t>(n_subs.value()))) {
    for (auto& subscriber : measurement::generate_population(plan, rng)) {
      campaign.add_subscriber(std::move(subscriber));
    }
  }
  err << "simulating " << n_subs.value()
      << " subscribers x 3 regions x 3 tools x " << n_tests.value()
      << " tests...\n";
  const auto sessions = campaign.run();
  const auto records = measurement::convert_sessions_default(sessions);
  err << sessions.size() << " sessions -> " << records.size() << " records ("
      << campaign.failed_sessions() << " failed)\n";
  return emit(args, datasets::records_to_csv(records), out, err);
}

}  // namespace

std::optional<std::string> Args::get(const std::string& key) const {
  auto it = options.find(key);
  if (it == options.end()) return std::nullopt;
  return it->second;
}

ParsedOrError parse_args(const std::vector<std::string>& tokens) {
  if (tokens.empty()) return {std::nullopt, "no command given"};
  Args args;
  args.command = tokens[0];
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& key = tokens[i];
    if (!util::starts_with(key, "--")) {
      return {std::nullopt, "expected --option, got '" + key + "'"};
    }
    if (i + 1 >= tokens.size()) {
      return {std::nullopt, "missing value for " + key};
    }
    args.options[key.substr(2)] = tokens[++i];
  }
  return {args, ""};
}

int run_command(const std::vector<std::string>& tokens, std::ostream& out,
                std::ostream& err) {
  auto parsed = parse_args(tokens);
  if (!parsed.args) {
    err << parsed.error << "\n" << kUsage;
    return 1;
  }
  const Args& args = *parsed.args;
  if (args.command == "score") return cmd_score(args, out, err);
  if (args.command == "aggregate") return cmd_aggregate(args, out, err);
  if (args.command == "convert") return cmd_convert(args, out, err);
  if (args.command == "config") return cmd_config(args, out, err);
  if (args.command == "sensitivity") return cmd_sensitivity(args, out, err);
  if (args.command == "trend") return cmd_trend(args, out, err);
  if (args.command == "simulate") return cmd_simulate(args, out, err);
  err << "unknown command '" << args.command << "'\n" << kUsage;
  return 1;
}

}  // namespace iqb::cli
