#include "iqb/cli/daemon.hpp"

#include <chrono>
#include <ostream>
#include <utility>

#include "iqb/cli/load.hpp"
#include "iqb/core/pipeline.hpp"
#include "iqb/obs/clock.hpp"
#include "iqb/obs/telemetry.hpp"
#include "iqb/obs/trace.hpp"
#include "iqb/report/render.hpp"
#include "iqb/util/log.hpp"
#include "iqb/util/strings.hpp"

namespace iqb::cli {

namespace {

constexpr const char* kDaemonUsage =
    "usage: iqbd --records FILE.csv [--config FILE.json] [--port N]\n"
    "            [--bind ADDR] [--interval-ms N] [--poll-ms N]\n"
    "            [--watch true|false] [--lenient true] [--by-isp true]\n"
    "            [--max-cycles N] [--telemetry true|false]\n"
    "            [--trace-prefix S]\n"
    "serves /metrics /metrics.json /healthz /readyz /tracez /scores\n"
    "exit codes: 0 ok, 1 usage error, 2 startup error\n";

util::Result<std::uint64_t> parse_u64_option(const std::string& key,
                                             const std::string& text) {
  auto value = util::parse_int(text);
  if (!value.ok() || value.value() < 0) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "bad --" + key + " '" + text + "'");
  }
  return static_cast<std::uint64_t>(value.value());
}

}  // namespace

const char* daemon_usage() noexcept { return kDaemonUsage; }

util::Result<DaemonOptions> parse_daemon_args(
    const std::vector<std::string>& tokens) {
  DaemonOptions options;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& key = tokens[i];
    if (!util::starts_with(key, "--")) {
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "expected --option, got '" + key + "'");
    }
    if (i + 1 >= tokens.size()) {
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "missing value for " + key);
    }
    const std::string name = key.substr(2);
    const std::string& value = tokens[++i];
    if (name == "records") {
      options.records_path = value;
    } else if (name == "config") {
      options.config_path = value;
    } else if (name == "bind") {
      options.bind_address = value;
    } else if (name == "trace-prefix") {
      options.trace_prefix = value;
    } else if (name == "lenient") {
      options.lenient = value == "true";
    } else if (name == "by-isp") {
      options.by_isp = value == "true";
    } else if (name == "watch") {
      options.watch_files = value == "true";
    } else if (name == "telemetry") {
      options.telemetry = value == "true";
    } else if (name == "port") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      if (parsed.value() > 65535) {
        return util::make_error(util::ErrorCode::kInvalidArgument,
                                "--port out of range '" + value + "'");
      }
      options.port = static_cast<std::uint16_t>(parsed.value());
    } else if (name == "interval-ms") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      options.interval_ms = parsed.value();
    } else if (name == "poll-ms") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      options.poll_ms = parsed.value() == 0 ? 1 : parsed.value();
    } else if (name == "max-cycles") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      options.max_cycles = parsed.value();
    } else {
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "unknown option --" + name);
    }
  }
  if (options.records_path.empty()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "--records is required");
  }
  return options;
}

WatchDaemon::WatchDaemon(DaemonOptions options)
    : options_(std::move(options)),
      spans_(options_.span_buffer_capacity),
      server_(
          [this] {
            obs::TelemetryServer::Options server_options;
            server_options.http.bind_address = options_.bind_address;
            server_options.http.port = options_.port;
            return server_options;
          }(),
          &metrics_, &spans_) {}

WatchDaemon::~WatchDaemon() { stop(); }

util::Result<void> WatchDaemon::ensure_config() {
  if (config_) return {};
  if (options_.config_path) {
    auto loaded = core::IqbConfig::load(*options_.config_path);
    if (!loaded.ok()) return loaded.error();
    config_ = std::move(loaded).value();
  } else {
    config_ = core::IqbConfig::paper_defaults();
  }
  return {};
}

util::Result<void> WatchDaemon::start(std::ostream& err) {
  if (running_) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "daemon already running");
  }
  if (auto config = ensure_config(); !config.ok()) {
    return config.error();
  }
  if (auto started = server_.start(); !started.ok()) {
    return started.error();
  }
  finished_.store(false);
  stop_requested_ = false;
  running_ = true;
  loop_thread_ = std::thread([this, &err] { loop(err); });
  return {};
}

void WatchDaemon::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(loop_mutex_);
    stop_requested_ = true;
  }
  loop_cv_.notify_all();
  if (loop_thread_.joinable()) loop_thread_.join();
  server_.stop();
  running_ = false;
}

bool WatchDaemon::records_changed() {
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(options_.records_path, ec);
  if (ec) return false;  // transient stat failure: let the interval drive
  if (!last_mtime_) {
    last_mtime_ = mtime;
    return false;
  }
  if (mtime != *last_mtime_) {
    last_mtime_ = mtime;
    return true;
  }
  return false;
}

bool WatchDaemon::run_cycle(std::ostream& err) {
  if (auto config = ensure_config(); !config.ok()) {
    err << "config error: " << config.error().to_string() << "\n";
    cycles_total_.fetch_add(1);
    cycles_failed_.fetch_add(1);
    return false;
  }
  const std::uint64_t cycle = cycles_total_.fetch_add(1) + 1;
  const std::string trace_id =
      options_.trace_prefix + "-" + std::to_string(cycle);
  // The whole cycle — ingest included — logs under the cycle's trace
  // id; Pipeline::run re-installs the same id from the telemetry
  // bundle for its own scope.
  util::ScopedLogTrace log_trace(trace_id);
  const std::uint64_t start_ns = obs::steady_clock().now_ns();

  // Per-cycle tracer (bounded by the ring buffer afterwards); the
  // registry is shared across cycles so counters accumulate.
  obs::Tracer tracer;
  obs::Telemetry handle{&metrics_, &tracer, nullptr, trace_id};
  obs::Telemetry* telemetry = options_.telemetry ? &handle : nullptr;

  // Remember the mtime the cycle consumed, so an edit racing the load
  // schedules a re-run instead of being swallowed.
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(options_.records_path, ec);
  if (!ec) last_mtime_ = mtime;

  auto fail_cycle = [&](const std::string& reason) {
    cycles_failed_.fetch_add(1);
    obs::add_counter(telemetry, "iqb_daemon_cycles_total",
                     "Watch-daemon scoring cycles by result",
                     {{"result", "error"}});
    IQB_LOG(kError) << "cycle " << cycle << " failed: " << reason;
    err << "cycle " << cycle << " failed: " << reason << "\n";
    return false;
  };

  auto loaded = load_store(options_.records_path, options_.lenient, err,
                           telemetry);
  if (!loaded.ok()) return fail_cycle(loaded.error().to_string());
  const robust::IngestHealth health = loaded->health;
  datasets::RecordStore store =
      options_.by_isp ? datasets::rekey_by_region_isp(loaded->store)
                      : std::move(loaded).value().store;

  core::Pipeline pipeline(*config_);
  auto output = pipeline.run(store, health, telemetry);
  for (const auto& skipped : output.skipped) {
    IQB_LOG(kWarn) << "skipped region " << skipped.to_string();
  }
  if (output.results.empty()) return fail_cycle("no region could be scored");

  auto snapshot = std::make_shared<obs::ScoreSnapshot>();
  snapshot->cycle = cycle;
  snapshot->trace_id = trace_id;
  snapshot->scores_json = report::to_json(output.results).dump(2) + "\n";
  for (const auto& result : output.results) {
    if (result.degradation().tier == robust::ConfidenceTier::kC) {
      snapshot->tier_c = true;
      snapshot->tier_c_regions.push_back(result.region);
    }
  }
  const bool tier_c = snapshot->tier_c;
  server_.publish(std::move(snapshot));

  if (telemetry) {
    spans_.ingest(tracer, trace_id);
    const double elapsed_s =
        static_cast<double>(obs::steady_clock().now_ns() - start_ns) * 1e-9;
    metrics_
        .histogram("iqb_daemon_cycle_duration_seconds",
                   "Wall time of one watch-daemon scoring cycle",
                   obs::latency_buckets_s())
        .observe(elapsed_s);
    obs::add_counter(telemetry, "iqb_daemon_cycles_total",
                     "Watch-daemon scoring cycles by result",
                     {{"result", "ok"}});
    obs::set_gauge(telemetry, "iqb_daemon_ready",
                   "1 once the first cycle has completed", {}, 1.0);
    obs::set_gauge(telemetry, "iqb_daemon_tier_c",
                   "1 while the latest scores carry confidence tier C", {},
                   tier_c ? 1.0 : 0.0);
  }
  IQB_LOG(kInfo) << "cycle " << cycle << " scored "
                 << output.results.size() << " regions";
  return true;
}

void WatchDaemon::loop(std::ostream& err) {
  using std::chrono::milliseconds;
  using std::chrono::steady_clock;
  auto last_run = steady_clock::now();
  bool ran_once = false;
  for (;;) {
    const bool interval_due =
        !ran_once ||
        steady_clock::now() - last_run >= milliseconds(options_.interval_ms);
    const bool file_due = options_.watch_files && records_changed();
    if (interval_due || file_due) {
      run_cycle(err);
      last_run = steady_clock::now();
      ran_once = true;
      if (options_.max_cycles != 0 &&
          cycles_total_.load() >= options_.max_cycles) {
        finished_.store(true);
        return;
      }
    }
    std::unique_lock<std::mutex> lock(loop_mutex_);
    if (loop_cv_.wait_for(lock, milliseconds(options_.poll_ms),
                          [this] { return stop_requested_; })) {
      return;
    }
  }
}

}  // namespace iqb::cli
