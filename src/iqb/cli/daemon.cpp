#include "iqb/cli/daemon.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <ostream>
#include <system_error>
#include <utility>

#include "iqb/cli/load.hpp"
#include "iqb/core/pipeline.hpp"
#include "iqb/datasets/record.hpp"
#include "iqb/fleet/wire.hpp"
#include "iqb/obs/clock.hpp"
#include "iqb/obs/history_routes.hpp"
#include "iqb/obs/telemetry.hpp"
#include "iqb/obs/trace.hpp"
#include "iqb/report/render.hpp"
#include "iqb/util/log.hpp"
#include "iqb/util/strings.hpp"
#include "iqb/util/version.hpp"

namespace iqb::cli {

namespace {

constexpr const char* kDaemonUsage =
    "usage: iqbd --records FILE.csv [--config FILE.json] [--port N]\n"
    "            [--bind ADDR] [--interval-ms N] [--poll-ms N]\n"
    "            [--watch true|false] [--lenient true] [--by-isp true]\n"
    "            [--max-cycles N] [--state-dir DIR]\n"
    "            [--cycle-deadline-ms N] [--telemetry true|false]\n"
    "            [--trace-prefix S] [--threads N] [--regions A,B,...]\n"
    "            [--slo-file FILE.json]\n"
    "            [--replicate-to host:port,...] [--node-id S]\n"
    "            [--recovery-lag N]\n"
    "serves /metrics /metrics.json /healthz /readyz /tracez /scores\n"
    "/historyz (windowed time-series history) /alertz (SLO alerts;\n"
    "--slo-file adds declarative burn-rate/threshold/anomaly specs)\n"
    "and /shard/aggregate (the cycle's aggregate table, for a fleet\n"
    "coordinator); --regions restricts scoring to the listed regions,\n"
    "turning this daemon into one shard of a region-partitioned fleet.\n"
    "--state-dir enables crash-safe checkpoints: on restart the newest\n"
    "valid checkpoint is served (flagged stale) until a fresh cycle.\n"
    "--replicate-to pushes each cycle's checkpoint to the listed peers\n"
    "(served on /checkpointz) and, on restart, bootstraps from the\n"
    "freshest peer copy when the local store is empty or trails by\n"
    "more than --recovery-lag cycles; --node-id names this daemon's\n"
    "replicas on its peers.\n"
    "exit codes: 0 ok, 1 usage error, 2 startup error\n";

constexpr const char* kCheckpointCorruptMetric =
    "iqbd_checkpoint_corrupt_total";
constexpr const char* kCheckpointCorruptHelp =
    "Checkpoint files rejected during recovery (torn, bad CRC, foreign "
    "version)";
constexpr const char* kCycleTimeoutsMetric = "iqbd_cycle_timeouts_total";
constexpr const char* kCycleTimeoutsHelp =
    "Scoring cycles cancelled by the watchdog deadline";
constexpr const char* kPeerRecoveryMetric = "iqbd_peer_recovery_total";
constexpr const char* kPeerRecoveryHelp =
    "Checkpoints adopted from a peer at startup (newest-valid-wins "
    "chose a remote copy)";

util::Result<std::uint64_t> parse_u64_option(const std::string& key,
                                             const std::string& text) {
  auto value = util::parse_int(text);
  if (!value.ok() || value.value() < 0) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "bad --" + key + " '" + text + "'");
  }
  return static_cast<std::uint64_t>(value.value());
}

}  // namespace

const char* daemon_usage() noexcept { return kDaemonUsage; }

util::Result<DaemonOptions> parse_daemon_args(
    const std::vector<std::string>& tokens) {
  DaemonOptions options;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& key = tokens[i];
    if (!util::starts_with(key, "--")) {
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "expected --option, got '" + key + "'");
    }
    if (i + 1 >= tokens.size()) {
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "missing value for " + key);
    }
    const std::string name = key.substr(2);
    const std::string& value = tokens[++i];
    if (name == "records") {
      options.records_path = value;
    } else if (name == "config") {
      options.config_path = value;
    } else if (name == "bind") {
      options.bind_address = value;
    } else if (name == "trace-prefix") {
      options.trace_prefix = value;
    } else if (name == "regions") {
      for (const std::string& region : util::split(value, ',')) {
        if (!region.empty()) options.regions.push_back(region);
      }
      if (options.regions.empty()) {
        return util::make_error(util::ErrorCode::kInvalidArgument,
                                "--regions needs at least one region name");
      }
    } else if (name == "state-dir") {
      options.state_dir = value;
    } else if (name == "replicate-to") {
      std::size_t index = 0;
      for (const std::string& token : util::split(value, ',')) {
        if (token.empty()) continue;
        auto endpoint = fleet::parse_shard_endpoint(token, index);
        if (!endpoint.ok()) return endpoint.error();
        // Unnamed peers read as peer<N> in logs and metrics instead of
        // parse_shard_endpoint's shard<N> default.
        if (token.find('=') == std::string::npos) {
          endpoint->name = "peer" + std::to_string(index);
        }
        options.replicate_to.push_back(std::move(endpoint).value());
        ++index;
      }
      if (options.replicate_to.empty()) {
        return util::make_error(util::ErrorCode::kInvalidArgument,
                                "--replicate-to needs at least one peer");
      }
    } else if (name == "node-id") {
      if (!fleet::valid_node_id(value)) {
        return util::make_error(
            util::ErrorCode::kInvalidArgument,
            "bad --node-id '" + value + "' (want 1-64 chars of [A-Za-z0-9_-])");
      }
      options.node_id = value;
    } else if (name == "recovery-lag") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      options.recovery_lag = parsed.value();
    } else if (name == "slo-file") {
      options.slo_file = value;
    } else if (name == "lenient") {
      options.lenient = value == "true";
    } else if (name == "by-isp") {
      options.by_isp = value == "true";
    } else if (name == "watch") {
      options.watch_files = value == "true";
    } else if (name == "telemetry") {
      options.telemetry = value == "true";
    } else if (name == "port") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      if (parsed.value() > 65535) {
        return util::make_error(util::ErrorCode::kInvalidArgument,
                                "--port out of range '" + value + "'");
      }
      options.port = static_cast<std::uint16_t>(parsed.value());
    } else if (name == "interval-ms") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      options.interval_ms = parsed.value();
    } else if (name == "poll-ms") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      options.poll_ms = parsed.value() == 0 ? 1 : parsed.value();
    } else if (name == "max-cycles") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      options.max_cycles = parsed.value();
    } else if (name == "cycle-deadline-ms") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      options.cycle_deadline_ms = parsed.value();
    } else if (name == "threads") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      options.threads = static_cast<std::size_t>(parsed.value());
    } else {
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "unknown option --" + name);
    }
  }
  if (options.records_path.empty()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "--records is required");
  }
  if (!options.replicate_to.empty() && !options.state_dir) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "--replicate-to requires --state-dir");
  }
  return options;
}

WatchDaemon::WatchDaemon(DaemonOptions options)
    : options_(std::move(options)),
      spans_(options_.span_buffer_capacity),
      request_stats_([this]() -> std::unique_ptr<obs::RequestStats> {
        if (!options_.telemetry) return nullptr;
        obs::RequestStats::Options stats;
        stats.metrics = &metrics_;
        stats.known_paths = obs::default_telemetry_paths();
        return std::make_unique<obs::RequestStats>(std::move(stats));
      }()),
      history_(options_.telemetry
                   ? std::make_unique<obs::TimeSeriesStore>(options_.history)
                   : nullptr),
      server_(
          [this] {
            obs::TelemetryServer::Options server_options;
            server_options.http.bind_address = options_.bind_address;
            server_options.http.port = options_.port;
            // Telemetry off keeps the HTTP layer byte-identical to the
            // untraced server: no sinks, no X-IQB-Trace header.
            server_options.http.request_stats = request_stats_.get();
            server_options.http.spans =
                options_.telemetry ? &spans_ : nullptr;
            server_options.route_override =
                [this](const obs::HttpRequest& request) {
                  return telemetry_route(request);
                };
            return server_options;
          }(),
          &metrics_, &spans_) {
  start_ms_ = now_ms();
  if (options_.telemetry) {
    metrics_
        .gauge("iqb_build_info",
               "Build identity; always 1, version rides in the labels",
               {{"git_sha", util::git_sha()}, {"version", util::version()}})
        .set(1.0);
    metrics_
        .gauge("iqbd_uptime_seconds", "Seconds since daemon construction")
        .set(0.0);
  }
  if (options_.state_dir) {
    checkpoints_.emplace(*options_.state_dir, options_.checkpoint_keep);
    fleet::CheckpointExchange::Options exchange_options;
    exchange_options.node_id = options_.node_id;
    exchange_options.state_dir = *options_.state_dir;
    exchange_options.keep = options_.checkpoint_keep;
    exchange_ = std::make_unique<fleet::CheckpointExchange>(
        std::move(exchange_options), &*checkpoints_);
  }
  if (!options_.replicate_to.empty() && checkpoints_) {
    fleet::Replicator::Options replicator_options;
    replicator_options.node_id = options_.node_id;
    replicator_options.peers = options_.replicate_to;
    replicator_options.http = options_.replication_http;
    replicator_options.retry_sleep_scale =
        options_.replication_retry_sleep_scale;
    replicator_ = std::make_unique<fleet::Replicator>(
        std::move(replicator_options), &*checkpoints_,
        options_.telemetry ? &metrics_ : nullptr);
    if (options_.telemetry) {
      // Eager family registration: visible at zero before any recovery.
      metrics_.counter(kPeerRecoveryMetric, kPeerRecoveryHelp);
    }
  }
  if (options_.cycle_deadline_ms != 0) {
    robust::CycleWatchdog::Options watchdog_options;
    watchdog_options.deadline_ms = options_.cycle_deadline_ms;
    watchdog_options.check_interval_ms =
        std::min<std::uint64_t>(options_.poll_ms, 50);
    watchdog_options.now_ms = options_.watchdog_now_ms;
    watchdog_options.on_timeout = [this](std::uint64_t cycle) {
      cancel_cycle_.store(true);
      cycle_timeouts_.fetch_add(1);
      if (options_.telemetry) {
        metrics_.counter(kCycleTimeoutsMetric, kCycleTimeoutsHelp).inc();
      }
      IQB_LOG(kError) << "watchdog: cycle " << cycle
                      << " exceeded its deadline ("
                      << options_.cycle_deadline_ms << " ms); cancelling";
    };
    watchdog_ = std::make_unique<robust::CycleWatchdog>(
        std::move(watchdog_options));
  }
}

WatchDaemon::~WatchDaemon() { stop(); }

util::Result<void> WatchDaemon::ensure_config() {
  if (config_) return {};
  if (options_.config_path) {
    auto loaded = core::IqbConfig::load(*options_.config_path);
    if (!loaded.ok()) return loaded.error();
    config_ = std::move(loaded).value();
  } else {
    config_ = core::IqbConfig::paper_defaults();
  }
  // Execution width is a deployment knob, not part of the scoring
  // config file; scores are byte-identical at every width.
  config_->aggregation.threads = options_.threads;
  return {};
}

std::uint64_t WatchDaemon::now_ms() const {
  obs::Clock* clock = options_.clock;
  const std::uint64_t now_ns =
      clock ? clock->now_ns() : obs::steady_clock().now_ns();
  return now_ns / 1'000'000;
}

util::Result<void> WatchDaemon::ensure_alerting(std::ostream& err) {
  if (alerting_ready_ || !options_.telemetry) return {};
  obs::SloEngine::Options slo_options;
  // Built-in score-quality rules: EWMA+MAD drift on per-region scores,
  // confidence-tier flapping, and a burn rate on failed cycles.
  {
    obs::SloSpec drift;
    drift.type = obs::SloSpec::Type::kAnomaly;
    drift.name = "score_drift";
    drift.metric = "iqb_region_score";
    slo_options.specs.push_back(std::move(drift));

    obs::SloSpec flap;
    flap.type = obs::SloSpec::Type::kFlap;
    flap.name = "tier_flap";
    flap.metric = "iqb_region_tier";
    slo_options.specs.push_back(std::move(flap));

    obs::SloSpec cycles;
    cycles.type = obs::SloSpec::Type::kBurnRate;
    cycles.name = "cycle_error_burn";
    cycles.metric = "iqb_daemon_cycles_total";
    cycles.bad_metric = "iqb_daemon_cycles_total";
    cycles.bad_labels = {{"result", "error"}};
    slo_options.specs.push_back(std::move(cycles));
  }
  for (const obs::SloSpec& spec : options_.slo_specs) {
    slo_options.specs.push_back(spec);
  }
  if (options_.slo_file) {
    auto loaded = obs::load_slo_file(*options_.slo_file);
    if (!loaded.ok()) {
      err << "slo config error: " << loaded.error().to_string() << "\n";
      return loaded.error();
    }
    for (obs::SloSpec& spec : *loaded) {
      slo_options.specs.push_back(std::move(spec));
    }
    IQB_LOG(kInfo) << "loaded " << loaded->size() << " SLO spec(s) from "
                   << *options_.slo_file;
  }
  slo_ = std::make_unique<obs::SloEngine>(std::move(slo_options),
                                          history_.get());
  alerting_ready_ = true;
  return {};
}

std::optional<obs::HttpResponse> WatchDaemon::telemetry_route(
    const obs::HttpRequest& request) const {
  if (exchange_) {
    if (auto response = exchange_->handle(request)) return response;
  }
  if (request.path == "/historyz") {
    return obs::serve_historyz(history_.get(), request, now_ms());
  }
  if (request.path == "/alertz") {
    return obs::serve_alertz(slo_.get(), options_.telemetry);
  }
  return std::nullopt;
}

bool WatchDaemon::serving_stale() const {
  const auto snapshot = server_.latest();
  return snapshot && snapshot->stale;
}

util::Result<void> WatchDaemon::recover(std::ostream& err) {
  recovered_ = true;
  if (!checkpoints_) return {};
  if (auto prepared = checkpoints_->prepare(); !prepared.ok()) {
    return prepared;
  }
  auto outcome = checkpoints_->load_newest();
  if (!outcome.ok()) return outcome.error();
  for (const auto& rejected : outcome->rejected) {
    checkpoints_rejected_.fetch_add(1);
    if (options_.telemetry) {
      metrics_.counter(kCheckpointCorruptMetric, kCheckpointCorruptHelp)
          .inc();
    }
    IQB_LOG(kWarn) << "skipping corrupt checkpoint " << rejected.file << ": "
                   << rejected.reason;
    err << "skipping corrupt checkpoint " << rejected.file << ": "
        << rejected.reason << "\n";
  }
  // Make the corrupt-counter family visible in exports even when the
  // recovery was clean, so dashboards can alert on its rate.
  if (options_.telemetry) {
    metrics_.counter(kCheckpointCorruptMetric, kCheckpointCorruptHelp);
  }

  // Newest-valid-wins across local + remote: with peers configured,
  // ask each for its replica of this node and adopt the freshest copy
  // that beats the local newest by more than recovery_lag — which also
  // covers the local store being empty or wholly corrupt (cycle 0).
  std::optional<robust::Checkpoint> best = std::move(outcome->checkpoint);
  std::string source = "local store";
  if (!options_.replicate_to.empty()) {
    const std::uint64_t local_cycle = best ? best->cycle : 0;
    auto remote = fleet::bootstrap_from_peers(
        *checkpoints_, local_cycle, options_.recovery_lag, options_.node_id,
        options_.replicate_to, options_.replication_http);
    for (const fleet::RejectedCandidate& candidate : remote.rejected) {
      IQB_LOG(kInfo) << "peer recovery: passed over " << candidate.candidate
                     << ": " << candidate.reason;
      err << "peer recovery: passed over " << candidate.candidate << ": "
          << candidate.reason << "\n";
    }
    if (remote.checkpoint) {
      best = std::move(remote.checkpoint);
      source = "peer " + remote.source;
      peer_recoveries_.fetch_add(1);
      if (options_.telemetry) {
        metrics_.counter(kPeerRecoveryMetric, kPeerRecoveryHelp).inc();
      }
    }
  }
  if (!best) return {};

  const robust::Checkpoint& checkpoint = *best;
  auto snapshot = std::make_shared<obs::ScoreSnapshot>();
  snapshot->cycle = checkpoint.cycle;
  snapshot->trace_id = checkpoint.trace_id;
  snapshot->scores_json = checkpoint.scores_json;
  snapshot->tier_c = checkpoint.tier_c;
  snapshot->tier_c_regions = checkpoint.tier_c_regions;
  snapshot->stale = true;
  server_.publish(std::move(snapshot));

  // Counters resume from the persisted loop state so cycle ordinals —
  // and the /readyz cycle field — are monotone across restarts.
  cycles_total_.store(
      std::max(checkpoint.cycles_attempted, checkpoint.cycle));
  cycles_failed_.store(checkpoint.cycles_failed);
  last_checkpoint_cycle_ = checkpoint.cycle;
  if (options_.telemetry) {
    metrics_
        .gauge("iqbd_serving_stale",
               "1 while serving a recovered checkpoint no fresh cycle has "
               "replaced")
        .set(1.0);
    metrics_
        .counter("iqbd_checkpoint_recovered_total",
                 "Successful checkpoint recoveries at startup")
        .inc();
  }
  IQB_LOG(kInfo) << "recovered checkpoint: cycle " << checkpoint.cycle
                 << " (trace " << checkpoint.trace_id << ", from " << source
                 << "); serving stale until the next fresh cycle";
  err << "recovered checkpoint: cycle " << checkpoint.cycle << " from "
      << source << "; serving stale until the next fresh cycle\n";
  return {};
}

util::Result<void> WatchDaemon::start(std::ostream& err) {
  if (running_) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "daemon already running");
  }
  if (auto config = ensure_config(); !config.ok()) {
    return config.error();
  }
  // Build the SLO engine before the server accepts /alertz traffic;
  // the loop thread only sees the ready engine afterwards.
  if (auto alerting = ensure_alerting(err); !alerting.ok()) {
    return alerting.error();
  }
  if (!recovered_) {
    if (auto recovery = recover(err); !recovery.ok()) {
      return recovery.error();
    }
  }
  if (auto started = server_.start(); !started.ok()) {
    return started.error();
  }
  if (watchdog_) watchdog_->start();
  finished_.store(false);
  stop_requested_ = false;
  running_ = true;
  loop_thread_ = std::thread([this, &err] { loop(err); });
  return {};
}

void WatchDaemon::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(loop_mutex_);
    stop_requested_ = true;
  }
  loop_cv_.notify_all();
  // The in-flight cycle completes (or is cancelled by the watchdog);
  // its snapshot and checkpoint land before the join returns.
  if (loop_thread_.joinable()) loop_thread_.join();
  if (watchdog_) watchdog_->stop();
  // Flush a final checkpoint in case the last published snapshot
  // never reached disk (per-cycle saves make this a no-op normally).
  if (checkpoints_) {
    const auto snapshot = server_.latest();
    if (snapshot && !snapshot->stale &&
        snapshot->cycle > last_checkpoint_cycle_) {
      robust::Checkpoint checkpoint;
      checkpoint.cycle = snapshot->cycle;
      checkpoint.cycles_attempted = cycles_total_.load();
      checkpoint.cycles_failed = cycles_failed_.load();
      checkpoint.trace_id = snapshot->trace_id;
      checkpoint.scores_json = snapshot->scores_json;
      checkpoint.tier_c = snapshot->tier_c;
      checkpoint.tier_c_regions = snapshot->tier_c_regions;
      if (auto saved = checkpoints_->save(checkpoint); !saved.ok()) {
        IQB_LOG(kWarn) << "final checkpoint flush failed: "
                       << saved.error().to_string();
      } else {
        last_checkpoint_cycle_ = snapshot->cycle;
      }
    }
  }
  // Drain, not stop: requests already accepted get their answers
  // before the worker threads join (SIGTERM grace).
  server_.drain();
  running_ = false;
}

bool WatchDaemon::poll_mtime() {
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(options_.records_path, ec);
  if (ec) {
    // A writer replacing the records file via rename briefly unlinks
    // the name; ENOENT here is "no change yet", not an error — the
    // recreated file's mtime will differ and trigger the re-run. Other
    // stat failures also just let the interval drive the loop.
    if (ec != std::errc::no_such_file_or_directory) {
      IQB_LOG(kWarn) << "stat " << options_.records_path
                     << " failed: " << ec.message();
    }
    return false;
  }
  if (!last_mtime_) {
    last_mtime_ = mtime;
    return false;
  }
  if (mtime != *last_mtime_) {
    last_mtime_ = mtime;
    return true;
  }
  return false;
}

void WatchDaemon::save_checkpoint(const obs::ScoreSnapshot& snapshot,
                                  std::ostream& err) {
  if (!checkpoints_) return;
  robust::Checkpoint checkpoint;
  checkpoint.cycle = snapshot.cycle;
  checkpoint.cycles_attempted = cycles_total_.load();
  checkpoint.cycles_failed = cycles_failed_.load();
  checkpoint.trace_id = snapshot.trace_id;
  checkpoint.scores_json = snapshot.scores_json;
  checkpoint.tier_c = snapshot.tier_c;
  checkpoint.tier_c_regions = snapshot.tier_c_regions;
  auto saved = checkpoints_->save(checkpoint);
  if (!saved.ok()) {
    // A failed save degrades durability, never the serving path: the
    // snapshot is already published.
    if (options_.telemetry) {
      metrics_
          .counter("iqbd_checkpoint_write_errors_total",
                   "Checkpoint saves that failed (serving unaffected)")
          .inc();
    }
    IQB_LOG(kWarn) << "checkpoint save failed: " << saved.error().to_string();
    err << "checkpoint save failed: " << saved.error().to_string() << "\n";
    return;
  }
  last_checkpoint_cycle_ = snapshot.cycle;
  if (options_.telemetry) {
    metrics_
        .counter("iqbd_checkpoint_writes_total",
                 "Checkpoints persisted after completed cycles")
        .inc();
  }
}

bool WatchDaemon::cycle_cancelled(const char* stage, std::ostream& err) {
  if (!cancel_cycle_.load()) return false;
  err << "cycle cancelled by watchdog at stage '" << stage << "'\n";
  return true;
}

bool WatchDaemon::run_cycle(std::ostream& err) {
  if (auto config = ensure_config(); !config.ok()) {
    err << "config error: " << config.error().to_string() << "\n";
    cycles_total_.fetch_add(1);
    cycles_failed_.fetch_add(1);
    return false;
  }
  if (auto alerting = ensure_alerting(err); !alerting.ok()) {
    cycles_total_.fetch_add(1);
    cycles_failed_.fetch_add(1);
    return false;
  }
  const std::uint64_t cycle = cycles_total_.fetch_add(1) + 1;
  const std::string trace_id =
      options_.trace_prefix + "-" + std::to_string(cycle);
  // The whole cycle — ingest included — logs under the cycle's trace
  // id; Pipeline::run re-installs the same id from the telemetry
  // bundle for its own scope.
  util::ScopedLogTrace log_trace(trace_id);
  const std::uint64_t start_ns = obs::steady_clock().now_ns();

  cancel_cycle_.store(false);
  if (watchdog_) watchdog_->arm(cycle);
  // Every exit path below must disarm; a scope guard keeps the
  // watchdog from timing out the *next* idle period.
  struct Disarm {
    robust::CycleWatchdog* watchdog;
    ~Disarm() {
      if (watchdog) watchdog->disarm();
    }
  } disarm_guard{watchdog_.get()};

  // Per-cycle tracer (bounded by the ring buffer afterwards); the
  // registry is shared across cycles so counters accumulate.
  obs::Tracer tracer;
  tracer.set_trace_id(trace_id);
  obs::Telemetry handle{&metrics_, &tracer, nullptr, trace_id};
  obs::Telemetry* telemetry = options_.telemetry ? &handle : nullptr;

  // Remember the mtime the cycle consumed, so an edit racing the load
  // schedules a re-run instead of being swallowed.
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(options_.records_path, ec);
  if (!ec) last_mtime_ = mtime;

  // Sample the registry into the history ring and run the SLO rules;
  // both the success and failure exits go through this so burn rates
  // see every cycle. Runs under the cycle's ScopedLogTrace, so alert
  // transition WARNs carry the cycle trace id.
  auto sample_and_evaluate = [&] {
    if (!history_ || telemetry == nullptr) return;
    const std::uint64_t now = now_ms();
    metrics_.gauge("iqbd_uptime_seconds", "Seconds since daemon construction")
        .set(static_cast<double>(now - start_ms_) / 1000.0);
    history_->sample_registry(metrics_, now);
    if (slo_) slo_->evaluate(now, cycle, trace_id);
  };

  auto fail_cycle = [&](const std::string& reason) {
    cycles_failed_.fetch_add(1);
    obs::add_counter(telemetry, "iqb_daemon_cycles_total",
                     "Watch-daemon scoring cycles by result",
                     {{"result", "error"}});
    IQB_LOG(kError) << "cycle " << cycle << " failed: " << reason;
    err << "cycle " << cycle << " failed: " << reason << "\n";
    sample_and_evaluate();
    return false;
  };

  LoadStoreOptions load_options;
  load_options.lenient = options_.lenient;
  load_options.threads = options_.threads;  // same knob as scoring width
  load_options.telemetry = telemetry;
  auto loaded = load_store(options_.records_path, load_options, err);
  if (!loaded.ok()) return fail_cycle(loaded.error().to_string());
  if (cycle_cancelled("ingest", err)) {
    return fail_cycle("cycle deadline exceeded (after ingest)");
  }
  if (options_.mid_cycle_hook) options_.mid_cycle_hook();
  if (cycle_cancelled("mid-cycle", err)) {
    return fail_cycle("cycle deadline exceeded (mid-cycle)");
  }
  const robust::IngestHealth health = loaded->health;
  if (!options_.regions.empty()) {
    // Shard mode: keep only this shard's regions. Filtering happens
    // before the optional by-isp rekey so --regions always names the
    // records' own region values.
    std::vector<datasets::MeasurementRecord> kept;
    for (const datasets::MeasurementRecord& record :
         loaded->store.records()) {
      if (std::find(options_.regions.begin(), options_.regions.end(),
                    record.region) != options_.regions.end()) {
        kept.push_back(record);
      }
    }
    if (kept.empty()) {
      return fail_cycle("no records match --regions");
    }
    loaded->store = datasets::RecordStore(std::move(kept));
  }
  datasets::RecordStore store =
      options_.by_isp ? datasets::rekey_by_region_isp(loaded->store)
                      : std::move(loaded).value().store;

  core::Pipeline pipeline(*config_);
  auto output = pipeline.run(store, health, telemetry);
  if (cycle_cancelled("score", err)) {
    return fail_cycle("cycle deadline exceeded (after scoring)");
  }
  for (const auto& skipped : output.skipped) {
    IQB_LOG(kWarn) << "skipped region " << skipped.to_string();
  }
  if (output.results.empty()) return fail_cycle("no region could be scored");

  auto snapshot = std::make_shared<obs::ScoreSnapshot>();
  snapshot->cycle = cycle;
  snapshot->trace_id = trace_id;
  snapshot->scores_json = report::to_json(output.results).dump(2) + "\n";
  {
    // Publish the cycle's aggregate table on /shard/aggregate so a
    // fleet coordinator can scatter-gather this daemon as a shard.
    fleet::ShardPayload payload;
    payload.cycle = cycle;
    payload.trace_id = trace_id;
    payload.table = output.aggregates;
    payload.health = health;
    snapshot->aggregate_json = fleet::serialize_shard_payload(payload);
  }
  for (const auto& result : output.results) {
    if (result.degradation().tier == robust::ConfidenceTier::kC) {
      snapshot->tier_c = true;
      snapshot->tier_c_regions.push_back(result.region);
    }
  }
  const bool tier_c = snapshot->tier_c;
  save_checkpoint(*snapshot, err);
  server_.publish(std::move(snapshot));

  if (replicator_) {
    // Non-owning alias: replicate() is synchronous, so the stack tracer
    // outlives every use and replication spans fold into this cycle's
    // trace tree alongside the scoring spans.
    const auto outcomes =
        telemetry ? replicator_->replicate(
                        std::shared_ptr<obs::Tracer>(std::shared_ptr<void>(),
                                                     &tracer),
                        obs::Tracer::kNoSpan)
                  : replicator_->replicate();
    for (const auto& outcome : outcomes) {
      if (!outcome.error.empty()) {
        IQB_LOG(kWarn) << "replication to " << outcome.peer
                       << " failed: " << outcome.error;
        err << "replication to " << outcome.peer
            << " failed: " << outcome.error << "\n";
      }
    }
  }

  if (telemetry) {
    spans_.ingest(tracer, trace_id);
    const double elapsed_s =
        static_cast<double>(obs::steady_clock().now_ns() - start_ns) * 1e-9;
    metrics_
        .histogram("iqb_daemon_cycle_duration_seconds",
                   "Wall time of one watch-daemon scoring cycle",
                   obs::latency_buckets_s())
        .observe(elapsed_s);
    obs::add_counter(telemetry, "iqb_daemon_cycles_total",
                     "Watch-daemon scoring cycles by result",
                     {{"result", "ok"}});
    obs::set_gauge(telemetry, "iqb_daemon_ready",
                   "1 once the first cycle has completed", {}, 1.0);
    obs::set_gauge(telemetry, "iqb_daemon_tier_c",
                   "1 while the latest scores carry confidence tier C", {},
                   tier_c ? 1.0 : 0.0);
    obs::set_gauge(telemetry, "iqbd_serving_stale",
                   "1 while serving a recovered checkpoint no fresh cycle "
                   "has replaced",
                   {}, 0.0);
    // Per-region score gauges: the raw material for /historyz trends
    // and the built-in score_drift / tier_flap rules.
    for (const auto& result : output.results) {
      metrics_
          .gauge("iqb_region_score",
                 "Latest IQB score per region and quality level",
                 {{"level", "high"}, {"region", result.region}})
          .set(result.high.iqb_score);
      metrics_
          .gauge("iqb_region_score",
                 "Latest IQB score per region and quality level",
                 {{"level", "minimum"}, {"region", result.region}})
          .set(result.minimum.iqb_score);
      metrics_
          .gauge("iqb_region_tier",
                 "Confidence tier per region (0=A, 1=B, 2=C)",
                 {{"region", result.region}})
          .set(static_cast<double>(
              static_cast<int>(result.degradation().tier)));
      for (const auto& cell : result.aggregates) {
        metrics_
            .gauge("iqb_region_value",
                   "Aggregated requirement value per region/dataset/metric",
                   {{"dataset", cell.dataset},
                    {"metric", std::string(datasets::metric_name(cell.metric))},
                    {"region", cell.region}})
            .set(cell.value);
      }
    }
  }
  sample_and_evaluate();
  IQB_LOG(kInfo) << "cycle " << cycle << " scored "
                 << output.results.size() << " regions";
  return true;
}

void WatchDaemon::loop(std::ostream& err) {
  using std::chrono::milliseconds;
  using std::chrono::steady_clock;
  auto last_run = steady_clock::now();
  bool ran_once = false;
  // Failed or timed-out cycles back off with decorrelated jitter so a
  // persistently broken input doesn't spin the loop; success resets
  // the schedule.
  std::optional<robust::RetrySchedule> backoff;
  auto backoff_until = steady_clock::now();
  for (;;) {
    const bool backing_off = steady_clock::now() < backoff_until;
    const bool interval_due =
        !ran_once ||
        steady_clock::now() - last_run >= milliseconds(options_.interval_ms);
    const bool file_due = options_.watch_files && poll_mtime();
    if (!backing_off && (interval_due || file_due)) {
      const bool ok = run_cycle(err);
      last_run = steady_clock::now();
      ran_once = true;
      if (ok) {
        backoff.reset();
        backoff_until = last_run;
      } else {
        if (!backoff) backoff.emplace(options_.cycle_backoff);
        double delay_s = backoff->next_delay_s();
        if (delay_s < 0.0) {
          // Policy exhausted: restart the schedule rather than spin.
          backoff.emplace(options_.cycle_backoff);
          delay_s = backoff->next_delay_s();
          if (delay_s < 0.0) delay_s = options_.cycle_backoff.max_delay_s;
        }
        backoff_until =
            last_run + milliseconds(static_cast<std::uint64_t>(
                           delay_s * 1000.0));
        IQB_LOG(kWarn) << "backing off "
                       << static_cast<std::uint64_t>(delay_s * 1000.0)
                       << " ms before the next cycle";
      }
      if (options_.max_cycles != 0 &&
          cycles_total_.load() >= options_.max_cycles) {
        finished_.store(true);
        return;
      }
    }
    std::unique_lock<std::mutex> lock(loop_mutex_);
    if (loop_cv_.wait_for(lock, milliseconds(options_.poll_ms),
                          [this] { return stop_requested_; })) {
      return;
    }
  }
}

}  // namespace iqb::cli
