// Shared record-loading path for iqbctl commands and the iqbd daemon.
//
// One function, two behaviors: strict loads fail on the first
// malformed row (the historical read_records_csv semantics), lenient
// loads quarantine bad rows and surface them as IngestHealth so the
// scorer can account for them. With telemetry attached, even strict
// loads run through the instrumented fault-tolerant loader (same
// parser, same policy) so rows-read/rejected metrics exist.
#pragma once

#include <iosfwd>
#include <string>

#include "iqb/datasets/store.hpp"
#include "iqb/robust/degradation.hpp"
#include "iqb/util/result.hpp"

namespace iqb::obs {
struct Telemetry;
}

namespace iqb::cli {

/// Records plus the ingest-side health that scoring should know about.
struct LoadedStore {
  datasets::RecordStore store;
  robust::IngestHealth health;
};

/// Load `path` into a RecordStore. Warnings (quarantined rows, skipped
/// records) go to `err`; an empty store is an error, not a warning.
util::Result<LoadedStore> load_store(const std::string& path, bool lenient,
                                     std::ostream& err,
                                     obs::Telemetry* telemetry = nullptr);

}  // namespace iqb::cli
