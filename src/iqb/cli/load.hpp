// Shared record-loading path for iqbctl commands and the iqbd daemon.
//
// One function, two behaviors: strict loads fail on the first
// malformed row (the historical read_records_csv semantics), lenient
// loads quarantine bad rows and surface them as IngestHealth so the
// scorer can account for them. Every load runs through the zero-copy
// ingestion fast path (datasets::load_records_file): the file is
// mmap'd, its leading bytes decide CSV vs IQBREC binary, and CSV
// parsing can fan out over a thread pool while staying byte-identical
// to the serial legacy reader.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "iqb/datasets/store.hpp"
#include "iqb/robust/degradation.hpp"
#include "iqb/util/result.hpp"

namespace iqb::obs {
struct Telemetry;
}

namespace iqb::cli {

/// Records plus the ingest-side health that scoring should know about.
struct LoadedStore {
  datasets::RecordStore store;
  robust::IngestHealth health;
};

struct LoadStoreOptions {
  bool lenient = false;
  /// CSV parse width: 1 = serial, 0 = hardware concurrency.
  std::size_t threads = 1;
  obs::Telemetry* telemetry = nullptr;
};

/// Load `path` (record CSV or IQBREC binary, sniffed by content) into
/// a RecordStore. Warnings (quarantined rows, skipped records) go to
/// `err`; an empty store is an error, not a warning.
util::Result<LoadedStore> load_store(const std::string& path,
                                     const LoadStoreOptions& options,
                                     std::ostream& err);

/// Back-compat shim over the options overload.
util::Result<LoadedStore> load_store(const std::string& path, bool lenient,
                                     std::ostream& err,
                                     obs::Telemetry* telemetry = nullptr);

}  // namespace iqb::cli
