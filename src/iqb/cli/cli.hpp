// Command implementations behind the iqbctl binary.
//
// Kept as a library so the commands are unit-testable: run_command
// takes argv-style tokens and writes to caller-supplied streams.
//
//   iqbctl score       --records F.csv [--config F.json] [--by-isp true]
//                      [--lenient true]
//                      [--format text|json|csv|markdown|html] [--out F]
//                      [--metrics-out F.prom|.json] [--trace-out F.json]
//   iqbctl aggregate   --records F.csv [--config F.json] [--percentile P]
//                      [--lenient true]
//                      [--metrics-out F.prom|.json] [--trace-out F.json]
//   iqbctl config      [--out F.json]
//   iqbctl sensitivity --records F.csv --region NAME [--config F.json]
//   iqbctl trend       --records F.csv [--config F.json] [--window-days N]
//   iqbctl simulate    [--subscribers N] [--tests N] [--seed S] [--out F.csv]
//
// Exit codes: 0 success, 1 usage error, 2 data/config error,
// 3 scored but in degraded mode (missing datasets, quarantined rows,
// or open circuit breakers — see the per-region confidence tiers).
//
// --metrics-out collects run telemetry (iqb::obs) and writes it in
// Prometheus text (.prom) or JSON (.json) form; --trace-out writes the
// span tree of the run as JSON. Both are strictly additive: without
// the flags no telemetry is collected and output is bit-identical.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace iqb::cli {

/// Parsed command line: the subcommand plus --key value options.
struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  std::optional<std::string> get(const std::string& key) const;
};

/// Parse tokens (argv[1..]); error text explains usage problems.
/// Exposed for tests.
struct ParsedOrError {
  std::optional<Args> args;
  std::string error;
};
ParsedOrError parse_args(const std::vector<std::string>& tokens);

/// Execute a full command line (argv[1..] tokens). Output goes to
/// `out`, diagnostics to `err`. Returns the process exit code.
int run_command(const std::vector<std::string>& tokens, std::ostream& out,
                std::ostream& err);

}  // namespace iqb::cli
