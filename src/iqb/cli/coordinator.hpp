// The iqbd fleet coordinator: scatter-gather over shard daemons.
//
// `iqbd --coordinator` turns the same binary into the gather tier of
// a region-partitioned fleet: each cycle it fetches every configured
// shard's /shard/aggregate payload (fleet::FleetFetcher — deadlines,
// bounded retries, hedged requests, per-shard circuit breakers,
// last-good caching), fuses the partial tables (fleet::fuse) and
// publishes the fused scores to the same TelemetryServer a single
// daemon uses — /scores, /metrics, /readyz behave identically, so a
// consumer cannot tell (and in the zero-fault case literally cannot
// tell: the bytes match) whether it is talking to one daemon or a
// fleet.
//
// Partial results degrade, never error: while at least one shard has
// ever answered, /scores serves a well-formed document; regions whose
// shard failed this cycle are served from its last-good payload at
// confidence tier C, /readyz reports "degraded" with per-shard
// status, and /fleetz serves the full fleet view. Cycles that fused
// fewer fresh shards than configured are counted in
// fleet_partial_cycles_total.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "iqb/core/config.hpp"
#include "iqb/fleet/coordinator.hpp"
#include "iqb/fleet/fetcher.hpp"
#include "iqb/fleet/replication.hpp"
#include "iqb/robust/checkpoint.hpp"
#include "iqb/obs/clock.hpp"
#include "iqb/obs/history.hpp"
#include "iqb/obs/metrics.hpp"
#include "iqb/obs/request_stats.hpp"
#include "iqb/obs/slo.hpp"
#include "iqb/obs/span_buffer.hpp"
#include "iqb/obs/telemetry_server.hpp"
#include "iqb/util/result.hpp"

namespace iqb::cli {

struct CoordinatorOptions {
  std::vector<fleet::ShardEndpoint> shards;
  std::optional<std::string> config_path;

  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 9090;  ///< 0: ephemeral.

  std::uint64_t interval_ms = 2000;  ///< Gather cadence.
  std::uint64_t poll_ms = 200;       ///< stop-check step.
  std::uint64_t max_cycles = 0;      ///< 0: run until stop().

  /// Shard fetch budget (per shard, per cycle).
  std::uint64_t connect_timeout_ms = 1000;
  std::uint64_t io_timeout_ms = 2000;
  std::uint64_t total_deadline_ms = 5000;
  std::uint64_t hedge_delay_ms = 150;
  double retry_sleep_scale = 1.0;  ///< Test seam; 1.0 in production.

  bool telemetry = true;
  std::string trace_prefix = "iqbc";
  /// Completed spans kept for /tracez and /fleet/tracez.
  std::size_t span_buffer_capacity = 512;

  /// SLO alerting (telemetry only): specs from --slo-file and/or
  /// programmatic (tests), on top of the built-in shard_unreachable
  /// and cycle_error_burn rules. /alertz serves the engine;
  /// /fleet/alertz scatter-gathers shard alerts on top.
  std::optional<std::string> slo_file;
  std::vector<obs::SloSpec> slo_specs;
  /// Ring sizing for the in-process history TSDB (/historyz).
  obs::TimeSeriesStore::Options history;
  /// Test seam: time source for history timestamps and SLO evaluation
  /// (null: the process steady clock).
  obs::Clock* clock = nullptr;

  /// Fused-snapshot durability: with --state-dir set, every published
  /// gather cycle is checkpointed (robust::CheckpointStore framed
  /// format) and a restarted coordinator serves the last fused scores
  /// immediately, flagged stale, instead of 503ing until the shards
  /// answer again. The same dir backs /checkpointz, so shards may also
  /// replicate *their* checkpoints to the coordinator.
  std::optional<std::string> state_dir;
  std::size_t checkpoint_keep = 3;
  /// Stable name on /checkpointz (must satisfy fleet::valid_node_id).
  std::string node_id = "iqbc";
};

/// Parse the argv[1..] tokens following --coordinator
/// (--shards [name=]host:port,... [--config F] [--port N] [--bind A]
/// [--interval-ms N] [--poll-ms N] [--max-cycles N] [--hedge-ms N]
/// [--connect-timeout-ms N] [--io-timeout-ms N] [--total-deadline-ms N]
/// [--telemetry true|false] [--trace-prefix S] [--state-dir DIR]
/// [--checkpoint-keep N] [--node-id S]).
util::Result<CoordinatorOptions> parse_coordinator_args(
    const std::vector<std::string>& tokens);

/// One-line usage text for iqbd --coordinator.
const char* coordinator_usage() noexcept;

class CoordinatorDaemon {
 public:
  explicit CoordinatorDaemon(CoordinatorOptions options);
  ~CoordinatorDaemon();  ///< Calls stop().
  CoordinatorDaemon(const CoordinatorDaemon&) = delete;
  CoordinatorDaemon& operator=(const CoordinatorDaemon&) = delete;

  /// Load the config, start the telemetry server, launch the gather
  /// loop. `err` must outlive the daemon.
  util::Result<void> start(std::ostream& err);

  /// Graceful drain: finish the in-flight cycle, answer accepted HTTP
  /// requests, join every thread. Idempotent.
  void stop();

  bool running() const noexcept { return running_; }
  /// True once the loop exited on its own (max_cycles reached).
  bool finished() const noexcept { return finished_.load(); }

  std::uint16_t port() const noexcept { return server_.port(); }
  obs::TelemetryServer& server() noexcept { return server_; }

  std::uint64_t cycles_total() const noexcept { return cycles_total_.load(); }
  std::uint64_t cycles_failed() const noexcept {
    return cycles_failed_.load();
  }
  /// Cycles where at least one shard was cached or missing.
  std::uint64_t partial_cycles() const noexcept {
    return partial_cycles_.load();
  }

  fleet::FleetFetcher& fetcher() noexcept { return *fetcher_; }

  /// History TSDB / SLO engine; null while telemetry is off (and, for
  /// the engine, before the first start()/run_cycle()).
  obs::TimeSeriesStore* history() noexcept { return history_.get(); }
  obs::SloEngine* slo() noexcept { return slo_.get(); }

  /// Run one gather cycle synchronously (the loop calls this; tests
  /// may too, before start()). Returns true if the cycle published.
  bool run_cycle(std::ostream& err);

  /// True while the served snapshot is a recovered checkpoint no
  /// fresh gather has replaced.
  bool serving_stale() const;

  /// Publish the newest valid checkpoint (stale) at startup. start()
  /// calls this once; tests may call it directly before start().
  util::Result<void> recover(std::ostream& err);

 private:
  util::Result<void> ensure_config();
  /// Persist the published snapshot (no-op without --state-dir).
  void save_checkpoint(const obs::ScoreSnapshot& snapshot,
                       std::ostream& err);
  /// Build the SLO engine (built-in + configured specs) on first use.
  util::Result<void> ensure_alerting(std::ostream& err);
  std::uint64_t now_ms() const;
  void loop(std::ostream& err);
  std::optional<obs::HttpResponse> route_override(
      const obs::HttpRequest& request);
  obs::HttpResponse readyz_response();
  obs::HttpResponse fleetz_response();
  /// Scatter-gather /tracez?trace=<id> from every shard, follow
  /// shard_trace links one hop, and serve the stitched tree.
  obs::HttpResponse fleet_tracez_response(const obs::HttpRequest& request);
  /// Scatter-gather every shard's /alertz and serve the fleet alert
  /// roll-up (own alerts + per-shard alerts grouped per region).
  obs::HttpResponse fleet_alertz_response();

  CoordinatorOptions options_;
  std::optional<core::IqbConfig> config_;

  obs::MetricsRegistry metrics_;
  std::unique_ptr<fleet::FleetFetcher> fetcher_;
  // Durability (telemetry-independent): set only with --state-dir.
  std::optional<robust::CheckpointStore> checkpoints_;
  std::unique_ptr<fleet::CheckpointExchange> exchange_;
  bool recovered_ = false;
  std::uint64_t last_checkpoint_cycle_ = 0;
  // Declared before server_: the server's options lambda wires these
  // sinks into the HTTP layer when telemetry is on.
  obs::SpanRingBuffer spans_;
  std::unique_ptr<obs::RequestStats> request_stats_;
  // History + alerting (telemetry only); both internally locked.
  std::unique_ptr<obs::TimeSeriesStore> history_;
  std::unique_ptr<obs::SloEngine> slo_;
  bool alerting_ready_ = false;
  std::uint64_t start_ms_ = 0;  ///< Construction time (uptime gauge).
  obs::TelemetryServer server_;

  std::atomic<std::uint64_t> cycles_total_{0};
  std::atomic<std::uint64_t> cycles_failed_{0};
  std::atomic<std::uint64_t> partial_cycles_{0};

  /// Last fuse accounting, for /readyz and /fleetz (guarded).
  mutable std::mutex fuse_mutex_;
  fleet::FuseOutput last_fuse_;
  bool fused_once_ = false;

  bool running_ = false;
  std::atomic<bool> finished_{false};
  std::mutex loop_mutex_;
  std::condition_variable loop_cv_;
  bool stop_requested_ = false;  ///< Guarded by loop_mutex_.
  std::thread loop_thread_;
};

}  // namespace iqb::cli
