#include "iqb/cli/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <thread>
#include <utility>

#include "iqb/fleet/stitch.hpp"
#include "iqb/obs/history_routes.hpp"
#include "iqb/obs/http_client.hpp"
#include "iqb/obs/trace.hpp"
#include "iqb/robust/circuit_breaker.hpp"
#include "iqb/util/json.hpp"
#include "iqb/util/log.hpp"
#include "iqb/util/strings.hpp"
#include "iqb/util/version.hpp"

namespace iqb::cli {

namespace {

constexpr const char* kCoordinatorUsage =
    "usage: iqbd --coordinator --shards [name=]host:port,... \n"
    "            [--config FILE.json] [--port N] [--bind ADDR]\n"
    "            [--interval-ms N] [--poll-ms N] [--max-cycles N]\n"
    "            [--hedge-ms N] [--connect-timeout-ms N]\n"
    "            [--io-timeout-ms N] [--total-deadline-ms N]\n"
    "            [--telemetry true|false] [--trace-prefix S]\n"
    "            [--slo-file FILE.json] [--state-dir DIR]\n"
    "            [--checkpoint-keep N] [--node-id S]\n"
    "gathers every shard's /shard/aggregate each cycle, fuses the\n"
    "tables and serves the fleet's /scores exactly like one daemon;\n"
    "failed shards are served from their last-good payload at\n"
    "confidence tier C (/readyz: \"degraded\"); /fleetz shows the\n"
    "per-shard fetch state; /fleet/alertz rolls up shard alerts (a\n"
    "built-in shard_unreachable rule fires after two dark intervals).\n"
    "with --state-dir the fused snapshot is checkpointed per cycle\n"
    "and served (stale) across restarts; /checkpointz exposes the\n"
    "retained generations and accepts shard replicas.\n"
    "exit codes: 0 ok, 1 usage error, 2 startup error\n";

constexpr const char* kPartialCyclesMetric = "fleet_partial_cycles_total";
constexpr const char* kPartialCyclesHelp =
    "Gather cycles where at least one shard was cached or missing";

util::Result<std::uint64_t> parse_u64_option(const std::string& key,
                                             const std::string& text) {
  auto value = util::parse_int(text);
  if (!value.ok() || value.value() < 0) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "bad --" + key + " '" + text + "'");
  }
  return static_cast<std::uint64_t>(value.value());
}

}  // namespace

const char* coordinator_usage() noexcept { return kCoordinatorUsage; }

util::Result<CoordinatorOptions> parse_coordinator_args(
    const std::vector<std::string>& tokens) {
  CoordinatorOptions options;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& key = tokens[i];
    if (!util::starts_with(key, "--")) {
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "expected --option, got '" + key + "'");
    }
    if (i + 1 >= tokens.size()) {
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "missing value for " + key);
    }
    const std::string name = key.substr(2);
    const std::string& value = tokens[++i];
    if (name == "shards") {
      for (const std::string& token : util::split(value, ',')) {
        if (token.empty()) continue;
        auto endpoint =
            fleet::parse_shard_endpoint(token, options.shards.size());
        if (!endpoint.ok()) return endpoint.error();
        options.shards.push_back(std::move(endpoint).value());
      }
    } else if (name == "config") {
      options.config_path = value;
    } else if (name == "slo-file") {
      options.slo_file = value;
    } else if (name == "bind") {
      options.bind_address = value;
    } else if (name == "trace-prefix") {
      options.trace_prefix = value;
    } else if (name == "telemetry") {
      options.telemetry = value == "true";
    } else if (name == "port") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      if (parsed.value() > 65535) {
        return util::make_error(util::ErrorCode::kInvalidArgument,
                                "--port out of range '" + value + "'");
      }
      options.port = static_cast<std::uint16_t>(parsed.value());
    } else if (name == "interval-ms") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      options.interval_ms = parsed.value();
    } else if (name == "poll-ms") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      options.poll_ms = parsed.value() == 0 ? 1 : parsed.value();
    } else if (name == "max-cycles") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      options.max_cycles = parsed.value();
    } else if (name == "hedge-ms") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      options.hedge_delay_ms = parsed.value();
    } else if (name == "connect-timeout-ms") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      options.connect_timeout_ms = parsed.value();
    } else if (name == "io-timeout-ms") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      options.io_timeout_ms = parsed.value();
    } else if (name == "total-deadline-ms") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      options.total_deadline_ms = parsed.value();
    } else if (name == "state-dir") {
      options.state_dir = value;
    } else if (name == "checkpoint-keep") {
      auto parsed = parse_u64_option(name, value);
      if (!parsed.ok()) return parsed.error();
      options.checkpoint_keep =
          parsed.value() == 0 ? 1 : static_cast<std::size_t>(parsed.value());
    } else if (name == "node-id") {
      if (!fleet::valid_node_id(value)) {
        return util::make_error(
            util::ErrorCode::kInvalidArgument,
            "--node-id '" + value + "' must match [A-Za-z0-9_-]{1,64}");
      }
      options.node_id = value;
    } else {
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "unknown option --" + name);
    }
  }
  if (options.shards.empty()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "--shards is required");
  }
  return options;
}

CoordinatorDaemon::CoordinatorDaemon(CoordinatorOptions options)
    : options_(std::move(options)),
      fetcher_([this] {
        fleet::FleetFetcher::Options fetch;
        fetch.shards = options_.shards;
        fetch.http.connect_timeout_ms = options_.connect_timeout_ms;
        fetch.http.io_timeout_ms = options_.io_timeout_ms;
        fetch.http.total_deadline_ms = options_.total_deadline_ms;
        fetch.hedge_delay_ms = options_.hedge_delay_ms;
        fetch.retry_sleep_scale = options_.retry_sleep_scale;
        return std::make_unique<fleet::FleetFetcher>(
            std::move(fetch), options_.telemetry ? &metrics_ : nullptr);
      }()),
      spans_(options_.span_buffer_capacity),
      request_stats_([this]() -> std::unique_ptr<obs::RequestStats> {
        if (!options_.telemetry) return nullptr;
        obs::RequestStats::Options stats;
        stats.metrics = &metrics_;
        stats.known_paths = obs::default_telemetry_paths();
        return std::make_unique<obs::RequestStats>(std::move(stats));
      }()),
      history_(options_.telemetry
                   ? std::make_unique<obs::TimeSeriesStore>(options_.history)
                   : nullptr),
      server_(
          [this] {
            obs::TelemetryServer::Options server_options;
            server_options.http.bind_address = options_.bind_address;
            server_options.http.port = options_.port;
            // Telemetry off keeps the HTTP layer byte-identical to the
            // untraced server: no sinks, no X-IQB-Trace header.
            server_options.http.request_stats = request_stats_.get();
            server_options.http.spans = options_.telemetry ? &spans_ : nullptr;
            server_options.route_override =
                [this](const obs::HttpRequest& request) {
                  return route_override(request);
                };
            return server_options;
          }(),
          &metrics_, options_.telemetry ? &spans_ : nullptr) {
  start_ms_ = now_ms();
  if (options_.state_dir) {
    checkpoints_.emplace(*options_.state_dir, options_.checkpoint_keep);
    fleet::CheckpointExchange::Options exchange;
    exchange.node_id = options_.node_id;
    exchange.state_dir = *options_.state_dir;
    exchange.keep = options_.checkpoint_keep;
    exchange_ = std::make_unique<fleet::CheckpointExchange>(
        std::move(exchange), &*checkpoints_);
  }
  if (options_.telemetry) {
    metrics_.counter(kPartialCyclesMetric, kPartialCyclesHelp);
    metrics_
        .gauge("iqb_build_info",
               "Build identity; always 1, version rides in the labels",
               {{"git_sha", util::git_sha()}, {"version", util::version()}})
        .set(1.0);
    metrics_
        .gauge("iqbd_uptime_seconds", "Seconds since daemon construction")
        .set(0.0);
  }
}

std::uint64_t CoordinatorDaemon::now_ms() const {
  obs::Clock* clock = options_.clock;
  const std::uint64_t now_ns =
      clock ? clock->now_ns() : obs::steady_clock().now_ns();
  return now_ns / 1'000'000;
}

util::Result<void> CoordinatorDaemon::ensure_alerting(std::ostream& err) {
  if (alerting_ready_ || !options_.telemetry) return {};
  obs::SloEngine::Options slo_options;
  // Built-in fleet rules: a shard whose fleet_shard_up gauge stays 0
  // for two gather intervals is unreachable (and resolves after two
  // healthy intervals), plus a burn rate on failed gather cycles.
  {
    obs::SloSpec unreachable;
    unreachable.type = obs::SloSpec::Type::kThreshold;
    unreachable.name = "shard_unreachable";
    unreachable.metric = "fleet_shard_up";
    unreachable.op = obs::SloSpec::Op::kLt;
    unreachable.bound = 1.0;
    unreachable.for_ms = 2 * options_.interval_ms;
    unreachable.resolve_ms = 2 * options_.interval_ms;
    slo_options.specs.push_back(std::move(unreachable));

    obs::SloSpec cycles;
    cycles.type = obs::SloSpec::Type::kBurnRate;
    cycles.name = "cycle_error_burn";
    cycles.metric = "iqb_daemon_cycles_total";
    cycles.bad_metric = "iqb_daemon_cycles_total";
    cycles.bad_labels = {{"result", "error"}};
    slo_options.specs.push_back(std::move(cycles));
  }
  for (const obs::SloSpec& spec : options_.slo_specs) {
    slo_options.specs.push_back(spec);
  }
  if (options_.slo_file) {
    auto loaded = obs::load_slo_file(*options_.slo_file);
    if (!loaded.ok()) {
      err << "slo config error: " << loaded.error().to_string() << "\n";
      return loaded.error();
    }
    for (obs::SloSpec& spec : *loaded) {
      slo_options.specs.push_back(std::move(spec));
    }
    IQB_LOG(kInfo) << "loaded " << loaded->size() << " SLO spec(s) from "
                   << *options_.slo_file;
  }
  slo_ = std::make_unique<obs::SloEngine>(std::move(slo_options),
                                          history_.get());
  alerting_ready_ = true;
  return {};
}

CoordinatorDaemon::~CoordinatorDaemon() { stop(); }

util::Result<void> CoordinatorDaemon::ensure_config() {
  if (config_) return {};
  if (options_.config_path) {
    auto loaded = core::IqbConfig::load(*options_.config_path);
    if (!loaded.ok()) return loaded.error();
    config_ = std::move(loaded).value();
  } else {
    config_ = core::IqbConfig::paper_defaults();
  }
  return {};
}

bool CoordinatorDaemon::serving_stale() const {
  const auto snapshot = server_.latest();
  return snapshot && snapshot->stale;
}

util::Result<void> CoordinatorDaemon::recover(std::ostream& err) {
  recovered_ = true;
  if (!checkpoints_) return {};
  if (auto prepared = checkpoints_->prepare(); !prepared.ok()) {
    return prepared;
  }
  auto outcome = checkpoints_->load_newest();
  if (!outcome.ok()) return outcome.error();
  for (const auto& rejected : outcome->rejected) {
    IQB_LOG(kWarn) << "skipping corrupt checkpoint " << rejected.file << ": "
                   << rejected.reason;
    err << "skipping corrupt checkpoint " << rejected.file << ": "
        << rejected.reason << "\n";
  }
  if (!outcome->checkpoint) return {};

  // Serve the last fused scores immediately, flagged stale, so a
  // restarted coordinator answers /scores before any shard does. The
  // first fresh gather replaces the snapshot and clears the flag.
  const robust::Checkpoint& checkpoint = *outcome->checkpoint;
  auto snapshot = std::make_shared<obs::ScoreSnapshot>();
  snapshot->cycle = checkpoint.cycle;
  snapshot->trace_id = checkpoint.trace_id;
  snapshot->scores_json = checkpoint.scores_json;
  snapshot->tier_c = checkpoint.tier_c;
  snapshot->tier_c_regions = checkpoint.tier_c_regions;
  snapshot->stale = true;
  server_.publish(std::move(snapshot));

  cycles_total_.store(
      std::max(checkpoint.cycles_attempted, checkpoint.cycle));
  cycles_failed_.store(checkpoint.cycles_failed);
  last_checkpoint_cycle_ = checkpoint.cycle;
  if (options_.telemetry) {
    metrics_
        .gauge("iqbd_serving_stale",
               "1 while serving a recovered checkpoint no fresh cycle has "
               "replaced")
        .set(1.0);
    metrics_
        .counter("iqbd_checkpoint_recovered_total",
                 "Successful checkpoint recoveries at startup")
        .inc();
  }
  IQB_LOG(kInfo) << "recovered fused checkpoint: cycle " << checkpoint.cycle
                 << " (trace " << checkpoint.trace_id
                 << "); serving stale until the next gather";
  err << "recovered fused checkpoint: cycle " << checkpoint.cycle
      << "; serving stale until the next gather\n";
  return {};
}

void CoordinatorDaemon::save_checkpoint(const obs::ScoreSnapshot& snapshot,
                                        std::ostream& err) {
  if (!checkpoints_) return;
  robust::Checkpoint checkpoint;
  checkpoint.cycle = snapshot.cycle;
  checkpoint.cycles_attempted = cycles_total_.load();
  checkpoint.cycles_failed = cycles_failed_.load();
  checkpoint.trace_id = snapshot.trace_id;
  checkpoint.scores_json = snapshot.scores_json;
  checkpoint.tier_c = snapshot.tier_c;
  checkpoint.tier_c_regions = snapshot.tier_c_regions;
  auto saved = checkpoints_->save(checkpoint);
  if (!saved.ok()) {
    // Durability degrades, serving does not: the snapshot publishes
    // regardless.
    if (options_.telemetry) {
      metrics_
          .counter("iqbd_checkpoint_write_errors_total",
                   "Checkpoint saves that failed (serving unaffected)")
          .inc();
    }
    IQB_LOG(kWarn) << "checkpoint save failed: " << saved.error().to_string();
    err << "checkpoint save failed: " << saved.error().to_string() << "\n";
    return;
  }
  last_checkpoint_cycle_ = snapshot.cycle;
  if (options_.telemetry) {
    metrics_
        .counter("iqbd_checkpoint_writes_total",
                 "Checkpoints persisted after completed cycles")
        .inc();
  }
}

util::Result<void> CoordinatorDaemon::start(std::ostream& err) {
  if (running_) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "coordinator already running");
  }
  if (auto config = ensure_config(); !config.ok()) {
    return config.error();
  }
  // Build the SLO engine before the server accepts /alertz traffic;
  // the loop thread only sees the ready engine afterwards.
  if (auto alerting = ensure_alerting(err); !alerting.ok()) {
    return alerting.error();
  }
  if (!recovered_) {
    if (auto recovery = recover(err); !recovery.ok()) {
      return recovery.error();
    }
  }
  if (auto started = server_.start(); !started.ok()) {
    return started.error();
  }
  finished_.store(false);
  stop_requested_ = false;
  running_ = true;
  loop_thread_ = std::thread([this, &err] { loop(err); });
  return {};
}

void CoordinatorDaemon::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(loop_mutex_);
    stop_requested_ = true;
  }
  loop_cv_.notify_all();
  if (loop_thread_.joinable()) loop_thread_.join();
  server_.drain();
  running_ = false;
}

bool CoordinatorDaemon::run_cycle(std::ostream& err) {
  if (auto config = ensure_config(); !config.ok()) {
    err << "config error: " << config.error().to_string() << "\n";
    cycles_total_.fetch_add(1);
    cycles_failed_.fetch_add(1);
    return false;
  }
  if (auto alerting = ensure_alerting(err); !alerting.ok()) {
    cycles_total_.fetch_add(1);
    cycles_failed_.fetch_add(1);
    return false;
  }
  const std::uint64_t cycle = cycles_total_.fetch_add(1) + 1;
  const std::string trace_id =
      options_.trace_prefix + "-" + std::to_string(cycle);
  util::ScopedLogTrace log_trace(trace_id);

  // Both the publish and the no-shard exits run this: history and
  // burn rates must see failed gathers too. Runs under the cycle's
  // ScopedLogTrace so alert-transition WARNs carry the trace id.
  auto sample_and_evaluate = [&] {
    if (!history_ || !options_.telemetry) return;
    const std::uint64_t now = now_ms();
    metrics_.gauge("iqbd_uptime_seconds", "Seconds since daemon construction")
        .set(static_cast<double>(now - start_ms_) / 1000.0);
    history_->sample_registry(metrics_, now);
    if (slo_) slo_->evaluate(now, cycle, trace_id);
  };

  // The cycle tracer is shared with the fetcher because losing hedge
  // threads may still be closing their attempt spans after this cycle
  // returns; those stragglers simply miss the ingest below.
  std::shared_ptr<obs::Tracer> tracer;
  if (options_.telemetry) {
    tracer = std::make_shared<obs::Tracer>();
    tracer->set_trace_id(trace_id);
  }
  obs::ScopedSpan cycle_span(tracer.get(), "fleet.cycle");
  cycle_span.set_attribute("cycle", std::to_string(cycle));

  std::vector<fleet::ShardView> views =
      fetcher_->fetch_all(tracer, cycle_span.id());
  fleet::FuseOutput output = [&] {
    obs::ScopedSpan fuse_span(tracer.get(), "fleet.fuse");
    return fleet::fuse(*config_, views, trace_id);
  }();
  {
    std::lock_guard<std::mutex> lock(fuse_mutex_);
    last_fuse_ = output;
    fused_once_ = true;
  }
  cycle_span.set_attribute("shards_fresh",
                           std::to_string(output.shards_fresh));
  cycle_span.set_attribute("shards_cached",
                           std::to_string(output.shards_cached));
  cycle_span.set_attribute("shards_missing",
                           std::to_string(output.shards_missing));
  cycle_span.end();
  if (tracer) spans_.ingest(*tracer);
  if (options_.telemetry) {
    metrics_
        .gauge("fleet_shards_fresh", "Shards that answered this cycle")
        .set(static_cast<double>(output.shards_fresh));
    metrics_
        .gauge("fleet_shards_cached",
               "Shards served from their last-good payload this cycle")
        .set(static_cast<double>(output.shards_cached));
    metrics_
        .gauge("fleet_shards_missing",
               "Shards with no payload at all this cycle")
        .set(static_cast<double>(output.shards_missing));
  }
  if (output.partial()) {
    partial_cycles_.fetch_add(1);
    if (options_.telemetry) {
      metrics_.counter(kPartialCyclesMetric, kPartialCyclesHelp).inc();
    }
  }
  if (!output.any_payload()) {
    // Nothing to fuse — keep serving the previous snapshot (if any)
    // rather than publishing an empty document.
    cycles_failed_.fetch_add(1);
    if (options_.telemetry) {
      metrics_
          .counter("iqb_daemon_cycles_total",
                   "Watch-daemon scoring cycles by result",
                   {{"result", "error"}})
          .inc();
    }
    IQB_LOG(kError) << "gather cycle " << cycle << ": no shard answered";
    err << "gather cycle " << cycle << ": no shard answered\n";
    sample_and_evaluate();
    return false;
  }

  auto snapshot = std::make_shared<obs::ScoreSnapshot>();
  snapshot->cycle = cycle;
  snapshot->trace_id = trace_id;
  snapshot->scores_json = output.scores_json;
  snapshot->tier_c = output.tier_c;
  snapshot->tier_c_regions = output.tier_c_regions;
  snapshot->aggregate_json = output.aggregate_json;
  const bool tier_c = snapshot->tier_c;
  save_checkpoint(*snapshot, err);
  server_.publish(std::move(snapshot));

  if (options_.telemetry) {
    metrics_
        .counter("iqb_daemon_cycles_total",
                 "Watch-daemon scoring cycles by result",
                 {{"result", "ok"}})
        .inc();
    metrics_
        .gauge("iqb_daemon_ready", "1 once the first cycle has completed")
        .set(1.0);
    metrics_
        .gauge("iqbd_serving_stale",
               "1 while serving a recovered checkpoint no fresh cycle has "
               "replaced")
        .set(0.0);
    metrics_
        .gauge("iqb_daemon_tier_c",
               "1 while the latest scores carry confidence tier C")
        .set(tier_c ? 1.0 : 0.0);
  }
  sample_and_evaluate();
  IQB_LOG(kInfo) << "gather cycle " << cycle << ": " << output.shards_fresh
                 << " fresh / " << output.shards_cached << " cached / "
                 << output.shards_missing << " missing shards";
  return true;
}

void CoordinatorDaemon::loop(std::ostream& err) {
  using std::chrono::milliseconds;
  using std::chrono::steady_clock;
  auto last_run = steady_clock::now();
  bool ran_once = false;
  for (;;) {
    const bool due =
        !ran_once ||
        steady_clock::now() - last_run >= milliseconds(options_.interval_ms);
    if (due) {
      run_cycle(err);
      last_run = steady_clock::now();
      ran_once = true;
      if (options_.max_cycles != 0 &&
          cycles_total_.load() >= options_.max_cycles) {
        finished_.store(true);
        return;
      }
    }
    std::unique_lock<std::mutex> lock(loop_mutex_);
    if (loop_cv_.wait_for(lock, milliseconds(options_.poll_ms),
                          [this] { return stop_requested_; })) {
      return;
    }
  }
}

std::optional<obs::HttpResponse> CoordinatorDaemon::route_override(
    const obs::HttpRequest& request) {
  if (exchange_) {
    if (auto response = exchange_->handle(request)) return response;
  }
  if (request.path == "/readyz") return readyz_response();
  if (request.path == "/fleetz") return fleetz_response();
  if (request.path == "/fleet/tracez") return fleet_tracez_response(request);
  if (request.path == "/historyz") {
    return obs::serve_historyz(history_.get(), request, now_ms());
  }
  if (request.path == "/alertz") {
    return obs::serve_alertz(slo_.get(), options_.telemetry);
  }
  if (request.path == "/fleet/alertz") return fleet_alertz_response();
  return std::nullopt;
}

namespace {

util::JsonArray shard_status_json(
    const std::vector<fleet::ShardStatus>& statuses) {
  util::JsonArray shards;
  for (const fleet::ShardStatus& status : statuses) {
    util::JsonObject entry;
    entry.emplace("name", status.name);
    entry.emplace("address", status.address);
    entry.emplace("up", status.up);
    entry.emplace("breaker",
                  std::string(robust::breaker_state_name(status.breaker)));
    entry.emplace("last_cycle",
                  static_cast<std::int64_t>(status.last_cycle));
    entry.emplace("consecutive_failures",
                  static_cast<std::int64_t>(status.consecutive_failures));
    if (!status.last_error.empty()) {
      entry.emplace("last_error", status.last_error);
    }
    shards.emplace_back(std::move(entry));
  }
  return shards;
}

}  // namespace

obs::HttpResponse CoordinatorDaemon::readyz_response() {
  const auto snapshot = server_.latest();
  util::JsonObject out;
  out.emplace("role", "coordinator");
  out.emplace("shards", shard_status_json(fetcher_->status()));
  if (!snapshot) {
    out.emplace("status", "unready");
    out.emplace("reason", "no completed gather cycle yet");
    return {503, "application/json",
            util::JsonValue(std::move(out)).dump() + "\n"};
  }
  out.emplace("cycle", static_cast<std::int64_t>(snapshot->cycle));
  out.emplace("trace", snapshot->trace_id);
  if (snapshot->stale) {
    // Recovered-checkpoint serving: answer 200 like a single daemon's
    // /readyz does — restored-last-good is serveable — but say so, so
    // orchestration can tell it from freshly fused scores.
    out.emplace("status", "recovered");
    out.emplace("stale", true);
    return {200, "application/json",
            util::JsonValue(std::move(out)).dump() + "\n"};
  }
  if (snapshot->tier_c) {
    // Same contract as a single daemon: tier C means "serving, but
    // what you read cannot be fully trusted this cycle" — degraded,
    // not down.
    std::string regions;
    for (const std::string& region : snapshot->tier_c_regions) {
      if (!regions.empty()) regions += ", ";
      regions += region;
    }
    out.emplace("status", "degraded");
    out.emplace("reason",
                "confidence tier C (single-source or worse): " + regions);
    return {503, "application/json",
            util::JsonValue(std::move(out)).dump() + "\n"};
  }
  out.emplace("status", "ready");
  out.emplace("stale", false);
  return {200, "application/json",
          util::JsonValue(std::move(out)).dump() + "\n"};
}

obs::HttpResponse CoordinatorDaemon::fleet_tracez_response(
    const obs::HttpRequest& request) {
  std::string trace = obs::query_param(request.query, "trace");
  if (trace.empty()) {
    // Default to the latest published cycle — "show me the last
    // gather" is the common interactive ask.
    const auto snapshot = server_.latest();
    if (snapshot) trace = snapshot->trace_id;
  }
  if (trace.empty()) {
    return {503, "application/json",
            "{\"error\":\"no completed cycle yet; pass ?trace=<id>\"}\n"};
  }

  // Start from our own spans for the trace, then scatter-gather every
  // shard's /tracez?trace= dump for the same id.
  std::vector<fleet::SourcedSpan> spans;
  for (auto& span : fleet::from_completed(spans_.recent(), "coordinator")) {
    if (span.trace_id == trace) spans.push_back(std::move(span));
  }

  obs::HttpClient::Options http;
  http.connect_timeout_ms = static_cast<int>(options_.connect_timeout_ms);
  http.io_timeout_ms = static_cast<int>(options_.io_timeout_ms);
  http.total_deadline_ms = static_cast<int>(options_.total_deadline_ms);
  const obs::HttpClient client(http);

  std::mutex merge_mutex;
  const auto fetch_dump = [&](const fleet::ShardEndpoint& endpoint,
                              const std::string& id) {
    auto fetched = client.get(endpoint.host, endpoint.port,
                              "/tracez?trace=" + id);
    if (!fetched.ok() || fetched.value().status != 200) return;
    auto document = util::parse_json(fetched.value().body);
    if (!document.ok()) return;
    auto parsed = fleet::parse_tracez_dump(document.value(), endpoint.name);
    if (!parsed.ok()) return;
    std::lock_guard<std::mutex> lock(merge_mutex);
    for (auto& span : parsed.value()) spans.push_back(std::move(span));
  };

  {
    std::vector<std::thread> scatter;
    scatter.reserve(options_.shards.size());
    for (const fleet::ShardEndpoint& endpoint : options_.shards) {
      scatter.emplace_back([&, endpoint] { fetch_dump(endpoint, trace); });
    }
    for (std::thread& thread : scatter) thread.join();
  }

  // Second hop: shard server spans carry shard_trace=<local cycle id>
  // links to the cycle that produced the payload they served. Fetch
  // those traces (bounded — a hostile dump can't make us crawl) from
  // the shard that declared each link, then graft them under the
  // linking spans.
  constexpr std::size_t kMaxLinkedTraces = 4;
  std::vector<std::pair<std::string, std::string>> wanted;  // source, id
  for (const fleet::SourcedSpan& span : spans) {
    const std::string linked = span.attribute("shard_trace");
    if (linked.empty() || linked == span.trace_id) continue;
    // Distinct (source, id): every shard numbers its local cycles from
    // the same prefix, so two shards' links to "iqbd-1" name two
    // different traces that both must be fetched.
    const auto pair = std::make_pair(span.source, linked);
    if (std::find(wanted.begin(), wanted.end(), pair) != wanted.end()) {
      continue;
    }
    if (wanted.size() >= kMaxLinkedTraces) break;
    wanted.push_back(pair);
  }
  for (const auto& [source, id] : wanted) {
    for (const fleet::ShardEndpoint& endpoint : options_.shards) {
      if (endpoint.name == source) {
        fetch_dump(endpoint, id);
        break;
      }
    }
  }
  fleet::graft_linked_traces(spans);

  return {200, "application/json",
          fleet::stitched_to_json(trace, spans).dump(2) + "\n"};
}

obs::HttpResponse CoordinatorDaemon::fleet_alertz_response() {
  if (!options_.telemetry) {
    return {503, "application/json",
            "{\"reason\":\"telemetry disabled\",\"status\":\"disabled\"}\n"};
  }
  // Scatter-gather every shard's /alertz with the same per-shard
  // deadlines the payload fetches use. A shard that cannot answer is
  // reported as unreachable here — its alerts are exactly what the
  // coordinator's own shard_unreachable rule covers.
  obs::HttpClient::Options http;
  http.connect_timeout_ms = static_cast<int>(options_.connect_timeout_ms);
  http.io_timeout_ms = static_cast<int>(options_.io_timeout_ms);
  http.total_deadline_ms = static_cast<int>(options_.total_deadline_ms);
  const obs::HttpClient client(http);

  struct ShardAlerts {
    std::string name;
    std::string error;  ///< Empty when the fetch parsed cleanly.
    util::JsonValue document;
  };
  std::vector<ShardAlerts> gathered(options_.shards.size());
  {
    std::vector<std::thread> scatter;
    scatter.reserve(options_.shards.size());
    for (std::size_t i = 0; i < options_.shards.size(); ++i) {
      scatter.emplace_back([&, i] {
        const fleet::ShardEndpoint& endpoint = options_.shards[i];
        gathered[i].name = endpoint.name;
        auto fetched = client.get(endpoint.host, endpoint.port, "/alertz");
        if (!fetched.ok()) {
          gathered[i].error = fetched.error().message;
          return;
        }
        if (fetched.value().status != 200) {
          gathered[i].error =
              "status " + std::to_string(fetched.value().status);
          return;
        }
        auto document = util::parse_json(fetched.value().body);
        if (!document.ok()) {
          gathered[i].error = document.error().message;
          return;
        }
        gathered[i].document = std::move(document).value();
      });
    }
    for (std::thread& thread : scatter) thread.join();
  }

  // Roll active alerts up per region: alerts carrying a region label
  // group under it, fleet-level alerts (shard_unreachable, burn
  // rates) under "fleet". std::map keys keep the bytes stable.
  std::map<std::string, util::JsonArray> regions;
  std::size_t active_total = 0;
  const auto roll_up = [&](const util::JsonValue& document,
                           const std::string& source) {
    auto active = document.get_array("active");
    if (!active.ok()) return;
    for (const util::JsonValue& alert : *active) {
      if (!alert.is_object()) continue;
      std::string region = "fleet";
      if (auto labels = alert.get_object("labels"); labels.ok()) {
        const auto it = labels->find("region");
        if (it != labels->end() && it->second.is_string()) {
          region = it->second.as_string();
        }
      }
      util::JsonObject entry;
      entry.emplace("name", alert.get_string("name").value_or(""));
      entry.emplace("source", source);
      entry.emplace("state", alert.get_string("state").value_or(""));
      regions[region].emplace_back(std::move(entry));
      ++active_total;
    }
  };

  const util::JsonValue own =
      slo_ ? slo_->to_json() : util::JsonValue(util::JsonObject{});
  roll_up(own, "coordinator");

  util::JsonArray shards_json;
  for (const ShardAlerts& shard : gathered) {
    util::JsonObject entry;
    entry.emplace("name", shard.name);
    if (!shard.error.empty()) {
      entry.emplace("error", shard.error);
      entry.emplace("status", "unreachable");
    } else {
      roll_up(shard.document, shard.name);
      entry.emplace("alerts", shard.document);
      entry.emplace("status", "ok");
    }
    shards_json.emplace_back(std::move(entry));
  }

  util::JsonObject regions_json;
  for (auto& [region, alerts] : regions) {
    regions_json.emplace(region, std::move(alerts));
  }
  util::JsonObject out;
  out.emplace("active_total", static_cast<std::int64_t>(active_total));
  out.emplace("coordinator", own);
  out.emplace("regions", std::move(regions_json));
  out.emplace("shards", std::move(shards_json));
  return {200, "application/json",
          util::JsonValue(std::move(out)).dump(2) + "\n"};
}

obs::HttpResponse CoordinatorDaemon::fleetz_response() {
  util::JsonObject out;
  out.emplace("shards", shard_status_json(fetcher_->status()));
  {
    std::lock_guard<std::mutex> lock(fuse_mutex_);
    if (fused_once_) {
      util::JsonObject fuse;
      fuse.emplace("shards_fresh",
                   static_cast<std::int64_t>(last_fuse_.shards_fresh));
      fuse.emplace("shards_cached",
                   static_cast<std::int64_t>(last_fuse_.shards_cached));
      fuse.emplace("shards_missing",
                   static_cast<std::int64_t>(last_fuse_.shards_missing));
      fuse.emplace("max_shard_cycle",
                   static_cast<std::int64_t>(last_fuse_.max_shard_cycle));
      util::JsonArray stale;
      for (const std::string& region : last_fuse_.stale_regions) {
        stale.emplace_back(region);
      }
      fuse.emplace("stale_regions", std::move(stale));
      util::JsonArray tier_c;
      for (const std::string& region : last_fuse_.tier_c_regions) {
        tier_c.emplace_back(region);
      }
      fuse.emplace("tier_c_regions", std::move(tier_c));
      out.emplace("last_cycle", std::move(fuse));
    }
  }
  out.emplace("hedges_total",
              static_cast<std::int64_t>(fetcher_->hedges_total()));
  out.emplace("hedge_losses_total",
              static_cast<std::int64_t>(fetcher_->hedge_losses_total()));
  out.emplace("retries_total",
              static_cast<std::int64_t>(fetcher_->retries_total()));
  out.emplace("breaker_denials_total",
              static_cast<std::int64_t>(fetcher_->breaker_denials_total()));
  out.emplace("partial_cycles_total",
              static_cast<std::int64_t>(partial_cycles_.load()));
  return {200, "application/json",
          util::JsonValue(std::move(out)).dump(2) + "\n"};
}

}  // namespace iqb::cli
