#include "iqb/util/thread_pool.hpp"

namespace iqb::util {

std::size_t ThreadPool::resolve_threads(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t width = resolve_threads(threads);
  workers_.reserve(width - 1);
  for (std::size_t i = 0; i + 1 < width; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::work(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1);
    if (i >= job.n) return;
    try {
      (*job.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.done.fetch_add(1) + 1 == job.n) {
      // Lock-then-notify so a caller between its predicate check and
      // its wait cannot miss the completion signal.
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && generation_ != seen);
      });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    work(*job);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->body = &body;
  job->n = n;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();
  work(*job);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job->done.load() == job->n; });
    job_.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace iqb::util
