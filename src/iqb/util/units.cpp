#include "iqb/util/units.hpp"

#include <cmath>
#include <cstdio>

namespace iqb::util {

namespace {

std::string format_double(double v, const char* suffix) {
  char buf[64];
  // Two decimals covers the paper's precision (thresholds like 0.5%).
  std::snprintf(buf, sizeof(buf), "%.2f%s", v, suffix);
  return buf;
}

}  // namespace

bool Mbps::is_valid() const noexcept {
  return std::isfinite(value_) && value_ >= 0.0;
}

std::string Mbps::to_string() const { return format_double(value_, " Mb/s"); }

bool Millis::is_valid() const noexcept {
  return std::isfinite(value_) && value_ >= 0.0;
}

std::string Millis::to_string() const { return format_double(value_, " ms"); }

bool LossRate::is_valid() const noexcept {
  return std::isfinite(fraction_) && fraction_ >= 0.0 && fraction_ <= 1.0;
}

std::string LossRate::to_string() const {
  return format_double(percent(), "%");
}

std::string Seconds::to_string() const { return format_double(value_, " s"); }

}  // namespace iqb::util
