#include "iqb/util/strings.hpp"

#include <charconv>
#include <cstdio>

namespace iqb::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  const char* ws = " \t\r\n";
  std::size_t begin = s.find_first_not_of(ws);
  if (begin == std::string_view::npos) return {};
  std::size_t end = s.find_last_not_of(ws);
  return s.substr(begin, end - begin + 1);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

Result<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return make_error(ErrorCode::kParseError, "empty number");
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return make_error(ErrorCode::kParseError,
                      "not a number: '" + std::string(s) + "'");
  }
  return value;
}

Result<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return make_error(ErrorCode::kParseError, "empty integer");
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return make_error(ErrorCode::kParseError,
                      "not an integer: '" + std::string(s) + "'");
  }
  return value;
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace iqb::util
