#include "iqb/util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace iqb::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // All-zero state would lock xoshiro at zero forever; splitmix64 of
  // any seed cannot produce four zero words in a row, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> uniform [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t value;
  do {
    value = next_u64();
  } while (value >= limit);
  return lo + static_cast<std::int64_t>(value % range);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::normal(double mean, double stddev) noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  // Box-Muller. u1 in (0,1] so log() is finite.
  double u1 = 1.0 - next_double();
  double u2 = next_double();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * std::numbers::pi * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) noexcept {
  assert(lambda > 0.0);
  return -std::log(1.0 - next_double()) / lambda;
}

double Rng::pareto(double scale, double alpha) noexcept {
  assert(alpha > 0.0);
  return scale * std::pow(1.0 - next_double(), -1.0 / alpha);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  assert(total > 0.0 && "weighted_index requires a positive weight");
  double target = next_double() * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  // Floating-point edge: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return 0;
}

Rng Rng::fork(std::uint64_t stream_id) noexcept {
  // Mix current state with the stream id through splitmix64 to derive
  // an independent child seed.
  std::uint64_t mix = state_[0] ^ rotl(state_[3], 13) ^ (stream_id * 0xD2B74407B1CE6E93ULL);
  return Rng(splitmix64(mix));
}

}  // namespace iqb::util
