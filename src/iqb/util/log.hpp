// Minimal leveled logging with a pluggable sink.
//
// The library itself logs sparingly (campaign progress, config
// warnings); verbosity is controlled per-process via set_log_level.
// Output goes through a process-wide sink (default: stderr). The
// level check is an atomic read, so suppressed messages cost nothing;
// sink and format live behind one mutex, so concurrent log lines
// never interleave mid-line.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace iqb::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Lowercase level name ("debug", "info", ...), for structured output.
std::string_view log_level_name(LogLevel level) noexcept;

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// How format_log_line renders a message:
///  * kText: "[iqb LEVEL] message" (the historical stderr format).
///  * kJson: one JSON object per line, {"level":"...","message":"..."}.
enum class LogFormat { kText = 0, kJson = 1 };

void set_log_format(LogFormat format) noexcept;
LogFormat log_format() noexcept;

/// Pure formatter behind log_message; the line carries no trailing
/// newline. Exposed for tests and for sinks that re-format.
std::string format_log_line(LogFormat format, LogLevel level,
                            std::string_view message);

/// A sink receives each emitted line (already formatted, no trailing
/// newline). Calls are serialized by the logging mutex; sinks must not
/// log back into iqb::util or they will deadlock.
using LogSink = std::function<void(LogLevel level, std::string_view line)>;

/// Replace the process-wide sink. A null sink restores the default
/// (write the line plus '\n' to stderr).
void set_log_sink(LogSink sink);

/// Emit a message. Thread-safe at the line level: the format read,
/// line rendering, and sink call happen under one lock.
void log_message(LogLevel level, std::string_view message);

namespace detail {
/// Stream-style builder used by the IQB_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace iqb::util

/// Usage: IQB_LOG(kInfo) << "campaign " << name << " finished";
#define IQB_LOG(level)                                                      \
  if (::iqb::util::log_level() <= ::iqb::util::LogLevel::level)             \
  ::iqb::util::detail::LogLine(::iqb::util::LogLevel::level)
