// Minimal leveled logging to stderr.
//
// The library itself logs sparingly (campaign progress, config
// warnings); verbosity is controlled per-process via set_log_level.
// No global mutable state beyond the level (atomic), no allocation on
// suppressed messages.
#pragma once

#include <sstream>
#include <string_view>

namespace iqb::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit a message (appends newline). Thread-safe at the line level.
void log_message(LogLevel level, std::string_view message);

namespace detail {
/// Stream-style builder used by the IQB_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace iqb::util

/// Usage: IQB_LOG(kInfo) << "campaign " << name << " finished";
#define IQB_LOG(level)                                                      \
  if (::iqb::util::log_level() <= ::iqb::util::LogLevel::level)             \
  ::iqb::util::detail::LogLine(::iqb::util::LogLevel::level)
