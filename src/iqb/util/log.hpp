// Minimal leveled logging with a pluggable sink.
//
// The library itself logs sparingly (campaign progress, config
// warnings); verbosity is controlled per-process via set_log_level.
// Output goes through a process-wide sink (default: stderr). The
// level check is an atomic read, so suppressed messages cost nothing;
// sink and format live behind one mutex, so concurrent log lines
// never interleave mid-line.
#pragma once

#include <cstddef>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace iqb::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Lowercase level name ("debug", "info", ...), for structured output.
std::string_view log_level_name(LogLevel level) noexcept;

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// How format_log_line renders a message:
///  * kText: "[iqb LEVEL] message" (the historical stderr format).
///  * kJson: one JSON object per line, {"level":"...","message":"..."}.
/// When the emitting thread carries a correlation context (see
/// LogContext below), both formats append it: text as
/// " trace=ID span=N" inside the bracket, JSON as "trace"/"span"
/// members. Without a context the output is byte-identical to the
/// historical formats.
enum class LogFormat { kText = 0, kJson = 1 };

void set_log_format(LogFormat format) noexcept;
LogFormat log_format() noexcept;

/// Per-thread correlation context stamped onto every log record the
/// thread emits. The trace id names a pipeline cycle (or request);
/// the span id is the innermost open obs span, maintained by
/// obs::ScopedSpan. kNoLogSpan / empty trace_id mean "absent" and
/// leave the formats untouched.
inline constexpr std::size_t kNoLogSpan = static_cast<std::size_t>(-1);

struct LogContext {
  std::string trace_id;                ///< Empty: no trace correlation.
  std::size_t span_id = kNoLogSpan;    ///< kNoLogSpan: no span.
};

/// Thread-local context accessors. Setting an empty trace id clears
/// trace correlation; set_log_span returns the previous span id so
/// RAII guards can restore nesting.
void set_log_trace_id(std::string trace_id);
const std::string& log_trace_id() noexcept;
std::size_t set_log_span(std::size_t span_id) noexcept;
std::size_t log_span() noexcept;

/// RAII trace-id scope: installs `trace_id` on this thread for the
/// guard's lifetime and restores whatever was there before. This is
/// how a daemon cycle stamps its cycle id onto every record logged
/// while it runs.
class ScopedLogTrace {
 public:
  explicit ScopedLogTrace(std::string trace_id);
  ~ScopedLogTrace();
  ScopedLogTrace(const ScopedLogTrace&) = delete;
  ScopedLogTrace& operator=(const ScopedLogTrace&) = delete;

 private:
  std::string previous_;
};

/// Pure formatter behind log_message; the line carries no trailing
/// newline. Exposed for tests and for sinks that re-format.
std::string format_log_line(LogFormat format, LogLevel level,
                            std::string_view message);

/// As above with an explicit correlation context (the three-argument
/// overload formats with an empty one).
std::string format_log_line(LogFormat format, LogLevel level,
                            std::string_view message,
                            const LogContext& context);

/// A sink receives each emitted line (already formatted, no trailing
/// newline). Calls are serialized by the logging mutex; sinks must not
/// log back into iqb::util or they will deadlock.
using LogSink = std::function<void(LogLevel level, std::string_view line)>;

/// Replace the process-wide sink. A null sink restores the default
/// (write the line plus '\n' to stderr).
void set_log_sink(LogSink sink);

/// Emit a message. Thread-safe at the line level: the format read,
/// line rendering, and sink call happen under one lock.
void log_message(LogLevel level, std::string_view message);

namespace detail {
/// Stream-style builder used by the IQB_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace iqb::util

/// Usage: IQB_LOG(kInfo) << "campaign " << name << " finished";
#define IQB_LOG(level)                                                      \
  if (::iqb::util::log_level() <= ::iqb::util::LogLevel::level)             \
  ::iqb::util::detail::LogLine(::iqb::util::LogLevel::level)
