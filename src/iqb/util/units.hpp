// Strong-typed units for network quality metrics.
//
// The IQB framework deals in four physical quantities: throughput
// (megabits per second), latency (milliseconds), packet loss (a
// fraction in [0,1]) and time. Mixing them up silently (e.g. passing a
// latency where a throughput is expected) is a classic source of bugs
// in measurement pipelines, so each gets its own vocabulary type with
// explicit construction and only the arithmetic that makes sense.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace iqb::util {

/// Throughput in megabits per second. Non-negative by construction is
/// NOT enforced (deltas may be negative); use is_valid() on inputs.
class Mbps {
 public:
  constexpr Mbps() noexcept = default;
  constexpr explicit Mbps(double value) noexcept : value_(value) {}

  /// Named constructors for other common wire units.
  static constexpr Mbps from_kbps(double kbps) noexcept { return Mbps(kbps / 1000.0); }
  static constexpr Mbps from_gbps(double gbps) noexcept { return Mbps(gbps * 1000.0); }
  static constexpr Mbps from_bits_per_second(double bps) noexcept {
    return Mbps(bps / 1e6);
  }
  /// Bytes transferred over a duration (seconds) -> average throughput.
  static constexpr Mbps from_bytes_over_seconds(double bytes, double seconds) noexcept {
    return seconds > 0.0 ? Mbps(bytes * 8.0 / 1e6 / seconds) : Mbps(0.0);
  }

  constexpr double value() const noexcept { return value_; }
  constexpr double kbps() const noexcept { return value_ * 1000.0; }
  constexpr double bits_per_second() const noexcept { return value_ * 1e6; }
  constexpr double bytes_per_second() const noexcept { return value_ * 1e6 / 8.0; }

  /// A measurement is valid if it is a finite, non-negative rate.
  bool is_valid() const noexcept;

  constexpr auto operator<=>(const Mbps&) const noexcept = default;
  constexpr Mbps operator+(Mbps o) const noexcept { return Mbps(value_ + o.value_); }
  constexpr Mbps operator-(Mbps o) const noexcept { return Mbps(value_ - o.value_); }
  constexpr Mbps operator*(double k) const noexcept { return Mbps(value_ * k); }
  constexpr Mbps operator/(double k) const noexcept { return Mbps(value_ / k); }
  constexpr double operator/(Mbps o) const noexcept { return value_ / o.value_; }
  constexpr Mbps& operator+=(Mbps o) noexcept { value_ += o.value_; return *this; }
  constexpr Mbps& operator-=(Mbps o) noexcept { value_ -= o.value_; return *this; }

  /// Human-readable rendering, e.g. "25.0 Mb/s".
  std::string to_string() const;

 private:
  double value_ = 0.0;
};

/// One-way or round-trip latency in milliseconds.
class Millis {
 public:
  constexpr Millis() noexcept = default;
  constexpr explicit Millis(double value) noexcept : value_(value) {}

  static constexpr Millis from_seconds(double s) noexcept { return Millis(s * 1e3); }
  static constexpr Millis from_micros(double us) noexcept { return Millis(us / 1e3); }

  constexpr double value() const noexcept { return value_; }
  constexpr double seconds() const noexcept { return value_ / 1e3; }
  constexpr double micros() const noexcept { return value_ * 1e3; }

  bool is_valid() const noexcept;

  constexpr auto operator<=>(const Millis&) const noexcept = default;
  constexpr Millis operator+(Millis o) const noexcept { return Millis(value_ + o.value_); }
  constexpr Millis operator-(Millis o) const noexcept { return Millis(value_ - o.value_); }
  constexpr Millis operator*(double k) const noexcept { return Millis(value_ * k); }
  constexpr Millis operator/(double k) const noexcept { return Millis(value_ / k); }
  constexpr Millis& operator+=(Millis o) noexcept { value_ += o.value_; return *this; }

  std::string to_string() const;

 private:
  double value_ = 0.0;
};

/// Packet loss as a fraction in [0, 1]. The paper's thresholds are
/// expressed in percent (e.g. "1%"); use from_percent()/percent() at
/// the presentation boundary and keep fractions internally.
class LossRate {
 public:
  constexpr LossRate() noexcept = default;
  constexpr explicit LossRate(double fraction) noexcept : fraction_(fraction) {}

  static constexpr LossRate from_percent(double pct) noexcept {
    return LossRate(pct / 100.0);
  }
  static constexpr LossRate from_counts(std::uint64_t lost, std::uint64_t sent) noexcept {
    return sent > 0 ? LossRate(static_cast<double>(lost) / static_cast<double>(sent))
                    : LossRate(0.0);
  }

  constexpr double fraction() const noexcept { return fraction_; }
  constexpr double percent() const noexcept { return fraction_ * 100.0; }

  /// Valid loss rates are finite fractions in [0, 1].
  bool is_valid() const noexcept;

  constexpr auto operator<=>(const LossRate&) const noexcept = default;

  std::string to_string() const;

 private:
  double fraction_ = 0.0;
};

/// Simulated / measurement time in seconds since an arbitrary epoch.
/// Used both by the discrete-event simulator clock and as a record
/// timestamp. Double precision gives sub-microsecond resolution over
/// multi-year spans, plenty for this domain.
class Seconds {
 public:
  constexpr Seconds() noexcept = default;
  constexpr explicit Seconds(double value) noexcept : value_(value) {}

  static constexpr Seconds from_millis(double ms) noexcept { return Seconds(ms / 1e3); }
  static constexpr Seconds from_micros(double us) noexcept { return Seconds(us / 1e6); }

  constexpr double value() const noexcept { return value_; }
  constexpr Millis to_millis() const noexcept { return Millis(value_ * 1e3); }

  constexpr auto operator<=>(const Seconds&) const noexcept = default;
  constexpr Seconds operator+(Seconds o) const noexcept { return Seconds(value_ + o.value_); }
  constexpr Seconds operator-(Seconds o) const noexcept { return Seconds(value_ - o.value_); }
  constexpr Seconds operator*(double k) const noexcept { return Seconds(value_ * k); }
  constexpr Seconds& operator+=(Seconds o) noexcept { value_ += o.value_; return *this; }

  std::string to_string() const;

 private:
  double value_ = 0.0;
};

constexpr Mbps operator*(double k, Mbps v) noexcept { return v * k; }
constexpr Millis operator*(double k, Millis v) noexcept { return v * k; }
constexpr Seconds operator*(double k, Seconds v) noexcept { return v * k; }

/// User-defined literals for readable test/threshold code:
///   using namespace iqb::util::literals;  25.0_mbps, 100.0_ms, 1.0_pct
namespace literals {
constexpr Mbps operator""_mbps(long double v) noexcept {
  return Mbps(static_cast<double>(v));
}
constexpr Mbps operator""_mbps(unsigned long long v) noexcept {
  return Mbps(static_cast<double>(v));
}
constexpr Millis operator""_ms(long double v) noexcept {
  return Millis(static_cast<double>(v));
}
constexpr Millis operator""_ms(unsigned long long v) noexcept {
  return Millis(static_cast<double>(v));
}
constexpr LossRate operator""_pct(long double v) noexcept {
  return LossRate::from_percent(static_cast<double>(v));
}
constexpr LossRate operator""_pct(unsigned long long v) noexcept {
  return LossRate::from_percent(static_cast<double>(v));
}
constexpr Seconds operator""_s(long double v) noexcept {
  return Seconds(static_cast<double>(v));
}
constexpr Seconds operator""_s(unsigned long long v) noexcept {
  return Seconds(static_cast<double>(v));
}
}  // namespace literals

}  // namespace iqb::util
