#include "iqb/util/csv.hpp"

#include <fstream>
#include <sstream>

namespace iqb::util {

namespace {

/// State machine over the raw text. Handles quoted fields spanning
/// embedded newlines, which line-by-line splitting cannot.
class CsvParser {
 public:
  explicit CsvParser(std::string_view text) : text_(text) {}

  Result<std::vector<CsvRow>> parse_all() {
    std::vector<CsvRow> rows;
    while (pos_ < text_.size()) {
      auto row = parse_row();
      if (!row.ok()) return row.error();
      rows.push_back(std::move(row).value());
    }
    return rows;
  }

 private:
  Result<CsvRow> parse_row() {
    CsvRow row;
    while (true) {
      auto field = parse_field();
      if (!field.ok()) return field.error();
      row.push_back(std::move(field).value());
      if (pos_ >= text_.size()) break;
      char c = text_[pos_];
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '\r') {
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '\n') ++pos_;
        break;
      }
      if (c == '\n') {
        ++pos_;
        break;
      }
      return make_error(ErrorCode::kParseError,
                        "unexpected character after CSV field at offset " +
                            std::to_string(pos_));
    }
    return row;
  }

  Result<std::string> parse_field() {
    if (pos_ < text_.size() && text_[pos_] == '"') {
      return parse_quoted_field();
    }
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ',' || c == '\n' || c == '\r') break;
      if (c == '"') {
        return make_error(ErrorCode::kParseError,
                          "bare quote inside unquoted CSV field at offset " +
                              std::to_string(pos_));
      }
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<std::string> parse_quoted_field() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        return make_error(ErrorCode::kParseError, "unterminated quoted CSV field");
      }
      char c = text_[pos_++];
      if (c == '"') {
        if (pos_ < text_.size() && text_[pos_] == '"') {
          out.push_back('"');
          ++pos_;
        } else {
          break;  // closing quote
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool all_whitespace(std::string_view text) noexcept {
  for (char c : text) {
    if (c != ' ' && c != '\t' && c != '\r' && c != '\n') return false;
  }
  return true;
}

}  // namespace

Result<std::size_t> CsvTable::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return make_error(ErrorCode::kNotFound,
                    "CSV column '" + std::string(name) + "' not found");
}

Result<CsvTable> parse_csv(std::string_view text) {
  if (all_whitespace(text)) {
    return make_error(ErrorCode::kEmptyInput, "empty CSV document");
  }
  CsvParser parser(text);
  auto rows = parser.parse_all();
  if (!rows.ok()) return rows.error();
  auto all = std::move(rows).value();
  if (all.empty()) {
    return make_error(ErrorCode::kEmptyInput, "empty CSV document");
  }
  CsvTable table;
  table.header = std::move(all.front());
  for (std::size_t i = 1; i < all.size(); ++i) {
    // A sole empty trailing field comes from a trailing newline; skip.
    if (all[i].size() == 1 && all[i][0].empty() && i == all.size() - 1) continue;
    if (all[i].size() != table.header.size()) {
      return make_error(ErrorCode::kParseError,
                        "CSV row " + std::to_string(i) + " has " +
                            std::to_string(all[i].size()) + " fields, expected " +
                            std::to_string(table.header.size()));
    }
    table.rows.push_back(std::move(all[i]));
  }
  return table;
}

Result<CsvRow> parse_csv_line(std::string_view line) {
  CsvParser parser(line);
  auto rows = parser.parse_all();
  if (!rows.ok()) return rows.error();
  if (rows.value().size() != 1) {
    return make_error(ErrorCode::kParseError, "expected exactly one CSV row");
  }
  return std::move(rows).value().front();
}

std::string csv_quote(std::string_view field) {
  bool needs_quote = field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string write_csv(const CsvTable& table) {
  std::string out;
  auto write_row = [&out](const CsvRow& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out.push_back(',');
      out += csv_quote(row[i]);
    }
    out.push_back('\n');
  };
  if (!table.header.empty()) write_row(table.header);
  for (const auto& row : table.rows) write_row(row);
  return out;
}

Result<CsvTable> read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(ErrorCode::kIoError, "cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

Result<void> write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return make_error(ErrorCode::kIoError, "cannot open '" + path + "' for writing");
  }
  out << write_csv(table);
  if (!out) {
    return make_error(ErrorCode::kIoError, "write to '" + path + "' failed");
  }
  return Result<void>::success();
}

}  // namespace iqb::util
