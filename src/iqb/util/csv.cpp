#include "iqb/util/csv.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace iqb::util {

namespace {

/// State machine over the raw text. Handles quoted fields spanning
/// embedded newlines, which line-by-line splitting cannot.
class CsvParser {
 public:
  explicit CsvParser(std::string_view text) : text_(text) {}

  struct Parsed {
    std::vector<CsvRow> rows;
    std::vector<std::size_t> lines;  ///< 1-based start line per row.
  };

  Result<Parsed> parse_all() {
    Parsed out;
    // One row per newline is exact for machine-generated data (quoted
    // embedded newlines only ever shrink the count).
    const std::size_t newlines =
        static_cast<std::size_t>(std::count(text_.begin(), text_.end(), '\n'));
    out.rows.reserve(newlines + 1);
    out.lines.reserve(newlines + 1);
    while (pos_ < text_.size()) {
      out.lines.push_back(line_);
      auto row = parse_row();
      if (!row.ok()) return row.error();
      out.rows.push_back(std::move(row).value());
    }
    return out;
  }

 private:
  Result<CsvRow> parse_row() {
    CsvRow row;
    row.reserve(arity_hint_);
    while (true) {
      auto field = parse_field();
      if (!field.ok()) return field.error();
      row.push_back(std::move(field).value());
      if (pos_ >= text_.size()) break;
      char c = text_[pos_];
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '\r') {
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '\n') {
          ++pos_;
          ++line_;
        }
        break;
      }
      if (c == '\n') {
        ++pos_;
        ++line_;
        break;
      }
      return make_error(ErrorCode::kParseError,
                        "unexpected character after CSV field at offset " +
                            std::to_string(pos_));
    }
    arity_hint_ = row.size();
    return row;
  }

  Result<std::string> parse_field() {
    if (pos_ < text_.size() && text_[pos_] == '"') {
      return parse_quoted_field();
    }
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ',' || c == '\n' || c == '\r') break;
      if (c == '"') {
        return make_error(ErrorCode::kParseError,
                          "bare quote inside unquoted CSV field at offset " +
                              std::to_string(pos_));
      }
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<std::string> parse_quoted_field() {
    ++pos_;  // opening quote
    // Fast path: a quoted field with no embedded "" escape is one
    // contiguous slice — a single substr instead of char-by-char
    // accumulation.
    const std::size_t close = text_.find('"', pos_);
    if (close == std::string_view::npos) {
      return make_error(ErrorCode::kParseError, "unterminated quoted CSV field");
    }
    if (close + 1 >= text_.size() || text_[close + 1] != '"') {
      std::string out(text_.substr(pos_, close - pos_));
      line_ += static_cast<std::size_t>(
          std::count(out.begin(), out.end(), '\n'));
      pos_ = close + 1;
      return out;
    }
    std::string out;
    out.reserve(close - pos_ + 16);
    while (true) {
      if (pos_ >= text_.size()) {
        return make_error(ErrorCode::kParseError, "unterminated quoted CSV field");
      }
      char c = text_[pos_++];
      if (c == '"') {
        if (pos_ < text_.size() && text_[pos_] == '"') {
          out.push_back('"');
          ++pos_;
        } else {
          break;  // closing quote
        }
      } else {
        if (c == '\n') ++line_;
        out.push_back(c);
      }
    }
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;       ///< 1-based physical line at pos_.
  std::size_t arity_hint_ = 0; ///< Previous row's field count.
};

bool all_whitespace(std::string_view text) noexcept {
  for (char c : text) {
    if (c != ' ' && c != '\t' && c != '\r' && c != '\n') return false;
  }
  return true;
}

}  // namespace

Result<std::size_t> CsvTable::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return make_error(ErrorCode::kNotFound,
                    "CSV column '" + std::string(name) + "' not found");
}

Result<CsvTable> parse_csv(std::string_view text) {
  if (all_whitespace(text)) {
    return make_error(ErrorCode::kEmptyInput, "empty CSV document");
  }
  CsvParser parser(text);
  auto parsed = parser.parse_all();
  if (!parsed.ok()) return parsed.error();
  auto all = std::move(parsed).value();
  if (all.rows.empty()) {
    return make_error(ErrorCode::kEmptyInput, "empty CSV document");
  }
  CsvTable table;
  table.header = std::move(all.rows.front());
  table.rows.reserve(all.rows.size() - 1);
  table.row_lines.reserve(all.rows.size() - 1);
  for (std::size_t i = 1; i < all.rows.size(); ++i) {
    // A sole empty trailing field comes from a trailing newline; skip.
    if (all.rows[i].size() == 1 && all.rows[i][0].empty() &&
        i == all.rows.size() - 1) {
      continue;
    }
    if (all.rows[i].size() != table.header.size()) {
      return make_error(ErrorCode::kParseError,
                        "CSV row " + std::to_string(i) + " (line " +
                            std::to_string(all.lines[i]) + ") has " +
                            std::to_string(all.rows[i].size()) +
                            " fields, expected " +
                            std::to_string(table.header.size()));
    }
    table.rows.push_back(std::move(all.rows[i]));
    table.row_lines.push_back(all.lines[i]);
  }
  return table;
}

Result<CsvRow> parse_csv_line(std::string_view line) {
  CsvParser parser(line);
  auto parsed = parser.parse_all();
  if (!parsed.ok()) return parsed.error();
  if (parsed.value().rows.size() != 1) {
    return make_error(ErrorCode::kParseError, "expected exactly one CSV row");
  }
  return std::move(parsed).value().rows.front();
}

std::string csv_quote(std::string_view field) {
  bool needs_quote = field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string write_csv(const CsvTable& table) {
  std::string out;
  auto write_row = [&out](const CsvRow& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out.push_back(',');
      out += csv_quote(row[i]);
    }
    out.push_back('\n');
  };
  if (!table.header.empty()) write_row(table.header);
  for (const auto& row : table.rows) write_row(row);
  return out;
}

Result<CsvTable> read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(ErrorCode::kIoError, "cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

Result<void> write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return make_error(ErrorCode::kIoError, "cannot open '" + path + "' for writing");
  }
  out << write_csv(table);
  if (!out) {
    return make_error(ErrorCode::kIoError, "write to '" + path + "' failed");
  }
  return Result<void>::success();
}

}  // namespace iqb::util
