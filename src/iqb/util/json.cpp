#include "iqb/util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace iqb::util {

namespace {

/// Recursive-descent JSON parser over a string_view. Tracks position
/// for error messages and depth to bound recursion.
class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> parse_document() {
    skip_ws();
    auto value = parse_value(0);
    if (!value.ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing content after JSON document");
    }
    return value;
  }

 private:
  Error fail(std::string what) const {
    return make_error(ErrorCode::kParseError,
                      what + " at offset " + std::to_string(pos_));
  }

  bool eof() const noexcept { return pos_ >= text_.size(); }
  char peek() const noexcept { return text_[pos_]; }
  char advance() noexcept { return text_[pos_++]; }

  void skip_ws() noexcept {
    while (!eof()) {
      char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume_literal(std::string_view lit) noexcept {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> parse_value(int depth) {
    if (depth > max_depth_) return fail("maximum nesting depth exceeded");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        auto s = parse_string();
        if (!s.ok()) return s.error();
        return JsonValue(std::move(s).value());
      }
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        return fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        return fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        return fail("invalid literal");
      default: return parse_number();
    }
  }

  Result<JsonValue> parse_object(int depth) {
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key string");
      auto key = parse_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (eof() || advance() != ':') return fail("expected ':' after object key");
      skip_ws();
      auto value = parse_value(depth + 1);
      if (!value.ok()) return value;
      obj.insert_or_assign(std::move(key).value(), std::move(value).value());
      skip_ws();
      if (eof()) return fail("unterminated object");
      char c = advance();
      if (c == '}') break;
      if (c != ',') return fail("expected ',' or '}' in object");
    }
    return JsonValue(std::move(obj));
  }

  Result<JsonValue> parse_array(int depth) {
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      skip_ws();
      auto value = parse_value(depth + 1);
      if (!value.ok()) return value;
      arr.push_back(std::move(value).value());
      skip_ws();
      if (eof()) return fail("unterminated array");
      char c = advance();
      if (c == ']') break;
      if (c != ',') return fail("expected ',' or ']' in array");
    }
    return JsonValue(std::move(arr));
  }

  Result<std::string> parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (eof()) return fail("unterminated string");
      char c = advance();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) return fail("unterminated escape sequence");
      char esc = advance();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          auto cp = parse_hex4();
          if (!cp.ok()) return cp.error();
          append_utf8(out, cp.value());
          break;
        }
        default: return fail("invalid escape sequence");
      }
    }
    return out;
  }

  Result<unsigned> parse_hex4() {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      char c = advance();
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else return fail("invalid hex digit in \\u escape");
    }
    return cp;
  }

  // Encode a BMP code point as UTF-8. Surrogate pairs are passed
  // through individually (sufficient for config files, which are ASCII
  // in practice).
  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<JsonValue> parse_number() {
    std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start) return fail("expected a JSON value");
    double value = 0.0;
    auto [ptr, ec] = std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      return fail("malformed number");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int max_depth_;
};

void indent_to(std::string& out, int indent, int depth) {
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

std::string format_number(double v) {
  // Integers (the common case for weights) render without a decimal
  // point so configs stay human-friendly and round-trip exactly.
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Result<JsonValue> JsonValue::get(std::string_view key) const {
  if (!is_object()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "JSON value is not an object (looking up '" +
                          std::string(key) + "')");
  }
  auto it = obj_.find(std::string(key));
  if (it == obj_.end()) {
    return make_error(ErrorCode::kNotFound,
                      "missing JSON key '" + std::string(key) + "'");
  }
  return it->second;
}

Result<double> JsonValue::get_number(std::string_view key) const {
  auto v = get(key);
  if (!v.ok()) return v.error();
  if (!v->is_number()) {
    return make_error(ErrorCode::kParseError,
                      "JSON key '" + std::string(key) + "' is not a number");
  }
  return v->as_number();
}

Result<std::string> JsonValue::get_string(std::string_view key) const {
  auto v = get(key);
  if (!v.ok()) return v.error();
  if (!v->is_string()) {
    return make_error(ErrorCode::kParseError,
                      "JSON key '" + std::string(key) + "' is not a string");
  }
  return v->as_string();
}

Result<bool> JsonValue::get_bool(std::string_view key) const {
  auto v = get(key);
  if (!v.ok()) return v.error();
  if (!v->is_bool()) {
    return make_error(ErrorCode::kParseError,
                      "JSON key '" + std::string(key) + "' is not a boolean");
  }
  return v->as_bool();
}

Result<JsonArray> JsonValue::get_array(std::string_view key) const {
  auto v = get(key);
  if (!v.ok()) return v.error();
  if (!v->is_array()) {
    return make_error(ErrorCode::kParseError,
                      "JSON key '" + std::string(key) + "' is not an array");
  }
  return v->as_array();
}

Result<JsonObject> JsonValue::get_object(std::string_view key) const {
  auto v = get(key);
  if (!v.ok()) return v.error();
  if (!v->is_object()) {
    return make_error(ErrorCode::kParseError,
                      "JSON key '" + std::string(key) + "' is not an object");
  }
  return v->as_object();
}

bool JsonValue::contains(std::string_view key) const noexcept {
  return is_object() && obj_.find(std::string(key)) != obj_.end();
}

bool JsonValue::operator==(const JsonValue& other) const noexcept {
  if (type_ != other.type_) return false;
  switch (type_) {
    case JsonType::kNull: return true;
    case JsonType::kBool: return bool_ == other.bool_;
    case JsonType::kNumber: return num_ == other.num_;
    case JsonType::kString: return str_ == other.str_;
    case JsonType::kArray: return arr_ == other.arr_;
    case JsonType::kObject: return obj_ == other.obj_;
  }
  return false;
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

void JsonValue::dump_impl(std::string& out, int indent, int depth) const {
  switch (type_) {
    case JsonType::kNull: out += "null"; break;
    case JsonType::kBool: out += bool_ ? "true" : "false"; break;
    case JsonType::kNumber: out += format_number(num_); break;
    case JsonType::kString:
      out.push_back('"');
      out += json_escape(str_);
      out.push_back('"');
      break;
    case JsonType::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      bool first = true;
      for (const auto& item : arr_) {
        if (!first) out.push_back(',');
        first = false;
        if (indent > 0) indent_to(out, indent, depth + 1);
        item.dump_impl(out, indent, depth + 1);
      }
      if (indent > 0) indent_to(out, indent, depth);
      out.push_back(']');
      break;
    }
    case JsonType::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        if (indent > 0) indent_to(out, indent, depth + 1);
        out.push_back('"');
        out += json_escape(key);
        out += indent > 0 ? "\": " : "\":";
        value.dump_impl(out, indent, depth + 1);
      }
      if (indent > 0) indent_to(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

Result<JsonValue> parse_json(std::string_view text, int max_depth) {
  Parser parser(text, max_depth);
  return parser.parse_document();
}

}  // namespace iqb::util
