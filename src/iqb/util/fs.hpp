// Crash-safe filesystem primitives.
//
// Every durable artifact the framework emits (reports, telemetry
// exports, daemon checkpoints) goes through atomic_write: the data is
// written to a temporary file in the destination directory, fsynced,
// and renamed over the target, then the directory entry itself is
// fsynced. A reader therefore observes either the old complete file
// or the new complete file — never a truncated or interleaved one —
// and a crash mid-write leaves the previous version intact.
//
// crc32 (IEEE 802.3 polynomial, the zlib/PNG variant) is the checksum
// the checkpoint format layers on top: rename gives atomicity against
// crashes of *this* process; the CRC catches torn sectors, truncation
// by other tools, and bit rot once the file is on disk.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

#include "iqb/util/result.hpp"

namespace iqb::util::fs {

/// CRC-32 (IEEE, reflected, init/xorout 0xFFFFFFFF) of `data`.
/// crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(std::string_view data) noexcept;

/// Incremental form: feed chunks with `state` threaded through,
/// starting from crc32_init() and finishing with crc32_final().
std::uint32_t crc32_init() noexcept;
std::uint32_t crc32_update(std::uint32_t state, std::string_view data) noexcept;
std::uint32_t crc32_final(std::uint32_t state) noexcept;

/// Write `data` to `path` atomically: temp file in the same directory
/// (same filesystem, so the rename cannot cross devices), write all
/// bytes, fsync the file, rename over `path`, fsync the directory.
/// On any failure the temp file is removed and `path` is untouched.
util::Result<void> atomic_write(const std::filesystem::path& path,
                                std::string_view data);

/// fsync a directory so entry mutations (renames, unlinks) performed
/// in it are durable. Needed after pruning files: an unlink without a
/// directory fsync can be rolled back by a crash, resurrecting the
/// deleted entry. Filesystems that reject O_DIRECTORY fsync report
/// kIoError; callers treating durability as best-effort may ignore it.
util::Result<void> fsync_dir(const std::filesystem::path& dir);

/// Read a whole file into a string (binary, no newline translation).
util::Result<std::string> read_file(const std::filesystem::path& path);

/// A file's contents as a stable read-only byte range, without the
/// copy read_file makes. open() prefers mmap (the kernel pages data
/// in on demand and the ingestion parser slices std::string_views
/// straight out of the page cache); when mmap is unavailable or fails
/// (pipes, some network filesystems, zero-length files) it falls back
/// to a read() slurp into an owned buffer, so callers never branch on
/// the mechanism. The view stays valid for the lifetime of the object.
class MappedFile {
 public:
  MappedFile() noexcept = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Map (or slurp) `path`. kIoError with the OS reason on failure.
  static util::Result<MappedFile> open(const std::filesystem::path& path);

  /// The file's bytes. Empty view for an empty file.
  std::string_view view() const noexcept {
    return {static_cast<const char*>(data_), size_};
  }
  std::size_t size() const noexcept { return size_; }

  /// True when the view is an actual mmap (fallback slurps report
  /// false). Informational — behavior is identical either way.
  bool is_mapped() const noexcept { return mapped_; }

 private:
  void reset() noexcept;

  const void* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;        ///< data_ came from mmap, needs munmap.
  std::string fallback_;       ///< Owning buffer for the read() path.
};

}  // namespace iqb::util::fs
