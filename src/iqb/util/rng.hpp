// Deterministic random number generation for simulation and synthesis.
//
// All stochastic components (network simulator loss models, synthetic
// dataset generators, bootstrap resampling) draw from an explicitly
// seeded Rng passed in by the caller — never from global state — so
// every experiment in this repository is reproducible bit-for-bit.
//
// The engine is xoshiro256**, which is small, fast and has excellent
// statistical quality; distributions are implemented on top rather
// than via std::<distribution> because libstdc++/libc++ distributions
// are not cross-platform deterministic.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace iqb::util {

/// xoshiro256** seeded via splitmix64. Copyable; copying forks the
/// stream (both copies produce the same subsequent values).
class Rng {
 public:
  /// Seed 0 is remapped internally (xoshiro must not start all-zero).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Uniform on [0, 2^64).
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Standard normal via Box-Muller (cached spare value).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Log-normal: exp(N(mu, sigma)). Note mu/sigma parameterize the
  /// underlying normal, matching the conventional definition.
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda) noexcept;

  /// Pareto (Lomax form shifted): scale * (U^(-1/alpha)), alpha > 0.
  /// Heavy-tailed; used for latency spikes and throughput outliers.
  double pareto(double scale, double alpha) noexcept;

  /// Integer in [0, weights.size()) with probability proportional to
  /// weights. Requires at least one positive weight.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Fork a child generator with an independent stream derived from
  /// this one's state plus the stream id; used to give each simulated
  /// region/client its own reproducible stream.
  Rng fork(std::uint64_t stream_id) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace iqb::util
