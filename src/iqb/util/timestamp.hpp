// Calendar timestamps for measurement records.
//
// Measurement records carry a UTC timestamp so datasets can be
// filtered by time window (e.g. "score region X over March 2025").
// We implement ISO 8601 parse/format over a plain unix-seconds value
// using civil-time arithmetic (no locale, no timezone database).
#pragma once

#include <cstdint>
#include <string>

#include "iqb/util/result.hpp"

namespace iqb::util {

/// UTC timestamp with second resolution, stored as unix seconds.
class Timestamp {
 public:
  constexpr Timestamp() noexcept = default;
  constexpr explicit Timestamp(std::int64_t unix_seconds) noexcept
      : unix_seconds_(unix_seconds) {}

  /// Build from civil date/time fields (UTC). Validates ranges.
  static Result<Timestamp> from_civil(int year, int month, int day, int hour = 0,
                                      int minute = 0, int second = 0);

  /// Parse "YYYY-MM-DD" or "YYYY-MM-DDTHH:MM:SS" (optional trailing 'Z').
  static Result<Timestamp> parse(std::string_view iso8601);

  constexpr std::int64_t unix_seconds() const noexcept { return unix_seconds_; }

  /// Format as "YYYY-MM-DDTHH:MM:SSZ".
  std::string to_iso8601() const;

  constexpr auto operator<=>(const Timestamp&) const noexcept = default;

  constexpr Timestamp operator+(std::int64_t seconds) const noexcept {
    return Timestamp(unix_seconds_ + seconds);
  }
  constexpr std::int64_t operator-(Timestamp other) const noexcept {
    return unix_seconds_ - other.unix_seconds_;
  }

 private:
  std::int64_t unix_seconds_ = 0;
};

}  // namespace iqb::util
