// Lightweight Result<T> error handling.
//
// The IQB library avoids exceptions on expected failure paths (bad
// config files, malformed CSV rows, empty datasets): those are values,
// not program bugs. Result<T> is a minimal expected-like type carrying
// either a T or an Error with a code and a human-readable message.
// Program bugs (violated preconditions) still assert/throw.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace iqb::util {

enum class ErrorCode {
  kInvalidArgument,
  kParseError,
  kNotFound,
  kOutOfRange,
  kEmptyInput,
  kIoError,
  kInternal,
};

/// Stable, human-readable name for an error code ("parse_error" etc.).
std::string_view error_code_name(ErrorCode code) noexcept;

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  std::string to_string() const {
    return std::string(error_code_name(code)) + ": " + message;
  }
};

inline Error make_error(ErrorCode code, std::string message) {
  return Error{code, std::move(message)};
}

/// Either a value of type T or an Error. Inspect with ok(); access the
/// value with value()/operator* only when ok() is true.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  bool ok() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    assert(ok() && "Result::value() called on error");
    return std::get<T>(storage_);
  }
  T& value() & {
    assert(ok() && "Result::value() called on error");
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(ok() && "Result::value() called on error");
    return std::get<T>(std::move(storage_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const& {
    assert(!ok() && "Result::error() called on success");
    return std::get<Error>(storage_);
  }

  /// Value if ok, otherwise the provided fallback.
  T value_or(T fallback) const& { return ok() ? std::get<T>(storage_) : std::move(fallback); }

  /// Apply f to the value if ok; propagate the error otherwise.
  template <typename F>
  auto map(F&& f) const& -> Result<decltype(f(std::declval<const T&>()))> {
    if (ok()) return f(value());
    return error();
  }

  /// Like map, but f itself returns a Result (monadic bind).
  template <typename F>
  auto and_then(F&& f) const& -> decltype(f(std::declval<const T&>())) {
    if (ok()) return f(value());
    return error();
  }

  /// Prefix the error message with `context` ("loading X: <original>")
  /// so robust-layer code can chain provenance without boilerplate.
  /// Success passes through untouched.
  Result with_context(std::string_view context) const& {
    if (ok()) return *this;
    return Error{error().code,
                 std::string(context) + ": " + error().message};
  }
  Result with_context(std::string_view context) && {
    if (ok()) return std::move(*this);
    return Error{error().code,
                 std::string(context) + ": " + error().message};
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result<void> specialization: success carries no payload.
template <>
class [[nodiscard]] Result<void> {
 public:
  /// Default-constructed Result<void> is success.
  Result() = default;
  Result(Error error) : has_error_(true), stored_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Result success() { return Result(); }

  bool ok() const noexcept { return !has_error_; }
  explicit operator bool() const noexcept { return ok(); }

  const Error& error() const {
    assert(has_error_);
    return stored_;
  }

  /// See Result<T>::with_context.
  Result with_context(std::string_view context) const {
    if (ok()) return *this;
    return Error{stored_.code,
                 std::string(context) + ": " + stored_.message};
  }

 private:
  bool has_error_ = false;
  Error stored_{};
};

}  // namespace iqb::util
