#include "iqb/util/result.hpp"

namespace iqb::util {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kEmptyInput: return "empty_input";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

}  // namespace iqb::util
