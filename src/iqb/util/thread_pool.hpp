// Small reusable worker pool for data-parallel loops.
//
// The IQB hot paths (cell aggregation, per-region scoring) are
// embarrassingly parallel: N independent tasks writing to pre-sized
// slots. ThreadPool::parallel_for covers exactly that shape — dynamic
// work stealing via an atomic cursor, the calling thread participates,
// and the call returns only when every index has run, so callers can
// fold the slots in deterministic order afterwards. A pool sized 1
// (or a loop of 1 item) runs inline on the caller with no locking,
// which keeps the serial path bit-identical to pre-pool code.
//
// One parallel_for may be in flight per pool at a time; nesting or
// concurrent fan-outs on the same pool are caller bugs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace iqb::util {

class ThreadPool {
 public:
  /// `threads` counts the calling thread too: a pool of K spawns K-1
  /// workers. 0 means resolve_threads(0) (hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();  ///< Joins all workers.
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width, including the calling thread (>= 1).
  std::size_t thread_count() const noexcept { return workers_.size() + 1; }

  /// Run body(i) for every i in [0, n), then return. Indices are
  /// claimed dynamically; each runs exactly once, on the caller or a
  /// worker. The first exception a task throws is captured and
  /// rethrown here after the loop drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Map a thread-count knob to an execution width: 0 -> hardware
  /// concurrency (at least 1), anything else verbatim. The convention
  /// used by AggregationPolicy::threads and the --threads flags.
  static std::size_t resolve_threads(std::size_t requested) noexcept;

 private:
  struct Job {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex error_mutex;
    std::exception_ptr error;  ///< First task exception, if any.
  };

  void worker_loop();
  /// Claim and run indices until the job is exhausted; returns after
  /// bumping `done` for every index it ran.
  void work(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< Workers wait for a new job.
  std::condition_variable done_cv_;  ///< Caller waits for completion.
  std::shared_ptr<Job> job_;         ///< Null while idle.
  std::uint64_t generation_ = 0;     ///< Bumped per parallel_for.
  bool shutdown_ = false;
};

}  // namespace iqb::util
