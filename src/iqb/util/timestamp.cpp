#include "iqb/util/timestamp.hpp"

#include <cstdio>

#include "iqb/util/strings.hpp"

namespace iqb::util {

namespace {

constexpr std::int64_t kSecondsPerDay = 86400;

bool is_leap(int year) noexcept {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int days_in_month(int year, int month) noexcept {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && is_leap(year)) return 29;
  return kDays[month - 1];
}

// Days from unix epoch (1970-01-01) to year-month-day, proleptic
// Gregorian. Algorithm from Howard Hinnant's date library notes.
std::int64_t days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& y, int& m, int& d) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp < 10 ? mp + 3 : mp - 9);
  y = static_cast<int>(yy + (m <= 2));
}

}  // namespace

Result<Timestamp> Timestamp::from_civil(int year, int month, int day, int hour,
                                        int minute, int second) {
  if (month < 1 || month > 12) {
    return make_error(ErrorCode::kInvalidArgument,
                      "month out of range: " + std::to_string(month));
  }
  if (day < 1 || day > days_in_month(year, month)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "day out of range: " + std::to_string(day));
  }
  if (hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0 ||
      second > 59) {
    return make_error(ErrorCode::kInvalidArgument, "time-of-day out of range");
  }
  std::int64_t days = days_from_civil(year, month, day);
  return Timestamp(days * kSecondsPerDay + hour * 3600 + minute * 60 + second);
}

Result<Timestamp> Timestamp::parse(std::string_view iso8601) {
  std::string_view s = trim(iso8601);
  if (!s.empty() && (s.back() == 'Z' || s.back() == 'z')) {
    s.remove_suffix(1);
  }
  // Date part: YYYY-MM-DD
  if (s.size() < 10 || s[4] != '-' || s[7] != '-') {
    return make_error(ErrorCode::kParseError,
                      "bad ISO 8601 date: '" + std::string(iso8601) + "'");
  }
  auto year = parse_int(s.substr(0, 4));
  auto month = parse_int(s.substr(5, 2));
  auto day = parse_int(s.substr(8, 2));
  if (!year.ok() || !month.ok() || !day.ok()) {
    return make_error(ErrorCode::kParseError,
                      "bad ISO 8601 date: '" + std::string(iso8601) + "'");
  }
  int hour = 0, minute = 0, second = 0;
  if (s.size() > 10) {
    if ((s[10] != 'T' && s[10] != ' ') || s.size() < 19 || s[13] != ':' ||
        s[16] != ':') {
      return make_error(ErrorCode::kParseError,
                        "bad ISO 8601 time: '" + std::string(iso8601) + "'");
    }
    auto h = parse_int(s.substr(11, 2));
    auto mi = parse_int(s.substr(14, 2));
    auto se = parse_int(s.substr(17, 2));
    if (!h.ok() || !mi.ok() || !se.ok()) {
      return make_error(ErrorCode::kParseError,
                        "bad ISO 8601 time: '" + std::string(iso8601) + "'");
    }
    hour = static_cast<int>(h.value());
    minute = static_cast<int>(mi.value());
    second = static_cast<int>(se.value());
  }
  return from_civil(static_cast<int>(year.value()), static_cast<int>(month.value()),
                    static_cast<int>(day.value()), hour, minute, second);
}

std::string Timestamp::to_iso8601() const {
  std::int64_t days = unix_seconds_ / kSecondsPerDay;
  std::int64_t tod = unix_seconds_ % kSecondsPerDay;
  if (tod < 0) {
    tod += kSecondsPerDay;
    days -= 1;
  }
  int y, m, d;
  civil_from_days(days, y, m, d);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ", y, m, d,
                static_cast<int>(tod / 3600), static_cast<int>((tod % 3600) / 60),
                static_cast<int>(tod % 60));
  return buf;
}

}  // namespace iqb::util
