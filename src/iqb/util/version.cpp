#include "iqb/util/version.hpp"

#ifndef IQB_VERSION
#define IQB_VERSION "0.0.0"
#endif
#ifndef IQB_GIT_SHA
#define IQB_GIT_SHA "unknown"
#endif

namespace iqb::util {

const char* version() noexcept { return IQB_VERSION; }

const char* git_sha() noexcept { return IQB_GIT_SHA; }

std::string build_string() {
  return std::string("iqb ") + version() + " (" + git_sha() + ")";
}

}  // namespace iqb::util
