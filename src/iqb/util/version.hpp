// Build identity baked in at compile time (iqb_build_info metric,
// /healthz version field, --version output).
#pragma once

#include <string>

namespace iqb::util {

/// Semantic version of this build ("1.0.0").
const char* version() noexcept;

/// Short git commit the build was produced from, or "unknown" when
/// the source tree was not a git checkout at configure time.
const char* git_sha() noexcept;

/// "iqb <version> (<git_sha>)" — the one-line human form.
std::string build_string();

}  // namespace iqb::util
