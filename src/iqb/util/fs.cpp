#include "iqb/util/fs.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace iqb::util::fs {

namespace {

/// Slice-by-16 tables for the reflected IEEE polynomial 0xEDB88320,
/// built once. tables[0] is the classic byte-at-a-time table;
/// tables[k] advances a byte through k additional zero bytes, so
/// sixteen input bytes fold into the state with sixteen independent
/// table lookups instead of sixteen dependent byte steps.
using Crc32Tables = std::array<std::array<std::uint32_t, 256>, 16>;

const Crc32Tables& crc32_tables() {
  static const Crc32Tables tables = [] {
    Crc32Tables t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::size_t k = 1; k < t.size(); ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
      }
    }
    return t;
  }();
  return tables;
}

util::Error io_error(const std::string& what,
                     const std::filesystem::path& path) {
  return util::make_error(util::ErrorCode::kIoError,
                          what + " '" + path.string() +
                              "': " + std::strerror(errno));
}

/// Write the whole buffer to fd, retrying on EINTR / short writes.
bool write_all(int fd, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written,
                              data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// fsync the directory holding `path` so the rename itself is durable.
/// Best-effort: some filesystems reject O_DIRECTORY fsync; the write
/// is still atomic with respect to readers either way.
void sync_parent_dir(const std::filesystem::path& path) {
  std::filesystem::path dir = path.parent_path();
  if (dir.empty()) dir = ".";
  fsync_dir(dir);  // best-effort: result intentionally ignored
}

}  // namespace

std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state,
                           std::string_view data) noexcept {
  const auto& t = crc32_tables();
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t n = data.size();
  // Little-endian u32 loads; compilers fuse the byte ORs into single
  // loads on LE targets, and the expression is correct on BE.
  const auto load_le32 = [](const unsigned char* q) {
    return static_cast<std::uint32_t>(q[0]) |
           static_cast<std::uint32_t>(q[1]) << 8 |
           static_cast<std::uint32_t>(q[2]) << 16 |
           static_cast<std::uint32_t>(q[3]) << 24;
  };
  while (n >= 16) {
    const std::uint32_t a = state ^ load_le32(p);
    const std::uint32_t b = load_le32(p + 4);
    const std::uint32_t c = load_le32(p + 8);
    const std::uint32_t d = load_le32(p + 12);
    state = t[15][a & 0xFFu] ^ t[14][(a >> 8) & 0xFFu] ^
            t[13][(a >> 16) & 0xFFu] ^ t[12][a >> 24] ^ t[11][b & 0xFFu] ^
            t[10][(b >> 8) & 0xFFu] ^ t[9][(b >> 16) & 0xFFu] ^
            t[8][b >> 24] ^ t[7][c & 0xFFu] ^ t[6][(c >> 8) & 0xFFu] ^
            t[5][(c >> 16) & 0xFFu] ^ t[4][c >> 24] ^ t[3][d & 0xFFu] ^
            t[2][(d >> 8) & 0xFFu] ^ t[1][(d >> 16) & 0xFFu] ^ t[0][d >> 24];
    p += 16;
    n -= 16;
  }
  while (n-- > 0) {
    state = t[0][(state ^ *p++) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::string_view data) noexcept {
  return crc32_final(crc32_update(crc32_init(), data));
}

util::Result<void> atomic_write(const std::filesystem::path& path,
                                std::string_view data) {
  // Unique-per-process temp name beside the target; a counter keeps
  // concurrent atomic_write calls from one process apart.
  static std::atomic<std::uint64_t> sequence{0};
  const std::filesystem::path temp =
      path.string() + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(sequence.fetch_add(1));

  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return io_error("cannot create temp file", temp);

  auto fail = [&](const std::string& what,
                  const std::filesystem::path& where) {
    util::Error error = io_error(what, where);
    ::close(fd);
    ::unlink(temp.c_str());
    return error;
  };

  if (!write_all(fd, data)) return fail("cannot write", temp);
  if (::fsync(fd) != 0) return fail("cannot fsync", temp);
  if (::close(fd) != 0) {
    util::Error error = io_error("cannot close", temp);
    ::unlink(temp.c_str());
    return error;
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    util::Error error = io_error("cannot rename into", path);
    ::unlink(temp.c_str());
    return error;
  }
  sync_parent_dir(path);
  return {};
}

util::Result<void> fsync_dir(const std::filesystem::path& dir) {
  const std::filesystem::path target = dir.empty() ? "." : dir;
  const int fd = ::open(target.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return io_error("cannot open directory", target);
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved_errno;
    return io_error("cannot fsync directory", target);
  }
  return {};
}

util::Result<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::make_error(util::ErrorCode::kIoError,
                            "cannot open '" + path.string() + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return util::make_error(util::ErrorCode::kIoError,
                            "read failed for '" + path.string() + "'");
  }
  return std::move(buffer).str();
}

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  if (!mapped_ && data_ != nullptr) data_ = fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  reset();
  data_ = other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  fallback_ = std::move(other.fallback_);
  if (!mapped_ && data_ != nullptr) data_ = fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

void MappedFile::reset() noexcept {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<void*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

util::Result<MappedFile> MappedFile::open(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return io_error("cannot open", path);
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    util::Error error = io_error("cannot stat", path);
    ::close(fd);
    return error;
  }

  MappedFile file;
  if (S_ISREG(st.st_mode) && st.st_size > 0) {
    void* addr = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                        PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr != MAP_FAILED) {
      ::close(fd);
      file.data_ = addr;
      file.size_ = static_cast<std::size_t>(st.st_size);
      file.mapped_ = true;
      return file;
    }
    // Fall through to the read() slurp: a filesystem that refuses
    // mmap still reads fine, and callers only ever see the view.
  }
  std::string buffer;
  if (st.st_size > 0) buffer.reserve(static_cast<std::size_t>(st.st_size));
  char chunk[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      util::Error error = io_error("cannot read", path);
      ::close(fd);
      return error;
    }
    if (n == 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  file.fallback_ = std::move(buffer);
  file.data_ = file.fallback_.data();
  file.size_ = file.fallback_.size();
  file.mapped_ = false;
  return file;
}

}  // namespace iqb::util::fs
