#include "iqb/util/fs.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace iqb::util::fs {

namespace {

/// Table for the reflected IEEE polynomial 0xEDB88320, built once.
const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

util::Error io_error(const std::string& what,
                     const std::filesystem::path& path) {
  return util::make_error(util::ErrorCode::kIoError,
                          what + " '" + path.string() +
                              "': " + std::strerror(errno));
}

/// Write the whole buffer to fd, retrying on EINTR / short writes.
bool write_all(int fd, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written,
                              data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// fsync the directory holding `path` so the rename itself is durable.
/// Best-effort: some filesystems reject O_DIRECTORY fsync; the write
/// is still atomic with respect to readers either way.
void sync_parent_dir(const std::filesystem::path& path) {
  std::filesystem::path dir = path.parent_path();
  if (dir.empty()) dir = ".";
  fsync_dir(dir);  // best-effort: result intentionally ignored
}

}  // namespace

std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state,
                           std::string_view data) noexcept {
  const auto& table = crc32_table();
  for (const char ch : data) {
    state = table[(state ^ static_cast<unsigned char>(ch)) & 0xFFu] ^
            (state >> 8);
  }
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::string_view data) noexcept {
  return crc32_final(crc32_update(crc32_init(), data));
}

util::Result<void> atomic_write(const std::filesystem::path& path,
                                std::string_view data) {
  // Unique-per-process temp name beside the target; a counter keeps
  // concurrent atomic_write calls from one process apart.
  static std::atomic<std::uint64_t> sequence{0};
  const std::filesystem::path temp =
      path.string() + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(sequence.fetch_add(1));

  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return io_error("cannot create temp file", temp);

  auto fail = [&](const std::string& what,
                  const std::filesystem::path& where) {
    util::Error error = io_error(what, where);
    ::close(fd);
    ::unlink(temp.c_str());
    return error;
  };

  if (!write_all(fd, data)) return fail("cannot write", temp);
  if (::fsync(fd) != 0) return fail("cannot fsync", temp);
  if (::close(fd) != 0) {
    util::Error error = io_error("cannot close", temp);
    ::unlink(temp.c_str());
    return error;
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    util::Error error = io_error("cannot rename into", path);
    ::unlink(temp.c_str());
    return error;
  }
  sync_parent_dir(path);
  return {};
}

util::Result<void> fsync_dir(const std::filesystem::path& dir) {
  const std::filesystem::path target = dir.empty() ? "." : dir;
  const int fd = ::open(target.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return io_error("cannot open directory", target);
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved_errno;
    return io_error("cannot fsync directory", target);
  }
  return {};
}

util::Result<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::make_error(util::ErrorCode::kIoError,
                            "cannot open '" + path.string() + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return util::make_error(util::ErrorCode::kIoError,
                            "read failed for '" + path.string() + "'");
  }
  return std::move(buffer).str();
}

}  // namespace iqb::util::fs
