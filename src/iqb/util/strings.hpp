// Small string helpers shared across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "iqb/util/result.hpp"

namespace iqb::util {

/// Split on a single-character delimiter. Adjacent delimiters produce
/// empty fields; an empty input yields one empty field (CSV semantics).
std::vector<std::string> split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept;

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// Join parts with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Parse a double with full-string validation (no trailing junk).
Result<double> parse_double(std::string_view s);

/// Parse a non-negative integer with full-string validation.
Result<std::int64_t> parse_int(std::string_view s);

/// snprintf-style formatting into std::string.
std::string format_fixed(double v, int decimals);

}  // namespace iqb::util
