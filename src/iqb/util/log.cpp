#include "iqb/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace iqb::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_write_mutex;

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, std::string_view message) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[iqb %s] %.*s\n", level_tag(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace iqb::util
