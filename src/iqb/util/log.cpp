#include "iqb/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "iqb/util/json.hpp"

namespace iqb::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<LogFormat> g_format{LogFormat::kText};

// Guards g_sink and serializes sink calls so lines never interleave.
std::mutex g_sink_mutex;
LogSink g_sink;  // empty -> default stderr sink

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

void default_sink(LogLevel, std::string_view line) {
  std::fprintf(stderr, "%.*s\n", static_cast<int>(line.size()), line.data());
}

LogContext& thread_context() {
  thread_local LogContext context;
  return context;
}

}  // namespace

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "unknown";
}

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void set_log_format(LogFormat format) noexcept { g_format.store(format); }

LogFormat log_format() noexcept { return g_format.load(); }

void set_log_trace_id(std::string trace_id) {
  thread_context().trace_id = std::move(trace_id);
}

const std::string& log_trace_id() noexcept { return thread_context().trace_id; }

std::size_t set_log_span(std::size_t span_id) noexcept {
  LogContext& context = thread_context();
  const std::size_t previous = context.span_id;
  context.span_id = span_id;
  return previous;
}

std::size_t log_span() noexcept { return thread_context().span_id; }

ScopedLogTrace::ScopedLogTrace(std::string trace_id)
    : previous_(std::move(thread_context().trace_id)) {
  thread_context().trace_id = std::move(trace_id);
}

ScopedLogTrace::~ScopedLogTrace() {
  thread_context().trace_id = std::move(previous_);
}

std::string format_log_line(LogFormat format, LogLevel level,
                            std::string_view message) {
  return format_log_line(format, level, message, LogContext{});
}

std::string format_log_line(LogFormat format, LogLevel level,
                            std::string_view message,
                            const LogContext& context) {
  const bool has_trace = !context.trace_id.empty();
  const bool has_span = context.span_id != kNoLogSpan;
  if (format == LogFormat::kJson) {
    std::string line = "{\"level\":\"";
    line += log_level_name(level);
    line += '"';
    if (has_trace) {
      line += ",\"trace\":\"";
      line += json_escape(context.trace_id);
      line += '"';
    }
    if (has_span) {
      line += ",\"span\":";
      line += std::to_string(context.span_id);
    }
    line += ",\"message\":\"";
    line += json_escape(message);
    line += "\"}";
    return line;
  }
  std::string line = "[iqb ";
  line += level_tag(level);
  if (has_trace) {
    line += " trace=";
    line += context.trace_id;
  }
  if (has_span) {
    line += " span=";
    line += std::to_string(context.span_id);
  }
  line += "] ";
  line += message;
  return line;
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void log_message(LogLevel level, std::string_view message) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  const std::string line =
      format_log_line(g_format.load(), level, message, thread_context());
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, line);
  } else {
    default_sink(level, line);
  }
}

}  // namespace iqb::util
