#include "iqb/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "iqb/util/json.hpp"

namespace iqb::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<LogFormat> g_format{LogFormat::kText};

// Guards g_sink and serializes sink calls so lines never interleave.
std::mutex g_sink_mutex;
LogSink g_sink;  // empty -> default stderr sink

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

void default_sink(LogLevel, std::string_view line) {
  std::fprintf(stderr, "%.*s\n", static_cast<int>(line.size()), line.data());
}

}  // namespace

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "unknown";
}

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void set_log_format(LogFormat format) noexcept { g_format.store(format); }

LogFormat log_format() noexcept { return g_format.load(); }

std::string format_log_line(LogFormat format, LogLevel level,
                            std::string_view message) {
  if (format == LogFormat::kJson) {
    std::string line = "{\"level\":\"";
    line += log_level_name(level);
    line += "\",\"message\":\"";
    line += json_escape(message);
    line += "\"}";
    return line;
  }
  std::string line = "[iqb ";
  line += level_tag(level);
  line += "] ";
  line += message;
  return line;
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void log_message(LogLevel level, std::string_view message) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  const std::string line = format_log_line(g_format.load(), level, message);
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, line);
  } else {
    default_sink(level, line);
  }
}

}  // namespace iqb::util
