// Minimal self-contained JSON value model, parser and serializer.
//
// IQB configurations (thresholds, weights, dataset descriptors) are
// exchanged as JSON. The library is offline and dependency-free, so we
// implement the small subset of RFC 8259 we need ourselves: objects,
// arrays, strings (with \uXXXX escapes, BMP only), numbers, booleans
// and null. Numbers are stored as double, which is exact for the
// integer weights (0..5) and thresholds the framework uses.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "iqb/util/result.hpp"

namespace iqb::util {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// std::map keeps serialization deterministic (sorted keys), which we
/// rely on for config round-trip tests.
using JsonObject = std::map<std::string, JsonValue>;

enum class JsonType { kNull, kBool, kNumber, kString, kArray, kObject };

/// A parsed JSON document node. Value-semantic; arrays/objects own
/// their children.
class JsonValue {
 public:
  JsonValue() noexcept : type_(JsonType::kNull) {}
  JsonValue(std::nullptr_t) noexcept : type_(JsonType::kNull) {}      // NOLINT
  JsonValue(bool b) noexcept : type_(JsonType::kBool), bool_(b) {}    // NOLINT
  JsonValue(double n) noexcept : type_(JsonType::kNumber), num_(n) {} // NOLINT
  JsonValue(int n) noexcept : type_(JsonType::kNumber), num_(n) {}    // NOLINT
  JsonValue(std::int64_t n) noexcept                                  // NOLINT
      : type_(JsonType::kNumber), num_(static_cast<double>(n)) {}
  JsonValue(const char* s) : type_(JsonType::kString), str_(s) {}     // NOLINT
  JsonValue(std::string s) : type_(JsonType::kString), str_(std::move(s)) {}  // NOLINT
  JsonValue(JsonArray a) : type_(JsonType::kArray), arr_(std::move(a)) {}     // NOLINT
  JsonValue(JsonObject o) : type_(JsonType::kObject), obj_(std::move(o)) {}   // NOLINT

  JsonType type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == JsonType::kNull; }
  bool is_bool() const noexcept { return type_ == JsonType::kBool; }
  bool is_number() const noexcept { return type_ == JsonType::kNumber; }
  bool is_string() const noexcept { return type_ == JsonType::kString; }
  bool is_array() const noexcept { return type_ == JsonType::kArray; }
  bool is_object() const noexcept { return type_ == JsonType::kObject; }

  /// Unchecked accessors — caller must check the type first.
  bool as_bool() const noexcept { return bool_; }
  double as_number() const noexcept { return num_; }
  const std::string& as_string() const noexcept { return str_; }
  const JsonArray& as_array() const noexcept { return arr_; }
  JsonArray& as_array() noexcept { return arr_; }
  const JsonObject& as_object() const noexcept { return obj_; }
  JsonObject& as_object() noexcept { return obj_; }

  /// Checked object lookup; error if this is not an object or the key
  /// is missing.
  Result<JsonValue> get(std::string_view key) const;

  /// Checked typed lookups used by config loading.
  Result<double> get_number(std::string_view key) const;
  Result<std::string> get_string(std::string_view key) const;
  Result<bool> get_bool(std::string_view key) const;
  Result<JsonArray> get_array(std::string_view key) const;
  Result<JsonObject> get_object(std::string_view key) const;

  /// True if this is an object containing the key.
  bool contains(std::string_view key) const noexcept;

  /// Serialize. Compact by default; indent > 0 pretty-prints with that
  /// many spaces per level.
  std::string dump(int indent = 0) const;

  bool operator==(const JsonValue& other) const noexcept;

 private:
  void dump_impl(std::string& out, int indent, int depth) const;

  JsonType type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

/// Parse a complete JSON document. Trailing non-whitespace content is
/// an error. Depth is limited (default 256) to bound recursion.
Result<JsonValue> parse_json(std::string_view text, int max_depth = 256);

/// Escape a string per JSON rules (used by the serializer; exposed for
/// report renderers emitting JSON fragments).
std::string json_escape(std::string_view s);

}  // namespace iqb::util
