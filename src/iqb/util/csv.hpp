// RFC 4180-style CSV reading and writing.
//
// Dataset import/export (measurement records, Ookla-style aggregate
// tables) uses CSV. The reader handles quoted fields, embedded commas,
// embedded quotes ("") and both \n and \r\n line endings; the writer
// quotes only when necessary.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "iqb/util/result.hpp"

namespace iqb::util {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// A fully parsed CSV document: a header row plus data rows. All rows
/// are validated to have the same arity as the header.
struct CsvTable {
  CsvRow header;
  std::vector<CsvRow> rows;
  /// 1-based physical line on which each data row starts (quoted
  /// fields may span lines, so row index and line number diverge).
  /// Parallel to `rows`; importers use it to report "row N (line L)"
  /// rejection reasons that an operator can open in an editor.
  std::vector<std::size_t> row_lines;

  /// Index of a header column, or error if absent.
  Result<std::size_t> column_index(std::string_view name) const;

  /// Line for a data-row index, tolerating older callers that built
  /// the table by hand without filling row_lines (returns 0 = unknown).
  std::size_t line_of_row(std::size_t row) const noexcept {
    return row < row_lines.size() ? row_lines[row] : 0;
  }
};

/// Parse CSV text. The first row is the header. Rows whose field count
/// differs from the header are a parse error (measurement data with
/// ragged rows indicates corruption, not optionality).
Result<CsvTable> parse_csv(std::string_view text);

/// Parse a single CSV line into fields (no header logic). Exposed for
/// streaming ingestion of very large files.
Result<CsvRow> parse_csv_line(std::string_view line);

/// Serialize rows to CSV text with correct quoting. The header is
/// written first if non-empty.
std::string write_csv(const CsvTable& table);

/// Quote a single field if it contains a comma, quote or newline.
std::string csv_quote(std::string_view field);

/// Read/write helpers that go through the filesystem.
Result<CsvTable> read_csv_file(const std::string& path);
Result<void> write_csv_file(const std::string& path, const CsvTable& table);

}  // namespace iqb::util
