// Statistical synthetic record generation (no packet simulation).
//
// The packet-level campaign (iqb::measurement) is the high-fidelity
// path; this generator is the fast path: it draws MeasurementRecords
// directly from parametric distributions fitted to the shapes seen in
// public data (log-normal throughput, shifted-log-normal latency,
// zero-inflated loss), with a per-dataset systematic bias reproducing
// the known cross-tool disagreement (multi-stream tools read higher
// than single-stream on the same line). Used by scoring-tier tests and
// benches that need millions of records in milliseconds.
#pragma once

#include <string>
#include <vector>

#include "iqb/datasets/record.hpp"
#include "iqb/util/rng.hpp"

namespace iqb::datasets {

/// Distribution profile of one region's connections.
struct RegionProfile {
  std::string region;
  std::string isp = "synthetic_isp";

  /// Median provisioned download rate and dispersion (log-normal
  /// sigma). Upload is derived via upload_ratio.
  double median_download_mbps = 100.0;
  double download_sigma = 0.5;
  double upload_ratio = 0.2;      ///< Median upload / median download.
  double upload_sigma = 0.5;

  /// Latency: minimum (geographic) plus log-normal jitter.
  double base_latency_ms = 15.0;
  double latency_mu = 1.5;        ///< Log-space mean of the jitter part.
  double latency_sigma = 0.6;

  /// Loss: fraction of tests with non-negligible loss, and the
  /// log-normal parameters of loss when present.
  double lossy_test_fraction = 0.25;
  double loss_mu = -6.0;          ///< exp(-6) ~ 0.25% typical when lossy.
  double loss_sigma = 1.0;
};

/// Per-dataset systematic measurement bias. Multiplicative on
/// throughput, additive (ms) on latency; loss_reported=false models
/// datasets that do not publish loss (Ookla open data).
struct DatasetBias {
  std::string dataset;
  double throughput_factor = 1.0;
  double latency_offset_ms = 0.0;
  double noise_sigma = 0.08;       ///< Multiplicative log-normal noise.
  bool loss_reported = true;
};

/// The default three-dataset panel mirroring the paper's sources.
std::vector<DatasetBias> default_dataset_panel();

struct SyntheticConfig {
  std::size_t records_per_dataset = 200;
  util::Timestamp base_time{};
  std::int64_t spacing_s = 600;
};

/// Draw records for one region across a dataset panel. Deterministic
/// given the rng state.
std::vector<MeasurementRecord> generate_region_records(
    const RegionProfile& profile, const std::vector<DatasetBias>& panel,
    const SyntheticConfig& config, util::Rng& rng);

/// Convenience: a six-region synthetic "country" spanning excellent
/// fiber metro to a struggling satellite-served remote area. Used by
/// examples and benches.
std::vector<RegionProfile> example_region_profiles();

}  // namespace iqb::datasets
