// IQBREC: the compact binary record format (".iqbr").
//
// Re-parsing CSV on every daemon start or CLI run re-pays string
// splitting and double formatting for data that never changed. IQBREC
// stores a record set once, in a CRC-framed little-endian layout that
// reloads at near-memcpy speed and round-trips doubles bit-exactly
// (values travel as their IEEE-754 bit patterns, never through text).
//
// Wire layout (all integers little-endian):
//
//   "IQBREC 1 <crc32c-hex8> <payload-bytes>\n"  text header line
//   payload:
//     u32  record count
//     u32  string table size
//     per table entry:  u32 length, then that many bytes
//     per record:
//       u32 x4   dataset/region/isp/subscriber string-table indices
//       i64      timestamp (unix seconds)
//       u8       metric presence bitmask, bit i = kAllMetrics[i]
//       u64 x popcount  IEEE-754 bit patterns of present metrics,
//                       in kAllMetrics order
//
// The string table deduplicates the four identity columns, which for
// measurement data (few datasets x regions x ISPs, repeated subscriber
// ids) shrinks files well below the CSV they mirror. The frame (magic,
// version, CRC-32C of the payload, byte count) follows the
// robust::CheckpointStore convention so corruption, truncation and
// foreign versions are rejected with the same style of reason. The
// checksum is Castagnoli (0x82F63B78), not the IEEE CRC-32 the
// checkpoint files use: on x86 with SSE4.2 it runs on the crc32
// instruction, which matters for a format whose whole point is
// reload speed. A table-driven fallback keeps other CPUs correct.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "iqb/datasets/record.hpp"
#include "iqb/util/result.hpp"

namespace iqb::datasets {

inline constexpr std::uint32_t kRecordFormatVersion = 1;

/// Preferred file extension for the binary format.
inline constexpr std::string_view kRecordBinaryExtension = ".iqbr";

/// True when `prefix` (any leading slice of a file) carries the IQBREC
/// magic. Loaders sniff this instead of trusting file extensions.
bool looks_like_iqbr(std::string_view prefix) noexcept;

/// CRC-32C (Castagnoli) over `data` — the IQBREC frame checksum.
/// Exposed so tests can pin the algorithm to its published vectors;
/// hardware- and software-computed frames must stay interchangeable.
std::uint32_t iqbr_crc32c(std::string_view data) noexcept;

/// Serialize records to the framed binary format.
std::string records_to_iqbr(std::span<const MeasurementRecord> records);

/// Decode a framed binary blob. Rejects bad magic, foreign versions,
/// truncation, trailing bytes and CRC mismatches with row-precise
/// reasons in the CheckpointStore style.
util::Result<std::vector<MeasurementRecord>> records_from_iqbr(
    std::string_view data);

/// File convenience wrappers; writing goes through
/// util::fs::atomic_write so readers never observe a torn file.
util::Result<void> write_records_iqbr(
    const std::string& path, std::span<const MeasurementRecord> records);
util::Result<std::vector<MeasurementRecord>> read_records_iqbr(
    const std::string& path);

}  // namespace iqb::datasets
