#include "iqb/datasets/index.hpp"

#include <algorithm>

namespace iqb::datasets {

std::uint32_t SymbolTable::intern(const std::string& name) {
  // find-before-emplace: emplace would allocate a node (and copy the
  // string) even on a hit, and interning is hit-dominated.
  if (auto it = ids_.find(name); it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

std::optional<std::uint32_t> SymbolTable::find(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> SymbolTable::sorted_names() const {
  std::vector<std::string> out = names_;
  std::sort(out.begin(), out.end());
  return out;
}

StoreIndex StoreIndex::build(std::span<const MeasurementRecord> records) {
  StoreIndex index;
  index.record_count_ = records.size();
  index.groups_.reserve(16);
  // Stores arrive clustered in practice (imports append one region/
  // dataset at a time), so a same-as-previous-record fast path skips
  // the hash lookups for the overwhelming majority of rows. The
  // cached pointers stay valid because they point into `records`.
  const std::string* last_region = nullptr;
  const std::string* last_dataset = nullptr;
  const std::string* last_isp = nullptr;
  std::uint32_t last_region_id = 0;
  std::uint32_t last_dataset_id = 0;
  std::size_t last_group = 0;
  bool last_group_valid = false;
  for (std::size_t row = 0; row < records.size(); ++row) {
    const MeasurementRecord& record = records[row];
    const bool same_region = last_region && *last_region == record.region;
    const bool same_dataset = last_dataset && *last_dataset == record.dataset;
    const std::uint32_t region_id =
        same_region ? last_region_id : index.regions_.intern(record.region);
    const std::uint32_t dataset_id =
        same_dataset ? last_dataset_id : index.datasets_.intern(record.dataset);
    if (!(last_isp && *last_isp == record.isp)) {
      index.isps_.intern(record.isp);
    }
    if (!(last_group_valid && same_region && same_dataset)) {
      auto [it, inserted] = index.group_lookup_.try_emplace(
          group_key(region_id, dataset_id), index.groups_.size());
      if (inserted) {
        Group group;
        group.region_id = region_id;
        group.dataset_id = dataset_id;
        index.groups_.push_back(std::move(group));
      }
      last_group = it->second;
      last_group_valid = true;
    }
    last_region = &record.region;
    last_dataset = &record.dataset;
    last_isp = &record.isp;
    last_region_id = region_id;
    last_dataset_id = dataset_id;

    Group& group = index.groups_[last_group];
    group.rows.push_back(static_cast<std::uint32_t>(row));
    for (Metric metric : kAllMetrics) {
      if (auto value = record.value(metric)) {
        group.columns[metric_index(metric)].push_back(*value);
      }
    }
  }

  // Sorted-by-name group order (and the precomputed distinct lists)
  // reproduce the iteration order of the historical scan path, so
  // indexed aggregation folds cells in exactly the same sequence.
  std::sort(index.groups_.begin(), index.groups_.end(),
            [&index](const Group& a, const Group& b) {
              const std::string& region_a = index.regions_.name(a.region_id);
              const std::string& region_b = index.regions_.name(b.region_id);
              if (region_a != region_b) return region_a < region_b;
              return index.datasets_.name(a.dataset_id) <
                     index.datasets_.name(b.dataset_id);
            });
  index.group_lookup_.clear();
  for (std::size_t i = 0; i < index.groups_.size(); ++i) {
    const Group& group = index.groups_[i];
    index.group_lookup_.emplace(group_key(group.region_id, group.dataset_id),
                                i);
  }
  index.sorted_regions_ = index.regions_.sorted_names();
  index.sorted_datasets_ = index.datasets_.sorted_names();
  index.sorted_isps_ = index.isps_.sorted_names();
  return index;
}

const StoreIndex::Group* StoreIndex::find(const std::string& region,
                                          const std::string& dataset) const {
  const auto region_id = regions_.find(region);
  if (!region_id) return nullptr;
  const auto dataset_id = datasets_.find(dataset);
  if (!dataset_id) return nullptr;
  auto it = group_lookup_.find(group_key(*region_id, *dataset_id));
  if (it == group_lookup_.end()) return nullptr;
  return &groups_[it->second];
}

}  // namespace iqb::datasets
