#include "iqb/datasets/aggregate.hpp"

#include <algorithm>

#include "iqb/obs/telemetry.hpp"

namespace iqb::datasets {

using util::ErrorCode;
using util::make_error;
using util::Result;

void AggregateTable::put(AggregateCell cell) {
  Key key{cell.region, cell.dataset, static_cast<int>(cell.metric)};
  cells_.insert_or_assign(std::move(key), std::move(cell));
}

Result<AggregateCell> AggregateTable::get(const std::string& region,
                                          const std::string& dataset,
                                          Metric metric) const {
  auto it = cells_.find(Key{region, dataset, static_cast<int>(metric)});
  if (it == cells_.end()) {
    return make_error(ErrorCode::kNotFound,
                      "no aggregate for region='" + region + "' dataset='" +
                          dataset + "' metric='" +
                          std::string(metric_name(metric)) + "'");
  }
  return it->second;
}

bool AggregateTable::contains(const std::string& region,
                              const std::string& dataset,
                              Metric metric) const noexcept {
  return cells_.find(Key{region, dataset, static_cast<int>(metric)}) !=
         cells_.end();
}

std::vector<AggregateCell> AggregateTable::cells() const {
  std::vector<AggregateCell> out;
  out.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) out.push_back(cell);
  return out;
}

std::vector<std::string> AggregateTable::regions() const {
  std::vector<std::string> out;
  for (const auto& [key, cell] : cells_) {
    if (out.empty() || out.back() != cell.region) out.push_back(cell.region);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::string> AggregateTable::datasets() const {
  std::vector<std::string> out;
  for (const auto& [key, cell] : cells_) out.push_back(cell.dataset);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void AggregateTable::merge(const AggregateTable& other) {
  for (const auto& [key, cell] : other.cells_) {
    cells_.insert_or_assign(key, cell);
  }
}

double effective_percentile(const AggregationPolicy& policy,
                            Metric metric) noexcept {
  if (policy.orient_to_worst && metric_higher_is_better(metric)) {
    return 100.0 - policy.percentile;
  }
  return policy.percentile;
}

Result<AggregateCell> aggregate_cell(const RecordStore& store,
                                     const std::string& region,
                                     const std::string& dataset, Metric metric,
                                     const AggregationPolicy& policy) {
  RecordFilter filter;
  filter.region = region;
  filter.dataset = dataset;
  std::vector<double> values = store.metric_values(metric, filter);
  if (values.size() < std::max<std::size_t>(policy.min_samples, 1)) {
    return make_error(ErrorCode::kEmptyInput,
                      "insufficient samples for region='" + region +
                          "' dataset='" + dataset + "' metric='" +
                          std::string(metric_name(metric)) + "'");
  }
  const double p = effective_percentile(policy, metric);
  auto value = stats::percentile(values, p, policy.method);
  if (!value.ok()) return value.error();

  AggregateCell cell;
  cell.region = region;
  cell.dataset = dataset;
  cell.metric = metric;
  cell.value = value.value();
  cell.sample_count = values.size();

  if (policy.bootstrap_resamples > 0) {
    util::Rng rng(policy.bootstrap_seed);
    auto ci = stats::bootstrap_percentile_ci(values, p, rng,
                                             policy.bootstrap_resamples,
                                             policy.bootstrap_level);
    if (ci.ok()) cell.ci = ci.value();
  }
  return cell;
}

AggregateTable aggregate(const RecordStore& store,
                         const AggregationPolicy& policy,
                         obs::Telemetry* telemetry) {
  AggregateTable table;
  for (const std::string& region : store.regions()) {
    for (const std::string& dataset : store.dataset_names()) {
      for (Metric metric : kAllMetrics) {
        auto cell = aggregate_cell(store, region, dataset, metric, policy);
        if (!cell.ok()) continue;
        if (telemetry) {
          const obs::LabelSet labels{{"dataset", dataset}};
          obs::add_counter(telemetry, "iqb_aggregate_cells_total",
                           "Aggregate cells produced", labels);
          obs::add_counter(telemetry, "iqb_aggregate_samples_total",
                           "Raw samples folded into aggregate cells", labels,
                           static_cast<double>(cell->sample_count));
          obs::observe_histogram(telemetry, "iqb_aggregate_cell_samples",
                                 "Samples per aggregate cell",
                                 obs::size_buckets(), labels,
                                 static_cast<double>(cell->sample_count));
        }
        table.put(std::move(cell).value());
      }
    }
  }
  return table;
}

}  // namespace iqb::datasets
