#include "iqb/datasets/aggregate.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "iqb/obs/telemetry.hpp"
#include "iqb/util/thread_pool.hpp"

namespace iqb::datasets {

using util::ErrorCode;
using util::make_error;
using util::Result;

void AggregateTable::put(AggregateCell cell) {
  Key key{cell.region, cell.dataset, static_cast<int>(cell.metric)};
  cells_.insert_or_assign(std::move(key), std::move(cell));
}

Result<AggregateCell> AggregateTable::get(const std::string& region,
                                          const std::string& dataset,
                                          Metric metric) const {
  auto it = cells_.find(Key{region, dataset, static_cast<int>(metric)});
  if (it == cells_.end()) {
    return make_error(ErrorCode::kNotFound,
                      "no aggregate for region='" + region + "' dataset='" +
                          dataset + "' metric='" +
                          std::string(metric_name(metric)) + "'");
  }
  return it->second;
}

bool AggregateTable::contains(const std::string& region,
                              const std::string& dataset,
                              Metric metric) const noexcept {
  return cells_.find(Key{region, dataset, static_cast<int>(metric)}) !=
         cells_.end();
}

std::vector<AggregateCell> AggregateTable::cells() const {
  std::vector<AggregateCell> out;
  out.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) out.push_back(cell);
  return out;
}

std::vector<AggregateCell> AggregateTable::cells_for_region(
    const std::string& region) const {
  // Keys sort region-major, so the region's cells are one contiguous
  // map range starting at the smallest possible key for that region.
  std::vector<AggregateCell> out;
  auto it = cells_.lower_bound(
      Key{region, std::string(), std::numeric_limits<int>::min()});
  for (; it != cells_.end() && std::get<0>(it->first) == region; ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::vector<std::string> AggregateTable::regions() const {
  std::vector<std::string> out;
  for (const auto& [key, cell] : cells_) {
    if (out.empty() || out.back() != cell.region) out.push_back(cell.region);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::string> AggregateTable::datasets() const {
  std::vector<std::string> out;
  for (const auto& [key, cell] : cells_) out.push_back(cell.dataset);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void AggregateTable::merge(const AggregateTable& other) {
  for (const auto& [key, cell] : other.cells_) {
    cells_.insert_or_assign(key, cell);
  }
}

double effective_percentile(const AggregationPolicy& policy,
                            Metric metric) noexcept {
  if (policy.orient_to_worst && metric_higher_is_better(metric)) {
    return 100.0 - policy.percentile;
  }
  return policy.percentile;
}

namespace {

/// One cell from an indexed value column. `values` is the group's
/// metric column in store order — the same sequence the scan path's
/// metric_values() would produce, so the percentile, and the
/// bootstrap resampling (which is order-sensitive through the seeded
/// Rng), match the scan path bit for bit.
Result<AggregateCell> cell_from_column(const std::string& region,
                                       const std::string& dataset,
                                       Metric metric,
                                       const std::vector<double>& values,
                                       const AggregationPolicy& policy) {
  if (values.size() < std::max<std::size_t>(policy.min_samples, 1)) {
    return make_error(ErrorCode::kEmptyInput,
                      "insufficient samples for region='" + region +
                          "' dataset='" + dataset + "' metric='" +
                          std::string(metric_name(metric)) + "'");
  }
  const double p = effective_percentile(policy, metric);
  // Selection scratch copy: the pristine column stays in store order
  // for the bootstrap below.
  std::vector<double> scratch(values);
  auto value = stats::percentile_select(scratch, p, policy.method);
  if (!value.ok()) return value.error();

  AggregateCell cell;
  cell.region = region;
  cell.dataset = dataset;
  cell.metric = metric;
  cell.value = value.value();
  cell.sample_count = values.size();

  if (policy.bootstrap_resamples > 0) {
    util::Rng rng(policy.bootstrap_seed);
    auto ci = stats::bootstrap_percentile_ci(values, p, rng,
                                             policy.bootstrap_resamples,
                                             policy.bootstrap_level);
    if (ci.ok()) cell.ci = ci.value();
  }
  return cell;
}

/// Per-produced-cell telemetry, identical between execution modes
/// because it is always emitted from the fold loop in cell order.
void record_cell_telemetry(obs::Telemetry* telemetry,
                           const AggregateCell& cell) {
  if (!telemetry) return;
  const obs::LabelSet labels{{"dataset", cell.dataset}};
  obs::add_counter(telemetry, "iqb_aggregate_cells_total",
                   "Aggregate cells produced", labels);
  obs::add_counter(telemetry, "iqb_aggregate_samples_total",
                   "Raw samples folded into aggregate cells", labels,
                   static_cast<double>(cell.sample_count));
  obs::observe_histogram(telemetry, "iqb_aggregate_cell_samples",
                         "Samples per aggregate cell", obs::size_buckets(),
                         labels, static_cast<double>(cell.sample_count));
}

}  // namespace

AggregateTable aggregate(const RecordStore& store,
                         const AggregationPolicy& policy,
                         obs::Telemetry* telemetry, util::ThreadPool* pool) {
  AggregateTable table;

  const bool building = !store.index_ready();
  const StoreIndex* index = nullptr;
  {
    obs::ScopedSpan build_span(
        building && telemetry ? telemetry->tracer : nullptr,
        "aggregate.index_build");
    index = &store.index();
    if (building) {
      obs::add_counter(telemetry, "iqb_index_builds_total",
                       "Columnar store indexes built");
      build_span.set_attribute("records",
                               std::to_string(index->record_count()));
    }
  }

  // Task list in deterministic (region, dataset, metric) order —
  // groups() is sorted by name, kAllMetrics is fixed.
  struct CellTask {
    const StoreIndex::Group* group;
    Metric metric;
  };
  std::vector<CellTask> tasks;
  tasks.reserve(index->groups().size() * kAllMetrics.size());
  for (const StoreIndex::Group& group : index->groups()) {
    for (Metric metric : kAllMetrics) tasks.push_back({&group, metric});
  }

  std::vector<std::optional<AggregateCell>> slots(tasks.size());
  auto compute = [&](std::size_t i) {
    const CellTask& task = tasks[i];
    auto cell = cell_from_column(
        index->region_symbols().name(task.group->region_id),
        index->dataset_symbols().name(task.group->dataset_id), task.metric,
        task.group->column(task.metric), policy);
    if (cell.ok()) slots[i] = std::move(cell).value();
  };

  const std::size_t threads = util::ThreadPool::resolve_threads(policy.threads);
  if (threads > 1 && tasks.size() > 1) {
    std::optional<util::ThreadPool> local_pool;
    util::ThreadPool& executor = pool ? *pool : local_pool.emplace(threads);
    obs::ScopedSpan parallel_span(telemetry ? telemetry->tracer : nullptr,
                                  "aggregate.parallel");
    parallel_span.set_attribute("tasks", std::to_string(tasks.size()));
    parallel_span.set_attribute("threads",
                                std::to_string(executor.thread_count()));
    executor.parallel_for(tasks.size(), compute);
    obs::add_counter(telemetry, "iqb_parallel_tasks_total",
                     "Tasks fanned out to the thread pool",
                     {{"stage", "aggregate"}},
                     static_cast<double>(tasks.size()));
  } else {
    for (std::size_t i = 0; i < tasks.size(); ++i) compute(i);
  }

  // Deterministic fold: telemetry and table insertion happen in task
  // order regardless of which worker computed each slot.
  for (auto& slot : slots) {
    if (!slot) continue;
    record_cell_telemetry(telemetry, *slot);
    table.put(std::move(*slot));
  }
  return table;
}

AggregateTable aggregate_scan(const RecordStore& store,
                              const AggregationPolicy& policy) {
  AggregateTable table;
  for (const std::string& region : store.regions()) {
    for (const std::string& dataset : store.dataset_names()) {
      for (Metric metric : kAllMetrics) {
        RecordFilter filter;
        filter.region = region;
        filter.dataset = dataset;
        std::vector<double> values = store.metric_values(metric, filter);
        if (values.size() < std::max<std::size_t>(policy.min_samples, 1)) {
          continue;
        }
        const double p = effective_percentile(policy, metric);
        auto value = stats::percentile(values, p, policy.method);
        if (!value.ok()) continue;

        AggregateCell cell;
        cell.region = region;
        cell.dataset = dataset;
        cell.metric = metric;
        cell.value = value.value();
        cell.sample_count = values.size();
        if (policy.bootstrap_resamples > 0) {
          util::Rng rng(policy.bootstrap_seed);
          auto ci = stats::bootstrap_percentile_ci(values, p, rng,
                                                   policy.bootstrap_resamples,
                                                   policy.bootstrap_level);
          if (ci.ok()) cell.ci = ci.value();
        }
        table.put(std::move(cell));
      }
    }
  }
  return table;
}

Result<AggregateCell> aggregate_cell(const RecordStore& store,
                                     const std::string& region,
                                     const std::string& dataset, Metric metric,
                                     const AggregationPolicy& policy) {
  static const std::vector<double> kNoValues;
  const StoreIndex::Group* group = store.index().find(region, dataset);
  const std::vector<double>& values = group ? group->column(metric) : kNoValues;
  return cell_from_column(region, dataset, metric, values, policy);
}

}  // namespace iqb::datasets
