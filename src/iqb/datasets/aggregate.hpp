// The aggregation tier: raw records -> per-(region, dataset, metric)
// aggregate values.
//
// The paper's rule (§2): "IQB uses the 95th percentile of a dataset to
// evaluate a metric". For metrics where higher is better (throughput)
// a high percentile of the distribution would be the *best* users'
// experience; IQB's intent is "the value the bulk of users meet or
// exceed", so this tier evaluates the 95th percentile of the *badness*
// direction — equivalently the 5th percentile of throughput and the
// 95th percentile of latency/loss. Both conventions are available via
// AggregationPolicy::orient_to_worst; the default follows the IQB
// intent, and the ablation bench quantifies the difference.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "iqb/datasets/store.hpp"
#include "iqb/stats/bootstrap.hpp"
#include "iqb/stats/percentile.hpp"

namespace iqb::obs {
struct Telemetry;
}

namespace iqb::datasets {

struct AggregationPolicy {
  /// Percentile level in [0,100]; the paper's default is 95.
  double percentile = 95.0;
  stats::QuantileMethod method = stats::QuantileMethod::kLinear;
  /// If true (default), the percentile is taken in the metric's
  /// "badness" direction: p-th percentile of latency/loss, (100-p)-th
  /// of throughput. If false, the raw p-th percentile is used for all
  /// metrics (the literal reading of the paper's sentence).
  bool orient_to_worst = true;
  /// Minimum sample count for a cell to be produced at all.
  std::size_t min_samples = 1;
  /// If > 0, attach a bootstrap confidence interval with this many
  /// resamples (costly; off by default).
  std::size_t bootstrap_resamples = 0;
  double bootstrap_level = 0.95;
  std::uint64_t bootstrap_seed = 7;
};

/// One aggregated cell.
struct AggregateCell {
  std::string region;
  std::string dataset;
  Metric metric = Metric::kDownload;
  double value = 0.0;        ///< Aggregated value, canonical units.
  std::size_t sample_count = 0;
  std::optional<stats::ConfidenceInterval> ci;
};

/// Keyed collection of aggregate cells.
class AggregateTable {
 public:
  void put(AggregateCell cell);

  /// Lookup; error with kNotFound if the cell is absent.
  util::Result<AggregateCell> get(const std::string& region,
                                  const std::string& dataset,
                                  Metric metric) const;

  bool contains(const std::string& region, const std::string& dataset,
                Metric metric) const noexcept;

  std::size_t size() const noexcept { return cells_.size(); }
  std::vector<AggregateCell> cells() const;
  std::vector<std::string> regions() const;
  std::vector<std::string> datasets() const;

  /// Merge another table; colliding cells are overwritten.
  void merge(const AggregateTable& other);

 private:
  using Key = std::tuple<std::string, std::string, int>;
  std::map<Key, AggregateCell> cells_;
};

/// Effective percentile level actually evaluated for a metric under a
/// policy (e.g. download with p=95 & orient_to_worst -> 5).
double effective_percentile(const AggregationPolicy& policy,
                            Metric metric) noexcept;

/// Aggregate every (region, dataset, metric) cell present in the
/// store. Cells below min_samples are skipped, never errors — an
/// empty store yields an empty table. `telemetry`, when non-null,
/// receives per-dataset cell/sample counters and a cell-size
/// histogram; the produced table is identical either way.
AggregateTable aggregate(const RecordStore& store,
                         const AggregationPolicy& policy = {},
                         obs::Telemetry* telemetry = nullptr);

/// Aggregate a single cell; error if no samples match.
util::Result<AggregateCell> aggregate_cell(const RecordStore& store,
                                           const std::string& region,
                                           const std::string& dataset,
                                           Metric metric,
                                           const AggregationPolicy& policy = {});

}  // namespace iqb::datasets
