// The aggregation tier: raw records -> per-(region, dataset, metric)
// aggregate values.
//
// The paper's rule (§2): "IQB uses the 95th percentile of a dataset to
// evaluate a metric". For metrics where higher is better (throughput)
// a high percentile of the distribution would be the *best* users'
// experience; IQB's intent is "the value the bulk of users meet or
// exceed", so this tier evaluates the 95th percentile of the *badness*
// direction — equivalently the 5th percentile of throughput and the
// 95th percentile of latency/loss. Both conventions are available via
// AggregationPolicy::orient_to_worst; the default follows the IQB
// intent, and the ablation bench quantifies the difference.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "iqb/datasets/store.hpp"
#include "iqb/stats/bootstrap.hpp"
#include "iqb/stats/percentile.hpp"

namespace iqb::obs {
struct Telemetry;
}
namespace iqb::util {
class ThreadPool;
}

namespace iqb::datasets {

struct AggregationPolicy {
  /// Percentile level in [0,100]; the paper's default is 95.
  double percentile = 95.0;
  stats::QuantileMethod method = stats::QuantileMethod::kLinear;
  /// If true (default), the percentile is taken in the metric's
  /// "badness" direction: p-th percentile of latency/loss, (100-p)-th
  /// of throughput. If false, the raw p-th percentile is used for all
  /// metrics (the literal reading of the paper's sentence).
  bool orient_to_worst = true;
  /// Minimum sample count for a cell to be produced at all.
  std::size_t min_samples = 1;
  /// If > 0, attach a bootstrap confidence interval with this many
  /// resamples (costly; off by default).
  std::size_t bootstrap_resamples = 0;
  double bootstrap_level = 0.95;
  std::uint64_t bootstrap_seed = 7;
  /// Execution width for aggregate() and Pipeline::run: 1 = serial
  /// (the default for library callers), 0 = hardware concurrency,
  /// N = that many threads. Purely an execution knob — results are
  /// byte-identical at every width — so it is not part of the
  /// serialized config; iqbctl/iqbd set it from --threads.
  std::size_t threads = 1;
};

/// One aggregated cell.
struct AggregateCell {
  std::string region;
  std::string dataset;
  Metric metric = Metric::kDownload;
  double value = 0.0;        ///< Aggregated value, canonical units.
  std::size_t sample_count = 0;
  std::optional<stats::ConfidenceInterval> ci;
};

/// Keyed collection of aggregate cells.
class AggregateTable {
 public:
  void put(AggregateCell cell);

  /// Lookup; error with kNotFound if the cell is absent.
  util::Result<AggregateCell> get(const std::string& region,
                                  const std::string& dataset,
                                  Metric metric) const;

  bool contains(const std::string& region, const std::string& dataset,
                Metric metric) const noexcept;

  std::size_t size() const noexcept { return cells_.size(); }
  std::vector<AggregateCell> cells() const;
  /// Cells of one region, in the same (dataset, metric) order a
  /// filtered cells() walk would yield — a range scan of the
  /// region-major key space, not a full-table pass.
  std::vector<AggregateCell> cells_for_region(const std::string& region) const;
  std::vector<std::string> regions() const;
  std::vector<std::string> datasets() const;

  /// Merge another table; colliding cells are overwritten.
  void merge(const AggregateTable& other);

 private:
  using Key = std::tuple<std::string, std::string, int>;
  std::map<Key, AggregateCell> cells_;
};

/// Effective percentile level actually evaluated for a metric under a
/// policy (e.g. download with p=95 & orient_to_worst -> 5).
double effective_percentile(const AggregationPolicy& policy,
                            Metric metric) noexcept;

/// Aggregate every (region, dataset, metric) cell present in the
/// store. Cells below min_samples are skipped, never errors — an
/// empty store yields an empty table. `telemetry`, when non-null,
/// receives per-dataset cell/sample counters and a cell-size
/// histogram; the produced table is identical either way.
///
/// Execution: cells are computed from the store's columnar index
/// (built lazily, reused across calls) with selection-based
/// percentiles, fanned across policy.threads workers (see
/// AggregationPolicy::threads), and folded into the table in the
/// deterministic (region, dataset, metric) order — so the table, and
/// everything rendered from it, is byte-identical to the serial scan
/// path at any thread count. `pool`, when non-null, is used instead
/// of spawning a transient pool (Pipeline::run shares one across its
/// stages).
AggregateTable aggregate(const RecordStore& store,
                         const AggregationPolicy& policy = {},
                         obs::Telemetry* telemetry = nullptr,
                         util::ThreadPool* pool = nullptr);

/// Reference implementation: full-scan filtering + sort-based
/// percentiles, one pass per cell — the pre-index semantics, kept as
/// the equivalence oracle for tests and the bench baseline. Produces
/// a table byte-identical to aggregate()'s.
AggregateTable aggregate_scan(const RecordStore& store,
                              const AggregationPolicy& policy = {});

/// Aggregate a single cell (an index lookup, not a scan); error if no
/// samples match.
util::Result<AggregateCell> aggregate_cell(const RecordStore& store,
                                           const std::string& region,
                                           const std::string& dataset,
                                           Metric metric,
                                           const AggregationPolicy& policy = {});

}  // namespace iqb::datasets
