// Serialization of records and aggregates (CSV and JSON).
//
// Record CSV schema (one row per test):
//   dataset,region,isp,subscriber_id,timestamp,
//   download_mbps,upload_mbps,latency_ms,loaded_latency_ms,loss_fraction
// Missing metrics are empty fields. This is the interchange format the
// examples write and the import path a user with real NDT/Cloudflare
// exports would adapt to.
#pragma once

#include <string>
#include <vector>

#include "iqb/datasets/aggregate.hpp"
#include "iqb/datasets/store.hpp"
#include "iqb/util/csv.hpp"
#include "iqb/util/json.hpp"

namespace iqb::datasets {

/// Records -> CSV text (with header).
std::string records_to_csv(std::span<const MeasurementRecord> records);

/// CSV text -> records. Rows with malformed required fields are an
/// error; empty optional metric fields are simply absent.
util::Result<std::vector<MeasurementRecord>> records_from_csv(
    std::string_view csv_text);

/// Aggregate table -> CSV (region,dataset,metric,value,samples,ci_lo,ci_hi).
std::string aggregates_to_csv(const AggregateTable& table);

/// Aggregate table -> JSON (array of cell objects).
util::JsonValue aggregates_to_json(const AggregateTable& table);

/// JSON -> aggregate table (the inverse of aggregates_to_json). This
/// is also the ingestion path for *pre-aggregated* third-party data
/// such as Ookla's published region aggregates.
util::Result<AggregateTable> aggregates_from_json(const util::JsonValue& json);

/// File convenience wrappers.
util::Result<void> write_records_csv(const std::string& path,
                                     std::span<const MeasurementRecord> records);
util::Result<std::vector<MeasurementRecord>> read_records_csv(
    const std::string& path);

}  // namespace iqb::datasets
