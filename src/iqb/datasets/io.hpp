// Serialization of records and aggregates (CSV and JSON).
//
// Record CSV schema (one row per test):
//   dataset,region,isp,subscriber_id,timestamp,
//   download_mbps,upload_mbps,latency_ms,loaded_latency_ms,loss_fraction
// Missing metrics are empty fields. This is the interchange format the
// examples write and the import path a user with real NDT/Cloudflare
// exports would adapt to.
#pragma once

#include <string>
#include <vector>

#include "iqb/datasets/aggregate.hpp"
#include "iqb/datasets/store.hpp"
#include "iqb/robust/circuit_breaker.hpp"
#include "iqb/robust/fault_injection.hpp"
#include "iqb/robust/quarantine.hpp"
#include "iqb/robust/retry.hpp"
#include "iqb/util/csv.hpp"
#include "iqb/util/json.hpp"

namespace iqb::obs {
struct Telemetry;
}

namespace iqb::datasets {

/// The canonical record CSV header, shared by the legacy table-based
/// reader and the zero-copy fast reader (fast_csv.hpp).
const std::vector<std::string>& record_csv_header();

/// "row N" / "row N (line L)" prefix used by every record rejection
/// reason; line 0 means unknown. Both the legacy and fast readers
/// format rejections through this so quarantine contents are
/// byte-identical across paths.
std::string row_label(std::size_t row, std::size_t line);

/// Records -> CSV text (with header).
std::string records_to_csv(std::span<const MeasurementRecord> records);

/// CSV text -> records. Rows with malformed required fields are an
/// error; empty optional metric fields are simply absent.
util::Result<std::vector<MeasurementRecord>> records_from_csv(
    std::string_view csv_text);

/// Policy-aware variant: lenient mode quarantines malformed rows
/// (source "records_csv") and keeps importing, failing only when the
/// policy's max error rate is exceeded. A malformed header is always
/// fatal — a wrong schema is not row noise.
util::Result<std::vector<MeasurementRecord>> records_from_csv(
    std::string_view csv_text, const robust::IngestPolicy& policy,
    robust::Quarantine* quarantine = nullptr);

/// Fault-tolerant source loading: retry the fetch, consult a circuit
/// breaker, parse leniently, report what happened.
struct LoadOptions {
  robust::RetryPolicy retry;
  robust::IngestPolicy ingest = robust::IngestPolicy::lenient();
  /// Optional metrics/trace sink (non-owning): rows read/quarantined,
  /// fetch + retry attempts, quarantine occupancy, labeled by source.
  /// Null records nothing and changes nothing.
  obs::Telemetry* telemetry = nullptr;
};

struct LoadOutcome {
  std::vector<MeasurementRecord> records;
  std::size_t rows_quarantined = 0;  ///< From this load only.
  std::size_t attempts = 1;          ///< Fetch attempts consumed.
};

/// Load record CSV text from an arbitrary source (file read, feed
/// fetch, fault-injection wrapper) with retry + breaker + lenient
/// parsing. The breaker, when given, is consulted before the fetch
/// and fed the outcome; when it is open the load fails fast with
/// kIoError without touching the source.
util::Result<LoadOutcome> load_records(
    const robust::TextSource& source, const std::string& source_name,
    const LoadOptions& options = {}, robust::CircuitBreaker* breaker = nullptr,
    robust::Quarantine* quarantine = nullptr);

/// load_records over a file path.
util::Result<LoadOutcome> load_records_csv(
    const std::string& path, const LoadOptions& options = {},
    robust::CircuitBreaker* breaker = nullptr,
    robust::Quarantine* quarantine = nullptr);

/// Aggregate table -> CSV (region,dataset,metric,value,samples,ci_lo,ci_hi).
std::string aggregates_to_csv(const AggregateTable& table);

/// Aggregate table -> JSON (array of cell objects).
util::JsonValue aggregates_to_json(const AggregateTable& table);

/// JSON -> aggregate table (the inverse of aggregates_to_json). This
/// is also the ingestion path for *pre-aggregated* third-party data
/// such as Ookla's published region aggregates.
util::Result<AggregateTable> aggregates_from_json(const util::JsonValue& json);

/// File convenience wrappers.
util::Result<void> write_records_csv(const std::string& path,
                                     std::span<const MeasurementRecord> records);
util::Result<std::vector<MeasurementRecord>> read_records_csv(
    const std::string& path);

}  // namespace iqb::datasets
