#include "iqb/datasets/importers.hpp"

#include <cmath>

#include "iqb/datasets/io.hpp"
#include "iqb/obs/telemetry.hpp"
#include "iqb/util/csv.hpp"
#include "iqb/util/strings.hpp"

namespace iqb::datasets {

using robust::IngestMode;
using robust::IngestPolicy;
using robust::Quarantine;
using util::CsvTable;
using util::ErrorCode;
using util::make_error;
using util::Result;

namespace {

Result<double> field_as_double(const CsvTable& table, std::size_t row,
                               std::size_t column) {
  auto value = util::parse_double(table.rows[row][column]);
  if (!value.ok()) {
    return make_error(ErrorCode::kParseError,
                      row_label(row, table.line_of_row(row)) + " column '" +
                          table.header[column] + "': " +
                          value.error().message);
  }
  // from_chars happily parses "nan"/"inf"; a measurement feed carrying
  // either is corrupt, not exotic.
  if (!std::isfinite(value.value())) {
    return make_error(ErrorCode::kParseError,
                      row_label(row, table.line_of_row(row)) + " column '" +
                          table.header[column] + "': non-finite value '" +
                          table.rows[row][column] + "'");
  }
  return value;
}

/// Row accounting for one import call. Destructor-emitted so every
/// early return (strict abort, error-rate rejection) still reports;
/// a null telemetry records nothing.
class ImportTally {
 public:
  ImportTally(obs::Telemetry* telemetry, const char* importer,
              const Quarantine* quarantine)
      : telemetry_(telemetry),
        importer_(importer),
        quarantine_(quarantine),
        quarantined_before_(quarantine ? quarantine->count() : 0) {}

  void set_rows_read(std::size_t rows) noexcept { rows_read_ = rows; }
  void abort_row() noexcept { aborted_rows_ = 1; }

  ~ImportTally() {
    if (!telemetry_) return;
    const obs::LabelSet labels{{"importer", importer_}};
    const std::size_t quarantined =
        quarantine_ ? quarantine_->count() - quarantined_before_ : 0;
    obs::add_counter(telemetry_, "iqb_importer_rows_read_total",
                     "Data rows seen by an importer", labels,
                     static_cast<double>(rows_read_));
    obs::add_counter(telemetry_, "iqb_importer_rows_quarantined_total",
                     "Importer rows diverted to quarantine", labels,
                     static_cast<double>(quarantined));
    obs::add_counter(telemetry_, "iqb_importer_rows_rejected_total",
                     "Importer rows rejected (quarantined or strict abort)",
                     labels, static_cast<double>(quarantined + aborted_rows_));
  }

 private:
  obs::Telemetry* telemetry_;
  const char* importer_;
  const Quarantine* quarantine_;
  std::size_t quarantined_before_;
  std::size_t rows_read_ = 0;
  std::size_t aborted_rows_ = 0;
};

/// Reject the whole import (strict) or divert the row (lenient).
/// Returns true when the caller should abort with `out_error`.
bool row_fails(const IngestPolicy& policy, Quarantine* quarantine,
               const char* source, std::size_t row, util::Error error,
               util::Error* out_error, ImportTally* tally = nullptr) {
  if (policy.mode == IngestMode::kStrict) {
    if (tally) tally->abort_row();
    *out_error = std::move(error);
    return true;
  }
  if (quarantine) quarantine->add(source, row, std::move(error));
  return false;
}

/// Post-loop check: a lenient import of a mostly-corrupt feed fails.
Result<void> check_error_rate(const IngestPolicy& policy,
                              const Quarantine* quarantine, const char* source,
                              std::size_t total_rows) {
  if (policy.mode != IngestMode::kLenient || !quarantine) {
    return Result<void>::success();
  }
  if (quarantine->exceeds(policy, total_rows)) {
    return make_error(
        ErrorCode::kParseError,
        std::string(source) + ": quarantined " +
            std::to_string(quarantine->count()) + "/" +
            std::to_string(total_rows) + " rows, above max error rate " +
            util::format_fixed(policy.max_error_rate, 2));
  }
  return Result<void>::success();
}

}  // namespace

Result<AggregateTable> import_ookla_tiles_csv(std::string_view csv_text,
                                              const std::string& region_override) {
  return import_ookla_tiles_csv(csv_text, region_override,
                                IngestPolicy::strict());
}

Result<AggregateTable> import_ookla_tiles_csv(std::string_view csv_text,
                                              const std::string& region_override,
                                              const IngestPolicy& policy,
                                              Quarantine* quarantine,
                                              obs::Telemetry* telemetry) {
  // Quarantine storage local to this call when the caller only wants
  // the rate check, not the rows.
  Quarantine local(policy.max_stored);
  if (policy.mode == IngestMode::kLenient && !quarantine) quarantine = &local;
  ImportTally tally(telemetry, "ookla_csv", quarantine);

  auto table = util::parse_csv(csv_text);
  if (!table.ok()) return table.error();
  tally.set_rows_read(table->rows.size());

  auto quadkey_column = table->column_index("quadkey");
  auto down_column = table->column_index("avg_d_kbps");
  auto up_column = table->column_index("avg_u_kbps");
  auto latency_column = table->column_index("avg_lat_ms");
  auto tests_column = table->column_index("tests");
  if (!quadkey_column.ok()) return quadkey_column.error();
  if (!down_column.ok()) return down_column.error();
  if (!up_column.ok()) return up_column.error();
  if (!latency_column.ok()) return latency_column.error();
  if (!tests_column.ok()) return tests_column.error();

  // When merging tiles into one region, combine as test-weighted means
  // (the only correct combination of published means).
  struct Accumulator {
    double down_kbps_weighted = 0.0;
    double up_kbps_weighted = 0.0;
    double latency_weighted = 0.0;
    double tests = 0.0;
  };
  std::map<std::string, Accumulator> regions;

  for (std::size_t row = 0; row < table->rows.size(); ++row) {
    auto down = field_as_double(*table, row, down_column.value());
    auto up = field_as_double(*table, row, up_column.value());
    auto latency = field_as_double(*table, row, latency_column.value());
    auto tests = field_as_double(*table, row, tests_column.value());
    util::Error row_error;
    if (!down.ok() || !up.ok() || !latency.ok() || !tests.ok()) {
      const util::Error& first = !down.ok()      ? down.error()
                                 : !up.ok()      ? up.error()
                                 : !latency.ok() ? latency.error()
                                                 : tests.error();
      if (row_fails(policy, quarantine, "ookla_csv", row, first, &row_error,
                    &tally)) {
        return row_error;
      }
      continue;
    }
    if (tests.value() <= 0.0) continue;  // empty tile
    if (down.value() < 0.0 || up.value() < 0.0 || latency.value() < 0.0) {
      if (row_fails(policy, quarantine, "ookla_csv", row,
                    make_error(ErrorCode::kParseError,
                               row_label(row, table->line_of_row(row)) +
                                   ": negative measurement value"),
                    &row_error, &tally)) {
        return row_error;
      }
      continue;
    }
    const std::string region =
        region_override.empty()
            ? table->rows[row][quadkey_column.value()]
            : region_override;
    Accumulator& acc = regions[region];
    acc.down_kbps_weighted += down.value() * tests.value();
    acc.up_kbps_weighted += up.value() * tests.value();
    acc.latency_weighted += latency.value() * tests.value();
    acc.tests += tests.value();
  }
  auto rate = check_error_rate(policy, quarantine, "ookla_csv",
                               table->rows.size());
  if (!rate.ok()) return rate.error();
  if (regions.empty()) {
    return make_error(ErrorCode::kEmptyInput,
                      "no tiles with tests > 0 in Ookla CSV");
  }

  AggregateTable out;
  for (const auto& [region, acc] : regions) {
    auto put = [&out, &region, &acc](Metric metric, double value) {
      AggregateCell cell;
      cell.region = region;
      cell.dataset = "ookla";
      cell.metric = metric;
      cell.value = value;
      cell.sample_count = static_cast<std::size_t>(acc.tests);
      out.put(std::move(cell));
    };
    put(Metric::kDownload, acc.down_kbps_weighted / acc.tests / 1000.0);
    put(Metric::kUpload, acc.up_kbps_weighted / acc.tests / 1000.0);
    put(Metric::kLatency, acc.latency_weighted / acc.tests);
  }
  return out;
}

Result<std::vector<MeasurementRecord>> import_ndt_unified_csv(
    std::string_view csv_text) {
  return import_ndt_unified_csv(csv_text, IngestPolicy::strict());
}

Result<std::vector<MeasurementRecord>> import_ndt_unified_csv(
    std::string_view csv_text, const IngestPolicy& policy,
    Quarantine* quarantine, obs::Telemetry* telemetry) {
  Quarantine local(policy.max_stored);
  if (policy.mode == IngestMode::kLenient && !quarantine) quarantine = &local;
  ImportTally tally(telemetry, "ndt_csv", quarantine);

  auto table = util::parse_csv(csv_text);
  if (!table.ok()) return table.error();
  tally.set_rows_read(table->rows.size());

  auto date_column = table->column_index("date");
  auto region_column = table->column_index("client_region");
  auto asn_column = table->column_index("client_asn_name");
  auto direction_column = table->column_index("direction");
  auto throughput_column = table->column_index("throughput_mbps");
  auto rtt_column = table->column_index("min_rtt_ms");
  auto loss_column = table->column_index("loss_rate");
  if (!date_column.ok()) return date_column.error();
  if (!region_column.ok()) return region_column.error();
  if (!asn_column.ok()) return asn_column.error();
  if (!direction_column.ok()) return direction_column.error();
  if (!throughput_column.ok()) return throughput_column.error();
  if (!rtt_column.ok()) return rtt_column.error();
  if (!loss_column.ok()) return loss_column.error();

  std::vector<MeasurementRecord> records;
  records.reserve(table->rows.size());
  for (std::size_t row = 0; row < table->rows.size(); ++row) {
    // Parse the whole row into `record`; the first problem either
    // aborts (strict) or quarantines the row and moves on (lenient).
    util::Error row_error;
    auto reject = [&](util::Error error) {
      return row_fails(policy, quarantine, "ndt_csv", row, std::move(error),
                       &row_error, &tally);
    };

    MeasurementRecord record;
    record.dataset = "ndt";
    record.region = table->rows[row][region_column.value()];
    record.isp = table->rows[row][asn_column.value()];
    auto timestamp = util::Timestamp::parse(table->rows[row][date_column.value()]);
    if (!timestamp.ok()) {
      if (reject(make_error(ErrorCode::kParseError,
                            row_label(row, table->line_of_row(row)) + ": " +
                                timestamp.error().message))) {
        return row_error;
      }
      continue;
    }
    record.timestamp = timestamp.value();

    auto throughput = field_as_double(*table, row, throughput_column.value());
    if (!throughput.ok()) {
      if (reject(throughput.error())) return row_error;
      continue;
    }
    const std::string direction =
        util::to_lower(table->rows[row][direction_column.value()]);
    if (direction == "download") {
      record.download = util::Mbps(throughput.value());
      // NDT measures RTT and loss on the download's TCP connection.
      const std::string rtt_field = table->rows[row][rtt_column.value()];
      if (!util::trim(rtt_field).empty()) {
        auto rtt = field_as_double(*table, row, rtt_column.value());
        if (!rtt.ok()) {
          if (reject(rtt.error())) return row_error;
          continue;
        }
        record.latency = util::Millis(rtt.value());
      }
      const std::string loss_field = table->rows[row][loss_column.value()];
      if (!util::trim(loss_field).empty()) {
        auto loss = field_as_double(*table, row, loss_column.value());
        if (!loss.ok()) {
          if (reject(loss.error())) return row_error;
          continue;
        }
        record.loss = util::LossRate(loss.value());
      }
    } else if (direction == "upload") {
      record.upload = util::Mbps(throughput.value());
    } else {
      if (reject(make_error(ErrorCode::kParseError,
                            row_label(row, table->line_of_row(row)) +
                                ": direction must be download|upload, got '" +
                                direction + "'"))) {
        return row_error;
      }
      continue;
    }
    if (!record.is_valid()) {
      if (reject(make_error(ErrorCode::kParseError,
                            row_label(row, table->line_of_row(row)) +
                                ": metric value out of range"))) {
        return row_error;
      }
      continue;
    }
    records.push_back(std::move(record));
  }
  auto rate = check_error_rate(policy, quarantine, "ndt_csv",
                               table->rows.size());
  if (!rate.ok()) return rate.error();
  if (records.empty()) {
    return make_error(ErrorCode::kEmptyInput, "no rows in NDT CSV");
  }
  return records;
}

}  // namespace iqb::datasets
