#include "iqb/datasets/synthetic.hpp"

#include <algorithm>
#include <cmath>

namespace iqb::datasets {

std::vector<DatasetBias> default_dataset_panel() {
  // Factors follow the documented cross-tool pattern: multi-stream
  // steady-state (ookla) reads highest; single-stream whole-transfer
  // (ndt) reads lowest; browser-ladder (cloudflare) sits between.
  return {
      DatasetBias{"ndt", 0.85, 0.0, 0.10, true},
      DatasetBias{"cloudflare", 0.95, 2.0, 0.09, true},
      DatasetBias{"ookla", 1.00, 1.0, 0.07, false},
  };
}

std::vector<MeasurementRecord> generate_region_records(
    const RegionProfile& profile, const std::vector<DatasetBias>& panel,
    const SyntheticConfig& config, util::Rng& rng) {
  std::vector<MeasurementRecord> records;
  records.reserve(panel.size() * config.records_per_dataset);

  const double download_mu = std::log(profile.median_download_mbps);
  const double upload_mu =
      std::log(profile.median_download_mbps * profile.upload_ratio);

  std::int64_t sequence = 0;
  for (const DatasetBias& bias : panel) {
    for (std::size_t i = 0; i < config.records_per_dataset; ++i) {
      MeasurementRecord record;
      record.dataset = bias.dataset;
      record.region = profile.region;
      record.isp = profile.isp;
      record.subscriber_id =
          profile.region + "-sub-" + std::to_string(i % 50);
      record.timestamp = config.base_time + sequence * config.spacing_s;
      ++sequence;

      // Connection-level truth, then the dataset's biased view of it.
      const double true_down = rng.lognormal(download_mu, profile.download_sigma);
      const double true_up = rng.lognormal(upload_mu, profile.upload_sigma);
      const double latency = profile.base_latency_ms +
                             rng.lognormal(profile.latency_mu,
                                           profile.latency_sigma);

      const double tool_noise = rng.lognormal(0.0, bias.noise_sigma);
      record.download =
          util::Mbps(true_down * bias.throughput_factor * tool_noise);
      record.upload = util::Mbps(true_up * bias.throughput_factor *
                                 rng.lognormal(0.0, bias.noise_sigma));
      record.latency = util::Millis(latency + bias.latency_offset_ms);
      record.loaded_latency =
          util::Millis(latency + bias.latency_offset_ms +
                       rng.lognormal(2.0, 0.8));  // queueing under load

      if (bias.loss_reported) {
        double loss = 0.0;
        if (rng.bernoulli(profile.lossy_test_fraction)) {
          loss = std::min(1.0, rng.lognormal(profile.loss_mu, profile.loss_sigma));
        }
        record.loss = util::LossRate(loss);
      }
      records.push_back(std::move(record));
    }
  }
  return records;
}

std::vector<RegionProfile> example_region_profiles() {
  std::vector<RegionProfile> profiles(6);

  profiles[0].region = "metro_fiber";
  profiles[0].isp = "cityfiber";
  profiles[0].median_download_mbps = 600.0;
  profiles[0].download_sigma = 0.35;
  profiles[0].upload_ratio = 0.8;       // symmetric-ish fiber
  profiles[0].base_latency_ms = 6.0;
  profiles[0].latency_mu = 1.0;
  profiles[0].latency_sigma = 0.5;
  profiles[0].lossy_test_fraction = 0.08;
  profiles[0].loss_mu = -7.0;

  profiles[1].region = "suburban_cable";
  profiles[1].isp = "cablecorp";
  profiles[1].median_download_mbps = 250.0;
  profiles[1].download_sigma = 0.45;
  profiles[1].upload_ratio = 0.08;      // DOCSIS asymmetry
  profiles[1].base_latency_ms = 14.0;
  profiles[1].latency_mu = 1.6;
  profiles[1].latency_sigma = 0.6;
  profiles[1].lossy_test_fraction = 0.18;
  profiles[1].loss_mu = -6.2;

  profiles[2].region = "urban_lte";
  profiles[2].isp = "mobile_one";
  profiles[2].median_download_mbps = 70.0;
  profiles[2].download_sigma = 0.7;
  profiles[2].upload_ratio = 0.25;
  profiles[2].base_latency_ms = 28.0;
  profiles[2].latency_mu = 2.4;
  profiles[2].latency_sigma = 0.7;
  profiles[2].lossy_test_fraction = 0.35;
  profiles[2].loss_mu = -5.5;

  profiles[3].region = "small_town_dsl";
  profiles[3].isp = "legacy_telecom";
  profiles[3].median_download_mbps = 22.0;
  profiles[3].download_sigma = 0.5;
  profiles[3].upload_ratio = 0.12;
  profiles[3].base_latency_ms = 24.0;
  profiles[3].latency_mu = 2.2;
  profiles[3].latency_sigma = 0.6;
  profiles[3].lossy_test_fraction = 0.30;
  profiles[3].loss_mu = -5.8;

  profiles[4].region = "rural_wisp";
  profiles[4].isp = "hilltop_wireless";
  profiles[4].median_download_mbps = 30.0;
  profiles[4].download_sigma = 0.8;
  profiles[4].upload_ratio = 0.3;
  profiles[4].base_latency_ms = 35.0;
  profiles[4].latency_mu = 2.8;
  profiles[4].latency_sigma = 0.8;
  profiles[4].lossy_test_fraction = 0.5;
  profiles[4].loss_mu = -5.0;

  profiles[5].region = "remote_satellite";
  profiles[5].isp = "geo_sat";
  profiles[5].median_download_mbps = 45.0;
  profiles[5].download_sigma = 0.6;
  profiles[5].upload_ratio = 0.1;
  profiles[5].base_latency_ms = 480.0;  // GEO round trip
  profiles[5].latency_mu = 3.0;
  profiles[5].latency_sigma = 0.5;
  profiles[5].lossy_test_fraction = 0.6;
  profiles[5].loss_mu = -4.6;

  return profiles;
}

}  // namespace iqb::datasets
